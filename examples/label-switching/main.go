// Label switching: watch the §III-E mechanism work packet by packet in
// the discrete-event simulator. Packets are sized exactly at the MTU, so
// IP-over-IP tunneling forces fragmentation — and label switching makes
// it disappear after the first packet of each flow.
//
//	go run ./examples/label-switching
package main

import (
	"fmt"
	"log"

	"sdme"
)

func run(labelSwitching bool) {
	sys, err := sdme.NewSystem(sdme.Config{
		Topology:       "campus",
		Seed:           9,
		LabelSwitching: labelSwitching,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.MustAddPolicy("*", "*", "*", "80", "FW,IDS")
	if err := sys.Deploy(sdme.HotPotato); err != nil {
		log.Fatal(err)
	}
	nw, err := sys.Simulator()
	if err != nil {
		log.Fatal(err)
	}

	// 30 flows × 8 packets of 1480 bytes: exactly 1500 on the wire, so
	// one extra IP header cannot fit under the MTU.
	for i := 0; i < 30; i++ {
		src, dst := 1+i%10, 1+(i+4)%10
		if dst == src {
			dst = 1 + (dst % 10)
		}
		ft := sdme.Flow(sdme.HostAddr(src, 1+i), sdme.HostAddr(dst, 1), uint16(25000+i), 80)
		// Packets are spaced 8ms apart so the §III-E control message
		// returns between the first and second packet of each flow.
		if err := nw.InjectFlow(ft, 8, 1480, int64(i)*111, 8000); err != nil {
			log.Fatal(err)
		}
	}
	nw.Run(0)

	s := nw.Stats()
	mode := "IP-over-IP tunneling only"
	if labelSwitching {
		mode = "with label switching"
	}
	fmt.Printf("=== %s ===\n", mode)
	fmt.Printf("injected %d packets, delivered %d\n", s.PacketsInjected, s.Delivered)
	fmt.Printf("fragments created: %d (reassemblies: %d)\n", s.FragmentsCreated, s.Reassemblies)
	fmt.Printf("control messages:  %d\n", s.ControlMessages)

	var tunnel, label int64
	for _, n := range sys.Nodes {
		c := n.Counters
		tunnel += c.TunnelTx
		label += c.LabelTx
	}
	fmt.Printf("transmissions: %d tunneled (+20B each), %d label-switched (+0B)\n\n", tunnel, label)
}

func main() {
	fmt.Println("240 packets of 1480B traverse FW -> IDS chains over 1500B-MTU links.")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println("Label switching confines fragmentation to each flow's first packet,")
	fmt.Println("exactly the §III-E claim of the paper.")
}
