// Live tunnels: the same enforcement dataplane that powers the simulator,
// running as goroutines with real UDP sockets on loopback. A policy chain
// FW -> IDS -> TM is enforced on actual datagrams; the program prints the
// journey of the flow's packets through the live middleboxes.
//
//	go run ./examples/live-tunnels
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

func main() {
	rng := rand.New(rand.NewSource(4))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 5, EdgeRouters: 3, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		log.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[2], "fw2", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)
	dep.AddMiddlebox(cores[3], "tm1", policy.FuncTM)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.Dst = topo.SubnetPrefix(2)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS, policy.FuncTM})

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{
		Strategy:       enforce.LoadBalanced,
		K:              map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 1, policy.FuncTM: 1},
		LabelSwitching: true,
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		log.Fatal(err)
	}

	rt := live.NewRuntime()
	defer rt.Close()
	devices := make(map[topo.NodeID]*live.Device)
	for id, n := range nodes {
		dev, err := rt.AddDevice(n)
		if err != nil {
			log.Fatal(err)
		}
		devices[id] = dev
	}
	sink, err := rt.AddSink(topo.HostAddr(2, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d devices live on 127.0.0.1 (each with its own UDP socket)\n\n", len(devices))

	// Two flows from different subnets; LB weights default to uniform
	// hash splits over each node's candidate set without measurements.
	proxy1, _ := dep.ProxyFor(1)
	proxy3, _ := dep.ProxyFor(3)
	flows := []struct {
		via  netaddr.Addr
		ft   netaddr.FiveTuple
		pkts int
	}{
		{dep.AddrOf(proxy1), netaddr.FiveTuple{Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(2, 1), SrcPort: 41000, DstPort: 80, Proto: netaddr.ProtoTCP}, 6},
		{dep.AddrOf(proxy3), netaddr.FiveTuple{Src: topo.HostAddr(3, 9), Dst: topo.HostAddr(2, 1), SrcPort: 42000, DstPort: 22, Proto: netaddr.ProtoTCP}, 4},
	}
	total := 0
	for _, f := range flows {
		fmt.Printf("flow %v: %d packets\n", f.ft, f.pkts)
		// First packet installs the chain; wait for the control message
		// so the rest ride labels.
		if err := rt.Inject(f.via, packet.New(f.ft, 100)); err != nil {
			log.Fatal(err)
		}
		proxyDev := devices[g.NodeByAddr(f.via)]
		before := proxyDev.Counters().ControlRx
		live.WaitUntil(2*time.Second, func() bool { return proxyDev.Counters().ControlRx > before })
		for i := 1; i < f.pkts; i++ {
			if err := rt.Inject(f.via, packet.New(f.ft, 100)); err != nil {
				log.Fatal(err)
			}
		}
		total += f.pkts
	}
	if !live.WaitUntil(5*time.Second, func() bool { return sink.Received() >= total }) {
		log.Fatalf("sink received %d of %d", sink.Received(), total)
	}

	fmt.Printf("\nall %d packets delivered; per-middlebox view:\n", sink.Received())
	for _, id := range dep.MBNodes {
		c := devices[id].Counters()
		fmt.Printf("  %-5s processed=%-3d tunneledOn=%-3d labelSwitchedOn=%-3d controlSent=%d\n",
			g.Node(id).Name, c.Load, c.TunnelTx, c.LabelTx, c.ControlTx)
	}
	fmt.Println("\nNote fw1/fw2: the load-balanced strategy hash-splits flows across")
	fmt.Println("the candidate firewalls while every packet of one flow stays put.")
}
