// Campus load balancing: reproduce the paper's §IV comparison on one
// operating point — the same flow population routed under hot-potato,
// random and load-balanced enforcement, with the per-middlebox load
// distribution printed for each strategy.
//
//	go run ./examples/campus-loadbalance [totalPackets]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sdme/internal/enforce"
	"sdme/internal/experiments"
	"sdme/internal/policy"
)

func main() {
	total := 1000000
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad packet count %q", os.Args[1])
		}
		total = v
	}

	// The paper's full campus evaluation bed: 10 subnets, 22 middleboxes,
	// 30 policies across the three classes (many-to-one FW→IDS,
	// one-to-many FW→IDS→WP, one-to-one IDS→TM).
	bed, err := experiments.NewBed(experiments.Config{Topology: "campus", Seed: 20})
	if err != nil {
		log.Fatal(err)
	}
	demands := bed.GenerateDemands(total)
	var actual int64
	for _, d := range demands {
		actual += d.Packets
	}
	fmt.Printf("workload: %d flows, %d packets, %d policies\n\n",
		len(demands), actual, bed.Table.Len())

	for _, strategy := range experiments.Strategies {
		report, sol, err := bed.RunStrategy(strategy, demands)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %v ===\n", strategy)
		if sol != nil {
			fmt.Printf("LP: λ=%.0f over %d vars / %d constraints\n", sol.Lambda, sol.Vars, sol.Constraints)
		}
		for _, f := range experiments.Funcs {
			loads := report.LoadsOf(bed.Dep, f)
			max := report.MaxLoad(bed.Dep, f)
			fmt.Printf("%-4s max=%-9d min=%-9d ", f, max, report.MinLoad(bed.Dep, f))
			fmt.Print("[")
			for _, l := range loads {
				fmt.Printf("%s", spark(l, max))
			}
			fmt.Println("]")
		}
		fmt.Printf("avg enforced path cost: %.2f hops/packet\n\n", report.AvgPathCost())
	}

	// The paper's headline, restated numerically.
	hp, _, err := bed.RunStrategy(enforce.HotPotato, demands)
	if err != nil {
		log.Fatal(err)
	}
	lb, _, err := bed.RunStrategy(enforce.LoadBalanced, demands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Repeat("-", 60))
	for _, f := range []policy.FuncType{policy.FuncFW, policy.FuncIDS} {
		h, l := hp.MaxLoad(bed.Dep, f), lb.MaxLoad(bed.Dep, f)
		fmt.Printf("%s: load balancing cuts the hottest middlebox %.1fx (%d -> %d)\n",
			f, float64(h)/float64(l), h, l)
	}
}

// spark renders one load as an eighth-block character scaled by max.
func spark(v, max int64) string {
	if max == 0 {
		return " "
	}
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	idx := int(v * int64(len(blocks)-1) / max)
	return string(blocks[idx])
}
