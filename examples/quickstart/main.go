// Quickstart: declare policies on the campus network, deploy the
// software-defined middleboxes with load-balanced enforcement, and see
// where the traffic lands.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdme"
)

func main() {
	// Build the paper's campus topology: 2 gateways, 16 core routers,
	// 10 edge routers each fronting a /16 stub subnet with a policy
	// proxy; 7 FW, 7 IDS, 4 WP, 4 TM middleboxes land on random cores.
	sys, err := sdme.NewCampus(1)
	if err != nil {
		log.Fatal(err)
	}

	// Table I-style policies. First match wins.
	sys.MustAddPolicy("10.1.0.0/16", "10.2.0.0/16", "*", "80", "permit")
	sys.MustAddPolicy("*", "10.2.0.0/16", "*", "80", "FW,IDS")     // protect subnet 2's web server
	sys.MustAddPolicy("10.1.0.0/16", "*", "*", "443", "FW,IDS,WP") // outbound TLS from subnet 1

	// Deploy with the load-balanced strategy of §III-C.
	if err := sys.Deploy(sdme.LoadBalanced); err != nil {
		log.Fatal(err)
	}

	// Traffic: hosts in subnets 3..6 hammer subnet 2's web server, and
	// subnet 1 browses the world.
	var demands []sdme.FlowDemand
	for i := 0; i < 3000; i++ {
		src := 3 + i%4
		demands = append(demands, sdme.FlowDemand{
			Tuple:   sdme.Flow(sdme.HostAddr(src, 1+i%90), sdme.HostAddr(2, 1), uint16(20000+i), 80),
			Packets: int64(5 + i%20),
		})
		demands = append(demands, sdme.FlowDemand{
			Tuple:   sdme.Flow(sdme.HostAddr(1, 1+i%90), sdme.HostAddr(7+i%3, 1+i%50), uint16(30000+i), 443),
			Packets: int64(1 + i%10),
		})
	}

	// The controller measures traffic and solves the min-max-load LP.
	lambda, err := sys.Balance(demands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP optimum: no middlebox carries more than %.0f packets\n\n", lambda)

	report, err := sys.Evaluate(demands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d packets evaluated, %d flows unmatched by any policy\n",
		report.TotalPackets, report.Unenforced)
	for _, f := range []sdme.FuncType{sdme.FW, sdme.IDS, sdme.WP} {
		fmt.Printf("%-4s loads: max %6d  min %6d across %d middleboxes\n",
			f, report.MaxLoad(sys.Dep, f), report.MinLoad(sys.Dep, f), len(sys.Providers(f)))
	}
	fmt.Printf("\nheaviest middleboxes:\n")
	for i, nl := range report.SortedLoads() {
		if i == 5 {
			break
		}
		fmt.Printf("  %-6s %d packets\n", sys.NameOf(nl.Node), nl.Load)
	}
}
