// Failure recovery: the "dependable" in the paper's title, demonstrated.
// A middlebox dies; the controller recomputes the closest/candidate
// assignments over the survivors and reconfigures the running nodes in
// place; the enforcement audit proves every policy is still enforced;
// traffic shifts without touching a single router.
//
//	go run ./examples/failure-recovery
package main

import (
	"fmt"
	"log"

	"sdme"
)

func main() {
	sys, err := sdme.NewCampus(20)
	if err != nil {
		log.Fatal(err)
	}
	sys.MustAddPolicy("*", "*", "*", "80", "FW,IDS")
	if err := sys.Deploy(sdme.HotPotato); err != nil {
		log.Fatal(err)
	}

	// A flow from subnet 3 to subnet 2's web server.
	ft := sdme.Flow(sdme.HostAddr(3, 1), sdme.HostAddr(2, 1), 41000, 80)
	tr, err := sys.Trace(ft)
	if err != nil {
		log.Fatal(err)
	}
	victim := tr.Hops[0].Node
	fmt.Printf("before failure: %s\n", tr)
	fmt.Printf("the flow's firewall is %s\n\n", sys.NameOf(victim))

	if vs := sys.Verify(); len(vs) != 0 {
		log.Fatalf("audit violations on a fresh deployment: %v", vs)
	}
	fmt.Println("audit: every policy enforceable from every subnet ✓")

	// The firewall dies. MarkFailed + Reassign run inside FailMiddlebox:
	// candidate sets are recomputed over the survivors and swapped into
	// the running nodes (soft state preserved). No router is touched —
	// the network never knew the middlebox existed.
	fmt.Printf("\n*** %s fails ***\n\n", sys.NameOf(victim))
	if err := sys.FailMiddlebox(victim, true); err != nil {
		log.Fatal(err)
	}

	tr2, err := sys.Trace(ft)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after repair:  %s\n", tr2)
	fmt.Printf("the flow now uses %s (+%.0f hops vs the dead box's path)\n",
		sys.NameOf(tr2.Hops[0].Node), tr2.TotalCost()-tr.TotalCost())
	if vs := sys.Verify(); len(vs) != 0 {
		log.Fatalf("audit violations after repair: %v", vs)
	}
	fmt.Println("audit: still clean with the failed box excluded ✓")

	// Recovery: the box comes back, assignments are restored.
	if err := sys.FailMiddlebox(victim, false); err != nil {
		log.Fatal(err)
	}
	tr3, err := sys.Trace(ft)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter recovery: flow back on %s\n", sys.NameOf(tr3.Hops[0].Node))

	// The same machinery handles mass failures — until a function loses
	// its last provider, which the controller refuses loudly.
	for _, id := range sys.Providers(sdme.IDS) {
		if err := sys.FailMiddlebox(id, true); err != nil {
			fmt.Printf("\nfailing the last IDS middleboxes: %v\n", err)
			fmt.Println("(enforcement of IDS policies would be impossible; the operator must know)")
			break
		}
	}
}
