package controller_test

import (
	"bytes"
	"math/rand"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/experiments"
	"sdme/internal/topo"
	"sdme/internal/verify"
	"sdme/internal/workload"
)

// The incremental pipeline's contract is exact equivalence: applying the
// per-node ConfigDeltas of every Recompute on top of the previous
// configuration must land on byte-for-byte the same exported plan as a
// from-scratch rebuild of the new plan. This property test drives long
// randomized churn sequences — policy add/remove/edit, middlebox
// down/up, demand shifts — through the pipeline and checks the contract
// at every single step, both structurally (verify.CheckDeltaEquivalence)
// and on the serialized export bytes. Shards cover the Eq. (2) and
// Eq. (1) formulations and the three dirty-threshold regimes (default
// mixed, always-scoped, always-full).

// churnShard parameterizes one shard of the property test.
type churnShard struct {
	name      string
	topology  string
	seed      int64
	fine      bool
	threshold float64
	steps     int
	// wantScoped asserts at least one recompute took the scoped-solve
	// path (no full LP), i.e. the incremental machinery was exercised.
	wantScoped bool
}

func TestChurnIncrementalEquivalence(t *testing.T) {
	shards := []churnShard{
		{name: "campus-eq2-default", topology: "campus", seed: 1, fine: false, threshold: 0, steps: 150, wantScoped: true},
		{name: "campus-eq2-scoped", topology: "campus", seed: 2, fine: false, threshold: 2, steps: 150, wantScoped: true},
		{name: "campus-eq1-default", topology: "campus", seed: 3, fine: true, threshold: 0, steps: 100},
		{name: "waxman-eq2-full", topology: "waxman", seed: 4, fine: false, threshold: -1, steps: 100},
	}
	total := 0
	for _, sh := range shards {
		total += sh.steps
	}
	if total < 500 {
		t.Fatalf("shards cover %d churn steps, want >= 500", total)
	}
	for _, sh := range shards {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			t.Parallel()
			if testing.Short() {
				sh.steps /= 5
			}
			runChurnShard(t, sh)
		})
	}
}

func runChurnShard(t *testing.T, sh churnShard) {
	bed, err := experiments.NewBed(experiments.Config{
		Topology:         sh.topology,
		Seed:             sh.seed,
		PoliciesPerClass: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        bed.Cfg.K,
	})
	pipe := ctl.NewPipeline(controller.PipelineOptions{Fine: sh.fine, DirtyThreshold: sh.threshold})
	rng := rand.New(rand.NewSource(sh.seed * 7919))

	const demandTarget = 4000
	demands := bed.GenerateDemands(demandTarget)
	meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)
	upd, err := pipe.Recompute(meas)
	if err != nil {
		t.Fatalf("initial recompute: %v", err)
	}
	if upd.Deltas != nil {
		t.Fatalf("first recompute produced deltas; want full rollout")
	}
	live, err := ctl.BuildNodesFromPlan(upd.Plan)
	if err != nil {
		t.Fatalf("initial build: %v", err)
	}

	down := make(map[topo.NodeID]bool)
	scoped := 0
	for step := 0; step < sh.steps; step++ {
		churnStep(t, bed, ctl, pipe, rng, down, &demands, demandTarget)
		meas = controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)
		upd, err = pipe.Recompute(meas)
		if err != nil {
			t.Fatalf("step %d: recompute: %v", step, err)
		}
		if upd.Stats.Solved && !upd.Stats.FullSolve {
			scoped++
		}
		for id, d := range upd.Deltas {
			n := live[id]
			if n == nil {
				t.Fatalf("step %d: delta for unknown node %v", step, id)
			}
			if err := n.ApplyDelta(d); err != nil {
				t.Fatalf("step %d: apply delta to %v: %v", step, id, err)
			}
		}

		rebuilt, err := ctl.BuildNodesFromPlan(upd.Plan)
		if err != nil {
			t.Fatalf("step %d: rebuild: %v", step, err)
		}
		if viol := verify.CheckDeltaEquivalence(configsOf(live), configsOf(rebuilt)); len(viol) > 0 {
			t.Fatalf("step %d: delta-applied configuration diverges from full rebuild (%d violations), first: %v",
				step, len(viol), viol[0])
		}
		a, b := exportBytes(t, ctl, live), exportBytes(t, ctl, rebuilt)
		if !bytes.Equal(a, b) {
			t.Fatalf("step %d: exported plans differ (%d vs %d bytes)", step, len(a), len(b))
		}
	}
	if sh.wantScoped && scoped == 0 {
		t.Fatalf("no recompute took the scoped-solve path in %d steps", sh.steps)
	}
	t.Logf("%d steps, %d scoped recomputes, %d policies, %d failed middleboxes at end",
		sh.steps, scoped, bed.Table.Len(), len(down))
}

// churnStep applies one random mutation to the test bed: a policy edit,
// a middlebox failure/recovery, or a demand shift. Every policy/node
// event is also reported to the pipeline's explicit dirty marks, like a
// real control loop would.
func churnStep(t *testing.T, bed *experiments.Bed, ctl *controller.Controller,
	pipe *controller.Pipeline, rng *rand.Rand, down map[topo.NodeID]bool,
	demands *[]enforce.FlowDemand, target int) {
	t.Helper()
	classes := []workload.Class{workload.ManyToOne, workload.OneToMany, workload.OneToOne}
	for attempt := 0; attempt < 10; attempt++ {
		switch rng.Intn(6) {
		case 0: // remove a policy
			all := bed.Table.All()
			if len(all) <= 3 {
				continue
			}
			p := all[rng.Intn(len(all))]
			bed.Table.Remove(p.ID)
			pipe.PolicyChanged(p.ID)
			return
		case 1: // add a policy (clone of a survivor, fresh ID and priority)
			all := bed.Table.All()
			p := all[rng.Intn(len(all))]
			np := bed.Table.Add(p.Desc, p.Actions)
			pipe.PolicyChanged(np.ID)
			return
		case 2: // edit a policy's action chain in place
			all := bed.Table.All()
			p := all[rng.Intn(len(all))]
			acts := classes[rng.Intn(len(classes))].Actions()
			bed.Table.Update(p.ID, p.Desc, acts)
			pipe.PolicyChanged(p.ID)
			return
		case 3: // fail a middlebox, keeping every function enforceable
			id, ok := failableMB(bed.Dep, down, rng)
			if !ok {
				continue
			}
			if err := ctl.MarkFailed(id, true); err != nil {
				t.Fatalf("mark %v failed: %v", id, err)
			}
			down[id] = true
			pipe.NodeChanged(id)
			return
		case 4: // recover a failed middlebox
			if len(down) == 0 {
				continue
			}
			for _, id := range bed.Dep.MBNodes {
				if down[id] {
					if err := ctl.MarkFailed(id, false); err != nil {
						t.Fatalf("mark %v recovered: %v", id, err)
					}
					delete(down, id)
					pipe.NodeChanged(id)
					return
				}
			}
		case 5: // measurement shift: fresh flow population
			*demands = bed.GenerateDemands(target)
			return
		}
	}
	// All attempts hit inapplicable ops (e.g. nothing down to recover);
	// fall back to a demand shift, which is always valid.
	*demands = bed.GenerateDemands(target)
}

// failableMB picks a live middlebox whose failure leaves every function
// it provides with at least one other live provider, so the plan stays
// compilable.
func failableMB(dep *enforce.Deployment, down map[topo.NodeID]bool, rng *rand.Rand) (topo.NodeID, bool) {
	var eligible []topo.NodeID
	for _, id := range dep.MBNodes {
		if down[id] {
			continue
		}
		ok := true
		for _, f := range dep.FuncsOf(id) {
			live := 0
			for _, mb := range dep.Providers(f) {
				if !down[mb] && mb != id {
					live++
				}
			}
			if live == 0 {
				ok = false
				break
			}
		}
		if ok {
			eligible = append(eligible, id)
		}
	}
	if len(eligible) == 0 {
		return 0, false
	}
	return eligible[rng.Intn(len(eligible))], true
}

// configsOf snapshots every node's installed configuration.
func configsOf(nodes map[topo.NodeID]*enforce.Node) map[topo.NodeID]enforce.Config {
	out := make(map[topo.NodeID]enforce.Config, len(nodes))
	for id, n := range nodes {
		out[id] = n.Config()
	}
	return out
}

// exportBytes serializes the full network configuration deterministically.
func exportBytes(t *testing.T, ctl *controller.Controller, nodes map[topo.NodeID]*enforce.Node) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ctl.ExportConfig(nodes).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
