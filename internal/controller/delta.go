package controller

import (
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Stage 3 of the compilation pipeline: diff two compiled plans into
// per-node ConfigDeltas — the add/remove/reweight edit scripts the mgmt
// layer pushes instead of full configurations when little changed.

// DeltaStats sizes a plan diff in configuration entries (a policy, a
// candidate list, or a weight vector each count as one entry). Reweighted
// counts entries present in both plans with different content (a replaced
// policy, a changed candidate list, a changed weight vector).
type DeltaStats struct {
	Added, Removed, Reweighted int
	// Nodes counts nodes receiving a non-empty delta.
	Nodes int
}

// Total is the number of changed entries.
func (s DeltaStats) Total() int { return s.Added + s.Removed + s.Reweighted }

// DiffPlans computes the per-node configuration deltas that transform
// old's exported state into cur's, plus their aggregate size. Nodes whose
// configuration is unchanged are absent from the result. All delta slices
// are sorted, so equal diffs are deeply equal and encode to identical
// wire bytes.
func DiffPlans(old, cur *Plan) (map[topo.NodeID]enforce.ConfigDelta, DeltaStats) {
	if old == nil {
		old = &Plan{}
	}
	var stats DeltaStats
	out := make(map[topo.NodeID]enforce.ConfigDelta)

	for _, id := range unionNodes(old, cur) {
		var d enforce.ConfigDelta
		diffPolicies(old.NodePolicies[id], cur.NodePolicies[id], &d, &stats)
		diffCandidates(old.Candidates[id], cur.Candidates[id], &d, &stats)
		diffWeights(old.Weights[id], cur.Weights[id], &d, &stats)
		if !d.Empty() {
			out[id] = d
			stats.Nodes++
		}
	}
	return out, stats
}

// unionNodes returns the sorted union of nodes configured by either plan.
func unionNodes(old, cur *Plan) []topo.NodeID {
	seen := make(map[topo.NodeID]bool)
	add := func(p *Plan) {
		if p == nil {
			return
		}
		for id := range p.NodePolicies {
			seen[id] = true
		}
		for id := range p.Candidates {
			seen[id] = true
		}
		for id := range p.Weights {
			seen[id] = true
		}
	}
	add(old)
	add(cur)
	ids := make([]topo.NodeID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func diffPolicies(old, cur []*policy.Policy, d *enforce.ConfigDelta, stats *DeltaStats) {
	oldByID := make(map[int]*policy.Policy, len(old))
	for _, p := range old {
		oldByID[p.ID] = p
	}
	curIDs := make(map[int]bool, len(cur))
	for _, p := range cur {
		curIDs[p.ID] = true
		if prev, ok := oldByID[p.ID]; !ok {
			d.Upserts = append(d.Upserts, p)
			stats.Added++
		} else if prev.Hash() != p.Hash() {
			d.Upserts = append(d.Upserts, p)
			stats.Reweighted++
		}
	}
	for _, p := range old {
		if !curIDs[p.ID] {
			d.Removes = append(d.Removes, p.ID)
			stats.Removed++
		}
	}
	sort.Slice(d.Upserts, func(i, j int) bool {
		a, b := d.Upserts[i], d.Upserts[j]
		if a.Prio != b.Prio {
			return a.Prio < b.Prio
		}
		return a.ID < b.ID
	})
	sort.Ints(d.Removes)
}

func diffCandidates(old, cur map[policy.FuncType][]topo.NodeID, d *enforce.ConfigDelta, stats *DeltaStats) {
	for _, e := range sortedFuncKeys(cur) {
		list := cur[e]
		prev, ok := old[e]
		if !ok {
			ensureSetCandidates(d)[e] = list
			stats.Added++
		} else if !sameNodeIDs(prev, list) {
			ensureSetCandidates(d)[e] = list
			stats.Reweighted++
		}
	}
	for _, e := range sortedFuncKeys(old) {
		if _, ok := cur[e]; !ok {
			d.DropCandidates = append(d.DropCandidates, e)
			stats.Removed++
		}
	}
}

func diffWeights(old, cur map[enforce.WeightKey][]float64, d *enforce.ConfigDelta, stats *DeltaStats) {
	for _, k := range sortedWeightKeys(cur) {
		vec := cur[k]
		prev, ok := old[k]
		if !ok {
			ensureSetWeights(d)[k] = vec
			stats.Added++
		} else if !sameVector(prev, vec) {
			ensureSetWeights(d)[k] = vec
			stats.Reweighted++
		}
	}
	for _, k := range sortedWeightKeys(old) {
		if _, ok := cur[k]; !ok {
			d.DropWeights = append(d.DropWeights, k)
			stats.Removed++
		}
	}
}

func sameNodeIDs(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ensureSetCandidates(d *enforce.ConfigDelta) map[policy.FuncType][]topo.NodeID {
	if d.SetCandidates == nil {
		d.SetCandidates = make(map[policy.FuncType][]topo.NodeID)
	}
	return d.SetCandidates
}

func ensureSetWeights(d *enforce.ConfigDelta) map[enforce.WeightKey][]float64 {
	if d.SetWeights == nil {
		d.SetWeights = make(map[enforce.WeightKey][]float64)
	}
	return d.SetWeights
}

func sortedFuncKeys(m map[policy.FuncType][]topo.NodeID) []policy.FuncType {
	out := make([]policy.FuncType, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedWeightKeys(m map[enforce.WeightKey][]float64) []enforce.WeightKey {
	out := make([]enforce.WeightKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return lessWeightKey(out[i], out[j]) })
	return out
}

func lessWeightKey(a, b enforce.WeightKey) bool {
	if a.PolicyID != b.PolicyID {
		return a.PolicyID < b.PolicyID
	}
	if a.Func != b.Func {
		return a.Func < b.Func
	}
	if a.SrcSubnet != b.SrcSubnet {
		return a.SrcSubnet < b.SrcSubnet
	}
	return a.DstSubnet < b.DstSubnet
}
