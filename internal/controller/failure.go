package controller

import (
	"fmt"
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// ErrNoLiveProvider is the sentinel every NoLiveProviderError matches
// via errors.Is: some network function has no live middlebox left, so
// enforcement of that function is impossible until one recovers.
// Recovery loops branch on it — it means "degrade and keep watching",
// not "abort". It aliases enforce.ErrNoLiveProvider so the dataplane's
// local fast-failover exhaustion (enforce.NoLiveCandidateError) and the
// controller's planning failure match the same sentinel.
var ErrNoLiveProvider = enforce.ErrNoLiveProvider

// NoLiveProviderError reports which function lost its last provider.
type NoLiveProviderError struct {
	// Func is the network function with no live middlebox.
	Func policy.FuncType
}

func (e *NoLiveProviderError) Error() string {
	return fmt.Sprintf("controller: no live middlebox implements %v", e.Func)
}

// Is makes errors.Is(err, ErrNoLiveProvider) match.
func (e *NoLiveProviderError) Is(target error) bool { return target == ErrNoLiveProvider }

// Failure handling — the "dependable" in the paper's title. The
// controller monitors middlebox liveness (in a real deployment via the
// same channel it uses for measurement collection) and, on failure,
// recomputes the closest/candidate assignments without the failed boxes
// and pushes the repaired candidate sets to every node. Routing is
// untouched: the underlying network never knew about the middleboxes in
// the first place, which is precisely the architecture's resilience
// argument.

// MarkFailed records a middlebox as down (or up again). It affects the
// next Reassign/SolveLB; it does not touch already-configured nodes.
func (c *Controller) MarkFailed(mb topo.NodeID, down bool) error {
	found := false
	for _, id := range c.dep.MBNodes {
		if id == mb {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("controller: node %v is not a middlebox", mb)
	}
	if c.failed == nil {
		c.failed = make(map[topo.NodeID]bool)
	}
	if down {
		c.failed[mb] = true
	} else {
		delete(c.failed, mb)
	}
	// Invalidate cached assignments; they are recomputed on demand.
	c.candidates = nil
	// Write-ahead: the failed set must be durable before any repair plan
	// derived from it reaches a node (journal.go).
	return c.journalFailed()
}

// Failed returns the currently failed middleboxes in ID order.
func (c *Controller) Failed() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(c.failed))
	for id := range c.failed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// liveProviders filters M^e down to live middleboxes.
func (c *Controller) liveProviders(e policy.FuncType) []topo.NodeID {
	all := c.dep.Providers(e)
	if len(c.failed) == 0 {
		return all
	}
	out := make([]topo.NodeID, 0, len(all))
	for _, id := range all {
		if !c.failed[id] {
			out = append(out, id)
		}
	}
	return out
}

// ComputeCandidates recomputes every node's candidate sets against the
// live middlebox population, without touching any node. It returns an
// error if some function has no live provider left — enforcement of that
// function is impossible and the operator must know. Callers whose nodes
// run on their own goroutines (the live runtime) apply the result inside
// each node's owner; single-threaded callers can use Reassign directly.
func (c *Controller) ComputeCandidates() (map[topo.NodeID]map[policy.FuncType][]topo.NodeID, error) {
	for _, e := range c.dep.Functions() {
		if len(c.liveProviders(e)) == 0 {
			return nil, &NoLiveProviderError{Func: e}
		}
	}
	c.computeAssignments()
	return c.candidates, nil
}

// Reassign recomputes candidate sets (see ComputeCandidates) and installs
// them in place on the given nodes, preserving flow/label soft state.
// The caller must own the nodes (no concurrent dataplane activity).
func (c *Controller) Reassign(nodes map[topo.NodeID]*enforce.Node) error {
	cands, err := c.ComputeCandidates()
	if err != nil {
		return err
	}
	if err := c.verifyPlan(nil); err != nil {
		return err
	}
	for id, n := range nodes {
		if cc, ok := cands[id]; ok {
			n.SetCandidates(cc)
		}
	}
	return nil
}
