package controller

import (
	"sdme/internal/enforce"
	"sdme/internal/topo"
)

// Stage 2 of the compilation pipeline: incremental re-solve. A Pipeline
// owns the last compiled plan; on each Recompute it compiles the current
// inputs (Stage 1), determines which chain instances are dirty via the
// instance identity hashes and the dependency index, re-solves only those
// (carrying every clean instance's weights forward and charging its
// expected loads as constant base loads in the LP), and diffs the result
// against the previous plan into per-node ConfigDeltas (Stage 3). When
// the dirty fraction exceeds DirtyThreshold the scoped solve would
// rebuild most of the program anyway, so the pipeline falls back to a
// full solve — which is also what re-tightens the spread heuristic's
// carried approximations.
type Pipeline struct {
	c    *Controller
	opts PipelineOptions

	plan    *Plan
	version uint64

	// Explicit dirty marks, folded into the hash-based detection at the
	// next Recompute (they force instances dirty even when their inputs
	// hash equal, e.g. to re-tighten carried spread approximations).
	dirtyPolicies map[int]bool
	dirtyNodes    map[topo.NodeID]bool
}

// PipelineOptions configures a Pipeline.
type PipelineOptions struct {
	// Fine selects the Eq. (1) fine-grained formulation.
	Fine bool
	// DirtyThreshold is the dirty-instance fraction above which Recompute
	// performs a full solve instead of a scoped one. Zero means the
	// default of 0.5; negative disables scoped solves entirely.
	DirtyThreshold float64
}

func (o PipelineOptions) threshold() float64 {
	if o.DirtyThreshold == 0 {
		return 0.5
	}
	return o.DirtyThreshold
}

// PlanStats describes one Recompute.
type PlanStats struct {
	// Instances / Dirty count the plan's chain instances and how many of
	// them re-entered the LP.
	Instances, Dirty int
	// FullSolve reports whether the dirty set exceeded the threshold (or
	// no previous plan existed) and the LP was solved from scratch.
	FullSolve bool
	// Solved reports whether an LP ran at all (false for HP/Random
	// strategies and for no-op recomputes).
	Solved bool
	// Delta sizes the emitted configuration diff.
	Delta DeltaStats
}

// PlanUpdate is the outcome of one Recompute: the new plan, the per-node
// deltas transforming the previous plan's configuration into it (nil on
// the first compile, which must be rolled out as full configurations),
// and the merged solution for weight installation paths that want it.
type PlanUpdate struct {
	Plan     *Plan
	Solution *LBSolution
	Deltas   map[topo.NodeID]enforce.ConfigDelta
	Stats    PlanStats
}

// NewPipeline creates an incremental compilation pipeline over the
// controller.
func (c *Controller) NewPipeline(opts PipelineOptions) *Pipeline {
	return &Pipeline{
		c:             c,
		opts:          opts,
		dirtyPolicies: make(map[int]bool),
		dirtyNodes:    make(map[topo.NodeID]bool),
	}
}

// Plan returns the last compiled plan (nil before the first Recompute).
func (p *Pipeline) Plan() *Plan { return p.plan }

// PolicyChanged marks a policy as edited (added, removed or updated):
// every chain instance depending on it re-enters the LP at the next
// Recompute even if its inputs hash equal.
func (p *Pipeline) PolicyChanged(id int) { p.dirtyPolicies[id] = true }

// NodeChanged marks a node event (failure, recovery, capacity change):
// every chain instance touching the node is forced dirty at the next
// Recompute.
func (p *Pipeline) NodeChanged(id topo.NodeID) { p.dirtyNodes[id] = true }

// Recompute runs the three pipeline stages over the given measurements
// and returns the new plan plus the deltas that reach it from the
// previous one.
func (p *Pipeline) Recompute(meas Measurements) (*PlanUpdate, error) {
	c := p.c
	startUS := c.solveStart()
	plan, err := c.CompilePlan(meas, p.opts.Fine)
	if err != nil {
		return nil, err
	}

	dirty := p.dirtySet(plan)
	stats := PlanStats{Instances: len(plan.Order), Dirty: len(dirty)}

	if c.opts.Strategy == enforce.LoadBalanced && len(plan.Order) > 0 {
		if err := p.solve(plan, dirty, &stats); err != nil {
			return nil, err
		}
	} else if err := c.verifyPlanWith(plan.Candidates, nil); err != nil {
		// No LP to run, but the candidate plan still has to hold the
		// static invariants before it can be diffed and pushed.
		return nil, err
	}

	var deltas map[topo.NodeID]enforce.ConfigDelta
	if p.plan != nil {
		deltas, stats.Delta = DiffPlans(p.plan, plan)
	}

	p.version++
	plan.Version = p.version
	sol := &LBSolution{Lambda: plan.Lambda, Weights: plan.Weights, InstanceLoads: plan.InstanceLoads}
	if stats.Solved {
		// Journal the merged plan (write-ahead, like solveChainLP) and
		// record solve metrics before the caller can push anything.
		if err := c.journalWeights(sol); err != nil {
			return nil, err
		}
		c.observeSolveStats(sol, startUS)
		c.lastWeights = plan.Weights
	}
	c.observePlanDelta(stats.Delta)
	p.plan = plan
	p.dirtyPolicies = make(map[int]bool)
	p.dirtyNodes = make(map[topo.NodeID]bool)

	upd := &PlanUpdate{Plan: plan, Deltas: deltas, Stats: stats}
	if stats.Solved {
		upd.Solution = sol
	}
	return upd, nil
}

// dirtySet computes which of the new plan's instances must re-enter the
// LP: instances that are new or whose identity hash changed (policy rule,
// demand, or any candidate list along the chain), plus instances matched
// by explicit PolicyChanged/NodeChanged marks.
func (p *Pipeline) dirtySet(plan *Plan) map[InstanceKey]bool {
	dirty := make(map[InstanceKey]bool)
	if p.plan == nil {
		for _, k := range plan.Order {
			dirty[k] = true
		}
		return dirty
	}
	for _, k := range plan.Order {
		old, ok := p.plan.Instances[k]
		if !ok || old.Hash != plan.Instances[k].Hash {
			dirty[k] = true
		}
	}
	for id := range p.dirtyPolicies {
		for _, k := range plan.Index.ByPolicy[id] {
			dirty[k] = true
		}
	}
	for id := range p.dirtyNodes {
		for _, k := range plan.Index.ByNode[id] {
			dirty[k] = true
		}
	}
	return dirty
}

// solve runs Stage 2 proper: scoped or full LP solve, weight merge, and
// verification (scoped to the dirty policies on the scoped path).
func (p *Pipeline) solve(plan *Plan, dirty map[InstanceKey]bool, stats *PlanStats) error {
	c := p.c
	full := p.plan == nil || p.plan.Weights == nil ||
		p.opts.DirtyThreshold < 0 ||
		float64(len(dirty)) > p.opts.threshold()*float64(len(plan.Order))

	if !full && len(dirty) == 0 {
		// Nothing re-enters the LP: carry the previous solution through,
		// dropping entries whose instances disappeared.
		plan.Weights, plan.InstanceLoads = p.carryForward(plan, dirty)
		plan.Lambda = p.plan.Lambda
		return nil
	}

	if full {
		sol, err := c.solveChainLPWith(orderedInstances(plan, nil), nil)
		if err != nil {
			return err
		}
		if err := c.verifyPlanWith(plan.Candidates, sol.Weights); err != nil {
			return err
		}
		plan.Weights, plan.InstanceLoads = sol.Weights, sol.InstanceLoads
		plan.Lambda = sol.Lambda
		stats.FullSolve, stats.Solved = true, true
		return nil
	}

	// Scoped solve: clean instances keep their weights and charge their
	// previous expected loads as base capacity consumption.
	carriedW, carriedLoads := p.carryForward(plan, dirty)
	base := make(map[topo.NodeID]float64)
	for _, loads := range carriedLoads {
		for x, l := range loads {
			base[x] += l
		}
	}
	sol, err := c.solveChainLPWith(orderedInstances(plan, dirty), base)
	if err != nil {
		return err
	}
	dirtyPolicies := make(map[int]bool, len(dirty))
	for k := range dirty {
		dirtyPolicies[k.PolicyID] = true
	}
	plan.Weights = mergeWeights(carriedW, sol.Weights)
	plan.Lambda = sol.Lambda
	plan.InstanceLoads = carriedLoads
	for k, loads := range sol.InstanceLoads {
		plan.InstanceLoads[k] = loads
	}
	if err := c.verifyPlanScoped(plan.Candidates, plan.Weights, dirtyPolicies); err != nil {
		return err
	}
	stats.Solved = true
	return nil
}

// carryForward extracts the previous plan's weights and instance loads
// for every clean instance that still exists in the new plan.
func (p *Pipeline) carryForward(plan *Plan, dirty map[InstanceKey]bool) (weightPlan, map[InstanceKey]map[topo.NodeID]float64) {
	keep := make(map[InstanceKey]bool, len(plan.Instances))
	for k := range plan.Instances {
		if !dirty[k] {
			keep[k] = true
		}
	}
	w := make(weightPlan)
	for node, byKey := range p.plan.Weights {
		for k, vec := range byKey {
			ik := InstanceKey{PolicyID: k.PolicyID, SrcSubnet: k.SrcSubnet, DstSubnet: k.DstSubnet}
			if !keep[ik] {
				continue
			}
			m := w[node]
			if m == nil {
				m = make(map[enforce.WeightKey][]float64)
				w[node] = m
			}
			m[k] = vec
		}
	}
	loads := make(map[InstanceKey]map[topo.NodeID]float64, len(keep))
	for k := range keep {
		if l, ok := p.plan.InstanceLoads[k]; ok {
			loads[k] = l
		}
	}
	return w, loads
}

// mergeWeights folds the scoped solution's vectors over the carried plan.
func mergeWeights(carried, solved weightPlan) weightPlan {
	out := carried
	if out == nil {
		out = make(weightPlan)
	}
	for node, byKey := range solved {
		m := out[node]
		if m == nil {
			m = make(map[enforce.WeightKey][]float64)
			out[node] = m
		}
		for k, vec := range byKey {
			m[k] = vec
		}
	}
	return out
}

// orderedInstances returns the plan's instances in canonical order,
// restricted to the given key set (nil selects all).
func orderedInstances(plan *Plan, keys map[InstanceKey]bool) []*ChainInstance {
	out := make([]*ChainInstance, 0, len(plan.Order))
	for _, k := range plan.Order {
		if keys == nil || keys[k] {
			out = append(out, plan.Instances[k])
		}
	}
	return out
}
