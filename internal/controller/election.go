package controller

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"sdme/internal/metrics"
	"sdme/internal/mgmt"
)

// Lease-based leader election among N controller replicas (DESIGN §11).
// Replicas exchange LeaseRequest / LeaseGrant / Heartbeat envelopes —
// the same wire format the management channel uses — and at most one
// replica holds the leadership lease for any given term:
//
//   - a follower that hears no leader heartbeat within a randomized
//     election timeout becomes a candidate, increments the term, and bids
//     for the lease;
//   - each peer grants at most one lease per term, and only to a
//     candidate whose journal is at least as up-to-date as its own —
//     Raft's lexicographic (lastTerm, length) criterion, where lastTerm
//     is the term of the leader that last verifiably extended the
//     journal. Length alone would elect a deposed leader whose un-acked
//     tail outweighs a newer leader's quorum-acked records, losing them;
//   - a candidate with a quorum of grants (itself included) leads, and
//     refreshes the lease with periodic heartbeats;
//   - a leader that cannot hear a quorum of heartbeat replies within the
//     lease window deposes ITSELF — the other side of the partition has
//     (or will have) a newer term, and a self-deposed leader stops
//     pushing plans before its stale term could reach any agent.
//
// All timing flows through an injected ElectionClock, so the sim
// substrate runs whole election histories on virtual time and a takeover
// trace is a deterministic function of the seed.

// Role is a replica's position in the election state machine.
type Role int32

const (
	RoleFollower Role = iota
	RoleCandidate
	RoleLeader
)

func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	}
	return fmt.Sprintf("Role(%d)", int32(r))
}

// Election metric family names, labeled by replica.
const (
	MetricElectionRole        = "sdme_election_role"
	MetricElectionTerm        = "sdme_election_term"
	MetricElectionTransitions = "sdme_election_transitions_total"
)

// PeerTransport carries one envelope to a peer replica, best effort —
// the election tolerates loss (the next timeout or heartbeat retries).
type PeerTransport interface {
	Send(to int, env *mgmt.Envelope) error
}

// ElectionClock abstracts time for the elector: the sim substrate
// injects the virtual clock, live deployments use WallClock.
type ElectionClock interface {
	// NowUS is the current time in microseconds.
	NowUS() int64
	// AfterUS schedules fn after the delay; the returned cancel stops an
	// unfired timer (a fired or racing timer is tolerated — every
	// callback revalidates state under the elector's lock).
	AfterUS(delayUS int64, fn func()) (cancel func())
}

// WallClock is the live-substrate ElectionClock.
type WallClock struct{}

func (WallClock) NowUS() int64 { return time.Now().UnixMicro() }

func (WallClock) AfterUS(delayUS int64, fn func()) func() {
	t := time.AfterFunc(time.Duration(delayUS)*time.Microsecond, fn)
	return func() { t.Stop() }
}

// ElectorConfig configures one replica's elector.
type ElectorConfig struct {
	// ID is this replica's index; Peers lists the other replicas'.
	ID    int
	Peers []int
	// Quorum is the number of lease grants (self included) needed to
	// lead; 0 means a majority of len(Peers)+1.
	Quorum int
	// LeaseUS is the leadership lease in microseconds (default 150ms
	// worth). Election timeouts are drawn uniformly from [LeaseUS,
	// 2·LeaseUS); heartbeats fire every HeartbeatUS (default LeaseUS/3).
	LeaseUS     int64
	HeartbeatUS int64
	// Seed drives the randomized election timeouts (default ID+1).
	Seed      int64
	Clock     ElectionClock
	Transport PeerTransport
	// JournalBytes reports this replica's intact journal length for the
	// up-to-date check (nil = 0). JournalCRC reports the running CRC-32
	// over that prefix; leader heartbeats carry both so standbys detect
	// divergence, not just lag (nil = 0). JournalLastTerm reports the
	// term of the leader that last verifiably extended this replica's
	// journal (nil = 0); the up-to-date check compares (lastTerm, bytes)
	// lexicographically, never bytes alone.
	JournalBytes    func() int64
	JournalCRC      func() uint32
	JournalLastTerm func() uint64
	// OnLeader fires when this replica wins a term; OnDeposed fires when
	// a leader steps down (higher term seen, or lease quorum lost).
	// OnHeartbeat fires for each accepted leader heartbeat — the standby
	// replication hooks it to detect falling behind. All callbacks run
	// outside the elector's lock.
	OnLeader    func(term uint64)
	OnDeposed   func(term uint64)
	OnHeartbeat func(hb mgmt.Heartbeat)
}

func (c *ElectorConfig) fill() {
	if c.Quorum <= 0 {
		c.Quorum = (len(c.Peers)+1)/2 + 1
	}
	if c.LeaseUS <= 0 {
		c.LeaseUS = 150_000
	}
	if c.HeartbeatUS <= 0 {
		c.HeartbeatUS = c.LeaseUS / 3
	}
	if c.HeartbeatUS <= 0 {
		c.HeartbeatUS = 1
	}
	if c.Seed == 0 {
		c.Seed = int64(c.ID) + 1
	}
	if c.Clock == nil {
		c.Clock = WallClock{}
	}
}

// Elector is one replica's election state machine. Start it once; feed
// every election envelope from the peer transport to Deliver.
type Elector struct {
	cfg ElectorConfig

	mu     sync.Mutex
	role   Role
	term   uint64
	leader int // replica id, -1 unknown
	// grantedTerm/grantedTo record the one lease granted per term.
	grantedTerm uint64
	grantedTo   int
	votes       map[int]bool
	// ackAt is the leader's lease accounting: last heartbeat-reply time
	// per peer.
	ackAt       map[int]int64
	cancelTimer func()
	cancelHB    func()
	stopped     bool
	rng         *rand.Rand

	gRole, gTerm *metrics.Gauge
	cTransitions *metrics.Counter
}

// NewElector builds an elector; call Start to arm its first election
// timeout.
func NewElector(cfg ElectorConfig) *Elector {
	cfg.fill()
	return &Elector{
		cfg:    cfg,
		leader: -1,
		votes:  make(map[int]bool),
		ackAt:  make(map[int]int64),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetMetrics exports the replica's role and term as gauges and its
// role transitions as a counter, labeled by replica id.
func (e *Elector) SetMetrics(reg *metrics.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if reg == nil {
		e.gRole, e.gTerm, e.cTransitions = nil, nil, nil
		return
	}
	replica := strconv.Itoa(e.cfg.ID)
	e.gRole = reg.Gauge(MetricElectionRole, "replica", replica)
	e.gTerm = reg.Gauge(MetricElectionTerm, "replica", replica)
	e.cTransitions = reg.Counter(MetricElectionTransitions, "replica", replica)
	e.gRole.Set(float64(e.role))
	e.gTerm.Set(float64(e.term))
}

// Role returns the replica's current role.
func (e *Elector) Role() Role {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.role
}

// Term returns the replica's current term.
func (e *Elector) Term() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.term
}

// Leader returns the replica the elector believes leads (-1 unknown)
// and the term that belief is scoped to.
func (e *Elector) Leader() (id int, term uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.leader, e.term
}

// Start arms the first election timeout.
func (e *Elector) Start() {
	e.mu.Lock()
	e.resetTimerLocked()
	e.mu.Unlock()
}

// Stop halts the elector: timers are cancelled and every subsequent
// event is ignored. Used both for shutdown and to model a crashed
// replica.
func (e *Elector) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stopped = true
	if e.cancelTimer != nil {
		e.cancelTimer()
		e.cancelTimer = nil
	}
	if e.cancelHB != nil {
		e.cancelHB()
		e.cancelHB = nil
	}
}

// journalBytes reads the replica's intact journal length.
func (e *Elector) journalBytes() int64 {
	if e.cfg.JournalBytes == nil {
		return 0
	}
	return e.cfg.JournalBytes()
}

// journalCRC reads the running CRC over the replica's intact journal.
func (e *Elector) journalCRC() uint32 {
	if e.cfg.JournalCRC == nil {
		return 0
	}
	return e.cfg.JournalCRC()
}

// journalLastTerm reads the term of the leader that last verifiably
// extended the replica's journal.
func (e *Elector) journalLastTerm() uint64 {
	if e.cfg.JournalLastTerm == nil {
		return 0
	}
	return e.cfg.JournalLastTerm()
}

// resetTimerLocked (re)arms the election timeout with a fresh random
// draw from [LeaseUS, 2·LeaseUS).
func (e *Elector) resetTimerLocked() {
	if e.cancelTimer != nil {
		e.cancelTimer()
	}
	d := e.cfg.LeaseUS + e.rng.Int63n(e.cfg.LeaseUS)
	e.cancelTimer = e.cfg.Clock.AfterUS(d, e.onElectionTimeout)
}

// send queues one envelope to a peer, swallowing transport errors (the
// protocol retries by timeout).
func (e *Elector) send(to int, typ string, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	_ = e.cfg.Transport.Send(to, &mgmt.Envelope{T: typ, Data: data})
}

// onElectionTimeout starts (or retries) an election.
func (e *Elector) onElectionTimeout() {
	e.mu.Lock()
	if e.stopped || e.role == RoleLeader {
		e.mu.Unlock()
		return
	}
	e.setRoleLocked(RoleCandidate)
	e.term++
	e.setTermLocked(e.term)
	e.grantedTerm = e.term
	e.grantedTo = e.cfg.ID
	e.votes = map[int]bool{e.cfg.ID: true}
	e.leader = -1
	var after func()
	if len(e.votes) >= e.cfg.Quorum {
		after = e.becomeLeaderLocked()
		e.mu.Unlock()
		if after != nil {
			after()
		}
		return
	}
	e.resetTimerLocked()
	req := mgmt.LeaseRequest{
		Candidate:    e.cfg.ID,
		Term:         e.term,
		JournalBytes: e.journalBytes(),
		LastTerm:     e.journalLastTerm(),
	}
	peers := append([]int(nil), e.cfg.Peers...)
	e.mu.Unlock()
	for _, p := range peers {
		e.send(p, mgmt.TypeLeaseRequest, req)
	}
}

// becomeLeaderLocked flips the replica to leader for the current term
// and returns the callback to fire outside the lock.
func (e *Elector) becomeLeaderLocked() func() {
	e.setRoleLocked(RoleLeader)
	e.leader = e.cfg.ID
	if e.cancelTimer != nil {
		e.cancelTimer()
		e.cancelTimer = nil
	}
	now := e.cfg.Clock.NowUS()
	for _, p := range e.cfg.Peers {
		e.ackAt[p] = now
	}
	e.scheduleHeartbeatLocked(0)
	term := e.term
	cb := e.cfg.OnLeader
	if cb == nil {
		return nil
	}
	return func() { cb(term) }
}

// scheduleHeartbeatLocked arms the leader's next heartbeat tick.
func (e *Elector) scheduleHeartbeatLocked(delayUS int64) {
	if e.cancelHB != nil {
		e.cancelHB()
	}
	e.cancelHB = e.cfg.Clock.AfterUS(delayUS, e.onHeartbeatTick)
}

// onHeartbeatTick refreshes the lease: verify a quorum of followers
// answered within the lease window, then broadcast the next heartbeat.
func (e *Elector) onHeartbeatTick() {
	e.mu.Lock()
	if e.stopped || e.role != RoleLeader {
		e.mu.Unlock()
		return
	}
	now := e.cfg.Clock.NowUS()
	alive := 1 // self
	for _, p := range e.cfg.Peers {
		if now-e.ackAt[p] <= e.cfg.LeaseUS {
			alive++
		}
	}
	if alive < e.cfg.Quorum {
		// Lease lost: a partition separates this leader from its quorum.
		// Self-depose before a newer term's leader and this one disagree at
		// the agents.
		after := e.stepDownLocked(e.term)
		e.mu.Unlock()
		if after != nil {
			after()
		}
		return
	}
	e.scheduleHeartbeatLocked(e.cfg.HeartbeatUS)
	hb := mgmt.Heartbeat{Leader: e.cfg.ID, Term: e.term, JournalBytes: e.journalBytes(), JournalCRC: e.journalCRC()}
	peers := append([]int(nil), e.cfg.Peers...)
	e.mu.Unlock()
	for _, p := range peers {
		e.send(p, mgmt.TypeHeartbeat, hb)
	}
}

// stepDownLocked demotes a leader (or candidate) to follower at the
// given term, rearming the election timeout. It returns the OnDeposed
// callback to fire outside the lock (nil if the replica did not lead).
func (e *Elector) stepDownLocked(term uint64) func() {
	wasLeader := e.role == RoleLeader
	e.setRoleLocked(RoleFollower)
	e.leader = -1
	if e.cancelHB != nil {
		e.cancelHB()
		e.cancelHB = nil
	}
	e.resetTimerLocked()
	if !wasLeader || e.cfg.OnDeposed == nil {
		return nil
	}
	cb := e.cfg.OnDeposed
	return func() { cb(term) }
}

// adoptTermLocked advances to a higher term observed on the wire,
// stepping down if leading. Returns the deposition callback (nil often).
func (e *Elector) adoptTermLocked(term uint64) func() {
	old := e.term
	e.setTermLocked(term)
	return e.stepDownLockedIfNeeded(old)
}

func (e *Elector) stepDownLockedIfNeeded(oldTerm uint64) func() {
	if e.role == RoleFollower && e.leader == -1 {
		// Already a leaderless follower: just rearm the timeout.
		e.resetTimerLocked()
		return nil
	}
	return e.stepDownLocked(oldTerm)
}

func (e *Elector) setRoleLocked(r Role) {
	if e.role != r && e.cTransitions != nil {
		e.cTransitions.Inc()
	}
	e.role = r
	if e.gRole != nil {
		e.gRole.Set(float64(r))
	}
}

func (e *Elector) setTermLocked(t uint64) {
	e.term = t
	if e.gTerm != nil {
		e.gTerm.Set(float64(t))
	}
}

// Deliver feeds one election envelope from the peer transport.
// Unknown envelope types are ignored (the caller routes replication
// types to the Replicator / StandbyJournal instead).
func (e *Elector) Deliver(env *mgmt.Envelope) {
	switch env.T {
	case mgmt.TypeLeaseRequest:
		var req mgmt.LeaseRequest
		if json.Unmarshal(env.Data, &req) != nil || req.Validate() != nil {
			return
		}
		e.handleLeaseRequest(req)
	case mgmt.TypeLeaseGrant:
		var g mgmt.LeaseGrant
		if json.Unmarshal(env.Data, &g) != nil || g.Validate() != nil {
			return
		}
		e.handleLeaseGrant(g)
	case mgmt.TypeHeartbeat:
		var hb mgmt.Heartbeat
		if json.Unmarshal(env.Data, &hb) != nil || hb.Validate() != nil {
			return
		}
		e.handleHeartbeat(hb)
	}
}

func (e *Elector) handleLeaseRequest(req mgmt.LeaseRequest) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	var after func()
	if req.Term > e.term {
		after = e.adoptTermLocked(req.Term)
	}
	// Raft's up-to-date criterion on (lastTerm, length): a candidate with
	// a staler lastTerm is refused no matter how long its journal — a
	// deposed leader's un-acked tail must never outvote a newer leader's
	// quorum-acked records.
	upToDate := req.LastTerm > e.journalLastTerm() ||
		(req.LastTerm == e.journalLastTerm() && req.JournalBytes >= e.journalBytes())
	granted := false
	if req.Term == e.term && e.role != RoleLeader &&
		(e.grantedTerm < req.Term || (e.grantedTerm == req.Term && e.grantedTo == req.Candidate)) &&
		upToDate {
		granted = true
		e.grantedTerm = req.Term
		e.grantedTo = req.Candidate
		// Granting a lease is a promise not to bid for its duration.
		e.resetTimerLocked()
	}
	reply := mgmt.LeaseGrant{Voter: e.cfg.ID, Term: e.term, Granted: granted}
	e.mu.Unlock()
	if after != nil {
		after()
	}
	e.send(req.Candidate, mgmt.TypeLeaseGrant, reply)
}

func (e *Elector) handleLeaseGrant(g mgmt.LeaseGrant) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	var after func()
	switch {
	case g.Term > e.term:
		after = e.adoptTermLocked(g.Term)
	case g.Granted && g.Term == e.term && e.role == RoleCandidate:
		e.votes[g.Voter] = true
		if len(e.votes) >= e.cfg.Quorum {
			after = e.becomeLeaderLocked()
		}
	}
	e.mu.Unlock()
	if after != nil {
		after()
	}
}

func (e *Elector) handleHeartbeat(hb mgmt.Heartbeat) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	if hb.Reply {
		// A follower's answer. A higher term in it deposes us; otherwise it
		// refreshes the lease accounting.
		var after func()
		if hb.Term > e.term {
			after = e.adoptTermLocked(hb.Term)
		} else if e.role == RoleLeader && hb.Term == e.term {
			e.ackAt[hb.Leader] = e.cfg.Clock.NowUS()
		}
		e.mu.Unlock()
		if after != nil {
			after()
		}
		return
	}
	if hb.Term < e.term {
		// Stale leader: answer with our term so it learns it was deposed.
		reply := mgmt.Heartbeat{Leader: e.cfg.ID, Term: e.term, Reply: true}
		e.mu.Unlock()
		e.send(hb.Leader, mgmt.TypeHeartbeat, reply)
		return
	}
	if hb.Term == e.term && e.role == RoleLeader {
		// Two leaders in one term is impossible (each peer grants one lease
		// per term and quorums intersect); a replayed frame is ignored.
		e.mu.Unlock()
		return
	}
	var after func()
	if hb.Term > e.term {
		after = e.adoptTermLocked(hb.Term)
	} else if e.role == RoleCandidate {
		// Same term: the sender won the lease this replica bid for.
		// stepDownLocked fires no deposition callback for a candidate.
		after = e.stepDownLocked(e.term)
	}
	e.leader = hb.Leader
	e.resetTimerLocked()
	reply := mgmt.Heartbeat{Leader: e.cfg.ID, Term: e.term, JournalBytes: e.journalBytes(), Reply: true}
	onHB := e.cfg.OnHeartbeat
	e.mu.Unlock()
	if after != nil {
		after()
	}
	e.send(hb.Leader, mgmt.TypeHeartbeat, reply)
	if onHB != nil {
		onHB(hb)
	}
}
