package controller_test

import (
	"math"
	"math/rand"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
	"sdme/internal/workload"
)

// bed builds a small campus with the standard test middlebox population.
type bed struct {
	g   *topo.Graph
	dep *enforce.Deployment
	ap  *route.AllPairs
	tbl *policy.Table
}

func newBed(t *testing.T, seed int64, buildPolicies func(tbl *policy.Table)) *bed {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 6, EdgeRouters: 4, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[3], "fw2", policy.FuncFW)
	dep.AddMiddlebox(cores[5], "fw3", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)
	dep.AddMiddlebox(cores[4], "ids2", policy.FuncIDS)
	dep.AddMiddlebox(cores[2], "wp1", policy.FuncWP)
	dep.AddMiddlebox(cores[3], "tm1", policy.FuncTM)

	tbl := policy.NewTable()
	buildPolicies(tbl)
	return &bed{g: g, dep: dep, ap: route.NewAllPairs(g, route.RouterTransitOnly(g)), tbl: tbl}
}

func webPolicy(tbl *policy.Table) {
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})
}

func flow(src, dst int, port uint16, n uint16) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: topo.HostAddr(src, int(n%150)+1), Dst: topo.HostAddr(dst, int(n%150)+1),
		SrcPort: 20000 + n, DstPort: port, Proto: netaddr.ProtoTCP,
	}
}

func TestCandidateAssignment(t *testing.T) {
	b := newBed(t, 1, webPolicy)
	k := map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2, policy.FuncWP: 1, policy.FuncTM: 1}
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.HotPotato, K: k})

	for _, x := range append(append([]topo.NodeID{}, b.dep.ProxyNodes...), b.dep.MBNodes...) {
		cands := ctl.CandidatesOf(x)
		implemented := map[policy.FuncType]bool{}
		for _, f := range b.dep.FuncsOf(x) {
			implemented[f] = true
		}
		for _, e := range b.dep.Functions() {
			if implemented[e] {
				if cands[e] != nil {
					t.Errorf("node %v has candidates for its own function %v", x, e)
				}
				continue
			}
			got := cands[e]
			wantLen := k[e]
			if avail := len(b.dep.Providers(e)); wantLen > avail {
				wantLen = avail
			}
			if len(got) != wantLen {
				t.Fatalf("node %v candidates for %v = %v, want %d entries", x, e, got, wantLen)
			}
			// Verify closest-first ordering against raw distances.
			for i := 1; i < len(got); i++ {
				if b.ap.Dist(x, got[i-1]) > b.ap.Dist(x, got[i]) {
					t.Errorf("node %v candidates for %v not distance-ordered: %v", x, e, got)
				}
			}
			// Index 0 is the hot-potato target m_x^e.
			if want := b.ap.Closest(x, b.dep.Providers(e)); got[0] != want {
				t.Errorf("node %v m_x^%v = %v, want %v", x, e, got[0], want)
			}
		}
	}
}

func TestBuildNodesDistributesPolicies(t *testing.T) {
	b := newBed(t, 2, func(tbl *policy.Table) {
		// Policy 0: sources in subnet 1 only. Policy 1: wildcard source.
		d := policy.NewDescriptor()
		d.Src = topo.SubnetPrefix(1)
		tbl.Add(d, policy.ActionList{policy.FuncFW})
		d2 := policy.NewDescriptor()
		d2.DstPort = netaddr.SinglePort(80)
		tbl.Add(d2, policy.ActionList{policy.FuncIDS, policy.FuncTM})
	})
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.HotPotato})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != len(b.dep.ProxyNodes)+len(b.dep.MBNodes) {
		t.Fatalf("built %d nodes", len(nodes))
	}

	p1, _ := b.dep.ProxyFor(1)
	if got := len(nodes[p1].Config().Policies); got != 2 {
		t.Errorf("proxy 1 has %d policies, want 2", got)
	}
	p2, _ := b.dep.ProxyFor(2)
	if got := len(nodes[p2].Config().Policies); got != 1 {
		t.Errorf("proxy 2 has %d policies, want 1 (wildcard only)", got)
	}
	// FW middleboxes carry only the FW policy; IDS boxes only the other.
	for _, id := range b.dep.Providers(policy.FuncFW) {
		ps := nodes[id].Config().Policies
		if len(ps) != 1 || !ps[0].Actions.Contains(policy.FuncFW) {
			t.Errorf("FW box %v has policies %v", id, ps)
		}
	}
	for _, id := range b.dep.Providers(policy.FuncWP) {
		if got := len(nodes[id].Config().Policies); got != 0 {
			t.Errorf("WP box has %d policies, want 0", got)
		}
	}
}

func TestSolveLBBalancesTwoFirewalls(t *testing.T) {
	// One policy (FW only), two sources, firewalls reachable by all:
	// the optimum splits the 300 packets evenly across... all three FWs
	// if k covers them; with k=3 the LP must reach max load 100.
	b := newBed(t, 3, func(tbl *policy.Table) {
		d := policy.NewDescriptor()
		d.DstPort = netaddr.SinglePort(80)
		tbl.Add(d, policy.ActionList{policy.FuncFW})
	})
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 3},
	})
	pid := b.tbl.All()[0].ID
	meas := controller.Measurements{
		{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 200,
		{PolicyID: pid, SrcSubnet: 3, DstSubnet: 4}: 100,
	}
	sol, err := ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Lambda-100) > 1e-6 {
		t.Errorf("lambda = %v, want 100", sol.Lambda)
	}
	var total float64
	for _, id := range b.dep.Providers(policy.FuncFW) {
		l := sol.ExpectedLoads[id]
		if l > 100+1e-6 {
			t.Errorf("FW %v expected load %v exceeds optimum", id, l)
		}
		total += l
	}
	if math.Abs(total-300) > 1e-6 {
		t.Errorf("total FW load = %v, want 300", total)
	}
	// Weights exist for both source proxies.
	for _, s := range []int{1, 3} {
		p, _ := b.dep.ProxyFor(s)
		w := sol.Weights[p][enforce.WeightKey{PolicyID: pid, Func: policy.FuncFW}]
		if len(w) != 3 {
			t.Fatalf("proxy %d weights = %v", s, w)
		}
		var sum float64
		for _, v := range w {
			if v < -1e-9 {
				t.Errorf("negative weight %v", v)
			}
			sum += v
		}
		wantVol := 200.0
		if s == 3 {
			wantVol = 100
		}
		if math.Abs(sum-wantVol) > 1e-6 {
			t.Errorf("proxy %d weight mass = %v, want %v", s, sum, wantVol)
		}
	}
}

func TestSolveLBChainConservation(t *testing.T) {
	// FW -> IDS chain: total load on FWs == total on IDSes == demand.
	b := newBed(t, 4, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	pid := b.tbl.All()[0].ID
	meas := controller.Measurements{
		{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 500,
		{PolicyID: pid, SrcSubnet: 2, DstSubnet: 3}: 300,
		{PolicyID: pid, SrcSubnet: 4, DstSubnet: 1}: 200,
	}
	sol, err := ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(f policy.FuncType) float64 {
		var s float64
		for _, id := range b.dep.Providers(f) {
			s += sol.ExpectedLoads[id]
		}
		return s
	}
	if math.Abs(sum(policy.FuncFW)-1000) > 1e-6 {
		t.Errorf("FW total = %v, want 1000", sum(policy.FuncFW))
	}
	if math.Abs(sum(policy.FuncIDS)-1000) > 1e-6 {
		t.Errorf("IDS total = %v, want 1000", sum(policy.FuncIDS))
	}
	// λ is the max expected load under unit capacities (the phase-two
	// spread pass allows a ~1e-7 relative slack above λ*).
	var maxLoad float64
	for _, l := range sol.ExpectedLoads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if math.Abs(sol.Lambda-maxLoad) > 1e-4*(1+sol.Lambda) {
		t.Errorf("lambda %v != max load %v", sol.Lambda, maxLoad)
	}
	// Lower bound: IDS total / |IDS| (2 boxes).
	if sol.Lambda < 500-1e-6 {
		t.Errorf("lambda %v below information-theoretic bound 500", sol.Lambda)
	}
}

func TestSolveLBFineAgreesOnOptimum(t *testing.T) {
	// Aggregated Eq.(2) can only do as well or better than fine Eq.(1)
	// (it relaxes per-(s,d) conservation); both must respect the lower
	// bound, and on symmetric instances they coincide.
	b := newBed(t, 5, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 3, policy.FuncIDS: 2},
	})
	pid := b.tbl.All()[0].ID
	meas := controller.Measurements{
		{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 400,
		{PolicyID: pid, SrcSubnet: 2, DstSubnet: 1}: 400,
		{PolicyID: pid, SrcSubnet: 3, DstSubnet: 4}: 400,
	}
	agg, err := ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := ctl.SolveLBFine(meas)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Lambda > fine.Lambda+1e-6 {
		t.Errorf("aggregated λ %v worse than fine λ %v", agg.Lambda, fine.Lambda)
	}
	lower := 1200.0 / 2 // IDS bottleneck: 2 boxes
	if fine.Lambda < lower-1e-6 || agg.Lambda < lower-1e-6 {
		t.Errorf("λ below bound %v: agg %v fine %v", lower, agg.Lambda, fine.Lambda)
	}
	if fine.Vars <= agg.Vars {
		t.Errorf("fine formulation should use more variables: %d vs %d", fine.Vars, agg.Vars)
	}
	// Fine weights carry subnet tags.
	p1, _ := b.dep.ProxyFor(1)
	if _, ok := fine.Weights[p1][enforce.WeightKey{PolicyID: pid, Func: policy.FuncFW, SrcSubnet: 1, DstSubnet: 2}]; !ok {
		t.Error("fine solution lacks per-(s,d) weight key")
	}
}

func TestRealizedLoadsTrackLPSolution(t *testing.T) {
	// Install the LP weights and push a large flow population through the
	// evaluator: realized max load must be close to λ and far below the
	// hot-potato max load.
	b := newBed(t, 6, webPolicy)
	rng := rand.New(rand.NewSource(66))

	var demands []enforce.FlowDemand
	for i := 0; i < 4000; i++ {
		src := 1 + rng.Intn(4)
		dst := 1 + rng.Intn(3)
		if dst >= src {
			dst++
		}
		demands = append(demands, enforce.FlowDemand{
			Tuple:   flow(src, dst, 80, uint16(rng.Intn(40000))),
			Packets: int64(1 + rng.Intn(20)),
		})
	}

	kk := map[policy.FuncType]int{policy.FuncFW: 3, policy.FuncIDS: 2}
	lbCtl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.LoadBalanced, K: kk, HashSeed: 5})
	nodes, err := lbCtl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	meas := controller.MeasurementsFromFlows(b.dep, b.tbl, demands)
	sol, err := lbCtl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	controller.ApplyWeights(nodes, sol)
	lbReport, err := enforce.EvaluateFlows(nodes, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}

	hpCtl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.HotPotato, K: kk, HashSeed: 5})
	hpNodes, err := hpCtl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	hpReport, err := enforce.EvaluateFlows(hpNodes, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range []policy.FuncType{policy.FuncFW, policy.FuncIDS} {
		lbMax := float64(lbReport.MaxLoad(b.dep, f))
		hpMax := float64(hpReport.MaxLoad(b.dep, f))
		// HP can itself be near-optimal on a symmetric bed; LB must not
		// be worse beyond hash-sampling noise (~2%).
		if lbMax > hpMax*1.02+1 {
			t.Errorf("%v: LB max %v worse than HP max %v", f, lbMax, hpMax)
		}
		// Realized max within 10% of the LP's λ-implied bound for this
		// function (per-node salted hashing leaves only sampling noise).
		var lpMax float64
		for _, id := range b.dep.Providers(f) {
			if l := sol.ExpectedLoads[id]; l > lpMax {
				lpMax = l
			}
		}
		if lbMax > lpMax*1.1+1 {
			t.Errorf("%v: realized LB max %v far above LP expectation %v", f, lbMax, lpMax)
		}
	}
}

func TestInfeasibleCapRetriesUncapped(t *testing.T) {
	b := newBed(t, 7, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy:  enforce.LoadBalanced,
		K:         map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
		CapLambda: true, // with default capacity 1, any real demand overloads
	})
	pid := b.tbl.All()[0].ID
	meas := controller.Measurements{{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 1000}
	sol, err := ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Capped {
		t.Error("solution should report the cap was dropped")
	}
	if sol.Lambda <= 1 {
		t.Errorf("overloaded λ = %v, want > 1", sol.Lambda)
	}
}

func TestCapRespectedWhenFeasible(t *testing.T) {
	b := newBed(t, 8, webPolicy)
	caps := map[topo.NodeID]float64{}
	for _, id := range b.dep.MBNodes {
		caps[id] = 1e9
	}
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy:  enforce.LoadBalanced,
		K:         map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
		CapLambda: true,
		Capacity:  caps,
	})
	pid := b.tbl.All()[0].ID
	meas := controller.Measurements{{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 1000}
	sol, err := ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Capped {
		t.Error("cap should have been kept")
	}
	if sol.Lambda > 1 {
		t.Errorf("λ = %v with huge capacities", sol.Lambda)
	}
}

func TestMeasurementsFromFlowsMatchesProxyCounts(t *testing.T) {
	b := newBed(t, 9, webPolicy)
	demands := []enforce.FlowDemand{
		{Tuple: flow(1, 2, 80, 1), Packets: 5},
		{Tuple: flow(1, 3, 80, 2), Packets: 7},
		{Tuple: flow(2, 1, 9999, 3), Packets: 100}, // no policy match
	}
	meas := controller.MeasurementsFromFlows(b.dep, b.tbl, demands)
	pid := b.tbl.All()[0].ID
	if got := meas[enforce.MeasKey{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}]; got != 5 {
		t.Errorf("T(1,2) = %d", got)
	}
	if got := meas[enforce.MeasKey{PolicyID: pid, SrcSubnet: 1, DstSubnet: 3}]; got != 7 {
		t.Errorf("T(1,3) = %d", got)
	}
	var total int64
	for _, v := range meas {
		total += v
	}
	if total != 12 {
		t.Errorf("total measured = %d, want 12 (unmatched flow excluded)", total)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	k := controller.DefaultK()
	if k[policy.FuncFW] != 4 || k[policy.FuncIDS] != 4 || k[policy.FuncWP] != 2 || k[policy.FuncTM] != 2 {
		t.Errorf("DefaultK = %v", k)
	}
	c := controller.DefaultCounts()
	if c[policy.FuncFW] != 7 || c[policy.FuncIDS] != 7 || c[policy.FuncWP] != 4 || c[policy.FuncTM] != 4 {
		t.Errorf("DefaultCounts = %v", c)
	}
}

func TestRandomDeploymentAndFullCampusSolve(t *testing.T) {
	// End-to-end on the paper's actual campus configuration with the
	// workload generator: LB must beat HP's max load on IDS.
	rng := rand.New(rand.NewSource(10))
	g := topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	dep, err := controller.RandomDeployment(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))

	tbl := policy.NewTable()
	cfg := workload.GenConfig{Subnets: dep.NumSubnets(), PoliciesPerClass: 4}
	cps := workload.GeneratePolicies(cfg, tbl, rng)
	flows := workload.GenerateFlows(cfg, cps, 200000, rng)
	demands := make([]enforce.FlowDemand, len(flows))
	for i, f := range flows {
		demands[i] = enforce.FlowDemand{Tuple: f.Tuple, Packets: int64(f.Packets)}
	}
	meas := controller.MeasurementsFromFlows(dep, tbl, demands)

	run := func(strategy enforce.Strategy) *enforce.LoadReport {
		ctl := controller.New(dep, ap, tbl, controller.Options{
			Strategy: strategy, K: controller.DefaultK(), HashSeed: 77,
		})
		nodes, err := ctl.BuildNodes()
		if err != nil {
			t.Fatal(err)
		}
		if strategy == enforce.LoadBalanced {
			sol, err := ctl.SolveLB(meas)
			if err != nil {
				t.Fatal(err)
			}
			controller.ApplyWeights(nodes, sol)
		}
		report, err := enforce.EvaluateFlows(nodes, dep, ap, demands)
		if err != nil {
			t.Fatal(err)
		}
		return report
	}

	hp := run(enforce.HotPotato)
	lb := run(enforce.LoadBalanced)
	for _, f := range []policy.FuncType{policy.FuncFW, policy.FuncIDS} {
		if lb.MaxLoad(dep, f) > hp.MaxLoad(dep, f) {
			t.Errorf("%v: LB max %d > HP max %d", f, lb.MaxLoad(dep, f), hp.MaxLoad(dep, f))
		}
	}
	// The paper's headline: LB spreads IDS load to ≈ total/|IDS|.
	var idsTotal int64
	for _, l := range lb.LoadsOf(dep, policy.FuncIDS) {
		idsTotal += l
	}
	ideal := float64(idsTotal) / 7
	if got := float64(lb.MaxLoad(dep, policy.FuncIDS)); got > ideal*1.35 {
		t.Errorf("LB IDS max %v far above ideal %v", got, ideal)
	}
}
