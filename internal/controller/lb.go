package controller

import (
	"fmt"
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/lp"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// LBSolution is the outcome of a load-balancing optimization: the optimal
// λ (maximum load factor), the per-node probabilistic forwarding weights
// to install, and the middlebox loads the LP expects those weights to
// produce.
type LBSolution struct {
	Lambda float64
	// Capped reports whether the λ <= 1 constraint was kept. When the
	// instance is infeasible under the cap the controller re-solves
	// without it, reports λ > 1, and sets Capped false.
	Capped bool
	// Weights holds, per node, the weight vectors to install (parallel
	// to the node's candidate lists).
	Weights map[topo.NodeID]map[enforce.WeightKey][]float64
	// ExpectedLoads is the LP's per-middlebox load (same units as the
	// measurements, i.e. packets).
	ExpectedLoads map[topo.NodeID]float64
	// Vars / Constraints / Iterations describe the solved program; the
	// Eq. (1) vs Eq. (2) ablation reports these.
	Vars, Constraints, Iterations int
	// InstanceLoads attributes the expected load to the chain instance
	// producing it, so the incremental pipeline can carry unaffected
	// instances into later scoped solves as constant base loads.
	InstanceLoads map[InstanceKey]map[topo.NodeID]float64
}

// SolveLB solves the aggregated formulation (Eq. 2 of the paper) over
// the given measurements. Two exact reductions are applied (see
// DESIGN.md): sources with identical candidate sets share first-hop
// variables, and per-destination last-hop variables are merged into one
// virtual sink per policy.
func (c *Controller) SolveLB(meas Measurements) (*LBSolution, error) {
	insts, err := c.chainInstances(meas, false)
	if err != nil {
		return nil, err
	}
	return c.solveChainLP(insts)
}

// SolveLBFine solves the fine-grained formulation (Eq. 1): independent
// flow conservation and weight vectors per (source, destination, policy)
// triple. Variable count grows with |R|^2·|P|, so this is intended for
// small topologies and for cross-checking Eq. (2).
func (c *Controller) SolveLBFine(meas Measurements) (*LBSolution, error) {
	insts, err := c.chainInstances(meas, true)
	if err != nil {
		return nil, err
	}
	return c.solveChainLP(insts)
}

// policyIndex maps policy ID -> policy for the global table.
func (c *Controller) policyIndex() map[int]*policy.Policy {
	out := make(map[int]*policy.Policy, c.policies.Len())
	for _, p := range c.policies.All() {
		out[p.ID] = p
	}
	return out
}

// wRef remembers which LP variables become which node's weight vector.
type wRef struct {
	owner topo.NodeID
	key   enforce.WeightKey
	vars  []int
}

// solveChainLP builds and solves the min-λ program over the given chain
// instances, then extracts weights and expected loads.
//
// The optimization is lexicographic, mirroring the evenly spread
// solutions the paper reports: phase one minimizes the maximum load
// factor λ (the paper's objective); phase two fixes λ* and then balances
// within each middlebox type — it minimizes Σ_f λ_f and maximizes Σ_f μ_f
// where λ_f/μ_f bound the loads of function f's providers. Any phase-two
// point is still λ-optimal, but a plain simplex vertex of phase one may
// park some middleboxes at zero load while only the bottleneck type is
// actually constrained; phase two removes both artifacts (cf. the tight
// per-type spreads of the paper's Table III).
func (c *Controller) solveChainLP(insts []*ChainInstance) (*LBSolution, error) {
	startUS := c.solveStart()
	sol, err := c.solveChainLPWith(insts, nil)
	if err != nil {
		return nil, err
	}
	if err := c.verifyPlan(sol.Weights); err != nil {
		return nil, err
	}
	// Write-ahead: journal the plan before the caller can push it.
	if err := c.journalWeights(sol); err != nil {
		return nil, err
	}
	c.observeSolve(sol, startUS)
	return sol, nil
}

// solveChainLPWith is the bare two-phase solve, without verification,
// journaling or metrics — the incremental pipeline calls it for scoped
// re-solves and performs those steps itself on the merged plan. base, when
// non-nil, carries constant per-middlebox load offsets: the expected loads
// of carried-forward instances that are NOT re-entering the LP. Their
// traffic still consumes capacity, so every capacity and spread constraint
// is shifted by the offsets, and reported loads include them.
func (c *Controller) solveChainLPWith(insts []*ChainInstance, base map[topo.NodeID]float64) (*LBSolution, error) {
	if c.candidates == nil {
		c.computeAssignments()
	}
	sol, err := c.buildAndSolve(insts, c.opts.CapLambda, nil, base)
	if err != nil {
		return nil, err
	}
	if sol == nil && c.opts.CapLambda {
		// Infeasible under λ <= 1: overloaded network. Resolve uncapped.
		sol, err = c.buildAndSolve(insts, false, nil, base)
		if err != nil {
			return nil, err
		}
		if sol != nil {
			sol.Capped = false
		}
	}
	if sol == nil {
		return nil, fmt.Errorf("controller: load-balancing LP infeasible even without the λ cap")
	}
	// Phase two: spread. Failure here is tolerable (numerical edge);
	// keep the phase-one solution in that case.
	lambdaStar := sol.Lambda
	if spread, err := c.buildAndSolve(insts, false, &lambdaStar, base); err == nil && spread != nil {
		spread.Lambda = lambdaStar
		spread.Capped = sol.Capped
		sol = spread
	}
	return sol, nil
}

// buildAndSolve constructs one LP and solves it. It returns (nil, nil)
// when the program is infeasible, so the caller can retry uncapped.
// When maxMinAt is non-nil the program is the phase-two spread problem:
// every middlebox load is capped at λ*·C(x), and per function type f the
// objective minimizes its maximum load factor λ_f and maximizes its
// minimum load factor μ_f. base shifts every load expression by constant
// carried-forward loads (see solveChainLPWith).
func (c *Controller) buildAndSolve(insts []*ChainInstance, capLambda bool, maxMinAt *float64, base map[topo.NodeID]float64) (*LBSolution, error) {
	prob := lp.NewProblem()
	lam := prob.AddVar("lambda")
	lamF := make(map[policy.FuncType]int)
	muF := make(map[policy.FuncType]int)
	if maxMinAt == nil {
		prob.SetObjective(lam, 1)
	} else {
		for _, f := range c.dep.Functions() {
			lamF[f] = prob.AddVar(fmt.Sprintf("lambda_%v", f))
			prob.SetObjective(lamF[f], 1)
			muF[f] = prob.AddVar(fmt.Sprintf("mu_%v", f))
			// The spread term carries a small weight so that raising a
			// type's minimum can never buy an increase of another type's
			// maximum — per-type maxima stay lexicographically first.
			prob.SetObjective(muF[f], -0.01)
		}
	}

	loadTerms := make(map[topo.NodeID][]lp.Term)
	instTerms := make(map[InstanceKey]map[topo.NodeID][]lp.Term, len(insts))
	var refs []wRef

	for _, inst := range insts {
		if err := c.buildChain(prob, inst, loadTerms, instTerms, &refs); err != nil {
			return nil, err
		}
	}

	// Capacity constraints: Σ load(x) + base(x) - λ·C(x) <= 0 for every
	// middlebox that can receive traffic (the paper's fifth/sixth
	// constraint; base(x) is zero outside scoped re-solves). In phase two
	// the global cap is the fixed λ* and per-type bounds
	// μ_f·C(x) <= load(x) <= λ_f·C(x) are added. Middleboxes carrying only
	// base load still constrain λ and the per-type bounds, so a scoped
	// solve can never under-report the network-wide load factor.
	seen := make(map[topo.NodeID]bool, len(loadTerms)+len(base))
	mbs := make([]topo.NodeID, 0, len(loadTerms)+len(base))
	for x := range loadTerms {
		seen[x] = true
		mbs = append(mbs, x)
	}
	for x := range base {
		if !seen[x] {
			mbs = append(mbs, x)
		}
	}
	sort.Slice(mbs, func(i, j int) bool { return mbs[i] < mbs[j] })
	for _, x := range mbs {
		if maxMinAt == nil {
			terms := append([]lp.Term{{Var: lam, Coef: -c.capacityOf(x)}}, loadTerms[x]...)
			prob.AddConstraint(lp.Le, -base[x], terms...)
			continue
		}
		hardCap := (*maxMinAt + 1e-7**maxMinAt + 1e-9) * c.capacityOf(x)
		if len(loadTerms[x]) > 0 {
			prob.AddConstraint(lp.Le, hardCap-base[x], loadTerms[x]...)
		}
		for _, f := range c.dep.FuncsOf(x) {
			ceil := append([]lp.Term{{Var: lamF[f], Coef: -c.capacityOf(x)}}, loadTerms[x]...)
			prob.AddConstraint(lp.Le, -base[x], ceil...)
			floor := append([]lp.Term{{Var: muF[f], Coef: -c.capacityOf(x)}}, loadTerms[x]...)
			prob.AddConstraint(lp.Ge, -base[x], floor...)
		}
	}
	if capLambda && maxMinAt == nil {
		prob.AddConstraint(lp.Le, 1, lp.Term{Var: lam, Coef: 1})
	}

	solved, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	switch solved.Status {
	case lp.Infeasible:
		return nil, nil
	case lp.Unbounded:
		return nil, fmt.Errorf("controller: load-balancing LP unbounded (builder bug)")
	}

	out := &LBSolution{
		Lambda:        solved.Objective,
		Capped:        capLambda,
		Weights:       make(map[topo.NodeID]map[enforce.WeightKey][]float64),
		ExpectedLoads: make(map[topo.NodeID]float64),
		Vars:          prob.NumVars(),
		Constraints:   prob.NumConstraints(),
		Iterations:    solved.Iterations,
		InstanceLoads: make(map[InstanceKey]map[topo.NodeID]float64, len(insts)),
	}
	for _, r := range refs {
		w := make([]float64, len(r.vars))
		for i, v := range r.vars {
			w[i] = solved.Value(v)
		}
		m := out.Weights[r.owner]
		if m == nil {
			m = make(map[enforce.WeightKey][]float64)
			out.Weights[r.owner] = m
		}
		// Eq. (1) instances can hit the same (owner, key) from multiple
		// triples only if keys collide, which the subnet tags prevent;
		// Eq. (2) never revisits a key. Accumulate defensively anyway.
		if prev, ok := m[r.key]; ok {
			for i := range w {
				w[i] += prev[i]
			}
		}
		m[r.key] = w
	}
	for x, terms := range loadTerms {
		var total float64
		for _, t := range terms {
			total += t.Coef * solved.Value(t.Var)
		}
		out.ExpectedLoads[x] = total + base[x]
	}
	for x, b := range base {
		if _, ok := loadTerms[x]; !ok {
			out.ExpectedLoads[x] = b
		}
	}
	for key, perMB := range instTerms {
		loads := make(map[topo.NodeID]float64, len(perMB))
		for x, terms := range perMB {
			var total float64
			for _, t := range terms {
				total += t.Coef * solved.Value(t.Var)
			}
			loads[x] = total
		}
		out.InstanceLoads[key] = loads
	}
	return out, nil
}

// buildChain adds one chain instance's variables and conservation
// constraints to the program, extending loadTerms and refs. Each load
// term is also attributed to the instance in instTerms, which is how
// InstanceLoads (and with it, carried-forward base loads) are computed.
func (c *Controller) buildChain(prob *lp.Problem, inst *ChainInstance, loadTerms map[topo.NodeID][]lp.Term, instTerms map[InstanceKey]map[topo.NodeID][]lp.Term, refs *[]wRef) error {
	chain := inst.Pol.Actions
	if len(chain) == 0 {
		return nil
	}
	e1 := chain[0]
	addLoad := func(x topo.NodeID, terms ...lp.Term) {
		loadTerms[x] = append(loadTerms[x], terms...)
		m := instTerms[inst.Key]
		if m == nil {
			m = make(map[topo.NodeID][]lp.Term)
			instTerms[inst.Key] = m
		}
		m[x] = append(m[x], terms...)
	}

	// Stage 0: group sources by candidate tuple (exact reduction: members
	// of a group are interchangeable).
	type group struct {
		cands   []topo.NodeID
		vol     int64
		members []topo.NodeID
	}
	groups := make(map[string]*group)
	srcs := make([]topo.NodeID, 0, len(inst.SrcVols))
	for s := range inst.SrcVols {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, s := range srcs {
		cands := c.candidates[s][e1]
		if len(cands) == 0 {
			return fmt.Errorf("controller: proxy %v has no candidates for %v", s, e1)
		}
		key := fmt.Sprint(cands)
		g := groups[key]
		if g == nil {
			g = &group{cands: cands}
			groups[key] = g
		}
		g.vol += inst.SrcVols[s]
		g.members = append(g.members, s)
	}
	gkeys := make([]string, 0, len(groups))
	for k := range groups {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)

	inflow := make(map[topo.NodeID][]lp.Term)
	for _, gk := range gkeys {
		g := groups[gk]
		terms := make([]lp.Term, len(g.cands))
		vars := make([]int, len(g.cands))
		for j, y := range g.cands {
			v := prob.AddVar(fmt.Sprintf("p%d.s0.g%s.%d", inst.Pol.ID, gk, j))
			vars[j] = v
			terms[j] = lp.Term{Var: v, Coef: 1}
			inflow[y] = append(inflow[y], lp.Term{Var: v, Coef: 1})
		}
		prob.AddConstraint(lp.Eq, float64(g.vol), terms...)
		for _, member := range g.members {
			*refs = append(*refs, wRef{
				owner: member,
				key: enforce.WeightKey{
					PolicyID: inst.Pol.ID, Func: e1,
					SrcSubnet: inst.Key.SrcSubnet, DstSubnet: inst.Key.DstSubnet,
				},
				vars: vars,
			})
		}
	}

	// Middle stages: conservation at each provider, fan-out to the next
	// function's candidates.
	for i := 1; i < len(chain); i++ {
		eNext := chain[i]
		newInflow := make(map[topo.NodeID][]lp.Term)
		xs := make([]topo.NodeID, 0, len(inflow))
		for x := range inflow {
			xs = append(xs, x)
		}
		sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
		for _, x := range xs {
			addLoad(x, inflow[x]...)
			cands := c.candidates[x][eNext]
			if len(cands) == 0 {
				return fmt.Errorf("controller: middlebox %v has no candidates for %v", x, eNext)
			}
			cons := make([]lp.Term, 0, len(cands)+len(inflow[x]))
			vars := make([]int, len(cands))
			for j, y := range cands {
				v := prob.AddVar(fmt.Sprintf("p%d.s%d.x%d.%d", inst.Pol.ID, i, x, j))
				vars[j] = v
				cons = append(cons, lp.Term{Var: v, Coef: 1})
				newInflow[y] = append(newInflow[y], lp.Term{Var: v, Coef: 1})
			}
			for _, in := range inflow[x] {
				cons = append(cons, lp.Term{Var: in.Var, Coef: -in.Coef})
			}
			prob.AddConstraint(lp.Eq, 0, cons...)
			*refs = append(*refs, wRef{
				owner: x,
				key: enforce.WeightKey{
					PolicyID: inst.Pol.ID, Func: eNext,
					SrcSubnet: inst.Key.SrcSubnet, DstSubnet: inst.Key.DstSubnet,
				},
				vars: vars,
			})
		}
		inflow = newInflow
	}

	// Final stage: inflow at the chain's last providers feeds their load;
	// the onward traffic to destinations is the aggregated virtual sink
	// (exact for min-λ; see DESIGN.md).
	for x, terms := range inflow {
		addLoad(x, terms...)
	}
	return nil
}
