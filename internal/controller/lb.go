package controller

import (
	"fmt"
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/lp"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// LBSolution is the outcome of a load-balancing optimization: the optimal
// λ (maximum load factor), the per-node probabilistic forwarding weights
// to install, and the middlebox loads the LP expects those weights to
// produce.
type LBSolution struct {
	Lambda float64
	// Capped reports whether the λ <= 1 constraint was kept. When the
	// instance is infeasible under the cap the controller re-solves
	// without it, reports λ > 1, and sets Capped false.
	Capped bool
	// Weights holds, per node, the weight vectors to install (parallel
	// to the node's candidate lists).
	Weights map[topo.NodeID]map[enforce.WeightKey][]float64
	// ExpectedLoads is the LP's per-middlebox load (same units as the
	// measurements, i.e. packets).
	ExpectedLoads map[topo.NodeID]float64
	// Vars / Constraints / Iterations describe the solved program; the
	// Eq. (1) vs Eq. (2) ablation reports these.
	Vars, Constraints, Iterations int
}

// chainInstance is one unit of LP construction: a policy chain with
// per-source demand. Eq. (2) uses one instance per policy (all sources
// merged into one conservation system); Eq. (1) uses one instance per
// (source, destination, policy) triple.
type chainInstance struct {
	pol *policy.Policy
	// srcVols maps source proxy node -> measured packets.
	srcVols map[topo.NodeID]int64
	// srcSubnet/dstSubnet tag the produced weight keys; zero for the
	// aggregated formulation.
	srcSubnet, dstSubnet int
}

// SolveLB solves the aggregated formulation (Eq. 2 of the paper) over
// the given measurements. Two exact reductions are applied (see
// DESIGN.md): sources with identical candidate sets share first-hop
// variables, and per-destination last-hop variables are merged into one
// virtual sink per policy.
func (c *Controller) SolveLB(meas Measurements) (*LBSolution, error) {
	byID := c.policyIndex()
	perPolicy := make(map[int]*chainInstance)
	for k, v := range meas {
		p, ok := byID[k.PolicyID]
		if !ok {
			return nil, fmt.Errorf("controller: measurement for unknown policy %d", k.PolicyID)
		}
		if p.Actions.IsPermit() {
			continue
		}
		inst := perPolicy[k.PolicyID]
		if inst == nil {
			inst = &chainInstance{pol: p, srcVols: make(map[topo.NodeID]int64)}
			perPolicy[k.PolicyID] = inst
		}
		proxyID, ok := c.dep.ProxyFor(k.SrcSubnet)
		if !ok {
			return nil, fmt.Errorf("controller: measurement from unknown subnet %d", k.SrcSubnet)
		}
		inst.srcVols[proxyID] += v
	}
	ids := make([]int, 0, len(perPolicy))
	for id := range perPolicy {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	insts := make([]*chainInstance, len(ids))
	for i, id := range ids {
		insts[i] = perPolicy[id]
	}
	return c.solveChainLP(insts)
}

// SolveLBFine solves the fine-grained formulation (Eq. 1): independent
// flow conservation and weight vectors per (source, destination, policy)
// triple. Variable count grows with |R|^2·|P|, so this is intended for
// small topologies and for cross-checking Eq. (2).
func (c *Controller) SolveLBFine(meas Measurements) (*LBSolution, error) {
	byID := c.policyIndex()
	keys := make([]enforce.MeasKey, 0, len(meas))
	for k := range meas {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.PolicyID != b.PolicyID {
			return a.PolicyID < b.PolicyID
		}
		if a.SrcSubnet != b.SrcSubnet {
			return a.SrcSubnet < b.SrcSubnet
		}
		return a.DstSubnet < b.DstSubnet
	})
	var insts []*chainInstance
	for _, k := range keys {
		p, ok := byID[k.PolicyID]
		if !ok {
			return nil, fmt.Errorf("controller: measurement for unknown policy %d", k.PolicyID)
		}
		if p.Actions.IsPermit() {
			continue
		}
		proxyID, ok := c.dep.ProxyFor(k.SrcSubnet)
		if !ok {
			return nil, fmt.Errorf("controller: measurement from unknown subnet %d", k.SrcSubnet)
		}
		insts = append(insts, &chainInstance{
			pol:       p,
			srcVols:   map[topo.NodeID]int64{proxyID: meas[k]},
			srcSubnet: k.SrcSubnet,
			dstSubnet: k.DstSubnet,
		})
	}
	return c.solveChainLP(insts)
}

// policyIndex maps policy ID -> policy for the global table.
func (c *Controller) policyIndex() map[int]*policy.Policy {
	out := make(map[int]*policy.Policy, c.policies.Len())
	for _, p := range c.policies.All() {
		out[p.ID] = p
	}
	return out
}

// wRef remembers which LP variables become which node's weight vector.
type wRef struct {
	owner topo.NodeID
	key   enforce.WeightKey
	vars  []int
}

// solveChainLP builds and solves the min-λ program over the given chain
// instances, then extracts weights and expected loads.
//
// The optimization is lexicographic, mirroring the evenly spread
// solutions the paper reports: phase one minimizes the maximum load
// factor λ (the paper's objective); phase two fixes λ* and then balances
// within each middlebox type — it minimizes Σ_f λ_f and maximizes Σ_f μ_f
// where λ_f/μ_f bound the loads of function f's providers. Any phase-two
// point is still λ-optimal, but a plain simplex vertex of phase one may
// park some middleboxes at zero load while only the bottleneck type is
// actually constrained; phase two removes both artifacts (cf. the tight
// per-type spreads of the paper's Table III).
func (c *Controller) solveChainLP(insts []*chainInstance) (*LBSolution, error) {
	if c.candidates == nil {
		c.computeAssignments()
	}
	startUS := c.solveStart()
	sol, err := c.buildAndSolve(insts, c.opts.CapLambda, nil)
	if err != nil {
		return nil, err
	}
	if sol == nil && c.opts.CapLambda {
		// Infeasible under λ <= 1: overloaded network. Resolve uncapped.
		sol, err = c.buildAndSolve(insts, false, nil)
		if err != nil {
			return nil, err
		}
		if sol != nil {
			sol.Capped = false
		}
	}
	if sol == nil {
		return nil, fmt.Errorf("controller: load-balancing LP infeasible even without the λ cap")
	}
	// Phase two: spread. Failure here is tolerable (numerical edge);
	// keep the phase-one solution in that case.
	lambdaStar := sol.Lambda
	if spread, err := c.buildAndSolve(insts, false, &lambdaStar); err == nil && spread != nil {
		spread.Lambda = lambdaStar
		spread.Capped = sol.Capped
		sol = spread
	}
	if err := c.verifyPlan(sol.Weights); err != nil {
		return nil, err
	}
	// Write-ahead: journal the plan before the caller can push it.
	if err := c.journalWeights(sol); err != nil {
		return nil, err
	}
	c.observeSolve(sol, startUS)
	return sol, nil
}

// buildAndSolve constructs one LP and solves it. It returns (nil, nil)
// when the program is infeasible, so the caller can retry uncapped.
// When maxMinAt is non-nil the program is the phase-two spread problem:
// every middlebox load is capped at λ*·C(x), and per function type f the
// objective minimizes its maximum load factor λ_f and maximizes its
// minimum load factor μ_f.
func (c *Controller) buildAndSolve(insts []*chainInstance, capLambda bool, maxMinAt *float64) (*LBSolution, error) {
	prob := lp.NewProblem()
	lam := prob.AddVar("lambda")
	lamF := make(map[policy.FuncType]int)
	muF := make(map[policy.FuncType]int)
	if maxMinAt == nil {
		prob.SetObjective(lam, 1)
	} else {
		for _, f := range c.dep.Functions() {
			lamF[f] = prob.AddVar(fmt.Sprintf("lambda_%v", f))
			prob.SetObjective(lamF[f], 1)
			muF[f] = prob.AddVar(fmt.Sprintf("mu_%v", f))
			// The spread term carries a small weight so that raising a
			// type's minimum can never buy an increase of another type's
			// maximum — per-type maxima stay lexicographically first.
			prob.SetObjective(muF[f], -0.01)
		}
	}

	loadTerms := make(map[topo.NodeID][]lp.Term)
	var refs []wRef

	for _, inst := range insts {
		if err := c.buildChain(prob, inst, loadTerms, &refs); err != nil {
			return nil, err
		}
	}

	// Capacity constraints: Σ load(x) - λ·C(x) <= 0 for every middlebox
	// that can receive traffic (the paper's fifth/sixth constraint). In
	// phase two the global cap is the fixed λ* and per-type bounds
	// μ_f·C(x) <= load(x) <= λ_f·C(x) are added.
	mbs := make([]topo.NodeID, 0, len(loadTerms))
	for x := range loadTerms {
		mbs = append(mbs, x)
	}
	sort.Slice(mbs, func(i, j int) bool { return mbs[i] < mbs[j] })
	for _, x := range mbs {
		if maxMinAt == nil {
			terms := append([]lp.Term{{Var: lam, Coef: -c.capacityOf(x)}}, loadTerms[x]...)
			prob.AddConstraint(lp.Le, 0, terms...)
			continue
		}
		hardCap := (*maxMinAt + 1e-7**maxMinAt + 1e-9) * c.capacityOf(x)
		prob.AddConstraint(lp.Le, hardCap, loadTerms[x]...)
		for _, f := range c.dep.FuncsOf(x) {
			ceil := append([]lp.Term{{Var: lamF[f], Coef: -c.capacityOf(x)}}, loadTerms[x]...)
			prob.AddConstraint(lp.Le, 0, ceil...)
			floor := append([]lp.Term{{Var: muF[f], Coef: -c.capacityOf(x)}}, loadTerms[x]...)
			prob.AddConstraint(lp.Ge, 0, floor...)
		}
	}
	if capLambda && maxMinAt == nil {
		prob.AddConstraint(lp.Le, 1, lp.Term{Var: lam, Coef: 1})
	}

	solved, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	switch solved.Status {
	case lp.Infeasible:
		return nil, nil
	case lp.Unbounded:
		return nil, fmt.Errorf("controller: load-balancing LP unbounded (builder bug)")
	}

	out := &LBSolution{
		Lambda:        solved.Objective,
		Capped:        capLambda,
		Weights:       make(map[topo.NodeID]map[enforce.WeightKey][]float64),
		ExpectedLoads: make(map[topo.NodeID]float64),
		Vars:          prob.NumVars(),
		Constraints:   prob.NumConstraints(),
		Iterations:    solved.Iterations,
	}
	for _, r := range refs {
		w := make([]float64, len(r.vars))
		for i, v := range r.vars {
			w[i] = solved.Value(v)
		}
		m := out.Weights[r.owner]
		if m == nil {
			m = make(map[enforce.WeightKey][]float64)
			out.Weights[r.owner] = m
		}
		// Eq. (1) instances can hit the same (owner, key) from multiple
		// triples only if keys collide, which the subnet tags prevent;
		// Eq. (2) never revisits a key. Accumulate defensively anyway.
		if prev, ok := m[r.key]; ok {
			for i := range w {
				w[i] += prev[i]
			}
		}
		m[r.key] = w
	}
	for x, terms := range loadTerms {
		var total float64
		for _, t := range terms {
			total += t.Coef * solved.Value(t.Var)
		}
		out.ExpectedLoads[x] = total
	}
	return out, nil
}

// buildChain adds one chain instance's variables and conservation
// constraints to the program, extending loadTerms and refs.
func (c *Controller) buildChain(prob *lp.Problem, inst *chainInstance, loadTerms map[topo.NodeID][]lp.Term, refs *[]wRef) error {
	chain := inst.pol.Actions
	if len(chain) == 0 {
		return nil
	}
	e1 := chain[0]

	// Stage 0: group sources by candidate tuple (exact reduction: members
	// of a group are interchangeable).
	type group struct {
		cands   []topo.NodeID
		vol     int64
		members []topo.NodeID
	}
	groups := make(map[string]*group)
	srcs := make([]topo.NodeID, 0, len(inst.srcVols))
	for s := range inst.srcVols {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, s := range srcs {
		cands := c.candidates[s][e1]
		if len(cands) == 0 {
			return fmt.Errorf("controller: proxy %v has no candidates for %v", s, e1)
		}
		key := fmt.Sprint(cands)
		g := groups[key]
		if g == nil {
			g = &group{cands: cands}
			groups[key] = g
		}
		g.vol += inst.srcVols[s]
		g.members = append(g.members, s)
	}
	gkeys := make([]string, 0, len(groups))
	for k := range groups {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)

	inflow := make(map[topo.NodeID][]lp.Term)
	for _, gk := range gkeys {
		g := groups[gk]
		terms := make([]lp.Term, len(g.cands))
		vars := make([]int, len(g.cands))
		for j, y := range g.cands {
			v := prob.AddVar(fmt.Sprintf("p%d.s0.g%s.%d", inst.pol.ID, gk, j))
			vars[j] = v
			terms[j] = lp.Term{Var: v, Coef: 1}
			inflow[y] = append(inflow[y], lp.Term{Var: v, Coef: 1})
		}
		prob.AddConstraint(lp.Eq, float64(g.vol), terms...)
		for _, member := range g.members {
			*refs = append(*refs, wRef{
				owner: member,
				key: enforce.WeightKey{
					PolicyID: inst.pol.ID, Func: e1,
					SrcSubnet: inst.srcSubnet, DstSubnet: inst.dstSubnet,
				},
				vars: vars,
			})
		}
	}

	// Middle stages: conservation at each provider, fan-out to the next
	// function's candidates.
	for i := 1; i < len(chain); i++ {
		eNext := chain[i]
		newInflow := make(map[topo.NodeID][]lp.Term)
		xs := make([]topo.NodeID, 0, len(inflow))
		for x := range inflow {
			xs = append(xs, x)
		}
		sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
		for _, x := range xs {
			loadTerms[x] = append(loadTerms[x], inflow[x]...)
			cands := c.candidates[x][eNext]
			if len(cands) == 0 {
				return fmt.Errorf("controller: middlebox %v has no candidates for %v", x, eNext)
			}
			cons := make([]lp.Term, 0, len(cands)+len(inflow[x]))
			vars := make([]int, len(cands))
			for j, y := range cands {
				v := prob.AddVar(fmt.Sprintf("p%d.s%d.x%d.%d", inst.pol.ID, i, x, j))
				vars[j] = v
				cons = append(cons, lp.Term{Var: v, Coef: 1})
				newInflow[y] = append(newInflow[y], lp.Term{Var: v, Coef: 1})
			}
			for _, in := range inflow[x] {
				cons = append(cons, lp.Term{Var: in.Var, Coef: -in.Coef})
			}
			prob.AddConstraint(lp.Eq, 0, cons...)
			*refs = append(*refs, wRef{
				owner: x,
				key: enforce.WeightKey{
					PolicyID: inst.pol.ID, Func: eNext,
					SrcSubnet: inst.srcSubnet, DstSubnet: inst.dstSubnet,
				},
				vars: vars,
			})
		}
		inflow = newInflow
	}

	// Final stage: inflow at the chain's last providers feeds their load;
	// the onward traffic to destinations is the aggregated virtual sink
	// (exact for min-λ; see DESIGN.md).
	for x, terms := range inflow {
		loadTerms[x] = append(loadTerms[x], terms...)
	}
	return nil
}
