package controller

import (
	"sdme/internal/enforce"
	"sdme/internal/metrics"
	"sdme/internal/topo"
)

// Controller metric family names.
const (
	MetricSolves     = "sdme_controller_solves_total"
	MetricSolveUS    = "sdme_controller_solve_us"
	MetricLambda     = "sdme_controller_lambda"
	MetricLPVars     = "sdme_controller_lp_vars"
	MetricLPIters    = "sdme_controller_lp_iterations"
	MetricPlanSeries = "sdme_controller_weight_vectors"
	// Plan churn is reported as actual delta size — the number of
	// configuration entries added, removed, or reweighted by the latest
	// plan relative to the previous one — not a whole-plan comparison.
	// The churn counter accumulates the total; the three class counters
	// split it; the gauge holds the latest delta's size.
	MetricPlanChurn          = "sdme_controller_plan_churn_total"
	MetricPlanDeltaAdds      = "sdme_controller_plan_delta_added_total"
	MetricPlanDeltaRemoves   = "sdme_controller_plan_delta_removed_total"
	MetricPlanDeltaReweights = "sdme_controller_plan_delta_reweighted_total"
	MetricPlanDeltaSize      = "sdme_controller_plan_delta_entries"
)

// SetMetrics attaches a registry and clock to the controller: every LB
// solve then records its duration (per the clock — virtual in sim-driven
// tests, wall in live deployments), the resulting λ, the program size,
// and the delta size versus the previous plan. nil detaches.
func (c *Controller) SetMetrics(reg *metrics.Registry, clock metrics.Clock) {
	c.metrics = reg
	c.clock = clock
	c.lastWeights = nil
}

// observeSolve records one successful direct solve (the non-pipeline
// SolveLB/SolveLBFine path): solve stats plus the weight-entry delta
// against the previous solve.
func (c *Controller) observeSolve(sol *LBSolution, startUS int64) {
	if c.metrics == nil {
		return
	}
	c.observeSolveStats(sol, startUS)
	c.observePlanDelta(weightDeltaStats(c.lastWeights, sol.Weights))
	c.lastWeights = sol.Weights
}

// observeSolveStats records solve count, duration, λ and program size —
// without any churn accounting (the pipeline reports its own, exact,
// delta sizes via observePlanDelta).
func (c *Controller) observeSolveStats(sol *LBSolution, startUS int64) {
	reg := c.metrics
	if reg == nil {
		return
	}
	reg.Counter(MetricSolves).Inc()
	if c.clock != nil {
		reg.Histogram(MetricSolveUS, metrics.LatencyBucketsUS).Observe(c.clock() - startUS)
	}
	reg.Gauge(MetricLambda).Set(sol.Lambda)
	reg.Gauge(MetricLPVars).Set(float64(sol.Vars))
	reg.Gauge(MetricLPIters).Set(float64(sol.Iterations))
	reg.Gauge(MetricPlanSeries).Set(float64(countVectors(sol.Weights)))
}

// observePlanDelta records the actual size of one plan delta: entries
// added, removed and reweighted (policies, candidate lists and weight
// vectors alike for pipeline diffs; weight vectors for direct solves).
func (c *Controller) observePlanDelta(d DeltaStats) {
	reg := c.metrics
	if reg == nil {
		return
	}
	reg.Counter(MetricPlanChurn).Add(int64(d.Total()))
	reg.Counter(MetricPlanDeltaAdds).Add(int64(d.Added))
	reg.Counter(MetricPlanDeltaRemoves).Add(int64(d.Removed))
	reg.Counter(MetricPlanDeltaReweights).Add(int64(d.Reweighted))
	reg.Gauge(MetricPlanDeltaSize).Set(float64(d.Total()))
}

// solveStart returns the clock reading to time a solve from.
func (c *Controller) solveStart() int64 {
	if c.metrics == nil || c.clock == nil {
		return 0
	}
	return c.clock()
}

// Aliases keep controller.go's struct free of a direct metrics import.
type (
	metricsRegistry = metrics.Registry
	clockFunc       = metrics.Clock
	weightPlan      = map[topo.NodeID]map[enforce.WeightKey][]float64
)

func countVectors(w weightPlan) int {
	n := 0
	for _, m := range w {
		n += len(m)
	}
	return n
}

// weightDeltaStats classifies the weight-vector entries that differ
// between two plans as added, removed or reweighted. Two consecutive
// solves on the same measurement matrix churn zero.
func weightDeltaStats(old, cur weightPlan) DeltaStats {
	var d DeltaStats
	for node, m := range cur {
		om := old[node]
		for k, w := range m {
			ow, ok := om[k]
			switch {
			case !ok:
				d.Added++
			case !sameVector(ow, w):
				d.Reweighted++
			}
		}
	}
	for node, om := range old {
		m := cur[node]
		for k := range om {
			if _, ok := m[k]; !ok {
				d.Removed++
			}
		}
	}
	return d
}

func sameVector(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
