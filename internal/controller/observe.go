package controller

import (
	"sdme/internal/enforce"
	"sdme/internal/metrics"
	"sdme/internal/topo"
)

// Controller metric family names.
const (
	MetricSolves     = "sdme_controller_solves_total"
	MetricSolveUS    = "sdme_controller_solve_us"
	MetricLambda     = "sdme_controller_lambda"
	MetricLPVars     = "sdme_controller_lp_vars"
	MetricLPIters    = "sdme_controller_lp_iterations"
	MetricPlanChurn  = "sdme_controller_plan_churn_total"
	MetricPlanSeries = "sdme_controller_weight_vectors"
)

// SetMetrics attaches a registry and clock to the controller: every LB
// solve then records its duration (per the clock — virtual in sim-driven
// tests, wall in live deployments), the resulting λ, the program size,
// and the plan churn versus the previous solve. nil detaches.
func (c *Controller) SetMetrics(reg *metrics.Registry, clock metrics.Clock) {
	c.metrics = reg
	c.clock = clock
	c.lastWeights = nil
}

// observeSolve records one successful solve. startUS is the clock
// reading captured at solve entry (0 if no clock).
func (c *Controller) observeSolve(sol *LBSolution, startUS int64) {
	reg := c.metrics
	if reg == nil {
		return
	}
	reg.Counter(MetricSolves).Inc()
	if c.clock != nil {
		reg.Histogram(MetricSolveUS, metrics.LatencyBucketsUS).Observe(c.clock() - startUS)
	}
	reg.Gauge(MetricLambda).Set(sol.Lambda)
	reg.Gauge(MetricLPVars).Set(float64(sol.Vars))
	reg.Gauge(MetricLPIters).Set(float64(sol.Iterations))
	reg.Gauge(MetricPlanSeries).Set(float64(countVectors(sol.Weights)))
	reg.Counter(MetricPlanChurn).Add(planChurn(c.lastWeights, sol.Weights))
	c.lastWeights = sol.Weights
}

// solveStart returns the clock reading to time a solve from.
func (c *Controller) solveStart() int64 {
	if c.metrics == nil || c.clock == nil {
		return 0
	}
	return c.clock()
}

// Aliases keep controller.go's struct free of a direct metrics import.
type (
	metricsRegistry = metrics.Registry
	clockFunc       = metrics.Clock
	weightPlan      = map[topo.NodeID]map[enforce.WeightKey][]float64
)

func countVectors(w weightPlan) int {
	n := 0
	for _, m := range w {
		n += len(m)
	}
	return n
}

// planChurn counts the weight vectors that differ between two plans:
// added, removed, or changed in any component. Two consecutive solves on
// the same measurement matrix churn zero.
func planChurn(old, cur weightPlan) int64 {
	var churn int64
	for node, m := range cur {
		om := old[node]
		for k, w := range m {
			ow, ok := om[k]
			if !ok || !sameVector(ow, w) {
				churn++
			}
		}
	}
	for node, om := range old {
		m := cur[node]
		for k := range om {
			if _, ok := m[k]; !ok {
				churn++
			}
		}
	}
	return churn
}

func sameVector(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
