package controller

import (
	"fmt"
	"hash/fnv"
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Stage 1 of the compilation pipeline: compile the policy table, the
// topology assignments and the traffic measurements into a canonical Plan
// IR. The IR is what the incremental stages operate on — Stage 2 re-solves
// only the chain instances whose identity hash changed, and Stage 3 diffs
// two Plans into per-node ConfigDeltas.

// InstanceKey identifies one chain instance: Eq. (2) instances aggregate
// all sources of a policy (subnets zero), Eq. (1) instances are one
// (policy, source subnet, destination subnet) triple.
type InstanceKey struct {
	PolicyID             int
	SrcSubnet, DstSubnet int
}

// ChainInstance is one unit of LP construction: a policy chain with
// per-source demand. It is also the unit of incremental recomputation:
// Hash captures every input that can change the instance's slice of the
// LP, and Touched lists the nodes participating in it.
type ChainInstance struct {
	Key InstanceKey
	Pol *policy.Policy
	// SrcVols maps source proxy node -> measured packets.
	SrcVols map[topo.NodeID]int64
	// Touched is the sorted set of nodes this instance involves: the
	// source proxies plus the closure of candidate providers reachable
	// along the chain. The dependency index inverts it.
	Touched []topo.NodeID
	// Hash is the instance's identity: policy rule hash, demands, and the
	// candidate list of every node the chain can traverse. Equal hashes
	// mean the instance contributes identical variables and constraints.
	Hash uint64
}

// DepIndex maps plan inputs to the chain instances they affect, so a
// policy edit, a node event or a measurement shift dirties exactly the
// instances that must re-enter the LP.
type DepIndex struct {
	ByPolicy map[int][]InstanceKey
	ByNode   map[topo.NodeID][]InstanceKey
	ByFunc   map[policy.FuncType][]InstanceKey
}

// Plan is the compiled intermediate representation of one controller
// output: everything the nodes will be configured with, plus the
// dependency structure the incremental stages need.
type Plan struct {
	// Version is a monotonically increasing plan number (assigned by the
	// Pipeline; zero for one-shot compiles).
	Version uint64
	// Fine records which formulation the instances follow (Eq. 1 vs 2).
	Fine bool
	// Candidates is M_x^e for every proxy and middlebox.
	Candidates map[topo.NodeID]map[policy.FuncType][]topo.NodeID
	// NodePolicies is each node's relevant policy subset P_x in global
	// priority order.
	NodePolicies map[topo.NodeID][]*policy.Policy
	// Instances are the chain instances; Order is their canonical solve
	// order (sorted by key).
	Instances map[InstanceKey]*ChainInstance
	Order     []InstanceKey
	// Weights is the solved weight plan (nil until Stage 2 runs, and for
	// HP/Random strategies); Lambda is the network-wide load factor of
	// the solve that produced it.
	Weights map[topo.NodeID]map[enforce.WeightKey][]float64
	Lambda  float64
	// InstanceLoads records each instance's expected per-middlebox load
	// contribution from the solve that produced Weights. Carried-forward
	// instances re-enter later scoped solves as these constant base loads.
	InstanceLoads map[InstanceKey]map[topo.NodeID]float64
	// Index is the dependency index over Instances.
	Index *DepIndex
}

// CompilePlan runs Stage 1: it recomputes candidate assignments over the
// current failed-set, canonicalizes the measurements into chain instances
// (fine selects Eq. 1), computes every node's relevant policy subset, and
// builds the dependency index. The returned plan has no weights yet.
func (c *Controller) CompilePlan(meas Measurements, fine bool) (*Plan, error) {
	c.computeAssignments()
	insts, err := c.chainInstances(meas, fine)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Fine:         fine,
		Candidates:   c.candidates,
		NodePolicies: make(map[topo.NodeID][]*policy.Policy),
		Instances:    make(map[InstanceKey]*ChainInstance, len(insts)),
		Order:        make([]InstanceKey, 0, len(insts)),
		Index: &DepIndex{
			ByPolicy: make(map[int][]InstanceKey),
			ByNode:   make(map[topo.NodeID][]InstanceKey),
			ByFunc:   make(map[policy.FuncType][]InstanceKey),
		},
	}
	for _, id := range c.dep.ProxyNodes {
		subnet := c.dep.Graph.Node(id).Subnet
		p.NodePolicies[id] = c.policies.SrcRelevant(subnet)
	}
	for _, id := range c.dep.MBNodes {
		p.NodePolicies[id] = c.policies.FuncRelevant(c.dep.FuncsOf(id))
	}
	for _, inst := range insts {
		if err := c.indexInstance(inst); err != nil {
			return nil, err
		}
		p.Instances[inst.Key] = inst
		p.Order = append(p.Order, inst.Key)
		p.Index.ByPolicy[inst.Key.PolicyID] = append(p.Index.ByPolicy[inst.Key.PolicyID], inst.Key)
		for _, x := range inst.Touched {
			p.Index.ByNode[x] = append(p.Index.ByNode[x], inst.Key)
		}
		for _, f := range inst.Pol.Actions {
			p.Index.ByFunc[f] = append(p.Index.ByFunc[f], inst.Key)
		}
	}
	return p, nil
}

// chainInstances canonicalizes a measurement matrix into chain instances:
// one per policy for the aggregated Eq. (2) form, one per (policy, source
// subnet, destination subnet) triple for the fine-grained Eq. (1) form.
// Instances come back in canonical (sorted key) order. Permit policies
// produce no instances.
func (c *Controller) chainInstances(meas Measurements, fine bool) ([]*ChainInstance, error) {
	byID := c.policyIndex()
	grouped := make(map[InstanceKey]*ChainInstance)
	for k, v := range meas {
		p, ok := byID[k.PolicyID]
		if !ok {
			return nil, fmt.Errorf("controller: measurement for unknown policy %d", k.PolicyID)
		}
		if p.Actions.IsPermit() {
			continue
		}
		proxyID, ok := c.dep.ProxyFor(k.SrcSubnet)
		if !ok {
			return nil, fmt.Errorf("controller: measurement from unknown subnet %d", k.SrcSubnet)
		}
		key := InstanceKey{PolicyID: k.PolicyID}
		if fine {
			key.SrcSubnet, key.DstSubnet = k.SrcSubnet, k.DstSubnet
		}
		inst := grouped[key]
		if inst == nil {
			inst = &ChainInstance{Key: key, Pol: p, SrcVols: make(map[topo.NodeID]int64)}
			grouped[key] = inst
		}
		inst.SrcVols[proxyID] += v
	}
	keys := make([]InstanceKey, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessInstanceKey(keys[i], keys[j]) })
	insts := make([]*ChainInstance, len(keys))
	for i, k := range keys {
		insts[i] = grouped[k]
	}
	return insts, nil
}

func lessInstanceKey(a, b InstanceKey) bool {
	if a.PolicyID != b.PolicyID {
		return a.PolicyID < b.PolicyID
	}
	if a.SrcSubnet != b.SrcSubnet {
		return a.SrcSubnet < b.SrcSubnet
	}
	return a.DstSubnet < b.DstSubnet
}

// indexInstance fills an instance's Touched closure and identity Hash by
// walking the chain stages exactly as buildChain will: sources pick the
// first function's candidates, each stage's providers pick the next
// function's. A missing candidate list is the same error the LP builder
// would raise.
func (c *Controller) indexInstance(inst *ChainInstance) error {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%x|", inst.Key.PolicyID, inst.Key.SrcSubnet, inst.Key.DstSubnet, inst.Pol.Hash())
	touched := make(map[topo.NodeID]bool)
	cur := make([]topo.NodeID, 0, len(inst.SrcVols))
	for s := range inst.SrcVols {
		cur = append(cur, s)
	}
	sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
	for _, s := range cur {
		touched[s] = true
		fmt.Fprintf(h, "s%d=%d,", s, inst.SrcVols[s])
	}
	for i, e := range inst.Pol.Actions {
		next := make(map[topo.NodeID]bool)
		for _, x := range cur {
			cands := c.candidates[x][e]
			if len(cands) == 0 {
				kind := "proxy"
				if i > 0 {
					kind = "middlebox"
				}
				return fmt.Errorf("controller: %s %v has no candidates for %v", kind, x, e)
			}
			fmt.Fprintf(h, "|%d:%d:", i, x)
			for _, y := range cands {
				fmt.Fprintf(h, "%d,", y)
				next[y] = true
				touched[y] = true
			}
		}
		cur = cur[:0]
		for y := range next {
			cur = append(cur, y)
		}
		sort.Slice(cur, func(a, b int) bool { return cur[a] < cur[b] })
	}
	inst.Touched = make([]topo.NodeID, 0, len(touched))
	for x := range touched {
		inst.Touched = append(inst.Touched, x)
	}
	sort.Slice(inst.Touched, func(i, j int) bool { return inst.Touched[i] < inst.Touched[j] })
	inst.Hash = h.Sum64()
	return nil
}

// BuildNodesFromPlan materializes every node from a compiled plan — the
// from-scratch rebuild path the incremental pipeline is checked against.
// It is BuildNodes driven by the plan IR instead of live controller state,
// plus weight installation when the plan has been solved.
func (c *Controller) BuildNodesFromPlan(p *Plan) (map[topo.NodeID]*enforce.Node, error) {
	if err := c.verifyPlanWith(p.Candidates, p.Weights); err != nil {
		return nil, err
	}
	nodes := make(map[topo.NodeID]*enforce.Node, len(c.dep.ProxyNodes)+len(c.dep.MBNodes))
	build := func(id topo.NodeID, n *enforce.Node) error {
		cfg := enforce.Config{
			Candidates:     p.Candidates[id],
			Strategy:       c.opts.Strategy,
			HashSeed:       c.opts.HashSeed,
			LabelSwitching: c.opts.LabelSwitching,
			FlowTTL:        c.opts.FlowTTL,
			LabelTTL:       c.opts.LabelTTL,
			UseTrie:        c.opts.UseTrie,
		}
		cfg.Policies = p.NodePolicies[id]
		if w := p.Weights[id]; len(w) > 0 {
			cfg.Weights = w
		}
		if err := n.Install(cfg); err != nil {
			return fmt.Errorf("controller: configure node %v: %w", id, err)
		}
		nodes[id] = n
		return nil
	}
	for _, id := range c.dep.ProxyNodes {
		if err := build(id, enforce.NewProxy(c.dep, id)); err != nil {
			return nil, err
		}
	}
	for _, id := range c.dep.MBNodes {
		n, err := enforce.NewMiddleboxWith(c.dep, id, c.opts.FunctionFactory)
		if err != nil {
			return nil, err
		}
		if err := build(id, n); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}
