package controller

import (
	"fmt"

	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Enforcement audit: mechanical verification that the deployed
// configuration actually enforces every policy — the "dependable" claim,
// checked rather than assumed. For every (policy, source subnet) pair the
// audit synthesizes a representative flow, walks it through the nodes'
// own selection logic (enforce.TraceFlow), and verifies that the realized
// middlebox chain performs exactly the policy's action list in order.
//
// Violations surface configuration bugs: a function with no reachable
// provider from some node, stale candidate sets after failures, or a
// node whose local policy table P_x disagrees with the global intent.

// Violation is one audit failure.
type Violation struct {
	PolicyID  int
	SrcSubnet int
	// Reason describes what went wrong.
	Reason string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("policy %d from subnet %d: %s", v.PolicyID, v.SrcSubnet, v.Reason)
}

// Audit verifies the full deployment. It returns all violations; empty
// means the configuration provably enforces every policy from every
// subnet, for the synthesized representative flows.
func (c *Controller) Audit(nodes map[topo.NodeID]*enforce.Node) []Violation {
	var out []Violation
	for _, p := range c.policies.All() {
		if p.Actions.IsPermit() {
			continue
		}
		for subnet := 1; subnet <= c.dep.NumSubnets(); subnet++ {
			ft, ok := c.representativeFlow(p, subnet)
			if !ok {
				continue // this subnet cannot source matching traffic
			}
			tr, err := enforce.TraceFlow(nodes, c.dep, c.ap, ft)
			if err != nil {
				out = append(out, Violation{
					PolicyID: p.ID, SrcSubnet: subnet,
					Reason: fmt.Sprintf("trace failed: %v", err),
				})
				continue
			}
			if tr.Policy == nil {
				out = append(out, Violation{
					PolicyID: p.ID, SrcSubnet: subnet,
					Reason: "flow matches no policy at its proxy (P_x incomplete)",
				})
				continue
			}
			if tr.Policy.ID != p.ID {
				// A higher-priority policy legitimately captures the
				// flow; the audited policy is not violated by that.
				continue
			}
			if v, bad := c.checkChain(p, subnet, tr); bad {
				out = append(out, v)
			}
		}
	}
	return out
}

// checkChain validates one traced chain against the policy's action list.
func (c *Controller) checkChain(p *policy.Policy, subnet int, tr *enforce.Trace) (Violation, bool) {
	if len(tr.Hops) != len(p.Actions) {
		return Violation{
			PolicyID: p.ID, SrcSubnet: subnet,
			Reason: fmt.Sprintf("chain length %d, want %d", len(tr.Hops), len(p.Actions)),
		}, true
	}
	for i, hop := range tr.Hops {
		if hop.Func != p.Actions[i] {
			return Violation{
				PolicyID: p.ID, SrcSubnet: subnet,
				Reason: fmt.Sprintf("step %d performs %v, want %v", i, hop.Func, p.Actions[i]),
			}, true
		}
		if !c.implements(hop.Node, hop.Func) {
			return Violation{
				PolicyID: p.ID, SrcSubnet: subnet,
				Reason: fmt.Sprintf("step %d lands on node %d which does not implement %v", i, hop.Node, hop.Func),
			}, true
		}
		if c.failed[hop.Node] {
			return Violation{
				PolicyID: p.ID, SrcSubnet: subnet,
				Reason: fmt.Sprintf("step %d routed to failed middlebox %d", i, hop.Node),
			}, true
		}
	}
	return Violation{}, false
}

func (c *Controller) implements(id topo.NodeID, f policy.FuncType) bool {
	for _, fn := range c.dep.FuncsOf(id) {
		if fn == f {
			return true
		}
	}
	return false
}

// representativeFlow synthesizes a flow from the given subnet matching
// policy p, or reports that none exists (the policy's source side does
// not overlap the subnet).
func (c *Controller) representativeFlow(p *policy.Policy, subnet int) (netaddr.FiveTuple, bool) {
	sub := topo.SubnetPrefix(subnet)
	if !p.Desc.Src.Overlaps(sub) {
		return netaddr.FiveTuple{}, false
	}
	ft := netaddr.FiveTuple{
		SrcPort: p.Desc.SrcPort.Lo,
		DstPort: p.Desc.DstPort.Lo,
		Proto:   p.Desc.Proto,
	}
	if ft.Proto == netaddr.ProtoAny {
		ft.Proto = netaddr.ProtoTCP
	}
	// Source: a host inside both the subnet and the policy's src prefix.
	if p.Desc.Src.Bits() <= sub.Bits() {
		ft.Src = topo.HostAddr(subnet, 1)
	} else {
		ft.Src = p.Desc.Src.Addr()
		if !sub.Contains(ft.Src) {
			return netaddr.FiveTuple{}, false
		}
	}
	// Destination: inside the policy's dst prefix, preferring another
	// stub subnet so the tail of the path is routable.
	switch {
	case p.Desc.Dst.IsAny():
		other := subnet%c.dep.NumSubnets() + 1
		if other == subnet {
			other = (subnet % c.dep.NumSubnets()) + 1
		}
		ft.Dst = topo.HostAddr(other, 1)
	case p.Desc.Dst.Bits() <= 16 && topo.SubnetIndexOf(p.Desc.Dst.Addr()+netaddr.Addr(1<<8+1)) != 0:
		ft.Dst = p.Desc.Dst.Addr() + netaddr.Addr(1<<8+1) // host 1 pattern inside a /16+
	default:
		ft.Dst = p.Desc.Dst.Addr()
	}
	if !p.Desc.Matches(ft) {
		return netaddr.FiveTuple{}, false
	}
	return ft, true
}
