package controller_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/policy"
)

func TestExportConfigRoundTrip(t *testing.T) {
	b := newBed(t, 51, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	pid := b.tbl.All()[0].ID
	sol, err := ctl.SolveLB(controller.Measurements{
		{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	controller.ApplyWeights(nodes, sol)

	export := ctl.ExportConfig(nodes)
	if export.Topology.Subnets != 4 || export.Topology.Middleboxes != 7 {
		t.Errorf("topology summary: %+v", export.Topology)
	}
	if len(export.Nodes) != len(nodes) {
		t.Fatalf("exported %d nodes, want %d", len(export.Nodes), len(nodes))
	}

	var buf bytes.Buffer
	if err := export.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back controller.Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(back.Nodes) != len(export.Nodes) {
		t.Fatal("round trip lost nodes")
	}

	// The proxy for subnet 1 carries the policy and (after ApplyWeights)
	// a weight vector over its FW candidates.
	var proxy1 *controller.ExportedNode
	for i := range back.Nodes {
		if back.Nodes[i].Kind == "proxy" && back.Nodes[i].Subnet == 1 {
			proxy1 = &back.Nodes[i]
		}
	}
	if proxy1 == nil {
		t.Fatal("proxy for subnet 1 missing from export")
	}
	if len(proxy1.Policies) != 1 || proxy1.Policies[0].Actions != "FW -> IDS" {
		t.Errorf("proxy policies: %+v", proxy1.Policies)
	}
	if len(proxy1.Candidates["FW"]) != 2 {
		t.Errorf("proxy FW candidates: %v", proxy1.Candidates)
	}
	if len(proxy1.Weights) == 0 {
		t.Error("proxy weights missing after ApplyWeights")
	} else {
		w := proxy1.Weights[0]
		if w.Func != "FW" || len(w.Weights) != 2 {
			t.Errorf("weight row: %+v", w)
		}
	}
	if proxy1.Strategy != "LB" {
		t.Errorf("strategy = %q", proxy1.Strategy)
	}
}

func TestExportMarksFailures(t *testing.T) {
	b := newBed(t, 52, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.HotPotato})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	dead := b.dep.MBNodes[2]
	if err := ctl.MarkFailed(dead, true); err != nil {
		t.Fatal(err)
	}
	export := ctl.ExportConfig(nodes)
	if len(export.FailedMiddleboxes) != 1 || export.FailedMiddleboxes[0] != b.g.Node(dead).Name {
		t.Errorf("failed list: %v", export.FailedMiddleboxes)
	}
}
