// Package controller implements the paper's centralized middlebox
// controller (§III-A): it knows the topology, the middlebox placement and
// the network-wide policies; it computes each node's closest-middlebox
// assignments m_x^e and candidate sets M_x^e (§III-B/C) with shortest
// paths; it distributes each node's relevant policy subset P_x; it
// aggregates the proxies' traffic measurements; and it solves the
// load-balancing linear programs (Eq. 1 and Eq. 2) whose solution becomes
// the nodes' probabilistic forwarding weights.
//
// Unlike an SDN controller it never touches the routers and is not on any
// per-flow path: everything it produces is pushed to proxies and
// middleboxes as configuration.
package controller

import (
	"fmt"
	"math/rand"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

// DefaultK returns the paper's candidate-set sizes (§IV-A): 4 for FW and
// IDS (7 instances each), 2 for WP and TM (4 instances each).
func DefaultK() map[policy.FuncType]int {
	return map[policy.FuncType]int{
		policy.FuncFW:  4,
		policy.FuncIDS: 4,
		policy.FuncWP:  2,
		policy.FuncTM:  2,
	}
}

// DefaultCounts returns the paper's middlebox population (§IV-A).
func DefaultCounts() map[policy.FuncType]int {
	return map[policy.FuncType]int{
		policy.FuncFW:  7,
		policy.FuncIDS: 7,
		policy.FuncWP:  4,
		policy.FuncTM:  4,
	}
}

// Options configures a controller.
type Options struct {
	// Strategy is installed on every node (HotPotato, Random or
	// LoadBalanced).
	Strategy enforce.Strategy
	// K sets |M_x^e| per function; functions absent from the map get
	// KDefault (itself defaulting to 1).
	K        map[policy.FuncType]int
	KDefault int
	// Capacity is C(x) per middlebox; absent entries get 1. With uniform
	// capacities, minimizing λ minimizes the maximum load, which is what
	// the paper's evaluation plots.
	Capacity map[topo.NodeID]float64
	// CapLambda adds the paper's λ <= 1 constraint. If that makes the
	// program infeasible the controller re-solves without it and reports
	// the (overload) λ.
	CapLambda bool
	// LabelSwitching enables §III-E on every node.
	LabelSwitching bool
	// FlowTTL/LabelTTL are soft-state lifetimes (0 = no expiry).
	FlowTTL, LabelTTL int64
	// UseTrie selects trie classifiers at nodes.
	UseTrie bool
	// HashSeed seeds flow-hash selection.
	HashSeed uint64
	// FunctionFactory overrides middlebox function construction; nil
	// uses the built-in implementations (nf.New). Required when policies
	// reference function types registered beyond the built-in four.
	FunctionFactory enforce.FunctionFactory
	// Verify makes BuildNodes, Reassign and the LB solvers statically
	// verify their plan (internal/verify) and refuse to install one with
	// violations. The failed check returns a *verify.Error listing them.
	Verify bool
}

// Controller is the central management server.
type Controller struct {
	dep      *enforce.Deployment
	ap       *route.AllPairs
	policies *policy.Table
	opts     Options
	// candidates caches M_x^e for every proxy/middlebox x.
	candidates map[topo.NodeID]map[policy.FuncType][]topo.NodeID
	// failed marks middleboxes currently considered down.
	failed map[topo.NodeID]bool

	// Observability attachments (observe.go); nil unless SetMetrics was
	// called. lastWeights is the previous solve's plan, for churn.
	metrics     *metricsRegistry
	clock       clockFunc
	lastWeights weightPlan

	// journal is the optional write-ahead log (journal.go); nil unless
	// SetJournal was called.
	journal *Journal
}

// New creates a controller over a completed deployment (all middleboxes
// placed). The AllPairs calculator must be built over the same graph with
// router-only transit.
func New(dep *enforce.Deployment, ap *route.AllPairs, policies *policy.Table, opts Options) *Controller {
	if opts.Strategy == 0 {
		opts.Strategy = enforce.HotPotato
	}
	if opts.KDefault == 0 {
		opts.KDefault = 1
	}
	return &Controller{dep: dep, ap: ap, policies: policies, opts: opts}
}

// kFor returns |M_x^e| for function e.
func (c *Controller) kFor(e policy.FuncType) int {
	if k, ok := c.opts.K[e]; ok {
		return k
	}
	return c.opts.KDefault
}

// capacityOf returns C(x).
func (c *Controller) capacityOf(x topo.NodeID) float64 {
	if v, ok := c.opts.Capacity[x]; ok && v > 0 {
		return v
	}
	return 1
}

// computeAssignments fills the M_x^e cache for every proxy and middlebox:
// the k closest providers of each function the node does not itself
// implement (Π_x), via shortest-path distance — the paper's Dijkstra
// assignment (§III-B/C).
func (c *Controller) computeAssignments() {
	c.candidates = make(map[topo.NodeID]map[policy.FuncType][]topo.NodeID)
	funcs := c.dep.Functions()
	assign := func(x topo.NodeID, implemented map[policy.FuncType]bool) {
		m := make(map[policy.FuncType][]topo.NodeID, len(funcs))
		for _, e := range funcs {
			if implemented[e] {
				continue
			}
			m[e] = c.ap.KClosest(x, c.liveProviders(e), c.kFor(e))
		}
		c.candidates[x] = m
	}
	for _, p := range c.dep.ProxyNodes {
		assign(p, nil)
	}
	for _, mb := range c.dep.MBNodes {
		impl := make(map[policy.FuncType]bool)
		for _, f := range c.dep.FuncsOf(mb) {
			impl[f] = true
		}
		assign(mb, impl)
	}
}

// CandidatesOf returns M_x^e for a node (computing assignments on first
// use). The closest provider — the hot-potato target m_x^e — is index 0.
func (c *Controller) CandidatesOf(x topo.NodeID) map[policy.FuncType][]topo.NodeID {
	if c.candidates == nil {
		c.computeAssignments()
	}
	return c.candidates[x]
}

// BuildNodes materializes and configures every proxy and middlebox:
// candidate sets, relevant policies P_x, strategy, and feature flags.
// LB weights are installed separately via ApplyWeights after SolveLB.
func (c *Controller) BuildNodes() (map[topo.NodeID]*enforce.Node, error) {
	if c.candidates == nil {
		c.computeAssignments()
	}
	if err := c.verifyPlan(nil); err != nil {
		return nil, err
	}
	nodes := make(map[topo.NodeID]*enforce.Node, len(c.dep.ProxyNodes)+len(c.dep.MBNodes))

	for _, id := range c.dep.ProxyNodes {
		n := enforce.NewProxy(c.dep, id)
		subnet := c.dep.Graph.Node(id).Subnet
		cfg := c.baseConfig(id)
		cfg.Policies = c.policies.SrcRelevant(subnet)
		if err := n.Install(cfg); err != nil {
			return nil, fmt.Errorf("controller: configure proxy %v: %w", id, err)
		}
		nodes[id] = n
	}
	for _, id := range c.dep.MBNodes {
		n, err := enforce.NewMiddleboxWith(c.dep, id, c.opts.FunctionFactory)
		if err != nil {
			return nil, err
		}
		cfg := c.baseConfig(id)
		cfg.Policies = c.policies.FuncRelevant(c.dep.FuncsOf(id))
		if err := n.Install(cfg); err != nil {
			return nil, fmt.Errorf("controller: configure middlebox %v: %w", id, err)
		}
		nodes[id] = n
	}
	return nodes, nil
}

// baseConfig builds the strategy/feature part of a node's Config.
func (c *Controller) baseConfig(id topo.NodeID) enforce.Config {
	return enforce.Config{
		Candidates:     c.candidates[id],
		Strategy:       c.opts.Strategy,
		HashSeed:       c.opts.HashSeed,
		LabelSwitching: c.opts.LabelSwitching,
		FlowTTL:        c.opts.FlowTTL,
		LabelTTL:       c.opts.LabelTTL,
		UseTrie:        c.opts.UseTrie,
	}
}

// Measurements aggregates per-(policy, src, dst) packet volumes — the
// T_{s,d,p} of §III-C, from which every other T derives.
type Measurements map[enforce.MeasKey]int64

// Collect sums the measurement counters of all proxies.
func Collect(nodes map[topo.NodeID]*enforce.Node) Measurements {
	out := make(Measurements)
	for _, n := range nodes {
		for k, v := range n.Measurements() {
			out[k] += v
		}
	}
	return out
}

// MeasurementsFromFlows computes what the proxies would measure for a
// flow set, by classifying each flow against the global policy table.
// The figure-scale experiments use this instead of running packets.
func MeasurementsFromFlows(dep *enforce.Deployment, tbl *policy.Table, flows []enforce.FlowDemand) Measurements {
	out := make(Measurements)
	for _, f := range flows {
		p := tbl.Match(f.Tuple)
		if p == nil || p.Actions.IsPermit() {
			continue
		}
		out[enforce.MeasKey{
			PolicyID:  p.ID,
			SrcSubnet: dep.SubnetIndexOf(f.Tuple.Src),
			DstSubnet: dep.SubnetIndexOf(f.Tuple.Dst),
		}] += f.Packets
	}
	return out
}

// ApplyWeights pushes a solved LB configuration to the nodes.
func ApplyWeights(nodes map[topo.NodeID]*enforce.Node, sol *LBSolution) {
	for id, n := range nodes {
		if w, ok := sol.Weights[id]; ok {
			n.SetWeights(w)
		} else {
			n.SetWeights(nil)
		}
	}
}

// RandomDeployment is a convenience that builds the paper's §IV-A
// deployment on a graph: the default middlebox population placed on
// random core routers.
func RandomDeployment(g *topo.Graph, rng *rand.Rand) (*enforce.Deployment, error) {
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		return nil, err
	}
	dep.PlaceRandom(DefaultCounts(), rng)
	return dep, nil
}
