package controller_test

import (
	"math/rand"
	"strings"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
	"sdme/internal/workload"
)

func TestAuditCleanDeployment(t *testing.T) {
	b := newBed(t, 61, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	if vs := ctl.Audit(nodes); len(vs) != 0 {
		t.Errorf("clean deployment has violations: %v", vs)
	}
}

func TestAuditFullCampusWorkloadPolicies(t *testing.T) {
	// The paper's whole evaluation bed must audit clean: 30 generated
	// policies × 10 subnets, all three strategies.
	rng := rand.New(rand.NewSource(20))
	g := topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	dep, err := controller.RandomDeployment(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	tbl := policy.NewTable()
	workload.GeneratePolicies(workload.GenConfig{Subnets: dep.NumSubnets(), PoliciesPerClass: 10}, tbl, rng)
	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))

	for _, strategy := range []enforce.Strategy{enforce.HotPotato, enforce.Random, enforce.LoadBalanced} {
		ctl := controller.New(dep, ap, tbl, controller.Options{Strategy: strategy, K: controller.DefaultK()})
		nodes, err := ctl.BuildNodes()
		if err != nil {
			t.Fatal(err)
		}
		if vs := ctl.Audit(nodes); len(vs) != 0 {
			t.Errorf("%v: %d violations, first: %v", strategy, len(vs), vs[0])
		}
	}
}

func TestAuditDetectsSabotagedCandidates(t *testing.T) {
	// Corrupt one proxy's candidate set to point FW traffic at an IDS
	// box; the audit must catch the wrong-function step.
	b := newBed(t, 62, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.HotPotato})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := b.dep.ProxyFor(1)
	bad := map[policy.FuncType][]topo.NodeID{}
	for f, c := range nodes[victim].Config().Candidates {
		bad[f] = c
	}
	bad[policy.FuncFW] = []topo.NodeID{b.dep.Providers(policy.FuncIDS)[0]}
	nodes[victim].SetCandidates(bad)

	vs := ctl.Audit(nodes)
	if len(vs) == 0 {
		t.Fatal("sabotaged candidates not detected")
	}
	// The misdirected packet either lands on a box that cannot serve the
	// function ("does not implement") or strands there because the IDS
	// box has no candidates for its own function ("trace failed"). Either
	// way the audit must localize it to subnet 1.
	found := false
	for _, v := range vs {
		if v.SrcSubnet == 1 &&
			(strings.Contains(v.Reason, "does not implement") || strings.Contains(v.Reason, "trace failed")) {
			found = true
		}
	}
	if !found {
		t.Errorf("violations do not localize the sabotage: %v", vs)
	}
}

func TestAuditDetectsStaleFailure(t *testing.T) {
	// Mark a middlebox failed WITHOUT reassigning: nodes still route to
	// it; the audit must flag the stale state.
	b := newBed(t, 63, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.HotPotato,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	// Find a firewall that actually serves some subnet under HP.
	demands := []enforce.FlowDemand{
		{Tuple: flow(1, 2, 80, 1), Packets: 1},
		{Tuple: flow(2, 3, 80, 2), Packets: 1},
		{Tuple: flow(3, 4, 80, 3), Packets: 1},
		{Tuple: flow(4, 1, 80, 4), Packets: 1},
	}
	report, err := enforce.EvaluateFlows(nodes, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}
	var used topo.NodeID = topo.InvalidNode
	for _, fw := range b.dep.Providers(policy.FuncFW) {
		if report.Loads[fw] > 0 {
			used = fw
			break
		}
	}
	if used == topo.InvalidNode {
		t.Fatal("no used firewall")
	}
	if err := ctl.MarkFailed(used, true); err != nil {
		t.Fatal(err)
	}
	vs := ctl.Audit(nodes)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Reason, "failed middlebox") {
			found = true
		}
	}
	if !found {
		t.Errorf("stale failure not flagged: %v", vs)
	}
	// After Reassign the audit is clean again.
	if err := ctl.Reassign(nodes); err != nil {
		t.Fatal(err)
	}
	if vs := ctl.Audit(nodes); len(vs) != 0 {
		t.Errorf("violations after repair: %v", vs)
	}
}
