package controller_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "ctl.wal")
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := controller.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(controller.JournalFailed, controller.FailedRecord{Failed: []int{7, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := j.LogEpoch(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.LogEpoch(5, 0); err != nil {
		t.Fatal(err)
	}
	// A later failed-set supersedes the earlier one wholesale.
	if err := j.Append(controller.JournalFailed, controller.FailedRecord{Failed: []int{9}}); err != nil {
		t.Fatal(err)
	}
	recs, bytes := j.Stats()
	if recs != 4 || bytes == 0 {
		t.Errorf("stats = %d records, %d bytes", recs, bytes)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}

	st, err := controller.ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn {
		t.Error("clean journal reported torn")
	}
	if st.Records != 4 {
		t.Errorf("records = %d, want 4", st.Records)
	}
	if st.Epoch != 5 {
		t.Errorf("epoch = %d, want high-water 5", st.Epoch)
	}
	if !reflect.DeepEqual(st.Failed, []topo.NodeID{9}) {
		t.Errorf("failed = %v, want last-record-wins [9]", st.Failed)
	}
}

func TestJournalEpochHighWaterIsMonotonic(t *testing.T) {
	path := journalPath(t)
	j, err := controller.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// A restarted controller re-logging an older epoch (e.g. a replayed
	// push racing a stale record) must not move the high-water back.
	for _, e := range []uint64{4, 2, 3} {
		if err := j.LogEpoch(e, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := controller.ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 4 {
		t.Errorf("epoch = %d, want 4", st.Epoch)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := journalPath(t)
	j, err := controller.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogEpoch(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.LogEpoch(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The second record starts right after the first: 8-byte header plus
	// the BE payload length in the header's first word.
	boundary := 8 + int(uint32(clean[0])<<24|uint32(clean[1])<<16|uint32(clean[2])<<8|uint32(clean[3]))
	if boundary <= 8 || boundary >= len(clean) {
		t.Fatalf("bad record boundary %d (file %d bytes)", boundary, len(clean))
	}
	// Crash mid-append: EVERY truncation point inside the last record —
	// partial header or partial payload — must replay to the intact first
	// record, flag the torn tail, and not error.
	for cut := boundary; cut < len(clean); cut++ {
		if err := os.WriteFile(path, clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := controller.ReplayJournal(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		wantTorn := cut != boundary // exact boundary is a clean EOF
		if st.Records != 1 || st.Torn != wantTorn || st.Epoch != 1 {
			t.Fatalf("cut at %d: records=%d torn=%v epoch=%d, want 1/%v/1",
				cut, st.Records, st.Torn, st.Epoch, wantTorn)
		}
	}
}

func TestJournalCRCCorruptionStopsReplay(t *testing.T) {
	path := journalPath(t)
	j, err := controller.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogEpoch(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.LogEpoch(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the LAST record: its CRC fails, replay
	// keeps the intact prefix.
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := controller.ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || !st.Torn || st.Epoch != 1 {
		t.Errorf("records=%d torn=%v epoch=%d, want 1/true/1", st.Records, st.Torn, st.Epoch)
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	j, err := controller.OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.LogEpoch(1, 0); err == nil {
		t.Error("append after close succeeded")
	}
}

func TestRestoreFromJournalFingerprintGate(t *testing.T) {
	b := newBed(t, 61, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	path := journalPath(t)
	j, err := controller.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.SetJournal(j); err != nil {
		t.Fatal(err)
	}
	mb := b.dep.MBNodes[0]
	if err := ctl.MarkFailed(mb, true); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := controller.ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != ctl.Fingerprint() {
		t.Fatal("journal fingerprint does not match the controller that wrote it")
	}

	// Same inputs → restore succeeds and reproduces the failed set.
	twin := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	if err := twin.RestoreFromJournal(st); err != nil {
		t.Fatal(err)
	}
	if got := twin.Failed(); len(got) != 1 || got[0] != mb {
		t.Errorf("restored failed set = %v, want [%v]", got, mb)
	}

	// Different planning options → different fingerprint → refused.
	other := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.HotPotato})
	if err := other.RestoreFromJournal(st); err == nil {
		t.Error("restore accepted a journal from a differently-configured controller")
	}
}

func TestJournalRestoredSolutionRoundTrip(t *testing.T) {
	b := newBed(t, 62, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	path := journalPath(t)
	j, err := controller.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.SetJournal(j); err != nil {
		t.Fatal(err)
	}
	pid := b.tbl.All()[0].ID
	sol, err := ctl.SolveLB(controller.Measurements{
		{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 500,
		{PolicyID: pid, SrcSubnet: 2, DstSubnet: 3}: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := controller.ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got := st.RestoredSolution()
	if got == nil {
		t.Fatal("no solution restored")
	}
	if got.Lambda != sol.Lambda {
		t.Errorf("lambda = %v, want %v", got.Lambda, sol.Lambda)
	}
	if !reflect.DeepEqual(got.Weights, sol.Weights) {
		t.Errorf("weights diverged through the journal:\n%v\n%v", got.Weights, sol.Weights)
	}

	// A journal with no weights record restores a nil solution.
	if (&controller.JournalState{}).RestoredSolution() != nil {
		t.Error("empty state produced a solution")
	}
}
