package controller_test

import (
	"errors"
	"testing"

	"sdme/internal/netaddr"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/policy"
)

func TestMarkFailedValidation(t *testing.T) {
	b := newBed(t, 31, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.HotPotato})
	if err := ctl.MarkFailed(b.dep.ProxyNodes[0], true); err == nil {
		t.Error("marking a proxy failed should error")
	}
	mb := b.dep.MBNodes[0]
	if err := ctl.MarkFailed(mb, true); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Failed(); len(got) != 1 || got[0] != mb {
		t.Errorf("Failed() = %v", got)
	}
	if err := ctl.MarkFailed(mb, false); err != nil {
		t.Fatal(err)
	}
	if len(ctl.Failed()) != 0 {
		t.Error("recovery not recorded")
	}
}

func TestReassignAfterFailureShiftsTraffic(t *testing.T) {
	b := newBed(t, 32, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.HotPotato,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	demands := []enforce.FlowDemand{
		{Tuple: flow(1, 2, 80, 1), Packets: 100},
		{Tuple: flow(2, 3, 80, 2), Packets: 100},
		{Tuple: flow(3, 4, 80, 3), Packets: 100},
	}
	before, err := enforce.EvaluateFlows(nodes, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}
	// Find the busiest firewall and fail it.
	var hot enforce.NodeLoad
	for _, nl := range before.SortedLoads() {
		for _, fw := range b.dep.Providers(policy.FuncFW) {
			if nl.Node == fw {
				hot = nl
				break
			}
		}
		if hot.Node != 0 {
			break
		}
	}
	if hot.Load == 0 {
		t.Fatal("no loaded firewall found")
	}
	if err := ctl.MarkFailed(hot.Node, true); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Reassign(nodes); err != nil {
		t.Fatal(err)
	}
	after, err := enforce.EvaluateFlows(nodes, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Loads[hot.Node]; got != 0 {
		t.Errorf("failed middlebox still receives %d packets", got)
	}
	// All traffic still fully enforced: FW total unchanged.
	var fwTotal int64
	for _, l := range after.LoadsOf(b.dep, policy.FuncFW) {
		fwTotal += l
	}
	if fwTotal != 300 {
		t.Errorf("FW total after failure = %d, want 300", fwTotal)
	}
	if after.Dropped != 0 {
		t.Errorf("flows dropped after reassign: %d", after.Dropped)
	}

	// Recovery restores the original assignment.
	if err := ctl.MarkFailed(hot.Node, false); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Reassign(nodes); err != nil {
		t.Fatal(err)
	}
	restored, err := enforce.EvaluateFlows(nodes, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Loads[hot.Node] != hot.Load {
		t.Errorf("restored load = %d, want %d", restored.Loads[hot.Node], hot.Load)
	}
}

func TestReassignFailsWhenFunctionUncovered(t *testing.T) {
	b := newBed(t, 33, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.HotPotato})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	// Fail every IDS.
	for _, id := range b.dep.Providers(policy.FuncIDS) {
		if err := ctl.MarkFailed(id, true); err != nil {
			t.Fatal(err)
		}
	}
	err = ctl.Reassign(nodes)
	if err == nil {
		t.Fatal("Reassign must fail when a function loses all providers")
	}
	// The failure is typed: recovery loops branch on the sentinel and read
	// the starved function off the concrete error.
	if !errors.Is(err, controller.ErrNoLiveProvider) {
		t.Errorf("err = %v, want errors.Is ErrNoLiveProvider", err)
	}
	var nlp *controller.NoLiveProviderError
	if !errors.As(err, &nlp) {
		t.Fatalf("err = %T, want *NoLiveProviderError", err)
	}
	if nlp.Func != policy.FuncIDS {
		t.Errorf("starved function = %v, want %v", nlp.Func, policy.FuncIDS)
	}
}

func TestLBAfterFailure(t *testing.T) {
	// After failure + reassign, SolveLB over the surviving boxes must
	// produce a valid balanced solution that avoids the dead box.
	b := newBed(t, 34, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 3, policy.FuncIDS: 2},
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	pid := b.tbl.All()[0].ID
	meas := controller.Measurements{
		{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 600,
		{PolicyID: pid, SrcSubnet: 3, DstSubnet: 4}: 600,
	}
	dead := b.dep.Providers(policy.FuncFW)[0]
	if err := ctl.MarkFailed(dead, true); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Reassign(nodes); err != nil {
		t.Fatal(err)
	}
	sol, err := ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	if sol.ExpectedLoads[dead] != 0 {
		t.Errorf("LP routed %v packets through the failed box", sol.ExpectedLoads[dead])
	}
	// Two surviving FWs for 1200 packets: optimum λ = 600.
	if sol.Lambda < 600-1e-6 {
		t.Errorf("λ = %v below feasible bound", sol.Lambda)
	}
	controller.ApplyWeights(nodes, sol)
	demands := []enforce.FlowDemand{
		{Tuple: flow(1, 2, 80, 1), Packets: 600},
		{Tuple: flow(3, 4, 80, 2), Packets: 600},
	}
	report, err := enforce.EvaluateFlows(nodes, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}
	if report.Loads[dead] != 0 {
		t.Errorf("dataplane still uses the failed box: %d", report.Loads[dead])
	}
}

func TestFineWeightsDriveDataplane(t *testing.T) {
	// Eq. (1) weights are keyed per (source, destination) pair; the
	// dataplane must prefer them over aggregated keys and realize the
	// per-pair splits.
	b := newBed(t, 35, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 3, policy.FuncIDS: 2},
		HashSeed: 3,
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	var demands []enforce.FlowDemand
	for i := 0; i < 3000; i++ {
		src := 1 + i%4
		dst := 1 + (i+1)%4
		if dst == src {
			dst = 1 + (dst % 4)
		}
		demands = append(demands, enforce.FlowDemand{
			Tuple:   flow(src, dst, 80, uint16(i)),
			Packets: int64(1 + i%7),
		})
	}
	meas := controller.MeasurementsFromFlows(b.dep, b.tbl, demands)
	fine, err := ctl.SolveLBFine(meas)
	if err != nil {
		t.Fatal(err)
	}
	controller.ApplyWeights(nodes, fine)
	report, err := enforce.EvaluateFlows(nodes, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}
	// Realized max IDS load within 10% of the fine LP's expectation.
	var lpMax float64
	for _, id := range b.dep.Providers(policy.FuncIDS) {
		if l := fine.ExpectedLoads[id]; l > lpMax {
			lpMax = l
		}
	}
	if got := float64(report.MaxLoad(b.dep, policy.FuncIDS)); got > lpMax*1.1+1 {
		t.Errorf("fine-weight realized IDS max %v above LP expectation %v", got, lpMax)
	}
}

func TestSolveLBErrorsWithoutProviders(t *testing.T) {
	// A policy whose chain includes a function no middlebox offers must
	// surface a clear error from the LP builder, not a bogus solution.
	b := newBed(t, 36, func(tbl *policy.Table) {
		d := policy.NewDescriptor()
		d.DstPort = netaddr.SinglePort(80)
		tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncType(88)})
	})
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.LoadBalanced})
	pid := b.tbl.All()[0].ID
	meas := controller.Measurements{{PolicyID: pid, SrcSubnet: 1, DstSubnet: 2}: 10}
	if _, err := ctl.SolveLB(meas); err == nil {
		t.Error("SolveLB should fail when a chain function has no provider")
	}
	if _, err := ctl.SolveLBFine(meas); err == nil {
		t.Error("SolveLBFine should fail when a chain function has no provider")
	}
}

func TestSolveLBUnknownPolicyMeasurement(t *testing.T) {
	b := newBed(t, 37, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.LoadBalanced})
	meas := controller.Measurements{{PolicyID: 9999, SrcSubnet: 1, DstSubnet: 2}: 10}
	if _, err := ctl.SolveLB(meas); err == nil {
		t.Error("unknown policy ID in measurements should fail")
	}
}

func TestSolveLBEmptyMeasurements(t *testing.T) {
	// No traffic measured: the LP is trivial (λ = 0) and yields no
	// weights; the dataplane then falls back to uniform splits.
	b := newBed(t, 38, webPolicy)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{Strategy: enforce.LoadBalanced})
	sol, err := ctl.SolveLB(controller.Measurements{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Lambda != 0 {
		t.Errorf("λ = %v for empty measurements", sol.Lambda)
	}
}
