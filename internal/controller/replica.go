package controller

import (
	"encoding/json"
	"fmt"
	"sync"

	"sdme/internal/metrics"
	"sdme/internal/mgmt"
)

// unmarshalValid decodes a peer envelope payload and validates it.
func unmarshalValid(data []byte, v interface{ Validate() error }) error {
	if err := json.Unmarshal(data, v); err != nil {
		return err
	}
	return v.Validate()
}

// HAReplica glues one replica's elector to its journal machinery and
// swaps roles as elections resolve:
//
//   standby:  StandbyJournal + Standby — streamed frames append to the
//             local journal file, heartbeats drive catch-up/resync;
//   leader:   ReplayJournal + OpenJournal + Replicator — the replayed
//             state seeds the controller (via OnPromote), and every
//             subsequent Append streams to the standbys.
//
// The same journal file backs both roles, so takeover is literally the
// PR-5 restart path: replay what replication delivered, restore, resume
// epoch numbering past the term-fenced high-water mark.
//
// Lock ordering: the elector calls the JournalBytes/JournalCRC hooks
// under its own lock, and those hooks take ha.mu — so e.mu precedes
// ha.mu, and NOTHING here may call an elector method while holding
// ha.mu (terms are passed by value into role-scoped closures instead).

// HAReplicaConfig configures one replica of the replicated controller.
type HAReplicaConfig struct {
	ID    int
	Peers []int
	// Quorum applies to both the election and journal replication;
	// 0 = majority of len(Peers)+1.
	Quorum      int
	JournalPath string
	Transport   PeerTransport
	// Election timing (see ElectorConfig); zero values take defaults.
	LeaseUS     int64
	HeartbeatUS int64
	Seed        int64
	Clock       ElectionClock
	// OnPromote fires (outside all replica locks) when this replica wins
	// a term: st is the replayed journal state, j the reopened leader
	// journal. The harness rebuilds its controller from st, attaches j,
	// and resumes epochs past st.Epoch under term fencing.
	OnPromote func(st *JournalState, j *Journal, term uint64)
	// OnDemote fires (outside all replica locks) when this replica is
	// deposed; the harness must stop pushing plans with the old term.
	OnDemote func(term uint64)
	Metrics  *metrics.Registry
}

// HAReplica is one member of the replicated controller group.
type HAReplica struct {
	cfg     HAReplicaConfig
	elector *Elector

	mu      sync.Mutex
	sj      *StandbyJournal // standby role, nil while leading
	standby *Standby
	j       *Journal // leader role, nil while standing by
	repl    *Replicator
	closed  bool
	// lastTerm is the term of the leader that last verifiably extended
	// this replica's journal — the election up-to-date fence (Raft's
	// "term of last log entry"). It is persisted across restarts by the
	// term-marker epoch record every new leader appends at promotion
	// (recovered here via ReplayJournal), advances when the standby
	// proves its journal a prefix of a newer leader's, and gates both
	// lease grants and incoming frames.
	lastTerm uint64
}

// NewHAReplica builds a replica in the standby role. Call Start to arm
// its election timeout.
func NewHAReplica(cfg HAReplicaConfig) (*HAReplica, error) {
	ha := &HAReplica{cfg: cfg}
	sj, err := OpenStandbyJournal(cfg.JournalPath)
	if err != nil {
		return nil, err
	}
	ha.sj = sj
	// Recover the journal's term fence: the highest term any replayed
	// epoch record carries. Every leader appends a term-marker epoch
	// record at promotion before any other record of its term, so this is
	// exactly the term of the leader that last extended the journal.
	st, err := ReplayJournal(cfg.JournalPath)
	if err != nil {
		_ = sj.Close()
		return nil, err
	}
	ha.lastTerm = st.Term
	ha.elector = NewElector(ElectorConfig{
		ID:              cfg.ID,
		Peers:           cfg.Peers,
		Quorum:          cfg.Quorum,
		LeaseUS:         cfg.LeaseUS,
		HeartbeatUS:     cfg.HeartbeatUS,
		Seed:            cfg.Seed,
		Clock:           cfg.Clock,
		Transport:       cfg.Transport,
		JournalBytes:    ha.JournalBytes,
		JournalCRC:      ha.JournalCRC,
		JournalLastTerm: ha.JournalLastTerm,
		OnLeader:        ha.promote,
		OnDeposed:       ha.demote,
		OnHeartbeat:     ha.onLeaderHeartbeat,
	})
	ha.standby = NewStandby(StandbyConfig{
		ID:         cfg.ID,
		Transport:  cfg.Transport,
		Term:       ha.elector.Term,
		LastTerm:   ha.JournalLastTerm,
		OnVerified: ha.noteVerifiedTerm,
	}, sj)
	if cfg.Metrics != nil {
		ha.elector.SetMetrics(cfg.Metrics)
		ha.standby.SetMetrics(cfg.Metrics)
	}
	return ha, nil
}

// Elector returns the replica's election state machine.
func (ha *HAReplica) Elector() *Elector { return ha.elector }

// Replicator returns the leader-side replicator, nil while standing by.
func (ha *HAReplica) Replicator() *Replicator {
	ha.mu.Lock()
	defer ha.mu.Unlock()
	return ha.repl
}

// Journal returns the leader journal, nil while standing by.
func (ha *HAReplica) Journal() *Journal {
	ha.mu.Lock()
	defer ha.mu.Unlock()
	return ha.j
}

// JournalBytes reports the replica's intact journal length, whichever
// role holds the file. Called by the elector under its own lock.
func (ha *HAReplica) JournalBytes() int64 {
	ha.mu.Lock()
	defer ha.mu.Unlock()
	if ha.j != nil {
		return ha.j.Size()
	}
	if ha.sj != nil {
		return ha.sj.Bytes()
	}
	return 0
}

// JournalCRC reports the running CRC over the replica's intact journal.
func (ha *HAReplica) JournalCRC() uint32 {
	ha.mu.Lock()
	defer ha.mu.Unlock()
	if ha.j != nil {
		return ha.j.CRC()
	}
	if ha.sj != nil {
		return ha.sj.CRC()
	}
	return 0
}

// JournalLastTerm reports the term of the leader that last verifiably
// extended this replica's journal — the (lastTerm, bytes) half the
// election's up-to-date check compares first.
func (ha *HAReplica) JournalLastTerm() uint64 {
	ha.mu.Lock()
	defer ha.mu.Unlock()
	return ha.lastTerm
}

// noteVerifiedTerm advances the journal's term fence after the standby
// proves its journal a prefix of the term-`term` leader's.
func (ha *HAReplica) noteVerifiedTerm(term uint64) {
	ha.mu.Lock()
	defer ha.mu.Unlock()
	if term > ha.lastTerm {
		ha.lastTerm = term
	}
}

// Start arms the replica's first election timeout.
func (ha *HAReplica) Start() { ha.elector.Start() }

// Stop halts the replica: the elector ignores all further events and
// the journal handles are closed. Models a crashed replica.
func (ha *HAReplica) Stop() {
	ha.elector.Stop()
	ha.mu.Lock()
	defer ha.mu.Unlock()
	ha.closed = true
	if ha.repl != nil {
		ha.repl.Detach()
		ha.repl = nil
	}
	if ha.j != nil {
		//vet:ignore lockedblocking -- crash-stop is atomic: Deliver must never find a half-closed journal
		_ = ha.j.Close()
		ha.j = nil
	}
	if ha.sj != nil {
		//vet:ignore lockedblocking -- same atomic crash-stop for the standby handle
		_ = ha.sj.Close()
		ha.sj = nil
	}
	ha.standby = nil
}

// promote swaps standby → leader for the given term: replay the journal
// replication delivered, reopen it for appending, attach a replicator
// fenced at the winning term, then hand the replayed state to the
// harness.
func (ha *HAReplica) promote(term uint64) {
	ha.mu.Lock()
	if ha.closed || ha.j != nil {
		ha.mu.Unlock()
		return
	}
	if ha.sj != nil {
		//vet:ignore lockedblocking -- promotion closes the standby handle before the replay inside one critical section
		_ = ha.sj.Close()
		ha.sj, ha.standby = nil, nil
	}
	//vet:ignore lockedblocking -- takeover is atomic: no frame may land between the replay and the append reopen
	st, err := ReplayJournal(ha.cfg.JournalPath)
	if err != nil {
		ha.mu.Unlock()
		panic(fmt.Sprintf("controller: replica %d takeover replay: %v", ha.cfg.ID, err))
	}
	//vet:ignore lockedblocking -- same atomic role swap: Deliver must not race the journal pointer
	j, err := OpenJournal(ha.cfg.JournalPath)
	if err != nil {
		ha.mu.Unlock()
		panic(fmt.Sprintf("controller: replica %d takeover reopen: %v", ha.cfg.ID, err))
	}
	ha.j = j
	ha.repl = NewReplicator(ReplicatorConfig{
		ID:        ha.cfg.ID,
		Peers:     ha.cfg.Peers,
		Quorum:    ha.cfg.Quorum,
		Transport: ha.cfg.Transport,
		// The term is fixed for this replicator's lifetime: a deposed
		// leader tears it down and any frame it raced out carries the old
		// term, which standbys refuse.
		Term: func() uint64 { return term },
	}, j)
	if ha.cfg.Metrics != nil {
		ha.repl.SetMetrics(ha.cfg.Metrics)
	}
	// Term marker — Raft's no-op entry at the start of a term. Appending
	// an epoch record fenced with the winning term (epoch unchanged)
	// before any other record of this term persists the journal's term
	// fence: a replica that replays this journal — after a crash, or as a
	// standby that replicated it — recovers lastTerm = term, so a deposed
	// leader's longer-but-staler journal can never win a later election
	// over it on length alone.
	//vet:ignore lockedblocking -- the marker must be the term's first record, before any frame or append can race the role swap
	if err := j.LogEpoch(st.Epoch, term); err != nil {
		ha.mu.Unlock()
		panic(fmt.Sprintf("controller: replica %d term marker append: %v", ha.cfg.ID, err))
	}
	if term > ha.lastTerm {
		ha.lastTerm = term
	}
	cb := ha.cfg.OnPromote
	ha.mu.Unlock()
	if cb != nil {
		cb(st, j, term)
	}
}

// demote swaps leader → standby after deposition: close the append
// handle, reopen the same file as a standby journal, and resume
// following the new leader's stream.
func (ha *HAReplica) demote(term uint64) {
	ha.mu.Lock()
	if ha.closed || ha.j == nil {
		ha.mu.Unlock()
		return
	}
	ha.repl.Detach()
	ha.repl = nil
	//vet:ignore lockedblocking -- demotion closes the append handle and reopens as standby in one critical section
	_ = ha.j.Close()
	ha.j = nil
	//vet:ignore lockedblocking -- demotion is atomic: frames for the new term must find the standby journal open
	sj, err := OpenStandbyJournal(ha.cfg.JournalPath)
	if err != nil {
		ha.mu.Unlock()
		panic(fmt.Sprintf("controller: replica %d demotion reopen: %v", ha.cfg.ID, err))
	}
	ha.sj = sj
	ha.standby = NewStandby(StandbyConfig{
		ID:         ha.cfg.ID,
		Transport:  ha.cfg.Transport,
		Term:       ha.elector.Term,
		LastTerm:   ha.JournalLastTerm,
		OnVerified: ha.noteVerifiedTerm,
	}, sj)
	if ha.cfg.Metrics != nil {
		ha.standby.SetMetrics(ha.cfg.Metrics)
	}
	cb := ha.cfg.OnDemote
	ha.mu.Unlock()
	if cb != nil {
		cb(term)
	}
}

// onLeaderHeartbeat routes an accepted leader heartbeat to the standby
// replication logic (catch-up / resync). Fired by the elector outside
// its lock.
func (ha *HAReplica) onLeaderHeartbeat(hb mgmt.Heartbeat) {
	ha.mu.Lock()
	s := ha.standby
	ha.mu.Unlock()
	if s != nil {
		s.HandleHeartbeat(hb)
	}
}

// Deliver routes one peer envelope: election traffic to the elector,
// frames to the standby, acks and fetches to the replicator. Envelopes
// for the role the replica is not in are dropped (stale by definition).
func (ha *HAReplica) Deliver(env *mgmt.Envelope) {
	switch env.T {
	case mgmt.TypeLeaseRequest, mgmt.TypeLeaseGrant, mgmt.TypeHeartbeat:
		ha.elector.Deliver(env)
	case mgmt.TypeJournalFrame:
		var f mgmt.JournalFrame
		if unmarshalValid(env.Data, &f) != nil {
			return
		}
		ha.mu.Lock()
		s := ha.standby
		ha.mu.Unlock()
		if s != nil {
			s.HandleFrame(f)
		}
	case mgmt.TypeJournalAck:
		var a mgmt.JournalAck
		if unmarshalValid(env.Data, &a) != nil {
			return
		}
		ha.mu.Lock()
		r := ha.repl
		ha.mu.Unlock()
		if r != nil {
			r.HandleAck(a)
		}
	case mgmt.TypeJournalFetch:
		var f mgmt.JournalFetch
		if unmarshalValid(env.Data, &f) != nil {
			return
		}
		ha.mu.Lock()
		r := ha.repl
		ha.mu.Unlock()
		if r != nil {
			r.HandleFetch(f)
		}
	}
}
