package controller

import (
	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
	"sdme/internal/verify"
)

// Static plan verification (see internal/verify): with Options.Verify
// set, the controller refuses to install any plan that fails the
// coverage / loop-freedom / hp-optimality / failed-candidate invariants,
// and any LB solution whose weight vectors fail the lb-weights
// invariant. The checks recompute rankings independently from AllPairs,
// so they catch corruption of the controller's own cache, not only bad
// inputs.

// VerifyPlan statically checks the current candidate assignments
// (computing them first if needed) and, when weights is non-nil, an LB
// solution's weight vectors. It returns every violation found; an empty
// result means the plan upholds all invariants. Pass
// LBSolution.Weights as weights to audit a solved rebalance.
func (c *Controller) VerifyPlan(weights map[topo.NodeID]map[enforce.WeightKey][]float64) []verify.Violation {
	if c.candidates == nil {
		c.computeAssignments()
	}
	return verify.Check(verify.Plan{
		Dep:        c.dep,
		AP:         c.ap,
		Policies:   c.policies,
		Candidates: c.candidates,
		Weights:    weights,
		Failed:     c.Failed(),
		K:          c.kFor,
	})
}

// verifyPlan is the internal gate: nil unless verification is enabled
// and finds hard violations, in which case it returns a *verify.Error.
func (c *Controller) verifyPlan(weights map[topo.NodeID]map[enforce.WeightKey][]float64) error {
	if !c.opts.Verify {
		return nil
	}
	return verify.AsError(c.VerifyPlan(weights))
}

// verifyPlanWith is verifyPlan over an explicit candidate snapshot (a
// compiled Plan's) instead of the controller's live cache.
func (c *Controller) verifyPlanWith(candidates map[topo.NodeID]map[policy.FuncType][]topo.NodeID, weights map[topo.NodeID]map[enforce.WeightKey][]float64) error {
	if !c.opts.Verify {
		return nil
	}
	return verify.AsError(verify.Check(verify.Plan{
		Dep:        c.dep,
		AP:         c.ap,
		Policies:   c.policies,
		Candidates: candidates,
		Weights:    weights,
		Failed:     c.Failed(),
		K:          c.kFor,
	}))
}

// verifyPlanScoped gates a scoped re-solve: the invariants are checked
// only for the dirty policy set (and the candidate lists / weight vectors
// those policies can exercise), which is what keeps incremental
// verification proportional to the change rather than the plan.
func (c *Controller) verifyPlanScoped(candidates map[topo.NodeID]map[policy.FuncType][]topo.NodeID, weights map[topo.NodeID]map[enforce.WeightKey][]float64, policyIDs map[int]bool) error {
	if !c.opts.Verify {
		return nil
	}
	return verify.AsError(verify.CheckScoped(verify.Plan{
		Dep:        c.dep,
		AP:         c.ap,
		Policies:   c.policies,
		Candidates: candidates,
		Weights:    weights,
		Failed:     c.Failed(),
		K:          c.kFor,
	}, policyIDs))
}
