package controller

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"time"

	"sdme/internal/metrics"
	"sdme/internal/mgmt"
)

// Journal replication (DESIGN §11). The leader streams every journal
// record — the exact on-disk length+CRC32 frames, unchanged — to its
// standbys, and a rollout is only acknowledged once a quorum of
// replicas (leader included) holds the records durably. A standby's
// journal is kept a PROVEN prefix of the leader's: every frame carries
// the running CRC-32 of the leader's journal below its offset, a batch
// is applied only when that prefix CRC matches the standby's own
// running CRC at its exact current length, and the leader's heartbeats
// carry (size, running CRC) as well — so a diverged prefix (records a
// dead leader streamed that never reached a quorum) is detected at the
// first frame or heartbeat and resynced from zero, never silently
// spliced or livelocked on misaligned catch-up offsets.
// Takeover then reuses ReplayJournal + RestoreFromJournal verbatim: the
// new leader replays its own standby journal and resumes epoch
// numbering past the max term-fenced high-water mark it finds.

// Replication metric family names.
const (
	MetricReplStreamedBytes = "sdme_replication_streamed_bytes_total"
	MetricReplCatchups      = "sdme_replication_catchups_total"
	MetricReplStaleFrames   = "sdme_replication_stale_frames_total"
	MetricReplResyncs       = "sdme_replication_resyncs_total"
)

// ErrOffsetGap reports a frame batch that does not start at the
// standby's current journal length; the caller requests catch-up.
var ErrOffsetGap = errors.New("controller: frame offset does not match journal length")

// DecodeFrames validates a batch of raw journal frames and returns the
// longest intact prefix: whole frames whose length field is sane and
// whose payload matches its CRC-32 and decodes as a wire envelope.
// records counts the frames in that prefix. err is non-nil when
// anything follows the prefix (truncated frame, bad CRC, garbage) —
// nothing past the first bad byte is ever included, which is the
// property FuzzJournalStream hammers on.
func DecodeFrames(buf []byte) (intact []byte, records int, err error) {
	off := 0
	for off < len(buf) {
		if len(buf)-off < 8 {
			return buf[:off], records, fmt.Errorf("controller: truncated frame header at %d", off)
		}
		n := binary.BigEndian.Uint32(buf[off : off+4])
		sum := binary.BigEndian.Uint32(buf[off+4 : off+8])
		if n == 0 || n > 16<<20 {
			return buf[:off], records, fmt.Errorf("controller: bad frame length %d at %d", n, off)
		}
		if int64(len(buf)-off-8) < int64(n) {
			return buf[:off], records, fmt.Errorf("controller: truncated frame payload at %d", off)
		}
		payload := buf[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return buf[:off], records, fmt.Errorf("controller: frame CRC mismatch at %d", off)
		}
		if _, derr := mgmt.DecodeEnvelope(payload); derr != nil {
			return buf[:off], records, fmt.Errorf("controller: frame at %d is not a journal envelope", off)
		}
		off += 8 + int(n)
		records++
	}
	return buf, records, nil
}

// StandbyJournal is the follower-side journal file: streamed frames are
// appended at exact offsets, torn tails are truncated at open, and the
// running CRC mirrors the leader's for divergence detection.
type StandbyJournal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	bytes   int64
	records int64
	crc     uint32
}

// OpenStandbyJournal opens (creating if needed) a standby journal,
// truncating any torn tail and fsyncing the parent directory exactly
// like OpenJournal.
func OpenStandbyJournal(path string) (*StandbyJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("controller: open standby journal: %w", err)
	}
	intact, records, crc, torn, err := scanFrames(path)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if torn {
		if err := f.Truncate(intact); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("controller: truncate standby journal: %w", err)
		}
	}
	if err := syncDir(path); err != nil {
		_ = f.Close()
		return nil, err
	}
	return &StandbyJournal{f: f, path: path, bytes: intact, records: records, crc: crc}, nil
}

// Bytes returns the intact journal length.
func (s *StandbyJournal) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Records returns the intact record count.
func (s *StandbyJournal) Records() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// CRC returns the running CRC-32 over the intact journal.
func (s *StandbyJournal) CRC() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crc
}

// Path returns the journal's file path.
func (s *StandbyJournal) Path() string { return s.path }

// Close syncs and closes the file.
func (s *StandbyJournal) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	//vet:ignore lockedblocking -- final fsync must serialize with in-flight frame applies on the same mutex
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// ApplyFrames appends a batch of streamed frames at the given offset.
// It returns the journal length after the call. The batch is applied
// only when offset equals the current length (ErrOffsetGap otherwise —
// a duplicate or a gap, the caller decides); within the batch only the
// intact frame prefix is written, and never a record past a bad CRC.
func (s *StandbyJournal) ApplyFrames(offset int64, frames []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return s.bytes, errors.New("controller: standby journal closed")
	}
	if offset != s.bytes {
		return s.bytes, fmt.Errorf("%w: offset %d, length %d", ErrOffsetGap, offset, s.bytes)
	}
	intact, records, decErr := DecodeFrames(frames)
	if len(intact) > 0 {
		//vet:ignore lockedblocking -- prefix invariant: streamed records land at exact offsets, serialized by the journal lock
		if _, err := s.f.WriteAt(intact, offset); err != nil {
			return s.bytes, fmt.Errorf("controller: standby append: %w", err)
		}
		//vet:ignore lockedblocking -- the ack reports the record durable; fsync precedes it under the same lock
		if err := s.f.Sync(); err != nil {
			return s.bytes, fmt.Errorf("controller: standby sync: %w", err)
		}
		s.bytes += int64(len(intact))
		s.records += int64(records)
		s.crc = crc32.Update(s.crc, crc32.IEEETable, intact)
	}
	if decErr != nil {
		return s.bytes, fmt.Errorf("controller: standby frame batch: %w", decErr)
	}
	return s.bytes, nil
}

// TruncateTo discards everything at and past the given length — the
// resync path when the leader's journal is shorter (this replica holds
// an un-replicated tail from a dead leader) or diverged. The running
// CRC is recomputed by rescanning the remaining prefix.
func (s *StandbyJournal) TruncateTo(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("controller: standby journal closed")
	}
	if n < 0 || n > s.bytes {
		return fmt.Errorf("controller: truncate to %d out of range [0,%d]", n, s.bytes)
	}
	if n == s.bytes {
		return nil
	}
	//vet:ignore lockedblocking -- resync truncation must serialize with frame appends
	if err := s.f.Truncate(n); err != nil {
		return fmt.Errorf("controller: standby truncate: %w", err)
	}
	//vet:ignore lockedblocking -- durable before any post-resync frame is acked
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("controller: standby truncate sync: %w", err)
	}
	//vet:ignore lockedblocking -- post-truncate rescan must complete before the next frame is judged against bytes/crc
	intact, records, crc, _, err := scanFrames(s.path)
	if err != nil {
		return err
	}
	s.bytes, s.records, s.crc = intact, records, crc
	return nil
}

// StandbyConfig configures the follower-side replication endpoint.
type StandbyConfig struct {
	ID        int
	Transport PeerTransport
	// Term reports the replica's current election term; frames fenced
	// with an older term are refused (the sender was deposed).
	Term func() uint64
	// LastTerm reports the term of the leader that last verifiably
	// extended this replica's journal (nil = 0). Frames older than it are
	// refused even when the election term lags — once a newer leader's
	// records are in the journal, a dead leader's stragglers must never
	// append behind them.
	LastTerm func() uint64
	// OnVerified fires after the standby proves its journal is a prefix
	// of the term-`term` leader's journal (prefix-CRC match on a frame,
	// or a full-length CRC match in a heartbeat); the replica persists it
	// as the new LastTerm fence.
	OnVerified func(term uint64)
}

// Standby glues a StandbyJournal to the peer transport: it applies
// streamed frames, acks the leader with its durable length, requests
// catch-up on gaps, and resyncs on divergence signals in heartbeats.
type Standby struct {
	cfg StandbyConfig
	sj  *StandbyJournal

	cStale, cResyncs *metrics.Counter
}

// NewStandby builds a standby endpoint over an open standby journal.
func NewStandby(cfg StandbyConfig, sj *StandbyJournal) *Standby {
	return &Standby{cfg: cfg, sj: sj}
}

// SetMetrics exports the standby's stale-frame refusals and resyncs.
func (s *Standby) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.cStale, s.cResyncs = nil, nil
		return
	}
	s.cStale = reg.Counter(MetricReplStaleFrames)
	s.cResyncs = reg.Counter(MetricReplResyncs)
}

// Journal returns the underlying standby journal.
func (s *Standby) Journal() *StandbyJournal { return s.sj }

func (s *Standby) term() uint64 {
	if s.cfg.Term == nil {
		return 0
	}
	return s.cfg.Term()
}

func (s *Standby) lastTerm() uint64 {
	if s.cfg.LastTerm == nil {
		return 0
	}
	return s.cfg.LastTerm()
}

// verified records that the standby's journal is now a proven prefix of
// the term-`term` leader's journal.
func (s *Standby) verified(term uint64) {
	if s.cfg.OnVerified != nil {
		s.cfg.OnVerified(term)
	}
}

// HandleFrame applies one streamed frame batch and acks the leader.
// Frames fenced with a term older than the replica's election term OR
// its journal fence are refused without touching the journal — a
// deposed leader cannot extend a standby's log (the replication half of
// split-brain fencing). A batch at the standby's exact length is
// applied only when the frame's prefix CRC matches the standby's own
// running CRC: a mismatch means the journal below this offset is NOT
// the leader's prefix (an un-acked tail from a dead leader), and the
// standby resyncs from zero instead of splicing diverged histories.
func (s *Standby) HandleFrame(f mgmt.JournalFrame) {
	term, fence := s.term(), s.lastTerm()
	if fence > term {
		term = fence
	}
	if f.Term < term {
		if s.cStale != nil {
			s.cStale.Inc()
		}
		// Ack with our higher fence so the deposed sender learns.
		s.ack(f.Leader, term)
		return
	}
	bytes, crc := s.sj.Bytes(), s.sj.CRC()
	if f.Offset == bytes && f.PrefixCRC != crc {
		// Diverged below the leader's offset: everything we hold at this
		// length is suspect. Full resync.
		if s.cResyncs != nil {
			s.cResyncs.Inc()
		}
		if s.sj.TruncateTo(0) != nil {
			return
		}
		// The empty journal is trivially the leader's prefix.
		s.verified(f.Term)
		s.sendFetch(f.Leader, 0)
		s.ack(f.Leader, f.Term)
		return
	}
	if f.Offset == bytes {
		// Prefix CRC matched at our exact length: our whole journal is the
		// term-f.Term leader's prefix, and the batch extends it.
		s.verified(f.Term)
		_, err := s.sj.ApplyFrames(f.Offset, f.Frames)
		s.ack(f.Leader, f.Term)
		_ = err // bad tails are already excluded from the durable length
		return
	}
	if f.Offset > bytes {
		// A gap: records between our length and the frame are missing.
		s.sendFetch(f.Leader, bytes)
	}
	// Duplicate or gap — our length is unchanged and unverified by THIS
	// frame; ack with the fence we last verified against so an unproven
	// length never enters a newer leader's quorum accounting.
	s.ack(f.Leader, term)
}

// HandleHeartbeat folds the leader's replication progress report in: a
// shorter or equal-length-but-diverged leader journal triggers resync
// truncation, a longer one triggers catch-up, and a full-length CRC
// match proves the journals identical (advancing the LastTerm fence).
func (s *Standby) HandleHeartbeat(hb mgmt.Heartbeat) {
	if hb.Term < s.term() || hb.Term < s.lastTerm() {
		return
	}
	bytes, crc := s.sj.Bytes(), s.sj.CRC()
	switch {
	case bytes > hb.JournalBytes:
		// Our tail was never on a quorum (the leader was elected with a
		// journal at least as up-to-date as a majority's): discard it.
		if s.cResyncs != nil {
			s.cResyncs.Inc()
		}
		if err := s.sj.TruncateTo(hb.JournalBytes); err != nil {
			return
		}
		if s.sj.CRC() != hb.JournalCRC {
			// Still diverged below the leader's length: full resync.
			_ = s.sj.TruncateTo(0)
		} else {
			s.verified(hb.Term)
		}
		s.sendFetch(hb.Leader, s.sj.Bytes())
	case bytes == hb.JournalBytes && crc != hb.JournalCRC:
		if s.cResyncs != nil {
			s.cResyncs.Inc()
		}
		_ = s.sj.TruncateTo(0)
		s.sendFetch(hb.Leader, 0)
	case bytes < hb.JournalBytes:
		s.sendFetch(hb.Leader, bytes)
	default:
		// Equal length, equal CRC: byte-identical to the leader.
		s.verified(hb.Term)
	}
}

func (s *Standby) ack(leader int, term uint64) {
	s.sendTo(leader, mgmt.TypeJournalAck, mgmt.JournalAck{
		Standby: s.cfg.ID, Term: term, Bytes: s.sj.Bytes(),
	})
}

func (s *Standby) sendFetch(leader int, from int64) {
	s.sendTo(leader, mgmt.TypeJournalFetch, mgmt.JournalFetch{Standby: s.cfg.ID, From: from})
}

func (s *Standby) sendTo(to int, typ string, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	_ = s.cfg.Transport.Send(to, &mgmt.Envelope{T: typ, Data: data})
}

// ReplicatorConfig configures the leader-side replication endpoint.
type ReplicatorConfig struct {
	ID    int
	Peers []int
	// Quorum is the number of replicas (leader included) that must hold
	// a record durably before WaitQuorum releases it; 0 = a majority of
	// len(Peers)+1.
	Quorum    int
	Transport PeerTransport
	// Term reports the leader's current election term for frame fencing.
	Term func() uint64
	// ChunkBytes bounds one catch-up batch (default 1 MiB).
	ChunkBytes int
}

func (c *ReplicatorConfig) fill() {
	if c.Quorum <= 0 {
		c.Quorum = (len(c.Peers)+1)/2 + 1
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 1 << 20
	}
}

// Replicator is the leader-side endpoint: it streams each appended
// journal record to every standby, tracks per-standby durable lengths,
// and answers catch-up fetches from any offset out of the journal file.
type Replicator struct {
	cfg ReplicatorConfig
	j   *Journal

	mu      sync.Mutex
	acked   map[int]int64
	waiters []repWaiter

	cStreamed, cCatchups *metrics.Counter
}

type repWaiter struct {
	offset int64
	ch     chan struct{}
}

// NewReplicator attaches a replicator to the leader's journal: every
// subsequent Append streams its frame to the standbys before returning
// (without blocking on acks — call WaitQuorum to gate a rollout).
func NewReplicator(cfg ReplicatorConfig, j *Journal) *Replicator {
	cfg.fill()
	r := &Replicator{cfg: cfg, j: j, acked: make(map[int]int64)}
	j.SetOnAppend(r.onAppend)
	return r
}

// SetMetrics exports streamed bytes and catch-up counts.
func (r *Replicator) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		r.cStreamed, r.cCatchups = nil, nil
		return
	}
	r.cStreamed = reg.Counter(MetricReplStreamedBytes)
	r.cCatchups = reg.Counter(MetricReplCatchups)
}

// Detach unhooks the replicator from the journal (takeover teardown).
func (r *Replicator) Detach() { r.j.SetOnAppend(nil) }

// Quorum returns the effective quorum size.
func (r *Replicator) Quorum() int { return r.cfg.Quorum }

func (r *Replicator) term() uint64 {
	if r.cfg.Term == nil {
		return 0
	}
	return r.cfg.Term()
}

// onAppend streams one freshly durable record to every standby.
func (r *Replicator) onAppend(offset int64, prefixCRC uint32, frame []byte) error {
	f := mgmt.JournalFrame{
		Leader: r.cfg.ID, Term: r.term(),
		Offset: offset, PrefixCRC: prefixCRC, Frames: frame,
	}
	for _, p := range r.cfg.Peers {
		r.sendTo(p, mgmt.TypeJournalFrame, f)
	}
	if r.cStreamed != nil {
		r.cStreamed.Add(int64(len(frame)) * int64(len(r.cfg.Peers)))
	}
	return nil
}

// HandleAck folds a standby's durable-length report in, wakes rollouts
// whose quorum it completes, and starts catch-up for a standby that is
// behind (unless the ack's term says this leader was deposed — a newer
// leader owns that standby now). Only acks fenced with THIS leader's
// term enter the quorum accounting: a standby that refused a stale
// frame, or one still verified against an older leader, still acks with
// its current length, and under a different term that length can name
// different bytes — counting it would let WaitQuorum release a record
// that is on no quorum.
func (r *Replicator) HandleAck(a mgmt.JournalAck) {
	term := r.term()
	behind := a.Bytes
	if a.Term == term {
		r.mu.Lock()
		if a.Bytes > r.acked[a.Standby] {
			r.acked[a.Standby] = a.Bytes
		}
		var wake []chan struct{}
		if len(r.waiters) > 0 {
			q := r.quorumBytesLocked()
			kept := r.waiters[:0]
			for _, w := range r.waiters {
				if q >= w.offset {
					wake = append(wake, w.ch)
				} else {
					kept = append(kept, w)
				}
			}
			r.waiters = kept
		}
		behind = r.acked[a.Standby]
		r.mu.Unlock()
		for _, ch := range wake {
			close(ch)
		}
	}
	if a.Term <= term && behind < r.j.Size() {
		r.sendChunk(a.Standby, behind)
	}
}

// HandleFetch answers a standby's catch-up request from any offset.
func (r *Replicator) HandleFetch(f mgmt.JournalFetch) {
	if r.cCatchups != nil {
		r.cCatchups.Inc()
	}
	r.sendChunk(f.Standby, f.From)
}

// sendChunk ships raw journal bytes from the given offset, stamped with
// the prefix CRC below it so the standby can verify alignment.
func (r *Replicator) sendChunk(to int, from int64) {
	crc, err := r.j.CRCAt(from)
	if err != nil {
		return
	}
	buf, err := r.j.ReadChunk(from, r.cfg.ChunkBytes)
	if err != nil || len(buf) == 0 {
		return
	}
	r.sendTo(to, mgmt.TypeJournalFrame, mgmt.JournalFrame{
		Leader: r.cfg.ID, Term: r.term(), Offset: from, PrefixCRC: crc, Frames: buf,
	})
	if r.cStreamed != nil {
		r.cStreamed.Add(int64(len(buf)))
	}
}

func (r *Replicator) sendTo(to int, typ string, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	_ = r.cfg.Transport.Send(to, &mgmt.Envelope{T: typ, Data: data})
}

// AckedBytes returns a standby's last reported durable length.
func (r *Replicator) AckedBytes(standby int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked[standby]
}

// QuorumBytes returns the journal length known durable on a quorum of
// replicas (leader included) — the replicated high-water mark.
func (r *Replicator) QuorumBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quorumBytesLocked()
}

func (r *Replicator) quorumBytesLocked() int64 {
	lens := make([]int64, 0, len(r.cfg.Peers)+1)
	lens = append(lens, r.j.Size())
	for _, p := range r.cfg.Peers {
		lens = append(lens, r.acked[p])
	}
	sort.Slice(lens, func(i, j int) bool { return lens[i] > lens[j] })
	return lens[r.cfg.Quorum-1]
}

// WaitQuorum blocks until the journal prefix up to offset is durable on
// a quorum, or the timeout passes. This is the "stream before acking a
// rollout" gate: call it with Journal.Size() after the last append of a
// plan round, before pushing the round to any agent. Live substrate
// only — the sim harness polls QuorumBytes on virtual time instead.
func (r *Replicator) WaitQuorum(offset int64, timeout time.Duration) error {
	r.mu.Lock()
	if r.quorumBytesLocked() >= offset {
		r.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	r.waiters = append(r.waiters, repWaiter{offset: offset, ch: ch})
	r.mu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		return fmt.Errorf("controller: replication quorum %d not reached for offset %d within %v",
			r.cfg.Quorum, offset, timeout)
	}
}
