package controller

import (
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"

	"sdme/internal/mgmt"
)

// stubClock never fires timers — elections driven purely by Deliver.
type stubClock struct{}

func (stubClock) NowUS() int64                 { return 0 }
func (stubClock) AfterUS(int64, func()) func() { return func() {} }

type sentMsg struct {
	to  int
	env *mgmt.Envelope
}

// captureTransport records every peer envelope for the test to route.
type captureTransport struct {
	mu   sync.Mutex
	sent []sentMsg
}

func (t *captureTransport) Send(to int, env *mgmt.Envelope) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := &mgmt.Envelope{T: env.T, Data: append([]byte(nil), env.Data...)}
	t.sent = append(t.sent, sentMsg{to: to, env: cp})
	return nil
}

func (t *captureTransport) drain() []sentMsg {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.sent
	t.sent = nil
	return out
}

// TestLeaseUpToDateCheckComparesLastTerm: the voter must apply Raft's
// lexicographic (lastTerm, bytes) criterion, not bytes alone — a
// deposed leader's longer journal with an un-acked tail (staler
// lastTerm) must be refused, or quorum-acked records could be lost on
// takeover.
func TestLeaseUpToDateCheckComparesLastTerm(t *testing.T) {
	tr := &captureTransport{}
	e := NewElector(ElectorConfig{
		ID: 0, Peers: []int{1}, Quorum: 2,
		Clock:           stubClock{},
		Transport:       tr,
		JournalBytes:    func() int64 { return 50 },
		JournalLastTerm: func() uint64 { return 2 },
	})
	bid := func(term, lastTerm uint64, bytes int64) bool {
		t.Helper()
		data, err := json.Marshal(mgmt.LeaseRequest{
			Candidate: 1, Term: term, JournalBytes: bytes, LastTerm: lastTerm,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Deliver(&mgmt.Envelope{T: mgmt.TypeLeaseRequest, Data: data})
		for _, m := range tr.drain() {
			if m.env.T != mgmt.TypeLeaseGrant {
				continue
			}
			var g mgmt.LeaseGrant
			if err := json.Unmarshal(m.env.Data, &g); err != nil {
				t.Fatal(err)
			}
			return g.Granted
		}
		t.Fatalf("no grant reply for term %d", term)
		return false
	}
	if bid(3, 1, 100) {
		t.Fatal("granted lease to a longer journal with a staler lastTerm (the deposed-leader bug)")
	}
	if !bid(4, 2, 50) {
		t.Fatal("refused an equally up-to-date candidate")
	}
	if bid(5, 2, 49) {
		t.Fatal("granted lease to a shorter journal at equal lastTerm")
	}
	if !bid(6, 3, 0) {
		t.Fatal("refused a candidate with a newer lastTerm")
	}
}

// pump routes captured envelopes between one replicator and one standby
// until the exchange quiesces, with a hop budget so a fetch/resend
// livelock fails the test instead of hanging it.
func pump(t *testing.T, tr *captureTransport, repl *Replicator, sb *Standby, maxRounds int) {
	t.Helper()
	for i := 0; i < maxRounds; i++ {
		msgs := tr.drain()
		if len(msgs) == 0 {
			return
		}
		for _, m := range msgs {
			switch m.env.T {
			case mgmt.TypeJournalFrame:
				var f mgmt.JournalFrame
				if err := json.Unmarshal(m.env.Data, &f); err != nil {
					t.Fatal(err)
				}
				sb.HandleFrame(f)
			case mgmt.TypeJournalFetch:
				var f mgmt.JournalFetch
				if err := json.Unmarshal(m.env.Data, &f); err != nil {
					t.Fatal(err)
				}
				repl.HandleFetch(f)
			case mgmt.TypeJournalAck:
				var a mgmt.JournalAck
				if err := json.Unmarshal(m.env.Data, &a); err != nil {
					t.Fatal(err)
				}
				repl.HandleAck(a)
			}
		}
	}
	t.Fatalf("replication did not quiesce within %d rounds (fetch/resend livelock)", maxRounds)
}

// TestStandbyShorterDivergedResyncs: a standby that is SHORTER than the
// leader but diverged (it applied a dead leader's un-acked tail) used to
// fetch from its own length — generally not a frame boundary in the
// leader's journal — and livelock on undecodable chunks while silently
// staying in the quorum. The prefix CRC on every frame must instead
// trigger a full resync that converges to the leader's exact bytes.
func TestStandbyShorterDivergedResyncs(t *testing.T) {
	dir := t.TempDir()
	lj, err := OpenJournal(filepath.Join(dir, "leader.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer lj.Close() //nolint:errcheck // test teardown
	for i := uint64(1); i <= 3; i++ {
		if err := lj.LogEpoch(i, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Diverged standby: one record the leader never wrote — shorter than
	// the leader's journal but not its prefix.
	spath := filepath.Join(dir, "standby.wal")
	dj, err := OpenJournal(spath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dj.LogEpoch(999_999, 1); err != nil {
		t.Fatal(err)
	}
	if err := dj.Close(); err != nil {
		t.Fatal(err)
	}
	sj, err := OpenStandbyJournal(spath)
	if err != nil {
		t.Fatal(err)
	}
	defer sj.Close() //nolint:errcheck // test teardown
	if sj.Bytes() >= lj.Size() {
		t.Fatalf("test setup: standby (%d bytes) not shorter than leader (%d bytes)", sj.Bytes(), lj.Size())
	}

	tr := &captureTransport{}
	repl := NewReplicator(ReplicatorConfig{
		ID: 0, Peers: []int{1}, Quorum: 2, Transport: tr,
		Term: func() uint64 { return 2 },
	}, lj)
	defer repl.Detach()
	var lastTerm uint64
	sb := NewStandby(StandbyConfig{
		ID: 1, Transport: tr,
		Term:     func() uint64 { return 2 },
		LastTerm: func() uint64 { return lastTerm },
		OnVerified: func(term uint64) {
			if term > lastTerm {
				lastTerm = term
			}
		},
	}, sj)

	sb.HandleHeartbeat(mgmt.Heartbeat{
		Leader: 0, Term: 2, JournalBytes: lj.Size(), JournalCRC: lj.CRC(),
	})
	pump(t, tr, repl, sb, 50)

	if sj.Bytes() != lj.Size() || sj.CRC() != lj.CRC() {
		t.Fatalf("standby did not converge: %d bytes CRC %#x vs leader %d bytes CRC %#x",
			sj.Bytes(), sj.CRC(), lj.Size(), lj.CRC())
	}
	if got := repl.AckedBytes(1); got != lj.Size() {
		t.Fatalf("leader accounts %d acked bytes, want %d", got, lj.Size())
	}
	if lastTerm != 2 {
		t.Fatalf("standby journal fence is %d after verified resync, want 2", lastTerm)
	}
}

// TestHandleAckIgnoresOtherTermForQuorum: an ack fenced with a term
// other than the replicator's reports a length that can name different
// bytes (a refused stale frame still acks, and a diverged journal can be
// long); folding it into the quorum accounting would let WaitQuorum
// release records that are on no quorum.
func TestHandleAckIgnoresOtherTermForQuorum(t *testing.T) {
	dir := t.TempDir()
	lj, err := OpenJournal(filepath.Join(dir, "leader.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer lj.Close() //nolint:errcheck // test teardown
	if err := lj.LogEpoch(1, 2); err != nil {
		t.Fatal(err)
	}
	tr := &captureTransport{}
	r := NewReplicator(ReplicatorConfig{
		ID: 0, Peers: []int{1, 2}, Quorum: 2, Transport: tr,
		Term: func() uint64 { return 2 },
	}, lj)
	defer r.Detach()
	size := lj.Size()

	r.HandleAck(mgmt.JournalAck{Standby: 1, Term: 1, Bytes: size})
	if got := r.QuorumBytes(); got != 0 {
		t.Fatalf("stale-term ack advanced the quorum mark to %d", got)
	}
	if got := r.AckedBytes(1); got != 0 {
		t.Fatalf("stale-term ack recorded %d acked bytes", got)
	}
	r.HandleAck(mgmt.JournalAck{Standby: 1, Term: 3, Bytes: size})
	if got := r.QuorumBytes(); got != 0 {
		t.Fatalf("newer-term ack (deposed leader) advanced the quorum mark to %d", got)
	}
	r.HandleAck(mgmt.JournalAck{Standby: 1, Term: 2, Bytes: size})
	if got := r.QuorumBytes(); got != size {
		t.Fatalf("current-term ack left the quorum mark at %d, want %d", got, size)
	}
}

// TestJournalCRCAt: the prefix CRC a catch-up chunk carries must agree
// with the running CRC the journal maintains incrementally.
func TestJournalCRCAt(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(filepath.Join(dir, "j.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close() //nolint:errcheck // test teardown
	if err := j.LogEpoch(1, 1); err != nil {
		t.Fatal(err)
	}
	mid := j.Size()
	midCRC := j.CRC()
	if err := j.LogEpoch(2, 1); err != nil {
		t.Fatal(err)
	}
	if crc, err := j.CRCAt(0); err != nil || crc != 0 {
		t.Fatalf("CRCAt(0) = %#x, %v; want 0, nil", crc, err)
	}
	if crc, err := j.CRCAt(mid); err != nil || crc != midCRC {
		t.Fatalf("CRCAt(%d) = %#x, %v; want %#x, nil", mid, crc, err, midCRC)
	}
	if crc, err := j.CRCAt(j.Size()); err != nil || crc != j.CRC() {
		t.Fatalf("CRCAt(size) = %#x, %v; want %#x, nil", crc, err, j.CRC())
	}
	if _, err := j.CRCAt(j.Size() + 1); err == nil {
		t.Fatal("CRCAt past the journal end did not error")
	}
}
