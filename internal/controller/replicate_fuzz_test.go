package controller

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// mkFrame builds one on-disk journal frame around an arbitrary payload.
func mkFrame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(out[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// realFrames appends a few records through the real Journal and returns
// the file's bytes — genuine frames for the fuzz corpus.
func realFrames(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "seed.wal")
	j, err := OpenJournal(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := j.LogEpoch(1, 1); err != nil {
		tb.Fatal(err)
	}
	if err := j.LogEpoch(2, 1); err != nil {
		tb.Fatal(err)
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzJournalStream hammers the standby catch-up decoder: whatever bytes
// arrive, DecodeFrames must return a prefix of the input, re-decoding
// that prefix must be error-free and lossless, and a StandbyJournal must
// never persist a byte past the first corrupt frame.
func FuzzJournalStream(f *testing.F) {
	good := realFrames(f)
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:len(good)-3])            // torn tail
	f.Add(append([]byte{0, 0}, good...)) // garbage header
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped) // CRC mismatch in the last frame
	env := []byte(`{"t":"journal","data":{}}`)
	f.Add(append(mkFrame(env), mkFrame(env)...))
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge[:4], 1<<30)
	f.Add(huge) // insane length field

	f.Fuzz(func(t *testing.T, data []byte) {
		intact, records, err := DecodeFrames(data)
		if !bytes.HasPrefix(data, intact) {
			t.Fatalf("intact %d bytes is not a prefix of the %d-byte input", len(intact), len(data))
		}
		if err == nil && len(intact) != len(data) {
			t.Fatalf("nil error but only %d of %d bytes decoded", len(intact), len(data))
		}
		if err != nil && len(intact) == len(data) {
			t.Fatalf("whole input decoded yet error %v", err)
		}
		again, records2, err2 := DecodeFrames(intact)
		if err2 != nil || len(again) != len(intact) || records2 != records {
			t.Fatalf("re-decoding the intact prefix failed: %v (%d/%d bytes, %d/%d records)",
				err2, len(again), len(intact), records2, records)
		}

		// The standby journal must persist exactly the intact prefix —
		// never a byte past the first bad CRC — and survive a reopen.
		dir := t.TempDir()
		sj, serr := OpenStandbyJournal(filepath.Join(dir, "standby.wal"))
		if serr != nil {
			t.Fatal(serr)
		}
		n, aerr := sj.ApplyFrames(0, data)
		if n != int64(len(intact)) {
			t.Fatalf("ApplyFrames persisted %d bytes, intact prefix is %d", n, len(intact))
		}
		if err != nil && aerr == nil {
			t.Fatalf("corrupt input applied without error")
		}
		if cerr := sj.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		sj2, serr := OpenStandbyJournal(filepath.Join(dir, "standby.wal"))
		if serr != nil {
			t.Fatal(serr)
		}
		defer sj2.Close() //nolint:errcheck // read-only reopen
		if sj2.Bytes() != int64(len(intact)) {
			t.Fatalf("reopen found %d bytes, expected %d", sj2.Bytes(), len(intact))
		}
		if int(sj2.Records()) != records {
			t.Fatalf("reopen found %d records, expected %d", sj2.Records(), records)
		}
	})
}

// TestDecodeFramesOffsetGap: a batch landing anywhere but the standby's
// exact current length must be refused whole, even when perfectly valid.
func TestDecodeFramesOffsetGap(t *testing.T) {
	good := realFrames(t)
	dir := t.TempDir()
	sj, err := OpenStandbyJournal(filepath.Join(dir, "standby.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer sj.Close() //nolint:errcheck // test cleanup
	if _, err := sj.ApplyFrames(8, good); err == nil {
		t.Fatal("gap offset accepted")
	}
	if sj.Bytes() != 0 {
		t.Fatalf("gap batch persisted %d bytes", sj.Bytes())
	}
	if _, err := sj.ApplyFrames(0, good); err != nil {
		t.Fatal(err)
	}
	if sj.Bytes() != int64(len(good)) {
		t.Fatalf("valid batch persisted %d of %d bytes", sj.Bytes(), len(good))
	}
}
