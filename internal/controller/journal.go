package controller

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"sdme/internal/enforce"
	"sdme/internal/mgmt"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Write-ahead journal — the controller's crash-recovery substrate. Every
// piece of mutable planning state (failed-set changes, solved weight
// plans, pushed epochs) is appended as a durable record BEFORE the
// corresponding plan reaches the nodes, so a controller killed at any
// point can be restarted, replay the journal, and resume at the next
// epoch with exactly the plan it last pushed. Static inputs (topology,
// placement, policy table, options) are recorded once as a fingerprint +
// policy dump so replay against a different deployment fails loudly
// instead of producing a silently divergent plan.
//
// Record format (DESIGN §10): each record is
//
//	uint32 BE payload length | uint32 BE CRC-32 (IEEE) of payload | payload
//
// where the payload is an mgmt wire envelope ({"t": kind, "data": ...})
// — the same codec the management channel uses, so the journal kinds
// below live in the same namespace as wire message types. A torn tail
// (partial record from a crash mid-append) is detected by the length /
// CRC check and tolerated: replay stops at the last intact record.

// Journal record kinds.
const (
	JournalDeploy   = "jrnl-deploy"
	JournalPolicies = "jrnl-policies"
	JournalFailed   = "jrnl-failed"
	JournalEpoch    = "jrnl-epoch"
	JournalWeights  = "jrnl-weights"
)

// DeployRecord fingerprints the static planning inputs.
type DeployRecord struct {
	Fingerprint uint64 `json:"fingerprint"`
	Nodes       int    `json:"nodes"`
	Middleboxes int    `json:"middleboxes"`
	Policies    int    `json:"policies"`
}

// PoliciesRecord dumps the policy table (audit trail; the fingerprint is
// what replay checks).
type PoliciesRecord struct {
	Policies []mgmt.PolicyDTO `json:"policies"`
}

// FailedRecord is the full failed-middlebox set after a MarkFailed (full
// set, not a delta, so replay is idempotent and order-tolerant).
type FailedRecord struct {
	Failed []int `json:"failed"`
}

// EpochRecord is the highest config epoch pushed so far. Term, when
// non-zero, names the election term the epoch was pushed under: a new
// leader resumes numbering past the max term-fenced high-water mark it
// replays, so post-takeover epochs never collide with the old leader's.
type EpochRecord struct {
	Epoch uint64 `json:"epoch"`
	Term  uint64 `json:"term,omitempty"`
}

// NodeWeights is one node's weight vectors within a WeightsRecord.
type NodeWeights struct {
	Node int              `json:"node"`
	Rows []mgmt.WeightDTO `json:"rows"`
}

// WeightsRecord is a solved LB weight plan.
type WeightsRecord struct {
	Lambda float64       `json:"lambda"`
	Nodes  []NodeWeights `json:"nodes"`
}

// Journal is an append-only write-ahead log. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int64
	bytes   int64
	// size is the absolute intact journal length on disk (existing records
	// from earlier handles plus appends through this one) — the offset
	// space the replication stream (replicate.go) addresses. Atomic so
	// catch-up reads (ReadChunk) never contend with an Append blocked in
	// its replication hook waiting for those very reads to finish.
	size atomic.Int64
	// runCRC is the running CRC-32 over the whole intact journal,
	// advertised in leader heartbeats so standbys can detect a diverged
	// prefix (DESIGN §11).
	runCRC atomic.Uint32
	// onAppend, when set, streams each durable record to the replicator
	// under the append lock (offset is where the frame starts, prefixCRC
	// the running CRC-32 over the journal below it — standbys verify
	// their own journal against it before applying). A non-nil error
	// fails the Append: a record the quorum refused must not be treated
	// as logged.
	onAppend func(offset int64, prefixCRC uint32, frame []byte) error
}

// OpenJournal opens (creating if needed) a journal for appending. Any
// torn tail (a partial record from a crash mid-append) is truncated
// away so new appends extend the intact prefix rather than burying
// themselves behind garbage replay would stop at. The parent directory
// is fsynced after opening: without it a freshly created journal's
// directory entry can vanish on host crash even though the file's own
// appends were synced.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("controller: open journal: %w", err)
	}
	intact, records, crc, torn, err := scanFrames(path)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if torn {
		if err := f.Truncate(intact); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("controller: truncate torn journal tail: %w", err)
		}
	}
	if err := syncDir(path); err != nil {
		_ = f.Close()
		return nil, err
	}
	_ = records
	j := &Journal{f: f, path: path}
	j.size.Store(intact)
	j.runCRC.Store(uint32(crc))
	return j, nil
}

// scanFrames walks a journal's framing (length + CRC only, no record
// decoding) and returns the intact prefix length, the record count, the
// running CRC-32 over the intact prefix, and whether a torn/corrupt
// tail follows the prefix.
func scanFrames(path string) (intact int64, records int64, crc uint32, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("controller: scan journal: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only handle
	var hdr [8]byte
	for {
		if _, rerr := io.ReadFull(f, hdr[:]); rerr != nil {
			return intact, records, crc, rerr != io.EOF, nil
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n == 0 || n > 16<<20 {
			return intact, records, crc, true, nil
		}
		buf := make([]byte, n)
		if _, rerr := io.ReadFull(f, buf); rerr != nil {
			return intact, records, crc, true, nil
		}
		if crc32.ChecksumIEEE(buf) != sum {
			return intact, records, crc, true, nil
		}
		crc = crc32.Update(crc, crc32.IEEETable, hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, buf)
		intact += int64(8 + n)
		records++
	}
}

// syncDir fsyncs a file's parent directory so the directory entry
// itself is durable (creation and truncation both rewrite it).
func syncDir(path string) error {
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("controller: open journal dir: %w", err)
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("controller: sync journal dir: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	//vet:ignore lockedblocking -- final fsync must serialize with in-flight appends on the same mutex
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Append writes one record durably (single write + fsync before
// returning, so a record either exists whole or is a detectable torn
// tail).
func (j *Journal) Append(kind string, v interface{}) error {
	env, err := mgmt.EncodeEnvelope(kind, v)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+len(env))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(env)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(env))
	copy(buf[8:], env)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("controller: journal closed")
	}
	//vet:ignore lockedblocking -- WAL contract: record order IS the recovery order, so appends must serialize through the mutex
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("controller: journal append: %w", err)
	}
	//vet:ignore lockedblocking -- fsync must complete before the append is acknowledged, still under the append lock
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("controller: journal sync: %w", err)
	}
	offset := j.size.Load()
	prefixCRC := j.runCRC.Load()
	j.records++
	j.bytes += int64(len(buf))
	j.size.Add(int64(len(buf)))
	j.runCRC.Store(crc32.Update(prefixCRC, crc32.IEEETable, buf))
	if j.onAppend != nil {
		// Replication hook: the record is durable locally; it must now be
		// durable on a quorum before the append is acknowledged upstream.
		//vet:ignore lockedblocking -- WAL contract: quorum replication completes in record order, under the same append lock that defines that order
		if err := j.onAppend(offset, prefixCRC, buf); err != nil {
			return fmt.Errorf("controller: journal replicate: %w", err)
		}
	}
	return nil
}

// SetOnAppend installs the replication hook invoked (under the append
// lock, after the local fsync) with each record's starting offset, the
// running CRC-32 over the journal below that offset, and the raw framed
// bytes. nil detaches. The hook's error fails the Append.
func (j *Journal) SetOnAppend(fn func(offset int64, prefixCRC uint32, frame []byte) error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.onAppend = fn
}

// Stats reports records and bytes appended through this handle.
func (j *Journal) Stats() (records, bytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records, j.bytes
}

// Size returns the absolute intact journal length on disk — the offset
// space journal replication addresses.
func (j *Journal) Size() int64 { return j.size.Load() }

// CRC returns the running CRC-32 over the whole intact journal.
func (j *Journal) CRC() uint32 { return j.runCRC.Load() }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// ReadChunk reads up to max raw bytes of intact journal starting at
// offset — the leader side of standby catch-up. The returned slice ends
// on a record boundary by construction (offsets only ever come from
// Size / JournalAck values, which are sums of whole frames).
func (j *Journal) ReadChunk(offset int64, max int) ([]byte, error) {
	size, path := j.size.Load(), j.path
	if path == "" {
		return nil, errors.New("controller: journal has no path")
	}
	if offset < 0 || offset > size {
		return nil, fmt.Errorf("controller: journal read offset %d out of range [0,%d]", offset, size)
	}
	n := size - offset
	if n > int64(max) {
		n = int64(max)
	}
	if n == 0 {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("controller: journal read: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only handle
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return nil, fmt.Errorf("controller: journal read at %d: %w", offset, err)
	}
	return buf, nil
}

// CRCAt returns the running CRC-32 over the journal's first offset
// bytes — the prefix mark a catch-up chunk from that offset carries so
// the standby can prove its journal is this journal's prefix before
// applying. Offsets only ever come from Size / JournalAck / JournalFetch
// values, so the prefix ends on a record boundary.
func (j *Journal) CRCAt(offset int64) (uint32, error) {
	if offset == 0 {
		return 0, nil
	}
	size, path := j.size.Load(), j.path
	if offset < 0 || offset > size {
		return 0, fmt.Errorf("controller: journal CRC offset %d out of range [0,%d]", offset, size)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("controller: journal CRC read: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only handle
	var crc uint32
	buf := make([]byte, 64<<10)
	for read := int64(0); read < offset; {
		n := int64(len(buf))
		if offset-read < n {
			n = offset - read
		}
		if _, err := io.ReadFull(f, buf[:n]); err != nil {
			return 0, fmt.Errorf("controller: journal CRC read at %d: %w", read, err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
		read += n
	}
	return crc, nil
}

// LogEpoch records the epoch high-water after a successful push, fenced
// by the pushing leader's term (0 in single-controller deployments);
// callers invoke it with mgmt.Server.Epoch() once a plan round lands.
func (j *Journal) LogEpoch(epoch, term uint64) error {
	return j.Append(JournalEpoch, EpochRecord{Epoch: epoch, Term: term})
}

// JournalState is the result of replaying a journal: the last intact
// value of every journaled quantity.
type JournalState struct {
	Fingerprint uint64
	Policies    []mgmt.PolicyDTO
	Failed      []topo.NodeID
	Epoch       uint64
	// Term is the highest election term any replayed epoch record was
	// fenced with (0 = single-controller history). A takeover resumes
	// epoch numbering past Epoch and term numbering past Term.
	Term    uint64
	Lambda  float64
	Weights map[topo.NodeID]map[enforce.WeightKey][]float64
	// Records counts intact records replayed; Bytes is the intact prefix
	// length in bytes (the replication offset a standby resumes from);
	// Torn reports whether a partial tail record was discarded (a crash
	// mid-append).
	Records int
	Bytes   int64
	Torn    bool
}

// ReplayJournal reads a journal back, stopping cleanly at a torn tail.
func ReplayJournal(path string) (*JournalState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("controller: open journal: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only handle
	st := &JournalState{}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return st, nil
			}
			st.Torn = true // partial header
			return st, nil
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n == 0 || n > 16<<20 {
			st.Torn = true
			return st, nil
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(f, buf); err != nil {
			st.Torn = true // partial payload
			return st, nil
		}
		if crc32.ChecksumIEEE(buf) != sum {
			st.Torn = true // corrupt record: stop replay here
			return st, nil
		}
		env, err := mgmt.DecodeEnvelope(buf)
		if err != nil {
			st.Torn = true
			return st, nil
		}
		if err := st.apply(env); err != nil {
			return nil, err
		}
		st.Records++
		st.Bytes += int64(8 + n)
	}
}

// apply folds one intact record into the state (last record wins).
func (st *JournalState) apply(env *mgmt.Envelope) error {
	switch env.T {
	case JournalDeploy:
		var r DeployRecord
		if err := json.Unmarshal(env.Data, &r); err != nil {
			return fmt.Errorf("controller: journal deploy record: %w", err)
		}
		st.Fingerprint = r.Fingerprint
	case JournalPolicies:
		var r PoliciesRecord
		if err := json.Unmarshal(env.Data, &r); err != nil {
			return fmt.Errorf("controller: journal policies record: %w", err)
		}
		st.Policies = r.Policies
	case JournalFailed:
		var r FailedRecord
		if err := json.Unmarshal(env.Data, &r); err != nil {
			return fmt.Errorf("controller: journal failed record: %w", err)
		}
		st.Failed = st.Failed[:0]
		for _, id := range r.Failed {
			st.Failed = append(st.Failed, topo.NodeID(id))
		}
	case JournalEpoch:
		var r EpochRecord
		if err := json.Unmarshal(env.Data, &r); err != nil {
			return fmt.Errorf("controller: journal epoch record: %w", err)
		}
		if r.Epoch > st.Epoch {
			st.Epoch = r.Epoch
		}
		if r.Term > st.Term {
			st.Term = r.Term
		}
	case JournalWeights:
		var r WeightsRecord
		if err := json.Unmarshal(env.Data, &r); err != nil {
			return fmt.Errorf("controller: journal weights record: %w", err)
		}
		st.Lambda = r.Lambda
		st.Weights = make(map[topo.NodeID]map[enforce.WeightKey][]float64, len(r.Nodes))
		for _, nw := range r.Nodes {
			st.Weights[topo.NodeID(nw.Node)] = mgmt.WeightsFromDTO(nw.Rows)
		}
	default:
		return fmt.Errorf("controller: unknown journal record kind %q", env.T)
	}
	return nil
}

// Fingerprint hashes the controller's static planning inputs: topology
// size, middlebox placement, policy table, and the options that shape the
// plan. Two controllers with equal fingerprints compute identical
// candidate sets from identical failed-sets, which is what makes journal
// replay sufficient for byte-identical plan recovery.
func (c *Controller) Fingerprint() uint64 {
	h := fnv.New64a()
	put := func(format string, args ...interface{}) {
		fmt.Fprintf(h, format, args...) //nolint:errcheck // fnv never errors
	}
	put("g:%d/%d/%d;", c.dep.Graph.NumNodes(), c.dep.Graph.NumLinks(), c.dep.NumSubnets())
	for _, mb := range c.dep.MBNodes {
		put("mb:%d=", int(mb))
		for _, f := range c.dep.FuncsOf(mb) {
			put("%d,", int(f))
		}
	}
	for _, p := range c.policies.All() {
		put("p:%d/%d/%s/%s;", p.ID, p.Prio, p.Desc.String(), p.Actions.String())
	}
	put("o:%d/%d/%v/%v/%d/%d/%v/%d;", int(c.opts.Strategy), c.opts.KDefault,
		c.opts.CapLambda, c.opts.LabelSwitching, c.opts.FlowTTL, c.opts.LabelTTL,
		c.opts.UseTrie, c.opts.HashSeed)
	funcs := make([]int, 0, len(c.opts.K))
	for f := range c.opts.K {
		funcs = append(funcs, int(f))
	}
	sort.Ints(funcs)
	for _, f := range funcs {
		put("k:%d=%d;", f, c.opts.K[policy.FuncType(f)])
	}
	return h.Sum64()
}

// SetJournal attaches a write-ahead journal: the static inputs are
// recorded immediately, and every subsequent MarkFailed / LB solve
// appends its record before the result can reach any node. nil detaches.
func (c *Controller) SetJournal(j *Journal) error {
	c.journal = j
	if j == nil {
		return nil
	}
	if err := j.Append(JournalDeploy, DeployRecord{
		Fingerprint: c.Fingerprint(),
		Nodes:       c.dep.Graph.NumNodes(),
		Middleboxes: len(c.dep.MBNodes),
		Policies:    c.policies.Len(),
	}); err != nil {
		return err
	}
	return j.Append(JournalPolicies, PoliciesRecord{Policies: policiesToDTO(c)})
}

// Journal returns the attached journal (nil if none).
func (c *Controller) Journal() *Journal { return c.journal }

// journalFailed appends the current failed set (no-op without a journal).
func (c *Controller) journalFailed() error {
	if c.journal == nil {
		return nil
	}
	r := FailedRecord{}
	for _, id := range c.Failed() {
		r.Failed = append(r.Failed, int(id))
	}
	return c.journal.Append(JournalFailed, r)
}

// journalWeights appends a solved weight plan (no-op without a journal).
func (c *Controller) journalWeights(sol *LBSolution) error {
	if c.journal == nil {
		return nil
	}
	r := WeightsRecord{Lambda: sol.Lambda}
	ids := make([]topo.NodeID, 0, len(sol.Weights))
	for id := range sol.Weights {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r.Nodes = append(r.Nodes, NodeWeights{
			Node: int(id),
			Rows: mgmt.WeightsToDTO(0, sol.Weights[id]).Weights,
		})
	}
	return c.journal.Append(JournalWeights, r)
}

// RestoreFromJournal folds a replayed journal state back into the
// controller: the failed set is restored and cached assignments are
// invalidated so the next ComputeCandidates/BuildNodes reproduces the
// pre-crash plan. It refuses a journal whose deployment fingerprint does
// not match this controller's inputs.
func (c *Controller) RestoreFromJournal(st *JournalState) error {
	if st.Fingerprint != c.Fingerprint() {
		return fmt.Errorf("controller: journal fingerprint %#x does not match deployment %#x",
			st.Fingerprint, c.Fingerprint())
	}
	c.failed = make(map[topo.NodeID]bool, len(st.Failed))
	for _, id := range st.Failed {
		c.failed[id] = true
	}
	c.candidates = nil
	return nil
}

// RestoredSolution rebuilds an LBSolution from replayed journal state
// (nil if the journal recorded no weight plan), so the restart path can
// reuse ApplyWeights and the weights-only push exactly like a live solve.
func (st *JournalState) RestoredSolution() *LBSolution {
	if st.Weights == nil {
		return nil
	}
	return &LBSolution{Lambda: st.Lambda, Weights: st.Weights}
}

// policiesToDTO dumps the controller's full policy table in wire form.
func policiesToDTO(c *Controller) []mgmt.PolicyDTO {
	cfg := enforce.Config{Policies: c.policies.All()}
	return mgmt.ConfigToDTO(0, cfg).Policies
}
