package controller

import (
	"encoding/json"
	"io"
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/topo"
)

// Configuration export: the controller can serialize exactly what it
// pushed to every node — relevant policies, candidate sets, strategy and
// LB weights — as JSON for audit tooling, change review and debugging.
// This is the operational surface a deployed controller would expose.

// ExportedPolicy is one policy row in an export.
type ExportedPolicy struct {
	ID         int    `json:"id"`
	Descriptor string `json:"descriptor"`
	Actions    string `json:"actions"`
}

// ExportedWeight is one LB weight vector in an export.
type ExportedWeight struct {
	PolicyID  int       `json:"policy_id"`
	Func      string    `json:"func"`
	SrcSubnet int       `json:"src_subnet,omitempty"`
	DstSubnet int       `json:"dst_subnet,omitempty"`
	Weights   []float64 `json:"weights"`
}

// ExportedNode is one node's full configuration.
type ExportedNode struct {
	Name       string              `json:"name"`
	ID         int                 `json:"id"`
	Kind       string              `json:"kind"`
	Addr       string              `json:"addr"`
	Subnet     int                 `json:"subnet,omitempty"`
	Strategy   string              `json:"strategy"`
	Policies   []ExportedPolicy    `json:"policies"`
	Candidates map[string][]string `json:"candidates"`
	Weights    []ExportedWeight    `json:"weights,omitempty"`
}

// Export captures a whole deployment's configuration.
type Export struct {
	Topology struct {
		Nodes       int `json:"nodes"`
		Links       int `json:"links"`
		Subnets     int `json:"subnets"`
		Middleboxes int `json:"middleboxes"`
	} `json:"topology"`
	FailedMiddleboxes []string       `json:"failed_middleboxes,omitempty"`
	Nodes             []ExportedNode `json:"nodes"`
}

// ExportConfig snapshots the configuration of every node. Nodes must not
// be concurrently active (take the snapshot from their owner, or before
// starting traffic).
func (c *Controller) ExportConfig(nodes map[topo.NodeID]*enforce.Node) *Export {
	out := &Export{}
	out.Topology.Nodes = c.dep.Graph.NumNodes()
	out.Topology.Links = c.dep.Graph.NumLinks()
	out.Topology.Subnets = c.dep.NumSubnets()
	out.Topology.Middleboxes = len(c.dep.MBNodes)
	for _, id := range c.Failed() {
		out.FailedMiddleboxes = append(out.FailedMiddleboxes, c.dep.Graph.Node(id).Name)
	}

	ids := make([]topo.NodeID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := nodes[id]
		gn := c.dep.Graph.Node(id)
		cfg := n.Config()
		en := ExportedNode{
			Name:     gn.Name,
			ID:       int(id),
			Kind:     gn.Kind.String(),
			Addr:     gn.Addr.String(),
			Subnet:   n.SubnetIdx,
			Strategy: cfg.Strategy.String(),
		}
		for _, p := range cfg.Policies {
			en.Policies = append(en.Policies, ExportedPolicy{
				ID: p.ID, Descriptor: p.Desc.String(), Actions: p.Actions.String(),
			})
		}
		en.Candidates = make(map[string][]string, len(cfg.Candidates))
		for f, cands := range cfg.Candidates {
			names := make([]string, len(cands))
			for i, mb := range cands {
				names[i] = c.dep.Graph.Node(mb).Name
			}
			en.Candidates[f.String()] = names
		}
		var wkeys []enforce.WeightKey
		for k := range cfg.Weights {
			wkeys = append(wkeys, k)
		}
		sort.Slice(wkeys, func(i, j int) bool {
			a, b := wkeys[i], wkeys[j]
			if a.PolicyID != b.PolicyID {
				return a.PolicyID < b.PolicyID
			}
			if a.Func != b.Func {
				return a.Func < b.Func
			}
			if a.SrcSubnet != b.SrcSubnet {
				return a.SrcSubnet < b.SrcSubnet
			}
			return a.DstSubnet < b.DstSubnet
		})
		for _, k := range wkeys {
			en.Weights = append(en.Weights, ExportedWeight{
				PolicyID: k.PolicyID, Func: k.Func.String(),
				SrcSubnet: k.SrcSubnet, DstSubnet: k.DstSubnet,
				Weights: cfg.Weights[k],
			})
		}
		out.Nodes = append(out.Nodes, en)
	}
	return out
}

// WriteJSON writes the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
