package controller_test

import (
	"math"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/experiments"
)

// TestLBSolutionProperties checks the invariants every LB solution must
// satisfy, over randomized topologies and workloads:
//
//  1. each installed weight vector is parallel to the node's candidate
//     list M_x^e — it can only name legal candidates;
//  2. weights are non-negative and finite (the solver emits relative
//     flow amounts; the dataplane normalizes by the vector total);
//  3. each vector with routed demand normalizes to a probability
//     distribution — fractions in [0, 1] summing to 1;
//  4. the LP's min-max load never exceeds hot-potato's realized maximum
//     load on the same measurement matrix — HP's all-to-nearest
//     assignment is one feasible point of the program, so the optimum
//     must be at least as good.
func TestLBSolutionProperties(t *testing.T) {
	const eps = 1e-6
	cases := []struct {
		topology string
		seed     int64
		// The fine-grained Eq.(1) program is one conservation system per
		// (src, dst, policy) triple — orders of magnitude more variables —
		// so it runs on a subset of the cases.
		fine bool
	}{
		{"campus", 1, true},
		{"campus", 9, true},
		{"campus", 23, false},
		{"waxman", 4, false},
		{"waxman", 17, false},
	}
	type solver struct {
		name  string
		solve func(*controller.Controller, controller.Measurements) (*controller.LBSolution, error)
	}
	for _, tc := range cases {
		solvers := []solver{{"aggregated", (*controller.Controller).SolveLB}}
		if tc.fine {
			solvers = append(solvers, solver{"fine", (*controller.Controller).SolveLBFine})
		}
		bed, err := experiments.NewBed(experiments.Config{Topology: tc.topology, Seed: tc.seed, PoliciesPerClass: 2})
		if err != nil {
			t.Fatal(err)
		}
		demands := bed.GenerateDemands(10000)
		meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)

		// Hot-potato's realized maximum load bounds the LP optimum.
		hpCtl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
			Strategy: enforce.HotPotato, K: bed.Cfg.K,
		})
		hpNodes, err := hpCtl.BuildNodes()
		if err != nil {
			t.Fatal(err)
		}
		hpReport, err := enforce.EvaluateFlows(hpNodes, bed.Dep, bed.AllPairs, demands)
		if err != nil {
			t.Fatal(err)
		}
		var hpMax int64
		for _, l := range hpReport.Loads {
			if l > hpMax {
				hpMax = l
			}
		}

		for _, sv := range solvers {
			ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
				Strategy: enforce.LoadBalanced, K: bed.Cfg.K,
			})
			sol, err := sv.solve(ctl, meas)
			if err != nil {
				t.Fatalf("%s/%d/%s: %v", tc.topology, tc.seed, sv.name, err)
			}
			vectors := 0
			for x, byKey := range sol.Weights {
				cands := ctl.CandidatesOf(x)
				for k, w := range byKey {
					vectors++
					list := cands[k.Func]
					if len(list) == 0 {
						t.Errorf("%s/%d/%s: node %v has weights for %v but no candidates",
							tc.topology, tc.seed, sv.name, x, k.Func)
						continue
					}
					if len(w) != len(list) {
						t.Errorf("%s/%d/%s: node %v key %+v: %d weights for %d candidates",
							tc.topology, tc.seed, sv.name, x, k, len(w), len(list))
						continue
					}
					sum := 0.0
					for i, wi := range w {
						if wi < -eps || math.IsNaN(wi) || math.IsInf(wi, 0) {
							t.Errorf("%s/%d/%s: node %v key %+v: bad weight %g on %v",
								tc.topology, tc.seed, sv.name, x, k, wi, list[i])
						}
						sum += wi
					}
					if sum <= eps {
						// No demand routed through this key; pickWeighted
						// falls back to uniform hashing over candidates.
						continue
					}
					fsum := 0.0
					for _, wi := range w {
						frac := wi / sum
						if frac < -eps || frac > 1+eps {
							t.Errorf("%s/%d/%s: node %v key %+v: split fraction %g outside [0,1]",
								tc.topology, tc.seed, sv.name, x, k, frac)
						}
						fsum += frac
					}
					if math.Abs(fsum-1) > eps {
						t.Errorf("%s/%d/%s: node %v key %+v: split fractions sum to %g, want 1",
							tc.topology, tc.seed, sv.name, x, k, fsum)
					}
				}
			}
			if vectors == 0 {
				t.Fatalf("%s/%d/%s: solution installs no weight vectors", tc.topology, tc.seed, sv.name)
			}
			// Load comparisons get a relative slack: the simplex solution
			// carries O(λ·1e-7) rounding on instances this size.
			slack := eps + sol.Lambda*1e-6
			if sol.Lambda > float64(hpMax)+slack {
				t.Errorf("%s/%d/%s: λ=%g exceeds hot-potato max load %d",
					tc.topology, tc.seed, sv.name, sol.Lambda, hpMax)
			}
			// The LP's own expected loads must be consistent with λ.
			for id, l := range sol.ExpectedLoads {
				if l > sol.Lambda+slack {
					t.Errorf("%s/%d/%s: expected load of %v is %g > λ=%g",
						tc.topology, tc.seed, sv.name, id, l, sol.Lambda)
				}
			}
		}
	}
}
