// Pooled packet and wire-buffer lifecycles for the live hot path. The
// receive→classify→tunnel→send path reuses one Packet and one wire buffer
// per datagram, so in steady state the dataplane performs no heap
// allocation per packet.
//
// Lifecycle rules (DESIGN §12): a pooled Packet is owned by exactly one
// worker from Get to Put; nothing reached through a Forwarder may retain
// the pointer past the call — forwarders marshal synchronously. Code that
// needs a packet to outlive the handler (the simulator's event queue,
// fragment reassembly tests) must Clone it or build its own with New.
package packet

import "sync/atomic"

// poolCounters tracks Get outcomes: a hit reused a pooled object, a miss
// allocated a fresh one. The live runtime mirrors these into its metrics
// registry (pool effectiveness is a first-class dataplane signal: a
// sustained miss rate means the path is not allocation-free).
type poolCounters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

var (
	pktPool struct {
		free chan *Packet
		poolCounters
	}
	bufPool struct {
		free chan []byte
		poolCounters
	}
)

// WireBufferSize is the capacity of pooled wire buffers: one UDP datagram
// on the loopback fabric never exceeds 64 KiB.
const WireBufferSize = 64 * 1024

func init() {
	// Fixed-capacity free lists instead of sync.Pool: the dataplane wants
	// deterministic reuse (sync.Pool drops its content on GC, turning
	// steady state back into an allocation storm after every cycle) and
	// the channel doubles as the bound on retained memory.
	pktPool.free = make(chan *Packet, 4096)
	bufPool.free = make(chan []byte, 1024)
}

// Get returns a reset Packet from the pool, allocating if the pool is
// empty.
func Get() *Packet {
	select {
	case p := <-pktPool.free:
		pktPool.hits.Add(1)
		return p
	default:
		pktPool.misses.Add(1)
		return &Packet{}
	}
}

// Put resets p and returns it to the pool. p must not be used after Put.
// Putting nil is a no-op; if the pool is full the packet is dropped for
// the GC.
func Put(p *Packet) {
	if p == nil {
		return
	}
	p.Reset()
	select {
	case pktPool.free <- p:
	default:
	}
}

// GetBuffer returns a zero-length wire buffer with at least WireBufferSize
// capacity.
func GetBuffer() []byte {
	select {
	case b := <-bufPool.free:
		bufPool.hits.Add(1)
		return b[:0]
	default:
		bufPool.misses.Add(1)
		return make([]byte, 0, WireBufferSize)
	}
}

// PutBuffer returns a wire buffer to the pool. Undersized buffers (from a
// caller that grew past capacity elsewhere) are dropped.
func PutBuffer(b []byte) {
	if cap(b) < WireBufferSize {
		return
	}
	select {
	case bufPool.free <- b[:0]:
	default:
	}
}

// PoolStats reports cumulative pool activity across both pools:
// hits (Get served from the pool) and misses (Get allocated).
func PoolStats() (hits, misses int64) {
	return pktPool.hits.Load() + bufPool.hits.Load(),
		pktPool.misses.Load() + bufPool.misses.Load()
}
