package packet

import (
	"testing"

	"sdme/internal/netaddr"
)

// FuzzUnmarshal hardens the wire parser the live runtime exposes to the
// network: arbitrary bytes must never panic, and anything that parses
// must re-marshal to an equivalent packet.
func FuzzUnmarshal(f *testing.F) {
	p := New(netaddr.FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6}, 5)
	p.Payload = []byte("hello")
	f.Add(p.Marshal())
	if err := p.Encapsulate(9, 10); err != nil {
		f.Fatal(err)
	}
	f.Add(p.Marshal())
	f.Add([]byte{})
	f.Add([]byte{wireFlagOuter})
	f.Add(make([]byte, 1+HeaderLen+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data)
		if err != nil {
			return
		}
		back, err := Unmarshal(pkt.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal of marshaled packet failed: %v", err)
		}
		if back.Inner != pkt.Inner {
			t.Fatalf("inner header changed across round trip: %+v vs %+v", back.Inner, pkt.Inner)
		}
		if (back.Outer == nil) != (pkt.Outer == nil) {
			t.Fatal("outer header presence changed across round trip")
		}
		if back.Outer != nil && *back.Outer != *pkt.Outer {
			t.Fatalf("outer header changed across round trip")
		}
		if back.PayloadLen != pkt.PayloadLen {
			t.Fatalf("payload length changed: %d vs %d", back.PayloadLen, pkt.PayloadLen)
		}
	})
}

// FuzzFragmentReassemble checks that any fragmentable packet's fragments
// cover exactly the original bytes and reassemble.
func FuzzFragmentReassemble(f *testing.F) {
	f.Add(uint16(3000), uint16(576), false)
	f.Add(uint16(8000), uint16(1500), true)
	f.Add(uint16(100), uint16(68), false)
	f.Fuzz(func(t *testing.T, payload, mtu uint16, encap bool) {
		if mtu < HeaderLen+8 {
			return
		}
		p := New(netaddr.FiveTuple{Src: 1, Dst: 2, Proto: 6}, int(payload))
		if encap {
			if err := p.Encapsulate(3, 4); err != nil {
				t.Fatal(err)
			}
		}
		id := uint16(0)
		frags, err := p.Fragment(int(mtu), func() uint16 { id++; return id })
		if err != nil {
			return // DF or tiny MTU: refusal is the contract
		}
		if len(frags) == 1 {
			return
		}
		total := 0
		r := NewReassembler()
		done := false
		for _, fr := range frags {
			if fr.Size() > int(mtu) {
				t.Fatalf("fragment size %d exceeds MTU %d", fr.Size(), mtu)
			}
			total += fr.PayloadLen
			done = r.Offer(fr)
		}
		inner := int(payload)
		if encap {
			inner += HeaderLen
		}
		if total != inner {
			t.Fatalf("fragments carry %d bytes, want %d", total, inner)
		}
		if !done {
			t.Fatal("reassembly did not complete after all fragments")
		}
	})
}
