package packet

import (
	"testing"

	"sdme/internal/netaddr"
)

func TestPoolLifecycle(t *testing.T) {
	p := Get()
	if p == nil {
		t.Fatal("Get returned nil")
	}
	ft := netaddr.FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: netaddr.ProtoTCP}
	p.Inner = Header{Src: ft.Src, Dst: ft.Dst, SrcPort: ft.SrcPort, DstPort: ft.DstPort, Proto: ft.Proto, TTL: 64}
	p.PayloadLen = 9
	p.Payload = append(p.Payload, []byte("forwarded")...)
	if err := p.Encapsulate(7, 8); err != nil {
		t.Fatal(err)
	}

	Put(p)
	q := Get()
	// The pool is a LIFO free list, so the same object comes back — and it
	// must come back reset.
	if q != p {
		t.Fatalf("expected pooled packet back, got a different object")
	}
	if q.Outer != nil || q.Inner != (Header{}) || q.PayloadLen != 0 || len(q.Payload) != 0 {
		t.Fatalf("pooled packet not reset: %+v", q)
	}
	Put(q)
}

func TestPoolStatsCount(t *testing.T) {
	h0, m0 := PoolStats()
	p := Get()
	Put(p)
	Get()
	h1, m1 := PoolStats()
	if h1+m1 <= h0+m0 {
		t.Fatalf("pool stats did not advance: before (%d,%d) after (%d,%d)", h0, m0, h1, m1)
	}
}

func TestPutNilPacket(t *testing.T) {
	Put(nil) // must not panic
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer()
	if len(b) != 0 || cap(b) < WireBufferSize {
		t.Fatalf("GetBuffer: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBuffer(b)
	c := GetBuffer()
	if len(c) != 0 {
		t.Fatalf("reused buffer not zero-length: len=%d", len(c))
	}
	PutBuffer(c)
	PutBuffer(make([]byte, 0, 16)) // undersized: dropped, must not panic
}

// TestSteadyStateRoundTripAllocFree proves the pooled
// unmarshal→encapsulate→marshal cycle — the live hot path — performs no
// heap allocation once the pool is warm.
func TestSteadyStateRoundTripAllocFree(t *testing.T) {
	ft := netaddr.FiveTuple{Src: 10, Dst: 20, SrcPort: 1000, DstPort: 80, Proto: netaddr.ProtoUDP}
	seed := &Packet{Inner: Header{Src: ft.Src, Dst: ft.Dst, SrcPort: ft.SrcPort, DstPort: ft.DstPort, Proto: ft.Proto, TTL: 64}, PayloadLen: 4, Payload: []byte("data")}
	wire := seed.Marshal()

	// Warm the pools.
	Put(Get())
	PutBuffer(GetBuffer())

	avg := testing.AllocsPerRun(200, func() {
		p := Get()
		if err := UnmarshalInto(p, wire); err != nil {
			t.Fatal(err)
		}
		if err := p.Encapsulate(1, 2); err != nil {
			t.Fatal(err)
		}
		out := GetBuffer()
		out = p.AppendMarshal(out)
		if len(out) == 0 {
			t.Fatal("empty marshal")
		}
		PutBuffer(out)
		Put(p)
	})
	if avg != 0 {
		t.Fatalf("steady-state round trip allocates %.1f allocs/op, want 0", avg)
	}
}
