// Package packet models the packets that flow through the enforcement
// system: an IPv4-like header, IP-over-IP encapsulation for tunneling to
// middleboxes (§III-B of the paper), label embedding in the unused ToS and
// fragment-offset header fields (§III-E), and MTU-driven fragmentation —
// the overhead the label-switching enhancement exists to avoid.
//
// The same types serve the discrete-event simulator (which mostly cares
// about sizes and headers) and the live UDP runtime (which marshals them
// onto real sockets).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sdme/internal/netaddr"
)

// HeaderLen is the size of one IP header in bytes (no options).
const HeaderLen = 20

// ProtoIPIP is the protocol number of an encapsulated IP packet (RFC 2003).
const ProtoIPIP uint8 = 4

// Fragment-field flag bits, laid out as in IPv4: 3 flag bits then a
// 13-bit offset in 8-byte units.
const (
	flagDF        = 0x4000
	flagMF        = 0x2000
	fragOffMask   = 0x1fff
	fragUnit      = 8
	maxFragOffset = fragOffMask * fragUnit
)

// Header is an IPv4-like packet header with the transport ports folded in
// (the enforcement dataplane classifies on the 5-tuple, so keeping ports
// adjacent to addresses avoids a separate L4 struct everywhere).
type Header struct {
	Src, Dst         netaddr.Addr
	Proto            uint8
	SrcPort, DstPort uint16
	TOS              uint8
	TTL              uint8
	ID               uint16
	frag             uint16 // flags | 13-bit offset in 8-byte units
}

// DefaultTTL is the initial time-to-live of generated packets.
const DefaultTTL = 64

// FragOffset returns the fragment offset in bytes.
func (h *Header) FragOffset() int { return int(h.frag&fragOffMask) * fragUnit }

// MoreFragments reports the MF flag.
func (h *Header) MoreFragments() bool { return h.frag&flagMF != 0 }

// DontFragment reports the DF flag.
func (h *Header) DontFragment() bool { return h.frag&flagDF != 0 }

// SetDontFragment sets or clears the DF flag.
func (h *Header) SetDontFragment(v bool) {
	if v {
		h.frag |= flagDF
	} else {
		h.frag &^= flagDF
	}
}

// IsFragment reports whether this header belongs to any fragment of a
// fragmented packet (offset > 0 or MF set).
func (h *Header) IsFragment() bool {
	return h.frag&(flagMF|fragOffMask) != 0
}

func (h *Header) setFrag(offsetBytes int, more bool) error {
	if offsetBytes%fragUnit != 0 {
		return fmt.Errorf("packet: fragment offset %d not a multiple of %d", offsetBytes, fragUnit)
	}
	if offsetBytes < 0 || offsetBytes > maxFragOffset {
		return fmt.Errorf("packet: fragment offset %d out of range", offsetBytes)
	}
	h.frag = h.frag & flagDF // preserve DF only
	h.frag |= uint16(offsetBytes / fragUnit)
	if more {
		h.frag |= flagMF
	}
	return nil
}

// FiveTuple extracts the flow identifier from the header.
func (h *Header) FiveTuple() netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: h.Src, Dst: h.Dst,
		SrcPort: h.SrcPort, DstPort: h.DstPort,
		Proto: h.Proto,
	}
}

// Packet is one packet in flight. When Outer is non-nil the packet is
// IP-over-IP encapsulated: Outer addresses steer it between middleboxes
// while Inner carries the original flow.
type Packet struct {
	Outer *Header
	Inner Header
	// PayloadLen is the L4 payload size in bytes; the simulator accounts
	// sizes with it. Payload optionally carries real bytes (live mode and
	// reassembly tests); when non-nil its length must equal PayloadLen.
	PayloadLen int
	Payload    []byte
	// outerBuf is the inline backing store for Outer: Encapsulate and
	// UnmarshalInto point Outer at it instead of heap-allocating a Header
	// per tunnel hop, which keeps the steady-state dataplane path
	// allocation-free. Because Outer may alias this field, Packet must not
	// be copied by value — use Clone.
	outerBuf Header
}

// New builds an unencapsulated packet for a flow with the given payload
// size.
func New(ft netaddr.FiveTuple, payloadLen int) *Packet {
	return &Packet{
		Inner: Header{
			Src: ft.Src, Dst: ft.Dst,
			SrcPort: ft.SrcPort, DstPort: ft.DstPort,
			Proto: ft.Proto, TTL: DefaultTTL,
		},
		PayloadLen: payloadLen,
	}
}

// Size returns the total on-wire size in bytes: payload plus one header,
// plus a second header when encapsulated.
func (p *Packet) Size() int {
	n := HeaderLen + p.PayloadLen
	if p.Outer != nil {
		n += HeaderLen
	}
	return n
}

// IsEncapsulated reports whether an outer tunnel header is present.
func (p *Packet) IsEncapsulated() bool { return p.Outer != nil }

// OutermostDst returns the address routers actually forward on: the outer
// destination when tunneled, the inner one otherwise.
func (p *Packet) OutermostDst() netaddr.Addr {
	if p.Outer != nil {
		return p.Outer.Dst
	}
	return p.Inner.Dst
}

// OutermostHeader returns the header routers act on.
func (p *Packet) OutermostHeader() *Header {
	if p.Outer != nil {
		return p.Outer
	}
	return &p.Inner
}

// FiveTuple returns the inner (original flow) 5-tuple.
func (p *Packet) FiveTuple() netaddr.FiveTuple { return p.Inner.FiveTuple() }

// Clone deep-copies the packet.
func (p *Packet) Clone() *Packet {
	out := &Packet{Inner: p.Inner, PayloadLen: p.PayloadLen}
	if p.Outer != nil {
		out.outerBuf = *p.Outer
		out.Outer = &out.outerBuf
	}
	if p.Payload != nil {
		out.Payload = append([]byte(nil), p.Payload...)
	}
	return out
}

// ErrAlreadyEncapsulated is returned when tunneling an already tunneled
// packet; the paper's design never stacks tunnels (each middlebox
// decapsulates before re-tunneling).
var ErrAlreadyEncapsulated = errors.New("packet: already encapsulated")

// ErrNotEncapsulated is returned when decapsulating a plain packet.
var ErrNotEncapsulated = errors.New("packet: not encapsulated")

// Encapsulate adds an IP-over-IP outer header addressed src -> dst. Per
// §III-E the proxy's address is kept as the outer source along the whole
// chain so the tail middlebox knows where to send the control packet.
func (p *Packet) Encapsulate(src, dst netaddr.Addr) error {
	if p.Outer != nil {
		return ErrAlreadyEncapsulated
	}
	p.outerBuf = Header{Src: src, Dst: dst, Proto: ProtoIPIP, TTL: DefaultTTL}
	p.Outer = &p.outerBuf
	return nil
}

// Decapsulate strips the outer header, returning it.
func (p *Packet) Decapsulate() (Header, error) {
	if p.Outer == nil {
		return Header{}, ErrNotEncapsulated
	}
	h := *p.Outer
	p.Outer = nil
	return h, nil
}

// Labels are carried in otherwise-unused inner header fields: the high
// byte in TOS and the low byte in the low bits of the fragment-offset
// field (§III-E). Label 0 means "no label", so usable labels are 1..65535
// — but keeping the fragment field legal restricts the low byte to the
// 13-bit offset area; we use 8 of those bits.

// MaxLabel is the largest embeddable label.
const MaxLabel = 0xffff

// EmbedLabel writes a label into the inner header, overwriting any
// previous label. Because the fields are overloaded (that is the paper's
// point — no extra bytes on the wire), callers must only label packets
// they know are unfragmented; EmbedLabel refuses mid-stream fragments (MF
// set) as a safety net. The enforcement dataplane checks IsFragment
// before labeling the first packet of a flow, per §III-E.
func (p *Packet) EmbedLabel(label uint16) error {
	if label == 0 {
		return errors.New("packet: label 0 is reserved")
	}
	if p.Inner.MoreFragments() {
		return errors.New("packet: cannot embed label in a fragment")
	}
	p.Inner.TOS = uint8(label >> 8)
	p.Inner.frag = (p.Inner.frag & flagDF) | uint16(label&0xff)
	return nil
}

// Label reads the embedded label, 0 if none. The value is only meaningful
// on packets the dataplane addressed to a middlebox without an outer
// header — on any other packet these bits may be genuine ToS/fragment
// data. That context-dependence is inherent to the paper's field reuse.
func (p *Packet) Label() uint16 {
	if p.Inner.MoreFragments() {
		return 0
	}
	return uint16(p.Inner.TOS)<<8 | p.Inner.frag&0xff
}

// ClearLabel removes an embedded label.
func (p *Packet) ClearLabel() {
	p.Inner.TOS = 0
	p.Inner.frag &= flagDF
}

// NeedsFragmentation reports whether the packet exceeds the MTU.
func (p *Packet) NeedsFragmentation(mtu int) bool { return p.Size() > mtu }

// Fragment splits the packet into MTU-sized fragments of its outermost
// layer, as an IPv4 router would. Only the first fragment logically
// carries the transport header; all fragments share the outermost ID so a
// reassembler can regroup them. Returns an error if DF is set (the router
// would drop and emit ICMP instead) or the MTU is too small to carry any
// payload.
func (p *Packet) Fragment(mtu int, nextID func() uint16) ([]*Packet, error) {
	if !p.NeedsFragmentation(mtu) {
		return []*Packet{p}, nil
	}
	outer := p.OutermostHeader()
	if outer.DontFragment() {
		return nil, fmt.Errorf("packet: DF set on %v -> %v but size %d > MTU %d",
			outer.Src, outer.Dst, p.Size(), mtu)
	}

	overhead := HeaderLen // the outermost header is repeated per fragment
	innerBytes := p.PayloadLen
	if p.Outer != nil {
		innerBytes += HeaderLen // the inner header fragments as payload
	}
	chunk := (mtu - overhead) / fragUnit * fragUnit
	if chunk <= 0 {
		return nil, fmt.Errorf("packet: MTU %d cannot carry payload", mtu)
	}

	id := nextID()
	var frags []*Packet
	for off := 0; off < innerBytes; off += chunk {
		n := chunk
		last := off+chunk >= innerBytes
		if last {
			n = innerBytes - off
		}
		f := &Packet{Inner: *outer, PayloadLen: n}
		f.Inner.ID = id
		if err := f.Inner.setFrag(off, !last); err != nil {
			return nil, err
		}
		frags = append(frags, f)
	}
	return frags, nil
}

// FragKey groups fragments of one original packet.
type FragKey struct {
	Src, Dst netaddr.Addr
	Proto    uint8
	ID       uint16
}

// Reassembler regroups fragments. It is deliberately minimal: the
// simulator uses it at flow destinations to count reassembly work; it is
// not a hardened real-world reassembly queue.
type Reassembler struct {
	pending map[FragKey]*fragState
	// Completed counts fully reassembled packets.
	Completed int
}

type fragState struct {
	got      map[int]int // offset -> length
	total    int         // total bytes, known once the last fragment arrives
	received int
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[FragKey]*fragState)}
}

// Offer hands a fragment (or whole packet) to the reassembler. It returns
// true when this call completed a packet; whole packets return true
// immediately.
func (r *Reassembler) Offer(p *Packet) bool {
	h := p.OutermostHeader()
	if !h.IsFragment() {
		r.Completed++
		return true
	}
	k := FragKey{Src: h.Src, Dst: h.Dst, Proto: h.Proto, ID: h.ID}
	st := r.pending[k]
	if st == nil {
		st = &fragState{got: make(map[int]int), total: -1}
		r.pending[k] = st
	}
	off := h.FragOffset()
	if _, dup := st.got[off]; !dup {
		st.got[off] = p.PayloadLen
		st.received += p.PayloadLen
	}
	if !h.MoreFragments() {
		st.total = off + p.PayloadLen
	}
	if st.total >= 0 && st.received >= st.total {
		delete(r.pending, k)
		r.Completed++
		return true
	}
	return false
}

// PendingGroups returns the number of incomplete fragment groups.
func (r *Reassembler) PendingGroups() int { return len(r.pending) }

// --- Wire format ----------------------------------------------------------
//
// The live runtime moves packets between processes over UDP; each Packet
// marshals to: 1 flag byte (bit0: outer present), then one or two 20-byte
// headers, then a 4-byte payload length, then the payload bytes.

const wireFlagOuter = 0x01

func marshalHeader(b []byte, h *Header) {
	binary.BigEndian.PutUint32(b[0:], uint32(h.Src))
	binary.BigEndian.PutUint32(b[4:], uint32(h.Dst))
	b[8] = h.Proto
	b[9] = h.TOS
	b[10] = h.TTL
	b[11] = 0
	binary.BigEndian.PutUint16(b[12:], h.SrcPort)
	binary.BigEndian.PutUint16(b[14:], h.DstPort)
	binary.BigEndian.PutUint16(b[16:], h.ID)
	binary.BigEndian.PutUint16(b[18:], h.frag)
}

func unmarshalHeader(b []byte) Header {
	return Header{
		Src:     netaddr.Addr(binary.BigEndian.Uint32(b[0:])),
		Dst:     netaddr.Addr(binary.BigEndian.Uint32(b[4:])),
		Proto:   b[8],
		TOS:     b[9],
		TTL:     b[10],
		SrcPort: binary.BigEndian.Uint16(b[12:]),
		DstPort: binary.BigEndian.Uint16(b[14:]),
		ID:      binary.BigEndian.Uint16(b[16:]),
		frag:    binary.BigEndian.Uint16(b[18:]),
	}
}

// WireSize returns the marshaled length in bytes.
func (p *Packet) WireSize() int {
	n := 1 + HeaderLen + 4 + len(p.Payload)
	if p.Outer != nil {
		n += HeaderLen
	}
	return n
}

// AppendMarshal appends the wire encoding to dst and returns the extended
// slice. The hot path hands it a pooled buffer so steady-state sends
// allocate nothing; Marshal wraps it for callers that want a fresh slice.
func (p *Packet) AppendMarshal(dst []byte) []byte {
	start := len(dst)
	n := p.WireSize()
	if cap(dst)-start < n {
		grown := make([]byte, start, start+n)
		copy(grown, dst)
		dst = grown
	}
	out := dst[start : start+n]
	dst = dst[:start+n]
	out[0] = 0
	off := 1
	if p.Outer != nil {
		out[0] |= wireFlagOuter
		marshalHeader(out[off:], p.Outer)
		off += HeaderLen
	}
	marshalHeader(out[off:], &p.Inner)
	off += HeaderLen
	binary.BigEndian.PutUint32(out[off:], uint32(len(p.Payload)))
	off += 4
	copy(out[off:], p.Payload)
	return dst
}

// Marshal serializes the packet for the live runtime.
func (p *Packet) Marshal() []byte {
	return p.AppendMarshal(make([]byte, 0, p.WireSize()))
}

// UnmarshalInto parses a wire packet into p, reusing p's payload capacity
// — the allocation-free counterpart of Unmarshal for pooled packets. On
// error p is left reset.
func UnmarshalInto(p *Packet, b []byte) error {
	p.Reset()
	if len(b) < 1+HeaderLen+4 {
		return fmt.Errorf("packet: wire too short (%d bytes)", len(b))
	}
	off := 1
	if b[0]&wireFlagOuter != 0 {
		if len(b) < 1+2*HeaderLen+4 {
			return fmt.Errorf("packet: wire too short for outer header (%d bytes)", len(b))
		}
		p.outerBuf = unmarshalHeader(b[off:])
		p.Outer = &p.outerBuf
		off += HeaderLen
	}
	p.Inner = unmarshalHeader(b[off:])
	off += HeaderLen
	plen := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if len(b)-off < plen {
		p.Reset()
		return fmt.Errorf("packet: wire payload truncated: want %d, have %d", plen, len(b)-off)
	}
	p.Payload = append(p.Payload[:0], b[off:off+plen]...)
	p.PayloadLen = plen
	return nil
}

// Unmarshal parses a wire packet. PayloadLen is set to the carried
// payload's length.
func Unmarshal(b []byte) (*Packet, error) {
	p := &Packet{}
	if err := UnmarshalInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// Reset clears the packet for reuse, retaining payload capacity.
func (p *Packet) Reset() {
	payload := p.Payload
	if payload != nil {
		payload = payload[:0]
	}
	*p = Packet{Payload: payload}
}

// String renders a compact description for logs.
func (p *Packet) String() string {
	ft := p.FiveTuple()
	if p.Outer != nil {
		return fmt.Sprintf("[%s=>%s|%s len=%d lbl=%d]",
			p.Outer.Src, p.Outer.Dst, ft, p.Size(), p.Label())
	}
	return fmt.Sprintf("[%s len=%d lbl=%d]", ft, p.Size(), p.Label())
}
