package packet

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sdme/internal/netaddr"
)

func testTuple() netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src:     netaddr.MustParseAddr("10.1.0.5"),
		Dst:     netaddr.MustParseAddr("10.2.0.9"),
		SrcPort: 5555, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
}

func TestNewAndSize(t *testing.T) {
	p := New(testTuple(), 1000)
	if p.Size() != HeaderLen+1000 {
		t.Errorf("Size = %d, want %d", p.Size(), HeaderLen+1000)
	}
	if p.IsEncapsulated() {
		t.Error("fresh packet should not be encapsulated")
	}
	if p.FiveTuple() != testTuple() {
		t.Errorf("FiveTuple = %v", p.FiveTuple())
	}
	if p.Inner.TTL != DefaultTTL {
		t.Errorf("TTL = %d", p.Inner.TTL)
	}
}

func TestEncapDecap(t *testing.T) {
	p := New(testTuple(), 100)
	proxyAddr := netaddr.MustParseAddr("10.1.0.2")
	mbAddr := netaddr.MustParseAddr("172.31.0.1")

	if err := p.Encapsulate(proxyAddr, mbAddr); err != nil {
		t.Fatalf("Encapsulate: %v", err)
	}
	if p.Size() != 2*HeaderLen+100 {
		t.Errorf("encapsulated size = %d, want %d", p.Size(), 2*HeaderLen+100)
	}
	if p.OutermostDst() != mbAddr {
		t.Errorf("OutermostDst = %v, want %v", p.OutermostDst(), mbAddr)
	}
	if p.Outer.Proto != ProtoIPIP {
		t.Errorf("outer proto = %d, want %d", p.Outer.Proto, ProtoIPIP)
	}
	// The inner flow identity is preserved.
	if p.FiveTuple() != testTuple() {
		t.Error("encapsulation must not disturb the inner 5-tuple")
	}
	// No tunnel stacking.
	if err := p.Encapsulate(proxyAddr, mbAddr); !errors.Is(err, ErrAlreadyEncapsulated) {
		t.Errorf("double encap error = %v", err)
	}

	h, err := p.Decapsulate()
	if err != nil {
		t.Fatalf("Decapsulate: %v", err)
	}
	if h.Src != proxyAddr || h.Dst != mbAddr {
		t.Errorf("stripped header = %+v", h)
	}
	if p.IsEncapsulated() {
		t.Error("still encapsulated after Decapsulate")
	}
	if _, err := p.Decapsulate(); !errors.Is(err, ErrNotEncapsulated) {
		t.Errorf("double decap error = %v", err)
	}
}

func TestOutermostDstPlain(t *testing.T) {
	p := New(testTuple(), 10)
	if p.OutermostDst() != testTuple().Dst {
		t.Error("plain packet outermost dst should be inner dst")
	}
	if p.OutermostHeader() != &p.Inner {
		t.Error("plain packet outermost header should be inner")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	f := func(label uint16) bool {
		if label == 0 {
			return true
		}
		p := New(testTuple(), 64)
		if err := p.EmbedLabel(label); err != nil {
			return false
		}
		return p.Label() == label
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelRules(t *testing.T) {
	p := New(testTuple(), 64)
	if err := p.EmbedLabel(0); err == nil {
		t.Error("label 0 must be rejected")
	}
	if p.Label() != 0 {
		t.Errorf("unlabeled packet Label() = %d", p.Label())
	}
	if err := p.EmbedLabel(0x1234); err != nil {
		t.Fatal(err)
	}
	// Re-embedding overwrites.
	if err := p.EmbedLabel(0x00ff); err != nil {
		t.Fatal(err)
	}
	if p.Label() != 0x00ff {
		t.Errorf("Label = %#x, want 0x00ff", p.Label())
	}
	p.ClearLabel()
	if p.Label() != 0 {
		t.Error("ClearLabel failed")
	}

	// DF survives labeling.
	p2 := New(testTuple(), 64)
	p2.Inner.SetDontFragment(true)
	if err := p2.EmbedLabel(7); err != nil {
		t.Fatal(err)
	}
	if !p2.Inner.DontFragment() {
		t.Error("DF flag lost by EmbedLabel")
	}
	p2.ClearLabel()
	if !p2.Inner.DontFragment() {
		t.Error("DF flag lost by ClearLabel")
	}
}

func TestLabelRefusedMidFragment(t *testing.T) {
	p := New(testTuple(), 64)
	if err := p.Inner.setFrag(0, true); err != nil {
		t.Fatal(err)
	}
	if err := p.EmbedLabel(5); err == nil {
		t.Error("labeling an MF fragment must fail")
	}
}

func TestFragmentationNotNeeded(t *testing.T) {
	p := New(testTuple(), 100)
	frags, err := p.Fragment(1500, fixedID(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0] != p {
		t.Errorf("small packet should come back unsplit, got %d frags", len(frags))
	}
}

func TestFragmentationOfEncapsulatedPacket(t *testing.T) {
	// This is exactly the paper's §III-E scenario: a 1500-byte-ish packet
	// grows past the MTU once IP-over-IP adds its outer header.
	p := New(testTuple(), 1480) // 1500 total, exactly fits MTU 1500
	if p.NeedsFragmentation(1500) {
		t.Fatal("plain packet should fit")
	}
	if err := p.Encapsulate(netaddr.MustParseAddr("10.1.0.2"), netaddr.MustParseAddr("172.31.0.1")); err != nil {
		t.Fatal(err)
	}
	if !p.NeedsFragmentation(1500) {
		t.Fatal("encapsulated packet should exceed MTU")
	}
	frags, err := p.Fragment(1500, fixedID(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatalf("want 2 fragments, got %d", len(frags))
	}
	// Each fragment is addressed by the tunnel (outer) header.
	for i, f := range frags {
		if f.Inner.Src != netaddr.MustParseAddr("10.1.0.2") || f.Inner.Dst != netaddr.MustParseAddr("172.31.0.1") {
			t.Errorf("fragment %d not carrying tunnel addresses: %+v", i, f.Inner)
		}
		if f.Inner.ID != 42 {
			t.Errorf("fragment %d ID = %d, want shared ID 42", i, f.Inner.ID)
		}
		if f.Size() > 1500 {
			t.Errorf("fragment %d size %d exceeds MTU", i, f.Size())
		}
	}
	if !frags[0].Inner.MoreFragments() || frags[1].Inner.MoreFragments() {
		t.Error("MF flags wrong")
	}
	if frags[0].Inner.FragOffset() != 0 || frags[1].Inner.FragOffset() == 0 {
		t.Error("fragment offsets wrong")
	}
	// Total carried bytes = inner header + payload.
	total := 0
	for _, f := range frags {
		total += f.PayloadLen
	}
	if total != HeaderLen+1480 {
		t.Errorf("fragment payloads sum to %d, want %d", total, HeaderLen+1480)
	}
}

func TestFragmentDFRefused(t *testing.T) {
	p := New(testTuple(), 3000)
	p.Inner.SetDontFragment(true)
	if _, err := p.Fragment(1500, fixedID(1)); err == nil {
		t.Error("fragmenting a DF packet must fail")
	}
}

func TestFragmentTinyMTU(t *testing.T) {
	p := New(testTuple(), 100)
	if _, err := p.Fragment(HeaderLen, fixedID(1)); err == nil {
		t.Error("MTU equal to header size cannot carry payload")
	}
}

func TestReassembler(t *testing.T) {
	r := NewReassembler()
	p := New(testTuple(), 4000)
	frags, err := p.Fragment(1500, fixedID(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("want >=3 fragments, got %d", len(frags))
	}
	// Deliver out of order; completion only on the last piece.
	order := []int{2, 0, 1}
	if len(frags) > 3 {
		order = rand.New(rand.NewSource(1)).Perm(len(frags))
	}
	delivered := 0
	for _, idx := range order {
		delivered++
		done := r.Offer(frags[idx])
		if delivered < len(frags) && done {
			t.Error("reassembly completed early")
		}
		if delivered == len(frags) && !done {
			t.Error("reassembly did not complete")
		}
	}
	if r.Completed != 1 || r.PendingGroups() != 0 {
		t.Errorf("completed=%d pending=%d", r.Completed, r.PendingGroups())
	}
	// Duplicate fragments of a finished packet start a fresh group.
	r.Offer(frags[0])
	if r.PendingGroups() != 1 {
		t.Errorf("pending=%d after stray fragment", r.PendingGroups())
	}
	// Whole packets complete immediately.
	if !r.Offer(New(testTuple(), 50)) {
		t.Error("whole packet should complete immediately")
	}
}

func TestReassemblerIgnoresDuplicates(t *testing.T) {
	r := NewReassembler()
	p := New(testTuple(), 2000) // splits into exactly 2 fragments at MTU 1500
	frags, err := p.Fragment(1500, fixedID(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatalf("want 2 fragments, got %d", len(frags))
	}
	r.Offer(frags[0])
	r.Offer(frags[0]) // duplicate must not double-count bytes
	if done := r.Offer(frags[1]); !done {
		t.Error("reassembly should complete despite duplicate")
	}
	if r.Completed != 1 {
		t.Errorf("completed = %d, want 1", r.Completed)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := New(testTuple(), 5)
	p.Payload = []byte("hello")
	if err := p.EmbedLabel(0x0a0b); err != nil {
		t.Fatal(err)
	}
	if err := p.Encapsulate(netaddr.MustParseAddr("10.1.0.2"), netaddr.MustParseAddr("172.31.0.3")); err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Outer == nil || *got.Outer != *p.Outer {
		t.Errorf("outer header mismatch: %+v vs %+v", got.Outer, p.Outer)
	}
	if got.Inner != p.Inner {
		t.Errorf("inner header mismatch: %+v vs %+v", got.Inner, p.Inner)
	}
	if string(got.Payload) != "hello" || got.PayloadLen != 5 {
		t.Errorf("payload mismatch: %q len %d", got.Payload, got.PayloadLen)
	}
	if got.Label() != 0x0a0b {
		t.Errorf("label lost: %#x", got.Label())
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8, payload []byte, outer bool) bool {
		p := New(netaddr.FiveTuple{
			Src: netaddr.Addr(src), Dst: netaddr.Addr(dst),
			SrcPort: sp, DstPort: dp, Proto: proto,
		}, len(payload))
		p.Payload = payload
		if outer {
			if err := p.Encapsulate(netaddr.Addr(dst), netaddr.Addr(src)); err != nil {
				return false
			}
		}
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		if got.Inner != p.Inner || got.PayloadLen != len(payload) {
			return false
		}
		if outer != (got.Outer != nil) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil wire should fail")
	}
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short wire should fail")
	}
	// Flag claims an outer header that isn't there.
	short := make([]byte, 1+HeaderLen+4)
	short[0] = wireFlagOuter
	if _, err := Unmarshal(short); err == nil {
		t.Error("missing outer header should fail")
	}
	// Payload length field larger than the buffer.
	p := New(testTuple(), 3)
	p.Payload = []byte{1, 2, 3}
	w := p.Marshal()
	w[1+HeaderLen+2] = 0xff // corrupt payload length
	if _, err := Unmarshal(w); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestClone(t *testing.T) {
	p := New(testTuple(), 4)
	p.Payload = []byte{1, 2, 3, 4}
	if err := p.Encapsulate(1, 2); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	c.Outer.Dst = 99
	c.Payload[0] = 77
	c.Inner.TTL = 1
	if p.Outer.Dst == 99 || p.Payload[0] == 77 || p.Inner.TTL == 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestStringForms(t *testing.T) {
	p := New(testTuple(), 10)
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
	if err := p.Encapsulate(1, 2); err != nil {
		t.Fatal(err)
	}
	if s := p.String(); s == "" {
		t.Error("empty encapsulated String()")
	}
}

func fixedID(id uint16) func() uint16 {
	return func() uint16 { return id }
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	p := New(testTuple(), 64)
	p.Payload = make([]byte, 64)
	if err := p.Encapsulate(1, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := p.Marshal()
		if _, err := Unmarshal(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFragment(b *testing.B) {
	p := New(testTuple(), 8000)
	id := uint16(0)
	next := func() uint16 { id++; return id }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fragment(1500, next); err != nil {
			b.Fatal(err)
		}
	}
}
