package experiments

import (
	"fmt"
	"strings"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/ospf"
	"sdme/internal/policy"
	"sdme/internal/sim"
	"sdme/internal/topo"
)

// KAblationPoint reports LB quality for one candidate-set size.
type KAblationPoint struct {
	K int
	// Lambda is the LP optimum (max expected load, uniform capacities).
	Lambda float64
	// RealizedMaxIDS is the realized maximum IDS load after hashing.
	RealizedMaxIDS int64
	// AvgPathCost captures the locality cost of larger k: farther
	// candidates admit better balance but longer detours.
	AvgPathCost float64
}

// RunCandidateKAblation sweeps the candidate-set size k (applied to every
// function, capped by provider count) and reports the balance/locality
// trade-off — the design choice DESIGN.md calls out (k=1 is hot-potato).
func RunCandidateKAblation(cfg Config, traffic int, ks []int) ([]KAblationPoint, error) {
	bed, err := NewBed(cfg)
	if err != nil {
		return nil, err
	}
	demands := bed.GenerateDemands(traffic)
	meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)

	var out []KAblationPoint
	for _, k := range ks {
		kmap := make(map[policy.FuncType]int, len(Funcs))
		for _, f := range Funcs {
			kmap[f] = k
		}
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
			Strategy: enforce.LoadBalanced, K: kmap, HashSeed: uint64(cfg.Seed) + uint64(k),
		})
		nodes, err := ctl.BuildNodes()
		if err != nil {
			return nil, err
		}
		sol, err := ctl.SolveLB(meas)
		if err != nil {
			return nil, fmt.Errorf("experiments: k=%d: %w", k, err)
		}
		controller.ApplyWeights(nodes, sol)
		report, err := enforce.EvaluateFlows(nodes, bed.Dep, bed.AllPairs, demands)
		if err != nil {
			return nil, err
		}
		out = append(out, KAblationPoint{
			K:              k,
			Lambda:         sol.Lambda,
			RealizedMaxIDS: report.MaxLoad(bed.Dep, policy.FuncIDS),
			AvgPathCost:    report.AvgPathCost(),
		})
	}
	return out, nil
}

// StateAblation reports the effect of the §III-D flow table and §III-E
// label switching, measured packet-by-packet in the simulator.
type StateAblation struct {
	LabelSwitching bool
	// PacketsProcessed is total middlebox processing events.
	PacketsProcessed int64
	// Classifications is how many multi-field lookups ran; the flow
	// table makes this ≈ flows × chain length instead of packets ×
	// chain length.
	Classifications int64
	// TunnelTx / LabelTx split the transmissions by encapsulation.
	TunnelTx, LabelTx int64
	// EncapOverheadBytes is the extra wire bytes added by outer headers.
	EncapOverheadBytes int64
	// FragmentsCreated counts MTU-driven fragment packets.
	FragmentsCreated int64
	// ControlMessages counts §III-E confirmations.
	ControlMessages int64
	Delivered       int64
}

// RunStateAblation runs a packet-level simulation of `flows` flows ×
// `packetsPerFlow` packets of `packetBytes` bytes on a small campus, with
// label switching on or off, and reports the state-machinery effects.
// Packet sizes near the MTU expose encapsulation-induced fragmentation.
func RunStateAblation(seed int64, flows, packetsPerFlow, packetBytes int, labelSwitching bool) (*StateAblation, error) {
	cfg := Config{Topology: "campus", Seed: seed, PoliciesPerClass: 2, TrafficPoints: []int{1}}
	bed, err := NewBed(cfg)
	if err != nil {
		return nil, err
	}
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
		Strategy: enforce.HotPotato, K: bed.Cfg.K,
		LabelSwitching: labelSwitching, HashSeed: uint64(seed),
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		return nil, err
	}
	dom := ospf.NewDomain(bed.Graph)
	dom.Converge()
	nw := sim.New(bed.Graph, dom, bed.Dep, nodes)

	demands := bed.GenerateDemands(flows) // ≈1 packet per flow target; resize below
	if len(demands) > flows {
		demands = demands[:flows]
	}
	for i, d := range demands {
		// Space flows and packets so control messages can return between
		// packets of a flow.
		if err := nw.InjectFlow(d.Tuple, packetsPerFlow, packetBytes, int64(i)*37, 5000); err != nil {
			return nil, err
		}
	}
	nw.Run(0)

	out := &StateAblation{LabelSwitching: labelSwitching}
	s := nw.Stats()
	out.FragmentsCreated = s.FragmentsCreated
	out.ControlMessages = s.ControlMessages
	out.Delivered = s.Delivered
	for _, n := range nodes {
		out.PacketsProcessed += n.Counters.Load
		out.Classifications += n.Counters.Classified
		out.TunnelTx += n.Counters.TunnelTx
		out.LabelTx += n.Counters.LabelTx
	}
	out.EncapOverheadBytes = out.TunnelTx * 20
	return out, nil
}

// FormulationComparison reports Eq. (1) vs Eq. (2) on one instance.
type FormulationComparison struct {
	AggLambda, FineLambda           float64
	AggVars, FineVars               int
	AggConstraints, FineConstraints int
	AggIterations, FineIterations   int
}

// RunEq1VsEq2 solves both LP formulations on a reduced topology and
// reports size and optimum — the paper's motivation for Eq. (2) is
// exactly this variable-count reduction (§III-C).
func RunEq1VsEq2(cfg Config, traffic int) (*FormulationComparison, error) {
	bed, err := NewBed(cfg)
	if err != nil {
		return nil, err
	}
	demands := bed.GenerateDemands(traffic)
	meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
		Strategy: enforce.LoadBalanced, K: bed.Cfg.K, HashSeed: uint64(cfg.Seed),
	})
	agg, err := ctl.SolveLB(meas)
	if err != nil {
		return nil, err
	}
	fine, err := ctl.SolveLBFine(meas)
	if err != nil {
		return nil, err
	}
	return &FormulationComparison{
		AggLambda: agg.Lambda, FineLambda: fine.Lambda,
		AggVars: agg.Vars, FineVars: fine.Vars,
		AggConstraints: agg.Constraints, FineConstraints: fine.Constraints,
		AggIterations: agg.Iterations, FineIterations: fine.Iterations,
	}, nil
}

// StretchPoint reports the average per-packet path cost of a strategy
// against the no-enforcement shortest-path baseline.
type StretchPoint struct {
	Strategy enforce.Strategy
	// AvgPathCost is hops per packet including middlebox detours.
	AvgPathCost float64
	// Stretch is AvgPathCost / baseline shortest-path cost.
	Stretch float64
}

// RunPathStretch quantifies the routing detour each enforcement strategy
// imposes: every flow's routed path (source proxy → middlebox chain →
// destination edge) versus the direct shortest path. The paper does not
// evaluate latency; this ablation answers the natural follow-up question
// and exposes the k trade-off from the other side of RunCandidateKAblation.
func RunPathStretch(cfg Config, traffic int) (baselineCost float64, points []StretchPoint, err error) {
	bed, err := NewBed(cfg)
	if err != nil {
		return 0, nil, err
	}
	demands := bed.GenerateDemands(traffic)

	// Baseline: per-packet shortest-path cost with no enforcement.
	var base float64
	var total int64
	for _, d := range demands {
		srcSub := bed.Dep.SubnetIndexOf(d.Tuple.Src)
		proxyID, ok := bed.Dep.ProxyFor(srcSub)
		if !ok {
			continue
		}
		dstEdge := bed.Graph.SubnetOwner(d.Tuple.Dst)
		if dstEdge == topo.InvalidNode {
			continue
		}
		base += float64(d.Packets) * bed.AllPairs.Dist(proxyID, dstEdge)
		total += d.Packets
	}
	if total > 0 {
		base /= float64(total)
	}

	for _, s := range Strategies {
		report, _, rerr := bed.RunStrategy(s, demands)
		if rerr != nil {
			return 0, nil, rerr
		}
		pt := StretchPoint{Strategy: s, AvgPathCost: report.AvgPathCost()}
		if base > 0 {
			pt.Stretch = pt.AvgPathCost / base
		}
		points = append(points, pt)
	}
	return base, points, nil
}

// StretchMarkdown renders the path-stretch ablation.
func StretchMarkdown(baseline float64, points []StretchPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline (no enforcement): %.2f hops/packet\n\n", baseline)
	b.WriteString("| strategy | avg path cost (hops/pkt) | stretch vs baseline |\n|---|---:|---:|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %v | %.2f | %.2fx |\n", p.Strategy, p.AvgPathCost, p.Stretch)
	}
	return b.String()
}

// QueueAblation reports one strategy's latency under finite middlebox
// capacity.
type QueueAblation struct {
	Strategy enforce.Strategy
	// AvgLatencyUS / MaxLatencyUS are end-to-end delivery latencies.
	AvgLatencyUS, MaxLatencyUS float64
	// AvgQueueUS / MaxQueueUS are per-middlebox queueing waits.
	AvgQueueUS, MaxQueueUS float64
	Delivered              int64
}

// RunQueueingAblation gives every middlebox the same finite service rate
// and pushes an identical packet-level workload through HP, Rand and LB.
// Under hot-potato the hottest middlebox saturates and queues explode;
// load balancing keeps every box under its service rate — the latency
// meaning of the paper's min-max-λ objective, measured.
func RunQueueingAblation(seed int64, flows, packetsPerFlow int, ratePPS float64) ([]QueueAblation, error) {
	var out []QueueAblation
	for _, strategy := range Strategies {
		cfg := Config{Topology: "campus", Seed: seed, PoliciesPerClass: 2, TrafficPoints: []int{1}}
		bed, err := NewBed(cfg)
		if err != nil {
			return nil, err
		}
		demands := bed.GenerateDemands(flows)
		if len(demands) > flows {
			demands = demands[:flows]
		}
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
			Strategy: strategy, K: bed.Cfg.K, HashSeed: uint64(seed),
		})
		nodes, err := ctl.BuildNodes()
		if err != nil {
			return nil, err
		}
		if strategy == enforce.LoadBalanced {
			// Scale the per-flow demands to packet counts for measurement.
			var meas = controller.Measurements{}
			for _, d := range demands {
				p := bed.Table.Match(d.Tuple)
				if p == nil || p.Actions.IsPermit() {
					continue
				}
				meas[enforce.MeasKey{
					PolicyID:  p.ID,
					SrcSubnet: bed.Dep.SubnetIndexOf(d.Tuple.Src),
					DstSubnet: bed.Dep.SubnetIndexOf(d.Tuple.Dst),
				}] += int64(packetsPerFlow)
			}
			sol, err := ctl.SolveLB(meas)
			if err != nil {
				return nil, err
			}
			controller.ApplyWeights(nodes, sol)
		}
		dom := ospf.NewDomain(bed.Graph)
		dom.Converge()
		nw := sim.New(bed.Graph, dom, bed.Dep, nodes)
		for _, id := range bed.Dep.MBNodes {
			nw.SetServiceRate(id, ratePPS)
		}
		for i, d := range demands {
			if err := nw.InjectFlow(d.Tuple, packetsPerFlow, 256, int64(i)*17, 120); err != nil {
				return nil, err
			}
		}
		nw.Run(0)
		s := nw.Stats()
		out = append(out, QueueAblation{
			Strategy:     strategy,
			AvgLatencyUS: s.AvgLatencyUS(),
			MaxLatencyUS: float64(s.LatencyMaxUS),
			AvgQueueUS:   s.AvgQueueDelayUS(),
			MaxQueueUS:   float64(s.QueueDelayMaxUS),
			Delivered:    s.Delivered,
		})
	}
	return out, nil
}

// QueueingMarkdown renders the queueing ablation.
func QueueingMarkdown(points []QueueAblation) string {
	var b strings.Builder
	b.WriteString("| strategy | avg latency (µs) | max latency (µs) | avg queue wait (µs) | max queue wait (µs) |\n|---|---:|---:|---:|---:|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %v | %.0f | %.0f | %.0f | %.0f |\n",
			p.Strategy, p.AvgLatencyUS, p.MaxLatencyUS, p.AvgQueueUS, p.MaxQueueUS)
	}
	return b.String()
}
