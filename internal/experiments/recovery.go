package experiments

// Recovery-convergence experiments: the dependability story of the
// paper, measured. A scripted fault schedule (internal/faultinject)
// crashes middleboxes, wedges a device and drops a management
// connection while traffic flows; the control plane detects the
// failures, recomputes candidate sets without the dead boxes, verifies
// the repaired plan (internal/verify) and re-pushes it — and we report
// what the outage cost (packets blackholed while the plan was stale)
// and how long convergence took. The same schedule drives both the
// discrete-event simulator (virtual time, exact drop accounting) and
// the live UDP runtime (real sockets, the mgmt channel's reconnect and
// epoch machinery doing the healing).

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/faultinject"
	"sdme/internal/live"
	"sdme/internal/mgmt"
	"sdme/internal/netaddr"
	"sdme/internal/ospf"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/sim"
	"sdme/internal/topo"
	"sdme/internal/verify"
)

// RecoveryConfig parameterizes one recovery-convergence run.
type RecoveryConfig struct {
	// Seed drives topology construction and any randomized choice.
	Seed int64
	// DetectUS is the failure-detection latency the sim substrate models
	// (the live substrate detects with a real health monitor). Default
	// 20ms.
	DetectUS int64
	// Flows and PacketsPerFlow size the background workload; GapUS is
	// the inter-packet gap. Defaults: 40 flows × 200 packets, 500µs.
	Flows, PacketsPerFlow int
	GapUS                 int64
	// Schedule overrides the default acceptance schedule (crash two
	// middleboxes, drop one proxy's management connection, wedge and
	// release a third middlebox). Targets must exist in the bed's
	// deployment; use DefaultRecoverySchedule to build one.
	Schedule *faultinject.Schedule
}

func (c *RecoveryConfig) fill() {
	if c.DetectUS == 0 {
		c.DetectUS = 20_000
	}
	if c.Flows == 0 {
		c.Flows = 40
	}
	if c.PacketsPerFlow == 0 {
		c.PacketsPerFlow = 200
	}
	if c.GapUS == 0 {
		c.GapUS = 500
	}
}

// RecoveryResult reports one substrate's run of a fault schedule.
type RecoveryResult struct {
	// Substrate is "sim" or "live".
	Substrate string
	Seed      int64
	// Injected counts workload packets offered; Delivered those that
	// reached their destination.
	Injected, Delivered int64
	// DroppedDown counts packets lost to the outage: blackholed at a
	// down device (sim, exact) or offered-minus-delivered (live).
	DroppedDown int64
	// ConvergeUS is the time from the last fault event to the last
	// completed (verified, acked) repair.
	ConvergeUS int64
	// Repairs counts completed plan repairs; Degraded counts repair
	// attempts aborted because a function had no live provider left.
	Repairs, Degraded int
	// Reconnects / FinalEpoch report the management channel's healing
	// (live substrate only).
	Reconnects int64
	FinalEpoch uint64
	// VerifyOK: the final plan passes every internal/verify invariant.
	// Converged: every live node acked the latest epoch (live substrate;
	// the sim substrate converges by construction when Repairs > 0).
	VerifyOK, Converged bool
}

// recoveryBed is the fixed small deployment both substrates run: three
// firewalls and two IDS boxes on a campus, web traffic crossing two
// subnets, so the acceptance schedule (two crashes, one wedge) always
// leaves every function a live provider.
type recoveryBed struct {
	g     *topo.Graph
	dep   *enforce.Deployment
	tbl   *policy.Table
	ap    *route.AllPairs
	ctl   *controller.Controller
	nodes map[topo.NodeID]*enforce.Node
	fw    []topo.NodeID // fw1 fw2 fw3
	ids   []topo.NodeID // ids1 ids2
}

func newRecoveryBed(seed int64) (*recoveryBed, error) {
	rng := rand.New(rand.NewSource(seed))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 6, EdgeRouters: 3, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		return nil, err
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	if len(cores) < 5 {
		return nil, fmt.Errorf("experiments: recovery bed needs 5 core routers, topology has %d", len(cores))
	}
	b := &recoveryBed{g: g, dep: dep, tbl: policy.NewTable()}
	b.fw = append(b.fw,
		dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW),
		dep.AddMiddlebox(cores[1], "fw2", policy.FuncFW),
		dep.AddMiddlebox(cores[2], "fw3", policy.FuncFW))
	b.ids = append(b.ids,
		dep.AddMiddlebox(cores[3], "ids1", policy.FuncIDS),
		dep.AddMiddlebox(cores[4], "ids2", policy.FuncIDS))

	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	b.tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	b.ap = route.NewAllPairs(g, route.RouterTransitOnly(g))
	b.ctl = controller.New(dep, b.ap, b.tbl, controller.Options{
		Strategy: enforce.HotPotato,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
		HashSeed: uint64(seed),
		Verify:   true,
	})
	b.nodes, err = b.ctl.BuildNodes()
	if err != nil {
		return nil, err
	}
	return b, nil
}

// DefaultRecoverySchedule is the acceptance scenario: crash two
// middleboxes (one firewall, one IDS), drop the management connection
// of one proxy, and wedge a second firewall for 60ms. Every function
// keeps a live provider throughout, so the repaired plan always exists.
func defaultRecoverySchedule(b *recoveryBed, seed int64) *faultinject.Schedule {
	proxy, _ := b.dep.ProxyFor(1)
	return &faultinject.Schedule{
		Seed: seed,
		Events: []faultinject.Event{
			{AtUS: 20_000, Kind: faultinject.KindCrash, Target: b.fw[0]},
			{AtUS: 30_000, Kind: faultinject.KindCrash, Target: b.ids[0]},
			{AtUS: 40_000, Kind: faultinject.KindConnDrop, Target: proxy},
			{AtUS: 50_000, Kind: faultinject.KindWedge, Target: b.fw[1]},
			{AtUS: 110_000, Kind: faultinject.KindUnwedge, Target: b.fw[1]},
		},
	}
}

// recoveryFlow builds the i-th workload five-tuple: web traffic from
// subnet 1 hosts to subnet 2 hosts and back.
func recoveryFlow(i int) netaddr.FiveTuple {
	src, dst := 1, 2
	if i%2 == 1 {
		src, dst = 2, 1
	}
	return netaddr.FiveTuple{
		Src: topo.HostAddr(src, 1+i/2), Dst: topo.HostAddr(dst, 100+i/2),
		SrcPort: uint16(40000 + i), DstPort: 80, Proto: netaddr.ProtoTCP,
	}
}

// RunSimRecovery replays the fault schedule against the discrete-event
// simulator: crashes and wedges blackhole packets (Stats.DroppedDown)
// until a modeled detection delay triggers MarkFailed + verified
// Reassign. Virtual time makes the convergence measurement exact and
// deterministic.
func RunSimRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	cfg.fill()
	bed, err := newRecoveryBed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	dom := ospf.NewDomain(bed.g)
	dom.Converge()
	nw := sim.New(bed.g, dom, bed.dep, bed.nodes)

	for i := 0; i < cfg.Flows; i++ {
		if err := nw.InjectFlow(recoveryFlow(i), cfg.PacketsPerFlow, 256, int64(i)*97, cfg.GapUS); err != nil {
			return nil, err
		}
	}

	res := &RecoveryResult{Substrate: "sim", Seed: cfg.Seed}
	var lastFaultUS, repairedUS int64
	var repairErr error
	// repair is the controller's reaction, scheduled DetectUS after the
	// fault: record the state change, recompute candidates, verify, and
	// install on every node. The engine is single-threaded, so mutating
	// nodes here is safe.
	repair := func(id topo.NodeID, down bool) {
		if err := bed.ctl.MarkFailed(id, down); err != nil {
			repairErr = err
			return
		}
		err := bed.ctl.Reassign(bed.nodes)
		if errors.Is(err, controller.ErrNoLiveProvider) {
			res.Degraded++
			return
		}
		if err != nil {
			repairErr = err
			return
		}
		res.Repairs++
		repairedUS = nw.Engine.Now()
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = defaultRecoverySchedule(bed, cfg.Seed)
	}
	faultinject.DriveSim(sched, nw.Engine, func(ev faultinject.Event) {
		switch ev.Kind {
		case faultinject.KindCrash, faultinject.KindWedge:
			// A wedged device is indistinguishable from a crashed one at
			// the dataplane: both blackhole until repaired.
			nw.SetNodeDown(ev.Target, true)
			lastFaultUS = nw.Engine.Now()
			id := ev.Target
			nw.Engine.After(cfg.DetectUS, func() { repair(id, true) })
		case faultinject.KindRecover, faultinject.KindUnwedge:
			nw.SetNodeDown(ev.Target, false)
			lastFaultUS = nw.Engine.Now()
			id := ev.Target
			nw.Engine.After(cfg.DetectUS, func() { repair(id, false) })
		default:
			// Management-channel faults (conn-drop/delay/ack-loss) have no
			// effect here: the sim substrate models the dataplane; the
			// live substrate exercises the channel.
		}
	})
	nw.Run(0)
	if repairErr != nil {
		return nil, repairErr
	}

	st := nw.Stats()
	res.Injected = st.PacketsInjected
	res.Delivered = st.Delivered
	res.DroppedDown = st.DroppedDown
	if repairedUS > lastFaultUS {
		res.ConvergeUS = repairedUS - lastFaultUS
	}
	res.VerifyOK = len(bed.ctl.VerifyPlan(nil)) == 0
	res.Converged = res.Repairs > 0 && res.VerifyOK
	return res, nil
}

// RunLiveRecovery replays the fault schedule against the live UDP
// runtime with the full control plane in the loop: devices configured
// over the management channel, a health monitor detecting crashed and
// wedged devices, and the self-healing channel (reconnect, retries,
// epochs) carrying the verified repaired plan back out. Wall-clock
// nondeterminism makes the numbers approximate; the convergence
// properties (latest epoch acked everywhere, verified plan) are exact.
func RunLiveRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	cfg.fill()
	bed, err := newRecoveryBed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	rt := live.NewRuntime()
	defer rt.Close()

	devices := make(map[topo.NodeID]*live.Device, len(bed.nodes))
	var nodeIDs []topo.NodeID
	for id, n := range bed.nodes {
		dev, err := rt.AddDevice(n)
		if err != nil {
			return nil, err
		}
		devices[id] = dev
		nodeIDs = append(nodeIDs, id)
	}
	nodeIDs = topo.SortedIDs(nodeIDs)
	var sinkAddrs []netaddr.Addr
	for i := 0; i < cfg.Flows; i++ {
		sinkAddrs = append(sinkAddrs, recoveryFlow(i).Dst)
	}
	sink, err := rt.AddSink(sinkAddrs...)
	if err != nil {
		return nil, err
	}

	server, err := mgmt.NewServer("127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	defer server.Close()
	agents := make(map[topo.NodeID]*mgmt.Agent, len(nodeIDs))
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	for _, id := range nodeIDs {
		agent, err := mgmt.NewAgentWith(devices[id], server.Addr(), mgmt.AgentOptions{
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 100 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		agents[id] = agent
	}
	if !server.WaitConnected(5*time.Second, nodeIDs...) {
		return nil, fmt.Errorf("experiments: agents did not connect: %v", server.Connected())
	}

	// Initial plan over the wire; keep each node's DTO as the base the
	// repair pushes rewrite candidates into.
	pushPol := mgmt.RetryPolicy{Attempts: 4, PerAttempt: 2 * time.Second, Backoff: 25 * time.Millisecond}
	server.SetRepushPolicy(pushPol)
	baseDTO := make(map[topo.NodeID]mgmt.ConfigDTO, len(nodeIDs))
	for _, id := range nodeIDs {
		dto := mgmt.ConfigToDTO(0, bed.nodes[id].Config())
		baseDTO[id] = dto
		if err := server.PushRetry(id, dto, pushPol); err != nil {
			return nil, fmt.Errorf("experiments: initial push to %v: %w", id, err)
		}
	}

	res := &RecoveryResult{Substrate: "live", Seed: cfg.Seed}
	var mu sync.Mutex // guards ctl, res counters, convergedAtUS below
	var convergedAtUS int64
	// repair reacts to health transitions: mark, recompute, verify, and
	// re-push to every node the monitor considers alive. Both callbacks
	// fire from the monitor goroutine, so repairs are serialized.
	var mon *live.HealthMonitor
	repair := func(id topo.NodeID, down bool) {
		mu.Lock()
		defer mu.Unlock()
		if err := bed.ctl.MarkFailed(id, down); err != nil {
			return // routers/proxies are not middleboxes; nothing to repair
		}
		cands, err := bed.ctl.ComputeCandidates()
		if errors.Is(err, controller.ErrNoLiveProvider) {
			res.Degraded++
			return
		}
		if err != nil {
			return
		}
		if verify.AsError(bed.ctl.VerifyPlan(nil)) != nil {
			return
		}
		ok := true
		for _, nodeID := range nodeIDs {
			if mon.IsDown(nodeID) {
				continue // a wedged device cannot ack; it catches up on recovery
			}
			dto := baseDTO[nodeID]
			dto.Epoch = 0
			dto.Candidates = candidatesToDTO(cands[nodeID])
			baseDTO[nodeID] = dto
			if err := server.PushRetry(nodeID, dto, pushPol); err != nil {
				// A refusal means the device died between the fault and its
				// detection: its agent acked "device stopped". The monitor
				// will report it within a probe interval and the next repair
				// excludes it — not a failure of this repair.
				var refused *mgmt.RefusedError
				if !errors.As(err, &refused) {
					ok = false
				}
			}
		}
		if ok {
			res.Repairs++
			convergedAtUS = rt.NowUS()
		}
	}
	mon = rt.NewHealthMonitor(10*time.Millisecond, 2,
		func(id topo.NodeID) { repair(id, true) },
		func(id topo.NodeID) { repair(id, false) })
	mon.Start()
	defer mon.Stop()

	// Background workload for the whole schedule window.
	var injected atomic.Int64
	stopTraffic := make(chan struct{})
	var trafficWG sync.WaitGroup
	trafficWG.Add(1)
	go func() {
		defer trafficWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopTraffic:
				return
			default:
			}
			ft := recoveryFlow(i % cfg.Flows)
			srcSub := bed.dep.SubnetIndexOf(ft.Src)
			proxyID, ok := bed.dep.ProxyFor(srcSub)
			if !ok {
				return
			}
			if err := rt.Inject(bed.dep.AddrOf(proxyID), packet.New(ft, 64)); err != nil {
				return
			}
			injected.Add(1)
			time.Sleep(time.Duration(cfg.GapUS) * time.Microsecond)
		}
	}()

	// Replay the schedule against the runtime and the channel.
	sched := cfg.Schedule
	if sched == nil {
		sched = defaultRecoverySchedule(bed, cfg.Seed)
	}
	// The driver's bookkeeping gets its own lock: it must never wait on
	// mu, which a repair can hold for seconds while awaiting an ack from
	// a wedged device — an ack only the unwedge event can unblock.
	var fmu sync.Mutex
	crashed := make(map[topo.NodeID]bool)
	releases := make(map[topo.NodeID]func())
	var lastFaultUS atomic.Int64
	driver := faultinject.NewLiveDriver(sched, func(ev faultinject.Event) {
		lastFaultUS.Store(rt.NowUS())
		switch ev.Kind {
		case faultinject.KindCrash:
			fmu.Lock()
			crashed[ev.Target] = true
			fmu.Unlock()
			devices[ev.Target].Stop()
		case faultinject.KindWedge:
			fmu.Lock()
			releases[ev.Target] = devices[ev.Target].Wedge()
			fmu.Unlock()
		case faultinject.KindUnwedge:
			fmu.Lock()
			release := releases[ev.Target]
			delete(releases, ev.Target)
			fmu.Unlock()
			if release != nil {
				release()
			}
		case faultinject.KindConnDrop:
			server.DropConn(ev.Target)
		case faultinject.KindPartition:
			// A network partition between a node pair, seen from the
			// controller: both ends lose their management connection at
			// once. The agents' reconnect machinery heals both sides.
			server.DropConn(ev.Target)
			server.DropConn(topo.NodeID(ev.Param))
		}
	})
	driver.Start()
	driver.Wait()

	// Convergence: every surviving node runs the latest epoch pushed to
	// it, and the plan passes verification.
	liveIDs := func() []topo.NodeID {
		fmu.Lock()
		defer fmu.Unlock()
		out := make([]topo.NodeID, 0, len(nodeIDs))
		for _, id := range nodeIDs {
			if !crashed[id] {
				out = append(out, id)
			}
		}
		return out
	}
	converged := live.WaitUntil(15*time.Second, func() bool {
		ids := liveIDs()
		if !server.Converged(ids...) {
			return false
		}
		have := make(map[topo.NodeID]bool)
		for _, id := range server.Connected() {
			have[id] = true
		}
		for _, id := range ids {
			if !have[id] {
				return false
			}
		}
		return true
	})
	close(stopTraffic)
	trafficWG.Wait()
	time.Sleep(50 * time.Millisecond) // drain in-flight dataplane packets

	mu.Lock()
	res.Converged = converged && res.Repairs > 0
	res.VerifyOK = verify.AsError(bed.ctl.VerifyPlan(nil)) == nil
	if last := lastFaultUS.Load(); convergedAtUS > last {
		res.ConvergeUS = convergedAtUS - last
	}
	mu.Unlock()
	res.Injected = injected.Load()
	res.Delivered = int64(sink.Received())
	if res.Injected > res.Delivered {
		res.DroppedDown = res.Injected - res.Delivered
	}
	for _, a := range agents {
		res.Reconnects += a.Stats().Reconnects
	}
	res.FinalEpoch = server.Epoch()
	return res, nil
}

func candidatesToDTO(cands map[policy.FuncType][]topo.NodeID) []mgmt.CandidateDTO {
	out := make([]mgmt.CandidateDTO, 0, len(cands))
	for _, f := range Funcs {
		nodes, ok := cands[f]
		if !ok {
			continue
		}
		cd := mgmt.CandidateDTO{Func: int(f)}
		for _, n := range nodes {
			cd.Nodes = append(cd.Nodes, int(n))
		}
		out = append(out, cd)
	}
	return out
}

// RunRecoveryExperiments runs the acceptance schedule on both
// substrates and returns one result per substrate.
func RunRecoveryExperiments(cfg RecoveryConfig) ([]RecoveryResult, error) {
	simRes, err := RunSimRecovery(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: sim recovery: %w", err)
	}
	liveRes, err := RunLiveRecovery(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: live recovery: %w", err)
	}
	return []RecoveryResult{*simRes, *liveRes}, nil
}

// WriteRecoveryCSV emits recovery results, one row per substrate.
func WriteRecoveryCSV(w io.Writer, rs []RecoveryResult) error {
	if _, err := fmt.Fprintln(w, "substrate,seed,injected,delivered,dropped_down,converge_us,repairs,degraded,reconnects,final_epoch,verify_ok,converged"); err != nil {
		return err
	}
	for _, r := range rs {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%t,%t\n",
			r.Substrate, r.Seed, r.Injected, r.Delivered, r.DroppedDown,
			r.ConvergeUS, r.Repairs, r.Degraded, r.Reconnects, r.FinalEpoch,
			r.VerifyOK, r.Converged); err != nil {
			return err
		}
	}
	return nil
}

// RecoveryMarkdown renders recovery results as a table.
func RecoveryMarkdown(rs []RecoveryResult) string {
	var b strings.Builder
	b.WriteString("| substrate | injected | delivered | dropped (outage) | converge (ms) | repairs | reconnects | final epoch | verified | converged |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---|---|\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.1f | %d | %d | %d | %t | %t |\n",
			r.Substrate, r.Injected, r.Delivered, r.DroppedDown,
			float64(r.ConvergeUS)/1000, r.Repairs, r.Reconnects, r.FinalEpoch,
			r.VerifyOK, r.Converged)
	}
	return b.String()
}
