// Package experiments regenerates the paper's evaluation (§IV): the
// maximum-load-vs-traffic figures on the campus and Waxman topologies
// (Figures 4 and 5), the load-distribution table (Table III), and the
// extension ablations listed in DESIGN.md. Each experiment builds the
// paper's deployment, generates the three-class workload, runs the
// HP/Rand/LB strategies through the flow-level evaluator, and reports
// per-middlebox packet loads.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
	"sdme/internal/workload"
)

// Funcs lists the middlebox types in the paper's presentation order.
var Funcs = []policy.FuncType{policy.FuncFW, policy.FuncIDS, policy.FuncWP, policy.FuncTM}

// Strategies lists the compared strategies in the paper's order.
var Strategies = []enforce.Strategy{enforce.HotPotato, enforce.Random, enforce.LoadBalanced}

// Config parameterizes one experiment run.
type Config struct {
	// Topology is "campus" or "waxman".
	Topology string
	// Seed drives every random choice (topology, placement, workload).
	Seed int64
	// PoliciesPerClass is the number of policies per class (default 10).
	PoliciesPerClass int
	// TrafficPoints are the x-axis values in total packets; defaults to
	// the paper's 1M..10M sweep.
	TrafficPoints []int
	// Counts is the middlebox population (defaults to §IV-A).
	Counts map[policy.FuncType]int
	// K is the candidate set size per function (defaults to §IV-A).
	K map[policy.FuncType]int
	// UseTrie selects trie classifiers in nodes (affects speed only).
	UseTrie bool
}

func (c *Config) fill() {
	if c.Topology == "" {
		c.Topology = "campus"
	}
	if c.PoliciesPerClass == 0 {
		c.PoliciesPerClass = 10
	}
	if len(c.TrafficPoints) == 0 {
		for m := 1; m <= 10; m++ {
			c.TrafficPoints = append(c.TrafficPoints, m*1000000)
		}
	}
	if c.Counts == nil {
		c.Counts = controller.DefaultCounts()
	}
	if c.K == nil {
		c.K = controller.DefaultK()
	}
}

// Bed is a fully constructed experiment environment, reusable across
// traffic points and strategies.
type Bed struct {
	Cfg      Config
	Graph    *topo.Graph
	Dep      *enforce.Deployment
	AllPairs *route.AllPairs
	Table    *policy.Table
	Classed  []workload.ClassedPolicy
	rng      *rand.Rand
}

// NewBed builds the topology, deployment and policy set for a config.
func NewBed(cfg Config) (*Bed, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var g *topo.Graph
	switch cfg.Topology {
	case "campus":
		g = topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	case "waxman":
		g = topo.Waxman(topo.WaxmanConfig{WithProxies: true}, rng)
	default:
		return nil, fmt.Errorf("experiments: unknown topology %q", cfg.Topology)
	}
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		return nil, err
	}
	dep.PlaceRandom(cfg.Counts, rng)

	tbl := policy.NewTable()
	wcfg := workload.GenConfig{Subnets: dep.NumSubnets(), PoliciesPerClass: cfg.PoliciesPerClass}
	classed := workload.GeneratePolicies(wcfg, tbl, rng)

	return &Bed{
		Cfg:      cfg,
		Graph:    g,
		Dep:      dep,
		AllPairs: route.NewAllPairs(g, route.RouterTransitOnly(g)),
		Table:    tbl,
		Classed:  classed,
		rng:      rng,
	}, nil
}

// GenerateDemands draws a fresh flow population totalling ~target packets.
func (b *Bed) GenerateDemands(target int) []enforce.FlowDemand {
	wcfg := workload.GenConfig{Subnets: b.Dep.NumSubnets(), PoliciesPerClass: b.Cfg.PoliciesPerClass}
	flows := workload.GenerateFlows(wcfg, b.Classed, target, b.rng)
	out := make([]enforce.FlowDemand, len(flows))
	for i, f := range flows {
		out[i] = enforce.FlowDemand{Tuple: f.Tuple, Packets: int64(f.Packets)}
	}
	return out
}

// RunStrategy evaluates one strategy over a demand set, solving and
// installing the LB weights when strategy is LoadBalanced.
func (b *Bed) RunStrategy(strategy enforce.Strategy, demands []enforce.FlowDemand) (*enforce.LoadReport, *controller.LBSolution, error) {
	ctl := controller.New(b.Dep, b.AllPairs, b.Table, controller.Options{
		Strategy: strategy,
		K:        b.Cfg.K,
		HashSeed: uint64(b.Cfg.Seed)*2654435761 + uint64(strategy),
		UseTrie:  b.Cfg.UseTrie,
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		return nil, nil, err
	}
	var sol *controller.LBSolution
	if strategy == enforce.LoadBalanced {
		meas := controller.MeasurementsFromFlows(b.Dep, b.Table, demands)
		sol, err = ctl.SolveLB(meas)
		if err != nil {
			return nil, nil, err
		}
		controller.ApplyWeights(nodes, sol)
	}
	report, err := enforce.EvaluateFlows(nodes, b.Dep, b.AllPairs, demands)
	if err != nil {
		return nil, nil, err
	}
	return report, sol, nil
}

// FigurePoint is one x-axis point of Figures 4/5.
type FigurePoint struct {
	// TargetTraffic is the configured x value; ActualTraffic the
	// generated total.
	TargetTraffic, ActualTraffic int64
	// MaxLoad[f][s] is the maximum per-middlebox load for function f
	// under strategy s.
	MaxLoad map[policy.FuncType]map[enforce.Strategy]int64
	// MinLoad mirrors MaxLoad (Table III needs both).
	MinLoad map[policy.FuncType]map[enforce.Strategy]int64
	// AvgPathCost[s] is the mean per-packet routed path cost.
	AvgPathCost map[enforce.Strategy]float64
	// Lambda is the LB program's optimum at this point.
	Lambda float64
}

// FigureResult is a complete Figure 4/5 dataset.
type FigureResult struct {
	Topology string
	Points   []FigurePoint
}

// RunMaxLoadFigure regenerates Figure 4 (campus) or Figure 5 (waxman):
// for every traffic point, the maximum load on each middlebox type under
// HP, Rand and LB.
func RunMaxLoadFigure(cfg Config) (*FigureResult, error) {
	bed, err := NewBed(cfg)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Topology: bed.Cfg.Topology}
	for _, target := range bed.Cfg.TrafficPoints {
		pt, err := bed.RunPoint(target)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

// RunPoint evaluates all strategies at one traffic level.
func (b *Bed) RunPoint(target int) (*FigurePoint, error) {
	demands := b.GenerateDemands(target)
	var actual int64
	for _, d := range demands {
		actual += d.Packets
	}
	pt := &FigurePoint{
		TargetTraffic: int64(target),
		ActualTraffic: actual,
		MaxLoad:       make(map[policy.FuncType]map[enforce.Strategy]int64),
		MinLoad:       make(map[policy.FuncType]map[enforce.Strategy]int64),
		AvgPathCost:   make(map[enforce.Strategy]float64),
	}
	for _, f := range Funcs {
		pt.MaxLoad[f] = make(map[enforce.Strategy]int64)
		pt.MinLoad[f] = make(map[enforce.Strategy]int64)
	}
	for _, s := range Strategies {
		report, sol, err := b.RunStrategy(s, demands)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v at %d pkts: %w", s, target, err)
		}
		for _, f := range Funcs {
			pt.MaxLoad[f][s] = report.MaxLoad(b.Dep, f)
			pt.MinLoad[f][s] = report.MinLoad(b.Dep, f)
		}
		pt.AvgPathCost[s] = report.AvgPathCost()
		if sol != nil {
			pt.Lambda = sol.Lambda
		}
	}
	return pt, nil
}

// TableRow is one row of Table III.
type TableRow struct {
	Func    policy.FuncType
	IsMax   bool
	ByStrat map[enforce.Strategy]int64
}

// RunLoadDistributionTable regenerates Table III: max and min loads per
// middlebox type per strategy at one traffic level (the paper's campus
// table corresponds to the 10M-packet end of Figure 4).
func RunLoadDistributionTable(cfg Config, traffic int) ([]TableRow, error) {
	bed, err := NewBed(cfg)
	if err != nil {
		return nil, err
	}
	pt, err := bed.RunPoint(traffic)
	if err != nil {
		return nil, err
	}
	var rows []TableRow
	for _, f := range Funcs {
		rows = append(rows,
			TableRow{Func: f, IsMax: true, ByStrat: pt.MaxLoad[f]},
			TableRow{Func: f, IsMax: false, ByStrat: pt.MinLoad[f]},
		)
	}
	return rows, nil
}

// SpreadRatio summarizes a strategy's balance quality at a point:
// max/min per function (∞ when min is 0, represented as -1).
func SpreadRatio(pt *FigurePoint, f policy.FuncType, s enforce.Strategy) float64 {
	min := pt.MinLoad[f][s]
	if min == 0 {
		return -1
	}
	return float64(pt.MaxLoad[f][s]) / float64(min)
}

// SortedFuncs returns Funcs filtered to those present in a result point.
func SortedFuncs(pt *FigurePoint) []policy.FuncType {
	var out []policy.FuncType
	for _, f := range Funcs {
		if _, ok := pt.MaxLoad[f]; ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MultiSeedSummary aggregates one traffic point across several
// independent topology/placement/workload draws: mean and range of the
// max load per (function, strategy). The paper evaluates a single draw;
// this answers how placement luck moves the numbers.
type MultiSeedSummary struct {
	Topology string
	Traffic  int
	Seeds    []int64
	// Mean/Min/Max of the per-draw maximum loads.
	Mean map[policy.FuncType]map[enforce.Strategy]float64
	Min  map[policy.FuncType]map[enforce.Strategy]int64
	Max  map[policy.FuncType]map[enforce.Strategy]int64
}

// RunMultiSeed evaluates one traffic point across the given seeds.
func RunMultiSeed(cfg Config, traffic int, seeds []int64) (*MultiSeedSummary, error) {
	cfg.fill()
	sum := &MultiSeedSummary{
		Topology: cfg.Topology, Traffic: traffic, Seeds: seeds,
		Mean: make(map[policy.FuncType]map[enforce.Strategy]float64),
		Min:  make(map[policy.FuncType]map[enforce.Strategy]int64),
		Max:  make(map[policy.FuncType]map[enforce.Strategy]int64),
	}
	for _, f := range Funcs {
		sum.Mean[f] = make(map[enforce.Strategy]float64)
		sum.Min[f] = make(map[enforce.Strategy]int64)
		sum.Max[f] = make(map[enforce.Strategy]int64)
	}
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		bed, err := NewBed(c)
		if err != nil {
			return nil, err
		}
		pt, err := bed.RunPoint(traffic)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		for _, f := range Funcs {
			for _, s := range Strategies {
				v := pt.MaxLoad[f][s]
				sum.Mean[f][s] += float64(v) / float64(len(seeds))
				if cur, ok := sum.Min[f][s]; !ok || v < cur {
					sum.Min[f][s] = v
				}
				if v > sum.Max[f][s] {
					sum.Max[f][s] = v
				}
			}
		}
	}
	return sum, nil
}

// MultiSeedMarkdown renders the cross-seed summary.
func MultiSeedMarkdown(sum *MultiSeedSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "max load at %d packets, %s topology, %d seeds\n\n", sum.Traffic, sum.Topology, len(sum.Seeds))
	b.WriteString("| middlebox | strategy | mean | min | max |\n|---|---|---:|---:|---:|\n")
	for _, f := range Funcs {
		for _, s := range Strategies {
			fmt.Fprintf(&b, "| %v | %v | %.0f | %d | %d |\n",
				f, s, sum.Mean[f][s], sum.Min[f][s], sum.Max[f][s])
		}
	}
	return b.String()
}
