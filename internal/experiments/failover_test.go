package experiments_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"sdme/internal/experiments"
)

// chaosSeed returns the experiment seed, overridable via SDME_CHAOS_SEED
// so `make chaos` can sweep a seed matrix over the same assertions.
func chaosSeed(def int64) int64 {
	if s := os.Getenv("SDME_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// TestChaosSimFailoverZeroRoundTrips: the primary firewall dies with no
// controller reaction scheduled; delivery must resume purely through the
// pre-installed backup candidates, with the dataplane recording both the
// diversions and the purge of pinned soft state.
func TestChaosSimFailoverZeroRoundTrips(t *testing.T) {
	res, err := experiments.RunSimFailover(experiments.FailoverConfig{Seed: chaosSeed(11)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatalf("delivery did not resume after the kill: %+v", res)
	}
	if res.Failovers == 0 {
		t.Error("no failovers recorded — backups never engaged")
	}
	if res.Invalidated == 0 {
		t.Error("no pinned entries purged — stale soft state survived the kill")
	}
	if res.DeliveredPostKill <= res.DeliveredPreKill/10 {
		t.Errorf("post-kill delivery collapsed: pre=%d post=%d", res.DeliveredPreKill, res.DeliveredPostKill)
	}
	if res.PushesDuring != 0 {
		t.Errorf("sim substrate has no mgmt channel but counted %d pushes", res.PushesDuring)
	}
}

// TestChaosSimFailoverDeterministic: same seed → identical counters.
func TestChaosSimFailoverDeterministic(t *testing.T) {
	a, err := experiments.RunSimFailover(experiments.FailoverConfig{Seed: chaosSeed(7)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.RunSimFailover(experiments.FailoverConfig{Seed: chaosSeed(7)})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestChaosLiveFailoverZeroRoundTrips: the same scenario over real
// sockets. The health monitor feeds the liveness view; the management
// push counters must be FLAT across the failover window — that is the
// zero-controller-round-trip acceptance claim.
func TestChaosLiveFailoverZeroRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("live failover run in short mode")
	}
	res, err := experiments.RunLiveFailover(experiments.FailoverConfig{Seed: chaosSeed(11)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatalf("delivery did not resume after the kill: %+v", res)
	}
	if res.Failovers == 0 {
		t.Error("no failovers recorded — liveness view never diverted selection")
	}
	if res.PushesDuring != 0 {
		t.Errorf("mgmt pushed %d times during the failover window, want 0", res.PushesDuring)
	}
}

// TestChaosSimRestartByteIdenticalPlan: kill the controller after a
// solve and a failure, replay the journal into a fresh controller, and
// require the byte-identical exported plan.
func TestChaosSimRestartByteIdenticalPlan(t *testing.T) {
	res, err := experiments.RunSimRestart(experiments.RestartConfig{Seed: chaosSeed(11)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Error("clean kill left a torn journal tail")
	}
	if res.Records < 4 {
		t.Errorf("journal replayed %d records, want >= 4 (deploy, policies, weights, failed)", res.Records)
	}
	if !res.ExportIdentical {
		t.Fatal("restarted controller exported a different plan")
	}
}

// TestChaosLiveRestartResumesEpoch: kill controller AND server under
// live agents; the restarted pair must resume past the journaled epoch,
// reconverge every agent, and export the identical plan.
func TestChaosLiveRestartResumesEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("live restart run in short mode")
	}
	res, err := experiments.RunLiveRestart(experiments.RestartConfig{Seed: chaosSeed(11)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExportIdentical {
		t.Fatal("restarted controller exported a different plan")
	}
	if res.EpochBefore == 0 {
		t.Error("journal recorded no epoch before the kill")
	}
	if !res.Resumed {
		t.Errorf("restart did not resume the epoch sequence: %d -> %d", res.EpochBefore, res.EpochAfter)
	}
	if !res.Converged {
		t.Error("agents did not converge on the restarted controller's plan")
	}
	if res.Reconnects == 0 {
		t.Error("no agent reconnected — the kill never severed the channel")
	}
}

func TestSurvivabilityRenderers(t *testing.T) {
	fo := []experiments.FailoverResult{{
		Substrate: "sim", Seed: 1, Injected: 100, Delivered: 90,
		DeliveredPreKill: 40, DeliveredPostKill: 50,
		Failovers: 3, Invalidated: 2, Resumed: true,
	}}
	rs := []experiments.RestartResult{{
		Substrate: "live", Seed: 1, Records: 5,
		EpochBefore: 3, EpochAfter: 4,
		ExportIdentical: true, Resumed: true, Converged: true,
	}}
	var csv strings.Builder
	if err := experiments.WriteSurvivabilityCSV(&csv, fo, rs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), csv.String())
	}
	wantCols := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != wantCols {
			t.Errorf("row %d has ragged columns: %s", i, l)
		}
	}
	md := experiments.SurvivabilityMarkdown(fo, rs)
	if !strings.Contains(md, "| sim |") || !strings.Contains(md, "3 → 4") {
		t.Errorf("markdown missing rows:\n%s", md)
	}
}
