package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
	"sdme/internal/workload"
)

// Drift experiment: §III-C says proxies report measurements periodically
// and the controller re-solves. This experiment makes the case for WHY:
// traffic shifts over time, and weights optimized for epoch 1 can be
// badly wrong for epoch N. We generate a sequence of epochs whose
// per-policy volumes drift (a rotating hot subnet), then compare the
// realized max IDS load when the controller rebalances every epoch
// versus solving once and never again.

// DriftEpoch is one epoch's outcome under both policies.
type DriftEpoch struct {
	Epoch int
	// Hot is the subnet carrying the epoch's traffic surge.
	Hot int
	// MaxStale / MaxRebalanced are the realized maximum loads over ALL
	// middleboxes (the quantity λ minimizes) with epoch-0 weights frozen
	// vs. re-solved weights.
	MaxStale, MaxRebalanced int64
	// Ideal is the epoch's total IDS packets / |IDS| floor (IDS carries
	// every flow, so it is the binding type at uniform capacities).
	Ideal float64
}

// RunDriftExperiment runs `epochs` traffic epochs of ~target packets
// each. Each epoch concentrates an extra surge (x3 volume) on a rotating
// source subnet. Returns per-epoch outcomes.
func RunDriftExperiment(cfg Config, target, epochs int) ([]DriftEpoch, error) {
	bed, err := NewBed(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))

	mkEpoch := func(hot int) []enforce.FlowDemand {
		wcfg := workload.GenConfig{Subnets: bed.Dep.NumSubnets(), PoliciesPerClass: bed.Cfg.PoliciesPerClass}
		flows := workload.GenerateFlows(wcfg, bed.Classed, target, rng)
		out := make([]enforce.FlowDemand, 0, len(flows))
		for _, f := range flows {
			d := enforce.FlowDemand{Tuple: f.Tuple, Packets: int64(f.Packets)}
			if f.SrcSubnet == hot {
				d.Packets *= 3 // the surge
			}
			out = append(out, d)
		}
		return out
	}

	newNodes := func() (map[topo.NodeID]*enforce.Node, *controller.Controller, error) {
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
			Strategy: enforce.LoadBalanced, K: bed.Cfg.K, HashSeed: uint64(cfg.Seed),
		})
		nodes, err := ctl.BuildNodes()
		return nodes, ctl, err
	}
	staleNodes, staleCtl, err := newNodes()
	if err != nil {
		return nil, err
	}
	rebalNodes, rebalCtl, err := newNodes()
	if err != nil {
		return nil, err
	}

	var out []DriftEpoch
	for e := 0; e < epochs; e++ {
		hot := 1 + e%bed.Dep.NumSubnets()
		demands := mkEpoch(hot)
		meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)

		if e == 0 {
			// Both controllers see epoch 0 and solve once.
			sol, err := staleCtl.SolveLB(meas)
			if err != nil {
				return nil, err
			}
			controller.ApplyWeights(staleNodes, sol)
		}
		// The rebalancing controller re-solves every epoch (§III-C's
		// periodic loop); the stale one keeps epoch-0 weights forever.
		sol, err := rebalCtl.SolveLB(meas)
		if err != nil {
			return nil, err
		}
		controller.ApplyWeights(rebalNodes, sol)

		staleReport, err := enforce.EvaluateFlows(staleNodes, bed.Dep, bed.AllPairs, demands)
		if err != nil {
			return nil, err
		}
		rebalReport, err := enforce.EvaluateFlows(rebalNodes, bed.Dep, bed.AllPairs, demands)
		if err != nil {
			return nil, err
		}
		var idsTotal int64
		for _, l := range rebalReport.LoadsOf(bed.Dep, policy.FuncIDS) {
			idsTotal += l
		}
		globalMax := func(r *enforce.LoadReport) int64 {
			sl := r.SortedLoads()
			if len(sl) == 0 {
				return 0
			}
			return sl[0].Load
		}
		out = append(out, DriftEpoch{
			Epoch:         e,
			Hot:           hot,
			MaxStale:      globalMax(staleReport),
			MaxRebalanced: globalMax(rebalReport),
			Ideal:         float64(idsTotal) / float64(len(bed.Dep.Providers(policy.FuncIDS))),
		})
	}
	return out, nil
}

// DriftMarkdown renders the drift experiment.
func DriftMarkdown(rows []DriftEpoch) string {
	var b strings.Builder
	b.WriteString("| epoch | hot subnet | max load (stale weights) | max load (rebalanced) | IDS floor |\n|---:|---:|---:|---:|---:|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %.0f |\n",
			r.Epoch, r.Hot, r.MaxStale, r.MaxRebalanced, r.Ideal)
	}
	return b.String()
}
