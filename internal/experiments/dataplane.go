package experiments

// Dataplane throughput/latency benchmark: enforcement pps and p50/p99
// latency across worker counts × shard counts, on both substrates.
//
// The simulated substrate drives the REAL proxy hot path (classification,
// sharded flow table, pooled packets, encapsulation) packet by packet, but
// takes its clock from a deterministic virtual-time pipeline model instead
// of the host — the same philosophy as the rest of the simulator, which is
// what makes the ≥2× 16-vs-1-worker gate reproducible on any machine,
// including single-core CI runners. The model has three resources per
// device, mirroring internal/live: a serial dispatcher, W workers with
// flow-hash affinity, and S shard locks:
//
//	dispatcher   150 ns/pkt  (receive, parse, hash, enqueue — serial)
//	worker       650 ns/pkt  (table lookup / classification, NF bookkeeping)
//	shard lock   250 ns/pkt  (the shard-locked critical section)
//	encap         60 ns/pkt  (outer header + marshal to the wire)
//
// A packet's completion time is computed event-by-event: it waits for the
// dispatcher, then its flow's worker, then its entry's shard lock — so
// adding workers helps until the serial dispatcher (or, with few shards,
// lock contention) becomes the bottleneck, exactly the regimes the sharded
// redesign targets. Closed-loop throughput comes from an infinite-backlog
// pass; latency percentiles come from an open-loop pass at 70% of that
// capacity.
//
// The live substrate runs the real thing — UDP sockets, worker pools, wall
// clock — and is reported ungated: its numbers describe the machine the
// suite ran on.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Virtual-time costs of the pipeline model, in nanoseconds per packet.
const (
	benchDispatchNS = 150
	benchWorkerNS   = 650
	benchShardNS    = 250
	benchEncapNS    = 60
)

// benchShardSeed seeds the model's packet→shard hash. It need not equal
// the flowtable's internal seed: only the distribution of flows over
// shards matters to contention, not which shard a flow lands on.
const benchShardSeed = 0x62656e6368 // "bench"

// DataplaneConfig parameterizes RunDataplaneBench. Zero values select the
// defaults noted on each field.
type DataplaneConfig struct {
	Seed        int64
	Workers     []int // default {1, 4, 16}
	Shards      []int // default {1, 16, 64}
	Flows       int   // distinct five-tuples; default 256
	SimPackets  int   // packets per simulated point; default 200000
	LivePackets int   // packets per live point; default 4000
	SkipLive    bool  // model-only run (no sockets)
}

func (c *DataplaneConfig) defaults() {
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 4, 16}
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 16, 64}
	}
	if c.Flows == 0 {
		c.Flows = 256
	}
	if c.SimPackets == 0 {
		c.SimPackets = 200000
	}
	if c.LivePackets == 0 {
		c.LivePackets = 4000
	}
}

// DataplanePoint is one (substrate, workers, shards) measurement.
type DataplanePoint struct {
	Substrate string  `json:"substrate"` // "sim" or "live"
	Workers   int     `json:"workers"`
	Shards    int     `json:"shards"`
	Packets   int     `json:"packets"`
	PPS       float64 `json:"pps"`
	P50US     float64 `json:"p50_us"`
	P99US     float64 `json:"p99_us"`
	// SpeedupVs1W is PPS relative to the same substrate and shard count
	// at one worker.
	SpeedupVs1W float64 `json:"speedup_vs_1w"`
}

// DataplaneGate is the acceptance check embedded in the result: on the
// simulated substrate, 16 workers must deliver at least MinSpeedup× the
// single-worker throughput at the highest shard count.
type DataplaneGate struct {
	MinSpeedup float64 `json:"min_speedup"`
	Workers    int     `json:"workers"`
	Shards     int     `json:"shards"`
	Measured   float64 `json:"measured_speedup"`
	Pass       bool    `json:"pass"`
}

// DataplaneResult is the full suite output, serialized to
// results/bench_dataplane.json.
type DataplaneResult struct {
	Seed      int64            `json:"seed"`
	Generated string           `json:"generated"`
	Points    []DataplanePoint `json:"points"`
	Gate      DataplaneGate    `json:"gate"`
}

// benchFlows generates the flow population shared by every point, all
// matching the bench policy (dst port 80).
func benchFlows(seed int64, n int) []netaddr.FiveTuple {
	rng := rand.New(rand.NewSource(seed))
	flows := make([]netaddr.FiveTuple, n)
	for i := range flows {
		flows[i] = netaddr.FiveTuple{
			Src: topo.HostAddr(1, 1+i%200), Dst: topo.HostAddr(1, 201+i%50),
			SrcPort: uint16(20000 + i), DstPort: 80, Proto: netaddr.ProtoTCP,
		}
	}
	_ = rng // reserved for future payload variation
	return flows
}

// benchBed builds the two-node enforcement bed every point uses: one proxy
// steering port-80 traffic through one IDS middlebox, tables striped over
// `shards` shards.
func benchBed(seed int64, shards int) (proxy, mb *enforce.Node, proxyAddr netaddr.Addr, err error) {
	rng := rand.New(rand.NewSource(seed))
	g := topo.Campus(topo.CampusConfig{Gateways: 1, CoreRouters: 2, EdgeRouters: 1, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		return nil, nil, 0, err
	}
	core := g.NodesOfKind(topo.KindCoreRouter)[0]
	dep.AddMiddlebox(core, "ids1", policy.FuncIDS)
	mbID := dep.MBNodes[0]

	pol := &policy.Policy{ID: 1, Prio: 1, Desc: policy.NewDescriptor(), Actions: policy.ActionList{policy.FuncIDS}}
	pol.Desc.DstPort = netaddr.SinglePort(80)
	cfg := enforce.Config{
		Policies:   []*policy.Policy{pol},
		Candidates: map[policy.FuncType][]topo.NodeID{policy.FuncIDS: {mbID}},
		Strategy:   enforce.HotPotato,
		FlowShards: shards, LabelShards: shards,
	}

	proxyID, ok := dep.ProxyFor(1)
	if !ok {
		return nil, nil, 0, fmt.Errorf("dataplane bench: no proxy for subnet 1")
	}
	proxy = enforce.NewProxy(dep, proxyID)
	if err := proxy.Install(cfg); err != nil {
		return nil, nil, 0, err
	}
	mb, err = enforce.NewMiddlebox(dep, mbID)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := mb.Install(cfg); err != nil {
		return nil, nil, 0, err
	}
	return proxy, mb, dep.AddrOf(proxyID), nil
}

// dropForwarder sinks transmissions: the sim points measure the proxy hot
// path, not delivery.
type dropForwarder struct{}

func (dropForwarder) Send(*enforce.Node, *packet.Packet)                         {}
func (dropForwarder) SendControl(*enforce.Node, netaddr.Addr, netaddr.FiveTuple) {}

// pipelineModel computes per-packet completion times for the
// dispatcher→worker→shard pipeline. arrival gives packet i's arrival in
// virtual ns (the closed-loop pass passes all-zero = infinite backlog);
// the returned latencies are completion − arrival, and makespan is the
// last completion.
func pipelineModel(n int, arrival func(i int) int64, workerOf, shardOf []int, flows int) (lat []int64, makespan int64) {
	nw, ns := 0, 0
	for _, w := range workerOf {
		if w >= nw {
			nw = w + 1
		}
	}
	for _, s := range shardOf {
		if s >= ns {
			ns = s + 1
		}
	}
	dispFree := int64(0)
	workerFree := make([]int64, nw)
	shardFree := make([]int64, ns)
	lat = make([]int64, n)
	for i := 0; i < n; i++ {
		f := i % flows
		at := arrival(i)
		start := at
		if dispFree > start {
			start = dispFree
		}
		dispFree = start + benchDispatchNS
		w, s := workerOf[f], shardOf[f]
		ws := dispFree
		if workerFree[w] > ws {
			ws = workerFree[w]
		}
		lock := ws + benchWorkerNS
		if shardFree[s] > lock {
			lock = shardFree[s]
		}
		shardFree[s] = lock + benchShardNS
		done := lock + benchShardNS + benchEncapNS
		workerFree[w] = done
		lat[i] = done - at
		if done > makespan {
			makespan = done
		}
	}
	return lat, makespan
}

func latQuantileUS(lat []int64, q float64) float64 {
	sorted := append([]int64(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / 1000.0
}

// runSimDataplanePoint measures one (workers, shards) cell on the
// simulated substrate: a functional pass through the real proxy (so the
// sharded tables and pooled packets do real work at this shard count),
// then the deterministic timing model for pps and latency.
func runSimDataplanePoint(cfg DataplaneConfig, flows []netaddr.FiveTuple, workers, shards int) (DataplanePoint, error) {
	pt := DataplanePoint{Substrate: "sim", Workers: workers, Shards: shards, Packets: cfg.SimPackets}

	proxy, _, _, err := benchBed(cfg.Seed, shards)
	if err != nil {
		return pt, err
	}
	fwd := dropForwarder{}
	payload := make([]byte, 64)
	for i := 0; i < cfg.SimPackets; i++ {
		ft := flows[i%len(flows)]
		p := packet.Get()
		p.Inner = packet.Header{
			Src: ft.Src, Dst: ft.Dst, SrcPort: ft.SrcPort, DstPort: ft.DstPort,
			Proto: ft.Proto, TTL: 64,
		}
		p.Payload = append(p.Payload[:0], payload...)
		if err := proxy.HandleOutbound(p, int64(i), fwd); err != nil {
			packet.Put(p)
			return pt, fmt.Errorf("sim point w=%d s=%d pkt %d: %w", workers, shards, i, err)
		}
		packet.Put(p)
	}
	if in := proxy.CountersSnapshot().PacketsIn; in != int64(cfg.SimPackets) {
		return pt, fmt.Errorf("sim point w=%d s=%d: processed %d of %d", workers, shards, in, cfg.SimPackets)
	}

	// Timing model: map each flow to its worker (same affinity hash shape
	// as internal/live: Dst excluded) and to a shard.
	workerOf := make([]int, len(flows))
	shardOf := make([]int, len(flows))
	for i, ft := range flows {
		noDst := ft
		noDst.Dst = 0
		workerOf[i] = int(netaddr.Mix64(noDst.Hash(1)) % uint64(workers))
		shardOf[i] = int(netaddr.Mix64(ft.Hash(benchShardSeed)) % uint64(shards))
	}
	_, makespan := pipelineModel(cfg.SimPackets, func(int) int64 { return 0 }, workerOf, shardOf, len(flows))
	pt.PPS = float64(cfg.SimPackets) / (float64(makespan) / 1e9)

	// Open-loop latency at 70% of measured capacity.
	interval := int64(1e9 / (0.7 * pt.PPS))
	lat, _ := pipelineModel(cfg.SimPackets, func(i int) int64 { return int64(i) * interval }, workerOf, shardOf, len(flows))
	pt.P50US = latQuantileUS(lat, 0.50)
	pt.P99US = latQuantileUS(lat, 0.99)
	return pt, nil
}

// runLiveDataplanePoint measures one cell on the live-UDP substrate: real
// sockets, real worker pool, elapsed time from the runtime's monotonic
// clock. Reported ungated — the numbers describe the host.
func runLiveDataplanePoint(cfg DataplaneConfig, flows []netaddr.FiveTuple, workers, shards int) (DataplanePoint, error) {
	pt := DataplanePoint{Substrate: "live", Workers: workers, Shards: shards, Packets: cfg.LivePackets}

	proxy, mb, proxyAddr, err := benchBed(cfg.Seed, shards)
	if err != nil {
		return pt, err
	}
	rt := live.NewRuntime()
	defer rt.Close()
	reg := rt.NewRegistry()
	rt.AttachMetrics(reg)
	proxyDev, err := rt.AddDeviceWorkers(proxy, workers)
	if err != nil {
		return pt, err
	}
	if _, err := rt.AddDeviceWorkers(mb, workers); err != nil {
		return pt, err
	}

	payload := make([]byte, 64)
	startUS := rt.NowUS()
	for i := 0; i < cfg.LivePackets; i++ {
		ft := flows[i%len(flows)]
		p := packet.New(ft, len(payload))
		p.Payload = append(p.Payload[:0], payload...)
		if err := rt.Inject(proxyAddr, p); err != nil {
			return pt, err
		}
		// UDP offers no flow control: keep the in-flight window under the
		// socket buffer so the point measures enforcement, not loss.
		if (i+1)%256 == 0 {
			floor := int64(i + 1 - 512)
			if !live.WaitUntil(10*time.Second, func() bool {
				return proxyDev.Counters().PacketsIn >= floor
			}) {
				return pt, fmt.Errorf("live point w=%d s=%d stalled at %d", workers, shards, i)
			}
		}
	}
	if !live.WaitUntil(15*time.Second, func() bool {
		return proxyDev.Counters().PacketsIn >= int64(cfg.LivePackets)
	}) {
		return pt, fmt.Errorf("live point w=%d s=%d: proxy saw %d of %d",
			workers, shards, proxyDev.Counters().PacketsIn, cfg.LivePackets)
	}
	elapsedUS := rt.NowUS() - startUS
	if elapsedUS <= 0 {
		elapsedUS = 1
	}
	pt.PPS = float64(cfg.LivePackets) / (float64(elapsedUS) / 1e6)

	h := reg.Histogram(live.MetricEnforceLatencyUS, nil, "node", strconv.Itoa(int(proxy.ID)))
	pt.P50US = float64(h.Quantile(0.50))
	pt.P99US = float64(h.Quantile(0.99))
	return pt, nil
}

// RunDataplaneBench runs the full grid on both substrates and evaluates
// the ≥2× sim scaling gate at (16 workers, max shards) — or at the
// largest configured worker count if 16 is not in the grid.
func RunDataplaneBench(cfg DataplaneConfig) (*DataplaneResult, error) {
	cfg.defaults()
	flows := benchFlows(cfg.Seed, cfg.Flows)
	// Generated is stamped by the caller (cmd/sdme-bench): experiment code
	// stays wall-clock-free so identical configs yield identical results.
	res := &DataplaneResult{Seed: cfg.Seed}

	for _, shards := range cfg.Shards {
		for _, workers := range cfg.Workers {
			pt, err := runSimDataplanePoint(cfg, flows, workers, shards)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	if !cfg.SkipLive {
		for _, shards := range cfg.Shards {
			for _, workers := range cfg.Workers {
				pt, err := runLiveDataplanePoint(cfg, flows, workers, shards)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, pt)
			}
		}
	}

	// Speedups: each point vs the 1-worker point of its (substrate, shards)
	// series.
	base := make(map[string]float64)
	for _, p := range res.Points {
		if p.Workers == 1 {
			base[p.Substrate+"/"+strconv.Itoa(p.Shards)] = p.PPS
		}
	}
	for i := range res.Points {
		p := &res.Points[i]
		if b := base[p.Substrate+"/"+strconv.Itoa(p.Shards)]; b > 0 {
			p.SpeedupVs1W = p.PPS / b
		}
	}

	gateW, gateS := 0, 0
	for _, w := range cfg.Workers {
		if w > gateW {
			gateW = w
		}
	}
	for _, s := range cfg.Shards {
		if s > gateS {
			gateS = s
		}
	}
	if gateW > 16 {
		gateW = 16
	}
	res.Gate = DataplaneGate{MinSpeedup: 2.0, Workers: gateW, Shards: gateS}
	for _, p := range res.Points {
		if p.Substrate == "sim" && p.Workers == gateW && p.Shards == gateS {
			res.Gate.Measured = p.SpeedupVs1W
		}
	}
	res.Gate.Pass = res.Gate.Measured >= res.Gate.MinSpeedup
	return res, nil
}

// WriteDataplaneJSON serializes the result (indented, trailing newline) —
// the schema consumed by CI's benchmark-smoke gate.
func WriteDataplaneJSON(w io.Writer, res *DataplaneResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// DataplaneMarkdown renders the grid for EXPERIMENTS.generated.md.
func DataplaneMarkdown(res *DataplaneResult) string {
	var b strings.Builder
	b.WriteString("| substrate | workers | shards | pps | p50 µs | p99 µs | speedup vs 1w |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "| %s | %d | %d | %.0f | %.1f | %.1f | %.2fx |\n",
			p.Substrate, p.Workers, p.Shards, p.PPS, p.P50US, p.P99US, p.SpeedupVs1W)
	}
	fmt.Fprintf(&b, "\nGate: sim %dw/%ds speedup %.2fx (need ≥ %.1fx) — pass=%v\n",
		res.Gate.Workers, res.Gate.Shards, res.Gate.Measured, res.Gate.MinSpeedup, res.Gate.Pass)
	return b.String()
}
