package experiments

import (
	"bytes"
	"testing"

	"sdme/internal/enforce"
)

// TestDifferentialConformance is the sim half of the differential
// conformance suite: randomized topologies, policies and flows are
// driven through the simulated dataplane with the runtime tracer
// attached, and every sampled trace must equal the static plan
// (enforce.TraceFlow) hop for hop — node sequence and functions — under
// both the hot-potato and the load-balanced selector.
func TestDifferentialConformance(t *testing.T) {
	cases := []struct {
		topology string
		seed     int64
	}{
		{"campus", 1},
		{"campus", 7},
		{"waxman", 3},
	}
	for _, strat := range []enforce.Strategy{enforce.HotPotato, enforce.LoadBalanced} {
		for _, tc := range cases {
			bed, err := NewBed(Config{Topology: tc.topology, Seed: tc.seed, PoliciesPerClass: 4})
			if err != nil {
				t.Fatal(err)
			}
			run, err := bed.RunObserved(ObserveConfig{Strategy: strat, Flows: 50})
			if err != nil {
				t.Fatalf("%v/%s/seed=%d: %v", strat, tc.topology, tc.seed, err)
			}
			if len(run.Flows) < 50 {
				t.Fatalf("%v/%s/seed=%d: only %d flows", strat, tc.topology, tc.seed, len(run.Flows))
			}
			for _, m := range run.Mismatches {
				t.Errorf("%v/%s/seed=%d: %v", strat, tc.topology, tc.seed, m)
			}
			if len(run.Mismatches) == 0 {
				t.Logf("%v/%s/seed=%d: %d runtime traces match static plans",
					strat, tc.topology, tc.seed, len(run.Flows))
			}
		}
	}
}

// TestDifferentialConformanceLabels repeats the check with §III-E label
// switching on: after the first packet flips a flow to labels, the
// runtime path must still be the planned one.
func TestDifferentialConformanceLabels(t *testing.T) {
	for _, strat := range []enforce.Strategy{enforce.HotPotato, enforce.LoadBalanced} {
		bed, err := NewBed(Config{Topology: "campus", Seed: 11, PoliciesPerClass: 4})
		if err != nil {
			t.Fatal(err)
		}
		run, err := bed.RunObserved(ObserveConfig{Strategy: strat, Flows: 50, LabelSwitching: true})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for _, m := range run.Mismatches {
			t.Errorf("%v: %v", strat, m)
		}
	}
}

// TestObservedMetricsDeterminism: two runs from the same seed must
// produce byte-identical metrics snapshots — the registry exposition is
// sorted, the engine is FIFO-stable, and nothing in the path reads wall
// time (the simdeterminism vet pass enforces the latter).
func TestObservedMetricsDeterminism(t *testing.T) {
	one := func() (*ObservedRun, []byte) {
		bed, err := NewBed(Config{Topology: "campus", Seed: 5, PoliciesPerClass: 4})
		if err != nil {
			t.Fatal(err)
		}
		run, err := bed.RunObserved(ObserveConfig{
			Strategy: enforce.LoadBalanced, Flows: 50, SnapshotEveryUS: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run, run.Registry.Snapshot().Text
	}
	a, atext := one()
	b, btext := one()
	if !bytes.Equal(atext, btext) {
		t.Fatalf("final snapshots differ:\n--- run A ---\n%s\n--- run B ---\n%s", atext, btext)
	}
	snapsA, snapsB := a.Network.Snapshots(), b.Network.Snapshots()
	if len(snapsA) == 0 || len(snapsA) != len(snapsB) {
		t.Fatalf("snapshot counts: %d vs %d", len(snapsA), len(snapsB))
	}
	for i := range snapsA {
		if snapsA[i].AtUS != snapsB[i].AtUS || !bytes.Equal(snapsA[i].Text, snapsB[i].Text) {
			t.Fatalf("periodic snapshot %d differs (at %dus vs %dus)", i, snapsA[i].AtUS, snapsB[i].AtUS)
		}
	}
}
