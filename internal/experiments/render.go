package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteFigureCSV emits a FigureResult as CSV: one row per traffic point,
// one column per (function, strategy) pair — the series of Figures 4/5.
func WriteFigureCSV(w io.Writer, res *FigureResult) error {
	header := []string{"traffic"}
	for _, f := range Funcs {
		for _, s := range Strategies {
			header = append(header, fmt.Sprintf("%s_%s_max", f, s))
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, pt := range res.Points {
		row := []string{fmt.Sprintf("%d", pt.ActualTraffic)}
		for _, f := range Funcs {
			for _, s := range Strategies {
				row = append(row, fmt.Sprintf("%d", pt.MaxLoad[f][s]))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// FigureMarkdown renders a FigureResult as per-function markdown tables
// (one per subplot of Figures 4/5).
func FigureMarkdown(res *FigureResult) string {
	var b strings.Builder
	for _, f := range Funcs {
		fmt.Fprintf(&b, "\n**Max load on a %s middlebox (%s topology)**\n\n", f, res.Topology)
		b.WriteString("| traffic (pkts) | HP | Rand | LB |\n|---:|---:|---:|---:|\n")
		for _, pt := range res.Points {
			fmt.Fprintf(&b, "| %d | %d | %d | %d |\n",
				pt.ActualTraffic,
				pt.MaxLoad[f][Strategies[0]],
				pt.MaxLoad[f][Strategies[1]],
				pt.MaxLoad[f][Strategies[2]])
		}
	}
	return b.String()
}

// TableMarkdown renders Table III rows in the paper's layout.
func TableMarkdown(rows []TableRow) string {
	var b strings.Builder
	b.WriteString("| Middlebox | Hot-potato (HP) | Random (Rand) | Load-balance (LB) |\n")
	b.WriteString("|---|---:|---:|---:|\n")
	for _, r := range rows {
		kind := "min."
		if r.IsMax {
			kind = "max."
		}
		fmt.Fprintf(&b, "| %s %s | %d | %d | %d |\n",
			r.Func, kind,
			r.ByStrat[Strategies[0]], r.ByStrat[Strategies[1]], r.ByStrat[Strategies[2]])
	}
	return b.String()
}

// WriteTableCSV emits Table III as CSV.
func WriteTableCSV(w io.Writer, rows []TableRow) error {
	if _, err := fmt.Fprintln(w, "middlebox,stat,hp,rand,lb"); err != nil {
		return err
	}
	for _, r := range rows {
		kind := "min"
		if r.IsMax {
			kind = "max"
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d\n",
			r.Func, kind,
			r.ByStrat[Strategies[0]], r.ByStrat[Strategies[1]], r.ByStrat[Strategies[2]]); err != nil {
			return err
		}
	}
	return nil
}

// KAblationMarkdown renders the candidate-set-size sweep.
func KAblationMarkdown(points []KAblationPoint) string {
	var b strings.Builder
	b.WriteString("| k | λ (max expected load) | realized max IDS load | avg path cost |\n|---:|---:|---:|---:|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %d | %.0f | %d | %.2f |\n", p.K, p.Lambda, p.RealizedMaxIDS, p.AvgPathCost)
	}
	return b.String()
}

// StateAblationMarkdown renders the flow-table / label-switching ablation
// pair.
func StateAblationMarkdown(off, on *StateAblation) string {
	var b strings.Builder
	b.WriteString("| metric | tunneling only | with label switching |\n|---|---:|---:|\n")
	row := func(name string, a, bv int64) { fmt.Fprintf(&b, "| %s | %d | %d |\n", name, a, bv) }
	row("middlebox packets processed", off.PacketsProcessed, on.PacketsProcessed)
	row("multi-field classifications", off.Classifications, on.Classifications)
	row("IP-over-IP transmissions", off.TunnelTx, on.TunnelTx)
	row("label-switched transmissions", off.LabelTx, on.LabelTx)
	row("encapsulation overhead (bytes)", off.EncapOverheadBytes, on.EncapOverheadBytes)
	row("fragments created", off.FragmentsCreated, on.FragmentsCreated)
	row("control messages", off.ControlMessages, on.ControlMessages)
	row("delivered", off.Delivered, on.Delivered)
	return b.String()
}

// FormulationMarkdown renders the Eq. (1) vs Eq. (2) comparison.
func FormulationMarkdown(c *FormulationComparison) string {
	var b strings.Builder
	b.WriteString("| metric | Eq. (2) aggregated | Eq. (1) fine-grained |\n|---|---:|---:|\n")
	fmt.Fprintf(&b, "| λ | %.1f | %.1f |\n", c.AggLambda, c.FineLambda)
	fmt.Fprintf(&b, "| variables | %d | %d |\n", c.AggVars, c.FineVars)
	fmt.Fprintf(&b, "| constraints | %d | %d |\n", c.AggConstraints, c.FineConstraints)
	fmt.Fprintf(&b, "| simplex iterations | %d | %d |\n", c.AggIterations, c.FineIterations)
	return b.String()
}
