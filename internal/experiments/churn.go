package experiments

// Churn benchmark: recompute latency and pushed configuration bytes,
// full-rebuild pipeline vs incremental pipeline, across churn rates.
//
// Both modes replay the SAME randomized mutation sequence (policy
// add/remove/edit, middlebox down/up, demand shifts — the churn mix the
// equivalence property test verifies) against identically seeded beds;
// the only difference is the pipeline's dirty threshold: the "full" mode
// disables scoped solves (DirtyThreshold < 0) and ships every node's
// full configuration each step, the "incremental" mode uses the default
// threshold and ships only the per-node deltas Stage 3 diffs out.
// Pushed bytes are the encoded management-channel envelopes — the same
// payloads the server's push-byte counters meter — so the numbers are
// deterministic for a seed and machine-independent; solve latencies are
// wall clock and reported ungated.
//
// The embedded gate is the byte gate: at the lowest churn rate the
// incremental rollout must cost at most half the bytes of the full
// rollout (in practice it is far below; the bound leaves room for
// demand-shift steps, which dirty everything).

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/mgmt"
	"sdme/internal/topo"
	"sdme/internal/workload"
)

// ChurnConfig parameterizes RunChurnBench. Zero values select the
// defaults noted on each field.
type ChurnConfig struct {
	Seed             int64
	Topology         string // default "campus"
	PoliciesPerClass int    // default 4
	Steps            int    // churn steps per (rate, mode) run; default 40
	Rates            []int  // churn events per step; default {1, 2, 4, 8}
	DemandTarget     int    // packets per demand population; default 20000
}

func (c *ChurnConfig) defaults() {
	if c.Topology == "" {
		c.Topology = "campus"
	}
	if c.PoliciesPerClass == 0 {
		c.PoliciesPerClass = 4
	}
	if c.Steps == 0 {
		c.Steps = 40
	}
	if len(c.Rates) == 0 {
		c.Rates = []int{1, 2, 4, 8}
	}
	if c.DemandTarget == 0 {
		c.DemandTarget = 20000
	}
}

// ChurnPoint is one (rate, mode) cell of the benchmark grid.
type ChurnPoint struct {
	Rate  int    `json:"rate"`
	Mode  string `json:"mode"` // "full" or "incremental"
	Steps int    `json:"steps"`
	// Recompute wall-clock latency over the run's steps.
	SolveMeanUS float64 `json:"solve_mean_us"`
	SolveP50US  float64 `json:"solve_p50_us"`
	SolveP99US  float64 `json:"solve_p99_us"`
	// PushedBytes is the encoded envelope bytes shipped over the churn
	// steps (the initial full rollout, identical in both modes, is
	// reported separately on the result).
	PushedBytes int64 `json:"pushed_bytes"`
	// ScopedSolves/FullSolves split the recomputes by LP scope.
	ScopedSolves int `json:"scoped_solves"`
	FullSolves   int `json:"full_solves"`
	// AvgDirtyFrac is the mean dirty-instance fraction per recompute.
	AvgDirtyFrac float64 `json:"avg_dirty_frac"`
	// DeltaEntries totals the plan-delta entries (policies, candidate
	// lists, weight vectors touched) Stage 3 diffed out.
	DeltaEntries int64 `json:"delta_entries"`
}

// ChurnGate is the acceptance check embedded in the result: at the
// lowest churn rate, incremental pushed bytes must not exceed MaxRatio
// of the full-rebuild pushed bytes.
type ChurnGate struct {
	Rate     int     `json:"rate"`
	MaxRatio float64 `json:"max_ratio"`
	Measured float64 `json:"measured_ratio"`
	Pass     bool    `json:"pass"`
}

// ChurnResult is the full suite output, serialized to
// results/bench_churn.json.
type ChurnResult struct {
	Seed      int64  `json:"seed"`
	Topology  string `json:"topology"`
	Generated string `json:"generated"`
	// InitialFullBytes is the first rollout's cost (every node's full
	// configuration) — the same in both modes, paid once.
	InitialFullBytes int64        `json:"initial_full_bytes"`
	Points           []ChurnPoint `json:"points"`
	Gate             ChurnGate    `json:"gate"`
}

// RunChurnBench runs the churn grid: for every rate, the same mutation
// sequence through the full-rebuild and the incremental pipeline.
func RunChurnBench(cfg ChurnConfig) (*ChurnResult, error) {
	cfg.defaults()
	res := &ChurnResult{Seed: cfg.Seed, Topology: cfg.Topology}
	for _, rate := range cfg.Rates {
		for _, mode := range []string{"full", "incremental"} {
			pt, initBytes, err := runChurnMode(cfg, rate, mode)
			if err != nil {
				return nil, fmt.Errorf("churn rate %d mode %s: %w", rate, mode, err)
			}
			res.InitialFullBytes = initBytes
			res.Points = append(res.Points, *pt)
		}
	}
	gateRate := cfg.Rates[0]
	res.Gate = ChurnGate{Rate: gateRate, MaxRatio: 0.5}
	var full, incr int64
	for _, p := range res.Points {
		if p.Rate != gateRate {
			continue
		}
		if p.Mode == "full" {
			full = p.PushedBytes
		} else {
			incr = p.PushedBytes
		}
	}
	if full > 0 {
		res.Gate.Measured = float64(incr) / float64(full)
	}
	res.Gate.Pass = full > 0 && res.Gate.Measured <= res.Gate.MaxRatio
	return res, nil
}

// runChurnMode replays one churn sequence through one pipeline mode.
func runChurnMode(cfg ChurnConfig, rate int, mode string) (*ChurnPoint, int64, error) {
	bed, err := NewBed(Config{
		Topology:         cfg.Topology,
		Seed:             cfg.Seed,
		PoliciesPerClass: cfg.PoliciesPerClass,
	})
	if err != nil {
		return nil, 0, err
	}
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        bed.Cfg.K,
	})
	threshold := 0.0 // incremental: the default dirty threshold
	if mode == "full" {
		threshold = -1 // scoped solves disabled: rebuild every step
	}
	pipe := ctl.NewPipeline(controller.PipelineOptions{DirtyThreshold: threshold})
	// The mutation rng depends only on (seed, rate), so both modes see
	// the identical churn sequence.
	mrng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(rate)))

	demands := bed.GenerateDemands(cfg.DemandTarget)
	meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)
	upd, err := pipe.Recompute(meas)
	if err != nil {
		return nil, 0, err
	}
	initBytes, err := fullPlanBytes(bed.Dep, upd.Plan)
	if err != nil {
		return nil, 0, err
	}

	pt := &ChurnPoint{Rate: rate, Mode: mode, Steps: cfg.Steps}
	down := make(map[topo.NodeID]bool)
	var lats []float64
	var dirtySum float64
	for step := 0; step < cfg.Steps; step++ {
		for ev := 0; ev < rate; ev++ {
			if err := churnMutate(bed, ctl, pipe, mrng, down, &demands, cfg.DemandTarget); err != nil {
				return nil, 0, err
			}
		}
		meas = controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)
		t0 := time.Now() //vet:ignore simdeterminism -- solve latency is a wall-clock host measurement, reported ungated; the byte gate is clock-free
		upd, err = pipe.Recompute(meas)
		if err != nil {
			return nil, 0, err
		}
		lats = append(lats, float64(time.Since(t0).Microseconds())) //vet:ignore simdeterminism -- see t0: ungated wall-clock latency only

		if upd.Stats.Solved {
			if upd.Stats.FullSolve {
				pt.FullSolves++
			} else {
				pt.ScopedSolves++
			}
		}
		if upd.Stats.Instances > 0 {
			dirtySum += float64(upd.Stats.Dirty) / float64(upd.Stats.Instances)
		}
		pt.DeltaEntries += int64(upd.Stats.Delta.Total())

		var stepBytes int64
		if mode == "full" {
			stepBytes, err = fullPlanBytes(bed.Dep, upd.Plan)
		} else {
			stepBytes, err = deltaBytes(upd.Deltas)
		}
		if err != nil {
			return nil, 0, err
		}
		pt.PushedBytes += stepBytes
	}
	sort.Float64s(lats)
	pt.SolveMeanUS = mean(lats)
	pt.SolveP50US = percentile(lats, 50)
	pt.SolveP99US = percentile(lats, 99)
	pt.AvgDirtyFrac = dirtySum / float64(cfg.Steps)
	return pt, initBytes, nil
}

// churnMutate applies one random mutation — the same mix as the
// equivalence property test. Inapplicable draws fall back to a demand
// shift, so every call mutates something.
func churnMutate(bed *Bed, ctl *controller.Controller, pipe *controller.Pipeline,
	rng *rand.Rand, down map[topo.NodeID]bool, demands *[]enforce.FlowDemand, target int) error {
	classes := []workload.Class{workload.ManyToOne, workload.OneToMany, workload.OneToOne}
	for attempt := 0; attempt < 10; attempt++ {
		switch rng.Intn(6) {
		case 0: // remove a policy
			all := bed.Table.All()
			if len(all) <= 3 {
				continue
			}
			p := all[rng.Intn(len(all))]
			bed.Table.Remove(p.ID)
			pipe.PolicyChanged(p.ID)
			return nil
		case 1: // add a policy (clone of a survivor, fresh ID and priority)
			all := bed.Table.All()
			p := all[rng.Intn(len(all))]
			np := bed.Table.Add(p.Desc, p.Actions)
			pipe.PolicyChanged(np.ID)
			return nil
		case 2: // edit a policy's action chain in place
			all := bed.Table.All()
			p := all[rng.Intn(len(all))]
			acts := classes[rng.Intn(len(classes))].Actions()
			bed.Table.Update(p.ID, p.Desc, acts)
			pipe.PolicyChanged(p.ID)
			return nil
		case 3: // fail a middlebox, keeping every function enforceable
			id, ok := churnFailableMB(bed.Dep, down, rng)
			if !ok {
				continue
			}
			if err := ctl.MarkFailed(id, true); err != nil {
				return err
			}
			down[id] = true
			pipe.NodeChanged(id)
			return nil
		case 4: // recover a failed middlebox
			if len(down) == 0 {
				continue
			}
			for _, id := range bed.Dep.MBNodes {
				if down[id] {
					if err := ctl.MarkFailed(id, false); err != nil {
						return err
					}
					delete(down, id)
					pipe.NodeChanged(id)
					return nil
				}
			}
		case 5: // measurement shift: fresh flow population
			*demands = bed.GenerateDemands(target)
			return nil
		}
	}
	*demands = bed.GenerateDemands(target)
	return nil
}

// churnFailableMB picks a live middlebox whose failure leaves every
// function it provides with at least one other live provider.
func churnFailableMB(dep *enforce.Deployment, down map[topo.NodeID]bool, rng *rand.Rand) (topo.NodeID, bool) {
	var eligible []topo.NodeID
	for _, id := range dep.MBNodes {
		if down[id] {
			continue
		}
		ok := true
		for _, f := range dep.FuncsOf(id) {
			live := 0
			for _, mb := range dep.Providers(f) {
				if !down[mb] && mb != id {
					live++
				}
			}
			if live == 0 {
				ok = false
				break
			}
		}
		if ok {
			eligible = append(eligible, id)
		}
	}
	if len(eligible) == 0 {
		return 0, false
	}
	return eligible[rng.Intn(len(eligible))], true
}

// fullPlanBytes is what a non-incremental rollout ships: every node's
// full configuration, as encoded management-channel envelopes.
func fullPlanBytes(dep *enforce.Deployment, plan *controller.Plan) (int64, error) {
	var total int64
	nodes := append(append([]topo.NodeID(nil), dep.ProxyNodes...), dep.MBNodes...)
	for _, id := range nodes {
		cfg := enforce.Config{
			Candidates: plan.Candidates[id],
			Policies:   plan.NodePolicies[id],
			Strategy:   enforce.LoadBalanced,
		}
		if w := plan.Weights[id]; len(w) > 0 {
			cfg.Weights = w
		}
		buf, err := mgmt.EncodeEnvelope(mgmt.TypeConfig, mgmt.ConfigToDTO(0, cfg))
		if err != nil {
			return 0, err
		}
		total += int64(len(buf))
	}
	return total, nil
}

// deltaBytes is what the incremental rollout ships: only the touched
// nodes' deltas.
func deltaBytes(deltas map[topo.NodeID]enforce.ConfigDelta) (int64, error) {
	var total int64
	for _, d := range deltas {
		buf, err := mgmt.EncodeEnvelope(mgmt.TypeDelta, mgmt.DeltaToDTO(0, d))
		if err != nil {
			return 0, err
		}
		total += int64(len(buf))
	}
	return total, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}

// WriteChurnJSON serializes the result (indented, trailing newline) —
// the schema consumed by CI's churn-smoke job.
func WriteChurnJSON(w io.Writer, res *ChurnResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ChurnMarkdown renders the grid for EXPERIMENTS.generated.md.
func ChurnMarkdown(res *ChurnResult) string {
	var b strings.Builder
	b.WriteString("| rate | mode | solve mean µs | p50 µs | p99 µs | pushed bytes | scoped | full | avg dirty |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "| %d | %s | %.0f | %.0f | %.0f | %d | %d | %d | %.2f |\n",
			p.Rate, p.Mode, p.SolveMeanUS, p.SolveP50US, p.SolveP99US,
			p.PushedBytes, p.ScopedSolves, p.FullSolves, p.AvgDirtyFrac)
	}
	fmt.Fprintf(&b, "\nInitial full rollout: %d bytes. Gate: rate-%d incremental/full byte ratio %.3f (need ≤ %.2f) — pass=%v\n",
		res.InitialFullBytes, res.Gate.Rate, res.Gate.Measured, res.Gate.MaxRatio, res.Gate.Pass)
	return b.String()
}
