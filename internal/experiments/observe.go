package experiments

import (
	"fmt"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/metrics"
	"sdme/internal/netaddr"
	"sdme/internal/ospf"
	"sdme/internal/policy"
	"sdme/internal/sim"
	"sdme/internal/topo"
)

// ObserveConfig parameterizes one observed simulation run: packets are
// actually pushed through the sim dataplane with the metrics registry
// and the runtime packet tracer attached, and every traced flow's
// runtime path is compared against the static plan (enforce.TraceFlow).
type ObserveConfig struct {
	// Strategy selects the next-hop selector under test.
	Strategy enforce.Strategy
	// Flows is how many distinct enforced flows to inject (default 50).
	Flows int
	// PacketsPerFlow is the packet count per flow (default 1 — with one
	// packet the HopProcess sequence is exactly the chain, so the
	// conformance predicate is SamePath; more packets interleave).
	PacketsPerFlow int
	// TraceOneIn is the tracer sampling rate (default 1: every flow).
	TraceOneIn uint64
	// SnapshotEveryUS > 0 takes periodic virtual-time registry snapshots.
	SnapshotEveryUS int64
	// SnapshotUntilUS bounds the snapshot schedule (default 2s virtual).
	SnapshotUntilUS int64
	// LabelSwitching enables §III-E during the run.
	LabelSwitching bool
}

func (c *ObserveConfig) fill() {
	if c.Flows == 0 {
		c.Flows = 50
	}
	if c.PacketsPerFlow == 0 {
		c.PacketsPerFlow = 1
	}
	if c.TraceOneIn == 0 {
		c.TraceOneIn = 1
	}
	if c.SnapshotUntilUS == 0 {
		c.SnapshotUntilUS = 2_000_000
	}
}

// TraceMismatch is one plan/runtime divergence found by an observed run.
type TraceMismatch struct {
	Flow    netaddr.FiveTuple
	Planned *enforce.Trace
	Runtime *enforce.Trace
}

func (m TraceMismatch) String() string {
	return fmt.Sprintf("flow %v: planned %d hops %v, runtime %d hops",
		m.Flow, len(m.Planned.Hops), m.Planned.Hops, len(m.Runtime.Hops))
}

// ObservedRun is the outcome of RunObserved.
type ObservedRun struct {
	Network  *sim.Network
	Registry *metrics.Registry
	Tracer   *enforce.RuntimeTracer
	Nodes    map[topo.NodeID]*enforce.Node
	// Flows are the injected enforced flows, in injection order.
	Flows []netaddr.FiveTuple
	// Planned maps each flow to its static plan trace.
	Planned map[netaddr.FiveTuple]*enforce.Trace
	// Mismatches lists flows whose runtime trace diverged from the plan
	// (empty on a conforming run).
	Mismatches []TraceMismatch
	// Lambda is the LB optimum when Strategy was LoadBalanced.
	Lambda float64
}

// enforcedFlows draws flows from the bed's workload generator and keeps
// those with a non-permit chain free of WP. Web-proxy chains are
// excluded by design: a cache hit legitimately terminates the packet at
// the proxy, so the runtime path of the SECOND flow to a popular object
// is shorter than the static plan — a feature, not a conformance bug.
func (b *Bed) enforcedFlows(want int) []netaddr.FiveTuple {
	var out []netaddr.FiveTuple
	seen := make(map[netaddr.FiveTuple]bool)
	for tries := 0; len(out) < want && tries < 40; tries++ {
		for _, d := range b.GenerateDemands(want * 2000) {
			ft := d.Tuple
			if seen[ft] {
				continue
			}
			seen[ft] = true
			p := b.Table.Match(ft)
			if p == nil || p.Actions.IsPermit() {
				continue
			}
			hasWP := false
			for _, f := range p.Actions {
				if f == policy.FuncWP {
					hasWP = true
					break
				}
			}
			if hasWP {
				continue
			}
			out = append(out, ft)
			if len(out) == want {
				break
			}
		}
	}
	return out
}

// RunObserved builds the bed's simulation with the full observability
// layer attached, injects enforced flows, and differentially checks
// every sampled runtime trace against the static plan.
func (b *Bed) RunObserved(cfg ObserveConfig) (*ObservedRun, error) {
	cfg.fill()
	ctl := controller.New(b.Dep, b.AllPairs, b.Table, controller.Options{
		Strategy:       cfg.Strategy,
		K:              b.Cfg.K,
		HashSeed:       uint64(b.Cfg.Seed)*2654435761 + uint64(cfg.Strategy),
		LabelSwitching: cfg.LabelSwitching,
		UseTrie:        b.Cfg.UseTrie,
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		return nil, err
	}

	dom := ospf.NewDomain(b.Graph)
	dom.Converge()
	nw := sim.New(b.Graph, dom, b.Dep, nodes)

	reg := nw.NewRegistry()
	nw.AttachMetrics(reg)
	ctl.SetMetrics(reg, nw.Engine.Now)

	run := &ObservedRun{
		Network:  nw,
		Registry: reg,
		Nodes:    nodes,
		Planned:  make(map[netaddr.FiveTuple]*enforce.Trace),
	}

	run.Flows = b.enforcedFlows(cfg.Flows)
	if len(run.Flows) < cfg.Flows {
		return nil, fmt.Errorf("experiments: only %d of %d enforced flows available", len(run.Flows), cfg.Flows)
	}

	// LB needs a measurement matrix; derive it from the injected flows so
	// the installed weights describe exactly the traffic that will run.
	if cfg.Strategy == enforce.LoadBalanced {
		demands := make([]enforce.FlowDemand, len(run.Flows))
		for i, ft := range run.Flows {
			demands[i] = enforce.FlowDemand{Tuple: ft, Packets: int64(cfg.PacketsPerFlow)}
		}
		meas := controller.MeasurementsFromFlows(b.Dep, b.Table, demands)
		sol, err := ctl.SolveLB(meas)
		if err != nil {
			return nil, err
		}
		controller.ApplyWeights(nodes, sol)
		run.Lambda = sol.Lambda
	}

	capacity := cfg.Flows*cfg.PacketsPerFlow*8 + 64
	run.Tracer = enforce.NewRuntimeTracer(capacity, cfg.TraceOneIn, uint64(b.Cfg.Seed))
	nw.SetTracer(run.Tracer)
	if cfg.SnapshotEveryUS > 0 {
		nw.SnapshotEvery(cfg.SnapshotEveryUS, cfg.SnapshotUntilUS)
	}

	// The static plan, computed with the exact selector state the packets
	// will run under.
	for _, ft := range run.Flows {
		tr, err := enforce.TraceFlow(nodes, b.Dep, b.AllPairs, ft)
		if err != nil {
			return nil, fmt.Errorf("experiments: plan trace %v: %w", ft, err)
		}
		run.Planned[ft] = tr
	}

	for i, ft := range run.Flows {
		// Staggered starts keep per-flow packet trains ordered without
		// serializing the whole run.
		if err := nw.InjectFlow(ft, cfg.PacketsPerFlow, 64, int64(i)*10, 100); err != nil {
			return nil, err
		}
	}
	nw.Run(0)

	for _, ft := range run.Flows {
		if !run.Tracer.Sampled(ft) {
			continue
		}
		rt := run.Tracer.RuntimeTrace(ft)
		planned := run.Planned[ft]
		want := &enforce.Trace{Flow: ft}
		for rep := 0; rep < cfg.PacketsPerFlow; rep++ {
			want.Hops = append(want.Hops, planned.Hops...)
		}
		if !want.SamePath(rt) {
			run.Mismatches = append(run.Mismatches, TraceMismatch{Flow: ft, Planned: planned, Runtime: rt})
		}
	}
	return run, nil
}
