package experiments

// Survivability experiments for the three-layer failover/recovery
// subsystem:
//
//   - RunSimFailover / RunLiveFailover measure LOCAL fast failover: a
//     middlebox dies and flows must resume via the pre-installed backup
//     candidates (M_x^e ranks beyond the primary) with ZERO controller
//     round-trips — the management push counters stay flat across the
//     failover window, because the dataplane's liveness view diverts
//     selection by itself and the purge of pinned soft state forces
//     re-establishment through a live provider.
//
//   - RunSimRestart / RunLiveRestart measure controller crash recovery:
//     the controller journals its mutable planning state (journal.go),
//     is killed, and a restarted controller replays the journal, resumes
//     at the next epoch, and re-derives a byte-identical exported plan.
//
// Both run on both substrates so the discrete-event results (exact,
// deterministic) anchor the live results (real sockets, wall clocks).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/mgmt"
	"sdme/internal/netaddr"
	"sdme/internal/ospf"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/sim"
	"sdme/internal/topo"
)

// FailoverConfig parameterizes one fast-failover run.
type FailoverConfig struct {
	// Seed drives topology construction.
	Seed int64
	// KillUS is when the victim middlebox dies (default 30ms).
	KillUS int64
	// Flows, PacketsPerFlow, GapUS size the workload (defaults 40×200,
	// 500µs — the recovery experiments' workload).
	Flows, PacketsPerFlow int
	GapUS                 int64
}

func (c *FailoverConfig) fill() {
	if c.KillUS == 0 {
		c.KillUS = 30_000
	}
	if c.Flows == 0 {
		c.Flows = 40
	}
	if c.PacketsPerFlow == 0 {
		c.PacketsPerFlow = 200
	}
	if c.GapUS == 0 {
		c.GapUS = 500
	}
}

// FailoverResult reports one substrate's fast-failover run.
type FailoverResult struct {
	// Substrate is "sim" or "live".
	Substrate string
	Seed      int64
	// Victim is the killed middlebox.
	Victim topo.NodeID
	// Injected / Delivered count workload packets.
	Injected, Delivered int64
	// DeliveredPreKill / DeliveredPostKill split deliveries around the
	// kill instant; Resumed is DeliveredPostKill > 0.
	DeliveredPreKill, DeliveredPostKill int64
	Resumed                             bool
	// Failovers counts dataplane diversions to a backup candidate;
	// Invalidated counts purged pinned soft-state entries.
	Failovers, Invalidated int64
	// PushesDuring counts management config pushes issued between the
	// kill and the end of the run — the zero-round-trip claim (live
	// substrate; the sim substrate has no management channel).
	PushesDuring int64
}

// failoverVictim picks the middlebox whose death exercises failover the
// hardest: the primary (rank-0) firewall candidate of subnet 1's proxy.
func failoverVictim(b *recoveryBed) (topo.NodeID, error) {
	proxy, ok := b.dep.ProxyFor(1)
	if !ok {
		return topo.InvalidNode, fmt.Errorf("experiments: no proxy for subnet 1")
	}
	cands := b.nodes[proxy].Config().Candidates[policy.FuncFW]
	if len(cands) < 2 {
		return topo.InvalidNode, fmt.Errorf("experiments: proxy %v has %d firewall candidates, need a backup", proxy, len(cands))
	}
	return cands[0], nil
}

// RunSimFailover kills the primary firewall mid-run with NO controller
// reaction scheduled: every delivery after the kill rode the
// pre-installed backup candidates through the nodes' local liveness
// view. Virtual time makes the pre/post split exact.
func RunSimFailover(cfg FailoverConfig) (*FailoverResult, error) {
	cfg.fill()
	bed, err := newRecoveryBed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	dom := ospf.NewDomain(bed.g)
	dom.Converge()
	nw := sim.New(bed.g, dom, bed.dep, bed.nodes)

	for i := 0; i < cfg.Flows; i++ {
		if err := nw.InjectFlow(recoveryFlow(i), cfg.PacketsPerFlow, 256, int64(i)*97, cfg.GapUS); err != nil {
			return nil, err
		}
	}
	victim, err := failoverVictim(bed)
	if err != nil {
		return nil, err
	}
	res := &FailoverResult{Substrate: "sim", Seed: cfg.Seed, Victim: victim}
	nw.Engine.After(cfg.KillUS, func() {
		res.DeliveredPreKill = nw.Stats().Delivered
		nw.SetNodeDown(victim, true)
	})
	nw.Run(0)

	st := nw.Stats()
	res.Injected = st.PacketsInjected
	res.Delivered = st.Delivered
	res.DeliveredPostKill = st.Delivered - res.DeliveredPreKill
	res.Resumed = res.DeliveredPostKill > 0
	for _, n := range bed.nodes {
		res.Failovers += n.Counters.Failovers
		res.Invalidated += n.Counters.Invalidated
	}
	return res, nil
}

// RunLiveFailover is the same scenario over real sockets: the health
// monitor feeds the per-node liveness view (Runtime.SetProviderDown) and
// nothing touches the controller or the management channel — the server's
// push counters are snapshotted at the kill and must not move.
func RunLiveFailover(cfg FailoverConfig) (*FailoverResult, error) {
	cfg.fill()
	bed, err := newRecoveryBed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	rt := live.NewRuntime()
	defer rt.Close()

	devices := make(map[topo.NodeID]*live.Device, len(bed.nodes))
	var nodeIDs []topo.NodeID
	for id, n := range bed.nodes {
		dev, err := rt.AddDevice(n)
		if err != nil {
			return nil, err
		}
		devices[id] = dev
		nodeIDs = append(nodeIDs, id)
	}
	nodeIDs = topo.SortedIDs(nodeIDs)
	var sinkAddrs []netaddr.Addr
	for i := 0; i < cfg.Flows; i++ {
		sinkAddrs = append(sinkAddrs, recoveryFlow(i).Dst)
	}
	sink, err := rt.AddSink(sinkAddrs...)
	if err != nil {
		return nil, err
	}

	reg := rt.NewRegistry()
	server, err := mgmt.NewServer("127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	defer server.Close()
	server.SetMetrics(reg)
	pushes := reg.Counter(mgmt.MetricPushes)
	attempts := reg.Counter(mgmt.MetricPushAttempts)

	agents := make(map[topo.NodeID]*mgmt.Agent, len(nodeIDs))
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	for _, id := range nodeIDs {
		agent, err := mgmt.NewAgentWith(devices[id], server.Addr(), mgmt.AgentOptions{
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 100 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		agents[id] = agent
	}
	if !server.WaitConnected(5*time.Second, nodeIDs...) {
		return nil, fmt.Errorf("experiments: agents did not connect: %v", server.Connected())
	}
	pushPol := mgmt.RetryPolicy{Attempts: 4, PerAttempt: 2 * time.Second, Backoff: 25 * time.Millisecond}
	for _, id := range nodeIDs {
		if err := server.PushRetry(id, mgmt.ConfigToDTO(0, bed.nodes[id].Config()), pushPol); err != nil {
			return nil, fmt.Errorf("experiments: initial push to %v: %w", id, err)
		}
	}

	// The monitor feeds ONLY the dataplane liveness view. No repair, no
	// re-push: recovery is the dataplane's own job here.
	mon := rt.NewHealthMonitor(10*time.Millisecond, 2,
		func(id topo.NodeID) { rt.SetProviderDown(id, true) },
		func(id topo.NodeID) { rt.SetProviderDown(id, false) })
	mon.Start()
	defer mon.Stop()

	victim, err := failoverVictim(bed)
	if err != nil {
		return nil, err
	}
	res := &FailoverResult{Substrate: "live", Seed: cfg.Seed, Victim: victim}

	var injected atomic.Int64
	stopTraffic := make(chan struct{})
	var trafficWG sync.WaitGroup
	trafficWG.Add(1)
	go func() {
		defer trafficWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopTraffic:
				return
			default:
			}
			ft := recoveryFlow(i % cfg.Flows)
			srcSub := bed.dep.SubnetIndexOf(ft.Src)
			proxyID, ok := bed.dep.ProxyFor(srcSub)
			if !ok {
				return
			}
			if err := rt.Inject(bed.dep.AddrOf(proxyID), packet.New(ft, 64)); err != nil {
				return
			}
			injected.Add(1)
			time.Sleep(time.Duration(cfg.GapUS) * time.Microsecond)
		}
	}()

	time.Sleep(time.Duration(cfg.KillUS) * time.Microsecond)
	res.DeliveredPreKill = int64(sink.Received())
	pushesAtKill := pushes.Value() + attempts.Value()
	devices[victim].Stop()

	// Wait for the monitor to report the death and the dataplane to
	// divert: at least one failover and post-kill deliveries.
	failovers := func() int64 {
		var total int64
		for _, dev := range devices {
			total += dev.Counters().Failovers
		}
		return total
	}
	live.WaitUntil(10*time.Second, func() bool {
		return failovers() > 0 && int64(sink.Received()) > res.DeliveredPreKill+int64(cfg.Flows)
	})
	close(stopTraffic)
	trafficWG.Wait()
	time.Sleep(50 * time.Millisecond) // drain in-flight packets

	res.Injected = injected.Load()
	res.Delivered = int64(sink.Received())
	res.DeliveredPostKill = res.Delivered - res.DeliveredPreKill
	res.Resumed = res.DeliveredPostKill > 0
	res.Failovers = failovers()
	for _, dev := range devices {
		res.Invalidated += dev.Counters().Invalidated
	}
	res.PushesDuring = pushes.Value() + attempts.Value() - pushesAtKill
	return res, nil
}

// RestartConfig parameterizes one controller kill/restart run.
type RestartConfig struct {
	// Seed drives topology construction.
	Seed int64
	// JournalPath overrides where the journal lives (default: a fresh
	// file in the OS temp dir, removed afterwards).
	JournalPath string
}

// RestartResult reports one substrate's kill/restart run.
type RestartResult struct {
	// Substrate is "sim" or "live".
	Substrate string
	Seed      int64
	// Records counts intact journal records replayed; Torn reports a
	// truncated tail (none expected in a clean kill).
	Records int
	Torn    bool
	// EpochBefore is the epoch high-water the journal recorded before the
	// kill; EpochAfter is the epoch the restarted controller's first
	// re-push landed on. Resumed means EpochAfter > EpochBefore (the
	// restart minted the NEXT epoch, it did not reuse or regress one).
	// The sim substrate has no management channel, so both stay zero and
	// Resumed is judged by ExportIdentical alone.
	EpochBefore, EpochAfter uint64
	Resumed                 bool
	// ExportIdentical: the restarted controller's exported plan is
	// byte-identical to the pre-kill export.
	ExportIdentical bool
	// Converged: every agent acked the restarted controller's epoch
	// (live substrate; sim is vacuously true).
	Converged bool
	// Reconnects counts agent re-dials to the restarted server (live).
	Reconnects int64
}

// newRestartBed is the recovery bed re-planned for load balancing, so
// the restart story has a solved weight plan to carry across the crash.
func newRestartBed(seed int64) (*recoveryBed, error) {
	bed, err := newRecoveryBed(seed)
	if err != nil {
		return nil, err
	}
	// newRecoveryBed builds an HP controller; swap in an LB one over the
	// same deployment.
	bed.ctl = controller.New(bed.dep, bed.ap, bed.tbl, restartOpts(seed))
	bed.nodes, err = bed.ctl.BuildNodes()
	if err != nil {
		return nil, err
	}
	return bed, nil
}

// restartDemands is the synthetic measurement workload the LB solve runs
// on — fixed, so the pre-kill and post-restart plans have the same input.
func restartDemands() []enforce.FlowDemand {
	var demands []enforce.FlowDemand
	for i := 0; i < 40; i++ {
		demands = append(demands, enforce.FlowDemand{Tuple: recoveryFlow(i), Packets: int64(100 + i)})
	}
	return demands
}

// restartOpts mirrors newRestartBed's controller options; the restarted
// controller must be built with the SAME static inputs or the journal's
// fingerprint check refuses the replay.
func restartOpts(seed int64) controller.Options {
	return controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
		HashSeed: uint64(seed),
		Verify:   true,
	}
}

// exportBytes renders the controller's current plan intent: a fresh
// BuildNodes (current candidates and failed set) with the weight plan
// applied, exported as indented JSON. Both the pre-kill and post-restart
// exports go through this one path, so byte equality means state
// equality.
func exportBytes(ctl *controller.Controller, sol *controller.LBSolution) ([]byte, error) {
	nodes, err := ctl.BuildNodes()
	if err != nil {
		return nil, err
	}
	if sol != nil {
		controller.ApplyWeights(nodes, sol)
	}
	var buf bytes.Buffer
	if err := ctl.ExportConfig(nodes).WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// journalPath resolves the configured path or a fresh temp file.
func (c *RestartConfig) journalPath(substrate string) (string, func(), error) {
	if c.JournalPath != "" {
		return c.JournalPath, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "sdme-journal-")
	if err != nil {
		return "", nil, err
	}
	return filepath.Join(dir, substrate+".wal"), func() { _ = os.RemoveAll(dir) }, nil
}

// RunSimRestart exercises the journal without a management channel:
// solve, fail a middlebox, export; kill; replay into a fresh controller
// and compare exports byte for byte.
func RunSimRestart(cfg RestartConfig) (*RestartResult, error) {
	path, cleanup, err := cfg.journalPath("sim")
	if err != nil {
		return nil, err
	}
	defer cleanup()
	bed, err := newRestartBed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	jrnl, err := controller.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	if err := bed.ctl.SetJournal(jrnl); err != nil {
		return nil, err
	}
	// Solve WITH the journal attached so the weight plan is recorded,
	// then take a failure — both mutations the restart must reproduce.
	sol, err := bed.ctl.SolveLB(controller.MeasurementsFromFlows(bed.dep, bed.tbl, restartDemands()))
	if err != nil {
		return nil, err
	}
	if err := bed.ctl.MarkFailed(bed.fw[0], true); err != nil {
		return nil, err
	}
	before, err := exportBytes(bed.ctl, sol)
	if err != nil {
		return nil, err
	}
	if err := jrnl.Close(); err != nil { // the "kill": no state survives but the file
		return nil, err
	}

	st, err := controller.ReplayJournal(path)
	if err != nil {
		return nil, err
	}
	ctl2 := controller.New(bed.dep, bed.ap, bed.tbl, restartOpts(cfg.Seed))
	if err := ctl2.RestoreFromJournal(st); err != nil {
		return nil, err
	}
	after, err := exportBytes(ctl2, st.RestoredSolution())
	if err != nil {
		return nil, err
	}
	res := &RestartResult{
		Substrate: "sim", Seed: cfg.Seed,
		Records: st.Records, Torn: st.Torn,
		ExportIdentical: bytes.Equal(before, after),
	}
	res.Resumed = res.ExportIdentical
	res.Converged = true // no channel to converge; the export is the proof
	return res, nil
}

// RunLiveRestart kills the controller AND its management server under
// live agents: the restarted pair replays the journal, resumes the epoch
// sequence past the journal's high-water, re-pushes idempotently through
// the reconnecting agents, and must export the identical plan.
func RunLiveRestart(cfg RestartConfig) (*RestartResult, error) {
	path, cleanup, err := cfg.journalPath("live")
	if err != nil {
		return nil, err
	}
	defer cleanup()
	bed, err := newRestartBed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	jrnl, err := controller.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	if err := bed.ctl.SetJournal(jrnl); err != nil {
		return nil, err
	}

	rt := live.NewRuntime()
	defer rt.Close()
	devices := make(map[topo.NodeID]*live.Device, len(bed.nodes))
	var nodeIDs []topo.NodeID
	for id, n := range bed.nodes {
		dev, err := rt.AddDevice(n)
		if err != nil {
			return nil, err
		}
		devices[id] = dev
		nodeIDs = append(nodeIDs, id)
	}
	nodeIDs = topo.SortedIDs(nodeIDs)

	server, err := mgmt.NewServer("127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	addr := server.Addr()
	agents := make(map[topo.NodeID]*mgmt.Agent, len(nodeIDs))
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	for _, id := range nodeIDs {
		agent, err := mgmt.NewAgentWith(devices[id], addr, mgmt.AgentOptions{
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 100 * time.Millisecond,
		})
		if err != nil {
			server.Close()
			return nil, err
		}
		agents[id] = agent
	}
	if !server.WaitConnected(5*time.Second, nodeIDs...) {
		server.Close()
		return nil, fmt.Errorf("experiments: agents did not connect: %v", server.Connected())
	}

	// Pre-kill history: solve (journals weights), fail a middlebox
	// (journals the failed set), push the resulting plan, log the epoch.
	pushPol := mgmt.RetryPolicy{Attempts: 4, PerAttempt: 2 * time.Second, Backoff: 25 * time.Millisecond}
	sol, err := bed.ctl.SolveLB(controller.MeasurementsFromFlows(bed.dep, bed.tbl, restartDemands()))
	if err != nil {
		server.Close()
		return nil, err
	}
	if err := bed.ctl.MarkFailed(bed.fw[0], true); err != nil {
		server.Close()
		return nil, err
	}
	planNodes, err := bed.ctl.BuildNodes()
	if err != nil {
		server.Close()
		return nil, err
	}
	controller.ApplyWeights(planNodes, sol)
	for _, id := range nodeIDs {
		if err := server.PushRetry(id, mgmt.ConfigToDTO(0, planNodes[id].Config()), pushPol); err != nil {
			server.Close()
			return nil, fmt.Errorf("experiments: pre-kill push to %v: %w", id, err)
		}
	}
	if err := jrnl.LogEpoch(server.Epoch(), 0); err != nil {
		server.Close()
		return nil, err
	}
	before, err := exportBytes(bed.ctl, sol)
	if err != nil {
		server.Close()
		return nil, err
	}

	// The kill: server gone, journal handle gone, controller forgotten.
	server.Close()
	if err := jrnl.Close(); err != nil {
		return nil, err
	}

	// The restart: replay, restore, resume the epoch sequence, re-listen
	// on the same address so the surviving agents' reconnect loops find
	// the new server, and re-push idempotently.
	st, err := controller.ReplayJournal(path)
	if err != nil {
		return nil, err
	}
	ctl2 := controller.New(bed.dep, bed.ap, bed.tbl, restartOpts(cfg.Seed))
	if err := ctl2.RestoreFromJournal(st); err != nil {
		return nil, err
	}
	jrnl2, err := controller.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	defer jrnl2.Close() //nolint:errcheck // best-effort on the result path
	if err := ctl2.SetJournal(jrnl2); err != nil {
		return nil, err
	}
	var server2 *mgmt.Server
	// The old listener's port can linger briefly; retry the bind.
	for i := 0; i < 50; i++ {
		server2, err = mgmt.NewServer(addr, nil)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: rebind %s: %w", addr, err)
	}
	defer server2.Close()
	server2.ResumeEpoch(st.Epoch)
	if !server2.WaitConnected(10*time.Second, nodeIDs...) {
		return nil, fmt.Errorf("experiments: agents did not rejoin: %v", server2.Connected())
	}

	sol2 := st.RestoredSolution()
	planNodes2, err := ctl2.BuildNodes()
	if err != nil {
		return nil, err
	}
	if sol2 != nil {
		controller.ApplyWeights(planNodes2, sol2)
	}
	for _, id := range nodeIDs {
		if err := server2.PushRetry(id, mgmt.ConfigToDTO(0, planNodes2[id].Config()), pushPol); err != nil {
			// An agent mid-reconnect can miss one attempt; the retry policy
			// absorbs transient failures, so surface anything that survives.
			var refused *mgmt.RefusedError
			if !errors.As(err, &refused) {
				return nil, fmt.Errorf("experiments: post-restart push to %v: %w", id, err)
			}
		}
	}
	if err := jrnl2.LogEpoch(server2.Epoch(), 0); err != nil {
		return nil, err
	}
	after, err := exportBytes(ctl2, sol2)
	if err != nil {
		return nil, err
	}

	res := &RestartResult{
		Substrate: "live", Seed: cfg.Seed,
		Records: st.Records, Torn: st.Torn,
		EpochBefore:     st.Epoch,
		EpochAfter:      server2.Epoch(),
		ExportIdentical: bytes.Equal(before, after),
		Converged:       server2.Converged(nodeIDs...),
	}
	res.Resumed = res.EpochAfter > res.EpochBefore
	for _, a := range agents {
		res.Reconnects += a.Stats().Reconnects
	}
	return res, nil
}

// RunFailoverExperiments runs fast-failover on both substrates.
func RunFailoverExperiments(cfg FailoverConfig) ([]FailoverResult, error) {
	simRes, err := RunSimFailover(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: sim failover: %w", err)
	}
	liveRes, err := RunLiveFailover(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: live failover: %w", err)
	}
	return []FailoverResult{*simRes, *liveRes}, nil
}

// RunRestartExperiments runs kill/restart recovery on both substrates.
func RunRestartExperiments(cfg RestartConfig) ([]RestartResult, error) {
	simRes, err := RunSimRestart(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: sim restart: %w", err)
	}
	liveRes, err := RunLiveRestart(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: live restart: %w", err)
	}
	return []RestartResult{*simRes, *liveRes}, nil
}

// WriteSurvivabilityCSV emits failover and restart results in one file
// (results/failover.csv), one row per substrate per experiment; columns
// not applicable to an experiment are left empty.
func WriteSurvivabilityCSV(w io.Writer, fo []FailoverResult, rs []RestartResult) error {
	if _, err := fmt.Fprintln(w, "experiment,substrate,seed,injected,delivered,delivered_post_kill,failovers,invalidated,pushes_during,resumed,records,epoch_before,epoch_after,export_identical,converged"); err != nil {
		return err
	}
	for _, r := range fo {
		if _, err := fmt.Fprintf(w, "failover,%s,%d,%d,%d,%d,%d,%d,%d,%t,,,,,\n",
			r.Substrate, r.Seed, r.Injected, r.Delivered, r.DeliveredPostKill,
			r.Failovers, r.Invalidated, r.PushesDuring, r.Resumed); err != nil {
			return err
		}
	}
	for _, r := range rs {
		if _, err := fmt.Fprintf(w, "restart,%s,%d,,,,,,,%t,%d,%d,%d,%t,%t\n",
			r.Substrate, r.Seed, r.Resumed, r.Records, r.EpochBefore, r.EpochAfter,
			r.ExportIdentical, r.Converged); err != nil {
			return err
		}
	}
	return nil
}

// SurvivabilityMarkdown renders both experiment families as tables.
func SurvivabilityMarkdown(fo []FailoverResult, rs []RestartResult) string {
	var b strings.Builder
	b.WriteString("| substrate | injected | delivered | post-kill | failovers | purged | pushes during | resumed |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---|\n")
	for _, r := range fo {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %t |\n",
			r.Substrate, r.Injected, r.Delivered, r.DeliveredPostKill,
			r.Failovers, r.Invalidated, r.PushesDuring, r.Resumed)
	}
	b.WriteString("\n| substrate | journal records | epoch before → after | export identical | converged |\n")
	b.WriteString("|---|---:|---|---|---|\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "| %s | %d | %d → %d | %t | %t |\n",
			r.Substrate, r.Records, r.EpochBefore, r.EpochAfter,
			r.ExportIdentical, r.Converged)
	}
	return b.String()
}
