package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sdme/internal/enforce"
	"sdme/internal/policy"
)

// smallCfg keeps unit tests fast: reduced traffic, default topologies.
func smallCfg(topology string) Config {
	return Config{
		Topology:         topology,
		Seed:             7,
		PoliciesPerClass: 3,
		TrafficPoints:    []int{150000, 300000},
	}
}

func TestFigureShapeOnCampus(t *testing.T) {
	res, err := RunMaxLoadFigure(smallCfg("campus"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology != "campus" || len(res.Points) != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	for i, pt := range res.Points {
		if pt.ActualTraffic < pt.TargetTraffic {
			t.Errorf("point %d: actual %d < target %d", i, pt.ActualTraffic, pt.TargetTraffic)
		}
		for _, f := range Funcs {
			hp := pt.MaxLoad[f][enforce.HotPotato]
			lb := pt.MaxLoad[f][enforce.LoadBalanced]
			if hp <= 0 {
				t.Errorf("point %d %v: HP max load %d", i, f, hp)
			}
			// The paper's core claim, at every point and function.
			if lb > hp {
				t.Errorf("point %d %v: LB max %d > HP max %d", i, f, lb, hp)
			}
		}
		if pt.Lambda <= 0 {
			t.Errorf("point %d: lambda %v", i, pt.Lambda)
		}
	}
	// Linear growth: doubling traffic roughly doubles every max load
	// (some slack for power-law sampling noise at this reduced scale).
	for _, f := range Funcs {
		for _, s := range Strategies {
			a := float64(res.Points[0].MaxLoad[f][s])
			b := float64(res.Points[1].MaxLoad[f][s])
			if b < a*1.4 || b > a*2.8 {
				t.Errorf("%v/%v growth %v -> %v not increasing plausibly", f, s, a, b)
			}
		}
	}
}

func TestRandBetweenHPAndLBOnAverage(t *testing.T) {
	// Rand's max load typically sits between LB and HP; assert the
	// weaker, robust property: LB <= Rand on the bottleneck function
	// (IDS, which every flow crosses).
	res, err := RunMaxLoadFigure(smallCfg("campus"))
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range res.Points {
		lb := pt.MaxLoad[policy.FuncIDS][enforce.LoadBalanced]
		rd := pt.MaxLoad[policy.FuncIDS][enforce.Random]
		if lb > rd+rd/10 {
			t.Errorf("point %d: LB IDS max %d well above Rand %d", i, lb, rd)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	rows, err := RunLoadDistributionTable(smallCfg("campus"), 150000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 functions × {max, min}
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		max, min := rows[i], rows[i+1]
		if !max.IsMax || min.IsMax || max.Func != min.Func {
			t.Fatalf("row pairing broken at %d: %+v %+v", i, max, min)
		}
		for _, s := range Strategies {
			if max.ByStrat[s] < min.ByStrat[s] {
				t.Errorf("%v/%v: max %d < min %d", max.Func, s, max.ByStrat[s], min.ByStrat[s])
			}
		}
		// LB's spread (max-min) never exceeds HP's on any function: the
		// Table III story.
		hpSpread := max.ByStrat[enforce.HotPotato] - min.ByStrat[enforce.HotPotato]
		lbSpread := max.ByStrat[enforce.LoadBalanced] - min.ByStrat[enforce.LoadBalanced]
		if lbSpread > hpSpread {
			t.Errorf("%v: LB spread %d > HP spread %d", max.Func, lbSpread, hpSpread)
		}
	}
}

func TestWaxmanFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("waxman bed is slow for -short")
	}
	cfg := smallCfg("waxman")
	cfg.TrafficPoints = []int{100000}
	res, err := RunMaxLoadFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Points[0]
	for _, f := range Funcs {
		if pt.MaxLoad[f][enforce.LoadBalanced] > pt.MaxLoad[f][enforce.HotPotato] {
			t.Errorf("waxman %v: LB max above HP max", f)
		}
	}
}

func TestUnknownTopology(t *testing.T) {
	if _, err := NewBed(Config{Topology: "torus"}); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *FigureResult {
		cfg := smallCfg("campus")
		cfg.TrafficPoints = []int{100000}
		res, err := RunMaxLoadFigure(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for _, f := range Funcs {
		for _, s := range Strategies {
			if a.Points[0].MaxLoad[f][s] != b.Points[0].MaxLoad[f][s] {
				t.Fatalf("non-deterministic result for %v/%v", f, s)
			}
		}
	}
}

func TestCandidateKAblation(t *testing.T) {
	cfg := smallCfg("campus")
	points, err := RunCandidateKAblation(cfg, 100000, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// λ must be monotonically non-increasing in k: more candidates can
	// only help the optimum.
	for i := 1; i < len(points); i++ {
		if points[i].Lambda > points[i-1].Lambda+1e-6 {
			t.Errorf("λ increased with k: %v", points)
		}
	}
	// k=1 is hot-potato: λ equals the realized IDS max only if IDS is
	// the argmax overall; assert the weaker invariant λ > 0.
	if points[0].Lambda <= 0 {
		t.Error("λ at k=1 missing")
	}
}

func TestStateAblation(t *testing.T) {
	off, err := RunStateAblation(3, 20, 4, 1480, false)
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunStateAblation(3, 20, 4, 1480, true)
	if err != nil {
		t.Fatal(err)
	}
	if off.Delivered == 0 || on.Delivered == 0 {
		t.Fatalf("no deliveries: off=%+v on=%+v", off, on)
	}
	if on.FragmentsCreated >= off.FragmentsCreated {
		t.Errorf("label switching should cut fragmentation: %d vs %d",
			on.FragmentsCreated, off.FragmentsCreated)
	}
	if on.LabelTx == 0 || off.LabelTx != 0 {
		t.Errorf("label usage wrong: on=%d off=%d", on.LabelTx, off.LabelTx)
	}
	if on.EncapOverheadBytes >= off.EncapOverheadBytes {
		t.Errorf("encap overhead should drop: %d vs %d", on.EncapOverheadBytes, off.EncapOverheadBytes)
	}
	if on.ControlMessages == 0 || off.ControlMessages != 0 {
		t.Errorf("control messages wrong: on=%d off=%d", on.ControlMessages, off.ControlMessages)
	}
	// The flow table bounds classification work in both modes: far fewer
	// classifications than processing events (packetsPerFlow > 1).
	if off.Classifications >= off.PacketsProcessed {
		t.Errorf("flow table ineffective: %d classifications for %d processings",
			off.Classifications, off.PacketsProcessed)
	}
}

func TestEq1VsEq2(t *testing.T) {
	cfg := Config{Topology: "campus", Seed: 11, PoliciesPerClass: 2}
	cmp, err := RunEq1VsEq2(cfg, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FineVars <= cmp.AggVars {
		t.Errorf("Eq.(1) should need more variables: %d vs %d", cmp.FineVars, cmp.AggVars)
	}
	if cmp.AggLambda > cmp.FineLambda+1e-6 {
		t.Errorf("aggregated optimum %v worse than fine %v", cmp.AggLambda, cmp.FineLambda)
	}
	if cmp.AggLambda <= 0 {
		t.Error("λ missing")
	}
}

func TestRendering(t *testing.T) {
	cfg := smallCfg("campus")
	cfg.TrafficPoints = []int{100000}
	res, err := RunMaxLoadFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "traffic,FW_HP_max") {
		t.Errorf("csv header = %q", lines[0])
	}
	if md := FigureMarkdown(res); !strings.Contains(md, "| traffic (pkts) | HP | Rand | LB |") {
		t.Error("figure markdown malformed")
	}

	rows, err := RunLoadDistributionTable(cfg, 100000)
	if err != nil {
		t.Fatal(err)
	}
	md := TableMarkdown(rows)
	if !strings.Contains(md, "FW max.") || !strings.Contains(md, "TM min.") {
		t.Errorf("table markdown malformed:\n%s", md)
	}
	buf.Reset()
	if err := WriteTableCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 9 {
		t.Errorf("table csv lines = %d, want 9", got)
	}

	ks, err := RunCandidateKAblation(cfg, 10000, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if md := KAblationMarkdown(ks); !strings.Contains(md, "| k |") {
		t.Error("k ablation markdown malformed")
	}
	off, err := RunStateAblation(3, 5, 3, 600, false)
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunStateAblation(3, 5, 3, 600, true)
	if err != nil {
		t.Fatal(err)
	}
	if md := StateAblationMarkdown(off, on); !strings.Contains(md, "fragments created") {
		t.Error("state ablation markdown malformed")
	}
	cmp, err := RunEq1VsEq2(Config{Topology: "campus", Seed: 11, PoliciesPerClass: 2}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if md := FormulationMarkdown(cmp); !strings.Contains(md, "variables") {
		t.Error("formulation markdown malformed")
	}
}

func TestPathStretch(t *testing.T) {
	base, points, err := RunPathStretch(smallCfg("campus"), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatalf("baseline = %v", base)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		// Enforcement always detours: stretch > 1.
		if p.Stretch <= 1 {
			t.Errorf("%v stretch = %v, want > 1", p.Strategy, p.Stretch)
		}
		if p.Stretch > 6 {
			t.Errorf("%v stretch = %v, implausibly large", p.Strategy, p.Stretch)
		}
	}
	// Hot-potato is the locality-greedy strategy: its path cost must not
	// exceed LB's (which trades locality for balance).
	hp, lb := points[0], points[2]
	if hp.AvgPathCost > lb.AvgPathCost+0.5 {
		t.Errorf("HP path cost %v above LB %v", hp.AvgPathCost, lb.AvgPathCost)
	}
	if md := StretchMarkdown(base, points); !strings.Contains(md, "stretch vs baseline") {
		t.Error("stretch markdown malformed")
	}
}

func TestQueueingAblation(t *testing.T) {
	// Service rate chosen so HP's hottest middlebox saturates while the
	// aggregate capacity is ample: LB must deliver dramatically lower
	// queueing than HP.
	points, err := RunQueueingAblation(7, 60, 30, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	hp, lb := points[0], points[2]
	if hp.Strategy != enforce.HotPotato || lb.Strategy != enforce.LoadBalanced {
		t.Fatalf("order: %+v", points)
	}
	if hp.Delivered == 0 || lb.Delivered == 0 {
		t.Fatalf("no deliveries: %+v", points)
	}
	if lb.AvgQueueUS >= hp.AvgQueueUS {
		t.Errorf("LB avg queue %v not below HP %v", lb.AvgQueueUS, hp.AvgQueueUS)
	}
	if lb.MaxLatencyUS >= hp.MaxLatencyUS {
		t.Errorf("LB max latency %v not below HP %v", lb.MaxLatencyUS, hp.MaxLatencyUS)
	}
	if md := QueueingMarkdown(points); !strings.Contains(md, "queue wait") {
		t.Error("queueing markdown malformed")
	}
}

func TestMultiSeed(t *testing.T) {
	cfg := smallCfg("campus")
	sum, err := RunMultiSeed(cfg, 100000, []int64{1, 3, 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Funcs {
		for _, s := range Strategies {
			if sum.Min[f][s] <= 0 || sum.Max[f][s] < sum.Min[f][s] {
				t.Errorf("%v/%v range [%d,%d] invalid", f, s, sum.Min[f][s], sum.Max[f][s])
			}
			mean := sum.Mean[f][s]
			if mean < float64(sum.Min[f][s])-1 || mean > float64(sum.Max[f][s])+1 {
				t.Errorf("%v/%v mean %v outside range", f, s, mean)
			}
		}
	}
	// The core claim holds in the MEAN across seeds even if a single
	// draw can violate it: LB mean max below HP mean max everywhere.
	for _, f := range Funcs {
		if sum.Mean[f][enforce.LoadBalanced] >= sum.Mean[f][enforce.HotPotato] {
			t.Errorf("%v: LB mean %v not below HP mean %v",
				f, sum.Mean[f][enforce.LoadBalanced], sum.Mean[f][enforce.HotPotato])
		}
	}
	if md := MultiSeedMarkdown(sum); !strings.Contains(md, "3 seeds") {
		t.Error("multi-seed markdown malformed")
	}
}

func TestDriftExperiment(t *testing.T) {
	cfg := smallCfg("campus")
	rows, err := RunDriftExperiment(cfg, 80000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Epoch 0: both controllers solved on this epoch's traffic — equal.
	if rows[0].MaxStale != rows[0].MaxRebalanced {
		t.Errorf("epoch 0 should tie: %d vs %d", rows[0].MaxStale, rows[0].MaxRebalanced)
	}
	// Across the drifted epochs, rebalancing must win in aggregate, and
	// per epoch it must never lose beyond hash-sampling noise. (The
	// total/|IDS| floor is NOT generally achievable under a surge — the
	// candidate sets M_x^e bound how far one subnet's traffic can
	// spread — so the floor is reported but not asserted as reachable.)
	var staleSum, rebalSum int64
	for _, r := range rows[1:] {
		staleSum += r.MaxStale
		rebalSum += r.MaxRebalanced
		if float64(r.MaxRebalanced) > float64(r.MaxStale)*1.05+1 {
			t.Errorf("epoch %d: rebalanced max %d worse than stale %d", r.Epoch, r.MaxRebalanced, r.MaxStale)
		}
		if float64(r.MaxRebalanced) < r.Ideal*0.99 {
			t.Errorf("epoch %d: max %d below the information floor %.0f (accounting bug)", r.Epoch, r.MaxRebalanced, r.Ideal)
		}
	}
	if rebalSum >= staleSum {
		t.Errorf("rebalancing did not help under drift: %d vs %d", rebalSum, staleSum)
	}
	if md := DriftMarkdown(rows); !strings.Contains(md, "stale weights") {
		t.Error("drift markdown malformed")
	}
}
