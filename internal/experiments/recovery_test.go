package experiments_test

import (
	"strings"
	"testing"

	"sdme/internal/experiments"
)

// TestChaosSimRecoveryConverges runs the acceptance fault schedule on
// the simulator: crash two middleboxes, wedge a third, drop a proxy's
// management connection. The controller must repair the plan without
// manual intervention, the repaired plan must verify, and the outage
// must be visible (packets blackholed) yet bounded (traffic resumes).
func TestChaosSimRecoveryConverges(t *testing.T) {
	res, err := experiments.RunSimRecovery(experiments.RecoveryConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sim did not converge: %+v", res)
	}
	if !res.VerifyOK {
		t.Error("repaired plan fails verification")
	}
	if res.Repairs < 2 {
		t.Errorf("Repairs = %d, want >= 2 (two crashes + wedge cycle)", res.Repairs)
	}
	if res.Degraded != 0 {
		t.Errorf("Degraded = %d, schedule keeps every function covered", res.Degraded)
	}
	if res.DroppedDown == 0 {
		t.Error("no packets dropped during the outage — faults had no effect")
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered — recovery never took effect")
	}
	if res.Injected != int64(40*200) {
		t.Errorf("Injected = %d, want %d", res.Injected, 40*200)
	}
	if res.ConvergeUS <= 0 {
		t.Errorf("ConvergeUS = %d, want > 0", res.ConvergeUS)
	}
}

// TestChaosSimRecoveryDeterministic: same seed, same schedule → byte-identical
// metrics. The whole point of driving faults through the discrete-event
// engine is that chaos runs are replayable.
func TestChaosSimRecoveryDeterministic(t *testing.T) {
	a, err := experiments.RunSimRecovery(experiments.RecoveryConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.RunSimRecovery(experiments.RecoveryConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("sim recovery not deterministic:\n  a = %+v\n  b = %+v", a, b)
	}
}

// TestChaosLiveRecoveryConverges is the live half of the acceptance
// scenario: real UDP dataplane, real TCP management channel. After the
// schedule (two crashes, a conn-drop, a wedge/unwedge cycle) every
// surviving agent must be reconnected with the latest epoch acked, and
// the repaired plan must pass verification — no manual intervention.
func TestChaosLiveRecoveryConverges(t *testing.T) {
	res, err := experiments.RunLiveRecovery(experiments.RecoveryConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("live runtime did not converge: %+v", res)
	}
	if !res.VerifyOK {
		t.Error("repaired plan fails verification")
	}
	if res.Repairs == 0 {
		t.Error("no repairs completed")
	}
	if res.Reconnects == 0 {
		t.Error("conn-drop never forced a reconnect")
	}
	if res.FinalEpoch == 0 {
		t.Error("no epochs assigned — nothing was pushed")
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered after recovery")
	}
}

func TestRecoveryRenderers(t *testing.T) {
	rs := []experiments.RecoveryResult{
		{Substrate: "sim", Seed: 1, Injected: 100, Delivered: 90, DroppedDown: 10,
			ConvergeUS: 20500, Repairs: 3, Reconnects: 0, FinalEpoch: 0, VerifyOK: true, Converged: true},
		{Substrate: "live", Seed: 1, Injected: 80, Delivered: 70, DroppedDown: 10,
			ConvergeUS: 31000, Repairs: 3, Reconnects: 1, FinalEpoch: 42, VerifyOK: true, Converged: true},
	}
	var csv strings.Builder
	if err := experiments.WriteRecoveryCSV(&csv, rs); err != nil {
		t.Fatal(err)
	}
	got := csv.String()
	if !strings.HasPrefix(got, "substrate,seed,") {
		t.Errorf("csv header missing: %q", got)
	}
	if !strings.Contains(got, "\nsim,1,100,90,10,20500,3,0,0,0,true,true\n") {
		t.Errorf("sim row wrong:\n%s", got)
	}
	if lines := strings.Count(got, "\n"); lines != 3 {
		t.Errorf("csv line count = %d, want 3", lines)
	}
	md := experiments.RecoveryMarkdown(rs)
	for _, want := range []string{"| sim |", "| live |", "| 20.5 |", "| 42 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
