package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDataplaneSimScalesAndIsDeterministic checks the two properties the
// acceptance gate rests on: 16 workers beat 1 worker by ≥2× on the
// simulated substrate, and the whole grid is bit-identical across runs.
func TestDataplaneSimScalesAndIsDeterministic(t *testing.T) {
	cfg := DataplaneConfig{Seed: 20, SimPackets: 20000, SkipLive: true}
	r1, err := RunDataplaneBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Gate.Pass {
		t.Fatalf("gate failed: sim %dw/%ds speedup %.2f < %.1f",
			r1.Gate.Workers, r1.Gate.Shards, r1.Gate.Measured, r1.Gate.MinSpeedup)
	}
	// Shard axis must be visible: at 16 workers, 64 shards must out-run
	// 1 shard (lock contention is the only difference).
	var w16s1, w16s64 float64
	for _, p := range r1.Points {
		if p.Workers == 16 && p.Shards == 1 {
			w16s1 = p.PPS
		}
		if p.Workers == 16 && p.Shards == 64 {
			w16s64 = p.PPS
		}
	}
	if w16s64 < 1.5*w16s1 {
		t.Fatalf("sharding invisible: 16w/64s %.0f pps < 1.5x 16w/1s %.0f pps", w16s64, w16s1)
	}
	for _, p := range r1.Points {
		if p.PPS <= 0 || p.P50US <= 0 || p.P99US < p.P50US {
			t.Fatalf("implausible point: %+v", p)
		}
	}

	r2, err := RunDataplaneBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1.Generated, r2.Generated = "", ""
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("nondeterministic result:\n%s\nvs\n%s", j1, j2)
	}
}

// TestDataplaneLiveSmoke runs one small real-socket point per worker
// count — enough to prove the live path produces latency percentiles and
// plausible throughput without tying CI to host performance.
func TestDataplaneLiveSmoke(t *testing.T) {
	cfg := DataplaneConfig{
		Seed: 20, Workers: []int{1, 4}, Shards: []int{16},
		SimPackets: 2000, LivePackets: 600, Flows: 64,
	}
	res, err := RunDataplaneBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, p := range res.Points {
		if p.Substrate != "live" {
			continue
		}
		live++
		if p.PPS <= 0 {
			t.Fatalf("live point w=%d: pps %.0f", p.Workers, p.PPS)
		}
		if p.P99US <= 0 {
			t.Fatalf("live point w=%d: no latency observations", p.Workers)
		}
	}
	if live != 2 {
		t.Fatalf("expected 2 live points, got %d", live)
	}
	var md strings.Builder
	md.WriteString(DataplaneMarkdown(res))
	if !strings.Contains(md.String(), "| live | 4 | 16 |") {
		t.Fatal("markdown missing live row")
	}
}
