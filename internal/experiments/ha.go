package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sdme/internal/controller"
	"sdme/internal/faultinject"
	"sdme/internal/live"
	"sdme/internal/mgmt"
	"sdme/internal/sim"
	"sdme/internal/topo"
)

// Replicated-controller HA experiment (DESIGN §11). A group of N
// controller replicas runs lease-based leader election; the leader
// journals every mutation and streams the frames to the standbys before
// a rollout is considered durable. The experiment kills the leader
// mid-history (repeatedly, on the sim substrate) and measures:
//
//   - takeover latency — leader kill to the next replica's promotion;
//   - plan-push availability — a prober attempts one journaled plan push
//     per tick through whichever replica currently leads; ticks landing
//     in the leaderless window fail, so availability = 1 − failed/attempts;
//   - state fidelity — the new leader replays the journal replication
//     delivered and must export a byte-identical weight plan;
//   - fencing — a resurrected stale leader's output (a journal frame on
//     the sim substrate, a plan push on the live one) is refused by term.
//
// The sim variant runs the whole history on virtual time, so the same
// seed yields the same promotion trace; the live variant adds the
// management channel: real agents re-home from the dead leader's server
// to the new one via address rotation and NotLeader redirects.

// HAConfig parameterizes both substrates.
type HAConfig struct {
	Seed int64
	// Replicas is the group size (default 3; use 5 to survive 2 kills).
	Replicas int
	// Kills is how many consecutive leaders the sim variant assassinates
	// (default 1; must stay below the quorum margin). The live variant
	// always partitions exactly one leader — wall-clock kills are covered
	// by the chaos matrix instead.
	Kills int
	// LeaseUS is the election lease (default 20ms sim, 60ms live).
	LeaseUS int64
	// KillGapUS is the spacing between consecutive leader kills, measured
	// from the post-rollout settle point (default 10 lease windows). The
	// sdme-sim -kill-leader-at flag lands here.
	KillGapUS int64
	// ProbeGapUS is the availability prober's tick (default LeaseUS/4).
	ProbeGapUS int64
	// Schedule optionally overrides the sim kill script; only
	// KindLeaderKill events are honored. Nil derives one from Seed with
	// jittered kill times, so different seeds kill at different phases of
	// the lease cycle.
	Schedule *faultinject.Schedule
}

func (c *HAConfig) fill(substrate string) {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Kills <= 0 {
		c.Kills = 1
	}
	if c.LeaseUS <= 0 {
		if substrate == "sim" {
			c.LeaseUS = 20_000
		} else {
			c.LeaseUS = 60_000
		}
	}
	if c.KillGapUS <= 0 {
		c.KillGapUS = 10 * c.LeaseUS
	}
	if c.ProbeGapUS <= 0 {
		c.ProbeGapUS = c.LeaseUS / 4
	}
}

// HAResult is one substrate's takeover story.
type HAResult struct {
	Substrate string
	Seed      int64
	Replicas  int
	Kills     int
	// FirstLeader/FirstTerm identify the initial election's winner.
	FirstLeader int
	FirstTerm   uint64
	// FinalLeader/FinalTerm identify the last takeover's winner.
	FinalLeader int
	FinalTerm   uint64
	// TakeoverMaxUS is the worst kill→promotion latency observed
	// (virtual µs sim, wall µs live).
	TakeoverMaxUS int64
	// PushAttempts/PushFailures are the availability prober's counters;
	// failures are ticks with no live leader (or a mid-depose one).
	PushAttempts, PushFailures int64
	// EpochBefore is the epoch fenced under the first leader's term;
	// EpochAfter the last one fenced under the final term.
	EpochBefore, EpochAfter uint64
	// Records is the journal record count the final takeover replayed.
	Records int
	// ExportIdentical: every takeover's restored controller exported the
	// byte-identical plan the first leader computed.
	ExportIdentical bool
	// StaleRejected: the deposed leader's term-stamped output was refused
	// (standby frame fence on sim; server self-gate AND agent fence live).
	StaleRejected bool
	// Resumed: epoch numbering continued past the old high-water mark.
	Resumed bool
	// Converged (live): every agent acked the final leader's last epoch.
	Converged bool
	// Redirects/Reconnects (live): agent re-homing effort.
	Redirects, Reconnects int64
	// Trace is the promotion history "id@term@tUS;..." — same seed, same
	// trace on the sim substrate.
	Trace string
}

// traceOf renders a promotion history.
func traceOf(ps []sim.Promotion) string {
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "%d@%d@%d;", p.ID, p.Term, p.AtUS)
	}
	return b.String()
}

// defaultKillSchedule spaces cfg.Kills leaderkill events KillGapUS apart
// with a quarter-gap jitter, so the kill lands at a seed-dependent phase
// of the lease cycle.
func defaultKillSchedule(cfg HAConfig) *faultinject.Schedule {
	s := &faultinject.Schedule{Seed: cfg.Seed}
	for k := 0; k < cfg.Kills; k++ {
		s.Events = append(s.Events, faultinject.Event{
			AtUS:     int64(k+1) * cfg.KillGapUS,
			JitterUS: cfg.KillGapUS / 4,
			Kind:     faultinject.KindLeaderKill,
		})
	}
	return s
}

// simHAHarness is the sim leader-side state the promotion hook swaps on
// every takeover. The engine is single-threaded, so no locking.
type simHAHarness struct {
	bed  *recoveryBed
	seed int64

	leader int // -1 while no promoted controller is live
	term   uint64
	ctl    *controller.Controller
	j      *controller.Journal
	st     *controller.JournalState
	err    error

	nextEpoch uint64
}

// onPromote rebuilds the controller from the replayed journal: the first
// leader starts fresh (an empty journal has no fingerprint to check),
// every later one restores and must reproduce the plan.
func (h *simHAHarness) onPromote(id int, st *controller.JournalState, j *controller.Journal, term uint64) {
	ctl := controller.New(h.bed.dep, h.bed.ap, h.bed.tbl, restartOpts(h.seed))
	if st.Records > 0 {
		if err := ctl.RestoreFromJournal(st); err != nil {
			h.err = fmt.Errorf("experiments: takeover restore at replica %d: %w", id, err)
			return
		}
	}
	if err := ctl.SetJournal(j); err != nil {
		h.err = fmt.Errorf("experiments: takeover journal attach at replica %d: %w", id, err)
		return
	}
	h.leader, h.term, h.ctl, h.j, h.st = id, term, ctl, j, st
	if st.Epoch > h.nextEpoch {
		h.nextEpoch = st.Epoch
	}
}

// RunSimHA elects a leader among N replicas on virtual time, rolls a
// plan out through its journal, then assassinates cfg.Kills consecutive
// leaders and verifies every successor replays a byte-identical plan,
// resumes fenced epoch numbering, and refuses the dead leader's frames.
func RunSimHA(cfg HAConfig) (*HAResult, error) {
	cfg.fill("sim")
	dir, err := os.MkdirTemp("", "sdme-ha-sim-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup
	bed, err := newRestartBed(cfg.Seed)
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	h := &simHAHarness{bed: bed, seed: cfg.Seed, leader: -1}
	group, err := sim.NewControllerGroup(eng, sim.ControllerGroupConfig{
		N:         cfg.Replicas,
		Dir:       dir,
		LeaseUS:   cfg.LeaseUS,
		Seed:      cfg.Seed,
		OnPromote: h.onPromote,
		OnDemote: func(id int, term uint64) {
			if h.leader == id {
				h.leader, h.j, h.ctl = -1, nil, nil
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer group.Close()

	res := &HAResult{Substrate: "sim", Seed: cfg.Seed, Replicas: cfg.Replicas, Kills: cfg.Kills}
	limit := int64(cfg.Kills+2)*cfg.KillGapUS + 100*cfg.LeaseUS

	// First election.
	id0, term0, _ := group.RunUntilLeader(limit, 1)
	if id0 < 0 {
		return nil, fmt.Errorf("experiments: no leader within %dus", limit)
	}
	if h.err != nil {
		return nil, h.err
	}
	res.FirstLeader, res.FirstTerm = id0, term0

	// The rollout: solve (journals weights), fail a middlebox (journals
	// the failed set), fence an epoch under the leader's term — then wait
	// until a quorum of replicas holds the whole journal before treating
	// the plan as durable (stream-before-ack).
	sol, err := h.ctl.SolveLB(controller.MeasurementsFromFlows(bed.dep, bed.tbl, restartDemands()))
	if err != nil {
		return nil, err
	}
	if err := h.ctl.MarkFailed(bed.fw[0], true); err != nil {
		return nil, err
	}
	h.nextEpoch++
	if err := h.j.LogEpoch(h.nextEpoch, term0); err != nil {
		return nil, err
	}
	res.EpochBefore = h.nextEpoch
	if !simWaitQuorum(eng, group, h, limit) {
		return nil, fmt.Errorf("experiments: journal never reached quorum")
	}
	before, err := exportBytes(h.ctl, sol)
	if err != nil {
		return nil, err
	}

	// Availability prober: one journaled "plan push" per tick against
	// whichever replica currently leads. Ticks inside a leaderless window
	// fail; the ratio is the control plane's availability.
	probeEnd := eng.Now() + int64(cfg.Kills+1)*cfg.KillGapUS
	var probe func()
	probe = func() {
		if eng.Now() > probeEnd {
			return
		}
		res.PushAttempts++
		if h.leader < 0 || h.j == nil {
			res.PushFailures++
		} else {
			h.nextEpoch++
			if err := h.j.LogEpoch(h.nextEpoch, h.term); err != nil {
				res.PushFailures++
			}
		}
		eng.After(cfg.ProbeGapUS, probe)
	}
	eng.After(cfg.ProbeGapUS, probe)

	// The kill script: resolve the (jittered) leaderkill times and walk
	// them, verifying a full takeover after each.
	sched := cfg.Schedule
	if sched == nil {
		sched = defaultKillSchedule(cfg)
	}
	base := eng.Now()
	res.ExportIdentical = true
	prevTerm := term0
	for _, ev := range sched.Resolve() {
		if ev.Kind != faultinject.KindLeaderKill {
			continue
		}
		at := base + ev.AtUS
		if at > eng.Now() {
			eng.Run(at)
		}
		victim, vterm := group.Leader()
		if victim < 0 {
			// Mid-election already; the takeover clock starts now anyway.
			victim, vterm, _ = group.RunUntilLeader(limit, prevTerm)
			if victim < 0 {
				return nil, fmt.Errorf("experiments: no leader to kill")
			}
		}
		h.leader, h.j, h.ctl = -1, nil, nil
		// The kill's nominal instant is the schedule's, even when no event
		// happened to land exactly there (Run leaves the clock at the last
		// processed event).
		killUS := at
		if now := eng.Now(); now > killUS {
			killUS = now
		}
		group.Kill(victim)

		id1, term1, atUS := group.RunUntilLeader(killUS+limit, vterm+1)
		if id1 < 0 {
			return nil, fmt.Errorf("experiments: no takeover after killing replica %d", victim)
		}
		if h.err != nil {
			return nil, h.err
		}
		if lat := atUS - killUS; lat > res.TakeoverMaxUS {
			res.TakeoverMaxUS = lat
		}
		res.FinalLeader, res.FinalTerm = id1, term1
		res.Records = h.st.Records

		// The restored plan must be byte-identical to the first leader's.
		after, err := exportBytes(h.ctl, h.st.RestoredSolution())
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(before, after) {
			res.ExportIdentical = false
		}
		// Resume fenced epoch numbering past the replayed high-water.
		h.nextEpoch++
		if err := h.j.LogEpoch(h.nextEpoch, term1); err != nil {
			return nil, err
		}
		res.EpochAfter = h.nextEpoch
		if !simWaitQuorum(eng, group, h, limit) {
			return nil, fmt.Errorf("experiments: post-takeover journal never reached quorum")
		}
		prevTerm = term1
	}
	res.Resumed = res.EpochAfter > res.EpochBefore

	// Fencing: replay a frame carrying the FIRST leader's term at exactly
	// the offset a standby would otherwise append at. Only the term fence
	// can refuse it — and must.
	res.StaleRejected, err = simStaleFrameRejected(dir, group, res.FirstLeader, res.FirstTerm)
	if err != nil {
		return nil, err
	}

	res.Trace = traceOf(group.Promotions())
	return res, nil
}

// simWaitQuorum advances virtual time until a quorum of replicas holds
// the leader's whole journal (false if the limit passes first).
func simWaitQuorum(eng *sim.Engine, group *sim.ControllerGroup, h *simHAHarness, limitUS int64) bool {
	// Cursor-stepped like RunUntilLeader: Run only advances the clock to
	// the last processed event.
	cursor := eng.Now()
	deadline := cursor + limitUS
	for cursor < deadline {
		if h.leader < 0 || h.j == nil {
			return false
		}
		repl := group.Replica(h.leader).Replicator()
		if repl != nil && repl.QuorumBytes() >= h.j.Size() {
			return true
		}
		cursor += 500
		eng.Run(cursor)
	}
	return false
}

// simStaleFrameRejected delivers a well-formed journal frame stamped
// with a deposed leader's term to a live standby and reports whether the
// standby's journal stayed untouched.
func simStaleFrameRejected(dir string, group *sim.ControllerGroup, oldLeader int, oldTerm uint64) (bool, error) {
	sb := -1
	curLeader, _ := group.Leader()
	for i := 0; i < group.N(); i++ {
		if group.Alive(i) && i != curLeader {
			sb = i
			break
		}
	}
	if sb < 0 {
		return false, fmt.Errorf("experiments: no live standby for the stale-frame check")
	}
	// Fresh, CRC-valid frame bytes from a scratch journal: everything
	// about the frame is legitimate except the term it rode in under.
	scratch := filepath.Join(dir, "stale-scratch.wal")
	sj, err := controller.OpenJournal(scratch)
	if err != nil {
		return false, err
	}
	if err := sj.LogEpoch(999_999, oldTerm); err != nil {
		return false, err
	}
	frames, err := sj.ReadChunk(0, 1<<20)
	if err != nil {
		return false, err
	}
	if err := sj.Close(); err != nil {
		return false, err
	}
	standby := group.Replica(sb)
	bytesBefore := standby.JournalBytes()
	data, err := json.Marshal(mgmt.JournalFrame{
		Leader: oldLeader,
		Term:   oldTerm,
		Offset: bytesBefore,
		Frames: frames,
	})
	if err != nil {
		return false, err
	}
	standby.Deliver(&mgmt.Envelope{T: mgmt.TypeJournalFrame, Data: data})
	return standby.JournalBytes() == bytesBefore, nil
}

// liveHAHarness guards the live substrate's current-leader state; the
// promotion hooks fire on elector timer goroutines.
type liveHAHarness struct {
	bed  *recoveryBed
	seed int64

	mu      sync.Mutex
	leader  int
	term    uint64
	ctl     *controller.Controller
	j       *controller.Journal
	st      *controller.JournalState
	servers []*mgmt.Server
	reps    []*controller.HAReplica
	promUS  []int64 // promotion wall times, appended in order
	err     error

	clock controller.WallClock
}

func (h *liveHAHarness) onPromote(id int, st *controller.JournalState, j *controller.Journal, term uint64) {
	ctl := controller.New(h.bed.dep, h.bed.ap, h.bed.tbl, restartOpts(h.seed))
	if st.Records > 0 {
		if err := ctl.RestoreFromJournal(st); err != nil {
			h.mu.Lock()
			h.err = fmt.Errorf("experiments: live takeover restore at replica %d: %w", id, err)
			h.mu.Unlock()
			return
		}
	}
	if err := ctl.SetJournal(j); err != nil {
		h.mu.Lock()
		h.err = fmt.Errorf("experiments: live takeover journal attach at replica %d: %w", id, err)
		h.mu.Unlock()
		return
	}
	h.mu.Lock()
	h.leader, h.term, h.ctl, h.j, h.st = id, term, ctl, j, st
	h.promUS = append(h.promUS, h.clock.NowUS())
	srv := h.servers[id]
	addr := srv.Addr()
	// The server resumes epoch numbering past the replayed high-water and
	// opens its gate under the new term; every other server bounces
	// agents toward it.
	srv.ResumeEpoch(st.Epoch)
	srv.SetLeader(term)
	for k, other := range h.servers {
		if k != id {
			other.SetNotLeader(addr)
		}
	}
	h.mu.Unlock()
}

func (h *liveHAHarness) onDemote(id int, term uint64) {
	h.mu.Lock()
	if h.leader == id {
		h.leader, h.ctl, h.j = -1, nil, nil
	}
	srv := h.servers[id]
	h.mu.Unlock()
	// The deposed leader gates itself shut and sheds its agents — they
	// re-home to the new leader through rotation and redirects.
	srv.SetNotLeader("")
	srv.DropAllConns()
}

// current snapshots the promoted leader's push surface (nil when
// leaderless).
func (h *liveHAHarness) current() (srv *mgmt.Server, j *controller.Journal, ctl *controller.Controller, st *controller.JournalState, term uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.leader < 0 {
		return nil, nil, nil, nil, 0
	}
	return h.servers[h.leader], h.j, h.ctl, h.st, h.term
}

// RunLiveHA runs three controller replicas over real sockets — a peer
// bus each, a management server each — with live agents configured with
// every replica's address. It partitions the leader away from its
// peers, waits for the self-deposition + takeover, and verifies the
// agents re-home, the restored plan matches byte for byte, and both
// term fences (the deposed server's self-gate, the agents' stale-term
// refusal) hold.
func RunLiveHA(cfg HAConfig) (*HAResult, error) {
	cfg.fill("live")
	dir, err := os.MkdirTemp("", "sdme-ha-live-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup
	bed, err := newRestartBed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &HAResult{Substrate: "live", Seed: cfg.Seed, Replicas: cfg.Replicas, Kills: 1}

	h := &liveHAHarness{bed: bed, seed: cfg.Seed, leader: -1}

	// Servers first (their addresses seed the agents), all gated shut
	// until a replica claims one by winning an election.
	for i := 0; i < cfg.Replicas; i++ {
		srv, err := mgmt.NewServer("127.0.0.1:0", nil)
		if err != nil {
			return nil, err
		}
		h.servers = append(h.servers, srv)
		srv.SetNotLeader("")
	}
	defer func() {
		for _, s := range h.servers {
			s.Close()
		}
	}()

	// Peer buses + replicas. The bus delivers into the replica slot via
	// the harness so a bus racing its replica's construction drops cleanly.
	buses := make([]*mgmt.PeerBus, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		i := i
		bus, err := mgmt.NewPeerBus(i, "127.0.0.1:0", func(env *mgmt.Envelope) {
			h.mu.Lock()
			var rep *controller.HAReplica
			if i < len(h.reps) {
				rep = h.reps[i]
			}
			h.mu.Unlock()
			if rep != nil {
				rep.Deliver(env)
			}
		})
		if err != nil {
			return nil, err
		}
		buses[i] = bus
	}
	defer func() {
		for _, b := range buses {
			if b != nil {
				b.Close()
			}
		}
	}()
	addrs := make(map[int]string, cfg.Replicas)
	for i, b := range buses {
		addrs[i] = b.Addr()
	}
	for _, b := range buses {
		b.SetPeers(addrs)
	}
	for i := 0; i < cfg.Replicas; i++ {
		peers := make([]int, 0, cfg.Replicas-1)
		for p := 0; p < cfg.Replicas; p++ {
			if p != i {
				peers = append(peers, p)
			}
		}
		id := i
		rep, err := controller.NewHAReplica(controller.HAReplicaConfig{
			ID:          i,
			Peers:       peers,
			JournalPath: filepath.Join(dir, fmt.Sprintf("replica-%d.wal", i)),
			Transport:   buses[i],
			LeaseUS:     cfg.LeaseUS,
			Seed:        cfg.Seed*1009 + int64(i) + 1,
			OnPromote: func(st *controller.JournalState, j *controller.Journal, term uint64) {
				h.onPromote(id, st, j, term)
			},
			OnDemote: func(term uint64) { h.onDemote(id, term) },
		})
		if err != nil {
			return nil, err
		}
		h.mu.Lock()
		h.reps = append(h.reps, rep)
		h.mu.Unlock()
	}
	defer func() {
		h.mu.Lock()
		reps := append([]*controller.HAReplica(nil), h.reps...)
		h.mu.Unlock()
		for _, r := range reps {
			r.Stop()
		}
	}()
	for _, r := range h.reps {
		r.Start()
	}

	// First election.
	if !live.WaitUntil(10*time.Second, func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.leader >= 0 || h.err != nil
	}) {
		return nil, fmt.Errorf("experiments: live group elected no leader")
	}
	h.mu.Lock()
	res.FirstLeader, res.FirstTerm = h.leader, h.term
	firstErr := h.err
	h.mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}

	// Dataplane devices + agents. Every agent knows every replica's
	// server address; the gated standbys bounce it to the leader.
	rt := live.NewRuntime()
	defer rt.Close()
	devices := make(map[topo.NodeID]*live.Device, len(bed.nodes))
	var nodeIDs []topo.NodeID
	for id, n := range bed.nodes {
		dev, err := rt.AddDevice(n)
		if err != nil {
			return nil, err
		}
		devices[id] = dev
		nodeIDs = append(nodeIDs, id)
	}
	nodeIDs = topo.SortedIDs(nodeIDs)
	serverAddrs := make([]string, len(h.servers))
	for i, s := range h.servers {
		serverAddrs[i] = s.Addr()
	}
	agents := make(map[topo.NodeID]*mgmt.Agent, len(nodeIDs))
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	for _, id := range nodeIDs {
		agent, err := mgmt.NewAgentWith(devices[id], serverAddrs[res.FirstLeader], mgmt.AgentOptions{
			Addrs:         serverAddrs,
			BackoffMin:    5 * time.Millisecond,
			BackoffMax:    100 * time.Millisecond,
			HealthyPeriod: 250 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		agents[id] = agent
	}
	leaderSrv := h.servers[res.FirstLeader]
	if !leaderSrv.WaitConnected(10*time.Second, nodeIDs...) {
		return nil, fmt.Errorf("experiments: agents did not reach the leader: %v", leaderSrv.Connected())
	}

	// The rollout under the first term: solve, fail a middlebox, fence an
	// epoch in the journal, wait for replication quorum, THEN push 2PC.
	pushPol := mgmt.RetryPolicy{Attempts: 4, PerAttempt: 2 * time.Second, Backoff: 25 * time.Millisecond}
	_, j0, ctl0, _, term0 := h.current()
	if ctl0 == nil {
		return nil, fmt.Errorf("experiments: leader lost before the rollout")
	}
	sol, err := ctl0.SolveLB(controller.MeasurementsFromFlows(bed.dep, bed.tbl, restartDemands()))
	if err != nil {
		return nil, err
	}
	if err := ctl0.MarkFailed(bed.fw[0], true); err != nil {
		return nil, err
	}
	epoch0 := leaderSrv.Epoch() + 1
	if err := j0.LogEpoch(epoch0, term0); err != nil {
		return nil, err
	}
	repl0 := h.reps[res.FirstLeader].Replicator()
	if repl0 == nil {
		return nil, fmt.Errorf("experiments: leader has no replicator")
	}
	if err := repl0.WaitQuorum(j0.Size(), 5*time.Second); err != nil {
		return nil, fmt.Errorf("experiments: pre-push quorum: %w", err)
	}
	planNodes, err := ctl0.BuildNodes()
	if err != nil {
		return nil, err
	}
	controller.ApplyWeights(planNodes, sol)
	plans := make(map[topo.NodeID]mgmt.ConfigDTO, len(nodeIDs))
	for _, id := range nodeIDs {
		plans[id] = mgmt.ConfigToDTO(0, planNodes[id].Config())
	}
	if _, err := leaderSrv.PushAll2PC(plans, pushPol); err != nil {
		return nil, fmt.Errorf("experiments: initial 2pc rollout: %w", err)
	}
	res.EpochBefore = leaderSrv.Epoch()
	before, err := exportBytes(ctl0, sol)
	if err != nil {
		return nil, err
	}

	// Availability prober: journaled single-node pushes through whichever
	// replica currently leads, until stopped.
	probeNode := nodeIDs[0]
	probeDTO := plans[probeNode]
	stopProbe := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-stopProbe:
				return
			default:
			}
			srv, j, _, _, term := h.current()
			ok := false
			if srv != nil && j != nil {
				dto := probeDTO
				dto.Epoch = srv.Epoch() + 1
				if j.LogEpoch(dto.Epoch, term) == nil &&
					srv.PushRetry(probeNode, dto, mgmt.RetryPolicy{Attempts: 1, PerAttempt: 250 * time.Millisecond}) == nil {
					ok = true
				}
			}
			h.mu.Lock()
			res.PushAttempts++
			if !ok {
				res.PushFailures++
			}
			h.mu.Unlock()
			time.Sleep(time.Duration(cfg.ProbeGapUS) * time.Microsecond)
		}
	}()

	// The "kill": partition the leader from its peers by closing its bus.
	// It still believes it leads — until its lease starves and it deposes
	// itself — which is exactly the split-brain window the fences close.
	oldLeader := res.FirstLeader
	killUS := h.clock.NowUS()
	promBefore := len(h.promUS)
	buses[oldLeader].Close()
	buses[oldLeader] = nil

	if !live.WaitUntil(15*time.Second, func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return (h.leader >= 0 && h.leader != oldLeader && len(h.promUS) > promBefore) || h.err != nil
	}) {
		return nil, fmt.Errorf("experiments: no live takeover after partitioning replica %d", oldLeader)
	}
	h.mu.Lock()
	res.FinalLeader, res.FinalTerm = h.leader, h.term
	res.TakeoverMaxUS = h.promUS[len(h.promUS)-1] - killUS
	newSrv := h.servers[h.leader]
	st1, ctl1, j1 := h.st, h.ctl, h.j
	takeErr := h.err
	h.mu.Unlock()
	if takeErr != nil {
		return nil, takeErr
	}
	res.Records = st1.Records

	// Fence 1: the deposed leader's own server refuses to push — its
	// OnDemote gate closed before any agent could hear its stale term.
	staleLocal := live.WaitUntil(10*time.Second, func() bool {
		err := h.servers[oldLeader].PushRetry(probeNode, probeDTO, mgmt.RetryPolicy{Attempts: 1, PerAttempt: 100 * time.Millisecond})
		return errors.Is(err, mgmt.ErrNotLeader)
	})

	// Agents re-home: the old server dropped them; rotation plus the
	// standbys' NotLeader bounces land them on the new leader.
	if !newSrv.WaitConnected(15*time.Second, nodeIDs...) {
		return nil, fmt.Errorf("experiments: agents did not re-home: %v", newSrv.Connected())
	}

	// Stop the prober before the convergence-bearing final rollout so its
	// background epochs cannot race the 2PC accounting.
	close(stopProbe)
	probeWG.Wait()

	// The takeover rollout under the new term: replayed state, resumed
	// epochs, fresh 2PC through the re-homed agents.
	sol1 := st1.RestoredSolution()
	planNodes1, err := ctl1.BuildNodes()
	if err != nil {
		return nil, err
	}
	if sol1 != nil {
		controller.ApplyWeights(planNodes1, sol1)
	}
	epoch1 := newSrv.Epoch() + 1
	if err := j1.LogEpoch(epoch1, res.FinalTerm); err != nil {
		return nil, err
	}
	repl1 := h.reps[res.FinalLeader].Replicator()
	if repl1 == nil {
		return nil, fmt.Errorf("experiments: new leader has no replicator")
	}
	if err := repl1.WaitQuorum(j1.Size(), 5*time.Second); err != nil {
		return nil, fmt.Errorf("experiments: post-takeover quorum: %w", err)
	}
	plans1 := make(map[topo.NodeID]mgmt.ConfigDTO, len(nodeIDs))
	for _, id := range nodeIDs {
		plans1[id] = mgmt.ConfigToDTO(0, planNodes1[id].Config())
	}
	if _, err := newSrv.PushAll2PC(plans1, pushPol); err != nil {
		return nil, fmt.Errorf("experiments: post-takeover 2pc rollout: %w", err)
	}
	res.EpochAfter = newSrv.Epoch()
	res.Resumed = res.EpochAfter > res.EpochBefore
	res.Converged = newSrv.Converged(nodeIDs...)

	after, err := exportBytes(ctl1, sol1)
	if err != nil {
		return nil, err
	}
	res.ExportIdentical = bytes.Equal(before, after)

	// Fence 2: a plan stamped with the dead leader's term reaches a live,
	// connected agent over a real connection — the agent must refuse it.
	// (Last: the refusal leaves the stale DTO as the server's recorded
	// latest for that node, which would pollute convergence accounting.)
	staleAgent := false
	staleDTO := plans1[probeNode]
	staleDTO.Term = res.FirstTerm
	staleDTO.Epoch = newSrv.Epoch() + 1
	err = newSrv.PushRetry(probeNode, staleDTO, pushPol)
	var refused *mgmt.RefusedError
	if errors.As(err, &refused) && strings.Contains(refused.Reason, "stale term") {
		staleAgent = true
	}
	res.StaleRejected = staleLocal && staleAgent

	for _, a := range agents {
		st := a.Stats()
		res.Redirects += st.Redirects
		res.Reconnects += st.Reconnects
	}
	return res, nil
}

// RunHAExperiments runs the replicated-controller story on both
// substrates.
func RunHAExperiments(cfg HAConfig) ([]HAResult, error) {
	simRes, err := RunSimHA(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: sim ha: %w", err)
	}
	liveRes, err := RunLiveHA(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: live ha: %w", err)
	}
	return []HAResult{*simRes, *liveRes}, nil
}

// WriteHACSV emits results/ha.csv, one row per substrate.
func WriteHACSV(w io.Writer, rs []HAResult) error {
	if _, err := fmt.Fprintln(w, "experiment,substrate,seed,replicas,kills,first_leader,first_term,final_leader,final_term,takeover_max_us,push_attempts,push_failures,epoch_before,epoch_after,records,export_identical,stale_rejected,resumed,converged,redirects,reconnects"); err != nil {
		return err
	}
	for _, r := range rs {
		if _, err := fmt.Fprintf(w, "ha,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%t,%t,%t,%t,%d,%d\n",
			r.Substrate, r.Seed, r.Replicas, r.Kills,
			r.FirstLeader, r.FirstTerm, r.FinalLeader, r.FinalTerm,
			r.TakeoverMaxUS, r.PushAttempts, r.PushFailures,
			r.EpochBefore, r.EpochAfter, r.Records,
			r.ExportIdentical, r.StaleRejected, r.Resumed, r.Converged,
			r.Redirects, r.Reconnects); err != nil {
			return err
		}
	}
	return nil
}

// HAMarkdown renders the HA results as a table.
func HAMarkdown(rs []HAResult) string {
	var b strings.Builder
	b.WriteString("| substrate | replicas | kills | takeover (max) | availability | epoch before → after | export identical | stale rejected | converged |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|---|---|---|\n")
	for _, r := range rs {
		avail := "n/a"
		if r.PushAttempts > 0 {
			avail = fmt.Sprintf("%.1f%%", 100*float64(r.PushAttempts-r.PushFailures)/float64(r.PushAttempts))
		}
		conv := fmt.Sprintf("%t", r.Converged)
		if r.Substrate == "sim" {
			conv = "n/a"
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %s | %s | %d → %d | %t | %t | %s |\n",
			r.Substrate, r.Replicas, r.Kills,
			(time.Duration(r.TakeoverMaxUS) * time.Microsecond).String(),
			avail, r.EpochBefore, r.EpochAfter,
			r.ExportIdentical, r.StaleRejected, conv)
	}
	return b.String()
}
