package experiments_test

import (
	"strings"
	"testing"

	"sdme/internal/experiments"
)

// TestChaosSimHATakeover: kill the elected leader mid-history; a standby
// must win the next term, replay the replicated journal into a
// byte-identical plan, resume fenced epoch numbering, and refuse the
// dead leader's stale-term frames.
func TestChaosSimHATakeover(t *testing.T) {
	res, err := experiments.RunSimHA(experiments.HAConfig{Seed: chaosSeed(7)})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstLeader < 0 || res.FinalLeader < 0 {
		t.Fatalf("missing leaders: %+v", res)
	}
	if res.FinalTerm <= res.FirstTerm {
		t.Fatalf("takeover term %d not past first term %d", res.FinalTerm, res.FirstTerm)
	}
	if res.FinalLeader == res.FirstLeader {
		t.Fatalf("dead leader %d won its own succession", res.FirstLeader)
	}
	if res.TakeoverMaxUS <= 0 {
		t.Fatalf("takeover latency %dus", res.TakeoverMaxUS)
	}
	if !res.ExportIdentical {
		t.Fatal("takeover export differs from the pre-kill plan")
	}
	if !res.Resumed {
		t.Fatalf("epochs did not resume: %d -> %d", res.EpochBefore, res.EpochAfter)
	}
	if !res.StaleRejected {
		t.Fatal("a standby accepted the dead leader's stale-term frame")
	}
	if res.PushAttempts == 0 || res.PushFailures == 0 {
		t.Fatalf("availability prober saw attempts=%d failures=%d; the takeover window should cost some pushes",
			res.PushAttempts, res.PushFailures)
	}
	if res.PushFailures >= res.PushAttempts {
		t.Fatalf("no push ever succeeded (%d/%d)", res.PushFailures, res.PushAttempts)
	}
}

// TestSimHADeterministic: the whole takeover history — election winners,
// terms, promotion times — is a function of the seed.
func TestSimHADeterministic(t *testing.T) {
	cfg := experiments.HAConfig{Seed: 21}
	a, err := experiments.RunSimHA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.RunSimHA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace {
		t.Fatalf("same seed, different takeover traces:\n%s\n%s", a.Trace, b.Trace)
	}
	if a.TakeoverMaxUS != b.TakeoverMaxUS || a.PushAttempts != b.PushAttempts || a.PushFailures != b.PushFailures {
		t.Fatalf("same seed, different measurements: %+v vs %+v", a, b)
	}
	c, err := experiments.RunSimHA(experiments.HAConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace == a.Trace {
		t.Fatalf("different seeds, identical trace %s", a.Trace)
	}
}

// TestSimHARepeatedKills: five replicas survive two consecutive leader
// assassinations, each successor still exporting the identical plan.
func TestSimHARepeatedKills(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-kill HA run is not short")
	}
	res, err := experiments.RunSimHA(experiments.HAConfig{Seed: chaosSeed(13), Replicas: 5, Kills: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(res.Trace, ";"); got < 3 {
		t.Fatalf("expected at least 3 promotions (first + 2 takeovers), trace %q", res.Trace)
	}
	if !res.ExportIdentical || !res.StaleRejected || !res.Resumed {
		t.Fatalf("multi-kill run degraded: %+v", res)
	}
}

// TestChaosLiveHATakeover: the live variant over real sockets — leader
// partitioned away, standby takes over, agents re-home via rotation and
// NotLeader redirects, and both term fences hold.
func TestChaosLiveHATakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("live HA run is not short")
	}
	res, err := experiments.RunLiveHA(experiments.HAConfig{Seed: chaosSeed(7)})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLeader == res.FirstLeader || res.FinalTerm <= res.FirstTerm {
		t.Fatalf("no real takeover: %+v", res)
	}
	if !res.ExportIdentical {
		t.Fatal("live takeover export differs from the pre-kill plan")
	}
	if !res.Resumed {
		t.Fatalf("live epochs did not resume: %d -> %d", res.EpochBefore, res.EpochAfter)
	}
	if !res.Converged {
		t.Fatal("fleet did not converge on the new leader's plan")
	}
	if !res.StaleRejected {
		t.Fatal("a stale-term push was not refused end to end")
	}
	if res.Reconnects == 0 {
		t.Fatal("no agent ever reconnected; the kill did not bite")
	}
}
