package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BoundedLabels guards the metrics registry against cardinality
// explosion: every label value handed to Registry.Counter / Gauge /
// Histogram must derive from a compile-time-bounded set (constants,
// enum String()s, node identifiers), never from raw packet or flow
// fields. One label series exists per distinct value — a label built
// from a five-tuple or packet header mints a new series per flow and
// grows the registry (and every snapshot the conformance suite
// compares) without bound under production traffic.
//
// Detection is taint-based: any expression whose evaluation touches a
// value of a type from internal/packet, or a netaddr.FiveTuple /
// netaddr.PortRange, is unbounded; the taint layer follows such values
// through locals and function results into the label-value argument
// positions.
var BoundedLabels = &Analyzer{
	Name: "boundedlabels",
	Doc:  "flag metrics label values derived from unbounded packet/flow data",
	Run:  runBoundedLabels,
}

// boundedLabelsBannedPkgs are defining-package suffixes whose types are
// per-packet (unbounded) data.
var boundedLabelsBannedPkgs = []string{"internal/packet"}

// boundedLabelsBannedTypes are individual named types (pkg-suffix,
// name) that identify flows.
var boundedLabelsBannedTypes = [][2]string{
	{"internal/netaddr", "FiveTuple"},
	{"internal/netaddr", "PortRange"},
}

func runBoundedLabels(pass *Pass) error {
	b := &boundedLabels{pass: pass}
	t := &taintAnalysis{pass: pass, spec: taintSpec{
		typeSource: bannedLabelType,
		propagate:  true,
	}}
	forEachFunc(pass.Pkg, func(fd *ast.FuncDecl) {
		t.run(fd.Body, make(FactSet), b.checkCall)
	})
	return nil
}

type boundedLabels struct {
	pass *Pass
}

// bannedLabelType reports whether a type carries per-packet/per-flow
// data.
func bannedLabelType(t types.Type) bool {
	t = deref(t)
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	for _, suffix := range boundedLabelsBannedPkgs {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	for _, bt := range boundedLabelsBannedTypes {
		if strings.HasSuffix(path, bt[0]) && n.Obj().Name() == bt[1] {
			return true
		}
	}
	return false
}

// checkCall inspects registry get-or-create calls: the variadic label
// list alternates key, value; the value positions must be clean.
func (b *boundedLabels) checkCall(call *ast.CallExpr, tainted func(ast.Expr) bool) {
	labels, ok := labelArgs(b.pass, call)
	if !ok {
		return
	}
	for i := 1; i < len(labels); i += 2 {
		if tainted(labels[i]) {
			b.pass.Reportf(labels[i].Pos(),
				"metrics label value derives from packet/flow data: unbounded cardinality (one series per flow); label values must come from a compile-time-bounded set")
		}
	}
}

// labelArgs returns the label-list arguments of a Registry.Counter /
// Gauge / Histogram call (false when the call is something else or the
// list is passed as a spread slice the analyzer cannot see through).
func labelArgs(pass *Pass, call *ast.CallExpr) ([]ast.Expr, bool) {
	if call.Ellipsis.IsValid() {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	var skip int
	switch sel.Sel.Name {
	case "Counter", "Gauge":
		skip = 1 // name
	case "Histogram":
		skip = 2 // name, bounds
	default:
		return nil, false
	}
	recv := receiverTypeOf(pass, sel)
	if recv == nil {
		return nil, false
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Name() != "Registry" || n.Obj().Pkg() == nil ||
		!strings.HasSuffix(n.Obj().Pkg().Path(), "internal/metrics") {
		return nil, false
	}
	if len(call.Args) <= skip {
		return nil, true
	}
	return call.Args[skip:], true
}
