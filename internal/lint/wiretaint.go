package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireTaint tracks wire-decoded values to enforcement state. Anything
// produced by the management-channel codec — readMsg/ReadMsg*/Decode*
// results, json.Unmarshal targets — is tainted until it flows through a
// Validate-family call; a tainted value reaching controller plan state,
// enforce deployment (Node.Install, Node.SetWeights, ...) or flow-table
// mutation is reported. The paper's dependability argument (§III-A)
// assumes devices never act on unvalidated controller input and the
// controller never solves on unvalidated measurements; this analyzer
// makes that a build-time property instead of a convention.
//
// Propagation is flow-sensitive and object-granular (taint.go) and
// follows values into function literals (the live runtime applies
// configuration via Device.Do closures). Calls to module functions are
// additionally checked against interprocedural summaries: a function
// that forwards parameter i to a sink within WireTaintDepth call edges
// is itself a sink in position i, so the report lands at the call site
// that held the tainted value.
var WireTaint = &Analyzer{
	Name: "wiretaint",
	Doc:  "flag wire-decoded values reaching enforcement state without validation",
	Run:  runWireTaint,
}

// WireTaintDepth bounds how many static call edges a sink summary
// follows below a call site (cmd/sdme-vet -taintdepth).
var WireTaintDepth = 3

// wireSinkMethods maps a defining-package path suffix to the method or
// function names that constitute enforcement state for that package.
// Matching by suffix keeps the table valid for the fixture modules the
// golden tests load (their packages end in the same suffixes).
var wireSinkMethods = map[string][]string{
	"internal/enforce":   {"Install", "SetWeights", "SetStrategy", "ApplyDelta"},
	"internal/flowtable": {"Insert", "Install", "Set", "Add"},
	"internal/controller": {
		"SolveLB", "SolveLBFine", "MarkFailed", "Reassign", "SetMeasurements",
	},
}

func runWireTaint(pass *Pass) error {
	w := &wireTaint{pass: pass, summaries: make(map[*FuncInfo][]bool)}
	w.t = &taintAnalysis{pass: pass, spec: taintSpec{
		sourceResults: w.isSourceCall,
		sourceArgs:    w.sourceArgs,
		sanitized:     w.sanitizedExprs,
		propagate:     true,
	}}
	forEachFunc(pass.Pkg, func(fd *ast.FuncDecl) {
		w.t.run(fd.Body, make(FactSet), func(call *ast.CallExpr, tainted func(ast.Expr) bool) {
			w.checkCall(call, tainted)
		})
	})
	return nil
}

type wireTaint struct {
	pass *Pass
	t    *taintAnalysis
	// summaries memoizes, per module function, which parameters reach a
	// sink (directly or through deeper summaries).
	summaries map[*FuncInfo][]bool
	inFlight  map[*FuncInfo]bool
}

// isSourceCall recognizes wire-codec producers by callee name:
// readMsg/ReadMsg*, Decode*/decode*.
func (w *wireTaint) isSourceCall(call *ast.CallExpr) bool {
	name := calleeName(w.pass, call)
	return name == "readMsg" || strings.HasPrefix(name, "ReadMsg") ||
		strings.HasPrefix(name, "Decode") || strings.HasPrefix(name, "decode")
}

// sourceArgs taints the pointer targets of json.Unmarshal and
// (json.Decoder).Decode.
func (w *wireTaint) sourceArgs(call *ast.CallExpr) []ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if pkgPath, ok := packageQualifier(w.pass, sel); ok {
		if pkgPath == "encoding/json" && sel.Sel.Name == "Unmarshal" && len(call.Args) == 2 {
			return call.Args[1:2]
		}
		return nil
	}
	if sel.Sel.Name == "Decode" && len(call.Args) == 1 {
		if recv := receiverTypeOf(w.pass, sel); recv != nil && isNamedIn(recv, "encoding/json", "Decoder") {
			return call.Args[:1]
		}
	}
	return nil
}

// sanitizedExprs treats Validate-family calls as cleansing their
// receiver and arguments.
func (w *wireTaint) sanitizedExprs(call *ast.CallExpr) []ast.Expr {
	name := calleeName(w.pass, call)
	if !strings.HasPrefix(name, "Validate") && !strings.HasPrefix(name, "validate") {
		return nil
	}
	out := append([]ast.Expr(nil), call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		out = append(out, sel.X)
	}
	return out
}

// checkCall reports tainted values reaching a sink, directly or through
// an interprocedural summary.
func (w *wireTaint) checkCall(call *ast.CallExpr, tainted func(ast.Expr) bool) {
	if desc, ok := w.sinkDesc(call); ok {
		for _, arg := range call.Args {
			if tainted(arg) {
				w.pass.Reportf(call.Pos(),
					"wire-decoded value reaches %s without a Validate call", desc)
				return
			}
		}
		return
	}
	callee := w.pass.Prog.Callee(w.pass.Pkg, call)
	if callee == nil {
		return
	}
	params := w.sinkParams(callee, WireTaintDepth)
	for i, arg := range call.Args {
		if i < len(params) && params[i] && tainted(arg) {
			w.pass.Reportf(call.Pos(),
				"wire-decoded value reaches enforcement state through %s (parameter %d) without a Validate call",
				callee.Name(), i+1)
			return
		}
	}
}

// sinkDesc classifies a call as a direct enforcement-state sink.
func (w *wireTaint) sinkDesc(call *ast.CallExpr) (string, bool) {
	obj := CalleeObj(w.pass.Pkg.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	for suffix, names := range wireSinkMethods {
		if !strings.HasSuffix(obj.Pkg().Path(), suffix) {
			continue
		}
		for _, n := range names {
			if obj.Name() == n {
				return qualifiedCallee(obj), true
			}
		}
	}
	return "", false
}

// sinkParams computes (memoized) which parameters of fi flow to a sink
// within the given call depth. Cycles resolve to "no sink" for the
// in-flight function, which is the safe under-approximation here.
func (w *wireTaint) sinkParams(fi *FuncInfo, depth int) []bool {
	if s, ok := w.summaries[fi]; ok {
		return s
	}
	if depth <= 0 || w.inFlight[fi] {
		return nil
	}
	if w.inFlight == nil {
		w.inFlight = make(map[*FuncInfo]bool)
	}
	w.inFlight[fi] = true
	defer delete(w.inFlight, fi)

	sig := fi.Obj.Type().(*types.Signature)
	out := make([]bool, sig.Params().Len())
	// One taint run per parameter keeps the attribution exact: the only
	// tainted root in the run is the parameter under test.
	sub := &wireTaint{pass: passFor(w.pass, fi.Pkg), summaries: w.summaries, inFlight: w.inFlight}
	sub.t = &taintAnalysis{pass: sub.pass, spec: taintSpec{
		sanitized: sub.sanitizedExprs,
		propagate: true,
	}}
	for i := 0; i < sig.Params().Len(); i++ {
		entry := make(FactSet)
		entry.Add(sig.Params().At(i))
		reached := false
		sub.t.run(fi.Decl.Body, entry, func(call *ast.CallExpr, tainted func(ast.Expr) bool) {
			if reached {
				return
			}
			if _, ok := sub.sinkDesc(call); ok {
				for _, arg := range call.Args {
					if tainted(arg) {
						reached = true
						return
					}
				}
				return
			}
			callee := sub.pass.Prog.Callee(sub.pass.Pkg, call)
			if callee == nil || callee == fi {
				return
			}
			deeper := w.sinkParams(callee, depth-1)
			for j, arg := range call.Args {
				if j < len(deeper) && deeper[j] && tainted(arg) {
					reached = true
					return
				}
			}
		})
		out[i] = reached
	}
	w.summaries[fi] = out
	return out
}

// passFor makes a sibling Pass targeting another package of the same
// run (summaries cross package boundaries; reporting still goes through
// the original pass).
func passFor(orig *Pass, pkg *Package) *Pass {
	if pkg == orig.Pkg {
		return orig
	}
	return &Pass{Analyzer: orig.Analyzer, Pkg: pkg, Prog: orig.Prog, report: func(Diagnostic) {}}
}

// calleeName returns the callee's bare name: resolved object name when
// type information has it, the syntactic selector/ident otherwise.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	if obj := CalleeObj(pass.Pkg.Info, call); obj != nil {
		return obj.Name()
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// qualifiedCallee renders pkg.Type.Method or pkg.Func for messages.
func qualifiedCallee(obj *types.Func) string {
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(deref(sig.Recv().Type()), qualifierShort) + "." + name
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + name
	}
	return name
}

// receiverTypeOf resolves the receiver type of a method selection.
func receiverTypeOf(pass *Pass, sel *ast.SelectorExpr) types.Type {
	if s, ok := pass.Pkg.Info.Selections[sel]; ok {
		return deref(s.Recv())
	}
	if tv, ok := pass.Pkg.Info.Types[sel.X]; ok {
		return deref(tv.Type)
	}
	return nil
}
