module bl

go 1.24
