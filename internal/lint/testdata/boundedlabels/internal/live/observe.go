// Package live exercises boundedlabels at registry call sites.
package live

import (
	"fmt"
	"strconv"

	"bl/internal/metrics"
	"bl/internal/netaddr"
	"bl/internal/packet"
)

// CountPacket mints one series per source address: positive.
func CountPacket(r *metrics.Registry, p *packet.Packet) {
	src := fmt.Sprintf("%d", p.SrcIP)
	r.Counter("pkts", "src", src).Inc() // want:boundedlabels
}

// CountFlow mints one series per flow: positive (FiveTuple is banned by
// name, and the value position is what gets flagged — "flow" is a key).
func CountFlow(r *metrics.Registry, ft netaddr.FiveTuple) {
	r.Counter("flows", "flow", fmt.Sprint(ft)).Inc() // want:boundedlabels
}

// HistogramFlow checks the bounds argument is skipped before the label
// list: positive on the value derived from the packet.
func HistogramFlow(r *metrics.Registry, p packet.Packet, lat float64) {
	r.Histogram("lat", []float64{1, 10}, "proto", strconv.Itoa(int(p.Proto))).Inc() // want:boundedlabels
}

// CountNode labels by node id and a compile-time name: negative, the
// cardinality is bounded by the topology.
func CountNode(r *metrics.Registry, nodeID int) {
	r.Counter("pkts", "node", strconv.Itoa(nodeID), "dir", "rx").Inc()
}

// CountDecision derives the label from the packet only through a
// bounded enum-like mapping the analyzer cannot prove bounded — but the
// raw field never flows in: negative.
func CountDecision(r *metrics.Registry, dropped bool) {
	verdict := "fwd"
	if dropped {
		verdict = "drop"
	}
	r.Counter("verdicts", "verdict", verdict).Inc()
}
