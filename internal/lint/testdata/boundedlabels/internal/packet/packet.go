// Package packet holds per-packet data; its import path suffix marks
// every type here as unbounded for boundedlabels.
package packet

// Packet is one dataplane packet.
type Packet struct {
	SrcIP uint32
	DstIP uint32
	Proto uint8
}
