// Package metrics is a stand-in for the real registry: the package
// suffix and the Registry type name are what boundedlabels matches.
package metrics

// Counter is a monotone counter.
type Counter struct{ n int64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.n++ }

// Registry hands out metric series keyed by label pairs.
type Registry struct{}

// Counter returns the counter for the label set.
func (r *Registry) Counter(name string, labels ...string) *Counter { return &Counter{} }

// Gauge returns the gauge for the label set.
func (r *Registry) Gauge(name string, labels ...string) *Counter { return &Counter{} }

// Histogram returns the histogram for the label set.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Counter {
	return &Counter{}
}
