// Package netaddr contributes the named flow-identifying types the
// boundedlabels table bans individually.
package netaddr

// FiveTuple identifies one flow.
type FiveTuple struct {
	Src, Dst     uint32
	SPort, DPort uint16
	Proto        uint8
}

// PortRange is a port interval.
type PortRange struct {
	Lo, Hi uint16
}
