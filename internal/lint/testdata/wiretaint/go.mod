module wt

go 1.24
