// Package mgmt mirrors the real management channel's decode-validate-
// apply pipeline in miniature, one function per wiretaint scenario.
package mgmt

import (
	"encoding/json"
	"errors"

	"wt/internal/enforce"
)

// ConfigDTO is the wire form of a configuration.
type ConfigDTO struct {
	Strategy int             `json:"strategy"`
	Weights  map[int]float64 `json:"weights"`
}

// Validate is the sanitizer wiretaint recognizes.
func (d *ConfigDTO) Validate() error {
	if d.Strategy <= 0 {
		return errors.New("bad strategy")
	}
	return nil
}

// FromDTO converts the wire form to the applied form; taint propagates
// through it.
func FromDTO(d ConfigDTO) enforce.Config {
	return enforce.Config{Strategy: d.Strategy, Weights: d.Weights}
}

// Device owns a node and applies functions to it in its own goroutine;
// the closure is where real agents install configuration.
type Device struct {
	n enforce.Node
}

// Do invokes f with the device's node.
func (d *Device) Do(f func(*enforce.Node)) bool {
	f(&d.n)
	return true
}

// ApplyUnvalidated installs wire input without validation: positive.
func ApplyUnvalidated(n *enforce.Node, data []byte) error {
	var dto ConfigDTO
	_ = json.Unmarshal(data, &dto)
	cfg := FromDTO(dto)
	return n.Install(cfg) // want:wiretaint
}

// ApplyValidated validates before use: negative.
func ApplyValidated(n *enforce.Node, data []byte) error {
	var dto ConfigDTO
	_ = json.Unmarshal(data, &dto)
	if err := dto.Validate(); err != nil {
		return err
	}
	return n.Install(FromDTO(dto))
}

// ApplyInClosure reaches the sink inside a Device.Do closure, like the
// real agent: positive (the taint layer follows values into literals).
func ApplyInClosure(d *Device, data []byte) {
	var dto ConfigDTO
	_ = json.Unmarshal(data, &dto)
	d.Do(func(n *enforce.Node) {
		n.SetWeights(dto.Weights) // want:wiretaint
	})
}

// install is a helper whose parameter flows to a sink; callers holding
// tainted values are reported at their call site.
func install(n *enforce.Node, cfg enforce.Config) error {
	return n.Install(cfg)
}

// ApplyThroughHelper reaches the sink one call down: positive at the
// helper call, via the interprocedural parameter summary.
func ApplyThroughHelper(n *enforce.Node, data []byte) error {
	var dto ConfigDTO
	_ = json.Unmarshal(data, &dto)
	return install(n, FromDTO(dto)) // want:wiretaint
}

// ApplyConstant installs compile-time configuration: negative (nothing
// wire-decoded flows in).
func ApplyConstant(n *enforce.Node) error {
	return n.Install(enforce.Config{Strategy: 1})
}

// DeltaDTO is the wire form of a configuration delta.
type DeltaDTO struct {
	SetWeights map[int]float64 `json:"set_weights"`
}

// Validate is the delta sanitizer wiretaint recognizes.
func (d *DeltaDTO) Validate() error {
	for _, v := range d.SetWeights {
		if v < 0 {
			return errors.New("negative weight")
		}
	}
	return nil
}

// DeltaFromDTO converts the wire delta to the applied form; taint
// propagates through it.
func DeltaFromDTO(d DeltaDTO) enforce.ConfigDelta {
	return enforce.ConfigDelta{SetWeights: d.SetWeights}
}

// ApplyDeltaUnvalidated applies a wire-decoded delta without validation:
// positive (ApplyDelta is an enforcement-state sink like Install).
func ApplyDeltaUnvalidated(n *enforce.Node, data []byte) error {
	var dto DeltaDTO
	_ = json.Unmarshal(data, &dto)
	return n.ApplyDelta(DeltaFromDTO(dto)) // want:wiretaint
}

// ApplyDeltaValidated validates before applying: negative.
func ApplyDeltaValidated(n *enforce.Node, data []byte) error {
	var dto DeltaDTO
	_ = json.Unmarshal(data, &dto)
	if err := dto.Validate(); err != nil {
		return err
	}
	return n.ApplyDelta(DeltaFromDTO(dto))
}

// ApplyDeltaInClosure reaches ApplyDelta inside a Device.Do closure,
// like the real agent's delta path: positive.
func ApplyDeltaInClosure(d *Device, data []byte) {
	var dto DeltaDTO
	_ = json.Unmarshal(data, &dto)
	d.Do(func(n *enforce.Node) {
		_ = n.ApplyDelta(DeltaFromDTO(dto)) // want:wiretaint
	})
}
