// Package enforce is a stand-in for the real enforcement package: its
// import path ends in internal/enforce, so wiretaint treats Install and
// SetWeights as enforcement-state sinks.
package enforce

// Config is a node configuration.
type Config struct {
	Strategy int
	Weights  map[int]float64
}

// Node is an enforcement point.
type Node struct {
	cfg Config
}

// Install applies a full configuration (wiretaint sink).
func (n *Node) Install(cfg Config) error {
	n.cfg = cfg
	return nil
}

// SetWeights applies only weight vectors (wiretaint sink).
func (n *Node) SetWeights(w map[int]float64) {
	n.cfg.Weights = w
}

// ConfigDelta is an in-place configuration edit script.
type ConfigDelta struct {
	SetWeights map[int]float64
}

// ApplyDelta applies a configuration delta in place (wiretaint sink).
func (n *Node) ApplyDelta(d ConfigDelta) error {
	for k, v := range d.SetWeights {
		n.cfg.Weights[k] = v
	}
	return nil
}
