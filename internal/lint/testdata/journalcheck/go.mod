module jc

go 1.24
