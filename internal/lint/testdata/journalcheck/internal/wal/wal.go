// Package wal exercises the journal-write audit. A write-ahead log must
// push every record to the file in exactly the order recovery will
// replay them, so the write itself happens under the append mutex — the
// one place a blocking call with a lock held is the contract rather than
// a convoy bug. Such sites carry the //vet:ignore audit directive with a
// reason; every unaudited blocking write under the lock is a finding,
// including ones hidden behind a helper call.
package wal

import (
	"io"
	"os"
	"sync"
)

// WAL is a minimal journal: a mutex serializing appends, a destination
// writer, and a staging buffer for the convoy-free flush pattern.
type WAL struct {
	mu      sync.Mutex
	w       io.Writer
	staged  []byte
	records int
}

// Append is the audited journal write: the directive records WHY the
// blocking write is deliberate. Negative.
func (l *WAL) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//vet:ignore lockedblocking -- WAL contract: record order IS the recovery order, so writes serialize under the append mutex
	if _, err := l.w.Write(rec); err != nil {
		return err
	}
	l.records++
	return nil
}

// writeOut performs the raw write (blocking, one frame below the lock
// sites that call it).
func (l *WAL) writeOut(rec []byte) error {
	_, err := l.w.Write(rec)
	return err
}

// AppendVia hides the blocking write behind a helper WITHOUT the audit
// directive: positive, reported at the lock-holding call site.
func (l *WAL) AppendVia(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeOut(rec) // want:lockedblocking
}

// AppendViaAudited is the same call chain with the audit directive:
// negative.
func (l *WAL) AppendViaAudited(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//vet:ignore lockedblocking -- audited: same serialized WAL append path as Append
	return l.writeOut(rec)
}

// AppendRaw is an unannotated direct write under the mutex: positive.
func (l *WAL) AppendRaw(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.w.Write(rec) // want:lockedblocking
	return err
}

// Stage buffers a record under the lock without touching the file: no
// blocking operation, negative.
func (l *WAL) Stage(rec []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.staged = append(l.staged, rec...)
}

// Flush swaps the staged buffer out under the lock and writes it after
// releasing: the convoy-free alternative the analyzer must NOT flag.
func (l *WAL) Flush() error {
	l.mu.Lock()
	buf := l.staged
	l.staged = nil
	l.mu.Unlock()
	_, err := l.w.Write(buf)
	return err
}

// Records reads the append count under the lock: negative.
func (l *WAL) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Open models the durable-create path: a freshly created journal fsyncs
// its PARENT DIRECTORY before any append, or the directory entry itself
// can vanish on host crash even though the file's own writes were
// synced (regression: controller.OpenJournal gained syncDir for exactly
// this). The dir fsync happens before any lock exists — negative; a
// variant that defers it under the append mutex is the convoy shape the
// analyzer must still flag.
func Open(dir *os.File, w io.Writer) (*WAL, error) {
	if err := dir.Sync(); err != nil {
		return nil, err
	}
	return &WAL{w: w}, nil
}

// SyncDirUnderLock is that variant: fsyncing the directory while
// holding the append mutex without an audit directive. Positive.
func (l *WAL) SyncDirUnderLock(dir *os.File) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return dir.Sync() // want:lockedblocking
}
