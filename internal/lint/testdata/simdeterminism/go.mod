module sd

go 1.24
