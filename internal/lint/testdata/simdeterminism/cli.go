// The module root is outside the guard: wall-clock reads are fine in
// command-facing code.
package sd

import "time"

// Stamp is a legitimate wall-clock read: negative.
func Stamp() int64 { return time.Now().UnixNano() }
