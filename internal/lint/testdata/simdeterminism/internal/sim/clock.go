// Package sim is inside the determinism guard: time must come from the
// event clock and randomness from a seeded source.
package sim

import (
	"math/rand"
	"time"
)

// Wallclock reads real time and the global RNG: positives.
func Wallclock() (int64, int) {
	now := time.Now().UnixNano() // want:simdeterminism
	n := rand.Intn(6)            // want:simdeterminism
	return now, n
}

// Seeded draws from an owned, seeded source: negative.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}
