// Package live exercises lockedblocking, in particular the
// interprocedural summaries: the blocking operation sits one or two
// static calls below the lock site and must be reported at the call the
// lock-holding function makes.
package live

import (
	"io"
	"sync"
)

// S holds a mutex and a command channel.
type S struct {
	mu sync.Mutex
	ch chan int
	w  io.Writer
}

// send performs the actual channel send (blocking, two frames below
// Flush's lock).
func (s *S) send() {
	s.ch <- 1
}

// emit is the intermediate frame.
func (s *S) emit() {
	s.send()
}

// Flush blocks through emit → send while holding the mutex: positive,
// reported here at the emit call (depth 2 below the lock site).
func (s *S) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit() // want:lockedblocking
}

// writeFrame does interface I/O (blocking, one frame down).
func (s *S) writeFrame(b []byte) error {
	_, err := s.w.Write(b)
	return err
}

// Push blocks through writeFrame's io.Writer.Write while holding the
// mutex: positive at the call site.
func (s *S) Push(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeFrame(b) // want:lockedblocking
}

// poll never blocks: the select has a default clause.
func (s *S) poll() {
	select {
	case s.ch <- 1:
	default:
	}
}

// TryEmit calls a non-blocking helper under the lock: negative.
func (s *S) TryEmit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.poll()
}

// EmitUnlocked calls the blocking helper after releasing the mutex:
// negative.
func (s *S) EmitUnlocked() {
	s.mu.Lock()
	n := len(s.ch)
	s.mu.Unlock()
	if n == 0 {
		s.emit()
	}
}

// DirectSend is the intraprocedural base case: positive.
func (s *S) DirectSend() {
	s.mu.Lock()
	s.ch <- 2 // want:lockedblocking
	s.mu.Unlock()
}
