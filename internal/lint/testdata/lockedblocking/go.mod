module lb

go 1.24
