module cc

go 1.24
