// Package cc exercises conncheck: dropped error results on
// connection-like values.
package cc

import (
	"net"
	"os"
)

// Teardown drops Close errors: positives.
func Teardown(c net.Conn, f *os.File) {
	c.Close() // want:conncheck
	f.Close() // want:conncheck
}

// TeardownChecked handles or explicitly discards the errors: negative.
func TeardownChecked(c net.Conn, f *os.File) error {
	_ = c.Close()
	return f.Close()
}
