// The module root is outside the guarded package list: a command-scoped
// goroutine that lives until process exit is fine and must not be
// flagged.
package gl

// Spin loops forever in a short-lived package: negative.
func Spin() {
	go func() {
		for {
		}
	}()
}
