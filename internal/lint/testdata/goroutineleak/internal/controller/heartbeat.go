// Package controller sits inside the goroutineleak guard: a replicated
// controller is the longest-lived process in the system, so a leaked
// election or replication goroutine accumulates across every term.
package controller

import "time"

// Replica spawns the background loops of one controller replica.
type Replica struct {
	stop    chan struct{}
	frames  chan []byte
	beatsTx int
}

// StartHeartbeatLeaky is the deliberately leaked heartbeat loop: it
// beats forever on a ticker and nothing can ever stop it — a deposed or
// closed replica would keep heartbeating until the process dies.
// Positive.
func (r *Replica) StartHeartbeatLeaky() {
	tick := time.NewTicker(50 * time.Millisecond)
	go func() { // want:goroutineleak
		for {
			<-tick.C
			r.beatsTx++
		}
	}()
}

// StartHeartbeat is the correct shape: the same ticker loop, but every
// iteration can observe the replica's stop channel. Negative.
func (r *Replica) StartHeartbeat() {
	tick := time.NewTicker(50 * time.Millisecond)
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				r.beatsTx++
			}
		}
	}()
}

// StartStreamer drains the replication frame channel; a close is its
// stop signal. Negative.
func (r *Replica) StartStreamer() {
	go func() {
		for f := range r.frames {
			_ = f
		}
	}()
}
