// Package live sits inside the goroutineleak guard (long-lived package
// suffixes); each function is one scenario.
package live

import (
	"context"
	"time"
)

// Runner spawns background goroutines.
type Runner struct {
	done chan struct{}
	work chan int
}

// StartLeaky loops forever with no stop signal: positive. The ticker
// read does not count — timer channels are never closed.
func (r *Runner) StartLeaky() {
	tick := time.NewTicker(time.Second)
	go func() { // want:goroutineleak
		for {
			<-tick.C
		}
	}()
}

// StartStoppable selects on the done channel: negative.
func (r *Runner) StartStoppable() {
	go func() {
		for {
			select {
			case <-r.done:
				return
			case v := <-r.work:
				_ = v
			}
		}
	}()
}

// StartBounded runs to completion: negative (the exit is reachable).
func (r *Runner) StartBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			r.work <- i
		}
	}()
}

// loop observes ctx.Done through a callee, which the depth-bounded
// call-graph search finds: negative.
func (r *Runner) loop(ctx context.Context) {
	for {
		if r.stopped(ctx) {
			return
		}
	}
}

func (r *Runner) stopped(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// StartNamed spawns a named method whose stop path is one call down:
// negative.
func (r *Runner) StartNamed(ctx context.Context) {
	go r.loop(ctx)
}

// spin loops forever with no stop path anywhere below it: positive even
// through the named-function indirection.
func (r *Runner) spin() {
	for {
		r.touch()
	}
}

func (r *Runner) touch() {}

// StartNamedLeaky spawns the leaky named method: positive.
func (r *Runner) StartNamedLeaky() {
	go r.spin() // want:goroutineleak
}
