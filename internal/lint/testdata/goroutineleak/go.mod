module gl

go 1.24
