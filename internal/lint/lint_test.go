package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sdme/internal/lint"
)

// fixture is a throwaway module exercising every analyzer. Lines carrying
// a trailing `// want:a,b` marker must produce exactly one diagnostic per
// named analyzer; every other line must stay clean.
var fixture = map[string]string{
	"go.mod": "module fixture\n\ngo 1.24\n",

	// The module root is outside the simdeterminism guard: wall-clock
	// reads here are legitimate and must not be flagged.
	"clock.go": `package fixture

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,

	"internal/sim/sim.go": `package sim

import (
	"math/rand"
	"time"
)

func Nondeterministic() (int64, int) {
	now := time.Now().UnixNano() // want:simdeterminism
	n := rand.Intn(10)           // want:simdeterminism
	return now, n
}

func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func Suppressed() time.Time {
	//vet:ignore simdeterminism -- boot banner only
	return time.Now()
}
`,

	// Fault schedules replay under the simulator; the guard extends to
	// them so jitter can only come from the schedule's seeded RNG.
	"internal/faultinject/fi.go": `package faultinject

import (
	"math/rand"
	"time"
)

func BadJitter() (int64, int64) {
	at := time.Now().UnixMicro() // want:simdeterminism
	j := rand.Int63n(1000)       // want:simdeterminism
	return at, j
}

func SeededJitter(seed int64) int64 {
	return rand.New(rand.NewSource(seed)).Int63n(1000)
}
`,

	// The metrics registry is inside the guard: it must read time only
	// through its injected clock, or same-seed simulation snapshots stop
	// being byte-identical.
	"internal/metrics/reg.go": `package metrics

import "time"

type Registry struct {
	clock func() int64
}

func (r *Registry) BadStamp() int64 {
	return time.Now().UnixMicro() // want:simdeterminism
}

func (r *Registry) Stamp() int64 { return r.clock() }
`,

	"internal/live/live.go": `package live

import (
	"net"
	"os"
	"sync"
	"time"
)

type Server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	conn net.Conn
	wg   sync.WaitGroup
}

func (s *Server) Bad() {
	s.mu.Lock()
	s.ch <- 1 // want:lockedblocking
	<-s.ch    // want:lockedblocking
	s.wg.Wait()                  // want:lockedblocking
	time.Sleep(time.Millisecond) // want:lockedblocking
	s.mu.Unlock()
}

func (s *Server) BadConn(buf []byte) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.conn.Write(buf) // want:lockedblocking,conncheck
}

func (s *Server) BadSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want:lockedblocking
	case v := <-s.ch:
		_ = v
	}
}

func (s *Server) Good() int {
	s.mu.Lock()
	v := len(s.ch)
	s.mu.Unlock()
	s.ch <- v
	return v
}

func (s *Server) Branch(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		s.ch <- 1
		return
	}
	s.mu.Unlock()
}

func (s *Server) SuppressedSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//vet:ignore lockedblocking -- buffered command channel, never full
	s.ch <- 9
}

func (s *Server) CloseAll(f *os.File) {
	s.conn.Close() // want:conncheck
	_ = s.conn.Close()
	f.Close() // want:conncheck
}
`,
}

// expectation is one (file, line, analyzer) a marker demands.
type expectation struct {
	file     string
	line     int
	analyzer string
}

func writeFixture(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range fixture {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func wantedDiags(root string) map[expectation]int {
	out := make(map[expectation]int)
	for name, src := range fixture {
		abs := filepath.Join(root, filepath.FromSlash(name))
		for i, line := range strings.Split(src, "\n") {
			_, marker, ok := strings.Cut(line, "// want:")
			if !ok {
				continue
			}
			for _, a := range strings.Split(strings.TrimSpace(marker), ",") {
				out[expectation{abs, i + 1, strings.TrimSpace(a)}]++
			}
		}
	}
	return out
}

func TestAnalyzersOnFixtureModule(t *testing.T) {
	root := writeFixture(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModPath != "fixture" {
		t.Fatalf("ModPath = %q, want fixture", loader.ModPath)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(pkgs))
	for i, p := range pkgs {
		paths[i] = p.Path
		for _, terr := range p.TypeErrors {
			t.Errorf("typecheck %s: %v", p.Path, terr)
		}
	}
	sort.Strings(paths)
	wantPaths := []string{"fixture", "fixture/internal/faultinject", "fixture/internal/live", "fixture/internal/metrics", "fixture/internal/sim"}
	if fmt.Sprint(paths) != fmt.Sprint(wantPaths) {
		t.Fatalf("loaded %v, want %v", paths, wantPaths)
	}

	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[expectation]int)
	for _, d := range diags {
		got[expectation{d.Pos.Filename, d.Pos.Line, d.Analyzer}]++
	}
	want := wantedDiags(root)
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s:%d: got %d %s diagnostic(s), want %d",
				k.file, k.line, got[k], k.analyzer, n)
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("%s:%d: unexpected %s diagnostic (×%d)", k.file, k.line, k.analyzer, n)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

// TestRunSingleAnalyzer checks analyzer selection the way sdme-vet -run
// uses it: only the requested analyzer's findings survive.
func TestRunSingleAnalyzer(t *testing.T) {
	root := writeFixture(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.SimDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "simdeterminism" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
}

// TestVetIgnoreWildcard checks that `//vet:ignore *` suppresses every
// analyzer on the next line.
func TestVetIgnoreWildcard(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module wild\n\ngo 1.24\n",
		"internal/sim/s.go": `package sim

import "time"

func T() int64 {
	//vet:ignore *
	return time.Now().UnixNano()
}
`,
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("suppressed line still reported: %s", d)
	}
}
