package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeak flags `go` statements in the long-lived packages whose
// goroutine has no reachable stop path: the body's CFG can neither
// reach the function exit (every path loops forever) nor observe a stop
// signal — a receive, select case or range over a closeable channel, or
// a ctx.Done()/ctx.Err() check — directly or in any statically reachable
// callee (GoroutineLeakDepth call edges). Timer channels (time.Ticker.C,
// time.Timer.C, time.After, time.Tick) do not count: a goroutine parked
// on a ticker nobody stops is exactly the leak this catches.
//
// The management channel, live runtime, simulator and metrics registry
// are long-lived by design — a leaked goroutine there accumulates for
// the lifetime of the controller process the paper's production claims
// depend on. Short-lived command packages are exempt.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "flag goroutines with no reachable stop path in long-lived packages",
	Run:  runGoroutineLeak,
}

// GoroutineLeakDepth bounds the call-graph search for a stop signal
// below the goroutine entry (cmd/sdme-vet -leakdepth).
var GoroutineLeakDepth = 3

// goroutineLeakPkgs are the guarded import-path suffixes.
var goroutineLeakPkgs = []string{
	"/internal/mgmt",
	"/internal/live",
	"/internal/sim",
	"/internal/metrics",
	"/internal/controller",
}

func runGoroutineLeak(pass *Pass) error {
	guarded := false
	for _, suffix := range goroutineLeakPkgs {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			guarded = true
			break
		}
	}
	if !guarded {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs)
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	var entry *FuncInfo
	desc := "goroutine"
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else {
		entry = pass.Prog.Callee(pass.Pkg, gs.Call)
		if entry == nil {
			return // dynamic dispatch: can't see the body
		}
		body = entry.Decl.Body
		desc = entry.Name()
	}

	// A body whose exit is reachable can terminate on its own; no stop
	// signal needed.
	if BuildCFG(body).ExitReachable() {
		return
	}
	if hasStopPath(pass, body) {
		return
	}
	// Look for a stop signal in statically reachable callees.
	roots := directCallees(pass, body)
	if entry != nil {
		roots = []*FuncInfo{entry}
	}
	found := false
	pass.Prog.Reachable(roots, GoroutineLeakDepth, func(fi *FuncInfo) {
		if !found && fi != entry && hasStopPath(passFor(pass, fi.Pkg), fi.Decl.Body) {
			found = true
		}
	})
	if found {
		return
	}
	pass.Reportf(gs.Pos(),
		"%s has no stop path: no reachable return and no ctx/done/closed-channel read (package %s is long-lived)",
		desc, pass.Pkg.Types.Name())
}

// directCallees resolves the static callees invoked directly by a body
// (used as call-graph roots for a function literal).
func directCallees(pass *Pass, body *ast.BlockStmt) []*FuncInfo {
	var out []*FuncInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fi := pass.Prog.Callee(pass.Pkg, call); fi != nil {
				out = append(out, fi)
			}
		}
		return true
	})
	return out
}

// hasStopPath scans one body (nested literals excluded — they run on
// their own schedule) for an operation that lets the goroutine observe
// shutdown: a receive/select/range on a non-timer channel, a
// context.Context Done/Err call, or an unconditional panic.
func hasStopPath(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isTimerChan(pass, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !isTimerChan(pass, n.X) {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if recv := receiverTypeOf(pass, sel); recv != nil &&
					isNamedIn(recv, "context", "Context") &&
					(sel.Sel.Name == "Done" || sel.Sel.Name == "Err") {
					found = true
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true // unwinds: not a leak, a crash
			}
		}
		return true
	})
	return found
}

// isTimerChan reports whether a channel expression is a timer source
// (time.Ticker.C / time.Timer.C fields, time.After / time.Tick calls):
// these fire forever or once but are never closed, so reading them is
// not a stop path.
func isTimerChan(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		if tv, ok := pass.Pkg.Info.Types[e.X]; ok {
			t := deref(tv.Type)
			return isNamedIn(t, "time", "Ticker") || isNamedIn(t, "time", "Timer")
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if pkgPath, ok := packageQualifier(pass, sel); ok && pkgPath == "time" {
				return sel.Sel.Name == "After" || sel.Sel.Name == "Tick"
			}
		}
	}
	return false
}
