package lint

import (
	"go/ast"
	"go/types"
)

// taintSpec classifies calls and types for one taint analysis. The
// engine (taintAnalysis) is shared by wiretaint (wire-decoded values
// until validated) and boundedlabels (packet/flow-derived values); each
// analyzer supplies its own classification.
type taintSpec struct {
	// sourceResults: a call whose results are tainted (wire decoders).
	sourceResults func(call *ast.CallExpr) bool
	// sourceArgs: arguments a call taints through pointers
	// (json.Unmarshal's target).
	sourceArgs func(call *ast.CallExpr) []ast.Expr
	// sanitized: expressions a call cleanses (Validate receiver/args).
	sanitized func(call *ast.CallExpr) []ast.Expr
	// typeSource marks whole types as tainted wherever they appear
	// (packet/flow types for boundedlabels). Optional.
	typeSource func(t types.Type) bool
	// propagate: a call with a tainted argument or receiver returns
	// tainted results.
	propagate bool
}

// taintAnalysis runs a forward, flow-sensitive, object-granular taint
// propagation over one function body. Facts are *types.Var objects (a
// tainted variable taints every field/index selection rooted at it).
type taintAnalysis struct {
	pass *Pass
	spec taintSpec
}

// rootVar unwraps an lvalue-ish expression chain (selectors, indexes,
// derefs, address-of, parens) to its base variable object, nil when the
// base is not a simple variable.
func (t *taintAnalysis) rootVar(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			// pkg.X selections root at the package, not a variable.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := t.pass.Pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := t.objOf(x).(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func (t *taintAnalysis) objOf(id *ast.Ident) types.Object {
	if o := t.pass.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return t.pass.Pkg.Info.Defs[id]
}

// exprTainted reports whether evaluating e can yield a tainted value
// under the current facts. Function literals are opaque here — their
// bodies are analyzed separately with the facts at their creation
// point.
func (t *taintAnalysis) exprTainted(e ast.Expr, facts FactSet) bool {
	if e == nil {
		return false
	}
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if v, ok := t.objOf(n).(*types.Var); ok && facts.Has(v) {
				tainted = true
			}
		case *ast.CallExpr:
			if t.callResultTainted(n, facts) {
				tainted = true
			}
			return true
		}
		if !tainted && t.spec.typeSource != nil {
			if ex, ok := n.(ast.Expr); ok {
				if tv, ok := t.pass.Pkg.Info.Types[ex]; ok && tv.Type != nil && t.spec.typeSource(tv.Type) {
					tainted = true
				}
			}
		}
		return true
	})
	return tainted
}

// callResultTainted classifies one call's results.
func (t *taintAnalysis) callResultTainted(call *ast.CallExpr, facts FactSet) bool {
	if t.spec.sourceResults != nil && t.spec.sourceResults(call) {
		return true
	}
	if !t.spec.propagate {
		return false
	}
	// A sanitizer's results are clean by definition (Validate returns
	// only an error).
	if t.spec.sanitized != nil && len(t.spec.sanitized(call)) > 0 {
		return false
	}
	for _, arg := range call.Args {
		if t.exprTainted(arg, facts) {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t.exprTainted(sel.X, facts) {
			return true
		}
	}
	return false
}

// applyCalls processes the source/sanitizer side effects of every call
// inside node n, in source order.
func (t *taintAnalysis) applyCalls(n ast.Node, facts FactSet) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t.spec.sanitized != nil {
			for _, e := range t.spec.sanitized(call) {
				if v := t.rootVar(e); v != nil {
					facts.Delete(v)
				}
			}
		}
		if t.spec.sourceArgs != nil {
			for _, e := range t.spec.sourceArgs(call) {
				if v := t.rootVar(e); v != nil {
					facts.Add(v)
				}
			}
		}
		return true
	})
}

// transfer is the dataflow transfer function: call side effects first,
// then assignment-shaped fact updates.
func (t *taintAnalysis) transfer(n ast.Node, facts FactSet) FactSet {
	t.applyCalls(n, facts)
	switch s := n.(type) {
	case *ast.ExprStmt:
		// side effects only
	case *ast.AssignStmt:
		t.assign(s.Lhs, s.Rhs, facts)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					t.assign(lhs, vs.Values, facts)
				}
			}
		}
	case *ast.RangeStmt:
		if t.exprTainted(s.X, facts) {
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if e != nil {
					if v := t.rootVar(e); v != nil {
						facts.Add(v)
					}
				}
			}
		}
	}
	return facts
}

// assign updates facts for one (possibly tuple) assignment.
func (t *taintAnalysis) assign(lhs, rhs []ast.Expr, facts FactSet) {
	for i, l := range lhs {
		var r ast.Expr
		if len(rhs) == len(lhs) {
			r = rhs[i]
		} else if len(rhs) == 1 {
			r = rhs[0] // tuple-producing call: every LHS shares its taint
		}
		v := t.rootVar(l)
		if v == nil {
			continue
		}
		if r != nil && t.exprTainted(r, facts) {
			facts.Add(v)
		} else if _, plain := l.(*ast.Ident); plain {
			// Strong update only for whole-variable writes; writing one
			// field of a tainted struct does not clean the rest.
			facts.Delete(v)
		}
	}
}

// run analyzes one function body: fixpoint first, then a reporting walk
// that hands every call (with a taint predicate closed over the facts
// in force at that point) to onCall. Function literals are analyzed
// recursively with the facts at their creation point, so a tainted
// value captured by a closure is still tracked to sinks inside it.
func (t *taintAnalysis) run(body *ast.BlockStmt, entry FactSet, onCall func(call *ast.CallExpr, tainted func(ast.Expr) bool)) {
	cfg := BuildCFG(body)
	in := Forward(cfg, entry, t.transfer)
	WalkReachable(cfg, in, t.transfer, func(n ast.Node, facts FactSet) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.FuncLit:
				t.run(node.Body, facts.Clone(), onCall)
				return false
			case *ast.CallExpr:
				onCall(node, func(e ast.Expr) bool { return t.exprTainted(e, facts) })
			}
			return true
		})
	})
}
