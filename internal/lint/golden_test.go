package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdme/internal/lint"
)

// TestGoldenFixtures runs the full analyzer set over every fixture
// module under testdata/, through the production loader — the same code
// path cmd/sdme-vet takes. Each fixture line carrying a trailing
// `// want:a,b` marker must produce exactly one diagnostic per named
// analyzer, and no other line may produce any. One module per analyzer
// keeps positives and negatives reviewable side by side; the corpus is
// the regression suite for the dataflow engine (a CFG or call-graph bug
// shows up here as a missing or spurious marker).
func TestGoldenFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("testdata", e.Name())
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			runGoldenModule(t, dir)
		})
	}
	if ran == 0 {
		t.Fatal("no fixture modules under testdata/")
	}
}

func runGoldenModule(t *testing.T, dir string) {
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("typecheck %s: %v", p.Path, terr)
		}
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[expectation]int)
	for _, d := range diags {
		got[expectation{d.Pos.Filename, d.Pos.Line, d.Analyzer}]++
	}
	want := goldenWant(t, dir)
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s:%d: got %d %s diagnostic(s), want %d",
				k.file, k.line, got[k], k.analyzer, n)
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("%s:%d: unexpected %s diagnostic (×%d)", k.file, k.line, k.analyzer, n)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

// goldenWant collects the `// want:` markers from a fixture module's
// sources on disk.
func goldenWant(t *testing.T, dir string) map[expectation]int {
	out := make(map[expectation]int)
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		src, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			_, marker, ok := strings.Cut(line, "// want:")
			if !ok {
				continue
			}
			for _, a := range strings.Split(strings.TrimSpace(marker), ",") {
				out[expectation{abs, i + 1, strings.TrimSpace(a)}]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// BenchmarkVetRepo measures a full sdme-vet pass over this repository:
// load + type-check every module package, run all analyzers. CI asserts
// the wall-clock stays under its budget; the benchmark gives the number
// a local place to regress visibly first.
func BenchmarkVetRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader("../..")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := lint.Run(pkgs, lint.Analyzers())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			for _, d := range diags {
				b.Logf("finding: %s", d)
			}
			b.Fatalf("repo tree has %d finding(s); the benchmark expects a clean tree", len(diags))
		}
	}
}
