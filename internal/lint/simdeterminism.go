package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDeterminism flags nondeterminism sources in the simulation
// packages. The discrete-event simulator, the experiment harness and the
// workload generator must derive every timestamp from the event clock
// and every random draw from a seeded *rand.Rand threaded through the
// call tree: a stray time.Now or global math/rand call makes a resumed
// or re-seeded run diverge from the original, which breaks the
// reproducibility the figure-scale experiments depend on.
//
// Flagged inside simDeterminismPkgs (non-test files only):
//   - time.Now, time.Since, time.Until — wall-clock reads;
//   - package-level math/rand functions (rand.Intn, rand.Float64,
//     rand.Shuffle, …) — they draw from the process-global source.
//     Constructors of private sources (rand.New, rand.NewSource,
//     rand.NewZipf) stay allowed.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "flag wall-clock and global-rand use inside the deterministic simulation packages",
	Run:  runSimDeterminism,
}

// simDeterminismPkgs are the import-path suffixes the analyzer guards.
var simDeterminismPkgs = []string{
	"/internal/sim",
	"/internal/experiments",
	"/internal/workload",
	// Fault schedules must replay identically under the simulator; jitter
	// comes from the schedule's own seeded RNG, never the global source.
	"/internal/faultinject",
	// The metrics registry timestamps samples through its injected Clock;
	// a wall-clock read here would make same-seed simulation snapshots
	// differ byte for byte, breaking the determinism regression test.
	"/internal/metrics",
}

// timeWallClock names the time functions that read the wall clock.
var timeWallClock = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// randConstructors names the math/rand functions that build private
// sources instead of drawing from the global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSimDeterminism(pass *Pass) error {
	guarded := false
	for _, suffix := range simDeterminismPkgs {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			guarded = true
			break
		}
	}
	if !guarded {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageQualifier(pass, sel)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				if timeWallClock[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; sim time must come from the event clock for reproducible resumes",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] && isFunc(pass, sel.Sel) {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the global math/rand source; thread a seeded *rand.Rand instead",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// packageQualifier reports whether sel is `pkgname.X` for an imported
// package, returning that package's import path.
func packageQualifier(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isFunc reports whether the selected object is a function (as opposed
// to a package-level variable or type).
func isFunc(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	return ok
}
