package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Program is the whole-analysis view shared by every analyzer of one
// Run: all loaded packages, an index of declared functions, memoized
// per-function CFGs and a package-level call graph with static dispatch
// resolution. Analyzers reach it through Pass.Prog; purely syntactic
// analyzers can ignore it — construction is cheap and everything
// expensive (CFGs, the call graph) is built lazily and memoized.
type Program struct {
	Pkgs []*Package

	funcs map[*types.Func]*FuncInfo
	// order keeps FuncInfos in deterministic (package, position) order
	// for iteration.
	order []*FuncInfo

	callgraphBuilt bool
}

// FuncInfo is one function or method declared with a body in the
// analyzed packages.
type FuncInfo struct {
	// Obj is the type-checker's object for the function.
	Obj *types.Func
	// Decl is the syntax; Decl.Body is non-nil.
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package
	// Callees are the statically resolved outgoing call edges, in
	// source order (duplicates preserved: one entry per call site).
	// Populated by Program.CallGraph.
	Callees []*FuncInfo

	cfg *CFG
}

// Name returns the function's package-qualified name for messages.
func (fi *FuncInfo) Name() string {
	recv := fi.Obj.Type().(*types.Signature).Recv()
	if recv != nil {
		return types.TypeString(deref(recv.Type()), qualifierShort) + "." + fi.Obj.Name()
	}
	return fi.Obj.Name()
}

// NewProgram indexes the declared functions of the given packages.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs, funcs: make(map[*types.Func]*FuncInfo)}
	for _, pkg := range pkgs {
		forEachFunc(pkg, func(fd *ast.FuncDecl) {
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
			p.funcs[obj] = fi
			p.order = append(p.order, fi)
		})
	}
	return p
}

// Funcs returns every indexed function in deterministic order.
func (p *Program) Funcs() []*FuncInfo { return p.order }

// FuncOf returns the FuncInfo for a *types.Func, nil when the function
// is not declared (with a body) in the analyzed packages — standard
// library, interface methods, externally declared.
func (p *Program) FuncOf(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	return p.funcs[obj]
}

// CFGOf returns the function's control-flow graph, built on first use.
func (p *Program) CFGOf(fi *FuncInfo) *CFG {
	if fi.cfg == nil {
		fi.cfg = BuildCFG(fi.Decl.Body)
	}
	return fi.cfg
}

// CalleeObj resolves the callee object of a call expression using the
// package's type information. Resolution is static: direct calls to
// package-level functions, method calls on concrete receivers (the
// type-checker's selection gives the concrete method), and
// package-qualified calls. Calls through interface values, function
// variables or built-ins return nil.
func CalleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// Interface dispatch yields the interface's method object,
				// which has no body in the program; FuncOf filters it.
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func) has no selection entry.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Callee resolves a call site to a function declared in the program,
// nil for dynamic or external calls.
func (p *Program) Callee(pkg *Package, call *ast.CallExpr) *FuncInfo {
	return p.FuncOf(CalleeObj(pkg.Info, call))
}

// CallGraph builds (once) the static call graph over the program's
// functions: for every FuncInfo, Callees lists the program functions it
// calls directly (including calls inside `go` and `defer` statements
// and nested function literals — the literal runs with the enclosing
// function's identity for reachability purposes).
func (p *Program) CallGraph() {
	if p.callgraphBuilt {
		return
	}
	p.callgraphBuilt = true
	for _, fi := range p.order {
		fi := fi
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := p.Callee(fi.Pkg, call); callee != nil {
				fi.Callees = append(fi.Callees, callee)
			}
			return true
		})
	}
}

// Reachable walks the call graph from the given roots up to depth edges
// deep (depth < 0: unbounded) and invokes visit for every function
// reached, roots included. Visit order is deterministic; each function
// is visited once.
func (p *Program) Reachable(roots []*FuncInfo, depth int, visit func(*FuncInfo)) {
	p.CallGraph()
	type item struct {
		fi *FuncInfo
		d  int
	}
	seen := make(map[*FuncInfo]bool)
	queue := make([]item, 0, len(roots))
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, item{r, 0})
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		visit(it.fi)
		if depth >= 0 && it.d >= depth {
			continue
		}
		for _, c := range it.fi.Callees {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, item{c, it.d + 1})
			}
		}
	}
}

// sortedFuncNames renders a deterministic list of function names (used
// in diagnostics that cite multiple functions).
func sortedFuncNames(fis []*FuncInfo) []string {
	names := make([]string, len(fis))
	for i, fi := range fis {
		names[i] = fi.Name()
	}
	sort.Strings(names)
	return names
}
