package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Fset is shared across every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info carry full type information. Standard-library
	// imports are type-checked from GOROOT source, module imports from
	// the module tree, so selections resolve to real sync/net/time
	// objects without any export-data dependency.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints (best effort: the
	// analyzers still run on partially typed trees).
	TypeErrors []error
}

// Loader loads module packages with the standard library's tooling
// only: go/parser for syntax, go/types for semantics, and the
// source-level importer for GOROOT packages. It is the replacement for
// x/tools' go/packages in this dependency-free setup; test files are
// not loaded.
type Loader struct {
	// ModRoot is the directory containing go.mod; ModPath the declared
	// module path.
	ModRoot, ModPath string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // by import path; nil entry = in progress
}

// NewLoader locates the enclosing module of dir (walking upward to the
// nearest go.mod) and prepares a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	// The source importer resolves GOROOT packages via go/build; with
	// cgo disabled every package it needs (net included) has a pure-Go
	// build, so no compiled export data is required.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     std,
		pkgs:    make(map[string]*Package),
	}, nil
}

// Load resolves the patterns ("./...", "./internal/live", "dir/...",
// or import paths rooted at the module path) and returns the matched
// packages, loading transitive module dependencies as needed (the
// dependencies are type-checked but only matched packages are
// returned).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "/")
		if rest, ok := strings.CutPrefix(pat, l.ModPath); ok && (rest == "" || rest[0] == '/') {
			pat = "." + rest
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModRoot, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walk %s: %w", base, err)
		}
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains non-test Go sources.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile selects the files the loader analyzes: non-test Go
// sources (generated or not).
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// loadPackage parses and type-checks one module package (memoized).
func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: package %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, e.Name()), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: package %s has no Go files", path)
	}

	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even when soft errors were recorded via
	// conf.Error; analyzers run on whatever typed best effort produced.
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	pkg.Files = files
	l.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter routes module-internal imports through the loader and
// everything else (the standard library) through the source importer.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.l.ModRoot, 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.l.ModPath || strings.HasPrefix(path, m.l.ModPath+"/") {
		pkg, err := m.l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: no type information for %s", path)
		}
		return pkg.Types, nil
	}
	return m.l.std.ImportFrom(path, dir, mode)
}
