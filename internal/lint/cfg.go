package lint

import (
	"go/ast"
	"go/token"
)

// CFG is a per-function control-flow graph over the function's AST. Each
// block holds simple statements and branch conditions in evaluation
// order; composite statements (if/for/switch/select) are decomposed into
// edges. The graph is intentionally statement-grained: the dataflow
// layer (dataflow.go) folds a transfer function over Block.Nodes, so
// expression-level precision lives in the transfer, not the graph.
type CFG struct {
	// Entry is Blocks[0]; Exit is the designated return/fall-off block
	// (always present, possibly unreachable for a function that cannot
	// return).
	Entry, Exit *CFGBlock
	Blocks      []*CFGBlock
}

// CFGBlock is one straight-line run of AST nodes.
type CFGBlock struct {
	// Index is the block's position in CFG.Blocks (deterministic across
	// runs, used to order worklists).
	Index int
	// Nodes are simple statements (assign, call, send, return, go,
	// defer, decl) and branch-condition expressions, in order.
	Nodes []ast.Node
	// Succs are the possible successors.
	Succs []*CFGBlock
}

// ExitReachable reports whether the exit block is reachable from the
// entry — i.e. whether some path through the function terminates
// normally. A goroutine body spinning in `for { ... }` with no return
// has an unreachable exit.
func (g *CFG) ExitReachable() bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *CFGBlock) bool
	walk = func(b *CFGBlock) bool {
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		if b == g.Exit {
			return true
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

// BuildCFG constructs the control-flow graph of one function body. The
// same builder serves declared functions and function literals.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.edge(b.cur, b.cfg.Exit)
	b.patchGotos()
	return b.cfg
}

// loopFrame tracks one enclosing breakable/continuable construct.
type loopFrame struct {
	label     string
	brk, cont *CFGBlock // cont nil for switch/select frames
	isLoop    bool
}

type cfgBuilder struct {
	cfg  *CFG
	cur  *CFGBlock
	loop []loopFrame

	// pendingLabel is the label immediately preceding a for/switch/
	// select statement, consumed by that statement's frame.
	pendingLabel string

	labels     map[string]*CFGBlock // label -> block starting the labeled stmt
	gotoFixups []gotoFixup
}

type gotoFixup struct {
	from  *CFGBlock
	label string
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock begins a fresh block as the current one (no implicit edge).
func (b *cfgBuilder) startBlock() *CFGBlock {
	blk := b.newBlock()
	b.cur = blk
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// frameFor finds the innermost frame matching a break/continue label.
func (b *cfgBuilder) frameFor(label string, needLoop bool) *loopFrame {
	for i := len(b.loop) - 1; i >= 0; i-- {
		f := &b.loop[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		if b.labels == nil {
			b.labels = make(map[string]*CFGBlock)
		}
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.startBlock() // dead code after return

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.frameFor(label, false); f != nil {
				b.edge(b.cur, f.brk)
			}
			b.startBlock()
		case token.CONTINUE:
			if f := b.frameFor(label, true); f != nil && f.cont != nil {
				b.edge(b.cur, f.cont)
			}
			b.startBlock()
		case token.GOTO:
			b.gotoFixups = append(b.gotoFixups, gotoFixup{b.cur, label})
			b.startBlock()
		case token.FALLTHROUGH:
			// Handled structurally by the switch builder (the case body
			// already gets an edge to the next case's body).
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.startBlock()
		b.edge(condBlk, thenBlk)
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseBlk := b.startBlock()
			b.edge(condBlk, elseBlk)
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		body := b.startBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.loop = append(b.loop, loopFrame{label: label, brk: after, cont: post, isLoop: true})
		b.stmtList(s.Body.List)
		b.loop = b.loop[:len(b.loop)-1]
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		} else {
			b.edge(post, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s) // the range statement itself: X evaluation + iteration vars
		after := b.newBlock()
		body := b.startBlock()
		b.edge(head, body)
		b.edge(head, after) // empty collection / closed channel
		b.loop = append(b.loop, loopFrame{label: label, brk: after, cont: head, isLoop: true})
		b.stmtList(s.Body.List)
		b.loop = b.loop[:len(b.loop)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, func(cc *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, len(cc.List))
			for i, e := range cc.List {
				nodes[i] = e
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		b.add(s) // the select header carries the blocking decision
		selBlk := b.cur
		after := b.newBlock()
		b.loop = append(b.loop, loopFrame{label: label, brk: after})
		for _, cc := range s.Body.List {
			cl, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			caseBlk := b.startBlock()
			b.edge(selBlk, caseBlk)
			if cl.Comm != nil {
				b.stmt(cl.Comm)
			}
			b.stmtList(cl.Body)
			b.edge(b.cur, after)
		}
		b.loop = b.loop[:len(b.loop)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever: after is unreachable.
			b.startBlock()
		}
		b.cur = after

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				// panic unwinds: nothing after this point runs normally.
				b.startBlock()
			}
		}

	default:
		// Simple statements: assign, send, incdec, decl, defer, go, empty.
		b.add(s)
	}
}

// switchBody builds the shared case-clause structure of switch and type
// switch; caseNodes extracts the per-clause guard expressions.
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, caseNodes func(*ast.CaseClause) []ast.Node) {
	headBlk := b.cur
	after := b.newBlock()
	b.loop = append(b.loop, loopFrame{label: label, brk: after})
	var clauseBlocks []*CFGBlock
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cc := range body.List {
		cl, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cl.List == nil {
			hasDefault = true
		}
		caseBlk := b.startBlock()
		b.edge(headBlk, caseBlk)
		for _, n := range caseNodes(cl) {
			b.add(n)
		}
		clauseBlocks = append(clauseBlocks, caseBlk)
		clauses = append(clauses, cl)
	}
	for i, cl := range clauses {
		b.cur = clauseBlocks[i]
		// Re-enter the clause block to append its body after the guards.
		b.stmtList(cl.Body)
		if fallsThrough(cl.Body) && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.loop = b.loop[:len(b.loop)-1]
	if !hasDefault {
		b.edge(headBlk, after)
	}
	b.cur = after
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// patchGotos resolves goto edges after all labels are known.
func (b *cfgBuilder) patchGotos() {
	for _, fix := range b.gotoFixups {
		if target, ok := b.labels[fix.label]; ok {
			b.edge(fix.from, target)
		}
	}
}
