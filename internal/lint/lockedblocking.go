package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockedBlocking flags operations that can block for unbounded time
// while a sync.Mutex or sync.RWMutex is held. A goroutine parked on a
// channel or a socket with a mutex held convoys every other goroutine
// needing that mutex — in the lock-heavy live runtime and management
// channel this turns one slow peer into a stalled dataplane.
//
// The lock tracking is an intra-procedural linear walk of each function
// body: x.Lock()/x.RLock() marks the mutex held, x.Unlock()/x.RUnlock()
// releases it, `defer x.Unlock()` keeps it held to the end of the body.
// While any mutex is held it reports:
//
//   - channel sends and receives;
//   - select statements without a default clause;
//   - sync.WaitGroup.Wait;
//   - method calls on net package values (conn reads/writes/accepts);
//   - io.Reader/io.Writer interface reads and writes (and the io
//     package's ReadFull/ReadAll/Copy helpers) — socket I/O usually
//     hides behind these interfaces;
//   - time.Sleep.
//
// Blocking is also tracked interprocedurally: a call to a module
// function whose body (or any static callee up to LockedBlockingDepth
// edges deep) performs one of the operations above is reported at the
// mutex-holding call site, with the call chain and the blocking
// operation's position in the message. A helper that does channel I/O
// two frames down no longer hides the convoy from the analyzer.
//
// Branches are analyzed with a copy of the held set, so a conditional
// unlock does not leak out of its branch. Function literals are skipped:
// a closure body runs at an unknown time under unknown locks.
var LockedBlocking = &Analyzer{
	Name: "lockedblocking",
	Doc:  "flag blocking operations performed (or reachable by call) while a sync mutex is held",
	Run:  runLockedBlocking,
}

// LockedBlockingDepth bounds how many static call edges the analyzer
// follows below a lock site looking for a blocking operation
// (cmd/sdme-vet -lockdepth). Depth 0 disables the interprocedural pass.
var LockedBlockingDepth = 3

func runLockedBlocking(pass *Pass) error {
	c := &lockChecker{pass: pass, summaries: make(map[*FuncInfo]*blockSummary)}
	forEachFunc(pass.Pkg, func(fd *ast.FuncDecl) {
		c.block(fd.Body.List, make(map[string]token.Pos))
	})
	return nil
}

// lockChecker walks one function body.
type lockChecker struct {
	pass *Pass
	// summaries memoizes per-function blocking summaries for the
	// interprocedural pass. A nil entry means "does not block".
	summaries map[*FuncInfo]*blockSummary
	inFlight  map[*FuncInfo]bool
}

// heldNames renders the held set for messages, deterministic order.
func heldNames(held map[string]token.Pos) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// block walks a statement list, threading the held-lock set through it.
// The map is mutated in place for sequential flow; branches get copies.
func (c *lockChecker) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		c.stmt(s, held)
	}
}

// copyHeld clones the held set for branch analysis.
func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *lockChecker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, kind, ok := c.mutexOp(call); ok {
				switch kind {
				case "Lock", "RLock":
					held[name] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, name)
				}
				return
			}
		}
		c.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held to the end of the
		// body, which the linear walk models by simply not releasing.
		// Other deferred calls run after the body too — their blocking
		// behaviour is not attributable to this point, so skip them.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks;
		// only evaluate the call's arguments.
		for _, arg := range s.Call.Args {
			c.expr(arg, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			c.pass.Reportf(s.Pos(), "channel send while mutex %s is held", heldNames(held))
		}
		c.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.expr(e, held)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		c.block(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.expr(s.Cond, inner)
		}
		c.block(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.block(cl.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.block(cl.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			c.pass.Reportf(s.Pos(), "select without default blocks while mutex %s is held", heldNames(held))
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.block(cl.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		c.block(s.List, copyHeld(held))
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	}
}

// selectHasDefault reports whether a select carries a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cl, ok := cc.(*ast.CommClause); ok && cl.Comm == nil {
			return true
		}
	}
	return false
}

// expr inspects an expression tree for blocking operations, skipping
// nested function literals.
func (c *lockChecker) expr(e ast.Expr, held map[string]token.Pos) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.pass.Reportf(n.Pos(), "channel receive while mutex %s is held", heldNames(held))
			}
		case *ast.CallExpr:
			c.blockingCall(n, held)
		}
		return true
	})
}

// blockingCall reports calls that block — directly (WaitGroup.Wait,
// net/io I/O, time.Sleep) or through a module callee whose summary says
// some path blocks.
func (c *lockChecker) blockingCall(call *ast.CallExpr, held map[string]token.Pos) {
	if desc, ok := directBlockingCall(c.pass, call); ok {
		c.pass.Reportf(call.Pos(), "%s while mutex %s is held", desc, heldNames(held))
		return
	}
	if LockedBlockingDepth <= 0 {
		return
	}
	callee := c.pass.Prog.Callee(c.pass.Pkg, call)
	if callee == nil {
		return
	}
	if s := c.summary(callee, LockedBlockingDepth); s != nil {
		c.pass.Reportf(call.Pos(), "call to %s may block (%s via %s at %s) while mutex %s is held",
			callee.Name(), s.op, strings.Join(s.chain, " → "),
			c.pass.Pkg.Fset.Position(s.pos), heldNames(held))
	}
}

// blockSummary records why a function may block: the operation, its
// position, and the call chain from the summarized function down to it.
type blockSummary struct {
	op    string
	pos   token.Pos
	chain []string
}

// summary computes (memoized) whether fi can block within depth call
// edges. Recursion through a cycle under-approximates to non-blocking
// for the in-flight functions.
func (c *lockChecker) summary(fi *FuncInfo, depth int) *blockSummary {
	if s, ok := c.summaries[fi]; ok {
		return s
	}
	if depth <= 0 || c.inFlight[fi] {
		return nil
	}
	if c.inFlight == nil {
		c.inFlight = make(map[*FuncInfo]bool)
	}
	c.inFlight[fi] = true
	defer delete(c.inFlight, fi)

	pass := passFor(c.pass, fi.Pkg)
	var found *blockSummary
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			// Runs at another time or on another goroutine: its blocking
			// is not attributable to this call.
			return false
		case *ast.SendStmt:
			found = &blockSummary{op: "channel send", pos: n.Pos(), chain: []string{fi.Name()}}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = &blockSummary{op: "channel receive", pos: n.Pos(), chain: []string{fi.Name()}}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				found = &blockSummary{op: "select without default", pos: n.Pos(), chain: []string{fi.Name()}}
			}
			return false // comm exprs of a defaulted select don't block
		case *ast.RangeStmt:
			if tv, ok := pass.Pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = &blockSummary{op: "range over channel", pos: n.Pos(), chain: []string{fi.Name()}}
					return false
				}
			}
		case *ast.CallExpr:
			if desc, ok := directBlockingCall(pass, n); ok {
				found = &blockSummary{op: desc, pos: n.Pos(), chain: []string{fi.Name()}}
				return false
			}
			if callee := pass.Prog.Callee(pass.Pkg, n); callee != nil && callee != fi {
				if sub := c.summary(callee, depth-1); sub != nil {
					found = &blockSummary{
						op:    sub.op,
						pos:   sub.pos,
						chain: append([]string{fi.Name()}, sub.chain...),
					}
					return false
				}
			}
		}
		return true
	})
	c.summaries[fi] = found
	return found
}

// directBlockingCall classifies one call as a known blocking operation.
func directBlockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Package-level functions: time.Sleep and the io helpers.
	if pkgPath, ok := packageQualifier(pass, sel); ok {
		switch {
		case pkgPath == "time" && sel.Sel.Name == "Sleep":
			return "time.Sleep", true
		case pkgPath == "io" && ioBlockingFuncs[sel.Sel.Name]:
			return "io." + sel.Sel.Name, true
		}
		return "", false
	}
	recv := receiverTypeOf(pass, sel)
	if recv == nil {
		return "", false
	}
	if isNamedIn(recv, "sync", "WaitGroup") && sel.Sel.Name == "Wait" {
		return "sync.WaitGroup.Wait", true
	}
	switch pkgOf(recv) {
	case "net":
		if netBlockingMethods[sel.Sel.Name] {
			return types.TypeString(recv, qualifierShort) + "." + sel.Sel.Name + " on a net connection", true
		}
	case "io":
		if ioBlockingMethods[sel.Sel.Name] {
			return types.TypeString(recv, qualifierShort) + "." + sel.Sel.Name, true
		}
	case "os":
		if isNamedIn(recv, "os", "File") && osFileBlockingMethods[sel.Sel.Name] {
			return "os.File." + sel.Sel.Name, true
		}
	}
	return "", false
}

// netBlockingMethods are the net connection methods that can block.
var netBlockingMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadFromUDP": true, "WriteToUDP": true, "ReadMsgUDP": true,
	"WriteMsgUDP": true, "Accept": true, "AcceptTCP": true,
}

// ioBlockingMethods are the io interface methods that can block (the
// wire codec writes frames through io.Writer).
var ioBlockingMethods = map[string]bool{
	"Read": true, "Write": true, "ReadByte": true, "WriteByte": true,
}

// osFileBlockingMethods are the os.File operations that hit the disk:
// an fsync can stall for seconds on a loaded device, so holding a mutex
// across one is a convoy unless it IS the durability contract
// (journal appends carry the audit directive for exactly that).
var osFileBlockingMethods = map[string]bool{
	"Sync": true, "Truncate": true,
}

// ioBlockingFuncs are io package helpers that loop over Read/Write.
var ioBlockingFuncs = map[string]bool{
	"ReadFull": true, "ReadAll": true, "Copy": true, "CopyN": true, "ReadAtLeast": true,
}

// mutexOp recognizes x.Lock / x.RLock / x.Unlock / x.RUnlock calls on
// sync mutexes and returns the lock's source expression and operation.
func (c *lockChecker) mutexOp(call *ast.CallExpr) (name, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	recv := c.receiverType(sel)
	if recv == nil {
		return "", "", false
	}
	if !isNamedIn(recv, "sync", "Mutex") && !isNamedIn(recv, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// receiverType resolves the type of sel.X for a method selection, nil
// when type information is unavailable.
func (c *lockChecker) receiverType(sel *ast.SelectorExpr) types.Type {
	if s, ok := c.pass.Pkg.Info.Selections[sel]; ok {
		return deref(s.Recv())
	}
	if tv, ok := c.pass.Pkg.Info.Types[sel.X]; ok {
		return deref(tv.Type)
	}
	return nil
}

// deref unwraps pointers.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// isNamedIn reports whether t is the named type pkg.name.
func isNamedIn(t types.Type, pkg, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

// pkgOf returns the defining package path of a named type ("" for
// unnamed types).
func pkgOf(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// qualifierShort renders type names package-qualified without the full
// import path.
func qualifierShort(p *types.Package) string { return p.Name() }
