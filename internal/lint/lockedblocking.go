package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockedBlocking flags operations that can block for unbounded time
// while a sync.Mutex or sync.RWMutex is held. A goroutine parked on a
// channel or a socket with a mutex held convoys every other goroutine
// needing that mutex — in the lock-heavy live runtime and management
// channel this turns one slow peer into a stalled dataplane.
//
// The check is an intra-procedural linear walk of each function body:
// x.Lock()/x.RLock() marks the mutex held, x.Unlock()/x.RUnlock()
// releases it, `defer x.Unlock()` keeps it held to the end of the body.
// While any mutex is held it reports:
//
//   - channel sends and receives;
//   - select statements without a default clause;
//   - sync.WaitGroup.Wait;
//   - method calls on net package values (conn reads/writes/accepts);
//   - time.Sleep.
//
// Branches are analyzed with a copy of the held set, so a conditional
// unlock does not leak out of its branch. Function literals are skipped:
// a closure body runs at an unknown time under unknown locks.
var LockedBlocking = &Analyzer{
	Name: "lockedblocking",
	Doc:  "flag blocking operations performed while a sync mutex is held",
	Run:  runLockedBlocking,
}

func runLockedBlocking(pass *Pass) error {
	forEachFunc(pass.Pkg, func(fd *ast.FuncDecl) {
		c := &lockChecker{pass: pass}
		c.block(fd.Body.List, make(map[string]token.Pos))
	})
	return nil
}

// lockChecker walks one function body.
type lockChecker struct {
	pass *Pass
}

// heldNames renders the held set for messages, deterministic order.
func heldNames(held map[string]token.Pos) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// block walks a statement list, threading the held-lock set through it.
// The map is mutated in place for sequential flow; branches get copies.
func (c *lockChecker) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		c.stmt(s, held)
	}
}

// copyHeld clones the held set for branch analysis.
func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *lockChecker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, kind, ok := c.mutexOp(call); ok {
				switch kind {
				case "Lock", "RLock":
					held[name] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, name)
				}
				return
			}
		}
		c.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held to the end of the
		// body, which the linear walk models by simply not releasing.
		// Other deferred calls run after the body too — their blocking
		// behaviour is not attributable to this point, so skip them.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks;
		// only evaluate the call's arguments.
		for _, arg := range s.Call.Args {
			c.expr(arg, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			c.pass.Reportf(s.Pos(), "channel send while mutex %s is held", heldNames(held))
		}
		c.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.expr(e, held)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		c.block(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.expr(s.Cond, inner)
		}
		c.block(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.block(cl.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.block(cl.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			c.pass.Reportf(s.Pos(), "select without default blocks while mutex %s is held", heldNames(held))
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.block(cl.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		c.block(s.List, copyHeld(held))
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	}
}

// selectHasDefault reports whether a select carries a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cl, ok := cc.(*ast.CommClause); ok && cl.Comm == nil {
			return true
		}
	}
	return false
}

// expr inspects an expression tree for blocking operations, skipping
// nested function literals.
func (c *lockChecker) expr(e ast.Expr, held map[string]token.Pos) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.pass.Reportf(n.Pos(), "channel receive while mutex %s is held", heldNames(held))
			}
		case *ast.CallExpr:
			c.blockingCall(n, held)
		}
		return true
	})
}

// blockingCall reports calls that block: WaitGroup.Wait, net I/O,
// time.Sleep.
func (c *lockChecker) blockingCall(call *ast.CallExpr, held map[string]token.Pos) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// time.Sleep (package-level function).
	if pkgPath, ok := packageQualifier(c.pass, sel); ok {
		if pkgPath == "time" && sel.Sel.Name == "Sleep" {
			c.pass.Reportf(call.Pos(), "time.Sleep while mutex %s is held", heldNames(held))
		}
		return
	}
	recv := c.receiverType(sel)
	if recv == nil {
		return
	}
	if isNamedIn(recv, "sync", "WaitGroup") && sel.Sel.Name == "Wait" {
		c.pass.Reportf(call.Pos(), "sync.WaitGroup.Wait while mutex %s is held", heldNames(held))
		return
	}
	if pkgOf(recv) == "net" && netBlockingMethods[sel.Sel.Name] {
		c.pass.Reportf(call.Pos(), "%s.%s on a net connection while mutex %s is held",
			types.TypeString(recv, qualifierShort), sel.Sel.Name, heldNames(held))
	}
}

// netBlockingMethods are the net connection methods that can block.
var netBlockingMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadFromUDP": true, "WriteToUDP": true, "ReadMsgUDP": true,
	"WriteMsgUDP": true, "Accept": true, "AcceptTCP": true,
}

// mutexOp recognizes x.Lock / x.RLock / x.Unlock / x.RUnlock calls on
// sync mutexes and returns the lock's source expression and operation.
func (c *lockChecker) mutexOp(call *ast.CallExpr) (name, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	recv := c.receiverType(sel)
	if recv == nil {
		return "", "", false
	}
	if !isNamedIn(recv, "sync", "Mutex") && !isNamedIn(recv, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// receiverType resolves the type of sel.X for a method selection, nil
// when type information is unavailable.
func (c *lockChecker) receiverType(sel *ast.SelectorExpr) types.Type {
	if s, ok := c.pass.Pkg.Info.Selections[sel]; ok {
		return deref(s.Recv())
	}
	if tv, ok := c.pass.Pkg.Info.Types[sel.X]; ok {
		return deref(tv.Type)
	}
	return nil
}

// deref unwraps pointers.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// isNamedIn reports whether t is the named type pkg.name.
func isNamedIn(t types.Type, pkg, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

// pkgOf returns the defining package path of a named type ("" for
// unnamed types).
func pkgOf(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// qualifierShort renders type names package-qualified without the full
// import path.
func qualifierShort(p *types.Package) string { return p.Name() }
