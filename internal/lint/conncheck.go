package lint

import (
	"go/ast"
	"go/types"
)

// ConnCheck flags error results silently dropped from connection-like
// I/O calls: Close, Write, Read (and friends) on values from the net and
// os packages, called as bare expression statements. A dropped Close
// error on a written file or socket is the classic silent-data-loss bug:
// the kernel reports the flush failure exactly once, in the return value
// nobody read. An explicit `_ = c.Close()` is treated as an intentional,
// visible discard and not reported.
var ConnCheck = &Analyzer{
	Name: "conncheck",
	Doc:  "flag dropped error results from net/os connection Close/Write/Read calls",
	Run:  runConnCheck,
}

// connCheckedMethods are the error-returning I/O methods worth checking.
var connCheckedMethods = map[string]bool{
	"Close": true, "Write": true, "Read": true,
	"ReadFrom": true, "WriteTo": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"Sync": true, "Flush": true,
}

// connCheckedPkgs are the packages whose values the check applies to.
var connCheckedPkgs = map[string]bool{"net": true, "os": true, "bufio": true}

func runConnCheck(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !connCheckedMethods[sel.Sel.Name] {
				return true
			}
			s, ok := pass.Pkg.Info.Selections[sel]
			if !ok {
				return true
			}
			recv := deref(s.Recv())
			if !connCheckedPkgs[pkgOf(recv)] {
				return true
			}
			if !returnsError(s.Obj()) {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s error result dropped; check it or discard explicitly with _ =",
				types.TypeString(recv, qualifierShort), sel.Sel.Name)
			return true
		})
	}
	return nil
}

// returnsError reports whether obj is a function whose results include
// an error.
func returnsError(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		named, ok := sig.Results().At(i).Type().(*types.Named)
		if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
