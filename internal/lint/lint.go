// Package lint is a self-contained static-analysis framework for this
// repository: a deliberately small reimplementation of the
// golang.org/x/tools/go/analysis surface (Analyzer / Pass / Diagnostic)
// on top of the standard library's go/ast and go/types, so the project
// needs no external module to run its own vet pass (cmd/sdme-vet).
//
// Beyond the AST layer, the package carries a small dataflow engine —
// per-function control-flow graphs (cfg.go), a program-wide function
// index and static call graph (program.go), a forward fixpoint solver
// (dataflow.go) and an object-granular taint propagation layer
// (taint.go) — that interprocedural analyzers plug into. DESIGN.md §9
// documents the architecture and the contract for adding analyzers.
//
// Six analyzers ship with it:
//
//   - simdeterminism flags wall-clock reads (time.Now, time.Since) and
//     global math/rand calls in the simulation packages, where time must
//     come from the event clock and randomness from a seeded source or
//     resumed runs diverge;
//   - lockedblocking flags blocking operations (channel sends/receives,
//     selects without default, sync.WaitGroup.Wait, net connection I/O,
//     time.Sleep) performed while a sync.Mutex or RWMutex is held — and,
//     interprocedurally, calls whose static callees block up to a
//     configurable depth below the lock site;
//   - conncheck flags dropped error results from Close/Write/Read calls
//     on net and os connection-like values (an explicit `_ =` counts as
//     an intentional discard);
//   - wiretaint tracks values produced by the management-channel wire
//     codec (readMsg/Decode*/json.Unmarshal) and reports any that reach
//     enforcement state (Node.Install, SetWeights, flow-table mutation,
//     controller solvers) without passing a Validate-family call;
//   - goroutineleak flags `go` statements in the long-lived packages
//     whose goroutine can neither terminate nor observe a stop signal
//     (no reachable return, no ctx/done/closed-channel read);
//   - boundedlabels flags metrics label values derived from raw
//     packet/flow fields, whose unbounded cardinality would explode the
//     registry (labels must come from compile-time-bounded sets).
//
// A finding can be suppressed with a line comment on the offending line
// or the line above it:
//
//	//vet:ignore lockedblocking -- write mutex only serializes this conn
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring the x/tools analysis.Analyzer
// shape so checks port between the two worlds mechanically.
type Analyzer struct {
	// Name identifies the analyzer in reports and //vet:ignore comments.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run executes the check over one package, reporting findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole-run view (every package of this Run, function
	// index, CFGs, call graph) for interprocedural analyzers. Purely
	// syntactic analyzers can ignore it.
	Prog   *Program
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the default analyzer set, the one cmd/sdme-vet runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterminism, LockedBlocking, ConnCheck,
		WireTaint, GoroutineLeak, BoundedLabels,
	}
}

// Run executes the analyzers over the packages, applies //vet:ignore
// suppressions, and returns the surviving diagnostics sorted by
// position. Analyzer run errors are returned after all packages were
// attempted.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var firstErr error
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		ignored := ignoredLines(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Prog:     prog,
				report: func(d Diagnostic) {
					if ignored[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
						ignored[suppressKey{d.Pos.Filename, d.Pos.Line, "*"}] {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, firstErr
}

// suppressKey addresses one suppressed (file, line, analyzer) triple.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

var ignoreRe = regexp.MustCompile(`^//vet:ignore\s+([a-zA-Z0-9_,*-]+)`)

// ignoredLines scans a package's comments for //vet:ignore directives. A
// directive suppresses the named analyzers (comma-separated, or * for
// all) on its own line and on the following line, so it works both as a
// trailing comment and as a standalone line above the finding.
func ignoredLines(pkg *Package) map[suppressKey]bool {
	out := make(map[suppressKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					out[suppressKey{pos.Filename, pos.Line, name}] = true
					out[suppressKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return out
}

// forEachFunc invokes fn for every function or method declaration with a
// body in the package, in file order.
func forEachFunc(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
