package lint

import (
	"go/ast"
	"sort"
)

// FactSet is a set of dataflow facts. Fact identity is the analyzer's
// choice — the taint layer uses *types.Object (variables), other
// analyzers can key anything comparable.
type FactSet map[any]bool

// Has reports membership.
func (s FactSet) Has(f any) bool { return s[f] }

// Add inserts a fact and reports whether it was new.
func (s FactSet) Add(f any) bool {
	if s[f] {
		return false
	}
	s[f] = true
	return true
}

// Delete removes a fact.
func (s FactSet) Delete(f any) { delete(s, f) }

// Clone copies the set.
func (s FactSet) Clone() FactSet {
	out := make(FactSet, len(s))
	for f := range s {
		out[f] = true
	}
	return out
}

// union merges src into dst, reporting whether dst grew.
func (s FactSet) union(src FactSet) bool {
	grew := false
	for f := range src {
		if !s[f] {
			s[f] = true
			grew = true
		}
	}
	return grew
}

// TransferFunc computes the fact set after one CFG node given the set
// before it. Implementations may mutate and return `in`.
type TransferFunc func(n ast.Node, in FactSet) FactSet

// Forward runs a forward may-analysis (union at joins) over the CFG to
// a fixpoint and returns each block's entry fact set. The transfer
// function must be monotone for termination; fact sets only grow along
// the lattice, so any transfer that only adds or keeps facts qualifies
// — transfers that remove facts (taint sanitization) still terminate
// because the per-block entry sets grow monotonically via union.
func Forward(cfg *CFG, entry FactSet, transfer TransferFunc) map[*CFGBlock]FactSet {
	in := make(map[*CFGBlock]FactSet, len(cfg.Blocks))
	in[cfg.Entry] = entry.Clone()

	// Deterministic worklist: process lowest block index first.
	pending := map[int]bool{cfg.Entry.Index: true}
	pop := func() *CFGBlock {
		if len(pending) == 0 {
			return nil
		}
		idxs := make([]int, 0, len(pending))
		for i := range pending {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		i := idxs[0]
		delete(pending, i)
		return cfg.Blocks[i]
	}

	for b := pop(); b != nil; b = pop() {
		out := in[b].Clone()
		for _, n := range b.Nodes {
			out = transfer(n, out)
		}
		for _, succ := range b.Succs {
			si, ok := in[succ]
			if !ok {
				in[succ] = out.Clone()
				pending[succ.Index] = true
				continue
			}
			if si.union(out) {
				pending[succ.Index] = true
			}
		}
	}
	return in
}

// WalkReachable invokes fn for every CFG node reachable from the entry,
// with that block's fixpoint entry facts threaded through the block's
// transfer (so fn observes the facts in force *before* each node).
// Blocks never reached by the fixpoint (dead code) are skipped. Used as
// the reporting pass after Forward.
func WalkReachable(cfg *CFG, in map[*CFGBlock]FactSet, transfer TransferFunc, fn func(n ast.Node, facts FactSet)) {
	for _, b := range cfg.Blocks {
		facts, ok := in[b]
		if !ok {
			continue
		}
		cur := facts.Clone()
		for _, n := range b.Nodes {
			fn(n, cur)
			cur = transfer(n, cur)
		}
	}
}
