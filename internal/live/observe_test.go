package live_test

import (
	"bufio"
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/experiments"
	"sdme/internal/live"
	"sdme/internal/metrics"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

// observedLiveBed is a liveBed with the observability layer attached:
// the registry and tracer are wired into every node BEFORE AddDevice
// hands the node to its device goroutine.
type observedLiveBed struct {
	*liveBed
	reg    *metrics.Registry
	tracer *enforce.RuntimeTracer
	nodes  map[topo.NodeID]*enforce.Node
	dep    *enforce.Deployment
	ap     *route.AllPairs
}

func newObservedLiveBed(t *testing.T, strategy enforce.Strategy) *observedLiveBed {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 4, EdgeRouters: 2, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[2], "fw2", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{
		Strategy: strategy,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 1},
		HashSeed: 2,
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}

	rt := live.NewRuntime()
	t.Cleanup(rt.Close)
	reg := rt.NewRegistry()
	rt.AttachMetrics(reg)
	tracer := enforce.NewRuntimeTracer(4096, 1, 2)

	if strategy == enforce.LoadBalanced {
		// Weights solved and installed before the devices start, so the
		// static plan and the runtime selection share one configuration.
		demands := make([]enforce.FlowDemand, 0, 50)
		for i := 0; i < 50; i++ {
			demands = append(demands, enforce.FlowDemand{Tuple: observedLiveFlow(i), Packets: 1})
		}
		sol, err := ctl.SolveLB(controller.MeasurementsFromFlows(dep, tbl, demands))
		if err != nil {
			t.Fatal(err)
		}
		controller.ApplyWeights(nodes, sol)
	}

	devices := make(map[topo.NodeID]*live.Device)
	for id, n := range nodes {
		n.SetMetrics(reg)
		n.SetTracer(tracer)
		dev, err := rt.AddDevice(n)
		if err != nil {
			t.Fatal(err)
		}
		devices[id] = dev
	}
	addrs := make([]netaddr.Addr, 0, 8)
	for h := 1; h <= 8; h++ {
		addrs = append(addrs, topo.HostAddr(2, h))
	}
	sink, err := rt.AddSink(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	return &observedLiveBed{
		liveBed: &liveBed{rt: rt, dep: dep, devices: devices, sink: sink, tbl: tbl},
		reg:     reg, tracer: tracer, nodes: nodes, dep: dep, ap: ap,
	}
}

func observedLiveFlow(i int) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1+i%8), Dst: topo.HostAddr(2, 1+(i/8)%8),
		SrcPort: uint16(31000 + i), DstPort: 80, Proto: netaddr.ProtoTCP,
	}
}

// TestLiveDifferentialConformance is the live half of the differential
// suite: the same plan-vs-runtime check as the sim tests, but with the
// packets crossing real UDP sockets. Both selectors must reproduce the
// static plan on every sampled flow.
func TestLiveDifferentialConformance(t *testing.T) {
	for _, strategy := range []enforce.Strategy{enforce.HotPotato, enforce.LoadBalanced} {
		t.Run(strategy.String(), func(t *testing.T) {
			b := newObservedLiveBed(t, strategy)
			proxyID, _ := b.dep.ProxyFor(1)
			proxyAddr := b.dep.AddrOf(proxyID)

			const n = 50
			flows := make([]netaddr.FiveTuple, n)
			planned := make([]*enforce.Trace, n)
			for i := range flows {
				flows[i] = observedLiveFlow(i)
				tr, err := enforce.TraceFlow(b.nodes, b.dep, b.ap, flows[i])
				if err != nil {
					t.Fatalf("plan trace %v: %v", flows[i], err)
				}
				planned[i] = tr
			}
			for _, ft := range flows {
				if err := b.rt.Inject(proxyAddr, packet.New(ft, 64)); err != nil {
					t.Fatal(err)
				}
			}
			if !live.WaitUntil(5*time.Second, func() bool { return b.sink.Received() >= n }) {
				t.Fatalf("sink received %d of %d", b.sink.Received(), n)
			}

			mismatches := 0
			for i, ft := range flows {
				rt := b.tracer.RuntimeTrace(ft)
				if !planned[i].SamePath(rt) {
					mismatches++
					t.Errorf("flow %v: planned %v, runtime %v", ft, planned[i].Hops, rt.Hops)
				}
			}
			if mismatches == 0 {
				t.Logf("%v: %d live runtime traces match static plans (%d hop records)",
					strategy, n, b.tracer.Total())
			}
		})
	}
}

// TestLiveSimMetricNameParity asserts the acceptance criterion that the
// sim and live substrates emit the same dataplane metric family names:
// the families shared by construction (sdme_node_*, sdme_func_*) must
// be exactly equal across a sim run and a live run.
func TestLiveSimMetricNameParity(t *testing.T) {
	shared := func(text []byte) map[string]bool {
		out := make(map[string]bool)
		sc := bufio.NewScanner(bytes.NewReader(text))
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "# TYPE ") {
				continue
			}
			name := strings.Fields(line)[2]
			if strings.HasPrefix(name, "sdme_node_") || strings.HasPrefix(name, "sdme_func_") {
				out[name] = true
			}
		}
		return out
	}

	bed, err := experiments.NewBed(experiments.Config{Topology: "campus", Seed: 3, PoliciesPerClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	simRun, err := bed.RunObserved(experiments.ObserveConfig{Strategy: enforce.HotPotato, Flows: 10})
	if err != nil {
		t.Fatal(err)
	}
	simFams := shared(simRun.Registry.Snapshot().Text)

	b := newObservedLiveBed(t, enforce.HotPotato)
	proxyID, _ := b.dep.ProxyFor(1)
	proxyAddr := b.dep.AddrOf(proxyID)
	if err := b.rt.Inject(proxyAddr, packet.New(observedLiveFlow(0), 64)); err != nil {
		t.Fatal(err)
	}
	if !live.WaitUntil(3*time.Second, func() bool { return b.sink.Received() >= 1 }) {
		t.Fatal("packet never delivered")
	}
	liveFams := shared(b.reg.Snapshot().Text)

	if len(simFams) == 0 {
		t.Fatal("sim exposition has no shared dataplane families")
	}
	for name := range simFams {
		if !liveFams[name] {
			t.Errorf("family %s present in sim, missing in live", name)
		}
	}
	for name := range liveFams {
		if !simFams[name] {
			t.Errorf("family %s present in live, missing in sim", name)
		}
	}
}
