package live_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

func TestHealthMonitorDetectsStoppedDevice(t *testing.T) {
	b := newLiveBed(t, controller.Options{Strategy: enforce.HotPotato})

	var mu sync.Mutex
	var downEvents []topo.NodeID
	mon := b.rt.NewHealthMonitor(20*time.Millisecond, 2, func(id topo.NodeID) {
		mu.Lock()
		downEvents = append(downEvents, id)
		mu.Unlock()
	}, nil)
	mon.Start()
	defer mon.Stop()

	time.Sleep(100 * time.Millisecond)
	if got := mon.Down(); len(got) != 0 {
		t.Fatalf("healthy runtime reports down devices: %v", got)
	}

	victim := b.dep.MBNodes[0]
	b.devices[victim].Stop()

	if !live.WaitUntil(3*time.Second, func() bool { return mon.IsDown(victim) }) {
		t.Fatal("monitor never detected the stopped device")
	}
	mu.Lock()
	gotEvents := len(downEvents)
	mu.Unlock()
	if gotEvents == 0 {
		t.Error("onDown callback not fired")
	}
	if got := mon.Down(); len(got) != 1 || got[0] != victim {
		t.Errorf("Down() = %v, want [%v]", got, victim)
	}
	for id := range b.devices {
		if id != victim && mon.IsDown(id) {
			t.Errorf("healthy device %v reported down", id)
		}
	}
}

// TestHealthMonitorWedgeAndRecover covers the wedged-device fault mode:
// the device is alive at the socket but its loop is stuck, so probes
// time out and the monitor declares it down; releasing the wedge lets
// the loop drain and the monitor declares it up again — unlike Stop,
// nothing is lost.
func TestHealthMonitorWedgeAndRecover(t *testing.T) {
	b := newLiveBed(t, controller.Options{Strategy: enforce.HotPotato})

	downCh := make(chan topo.NodeID, 8)
	upCh := make(chan topo.NodeID, 8)
	mon := b.rt.NewHealthMonitor(20*time.Millisecond, 2,
		func(id topo.NodeID) { downCh <- id },
		func(id topo.NodeID) { upCh <- id })
	mon.Start()
	defer mon.Stop()

	victim := b.dep.MBNodes[0]
	release := b.devices[victim].Wedge()

	select {
	case id := <-downCh:
		if id != victim {
			t.Fatalf("onDown fired for %v, wedged %v", id, victim)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("monitor never detected the wedged device")
	}
	if !mon.IsDown(victim) {
		t.Error("IsDown(victim) = false after onDown")
	}
	for id := range b.devices {
		if id != victim && mon.IsDown(id) {
			t.Errorf("healthy device %v reported down", id)
		}
	}

	release()
	release() // idempotent: a double release must not panic or re-wedge

	select {
	case id := <-upCh:
		if id != victim {
			t.Fatalf("onUp fired for %v, released %v", id, victim)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("monitor never saw the device recover")
	}
	// The loop drains normally after release: commands still execute.
	if !b.devices[victim].Do(func(n *enforce.Node) {}) {
		t.Error("Do failed after unwedge")
	}
}

// TestHealthMonitorDrivesControllerRepair runs the full dependability
// loop over real sockets: a firewall process dies, the health monitor
// reports it, the controller marks it failed and reassigns candidates on
// the live nodes, and subsequent flows traverse the surviving firewall.
func TestHealthMonitorDrivesControllerRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 4, EdgeRouters: 2, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[2], "fw2", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{
		Strategy: enforce.HotPotato,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 1},
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}

	rt := live.NewRuntime()
	t.Cleanup(rt.Close)
	devices := make(map[topo.NodeID]*live.Device)
	for id, n := range nodes {
		dev, err := rt.AddDevice(n)
		if err != nil {
			t.Fatal(err)
		}
		devices[id] = dev
	}
	sink, err := rt.AddSink(topo.HostAddr(2, 1))
	if err != nil {
		t.Fatal(err)
	}

	repaired := make(chan topo.NodeID, 4)
	mon := rt.NewHealthMonitor(20*time.Millisecond, 2, func(id topo.NodeID) {
		if err := ctl.MarkFailed(id, true); err != nil {
			t.Errorf("MarkFailed(%v): %v", id, err)
			return
		}
		// Live nodes are owned by their device goroutines: compute the
		// repaired candidate sets here, apply each inside its owner.
		cands, err := ctl.ComputeCandidates()
		if err != nil {
			t.Errorf("ComputeCandidates: %v", err)
			return
		}
		for nodeID, cc := range cands {
			if dev, ok := devices[nodeID]; ok {
				cc := cc
				dev.Do(func(n *enforce.Node) { n.SetCandidates(cc) })
			}
		}
		repaired <- id
	}, nil)
	mon.Start()
	defer mon.Stop()

	proxyID, _ := dep.ProxyFor(1)
	proxyAddr := dep.AddrOf(proxyID)
	ft := netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(2, 1),
		SrcPort: 45000, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
	if err := rt.Inject(proxyAddr, packet.New(ft, 16)); err != nil {
		t.Fatal(err)
	}
	if !live.WaitUntil(3*time.Second, func() bool { return sink.Received() >= 1 }) {
		t.Fatal("baseline packet not delivered")
	}

	// Kill the firewall the flow used.
	var used topo.NodeID = topo.InvalidNode
	for _, id := range dep.Providers(policy.FuncFW) {
		if devices[id].Counters().Load > 0 {
			used = id
		}
	}
	if used == topo.InvalidNode {
		t.Fatal("no firewall processed the baseline packet")
	}
	devices[used].Stop()

	select {
	case <-repaired:
	case <-time.After(5 * time.Second):
		t.Fatal("repair never ran")
	}

	// A fresh flow must traverse the surviving firewall and reach the
	// sink. (The old flow's proxy cache still names the same policy; the
	// candidate swap redirects its next packets too, but a fresh flow
	// makes the assertion crisp.)
	ft2 := ft
	ft2.SrcPort = 45001
	before := sink.Received()
	if err := rt.Inject(proxyAddr, packet.New(ft2, 16)); err != nil {
		t.Fatal(err)
	}
	if !live.WaitUntil(3*time.Second, func() bool { return sink.Received() > before }) {
		t.Fatalf("traffic stopped after failover (sink=%d)", sink.Received())
	}
	var survivor topo.NodeID
	for _, id := range dep.Providers(policy.FuncFW) {
		if id != used {
			survivor = id
		}
	}
	if devices[survivor].Counters().Load == 0 {
		t.Error("survivor firewall processed nothing after failover")
	}
}
