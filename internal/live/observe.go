package live

import (
	"sdme/internal/metrics"
)

// Live-fabric metric family names. The per-node dataplane families come
// from enforce/observe.go — attach them with Node.SetMetrics BEFORE
// AddDevice, so the device goroutine never races the attachment.
const (
	MetricBlackholed  = "sdme_live_blackholed_total"
	MetricLossDropped = "sdme_live_loss_dropped_total"
	MetricSent        = "sdme_live_datagrams_sent_total"
	// MetricWorkerQueueDepth is a per-node histogram of the dispatch-time
	// depth of the chosen worker's queue — the live view of hot-path
	// backpressure.
	MetricWorkerQueueDepth = "sdme_live_worker_queue_depth"
	// MetricEnforceLatencyUS is a per-node histogram of receive→handled
	// latency in microseconds (queue wait plus enforcement).
	MetricEnforceLatencyUS = "sdme_live_enforce_latency_us"
	// MetricPoolHits / MetricPoolMisses mirror packet.PoolStats: gauges
	// (not counters) because the pool counters are process-global and
	// every device syncs the same cumulative value.
	MetricPoolHits   = "sdme_live_pool_hits"
	MetricPoolMisses = "sdme_live_pool_misses"
)

// QueueDepthBuckets is the bucket layout of MetricWorkerQueueDepth.
var QueueDepthBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// liveMetrics caches the runtime's registry handles. reg is retained so
// devices can mint their per-node worker series lazily.
type liveMetrics struct {
	reg                       *metrics.Registry
	blackholed, dropped, sent *metrics.Counter
	poolHits, poolMisses      *metrics.Gauge
}

// NewRegistry creates a registry driven by the runtime's wall clock
// (microseconds since start) — the live counterpart of the simulator's
// virtual-time registry, emitting the same dataplane family names.
func (r *Runtime) NewRegistry() *metrics.Registry {
	return metrics.NewRegistry(r.NowUS)
}

// AttachMetrics wires a registry into the fabric: datagrams sent,
// blackholed (unmapped address) and dropped by injected loss. Safe to
// call while devices run; nil detaches.
func (r *Runtime) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		r.lm.Store(nil)
		return
	}
	r.lm.Store(&liveMetrics{
		reg:        reg,
		blackholed: reg.Counter(MetricBlackholed),
		dropped:    reg.Counter(MetricLossDropped),
		sent:       reg.Counter(MetricSent),
		poolHits:   reg.Gauge(MetricPoolHits),
		poolMisses: reg.Gauge(MetricPoolMisses),
	})
}

// blackhole counts an undeliverable datagram on both surfaces.
func (r *Runtime) blackhole() {
	r.Blackholed.Add(1)
	if m := r.lm.Load(); m != nil {
		m.blackholed.Inc()
	}
}
