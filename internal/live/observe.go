package live

import (
	"sdme/internal/metrics"
)

// Live-fabric metric family names. The per-node dataplane families come
// from enforce/observe.go — attach them with Node.SetMetrics BEFORE
// AddDevice, so the device goroutine never races the attachment.
const (
	MetricBlackholed  = "sdme_live_blackholed_total"
	MetricLossDropped = "sdme_live_loss_dropped_total"
	MetricSent        = "sdme_live_datagrams_sent_total"
)

// liveMetrics caches the runtime's registry handles.
type liveMetrics struct {
	blackholed, dropped, sent *metrics.Counter
}

// NewRegistry creates a registry driven by the runtime's wall clock
// (microseconds since start) — the live counterpart of the simulator's
// virtual-time registry, emitting the same dataplane family names.
func (r *Runtime) NewRegistry() *metrics.Registry {
	return metrics.NewRegistry(r.NowUS)
}

// AttachMetrics wires a registry into the fabric: datagrams sent,
// blackholed (unmapped address) and dropped by injected loss. Safe to
// call while devices run; nil detaches.
func (r *Runtime) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		r.lm.Store(nil)
		return
	}
	r.lm.Store(&liveMetrics{
		blackholed: reg.Counter(MetricBlackholed),
		dropped:    reg.Counter(MetricLossDropped),
		sent:       reg.Counter(MetricSent),
	})
}

// blackhole counts an undeliverable datagram on both surfaces.
func (r *Runtime) blackhole() {
	r.Blackholed.Add(1)
	if m := r.lm.Load(); m != nil {
		m.blackholed.Inc()
	}
}
