package live

import (
	"sdme/internal/enforce"
	"sdme/internal/topo"
)

// SetProviderDown fans one provider's liveness state out to every
// device's local view, enabling enforce.SelectNext's local fast failover
// on the live substrate. The view write itself is internally
// synchronized, so it takes effect immediately even on a busy or wedged
// device; the soft-state purge (InvalidateProvider) mutates node tables
// and therefore runs on each device's own loop goroutine, asynchronously
// — a wedged device purges when it recovers, a stopped one never resumes
// the dataplane, so both orderings are safe.
//
// The intended feeder is a HealthMonitor:
//
//	hm := rt.NewHealthMonitor(interval, misses,
//	        func(id topo.NodeID) { rt.SetProviderDown(id, true) },
//	        func(id topo.NodeID) { rt.SetProviderDown(id, false) })
func (r *Runtime) SetProviderDown(id topo.NodeID, down bool) {
	for _, d := range r.Devices() {
		if d.Node.ID == id {
			continue
		}
		if d.Node.SetProviderDown(id, down) && down {
			dev := d
			go dev.Do(func(n *enforce.Node) { n.InvalidateProvider(id) })
		}
	}
}
