// Package live runs the enforcement dataplane over real UDP sockets on
// the loopback interface: every proxy and middlebox is a goroutine with
// its own socket, IP-over-IP tunnels are actual encapsulated datagrams,
// and label-switched packets are actual shorter datagrams. The model
// addresses (10.x.., 172.31..) are mapped to 127.0.0.1:port endpoints by
// a fabric table that plays the role of the routed underlay.
//
// The same enforce.Node code runs here and in the discrete-event
// simulator; this package exists to demonstrate that the design is a
// deployable system, not only a simulation artifact.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdme/internal/enforce"
	"sdme/internal/metrics"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
)

// Frame types on the wire: one leading byte before the payload.
const (
	frameData    = 0x01
	frameControl = 0x02
)

// marshalControl encodes a §III-E control message: the flow 5-tuple.
func marshalControl(flow netaddr.FiveTuple) []byte {
	out := make([]byte, 1+13)
	out[0] = frameControl
	binary.BigEndian.PutUint32(out[1:], uint32(flow.Src))
	binary.BigEndian.PutUint32(out[5:], uint32(flow.Dst))
	binary.BigEndian.PutUint16(out[9:], flow.SrcPort)
	binary.BigEndian.PutUint16(out[11:], flow.DstPort)
	out[13] = flow.Proto
	return out
}

func unmarshalControl(b []byte) (netaddr.FiveTuple, error) {
	if len(b) < 13 {
		return netaddr.FiveTuple{}, fmt.Errorf("live: control frame too short (%d)", len(b))
	}
	return netaddr.FiveTuple{
		Src:     netaddr.Addr(binary.BigEndian.Uint32(b[0:])),
		Dst:     netaddr.Addr(binary.BigEndian.Uint32(b[4:])),
		SrcPort: binary.BigEndian.Uint16(b[8:]),
		DstPort: binary.BigEndian.Uint16(b[10:]),
		Proto:   b[12],
	}, nil
}

// Runtime owns the fabric (address → UDP endpoint map) and the devices.
type Runtime struct {
	mu        sync.RWMutex
	endpoints map[netaddr.Addr]*net.UDPAddr
	devices   []*Device
	sinks     []*Sink
	start     time.Time
	// Blackholed counts datagrams addressed to unmapped addresses.
	Blackholed atomic.Int64
	// Dropped counts datagrams discarded by injected loss.
	Dropped atomic.Int64
	// lossNum/lossDen encode the loss probability as a rational so the
	// hot path needs no float math or locking; lossSeq drives a cheap
	// deterministic sequence.
	lossNum, lossDen atomic.Int64
	lossSeq          atomic.Int64
	// lm is the optional fabric metrics attachment (observe.go).
	lm atomic.Pointer[liveMetrics]
	// defaultWorkers sizes new devices' worker pools (0: GOMAXPROCS).
	defaultWorkers int
}

// NewRuntime creates an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{
		endpoints: make(map[netaddr.Addr]*net.UDPAddr),
		start:     time.Now(),
	}
}

// SetDefaultWorkers sets the worker-pool size used by subsequent AddDevice
// calls (0 restores the GOMAXPROCS default). Call before adding devices.
func (r *Runtime) SetDefaultWorkers(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defaultWorkers = n
}

// now returns microseconds since runtime start (the dataplane's tick).
func (r *Runtime) now() int64 { return time.Since(r.start).Microseconds() }

// NowUS exposes the runtime clock (microseconds since start) — the live
// counterpart of the simulator's virtual clock, so experiments measure
// convergence on the same axis in both substrates.
func (r *Runtime) NowUS() int64 { return r.now() }

// register maps a model address to a UDP endpoint.
func (r *Runtime) register(a netaddr.Addr, ep *net.UDPAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.endpoints[a] = ep
}

// Devices returns a snapshot of the runtime's devices. The health
// monitor iterates this while AddDevice may be registering more, so the
// slice is copied under the lock.
func (r *Runtime) Devices() []*Device {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Device(nil), r.devices...)
}

// lookup resolves a model address.
func (r *Runtime) lookup(a netaddr.Addr) (*net.UDPAddr, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ep, ok := r.endpoints[a]
	return ep, ok
}

// Close stops every device and sink. Devices and sinks are snapshotted
// under the lock, then stopped outside it: stop() waits on each loop
// goroutine, and blocking on that with the runtime lock held would stall
// any dataplane send still resolving an endpoint.
func (r *Runtime) Close() {
	r.mu.RLock()
	devices := append([]*Device(nil), r.devices...)
	sinks := append([]*Sink(nil), r.sinks...)
	r.mu.RUnlock()
	for _, d := range devices {
		d.stop()
	}
	for _, s := range sinks {
		s.stop()
	}
}

// Device wraps one enforcement node, its socket and its worker pool: a
// single-producer receive loop (the dispatcher) parses frames into pooled
// packets and hands them to per-flow workers (workers.go).
type Device struct {
	Node     *enforce.Node
	rt       *Runtime
	conn     *net.UDPConn
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	// queries serializes counter reads through the device loop so tests
	// never race with the dataplane goroutine.
	queries chan chan enforce.Counters
	// health receives liveness probes, answered by the loop between
	// reads (see HealthMonitor).
	health chan chan struct{}
	// commands runs node mutations inside the loop goroutine (see Do).
	commands chan func()
	// Errors counts dataplane errors observed by the loop.
	Errors atomic.Int64

	// workers are the per-flow FIFO queues; closed by the dispatcher on
	// shutdown, fully drained by the workers before they exit.
	workers []chan workItem
	// dispLM / queueDepth are the dispatcher goroutine's cached metric
	// handles (workers.go); no other goroutine touches them.
	dispLM     *liveMetrics
	queueDepth *metrics.Histogram
}

// AddDevice opens a loopback socket for the node, registers its address
// and starts its receive loop with the runtime's default worker count.
// Proxies treat arriving data frames as outbound subnet traffic;
// middleboxes treat them as chain arrivals.
func (r *Runtime) AddDevice(n *enforce.Node) (*Device, error) {
	return r.AddDeviceWorkers(n, 0)
}

// AddDeviceWorkers is AddDevice with an explicit worker-pool size
// (0: the runtime default, which itself defaults to GOMAXPROCS).
func (r *Runtime) AddDeviceWorkers(n *enforce.Node, workers int) (*Device, error) {
	if workers <= 0 {
		r.mu.RLock()
		workers = r.defaultWorkers
		r.mu.RUnlock()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("live: listen for node %v: %w", n.ID, err)
	}
	// Best-effort: a deeper kernel receive queue absorbs bursts while the
	// dispatcher drains (the OS caps this at rmem_max; errors are fine).
	_ = conn.SetReadBuffer(4 << 20)
	d := &Device{
		Node:     n,
		rt:       r,
		conn:     conn,
		done:     make(chan struct{}),
		queries:  make(chan chan enforce.Counters),
		health:   make(chan chan struct{}),
		commands: make(chan func()),
	}
	d.startWorkers(workers)
	r.register(n.Addr, conn.LocalAddr().(*net.UDPAddr))
	r.mu.Lock()
	r.devices = append(r.devices, d)
	r.mu.Unlock()
	d.wg.Add(1)
	go d.loop()
	return d, nil
}

// Workers returns the size of the device's worker pool.
func (d *Device) Workers() int { return len(d.workers) }

// Counters returns a consistent snapshot of the node's counters: the
// dispatcher quiesces the worker pool (every already-dispatched frame is
// fully processed) before reading.
func (d *Device) Counters() enforce.Counters {
	resp := make(chan enforce.Counters, 1)
	select {
	case d.queries <- resp:
		return <-resp
	case <-d.done:
		// Stop was requested, but the pool may still be draining its
		// queues; wait for it before reading the node directly.
		d.wg.Wait()
		return d.Node.CountersSnapshot()
	}
}

// Do runs fn inside the device's dispatcher goroutine, after quiescing
// the worker pool, and waits for it — the race-free way to reconfigure a
// live node (the controller's repair and rebalance paths use it). It
// reports false if the device has stopped, in which case fn did not run.
func (d *Device) Do(fn func(n *enforce.Node)) bool {
	done := make(chan struct{})
	wrapped := func() {
		fn(d.Node)
		close(done)
	}
	select {
	case d.commands <- wrapped:
		<-done
		return true
	case <-d.done:
		return false
	}
}

func (d *Device) stop() {
	// Once, not a done-channel check: two concurrent stops (runtime
	// Close racing a failure-injecting test) must not double-close.
	d.stopOnce.Do(func() { close(d.done) })
	_ = d.conn.Close()
	d.wg.Wait()
}

// loop is the dispatcher: the device's single-producer receive loop. It
// parses frames into pooled packets, enqueues them on per-flow workers,
// and services query/health/command channels between reads — quiescing
// the pool first, so those still observe a consistent node. On exit it
// closes the worker queues; workers drain them fully before stopping.
func (d *Device) loop() {
	defer d.wg.Done()
	defer func() {
		for _, ch := range d.workers {
			close(ch)
		}
	}()
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-d.done:
			return
		case resp := <-d.queries:
			d.quiesce()
			resp <- d.Node.CountersSnapshot()
			continue
		case resp := <-d.health:
			resp <- struct{}{}
			continue
		case fn := <-d.commands:
			d.quiesce()
			fn()
			continue
		default:
		}
		if err := d.conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond)); err != nil {
			return
		}
		n, _, err := d.conn.ReadFromUDP(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				d.syncGauges() // idle moment: refresh sampled gauges
				continue
			}
			return // socket closed
		}
		if n < 1 {
			continue
		}
		d.dispatch(buf[:n])
	}
}

// udpForwarder sends dataplane output onto the fabric. Workers share the
// device's own socket (conn) so the hot path never dials; conn may be nil
// (runtime-level sends), which falls back to an ephemeral socket.
type udpForwarder struct {
	rt   *Runtime
	conn *net.UDPConn
}

var _ enforce.Forwarder = (*udpForwarder)(nil)

func (f *udpForwarder) Send(from *enforce.Node, pkt *packet.Packet) {
	dst := pkt.OutermostDst()
	ep, ok := f.rt.lookup(dst)
	if !ok {
		f.rt.blackhole()
		return
	}
	frame := packet.GetBuffer()
	frame = append(frame, frameData)
	frame = pkt.AppendMarshal(frame)
	f.rt.sendVia(f.conn, ep, frame)
	packet.PutBuffer(frame)
}

func (f *udpForwarder) SendControl(from *enforce.Node, to netaddr.Addr, flow netaddr.FiveTuple) {
	ep, ok := f.rt.lookup(to)
	if !ok {
		f.rt.blackhole()
		return
	}
	f.rt.sendVia(f.conn, ep, marshalControl(flow))
}

// SetLossRate makes the fabric drop approximately num/den of data
// datagrams (deterministically interleaved), emulating an unreliable
// underlay. Control frames are subject to the same loss — §III-E's
// control message is soft state and the design must survive losing it.
func (r *Runtime) SetLossRate(num, den int64) {
	if den <= 0 || num < 0 {
		num, den = 0, 1
	}
	r.lossNum.Store(num)
	r.lossDen.Store(den)
}

// shouldDrop implements the deterministic loss sequence: of every `den`
// consecutive sends, the first `num` are dropped.
func (r *Runtime) shouldDrop() bool {
	den := r.lossDen.Load()
	num := r.lossNum.Load()
	if num == 0 || den <= 0 {
		return false
	}
	seq := r.lossSeq.Add(1)
	return seq%den < num
}

// sendTo fires one datagram from an ephemeral socket.
func (r *Runtime) sendTo(ep *net.UDPAddr, frame []byte) { r.sendVia(nil, ep, frame) }

// sendVia transmits one datagram, honoring injected loss. With a non-nil
// conn it writes through it (a *net.UDPConn is safe for concurrent use,
// so a device's workers all share the device socket); with nil it dials
// an ephemeral socket (Inject, sink-less sends).
func (r *Runtime) sendVia(conn *net.UDPConn, ep *net.UDPAddr, frame []byte) {
	if r.shouldDrop() {
		r.Dropped.Add(1)
		if m := r.lm.Load(); m != nil {
			m.dropped.Inc()
		}
		return
	}
	if conn == nil {
		c, err := net.DialUDP("udp4", nil, ep)
		if err != nil {
			r.blackhole()
			return
		}
		defer c.Close()
		if _, err := c.Write(frame); err != nil {
			r.blackhole()
			return
		}
	} else if _, err := conn.WriteToUDP(frame, ep); err != nil {
		r.blackhole()
		return
	}
	if m := r.lm.Load(); m != nil {
		m.sent.Inc()
	}
}

// Sink is a destination endpoint: it accepts data frames for one or more
// model addresses and records what it received.
type Sink struct {
	rt       *Runtime
	conn     *net.UDPConn
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu       sync.Mutex
	byFlow   map[netaddr.FiveTuple]int
	byAddr   map[netaddr.Addr]int
	received int
	encaps   int
	labeled  int
}

// AddSink opens a sink socket serving the given model addresses.
func (r *Runtime) AddSink(addrs ...netaddr.Addr) (*Sink, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("live: listen sink: %w", err)
	}
	s := &Sink{
		rt: r, conn: conn,
		done:   make(chan struct{}),
		byFlow: make(map[netaddr.FiveTuple]int),
		byAddr: make(map[netaddr.Addr]int),
	}
	for _, a := range addrs {
		r.register(a, conn.LocalAddr().(*net.UDPAddr))
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, s)
	r.mu.Unlock()
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

func (s *Sink) stop() {
	s.stopOnce.Do(func() { close(s.done) })
	_ = s.conn.Close()
	s.wg.Wait()
}

func (s *Sink) loop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-s.done:
			return
		default:
		}
		if err := s.conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond)); err != nil {
			return
		}
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return
		}
		if n < 1 || buf[0] != frameData {
			continue
		}
		pkt, err := packet.Unmarshal(buf[1:n])
		if err != nil {
			continue
		}
		s.mu.Lock()
		s.received++
		s.byFlow[pkt.FiveTuple()]++
		s.byAddr[pkt.Inner.Dst]++
		if pkt.IsEncapsulated() {
			s.encaps++
		}
		if pkt.Label() != 0 {
			s.labeled++
		}
		s.mu.Unlock()
	}
}

// Received returns the total packets the sink accepted.
func (s *Sink) Received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// FlowCount returns packets received for one flow tuple.
func (s *Sink) FlowCount(ft netaddr.FiveTuple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byFlow[ft]
}

// Anomalies returns how many received packets were still encapsulated or
// still labeled — both must be zero in a correct deployment.
func (s *Sink) Anomalies() (encapsulated, labeled int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.encaps, s.labeled
}

// Inject sends a data packet into the fabric addressed to `via` (usually
// the source subnet's proxy), as a host on the stub network would.
func (r *Runtime) Inject(via netaddr.Addr, pkt *packet.Packet) error {
	ep, ok := r.lookup(via)
	if !ok {
		return fmt.Errorf("live: no endpoint for %v", via)
	}
	r.sendTo(ep, append([]byte{frameData}, pkt.Marshal()...))
	return nil
}

// WaitUntil polls cond every millisecond until it returns true or the
// timeout elapses; it reports whether cond became true. Tests and demos
// use it to sequence against network asynchrony.
func WaitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}
