package live_test

import (
	"math/rand"
	"testing"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

// liveBed spins up a small deployment as real UDP endpoints.
type liveBed struct {
	rt      *live.Runtime
	dep     *enforce.Deployment
	devices map[topo.NodeID]*live.Device
	sink    *live.Sink
	tbl     *policy.Table
}

func newLiveBed(t *testing.T, opts controller.Options) *liveBed {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 4, EdgeRouters: 2, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	opts.K = map[policy.FuncType]int{policy.FuncFW: 1, policy.FuncIDS: 1}
	ctl := controller.New(dep, ap, tbl, opts)
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}

	rt := live.NewRuntime()
	t.Cleanup(rt.Close)
	devices := make(map[topo.NodeID]*live.Device)
	for id, n := range nodes {
		dev, err := rt.AddDevice(n)
		if err != nil {
			t.Fatal(err)
		}
		devices[id] = dev
	}
	// One sink covering the destination hosts of subnet 2.
	addrs := make([]netaddr.Addr, 0, 8)
	for h := 1; h <= 8; h++ {
		addrs = append(addrs, topo.HostAddr(2, h))
	}
	sink, err := rt.AddSink(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	return &liveBed{rt: rt, dep: dep, devices: devices, sink: sink, tbl: tbl}
}

func liveFlow(n uint16) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(2, 1),
		SrcPort: 30000 + n, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
}

func TestLiveEndToEndChain(t *testing.T) {
	b := newLiveBed(t, controller.Options{Strategy: enforce.HotPotato})
	proxyID, _ := b.dep.ProxyFor(1)
	proxyAddr := b.dep.AddrOf(proxyID)

	ft := liveFlow(1)
	const n = 5
	for i := 0; i < n; i++ {
		p := packet.New(ft, 32)
		p.Payload = make([]byte, 32)
		if err := b.rt.Inject(proxyAddr, p); err != nil {
			t.Fatal(err)
		}
	}
	if !live.WaitUntil(3*time.Second, func() bool { return b.sink.Received() >= n }) {
		t.Fatalf("sink received %d of %d", b.sink.Received(), n)
	}
	if got := b.sink.FlowCount(ft); got != n {
		t.Errorf("flow count = %d, want %d", got, n)
	}
	enc, lab := b.sink.Anomalies()
	if enc != 0 || lab != 0 {
		t.Errorf("delivered packets still encapsulated (%d) or labeled (%d)", enc, lab)
	}
	// Both middleboxes processed every packet, over real sockets.
	for _, id := range b.dep.MBNodes {
		c := b.devices[id].Counters()
		if c.Load != n {
			t.Errorf("middlebox %v load = %d, want %d", id, c.Load, n)
		}
	}
	if b.rt.Blackholed.Load() != 0 {
		t.Errorf("blackholed datagrams: %d", b.rt.Blackholed.Load())
	}
}

func TestLiveLabelSwitching(t *testing.T) {
	b := newLiveBed(t, controller.Options{Strategy: enforce.HotPotato, LabelSwitching: true})
	proxyID, _ := b.dep.ProxyFor(1)
	proxyAddr := b.dep.AddrOf(proxyID)
	proxyDev := b.devices[proxyID]
	ft := liveFlow(2)

	// First packet: tunneled; wait until the control message flips the
	// flow to label switching.
	if err := b.rt.Inject(proxyAddr, packet.New(ft, 16)); err != nil {
		t.Fatal(err)
	}
	if !live.WaitUntil(3*time.Second, func() bool { return proxyDev.Counters().ControlRx >= 1 }) {
		t.Fatalf("control message never arrived: %+v", proxyDev.Counters())
	}

	// Subsequent packets ride labels end to end over real sockets.
	const more = 4
	for i := 0; i < more; i++ {
		if err := b.rt.Inject(proxyAddr, packet.New(ft, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if !live.WaitUntil(3*time.Second, func() bool { return b.sink.Received() >= 1+more }) {
		t.Fatalf("sink received %d", b.sink.Received())
	}
	c := proxyDev.Counters()
	if c.TunnelTx != 1 || c.LabelTx != more {
		t.Errorf("proxy counters: tunnel=%d label=%d, want 1/%d", c.TunnelTx, c.LabelTx, more)
	}
	enc, lab := b.sink.Anomalies()
	if enc != 0 || lab != 0 {
		t.Errorf("anomalous deliveries: enc=%d lab=%d", enc, lab)
	}
}

func TestLiveUnmatchedTrafficBypasses(t *testing.T) {
	b := newLiveBed(t, controller.Options{Strategy: enforce.HotPotato})
	proxyID, _ := b.dep.ProxyFor(1)
	ft := netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(2, 2),
		SrcPort: 1000, DstPort: 4242, Proto: netaddr.ProtoUDP,
	}
	if err := b.rt.Inject(b.dep.AddrOf(proxyID), packet.New(ft, 8)); err != nil {
		t.Fatal(err)
	}
	if !live.WaitUntil(3*time.Second, func() bool { return b.sink.FlowCount(ft) >= 1 }) {
		t.Fatal("unmatched packet never delivered")
	}
	for _, id := range b.dep.MBNodes {
		if c := b.devices[id].Counters(); c.Load != 0 {
			t.Errorf("middlebox %v touched unmatched traffic", id)
		}
	}
}

func TestLiveBlackhole(t *testing.T) {
	b := newLiveBed(t, controller.Options{Strategy: enforce.HotPotato})
	proxyID, _ := b.dep.ProxyFor(1)
	// Destination address nobody registered: the proxy forwards plain,
	// the fabric blackholes.
	ft := netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: netaddr.MustParseAddr("203.0.113.1"),
		SrcPort: 1, DstPort: 9, Proto: netaddr.ProtoUDP,
	}
	if err := b.rt.Inject(b.dep.AddrOf(proxyID), packet.New(ft, 8)); err != nil {
		t.Fatal(err)
	}
	if !live.WaitUntil(3*time.Second, func() bool { return b.rt.Blackholed.Load() >= 1 }) {
		t.Error("blackhole not counted")
	}
}

func TestInjectUnknownEndpoint(t *testing.T) {
	rt := live.NewRuntime()
	defer rt.Close()
	if err := rt.Inject(netaddr.MustParseAddr("9.9.9.9"), packet.New(netaddr.FiveTuple{}, 1)); err == nil {
		t.Error("Inject to unknown endpoint should fail")
	}
}

func TestLossyFabricDegradesGracefully(t *testing.T) {
	b := newLiveBed(t, controller.Options{Strategy: enforce.HotPotato, LabelSwitching: true})
	b.rt.SetLossRate(1, 4) // drop 25% of datagrams
	proxyID, _ := b.dep.ProxyFor(1)
	proxyAddr := b.dep.AddrOf(proxyID)

	ft := liveFlow(60)
	const n = 40
	for i := 0; i < n; i++ {
		if err := b.rt.Inject(proxyAddr, packet.New(ft, 16)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Some packets die on the fabric, the rest arrive; nothing wedges
	// and no device reports an error beyond label misses (which the
	// lossy control channel can legitimately cause).
	if !live.WaitUntil(5*time.Second, func() bool { return b.sink.Received() >= n/4 }) {
		t.Fatalf("only %d of %d packets arrived under 25%% loss", b.sink.Received(), n)
	}
	if b.rt.Dropped.Load() == 0 {
		t.Error("loss injection dropped nothing")
	}
	if b.sink.Received() >= n {
		t.Error("no packets lost despite 25% loss")
	}
	enc, lab := b.sink.Anomalies()
	if enc != 0 || lab != 0 {
		t.Errorf("anomalous deliveries under loss: enc=%d lab=%d", enc, lab)
	}
	b.rt.SetLossRate(0, 1) // restore
}

func TestSetLossRateValidation(t *testing.T) {
	rt := live.NewRuntime()
	defer rt.Close()
	rt.SetLossRate(-1, 0) // nonsense resets to lossless
	if rt.Dropped.Load() != 0 {
		t.Error("fresh runtime dropped something")
	}
}
