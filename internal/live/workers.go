package live

import (
	"strconv"
	"sync"

	"sdme/internal/metrics"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
)

// workItem is one unit of dataplane work handed from a device's
// single-producer receive loop to its worker pool.
//
// Exactly one of three shapes: a data packet (pkt != nil, pooled — the
// worker Puts it back), a control frame (isCtl, flow set), or a quiesce
// barrier (barrier != nil; the worker just Done()s it, and because worker
// queues are FIFO, every item dispatched before the barrier has been fully
// processed once all workers have passed it).
type workItem struct {
	pkt     *packet.Packet
	flow    netaddr.FiveTuple
	isCtl   bool
	barrier *sync.WaitGroup
	recvUS  int64
}

// workerQueueLen is each worker's channel capacity. Dispatch blocks when a
// queue is full (backpressure into the socket buffer) — the pool never
// drops a received frame.
const workerQueueLen = 1024

// flowWorkerHash maps a packet's flow identity to its worker. It hashes
// Src, SrcPort, DstPort and Proto but deliberately NOT Dst: a
// label-switched packet has Inner.Dst rewritten hop by hop while the other
// four fields survive every transformation (tunneled, labeled, plain), so
// this keeps every datagram and control frame of one flow — in any
// on-the-wire shape — on the same worker, which is what serializes
// per-flow soft-state access. FNV-1a with a Mix64 avalanche: the result is
// reduced modulo a small worker count, and raw FNV low bits skew badly on
// structured tuples (flows differing only in a few port bits would pile
// onto two workers).
func flowWorkerHash(src netaddr.Addr, srcPort, dstPort uint16, proto uint8) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for shift := 24; shift >= 0; shift -= 8 {
		h = (h ^ uint64(byte(uint32(src)>>shift))) * prime64
	}
	h = (h ^ uint64(byte(srcPort>>8))) * prime64
	h = (h ^ uint64(byte(srcPort))) * prime64
	h = (h ^ uint64(byte(dstPort>>8))) * prime64
	h = (h ^ uint64(byte(dstPort))) * prime64
	h = (h ^ uint64(proto)) * prime64
	return netaddr.Mix64(h)
}

// startWorkers launches the device's worker pool. Called once from
// AddDeviceWorkers before the dispatcher starts.
func (d *Device) startWorkers(n int) {
	d.workers = make([]chan workItem, n)
	for i := range d.workers {
		d.workers[i] = make(chan workItem, workerQueueLen)
		d.wg.Add(1)
		go d.workerLoop(d.workers[i])
	}
}

// workerFor returns the worker queue owning the given flow identity.
func (d *Device) workerFor(src netaddr.Addr, srcPort, dstPort uint16, proto uint8) chan workItem {
	if len(d.workers) == 1 {
		return d.workers[0]
	}
	return d.workers[flowWorkerHash(src, srcPort, dstPort, proto)%uint64(len(d.workers))]
}

// dispatch parses one received frame and enqueues it on its flow's worker.
// Runs only on the dispatcher goroutine.
func (d *Device) dispatch(frame []byte) {
	now := d.rt.now()
	switch frame[0] {
	case frameData:
		pkt := packet.Get()
		if err := packet.UnmarshalInto(pkt, frame[1:]); err != nil {
			packet.Put(pkt)
			d.Errors.Add(1)
			return
		}
		h := pkt.Inner
		ch := d.workerFor(h.Src, h.SrcPort, h.DstPort, h.Proto)
		d.observeQueueDepth(len(ch))
		ch <- workItem{pkt: pkt, recvUS: now}
	case frameControl:
		flow, err := unmarshalControl(frame[1:])
		if err != nil {
			d.Errors.Add(1)
			return
		}
		ch := d.workerFor(flow.Src, flow.SrcPort, flow.DstPort, flow.Proto)
		d.observeQueueDepth(len(ch))
		ch <- workItem{isCtl: true, flow: flow, recvUS: now}
	default:
		d.Errors.Add(1)
	}
}

// workerLoop processes one queue until the dispatcher closes it, draining
// every queued item before exiting — Close never drops accepted work.
func (d *Device) workerLoop(ch chan workItem) {
	defer d.wg.Done()
	fwd := &udpForwarder{rt: d.rt, conn: d.conn}
	var (
		cachedLM *liveMetrics
		latency  *metrics.Histogram
	)
	for item := range ch {
		if item.barrier != nil {
			item.barrier.Done()
			continue
		}
		now := d.rt.now()
		if item.isCtl {
			d.Node.HandleControl(item.flow, now)
		} else {
			var err error
			if d.Node.IsProxy {
				err = d.Node.HandleOutbound(item.pkt, now, fwd)
			} else {
				err = d.Node.HandleArrival(item.pkt, now, fwd)
			}
			if err != nil {
				d.Errors.Add(1)
			}
			packet.Put(item.pkt)
		}
		if m := d.rt.lm.Load(); m != nil {
			if m != cachedLM {
				cachedLM = m
				latency = m.reg.Histogram(MetricEnforceLatencyUS, metrics.LatencyBucketsUS,
					"node", strconv.Itoa(int(d.Node.ID)))
			}
			latency.Observe(d.rt.now() - item.recvUS)
		} else if cachedLM != nil {
			cachedLM, latency = nil, nil
		}
	}
}

// quiesce waits until every item dispatched so far has been fully
// processed: one barrier per worker queue, FIFO order does the rest. Runs
// only on the dispatcher goroutine, between reads, so no new data races
// ahead of the barrier.
func (d *Device) quiesce() {
	var wg sync.WaitGroup
	wg.Add(len(d.workers))
	for _, ch := range d.workers {
		ch <- workItem{barrier: &wg}
	}
	wg.Wait()
}

// observeQueueDepth records the chosen worker queue's depth at dispatch
// time. Dispatcher-goroutine only; the histogram handle is re-minted when
// the runtime's metrics attachment changes.
func (d *Device) observeQueueDepth(depth int) {
	m := d.rt.lm.Load()
	if m == nil {
		if d.dispLM != nil {
			d.dispLM, d.queueDepth = nil, nil
		}
		return
	}
	if m != d.dispLM {
		d.dispLM = m
		d.queueDepth = m.reg.Histogram(MetricWorkerQueueDepth, QueueDepthBuckets,
			"node", strconv.Itoa(int(d.Node.ID)))
	}
	d.queueDepth.Observe(int64(depth))
}

// syncGauges refreshes the sampled gauges — per-shard table occupancy and
// the process-global pool hit/miss counters. Dispatcher-goroutine only,
// called periodically between reads.
func (d *Device) syncGauges() {
	m := d.rt.lm.Load()
	if m == nil {
		return
	}
	hits, misses := packet.PoolStats()
	m.poolHits.Set(float64(hits))
	m.poolMisses.Set(float64(misses))
	d.Node.SyncShardGauges()
}
