package live

import (
	"sync"
	"time"

	"sdme/internal/topo"
)

// HealthMonitor watches the runtime's devices the way the paper's
// controller would watch its middleboxes: each device answers a liveness
// probe through the same query channel its dataplane loop serves, so a
// wedged or stopped device misses probes and is reported down. The
// controller side pairs this with MarkFailed + Reassign to complete the
// dependability loop.
type HealthMonitor struct {
	rt       *Runtime
	interval time.Duration
	misses   int

	mu     sync.Mutex
	down   map[topo.NodeID]bool
	missed map[topo.NodeID]int
	onDown func(topo.NodeID)
	onUp   func(topo.NodeID)

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewHealthMonitor creates a monitor probing every device at the given
// interval; a device is declared down after `misses` consecutive missed
// probes and up again after one answered probe. Callbacks (optional) fire
// from the monitor goroutine.
func (r *Runtime) NewHealthMonitor(interval time.Duration, misses int, onDown, onUp func(topo.NodeID)) *HealthMonitor {
	if misses < 1 {
		misses = 1
	}
	return &HealthMonitor{
		rt:       r,
		interval: interval,
		misses:   misses,
		down:     make(map[topo.NodeID]bool),
		missed:   make(map[topo.NodeID]int),
		onDown:   onDown,
		onUp:     onUp,
		stop:     make(chan struct{}),
	}
}

// Start launches the probe loop.
func (m *HealthMonitor) Start() {
	m.wg.Add(1)
	go m.loop()
}

// Stop halts the probe loop and waits for it.
func (m *HealthMonitor) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.wg.Wait()
}

// Down returns the currently down devices in ID order.
func (m *HealthMonitor) Down() []topo.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]topo.NodeID, 0, len(m.down))
	for id, d := range m.down {
		if d {
			out = append(out, id)
		}
	}
	return topo.SortedIDs(out)
}

// IsDown reports one device's state.
func (m *HealthMonitor) IsDown(id topo.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down[id]
}

func (m *HealthMonitor) loop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.probeAll()
		}
	}
}

// probeAll sweeps every device concurrently: one wedged device costs the
// sweep a single probe timeout instead of stalling every later device's
// down-detection behind it (sequential probing delayed detection by up
// to 2×interval per wedged device ahead of the victim). State updates
// and callbacks then run sequentially in Devices() order, so callback
// ordering stays deterministic per sweep.
func (m *HealthMonitor) probeAll() {
	devs := m.rt.Devices()
	alive := make([]bool, len(devs))
	var wg sync.WaitGroup
	for i, d := range devs {
		wg.Add(1)
		go func(i int, d *Device) {
			defer wg.Done()
			alive[i] = d.probe(m.interval)
		}(i, d)
	}
	wg.Wait()
	for i, d := range devs {
		id := d.Node.ID
		m.mu.Lock()
		if alive[i] {
			m.missed[id] = 0
			if m.down[id] {
				m.down[id] = false
				if m.onUp != nil {
					m.mu.Unlock()
					m.onUp(id)
					m.mu.Lock()
				}
			}
		} else {
			m.missed[id]++
			if m.missed[id] >= m.misses && !m.down[id] {
				m.down[id] = true
				if m.onDown != nil {
					m.mu.Unlock()
					m.onDown(id)
					m.mu.Lock()
				}
			}
		}
		m.mu.Unlock()
	}
}

// probe asks the device loop to answer within the timeout; a live loop
// services the query channel between reads.
func (d *Device) probe(timeout time.Duration) bool {
	resp := make(chan struct{}, 1)
	select {
	case d.health <- resp:
	case <-time.After(timeout):
		return false
	case <-d.done:
		return false
	}
	select {
	case <-resp:
		return true
	case <-time.After(timeout):
		return false
	case <-d.done:
		return false
	}
}

// Stop halts one device's loop without closing the whole runtime — the
// failure-injection hook for tests and demos.
func (d *Device) Stop() { d.stop() }

// Wedge blocks the device's loop goroutine until the returned release
// function is called (or the device stops) — the fault-injection hook
// for a device that is alive at the socket but dead at the dataplane:
// health probes time out, Do calls stall, frames pile up unread. Unlike
// Stop, a wedged device recovers fully on release, queued commands and
// all. The release function is idempotent.
func (d *Device) Wedge() (release func()) {
	released := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(released) }) }
	blocked := func() {
		select {
		case <-released:
		case <-d.done:
		}
	}
	select {
	case d.commands <- blocked:
	case <-d.done:
	}
	return release
}
