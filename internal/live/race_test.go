package live_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

// buildLiveNodes builds controller-configured dataplane nodes without
// registering them as devices, so tests can exercise concurrent AddDevice.
func buildLiveNodes(t *testing.T) map[topo.NodeID]*enforce.Node {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 4, EdgeRouters: 2, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{
		K: map[policy.FuncType]int{policy.FuncFW: 1, policy.FuncIDS: 1},
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

// TestConcurrentAddProbeStop drives the runtime the way a live deployment
// does: devices registering while the health monitor is already probing,
// counters queried concurrently, and a device stopped from several
// goroutines at once. Run under -race this pins down the registry and
// device lifecycle synchronization (unsynchronized devices/sinks appends,
// double-close of done, counters read racing the device loop's last frame).
func TestConcurrentAddProbeStop(t *testing.T) {
	nodes := buildLiveNodes(t)
	rt := live.NewRuntime()
	t.Cleanup(rt.Close)

	hm := rt.NewHealthMonitor(2*time.Millisecond, 2, nil, nil)
	hm.Start()
	defer hm.Stop()

	// Register every device concurrently while the monitor iterates.
	var wg sync.WaitGroup
	devCh := make(chan *live.Device, len(nodes))
	for _, n := range nodes {
		wg.Add(1)
		go func(n *enforce.Node) {
			defer wg.Done()
			d, err := rt.AddDevice(n)
			if err != nil {
				t.Error(err)
				return
			}
			devCh <- d
		}(n)
	}
	wg.Wait()
	close(devCh)
	devices := make([]*live.Device, 0, len(nodes))
	for d := range devCh {
		devices = append(devices, d)
	}
	if len(devices) != len(nodes) {
		t.Fatalf("registered %d devices, want %d", len(devices), len(nodes))
	}
	if got := len(rt.Devices()); got != len(nodes) {
		t.Fatalf("Devices() sees %d devices, want %d", got, len(nodes))
	}

	// Concurrent counters queries against live devices, plus a device
	// stopped from several goroutines at once; Counters after Stop must
	// still return a settled snapshot.
	target := devices[0]
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			target.Stop()
			_ = target.Counters()
		}()
	}
	for _, d := range devices {
		wg.Add(1)
		go func(d *live.Device) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_ = d.Counters()
			}
		}(d)
	}
	wg.Wait()
}
