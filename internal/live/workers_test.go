package live

// Internal tests for the worker pool: flow→worker affinity, per-flow
// ordering across worker counts, and drained shutdown. They build nodes
// by hand (no controller — the controller package imports live) and ride
// a recording network function installed at the middlebox.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/nf"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// recorderNF records, per flow, the order in which 4-byte payload
// sequence numbers reached Process — the observation point for the
// per-flow ordering guarantee.
type recorderNF struct {
	mu   sync.Mutex
	seqs map[netaddr.FiveTuple][]uint32
	n    int64
}

func newRecorderNF() *recorderNF {
	return &recorderNF{seqs: make(map[netaddr.FiveTuple][]uint32)}
}

func (r *recorderNF) Type() policy.FuncType { return policy.FuncIDS }

func (r *recorderNF) Process(p *packet.Packet, _ int64) nf.Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if len(p.Payload) >= 4 {
		ft := p.FiveTuple()
		r.seqs[ft] = append(r.seqs[ft], binary.BigEndian.Uint32(p.Payload))
	}
	return nf.VerdictPass
}

func (r *recorderNF) Processed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *recorderNF) flowSeqs(ft netaddr.FiveTuple) []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint32(nil), r.seqs[ft]...)
}

// workerBed is a hand-built two-device fabric: one proxy, one middlebox
// running the recorder, one policy sending port-80 traffic through it.
type workerBed struct {
	rt        *Runtime
	proxy, mb *Device
	proxyAddr netaddr.Addr
	rec       *recorderNF
}

func newWorkerBed(t *testing.T, workers int) *workerBed {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g := topo.Campus(topo.CampusConfig{Gateways: 1, CoreRouters: 2, EdgeRouters: 1, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	core := g.NodesOfKind(topo.KindCoreRouter)[0]
	dep.AddMiddlebox(core, "rec1", policy.FuncIDS)
	mbID := dep.MBNodes[0]

	rec := newRecorderNF()
	pol := &policy.Policy{ID: 1, Prio: 1, Desc: policy.NewDescriptor(), Actions: policy.ActionList{policy.FuncIDS}}
	pol.Desc.DstPort = netaddr.SinglePort(80)
	cfg := enforce.Config{
		Policies:   []*policy.Policy{pol},
		Candidates: map[policy.FuncType][]topo.NodeID{policy.FuncIDS: {mbID}},
		Strategy:   enforce.HotPotato,
		FlowShards: 16,
	}

	proxyID, ok := dep.ProxyFor(1)
	if !ok {
		t.Fatal("no proxy for subnet 1")
	}
	proxyNode := enforce.NewProxy(dep, proxyID)
	if err := proxyNode.Install(cfg); err != nil {
		t.Fatal(err)
	}
	mbNode, err := enforce.NewMiddleboxWith(dep, mbID, func(policy.FuncType) (nf.Function, error) {
		return rec, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mbNode.Install(cfg); err != nil {
		t.Fatal(err)
	}

	rt := NewRuntime()
	t.Cleanup(rt.Close)
	proxyDev, err := rt.AddDeviceWorkers(proxyNode, workers)
	if err != nil {
		t.Fatal(err)
	}
	mbDev, err := rt.AddDeviceWorkers(mbNode, workers)
	if err != nil {
		t.Fatal(err)
	}
	if got := proxyDev.Workers(); got != workers {
		t.Fatalf("proxy workers = %d, want %d", got, workers)
	}
	return &workerBed{rt: rt, proxy: proxyDev, mb: mbDev, proxyAddr: dep.AddrOf(proxyID), rec: rec}
}

func workerFlow(n uint16) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(1, 200),
		SrcPort: 20000 + n, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
}

func seqPacket(ft netaddr.FiveTuple, seq uint32) *packet.Packet {
	p := packet.New(ft, 4)
	p.Payload = make([]byte, 4)
	binary.BigEndian.PutUint32(p.Payload, seq)
	return p
}

// TestWorkerPoolPerFlowOrdering injects interleaved same-flow datagrams
// from a single producer and asserts every flow's packets reach the
// middlebox function in injection order — at every worker count.
func TestWorkerPoolPerFlowOrdering(t *testing.T) {
	const (
		flows  = 8
		perMsg = 100
	)
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			b := newWorkerBed(t, workers)
			total := int64(flows * perMsg)
			// Inject with backpressure: UDP gives the producer no flow
			// control, so bound the in-flight window below the kernel's
			// socket-buffer datagram capacity to keep the test about
			// ordering, not about loss.
			injected := int64(0)
			for seq := uint32(0); seq < perMsg; seq++ {
				for f := uint16(0); f < flows; f++ {
					if err := b.rt.Inject(b.proxyAddr, seqPacket(workerFlow(f), seq)); err != nil {
						t.Fatal(err)
					}
					injected++
					if injected%64 == 0 {
						lag := injected - 128
						if !WaitUntil(5*time.Second, func() bool { return b.rec.Processed() >= lag }) {
							t.Fatalf("stalled: processed %d, injected %d", b.rec.Processed(), injected)
						}
					}
				}
			}
			if !WaitUntil(5*time.Second, func() bool { return b.rec.Processed() >= total }) {
				t.Fatalf("middlebox processed %d of %d", b.rec.Processed(), total)
			}
			for f := uint16(0); f < flows; f++ {
				got := b.rec.flowSeqs(workerFlow(f))
				if len(got) != perMsg {
					t.Fatalf("flow %d: %d packets recorded, want %d", f, len(got), perMsg)
				}
				for i, s := range got {
					if s != uint32(i) {
						t.Fatalf("flow %d: out of order at %d: got seq %d (full: %v)", f, i, s, got[:i+1])
					}
				}
			}
		})
	}
}

// TestWorkerPoolDrainedShutdown loads every worker queue directly, then
// stops the device: the dispatcher closes the queues and the workers must
// drain every accepted item exactly once before exiting — no drops, no
// double-processing.
func TestWorkerPoolDrainedShutdown(t *testing.T) {
	const (
		flows  = 32
		perMsg = 50
	)
	b := newWorkerBed(t, 4)
	// Bypass the socket: enqueue pooled packets straight onto the worker
	// queues the way dispatch would, so work is provably queued (not just
	// sitting in a kernel buffer) when stop lands.
	for seq := uint32(0); seq < perMsg; seq++ {
		for f := uint16(0); f < flows; f++ {
			ft := workerFlow(f)
			src := seqPacket(ft, seq)
			pkt := packet.Get()
			if err := packet.UnmarshalInto(pkt, src.Marshal()); err != nil {
				t.Fatal(err)
			}
			h := pkt.Inner
			b.proxy.workerFor(h.Src, h.SrcPort, h.DstPort, h.Proto) <- workItem{pkt: pkt}
		}
	}
	b.proxy.stop()
	c := b.proxy.Counters()
	if c.PacketsIn != flows*perMsg {
		t.Fatalf("PacketsIn = %d after drained shutdown, want exactly %d", c.PacketsIn, flows*perMsg)
	}
	// Every packet was forwarded onward exactly once, too.
	if c.TunnelTx != flows*perMsg {
		t.Fatalf("TunnelTx = %d, want %d", c.TunnelTx, flows*perMsg)
	}
}

// TestFlowWorkerHashExcludesDst pins the affinity property the dispatcher
// relies on: rewriting the destination (what label switching does hop by
// hop) must not move a flow to another worker.
func TestFlowWorkerHashExcludesDst(t *testing.T) {
	ft := workerFlow(3)
	h1 := flowWorkerHash(ft.Src, ft.SrcPort, ft.DstPort, ft.Proto)
	ft.Dst = topo.HostAddr(1, 77) // label switching rewrites only Dst
	h2 := flowWorkerHash(ft.Src, ft.SrcPort, ft.DstPort, ft.Proto)
	if h1 != h2 {
		t.Fatal("flow hash depends on Dst; label-switched packets would migrate workers")
	}
	other := workerFlow(4)
	if flowWorkerHash(other.Src, other.SrcPort, other.DstPort, other.Proto) == h1 {
		t.Fatal("distinct flows hash identically (degenerate hash)")
	}
}
