package enforce

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sdme/internal/flowtable"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// ConfigDelta is an incremental edit to a node's Config: the unit the
// staged compilation pipeline pushes when only part of the plan changed.
// Applying a delta on top of the base configuration it was diffed against
// yields exactly the full configuration the controller would otherwise
// have pushed — ApplyToConfig is pure, and Node.ApplyDelta additionally
// preserves flow/label soft state for flows the delta does not touch.
type ConfigDelta struct {
	// Upserts are policies to add or replace (matched by ID). They carry
	// the global priority, so insertion position is implied.
	Upserts []*policy.Policy
	// Removes are policy IDs to delete.
	Removes []int
	// SetCandidates replaces individual candidate lists; DropCandidates
	// deletes the listed functions' lists outright.
	SetCandidates  map[policy.FuncType][]topo.NodeID
	DropCandidates []policy.FuncType
	// SetWeights replaces individual weight vectors; DropWeights deletes
	// the listed keys.
	SetWeights  map[WeightKey][]float64
	DropWeights []WeightKey
}

// Empty reports whether the delta carries no edits.
func (d *ConfigDelta) Empty() bool {
	return len(d.Upserts) == 0 && len(d.Removes) == 0 &&
		len(d.SetCandidates) == 0 && len(d.DropCandidates) == 0 &&
		len(d.SetWeights) == 0 && len(d.DropWeights) == 0
}

// Entries counts the edit entries the delta carries (policies, candidate
// lists and weight vectors touched) — the per-node delta-size unit the
// churn metrics report.
func (d *ConfigDelta) Entries() int {
	return len(d.Upserts) + len(d.Removes) +
		len(d.SetCandidates) + len(d.DropCandidates) +
		len(d.SetWeights) + len(d.DropWeights)
}

// ApplyToConfig returns the configuration that results from applying the
// delta on top of base. Base is not mutated: every container the delta
// touches is copied first. Policy order is maintained by (Prio, ID),
// which Install relies on for first-match classification.
func (d *ConfigDelta) ApplyToConfig(base Config) Config {
	out := base

	if len(d.Upserts) > 0 || len(d.Removes) > 0 {
		gone := make(map[int]bool, len(d.Removes)+len(d.Upserts))
		for _, id := range d.Removes {
			gone[id] = true
		}
		for _, p := range d.Upserts {
			gone[p.ID] = true
		}
		merged := make([]*policy.Policy, 0, len(base.Policies)+len(d.Upserts))
		for _, p := range base.Policies {
			if !gone[p.ID] {
				merged = append(merged, p)
			}
		}
		merged = append(merged, d.Upserts...)
		sort.SliceStable(merged, func(i, j int) bool {
			a, b := merged[i], merged[j]
			if a.Prio != b.Prio {
				return a.Prio < b.Prio
			}
			return a.ID < b.ID
		})
		out.Policies = merged
	}

	if len(d.SetCandidates) > 0 || len(d.DropCandidates) > 0 {
		cands := make(map[policy.FuncType][]topo.NodeID, len(base.Candidates)+len(d.SetCandidates))
		for f, c := range base.Candidates {
			cands[f] = c
		}
		for _, f := range d.DropCandidates {
			delete(cands, f)
		}
		for f, c := range d.SetCandidates {
			cands[f] = c
		}
		out.Candidates = cands
	}

	if len(d.SetWeights) > 0 || len(d.DropWeights) > 0 {
		w := make(map[WeightKey][]float64, len(base.Weights)+len(d.SetWeights))
		for k, v := range base.Weights {
			w[k] = v
		}
		for _, k := range d.DropWeights {
			delete(w, k)
		}
		for k, v := range d.SetWeights {
			w[k] = v
		}
		if len(w) == 0 {
			// A full build leaves Weights nil when the solver produced no
			// vectors for the node; match it so delta-applied and freshly
			// built configurations stay identical.
			w = nil
		}
		out.Weights = w
	}
	return out
}

// ApplyDelta applies an incremental configuration edit in place. Unlike
// Install it does NOT rebuild the flow/label soft-state tables: only
// entries the delta can affect are invalidated, so untouched flows keep
// their fast-path state across the reconfiguration. Invalidation rules:
//
//   - flow/label entries of removed or replaced policies are purged (their
//     cached action chains are stale);
//   - when a policy is inserted or replaced, null entries and entries of
//     policies with a priority below it in match order (numerically above
//     its Prio) are purged, because the new rule may now shadow them;
//   - pinned entries whose next hop drops out of every candidate list are
//     purged, mirroring InvalidateProvider;
//   - pure weight changes purge nothing, mirroring SetWeights.
//
// This is a configuration mutator under the Node concurrency contract:
// serialize it with packet handling.
func (n *Node) ApplyDelta(d ConfigDelta) error {
	for _, p := range d.Upserts {
		seen := map[policy.FuncType]bool{}
		for _, f := range p.Actions {
			if seen[f] {
				return fmt.Errorf("enforce: %v repeats function %v; unsupported", p, f)
			}
			seen[f] = true
		}
	}
	old := n.cfg
	cfg := d.ApplyToConfig(old)

	policiesChanged := len(d.Upserts) > 0 || len(d.Removes) > 0
	if policiesChanged {
		// Identify what the delta touches, against the OLD install: the
		// soft-state entries reference policies by their pre-edit identity.
		changed := make(map[int]bool, len(d.Removes)+len(d.Upserts))
		for _, id := range d.Removes {
			changed[id] = true
		}
		minUpsertPrio := -1
		for _, p := range d.Upserts {
			changed[p.ID] = true
			if minUpsertPrio < 0 || p.Prio < minUpsertPrio {
				minUpsertPrio = p.Prio
			}
		}
		oldPrio := make(map[int]int, len(old.Policies))
		for _, p := range old.Policies {
			oldPrio[p.ID] = p.Prio
		}
		shadowed := func(policyID int) bool {
			if minUpsertPrio < 0 {
				return false
			}
			prio, ok := oldPrio[policyID]
			return !ok || prio > minUpsertPrio
		}
		total := 0
		if n.flows != nil {
			total += n.flows.InvalidateIf(func(e *flowtable.Entry) bool {
				if e.Null {
					return minUpsertPrio >= 0
				}
				return changed[e.PolicyID] || shadowed(e.PolicyID)
			})
		}
		if n.labels != nil {
			total += n.labels.InvalidateIf(func(e *flowtable.LabelEntry) bool {
				return changed[e.PolicyID] || shadowed(e.PolicyID)
			})
		}
		atomic.AddInt64(&n.Counters.Invalidated, int64(total))

		if cfg.UseTrie {
			n.classifier = policy.NewTrieClassifier(cfg.Policies)
		} else {
			tbl := policy.NewTable()
			for _, p := range cfg.Policies {
				tbl.AddPolicy(p)
			}
			n.classifier = tbl
		}
	}

	if len(d.SetCandidates) > 0 || len(d.DropCandidates) > 0 {
		// Providers that dropped out of every candidate list can no longer
		// be selected; purge soft state pinned to them so those flows
		// re-enter the slow path against the new lists.
		still := make(map[topo.NodeID]bool)
		for _, cands := range cfg.Candidates {
			for _, mb := range cands {
				still[mb] = true
			}
		}
		n.cfg = cfg // InvalidateProvider consults the new candidate lists
		purged := make(map[topo.NodeID]bool)
		for _, cands := range old.Candidates {
			for _, mb := range cands {
				if !still[mb] && !purged[mb] {
					purged[mb] = true
					n.InvalidateProvider(mb)
				}
			}
		}
	}
	n.cfg = cfg
	return nil
}
