package enforce_test

import (
	"math/rand"
	"strings"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/nf"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

// fabric is an in-memory network: it delivers packets straight to the
// node owning the outermost destination address, and collects packets
// addressed to anything else as "delivered to destination". Delivery is
// synchronous, so a chain unwinds within one HandleOutbound call.
type fabric struct {
	t         *testing.T
	nodes     map[netaddr.Addr]*enforce.Node
	delivered []*packet.Packet
	controls  int
	now       int64
	// visits records the middlebox nodes each flow's packets touched, in
	// order.
	visits map[netaddr.FiveTuple][]topo.NodeID
}

var _ enforce.Forwarder = (*fabric)(nil)

func newFabric(t *testing.T, nodes map[topo.NodeID]*enforce.Node) *fabric {
	f := &fabric{t: t, nodes: make(map[netaddr.Addr]*enforce.Node), visits: make(map[netaddr.FiveTuple][]topo.NodeID)}
	for _, n := range nodes {
		f.nodes[n.Addr] = n
	}
	return f
}

func (f *fabric) Send(from *enforce.Node, pkt *packet.Packet) {
	dst := pkt.OutermostDst()
	if n, ok := f.nodes[dst]; ok {
		if n.IsProxy {
			f.t.Fatalf("packet addressed to a proxy: %v", pkt)
		}
		f.visits[flowKeyOf(pkt)] = append(f.visits[flowKeyOf(pkt)], n.ID)
		if err := n.HandleArrival(pkt, f.now, f); err != nil {
			f.t.Fatalf("HandleArrival at %v: %v", n.ID, err)
		}
		return
	}
	f.delivered = append(f.delivered, pkt)
}

// flowKeyOf normalizes to the inner tuple's src+ports, because label
// switching rewrites the destination address.
func flowKeyOf(pkt *packet.Packet) netaddr.FiveTuple {
	ft := pkt.FiveTuple()
	ft.Dst = 0
	return ft
}

func (f *fabric) SendControl(from *enforce.Node, to netaddr.Addr, flow netaddr.FiveTuple) {
	f.controls++
	n, ok := f.nodes[to]
	if !ok || !n.IsProxy {
		f.t.Fatalf("control packet to non-proxy %v", to)
	}
	n.HandleControl(flow, f.now)
}

// testbed bundles a small campus deployment with controller-built nodes.
type testbed struct {
	g     *topo.Graph
	dep   *enforce.Deployment
	ap    *route.AllPairs
	tbl   *policy.Table
	ctl   *controller.Controller
	nodes map[topo.NodeID]*enforce.Node
}

// newTestbed builds: small campus (4 cores, 3 edges+proxies), middleboxes
// 2×FW, 2×IDS, 1×WP, 1×TM, and the given policies.
func newTestbed(t *testing.T, opts controller.Options, buildPolicies func(tbl *policy.Table)) *testbed {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 4, EdgeRouters: 3, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[2], "fw2", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)
	dep.AddMiddlebox(cores[3], "ids2", policy.FuncIDS)
	dep.AddMiddlebox(cores[1], "wp1", policy.FuncWP)
	dep.AddMiddlebox(cores[2], "tm1", policy.FuncTM)

	tbl := policy.NewTable()
	buildPolicies(tbl)

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	if opts.K == nil {
		opts.K = map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2, policy.FuncWP: 1, policy.FuncTM: 1}
	}
	ctl := controller.New(dep, ap, tbl, opts)
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{g: g, dep: dep, ap: ap, tbl: tbl, ctl: ctl, nodes: nodes}
}

func (tb *testbed) proxy(t *testing.T, subnet int) *enforce.Node {
	t.Helper()
	id, ok := tb.dep.ProxyFor(subnet)
	if !ok {
		t.Fatalf("no proxy for subnet %d", subnet)
	}
	return tb.nodes[id]
}

func webPolicy(tbl *policy.Table) {
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})
}

func flowFromSubnet(src, dst int, dstPort uint16) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: topo.HostAddr(src, 1), Dst: topo.HostAddr(dst, 1),
		SrcPort: 30000, DstPort: dstPort, Proto: netaddr.ProtoTCP,
	}
}

func TestDeploymentDiscovery(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	if tb.dep.NumSubnets() != 3 {
		t.Errorf("subnets = %d, want 3", tb.dep.NumSubnets())
	}
	if got := len(tb.dep.Providers(policy.FuncFW)); got != 2 {
		t.Errorf("FW providers = %d, want 2", got)
	}
	if got := len(tb.dep.Functions()); got != 4 {
		t.Errorf("functions = %d, want 4", got)
	}
	for i := 1; i <= 3; i++ {
		p, ok := tb.dep.ProxyFor(i)
		if !ok {
			t.Fatalf("no proxy for subnet %d", i)
		}
		if tb.dep.SubnetIndexOf(tb.dep.AddrOf(p)) != i {
			t.Errorf("proxy %d subnet mapping broken", i)
		}
	}
	if _, ok := tb.dep.ProxyFor(99); ok {
		t.Error("ProxyFor out of range should fail")
	}
}

func TestHotPotatoChainTraversal(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 2, 80)
	pkt := packet.New(ft, 100)
	if err := proxy.HandleOutbound(pkt, 0, f); err != nil {
		t.Fatal(err)
	}

	// The packet visited exactly one FW then one IDS, each the closest.
	visits := f.visits[flowKeyOf(pkt)]
	if len(visits) != 2 {
		t.Fatalf("visited %v, want FW then IDS", visits)
	}
	wantFW := tb.ap.Closest(proxy.ID, tb.dep.Providers(policy.FuncFW))
	if visits[0] != wantFW {
		t.Errorf("first hop %v, want closest FW %v", visits[0], wantFW)
	}
	wantIDS := tb.ap.Closest(visits[0], tb.dep.Providers(policy.FuncIDS))
	if visits[1] != wantIDS {
		t.Errorf("second hop %v, want closest IDS %v", visits[1], wantIDS)
	}

	// Delivered to the real destination, unencapsulated.
	if len(f.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(f.delivered))
	}
	got := f.delivered[0]
	if got.IsEncapsulated() {
		t.Error("delivered packet still encapsulated")
	}
	if got.Inner.Dst != ft.Dst {
		t.Errorf("delivered to %v, want %v", got.Inner.Dst, ft.Dst)
	}
	// Loads counted once per middlebox.
	if tb.nodes[visits[0]].Counters.Load != 1 || tb.nodes[visits[1]].Counters.Load != 1 {
		t.Error("middlebox loads wrong")
	}
}

func TestPermitAndNullForwardPlain(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, func(tbl *policy.Table) {
		// Permit web within subnet 1<->2; no policy for anything else.
		d := policy.NewDescriptor()
		d.Src = topo.SubnetPrefix(1)
		d.DstPort = netaddr.SinglePort(80)
		tbl.Add(d, nil)
	})
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)

	// Permit: matched, forwarded plain.
	if err := proxy.HandleOutbound(packet.New(flowFromSubnet(1, 2, 80), 10), 0, f); err != nil {
		t.Fatal(err)
	}
	// Null: unmatched, forwarded plain, null entry cached.
	unmatched := flowFromSubnet(1, 2, 9999)
	if err := proxy.HandleOutbound(packet.New(unmatched, 10), 0, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(f.delivered))
	}
	if proxy.Counters.PlainTx != 2 || proxy.Counters.TunnelTx != 0 {
		t.Errorf("counters: %+v", proxy.Counters)
	}
	// Second packet of the unmatched flow hits the null entry: no
	// classification.
	before := proxy.Counters.Classified
	if err := proxy.HandleOutbound(packet.New(unmatched, 10), 1, f); err != nil {
		t.Fatal(err)
	}
	if proxy.Counters.Classified != before {
		t.Error("null entry did not suppress classification")
	}
	if proxy.FlowTable().Stats().NullHits != 1 {
		t.Errorf("flow table stats: %+v", proxy.FlowTable().Stats())
	}
}

func TestFlowTableSuppressesClassification(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 3, 80)
	for i := 0; i < 5; i++ {
		if err := proxy.HandleOutbound(packet.New(ft, 10), int64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if proxy.Counters.Classified != 1 {
		t.Errorf("classified %d times, want 1 (flow table must cache)", proxy.Counters.Classified)
	}
	// Middleboxes cache too.
	for _, id := range tb.dep.MBNodes {
		n := tb.nodes[id]
		if n.Counters.Load > 0 && n.Counters.Classified != 1 {
			t.Errorf("middlebox %v classified %d times for one flow", id, n.Counters.Classified)
		}
	}
}

func TestLabelSwitchingLifecycle(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato, LabelSwitching: true}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 2, 80)

	// First packet: tunneled along the chain, label tables installed,
	// control message returned.
	if err := proxy.HandleOutbound(packet.New(ft, 100), 0, f); err != nil {
		t.Fatal(err)
	}
	if f.controls != 1 {
		t.Fatalf("controls = %d, want 1", f.controls)
	}
	if proxy.Counters.TunnelTx != 1 || proxy.Counters.LabelTx != 0 {
		t.Fatalf("first packet counters: %+v", proxy.Counters)
	}
	visits1 := append([]topo.NodeID(nil), f.visits[flowKeyOf(packet.New(ft, 0))]...)

	// Each visited middlebox holds a label entry; the tail entry knows
	// the destination.
	for i, id := range visits1 {
		lt := tb.nodes[id].LabelTable()
		if lt.Len() != 1 {
			t.Fatalf("middlebox %v label table has %d entries, want 1", id, lt.Len())
		}
		if i == len(visits1)-1 && lt.Stats().Inserted != 1 {
			t.Fatalf("tail stats: %+v", lt.Stats())
		}
	}

	// Second packet: label-switched (no outer header) along the SAME
	// middlebox path, delivered to the true destination, label cleared.
	if err := proxy.HandleOutbound(packet.New(ft, 100), 1, f); err != nil {
		t.Fatal(err)
	}
	if proxy.Counters.LabelTx != 1 {
		t.Fatalf("second packet not label-switched: %+v", proxy.Counters)
	}
	visits2 := f.visits[flowKeyOf(packet.New(ft, 0))]
	if len(visits2) != 2*len(visits1) {
		t.Fatalf("second packet visits: %v", visits2)
	}
	for i := range visits1 {
		if visits2[len(visits1)+i] != visits1[i] {
			t.Fatalf("label-switched path %v differs from tunneled path %v", visits2[len(visits1):], visits1)
		}
	}
	if len(f.delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(f.delivered))
	}
	got := f.delivered[1]
	if got.IsEncapsulated() {
		t.Error("label-switched packet delivered with outer header")
	}
	if got.Inner.Dst != ft.Dst {
		t.Errorf("delivered to %v, want %v (dst restore failed)", got.Inner.Dst, ft.Dst)
	}
	if got.Label() != 0 {
		t.Errorf("delivered packet still labeled: %d", got.Label())
	}
	// Label-switched packets are smaller on the wire than tunneled ones.
	if got.Size() != packet.HeaderLen+100 {
		t.Errorf("delivered size = %d", got.Size())
	}
}

func TestLabelSwitchingDisabledNeverLabels(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 2, 80)
	for i := 0; i < 3; i++ {
		if err := proxy.HandleOutbound(packet.New(ft, 100), int64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if f.controls != 0 {
		t.Error("control packets sent with label switching disabled")
	}
	if proxy.Counters.TunnelTx != 3 || proxy.Counters.LabelTx != 0 {
		t.Errorf("counters: %+v", proxy.Counters)
	}
}

func TestFirewallDropStopsChain(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	// Install a deny rule for subnet 1 on every firewall.
	deny := policy.NewDescriptor()
	deny.Src = topo.SubnetPrefix(1)
	for _, id := range tb.dep.Providers(policy.FuncFW) {
		fw := tb.nodes[id].Funcs[policy.FuncFW].(*nf.Firewall)
		fw.AddRule(nf.FirewallRule{Desc: deny, Action: nf.Deny})
	}
	f := newFabric(t, tb.nodes)
	if err := tb.proxy(t, 1).HandleOutbound(packet.New(flowFromSubnet(1, 2, 80), 10), 0, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 0 {
		t.Error("denied packet was delivered")
	}
	var drops int64
	for _, id := range tb.dep.Providers(policy.FuncFW) {
		drops += tb.nodes[id].Counters.Dropped
	}
	if drops != 1 {
		t.Errorf("drops = %d, want 1", drops)
	}
	// Traffic from subnet 2 still flows.
	if err := tb.proxy(t, 2).HandleOutbound(packet.New(flowFromSubnet(2, 3, 80), 10), 0, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 1 {
		t.Error("allowed packet was not delivered")
	}
}

func TestWebProxyServeStopsChain(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, func(tbl *policy.Table) {
		d := policy.NewDescriptor()
		d.DstPort = netaddr.SinglePort(80)
		tbl.Add(d, policy.ActionList{policy.FuncWP, policy.FuncFW})
	})
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 2, 80)
	mk := func() *packet.Packet {
		p := packet.New(ft, 6)
		p.Payload = []byte("GET /x")
		return p
	}
	// First request: WP cache miss, continues to FW, delivered.
	if err := proxy.HandleOutbound(mk(), 0, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 1 {
		t.Fatal("first request should reach the server")
	}
	// Second identical request: WP cache hit, served locally.
	if err := proxy.HandleOutbound(mk(), 1, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 1 {
		t.Error("cache hit should not reach the server")
	}
	wp := tb.nodes[tb.dep.Providers(policy.FuncWP)[0]]
	if wp.Counters.Served != 1 {
		t.Errorf("served = %d, want 1", wp.Counters.Served)
	}
}

func TestRandStrategyIsPerFlowDeterministic(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.Random}, webPolicy)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 2, 80)
	first, err := proxy.SelectNext(0, policy.FuncFW, ft)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, err := proxy.SelectNext(0, policy.FuncFW, ft)
		if err != nil || got != first {
			t.Fatal("Rand selection must be stable per flow")
		}
	}
	// Over many flows both firewalls get traffic.
	rng := rand.New(rand.NewSource(3))
	seen := map[topo.NodeID]bool{}
	for i := 0; i < 200; i++ {
		ftI := netaddr.FiveTuple{
			Src: topo.HostAddr(1, 1+rng.Intn(100)), Dst: topo.HostAddr(2, 1+rng.Intn(100)),
			SrcPort: uint16(20000 + rng.Intn(10000)), DstPort: 80, Proto: netaddr.ProtoTCP,
		}
		got, err := proxy.SelectNext(0, policy.FuncFW, ftI)
		if err != nil {
			t.Fatal(err)
		}
		seen[got] = true
	}
	if len(seen) != 2 {
		t.Errorf("Rand used %d of 2 firewalls", len(seen))
	}
}

func TestNoProviderError(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	proxy := tb.proxy(t, 1)
	// A function type no middlebox implements.
	bogus := policy.FuncType(77)
	if _, err := proxy.SelectNext(0, bogus, flowFromSubnet(1, 2, 80)); err == nil {
		t.Error("expected error for unprovided function")
	}
	if proxy.Counters.NoProvider != 1 {
		t.Errorf("NoProvider = %d", proxy.Counters.NoProvider)
	}
}

func TestMisdirectedHandling(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	mb := tb.nodes[tb.dep.MBNodes[0]]

	if err := mb.HandleOutbound(packet.New(flowFromSubnet(1, 2, 80), 1), 0, f); err == nil {
		t.Error("HandleOutbound on middlebox should error")
	}
	if err := proxy.HandleArrival(packet.New(flowFromSubnet(1, 2, 80), 1), 0, f); err == nil {
		t.Error("HandleArrival on proxy should error")
	}
	// Unlabeled plain packet at a middlebox.
	if err := mb.HandleArrival(packet.New(flowFromSubnet(1, 2, 80), 1), 0, f); err == nil {
		t.Error("unlabeled plain arrival should error")
	}
}

func TestMeasurements(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	for i := 0; i < 7; i++ {
		if err := proxy.HandleOutbound(packet.New(flowFromSubnet(1, 2, 80), 10), int64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := proxy.HandleOutbound(packet.New(flowFromSubnet(1, 3, 80), 10), int64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	meas := proxy.Measurements()
	p := tb.tbl.All()[0]
	if got := meas[enforce.MeasKey{PolicyID: p.ID, SrcSubnet: 1, DstSubnet: 2}]; got != 7 {
		t.Errorf("T(1->2) = %d, want 7", got)
	}
	if got := meas[enforce.MeasKey{PolicyID: p.ID, SrcSubnet: 1, DstSubnet: 3}]; got != 3 {
		t.Errorf("T(1->3) = %d, want 3", got)
	}
	proxy.ResetMeasurements()
	if len(proxy.Measurements()) != 0 {
		t.Error("ResetMeasurements failed")
	}
}

func TestEvaluatorMatchesPacketDataplane(t *testing.T) {
	// The flow-level evaluator must produce exactly the same middlebox
	// loads as pushing every packet through the dataplane.
	for _, strat := range []enforce.Strategy{enforce.HotPotato, enforce.Random} {
		tb := newTestbed(t, controller.Options{Strategy: strat, HashSeed: 99}, webPolicy)
		f := newFabric(t, tb.nodes)
		rng := rand.New(rand.NewSource(11))

		var demands []enforce.FlowDemand
		for i := 0; i < 60; i++ {
			src := 1 + rng.Intn(3)
			dst := 1 + rng.Intn(2)
			if dst >= src {
				dst++
			}
			ft := netaddr.FiveTuple{
				Src: topo.HostAddr(src, 1+rng.Intn(50)), Dst: topo.HostAddr(dst, 1+rng.Intn(50)),
				SrcPort: uint16(20000 + rng.Intn(20000)), DstPort: 80, Proto: netaddr.ProtoTCP,
			}
			demands = append(demands, enforce.FlowDemand{Tuple: ft, Packets: int64(1 + rng.Intn(5))})
		}
		report, err := enforce.EvaluateFlows(tb.nodes, tb.dep, tb.ap, demands)
		if err != nil {
			t.Fatal(err)
		}

		// Fresh nodes for the packet run (the evaluator shares no state).
		nodes2, err := tb.ctl.BuildNodes()
		if err != nil {
			t.Fatal(err)
		}
		f = newFabric(t, nodes2)
		for _, d := range demands {
			srcSub := tb.dep.SubnetIndexOf(d.Tuple.Src)
			pid, _ := tb.dep.ProxyFor(srcSub)
			for k := int64(0); k < d.Packets; k++ {
				if err := nodes2[pid].HandleOutbound(packet.New(d.Tuple, 64), k, f); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, id := range tb.dep.MBNodes {
			if got, want := nodes2[id].Counters.Load, report.Loads[id]; got != want {
				t.Errorf("%v: middlebox %v packet-level load %d != evaluator load %d", strat, id, got, want)
			}
		}
	}
}

func TestEvaluateFlowsReporting(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	demands := []enforce.FlowDemand{
		{Tuple: flowFromSubnet(1, 2, 80), Packets: 10},  // enforced
		{Tuple: flowFromSubnet(1, 2, 9999), Packets: 5}, // unmatched
		{Tuple: flowFromSubnet(2, 3, 80), Packets: 20},  // enforced
	}
	report, err := enforce.EvaluateFlows(tb.nodes, tb.dep, tb.ap, demands)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalPackets != 35 {
		t.Errorf("TotalPackets = %d", report.TotalPackets)
	}
	if report.Unenforced != 1 {
		t.Errorf("Unenforced = %d", report.Unenforced)
	}
	if got := report.MaxLoad(tb.dep, policy.FuncFW); got <= 0 || got > 30 {
		t.Errorf("FW max load = %d", got)
	}
	if report.MaxLoad(tb.dep, policy.FuncFW) < report.MinLoad(tb.dep, policy.FuncFW) {
		t.Error("max < min")
	}
	if got := report.LoadsOf(tb.dep, policy.FuncFW); len(got) != 2 {
		t.Errorf("LoadsOf FW = %v", got)
	}
	// FW and IDS each processed all 30 enforced packets in total.
	var fwTotal int64
	for _, l := range report.LoadsOf(tb.dep, policy.FuncFW) {
		fwTotal += l
	}
	if fwTotal != 30 {
		t.Errorf("total FW load = %d, want 30", fwTotal)
	}
	if report.AvgPathCost() <= 0 {
		t.Error("path cost missing")
	}
	if sl := report.SortedLoads(); len(sl) == 0 || sl[0].Load < sl[len(sl)-1].Load {
		t.Errorf("SortedLoads = %v", sl)
	}
}

func TestInstallRejectsDuplicateFunctions(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	proxy := tb.proxy(t, 1)
	cfg := proxy.Config()
	bad := policy.NewTable()
	bad.Add(policy.NewDescriptor(), policy.ActionList{policy.FuncFW, policy.FuncIDS, policy.FuncFW})
	cfg.Policies = bad.All()
	if err := proxy.Install(cfg); err == nil {
		t.Error("duplicate function in chain must be rejected")
	}
}

func TestTraceFlowMatchesDataplane(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.Random, HashSeed: 13}, webPolicy)
	f := newFabric(t, tb.nodes)

	ft := flowFromSubnet(1, 2, 80)
	tr, err := enforce.TraceFlow(tb.nodes, tb.dep, tb.ap, ft)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Policy == nil || len(tr.Hops) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Hops[0].Func != policy.FuncFW || tr.Hops[1].Func != policy.FuncIDS {
		t.Errorf("trace functions wrong: %v", tr)
	}

	// The packet dataplane must visit exactly the traced middleboxes.
	pkt := packet.New(ft, 64)
	proxy := tb.proxy(t, 1)
	if err := proxy.HandleOutbound(pkt, 0, f); err != nil {
		t.Fatal(err)
	}
	visits := f.visits[flowKeyOf(pkt)]
	if len(visits) != len(tr.Hops) {
		t.Fatalf("visited %v, traced %v", visits, tr.Hops)
	}
	for i := range visits {
		if visits[i] != tr.Hops[i].Node {
			t.Errorf("hop %d: visited %v, traced %v", i, visits[i], tr.Hops[i].Node)
		}
	}
	if tr.TotalCost() <= 0 {
		t.Error("trace cost missing")
	}
	if tr.String() == "" {
		t.Error("empty trace string")
	}
}

func TestTraceFlowUnmatched(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	tr, err := enforce.TraceFlow(tb.nodes, tb.dep, tb.ap, flowFromSubnet(1, 2, 9999))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Policy != nil || len(tr.Hops) != 0 {
		t.Errorf("unmatched trace = %+v", tr)
	}
	if tr.TailCost <= 0 {
		t.Error("unmatched flow should still have a path to its destination")
	}
	if !strings.Contains(tr.String(), "no policy") {
		t.Errorf("trace string = %q", tr.String())
	}
}

func TestTraceFlowUnknownSubnet(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	ft := netaddr.FiveTuple{Src: netaddr.MustParseAddr("203.0.113.5"), Dst: topo.HostAddr(2, 1), DstPort: 80, Proto: netaddr.ProtoTCP}
	if _, err := enforce.TraceFlow(tb.nodes, tb.dep, tb.ap, ft); err == nil {
		t.Error("trace from unknown subnet should fail")
	}
}

// rateLimiter is a custom network function used to prove the system is
// extensible beyond the paper's four built-ins: it drops every packet
// past a per-flow budget.
type rateLimiter struct {
	funcType  policy.FuncType
	budget    int
	perFlow   map[netaddr.FiveTuple]int
	processed int64
}

func (r *rateLimiter) Type() policy.FuncType { return r.funcType }
func (r *rateLimiter) Processed() int64      { return r.processed }
func (r *rateLimiter) Process(pkt *packet.Packet, _ int64) nf.Verdict {
	r.processed++
	ft := pkt.FiveTuple()
	r.perFlow[ft]++
	if r.perFlow[ft] > r.budget {
		return nf.VerdictDrop
	}
	return nf.VerdictPass
}

func TestCustomFunctionTypeEndToEnd(t *testing.T) {
	rlType := policy.RegisterFunc("RATELIMIT")

	rng := rand.New(rand.NewSource(77))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 3, EdgeRouters: 2, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "rl1", rlType)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{rlType, policy.FuncIDS})

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{
		Strategy: enforce.HotPotato,
		FunctionFactory: func(ft policy.FuncType) (nf.Function, error) {
			if ft == rlType {
				return &rateLimiter{funcType: rlType, budget: 3, perFlow: map[netaddr.FiveTuple]int{}}, nil
			}
			return nf.New(ft)
		},
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	f := newFabric(t, nodes)

	proxyID, _ := dep.ProxyFor(1)
	ft := flowFromSubnet(1, 2, 80)
	for i := 0; i < 5; i++ {
		if err := nodes[proxyID].HandleOutbound(packet.New(ft, 32), int64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	// Budget 3: first three delivered, the rest rate-limited.
	if len(f.delivered) != 3 {
		t.Errorf("delivered = %d, want 3", len(f.delivered))
	}
	var rlNode *enforce.Node
	for _, id := range dep.Providers(rlType) {
		rlNode = nodes[id]
	}
	if rlNode == nil || rlNode.Counters.Dropped != 2 {
		t.Errorf("rate limiter drops = %+v", rlNode.Counters)
	}
	// The custom function sits in a chain with a built-in one.
	ids := nodes[dep.Providers(policy.FuncIDS)[0]]
	if ids.Counters.Load != 3 {
		t.Errorf("IDS saw %d packets, want 3 (only those the limiter passed)", ids.Counters.Load)
	}
}

func TestLabelSwitchedDropAndServe(t *testing.T) {
	// Verdicts must terminate label-switched packets exactly like
	// tunneled ones: a firewall deny installed AFTER the chain is
	// established drops subsequent (label-switched) packets.
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato, LabelSwitching: true}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 2, 80)

	if err := proxy.HandleOutbound(packet.New(ft, 50), 0, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 1 || f.controls != 1 {
		t.Fatalf("chain not established: delivered=%d controls=%d", len(f.delivered), f.controls)
	}
	deny := policy.NewDescriptor()
	deny.Src = topo.SubnetPrefix(1)
	for _, id := range tb.dep.Providers(policy.FuncFW) {
		fw := tb.nodes[id].Funcs[policy.FuncFW].(*nf.Firewall)
		fw.AddRule(nf.FirewallRule{Desc: deny, Action: nf.Deny})
	}
	if err := proxy.HandleOutbound(packet.New(ft, 50), 1, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 1 {
		t.Error("label-switched packet survived a firewall deny")
	}
	if proxy.Counters.LabelTx != 1 {
		t.Errorf("second packet was not label-switched: %+v", proxy.Counters)
	}
	var drops int64
	for _, id := range tb.dep.Providers(policy.FuncFW) {
		drops += tb.nodes[id].Counters.Dropped
	}
	if drops != 1 {
		t.Errorf("drops = %d, want 1", drops)
	}
}

func TestNodeSweepExpiresSoftState(t *testing.T) {
	tb := newTestbed(t, controller.Options{
		Strategy: enforce.HotPotato, LabelSwitching: true,
		FlowTTL: 100, LabelTTL: 100,
	}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	if err := proxy.HandleOutbound(packet.New(flowFromSubnet(1, 2, 80), 50), 0, f); err != nil {
		t.Fatal(err)
	}
	// The proxy's flow entry and the middleboxes' label entries all
	// expire by t=1000.
	total := 0
	for _, n := range tb.nodes {
		total += n.Sweep(1000)
	}
	if total == 0 {
		t.Error("Sweep evicted nothing despite expired TTLs")
	}
	if proxy.FlowTable().Len() != 0 {
		t.Errorf("proxy flow table still has %d entries", proxy.FlowTable().Len())
	}
	for _, id := range tb.dep.MBNodes {
		if lt := tb.nodes[id].LabelTable(); lt != nil && lt.Len() != 0 {
			t.Errorf("middlebox %v label table still has %d entries", id, lt.Len())
		}
	}
}
