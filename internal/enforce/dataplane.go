package enforce

import (
	"fmt"
	"sync/atomic"

	"sdme/internal/flowtable"
	"sdme/internal/netaddr"
	"sdme/internal/nf"
	"sdme/internal/packet"
	"sdme/internal/policy"
)

// Forwarder abstracts the network below the enforcement layer. The
// discrete-event simulator, the live UDP runtime, and unit tests each
// provide one. Implementations route by the packet's outermost
// destination address — exactly what the policy-oblivious routers do.
type Forwarder interface {
	// Send transmits a data packet from the node.
	Send(from *Node, pkt *packet.Packet)
	// SendControl transmits a §III-E control message announcing that
	// flow's chain is fully installed, addressed to the proxy at "to".
	SendControl(from *Node, to netaddr.Addr, flow netaddr.FiveTuple)
}

// HandleOutbound is the proxy entry point: a packet leaving the proxy's
// stub network. It classifies the flow, applies §III-D/§III-E state
// handling, and forwards — tunneled to the first middlebox of the chain,
// label-switched once the chain is installed, or plain when no policy
// applies (§III-B).
func (n *Node) HandleOutbound(pkt *packet.Packet, now int64, fwd Forwarder) error {
	if !n.IsProxy {
		atomic.AddInt64(&n.Counters.Misdirected, 1)
		return fmt.Errorf("enforce: HandleOutbound on middlebox %v", n.ID)
	}
	atomic.AddInt64(&n.Counters.PacketsIn, 1)
	if n.nm != nil {
		n.nm.packetsIn.Inc()
	}
	ft := pkt.FiveTuple()
	n.trace(ft, HopIngress, 0, now)
	entry := n.classify(ft, now)

	// Measurement: every policy-matching packet is tallied for the
	// controller (§III-C).
	if !entry.Null {
		k := MeasKey{
			PolicyID:  entry.PolicyID,
			SrcSubnet: n.SubnetIdx,
			DstSubnet: n.dep.SubnetIndexOf(ft.Dst),
		}
		n.measMu.Lock()
		n.meas[k]++
		n.measMu.Unlock()
	}

	if entry.Null || entry.Actions.IsPermit() {
		atomic.AddInt64(&n.Counters.PlainTx, 1)
		n.trace(ft, HopForward, 0, now)
		fwd.Send(n, pkt)
		return nil
	}

	first, _ := entry.Actions.First()
	next, err := n.SelectNext(entry.PolicyID, first, ft)
	if err != nil {
		return err
	}
	n.flows.PinEntry(entry, next)
	nextAddr := n.dep.AddrOf(next)

	if n.cfg.LabelSwitching && entry.LabelSwitched && entry.Label != 0 {
		// Established chain: rewrite the destination and ride the label.
		if err := pkt.EmbedLabel(entry.Label); err == nil {
			pkt.Inner.Dst = nextAddr
			atomic.AddInt64(&n.Counters.LabelTx, 1)
			fwd.Send(n, pkt)
			return nil
		}
		// Fragmented packet mid-flow: fall through to tunneling.
	}

	if n.cfg.LabelSwitching && !pkt.OutermostHeader().IsFragment() {
		// Chain not yet confirmed: label the packet so the middleboxes
		// install their label-table entries as it passes (§III-E).
		if l := n.flows.AllocLabel(entry); l != 0 {
			if err := pkt.EmbedLabel(l); err != nil {
				return err
			}
		}
	}
	if err := pkt.Encapsulate(n.Addr, nextAddr); err != nil {
		return err
	}
	atomic.AddInt64(&n.Counters.TunnelTx, 1)
	n.trace(ft, HopEncap, first, now)
	fwd.Send(n, pkt)
	return nil
}

// HandleArrival is the middlebox entry point: a packet whose outermost
// destination is this middlebox, either IP-over-IP tunneled (first
// packets of a flow) or label-switched (subsequent packets).
func (n *Node) HandleArrival(pkt *packet.Packet, now int64, fwd Forwarder) error {
	if n.IsProxy {
		atomic.AddInt64(&n.Counters.Misdirected, 1)
		return fmt.Errorf("enforce: HandleArrival on proxy %v", n.ID)
	}
	atomic.AddInt64(&n.Counters.PacketsIn, 1)
	if n.nm != nil {
		n.nm.packetsIn.Inc()
	}
	if pkt.IsEncapsulated() {
		return n.handleTunneled(pkt, now, fwd)
	}
	return n.handleLabeled(pkt, now, fwd)
}

func (n *Node) handleTunneled(pkt *packet.Packet, now int64, fwd Forwarder) error {
	outer, err := pkt.Decapsulate()
	if err != nil {
		return err
	}
	ft := pkt.FiveTuple()
	n.trace(ft, HopDecap, 0, now)
	entry := n.classify(ft, now)
	if entry.Null {
		// The proxy only tunnels policy traffic; a null here means our
		// P_x is inconsistent with the proxy's. Forward plain rather
		// than blackhole, and count it.
		atomic.AddInt64(&n.Counters.Misdirected, 1)
		atomic.AddInt64(&n.Counters.PlainTx, 1)
		fwd.Send(n, pkt)
		return nil
	}

	myFunc, ok := n.myFunc(entry.Actions)
	if !ok {
		atomic.AddInt64(&n.Counters.Misdirected, 1)
		return fmt.Errorf("enforce: middlebox %v got chain %v it cannot serve", n.ID, entry.Actions)
	}

	// Label-table installation while the first packet traverses (§III-E).
	lbl := pkt.Label()
	nextFunc, hasNext := entry.Actions.Next(myFunc)
	var lblEntry *flowtable.LabelEntry
	if n.cfg.LabelSwitching && lbl != 0 {
		k := flowtable.LabelKey{Src: ft.Src, Label: lbl}
		if hasNext {
			lblEntry = n.labels.Insert(k, entry.PolicyID, entry.Actions, ft, now)
		} else {
			n.labels.InsertTail(k, entry.PolicyID, entry.Actions, ft, now)
		}
	}

	verdict := n.observedProcess(myFunc, ft, pkt, now)
	switch verdict {
	case nf.VerdictDrop:
		atomic.AddInt64(&n.Counters.Dropped, 1)
		return nil
	case nf.VerdictServe:
		atomic.AddInt64(&n.Counters.Served, 1)
		return nil
	}

	if !hasNext {
		// Chain complete: notify the proxy (outer source held its
		// address along the whole chain) and forward the original.
		if n.cfg.LabelSwitching && lbl != 0 {
			atomic.AddInt64(&n.Counters.ControlTx, 1)
			fwd.SendControl(n, outer.Src, ft)
		}
		pkt.ClearLabel()
		atomic.AddInt64(&n.Counters.PlainTx, 1)
		n.trace(ft, HopForward, 0, now)
		fwd.Send(n, pkt)
		return nil
	}

	next, err := n.SelectNext(entry.PolicyID, nextFunc, ft)
	if err != nil {
		return err
	}
	if lblEntry != nil {
		n.labels.PinEntry(lblEntry, next)
	}
	// Re-tunnel, preserving the proxy as outer source (§III-E).
	if err := pkt.Encapsulate(outer.Src, n.dep.AddrOf(next)); err != nil {
		return err
	}
	atomic.AddInt64(&n.Counters.TunnelTx, 1)
	n.trace(ft, HopEncap, nextFunc, now)
	fwd.Send(n, pkt)
	return nil
}

func (n *Node) handleLabeled(pkt *packet.Packet, now int64, fwd Forwarder) error {
	lbl := pkt.Label()
	if !n.cfg.LabelSwitching || lbl == 0 {
		atomic.AddInt64(&n.Counters.Misdirected, 1)
		return fmt.Errorf("enforce: middlebox %v got unlabeled plain packet %v", n.ID, pkt)
	}
	k := flowtable.LabelKey{Src: pkt.Inner.Src, Label: lbl}
	entry, ok := n.labels.Lookup(k, now)
	if !ok {
		// Soft state expired or never installed; without the original
		// destination we cannot recover the flow. Count and drop.
		atomic.AddInt64(&n.Counters.LabelMiss, 1)
		return nil
	}

	myFunc, ok := n.myFunc(entry.Actions)
	if !ok {
		atomic.AddInt64(&n.Counters.Misdirected, 1)
		return fmt.Errorf("enforce: middlebox %v got labeled chain %v it cannot serve", n.ID, entry.Actions)
	}
	verdict := n.observedProcess(myFunc, entry.Flow, pkt, now)
	switch verdict {
	case nf.VerdictDrop:
		atomic.AddInt64(&n.Counters.Dropped, 1)
		return nil
	case nf.VerdictServe:
		atomic.AddInt64(&n.Counters.Served, 1)
		return nil
	}

	nextFunc, hasNext := entry.Actions.Next(myFunc)
	if !hasNext {
		if !entry.HasDst {
			atomic.AddInt64(&n.Counters.LabelMiss, 1)
			return fmt.Errorf("enforce: tail label entry without destination at %v", n.ID)
		}
		pkt.Inner.Dst = entry.Dst
		pkt.ClearLabel()
		atomic.AddInt64(&n.Counters.PlainTx, 1)
		n.trace(entry.Flow, HopForward, 0, now)
		fwd.Send(n, pkt)
		return nil
	}
	// Select with the ORIGINAL tuple so the choice matches the tunneled
	// first packet.
	next, err := n.SelectNext(entry.PolicyID, nextFunc, entry.Flow)
	if err != nil {
		return err
	}
	n.labels.PinEntry(entry, next)
	pkt.Inner.Dst = n.dep.AddrOf(next)
	atomic.AddInt64(&n.Counters.LabelTx, 1)
	fwd.Send(n, pkt)
	return nil
}

// process runs the node's function instance on the packet and counts the
// load (the Figures 4/5 metric).
func (n *Node) process(f policy.FuncType, pkt *packet.Packet, now int64) nf.Verdict {
	atomic.AddInt64(&n.Counters.Load, 1)
	fn := n.Funcs[f]
	if fn == nil {
		return nf.VerdictPass
	}
	return fn.Process(pkt, now)
}

// observedProcess is process plus the observability layer: a HopProcess
// trace record and the per-(node, func) packet/byte/drop/serve counters.
// flow must be the ORIGINAL 5-tuple (handleLabeled resolves it from the
// label table; the rewritten header must not leak into records).
func (n *Node) observedProcess(f policy.FuncType, flow netaddr.FiveTuple, pkt *packet.Packet, now int64) nf.Verdict {
	n.trace(flow, HopProcess, f, now)
	verdict := n.process(f, pkt, now)
	if n.nm != nil {
		if fm := n.nm.perFunc[f]; fm != nil {
			fm.packets.Inc()
			fm.bytes.Add(int64(pkt.Size()))
			switch verdict {
			case nf.VerdictDrop:
				fm.drops.Inc()
			case nf.VerdictServe:
				fm.serves.Inc()
			}
		}
	}
	return verdict
}

// HandleControl is the proxy-side receiver for §III-E control messages:
// it flips the flow's label-switching flag.
func (n *Node) HandleControl(flow netaddr.FiveTuple, now int64) {
	if !n.IsProxy {
		atomic.AddInt64(&n.Counters.Misdirected, 1)
		return
	}
	atomic.AddInt64(&n.Counters.ControlRx, 1)
	n.flows.FlagLabelSwitched(flow, now)
}

// Sweep expires idle soft state on both tables; drivers call it
// periodically.
func (n *Node) Sweep(now int64) int {
	total := 0
	if n.flows != nil {
		total += n.flows.Sweep(now)
	}
	if n.labels != nil {
		total += n.labels.Sweep(now)
	}
	return total
}
