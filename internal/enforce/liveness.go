package enforce

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sdme/internal/flowtable"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// ErrNoLiveProvider reports that every candidate middlebox for a required
// function is marked dead (or the candidate list is empty). It is the
// sentinel for errors.Is; the concrete error carries the node and
// function. controller.ErrNoLiveProvider aliases this value so both the
// planning layer and the dataplane surface the same condition.
var ErrNoLiveProvider = errors.New("no live provider")

// NoLiveCandidateError is returned by SelectNext when local fast failover
// exhausts the ranked candidate list without finding a live provider.
type NoLiveCandidateError struct {
	Node topo.NodeID
	Func policy.FuncType
}

// Error renders the failure.
func (e *NoLiveCandidateError) Error() string {
	return fmt.Sprintf("enforce: node %v has no live candidate middlebox for %v", e.Node, e.Func)
}

// Is matches the ErrNoLiveProvider sentinel.
func (e *NoLiveCandidateError) Is(target error) bool { return target == ErrNoLiveProvider }

// liveView is a node's local picture of provider liveness, fed by the
// simulator's SetNodeDown or the live runtime's HealthMonitor. It is the
// one piece of Node state that may be written from outside the owning
// goroutine (the health monitor probes concurrently), so it carries its
// own lock; the atomic down-count keeps the all-alive fast path lock-free
// on the per-packet selection path.
type liveView struct {
	downCount atomic.Int32
	mu        sync.Mutex
	dead      map[topo.NodeID]bool
}

func (v *liveView) set(id topo.NodeID, down bool) (changed bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.dead == nil {
		v.dead = make(map[topo.NodeID]bool)
	}
	if v.dead[id] == down {
		return false
	}
	if down {
		v.dead[id] = true
		v.downCount.Add(1)
	} else {
		delete(v.dead, id)
		v.downCount.Add(-1)
	}
	return true
}

func (v *liveView) down(id topo.NodeID) bool {
	if v.downCount.Load() == 0 {
		return false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.dead[id]
}

// SetProviderDown updates the node's liveness view for one provider. It
// reports whether the state changed. Safe to call from any goroutine.
func (n *Node) SetProviderDown(id topo.NodeID, down bool) bool {
	return n.live.set(id, down)
}

// ProviderDown reports whether the node currently considers the provider
// dead. Safe to call from any goroutine.
func (n *Node) ProviderDown(id topo.NodeID) bool { return n.live.down(id) }

// InvalidateProvider purges soft state riding the given (dead) middlebox:
// flow entries pinned to it, label entries whose chain continues at it,
// and — conservatively — label-switched flow entries whose action chain
// crosses any function the middlebox provides (their pin records only the
// first hop, but the dead box may sit mid-chain). Purged flows re-enter
// the slow path: the next packet reclassifies, tunnels IP-over-IP, and
// re-installs the chain through live backups. Must run on the node's
// owner goroutine (it mutates the tables); returns the eviction count.
func (n *Node) InvalidateProvider(mb topo.NodeID) int {
	affected := make(map[policy.FuncType]bool)
	for f, cands := range n.cfg.Candidates {
		for _, c := range cands {
			if c == mb {
				affected[f] = true
				break
			}
		}
	}
	total := 0
	if n.flows != nil {
		total += n.flows.InvalidateIf(func(e *flowtable.Entry) bool {
			if e.Pinned && e.NextHop == mb {
				return true
			}
			if e.Null || !e.LabelSwitched {
				return false
			}
			for _, f := range e.Actions {
				if affected[f] {
					return true
				}
			}
			return false
		})
	}
	if n.labels != nil {
		total += n.labels.InvalidateIf(func(e *flowtable.LabelEntry) bool {
			return e.Pinned && e.NextHop == mb
		})
	}
	atomic.AddInt64(&n.Counters.Invalidated, int64(total))
	return total
}
