// Package enforce is the paper's primary contribution: the
// software-defined-middlebox enforcement dataplane. It implements the
// per-node behaviour of policy proxies and middleboxes — classification,
// flow hash tables, IP-over-IP tunneling along function chains, label
// switching, and the three next-hop selection strategies (hot-potato,
// random, load-balanced) of §III — plus a fast flow-level evaluator used
// by the figure-scale experiments.
//
// The package deliberately knows nothing about how configuration is
// computed: internal/controller builds each node's Config (candidate sets
// M_x^e, relevant policies P_x, LB weights) and installs it here.
package enforce

import (
	"fmt"
	"math/rand"
	"sort"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Deployment records where the software-defined devices sit on a
// topology: the policy proxies (one per stub subnet) and the middleboxes
// with the functions each implements. Build the deployment completely
// before converging routing — attaching a middlebox adds a node and a
// link to the graph.
type Deployment struct {
	Graph *topo.Graph
	// ProxyNodes lists the policy proxies; ProxyNodes[i] serves subnet
	// index i+1.
	ProxyNodes []topo.NodeID
	// MBNodes lists the middleboxes in attachment order.
	MBNodes []topo.NodeID

	mbFuncs map[topo.NodeID][]policy.FuncType
	byFunc  map[policy.FuncType][]topo.NodeID
	mbSeq   int
}

// NewDeployment wraps a graph (typically built with topo.Campus or
// topo.Waxman with WithProxies) and discovers its proxies. Middleboxes
// are added afterwards via AddMiddlebox or PlaceRandom.
func NewDeployment(g *topo.Graph) (*Deployment, error) {
	d := &Deployment{
		Graph:   g,
		mbFuncs: make(map[topo.NodeID][]policy.FuncType),
		byFunc:  make(map[policy.FuncType][]topo.NodeID),
	}
	proxies := g.NodesOfKind(topo.KindProxy)
	bySubnet := make(map[int]topo.NodeID, len(proxies))
	maxIdx := 0
	for _, p := range proxies {
		n := g.Node(p)
		idx := topo.SubnetIndexOf(n.Addr)
		if idx == 0 {
			return nil, fmt.Errorf("enforce: proxy %q has no subnet index (addr %v)", n.Name, n.Addr)
		}
		if other, dup := bySubnet[idx]; dup {
			return nil, fmt.Errorf("enforce: subnet %d has two proxies (%v, %v)", idx, other, p)
		}
		bySubnet[idx] = p
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	if len(bySubnet) != maxIdx {
		return nil, fmt.Errorf("enforce: proxies cover %d subnets but max index is %d", len(bySubnet), maxIdx)
	}
	d.ProxyNodes = make([]topo.NodeID, maxIdx)
	for idx, p := range bySubnet {
		d.ProxyNodes[idx-1] = p
	}
	return d, nil
}

// AddMiddlebox attaches a middlebox implementing the given functions to a
// router and returns its node ID.
func (d *Deployment) AddMiddlebox(router topo.NodeID, name string, funcs ...policy.FuncType) topo.NodeID {
	if len(funcs) == 0 {
		panic("enforce: middlebox needs at least one function")
	}
	d.mbSeq++
	id := topo.AttachMiddlebox(d.Graph, router, d.mbSeq, name)
	d.MBNodes = append(d.MBNodes, id)
	d.mbFuncs[id] = append([]policy.FuncType(nil), funcs...)
	for _, f := range funcs {
		d.byFunc[f] = append(d.byFunc[f], id)
	}
	return id
}

// PlaceRandom attaches count[f] single-function middleboxes per function
// type, each to a core router chosen uniformly at random (the paper's
// placement, §IV-A). Function types are placed in sorted order so the
// same seed always yields the same deployment.
func (d *Deployment) PlaceRandom(counts map[policy.FuncType]int, rng *rand.Rand) {
	cores := d.Graph.NodesOfKind(topo.KindCoreRouter)
	if len(cores) == 0 {
		panic("enforce: no core routers to attach middleboxes to")
	}
	funcs := make([]policy.FuncType, 0, len(counts))
	for f := range counts {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i] < funcs[j] })
	for _, f := range funcs {
		for i := 0; i < counts[f]; i++ {
			router := cores[rng.Intn(len(cores))]
			name := fmt.Sprintf("%s%d", f, i+1)
			d.AddMiddlebox(router, name, f)
		}
	}
}

// Providers returns the middleboxes implementing function e — the
// paper's M^e. The slice is owned by the deployment.
func (d *Deployment) Providers(e policy.FuncType) []topo.NodeID {
	return d.byFunc[e]
}

// FuncsOf returns the functions implemented by a middlebox node.
func (d *Deployment) FuncsOf(id topo.NodeID) []policy.FuncType {
	return d.mbFuncs[id]
}

// Functions returns the set Π of functions any middlebox implements, in
// sorted order.
func (d *Deployment) Functions() []policy.FuncType {
	out := make([]policy.FuncType, 0, len(d.byFunc))
	for f := range d.byFunc {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddrOf returns the address of any node.
func (d *Deployment) AddrOf(id topo.NodeID) netaddr.Addr {
	return d.Graph.Node(id).Addr
}

// ProxyFor returns the proxy node serving 1-based subnet index idx.
func (d *Deployment) ProxyFor(idx int) (topo.NodeID, bool) {
	if idx < 1 || idx > len(d.ProxyNodes) {
		return topo.InvalidNode, false
	}
	return d.ProxyNodes[idx-1], true
}

// SubnetIndexOf maps an address to its 1-based stub subnet index, 0 when
// the address is outside every stub subnet.
func (d *Deployment) SubnetIndexOf(a netaddr.Addr) int {
	return topo.SubnetIndexOf(a)
}

// NumSubnets returns the number of stub subnets (= proxies).
func (d *Deployment) NumSubnets() int { return len(d.ProxyNodes) }
