package enforce

import (
	"fmt"
	"strings"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

// TraceHop is one step of a flow's enforcement path.
type TraceHop struct {
	// Node is the middlebox chosen for this step.
	Node topo.NodeID
	// Func is the network function it performs on the flow.
	Func policy.FuncType
	// Cost is the routing distance from the previous step.
	Cost float64
	// Candidates are the options the selector chose from (M_x^e).
	Candidates []topo.NodeID
}

// Trace describes the full journey of one flow under the current
// configuration: which policy matched, which middleboxes the flow's
// packets traverse and why, and the total path cost. It answers the
// operator question "where will this flow actually go?" without sending
// a packet.
type Trace struct {
	Flow netaddr.FiveTuple
	// Policy is the matched policy, nil if the flow is unmatched.
	Policy *policy.Policy
	// Proxy is the source subnet's policy proxy.
	Proxy topo.NodeID
	Hops  []TraceHop
	// TailCost is the distance from the last middlebox (or the proxy,
	// for permit traffic) to the destination's edge router.
	TailCost float64
}

// TotalCost sums the per-hop routing costs.
func (tr *Trace) TotalCost() float64 {
	total := tr.TailCost
	for _, h := range tr.Hops {
		total += h.Cost
	}
	return total
}

// String renders the trace for humans.
func (tr *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v", tr.Flow)
	if tr.Policy == nil {
		b.WriteString(" [no policy: forwarded plain]")
		return b.String()
	}
	fmt.Fprintf(&b, " [%s]", tr.Policy.Actions)
	for _, h := range tr.Hops {
		fmt.Fprintf(&b, " -> %s@node%d(+%.0f)", h.Func, h.Node, h.Cost)
	}
	fmt.Fprintf(&b, " -> dst(+%.0f) total %.0f", tr.TailCost, tr.TotalCost())
	return b.String()
}

// TraceFlow computes the enforcement path one flow's packets will take
// under the nodes' current strategy, weights and candidate sets. It uses
// exactly the dataplane's SelectNext, so the answer matches what the
// simulator and the live runtime do.
func TraceFlow(nodes map[topo.NodeID]*Node, dep *Deployment, ap *route.AllPairs, ft netaddr.FiveTuple) (*Trace, error) {
	srcSub := dep.SubnetIndexOf(ft.Src)
	proxyID, ok := dep.ProxyFor(srcSub)
	if !ok {
		return nil, fmt.Errorf("enforce: no proxy for source subnet %d of %v", srcSub, ft)
	}
	proxy, ok := nodes[proxyID]
	if !ok {
		return nil, fmt.Errorf("enforce: proxy node %v not materialized", proxyID)
	}
	tr := &Trace{Flow: ft, Proxy: proxyID}
	tr.Policy = proxy.classifier.Match(ft)

	cur, curID := proxy, proxyID
	if tr.Policy != nil && !tr.Policy.Actions.IsPermit() {
		for _, e := range tr.Policy.Actions {
			next, err := cur.SelectNext(tr.Policy.ID, e, ft)
			if err != nil {
				return nil, err
			}
			tr.Hops = append(tr.Hops, TraceHop{
				Node:       next,
				Func:       e,
				Cost:       ap.Dist(curID, next),
				Candidates: cur.cfg.Candidates[e],
			})
			cur, ok = nodes[next]
			if !ok {
				return nil, fmt.Errorf("enforce: middlebox node %v not materialized", next)
			}
			curID = next
		}
	}
	if dstEdge := dep.Graph.SubnetOwner(ft.Dst); dstEdge != topo.InvalidNode {
		tr.TailCost = ap.Dist(curID, dstEdge)
	}
	return tr, nil
}
