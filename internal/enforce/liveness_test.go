package enforce_test

import (
	"errors"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// TestSelectNextFailoverAndRecovery: marking the preferred candidate dead
// diverts selection to the next ranked backup with no other state change;
// recovery restores the original pick.
func TestSelectNextFailoverAndRecovery(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato}, webPolicy)
	proxy := tb.proxy(t, 1)
	cands := proxy.Config().Candidates[policy.FuncFW]
	if len(cands) < 2 {
		t.Fatalf("need >= 2 FW candidates, got %v", cands)
	}
	ft := flowFromSubnet(1, 2, 80)
	pid := tb.tbl.All()[0].ID

	got, err := proxy.SelectNext(pid, policy.FuncFW, ft)
	if err != nil || got != cands[0] {
		t.Fatalf("baseline pick = %v, %v; want %v", got, err, cands[0])
	}
	if !proxy.SetProviderDown(cands[0], true) {
		t.Fatal("SetProviderDown reported no change on first kill")
	}
	got, err = proxy.SelectNext(pid, policy.FuncFW, ft)
	if err != nil || got != cands[1] {
		t.Fatalf("failover pick = %v, %v; want backup %v", got, err, cands[1])
	}
	if proxy.Counters.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", proxy.Counters.Failovers)
	}
	// Idempotence: re-marking the same state reports no change.
	if proxy.SetProviderDown(cands[0], true) {
		t.Error("second SetProviderDown(true) reported a change")
	}
	if !proxy.ProviderDown(cands[0]) {
		t.Error("ProviderDown lost the kill")
	}
	if !proxy.SetProviderDown(cands[0], false) {
		t.Fatal("recovery reported no change")
	}
	got, err = proxy.SelectNext(pid, policy.FuncFW, ft)
	if err != nil || got != cands[0] {
		t.Fatalf("post-recovery pick = %v, %v; want %v", got, err, cands[0])
	}
}

// TestAllProvidersDownSurfacesErrNoLiveProvider: when every candidate for
// a function is dead, every strategy must surface the typed sentinel —
// the same one the controller's planning layer aliases — rather than
// silently picking a corpse.
func TestAllProvidersDownSurfacesErrNoLiveProvider(t *testing.T) {
	tb := newTestbed(t, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2, policy.FuncWP: 1, policy.FuncTM: 1},
	}, webPolicy)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 2, 80)
	pid := tb.tbl.All()[0].ID
	for _, mb := range proxy.Config().Candidates[policy.FuncFW] {
		proxy.SetProviderDown(mb, true)
	}

	for _, s := range []enforce.Strategy{enforce.HotPotato, enforce.Random, enforce.LoadBalanced} {
		proxy.SetStrategy(s)
		_, err := proxy.SelectNext(pid, policy.FuncFW, ft)
		if err == nil {
			t.Fatalf("%v: SelectNext picked a dead provider", s)
		}
		if !errors.Is(err, enforce.ErrNoLiveProvider) {
			t.Errorf("%v: err = %v, want errors.Is ErrNoLiveProvider", s, err)
		}
		// The controller-side sentinel is an alias of the same value, so a
		// recovery loop can branch without importing both packages.
		if !errors.Is(err, controller.ErrNoLiveProvider) {
			t.Errorf("%v: controller sentinel does not match: %v", s, err)
		}
		var nlc *enforce.NoLiveCandidateError
		if !errors.As(err, &nlc) {
			t.Fatalf("%v: err = %T, want *NoLiveCandidateError", s, err)
		}
		if nlc.Func != policy.FuncFW || nlc.Node != proxy.ID {
			t.Errorf("%v: error carries node %v func %v", s, nlc.Node, nlc.Func)
		}
	}
	if proxy.Counters.NoProvider == 0 {
		t.Error("NoProvider counter never moved")
	}

	// The full dataplane path surfaces the same sentinel.
	f := newFabric(t, tb.nodes)
	err := proxy.HandleOutbound(packet.New(ft, 100), 0, f)
	if !errors.Is(err, enforce.ErrNoLiveProvider) {
		t.Errorf("HandleOutbound err = %v, want ErrNoLiveProvider", err)
	}

	// One survivor is enough: delivery resumes through it.
	back := proxy.Config().Candidates[policy.FuncFW]
	proxy.SetProviderDown(back[len(back)-1], false)
	if err := proxy.HandleOutbound(packet.New(ft, 100), 1, f); err != nil {
		t.Fatalf("HandleOutbound with one live FW: %v", err)
	}
	if len(f.delivered) != 1 {
		t.Fatalf("delivered %d, want 1", len(f.delivered))
	}
}

// TestFailoverPurgesStaleLabelPaths is the stale-soft-state regression
// test: a label-switched flow whose chain rides a now-dead middlebox
// blackholes (LabelMiss at the diverted-to backup, which lacks the
// ⟨src,label⟩ entry) until the label TTL — unless the liveness event also
// purges the proxy's pinned soft state, in which case the very next
// packet reclassifies, re-tunnels IP-over-IP through live backups, and
// re-establishes the chain.
func TestFailoverPurgesStaleLabelPaths(t *testing.T) {
	tb := newTestbed(t, controller.Options{Strategy: enforce.HotPotato, LabelSwitching: true}, webPolicy)
	f := newFabric(t, tb.nodes)
	proxy := tb.proxy(t, 1)
	ft := flowFromSubnet(1, 2, 80)

	// Establish the chain: packet 1 tunnels and installs label state,
	// packet 2 rides the labels.
	for i := 0; i < 2; i++ {
		if err := proxy.HandleOutbound(packet.New(ft, 100), int64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.delivered) != 2 || proxy.Counters.LabelTx != 1 {
		t.Fatalf("chain not established: delivered=%d counters=%+v", len(f.delivered), proxy.Counters)
	}
	visits := append([]topo.NodeID(nil), f.visits[flowKeyOf(packet.New(ft, 0))]...)
	victim := visits[0] // the chain's first-hop firewall

	// Kill the victim in the proxy's liveness view WITHOUT purging: the
	// flow entry is still LabelSwitched, so the proxy labels the packet
	// and fast-failover diverts it to the backup — which has no label
	// entry for it. The packet blackholes as a LabelMiss.
	proxy.SetProviderDown(victim, true)
	if err := proxy.HandleOutbound(packet.New(ft, 100), 2, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 2 {
		t.Fatalf("stale labeled packet was delivered; want blackhole until TTL")
	}
	var missAt *enforce.Node
	for id, n := range tb.nodes {
		if n.Counters.LabelMiss > 0 {
			if id == victim {
				t.Fatalf("LabelMiss at the dead victim %v — failover never diverted", id)
			}
			missAt = n
		}
	}
	if missAt == nil {
		t.Fatal("no LabelMiss recorded anywhere; where did the packet go?")
	}

	// Now the fix under test: purging the victim's soft state (what the
	// sim's SetNodeDown and the live runtime's health monitor do) makes
	// the next packet re-enter the slow path.
	if purged := proxy.InvalidateProvider(victim); purged == 0 {
		t.Fatal("InvalidateProvider purged nothing; stale entry survived")
	}
	if proxy.Counters.Invalidated == 0 {
		t.Error("Invalidated counter never moved")
	}
	tunnelsBefore := proxy.Counters.TunnelTx
	if err := proxy.HandleOutbound(packet.New(ft, 100), 3, f); err != nil {
		t.Fatal(err)
	}
	if proxy.Counters.TunnelTx != tunnelsBefore+1 {
		t.Fatalf("post-purge packet not re-tunneled IP-over-IP: %+v", proxy.Counters)
	}
	if len(f.delivered) != 3 {
		t.Fatalf("post-purge packet not delivered: %d", len(f.delivered))
	}
	reVisits := f.visits[flowKeyOf(packet.New(ft, 0))][len(visits)+1:]
	for _, id := range reVisits {
		if id == victim {
			t.Fatalf("re-established chain still crosses dead %v: %v", victim, reVisits)
		}
	}

	// The re-tunneled packet rebuilt label state on the backup path: the
	// flow rides labels again, fully avoiding the victim.
	if err := proxy.HandleOutbound(packet.New(ft, 100), 4, f); err != nil {
		t.Fatal(err)
	}
	if len(f.delivered) != 4 {
		t.Fatalf("re-established labeled packet dropped: delivered=%d", len(f.delivered))
	}
	if f.controls != 2 {
		t.Errorf("controls = %d, want 2 (one per chain installation)", f.controls)
	}
}
