package enforce

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sdme/internal/flowtable"
	"sdme/internal/netaddr"
	"sdme/internal/nf"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Strategy selects how a node picks the next middlebox for a function.
type Strategy int

// Enforcement strategies (§III-B, §III-C, §IV).
const (
	// HotPotato always forwards to the closest middlebox m_x^e.
	HotPotato Strategy = iota + 1
	// Random picks a uniformly random member of M_x^e (per flow).
	Random
	// LoadBalanced picks from M_x^e with probability proportional to the
	// controller's LP solution.
	LoadBalanced
)

// String renders the strategy.
func (s Strategy) String() string {
	switch s {
	case HotPotato:
		return "HP"
	case Random:
		return "Rand"
	case LoadBalanced:
		return "LB"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// WeightKey addresses one weight vector in a node's LB configuration.
// SrcSubnet/DstSubnet are zero in the aggregated Eq. (2) form (weights
// shared across all sources and destinations); the fine-grained Eq. (1)
// form sets them, and lookups fall back from specific to aggregated.
type WeightKey struct {
	PolicyID             int
	Func                 policy.FuncType
	SrcSubnet, DstSubnet int
}

// Config is the controller-installed per-node configuration.
type Config struct {
	// Policies is the node's relevant policy subset P_x, in global
	// priority order.
	Policies []*policy.Policy
	// Candidates holds M_x^e per function e, ordered closest-first, so
	// Candidates[e][0] is the hot-potato target m_x^e.
	Candidates map[policy.FuncType][]topo.NodeID
	// Weights holds the LB traffic split per (policy, next function);
	// each vector is parallel to Candidates[key.Func]. Nil for HP/Rand.
	Weights map[WeightKey][]float64
	// Strategy selects HP / Rand / LB behaviour.
	Strategy Strategy
	// HashSeed seeds the per-flow selection hash; all nodes share it so
	// diagnostics can reproduce choices, but correctness only needs
	// per-node determinism.
	HashSeed uint64
	// LabelSwitching enables the §III-E label-switching enhancement.
	LabelSwitching bool
	// FlowTTL / LabelTTL are soft-state lifetimes in simulator ticks
	// (microseconds in the discrete-event sim); zero disables expiry.
	FlowTTL, LabelTTL int64
	// UseTrie selects the trie classifier instead of the linear table.
	UseTrie bool
	// FlowShards / LabelShards set the lock-striping factor of the
	// soft-state tables (rounded to a power of two; 0 and 1 both mean
	// unsharded). Local tuning, not part of the controller wire config:
	// the right value depends on the device's worker count, not policy.
	FlowShards, LabelShards int
}

// Counters aggregates a node's dataplane activity. The figure benchmarks
// read Load; the ablation benchmarks read the rest.
type Counters struct {
	// PacketsIn counts packets handed to the node.
	PacketsIn int64
	// Load counts packets processed by this node's network function(s) —
	// the per-middlebox load metric of Figures 4/5 and Table III.
	Load int64
	// Classified counts multi-field policy-table lookups (the work the
	// §III-D flow table avoids).
	Classified int64
	// TunnelTx counts IP-over-IP transmissions; LabelTx counts
	// label-switched transmissions; PlainTx counts plain forwards.
	TunnelTx, LabelTx, PlainTx int64
	// ControlTx / ControlRx count label-switching control messages.
	ControlTx, ControlRx int64
	// Dropped counts firewall drops; Served counts proxy cache serves.
	Dropped, Served int64
	// NoProvider counts packets needing a function with no reachable
	// middlebox; LabelMiss counts label lookups that found no entry;
	// Misdirected counts packets that arrived at a node that cannot
	// serve them.
	NoProvider, LabelMiss, Misdirected int64
	// Failovers counts selections locally diverted from a dead provider
	// to a live backup candidate (no controller round-trip involved);
	// Invalidated counts soft-state entries purged by InvalidateProvider.
	Failovers, Invalidated int64
}

// MeasKey identifies one traffic measurement bucket: packets of policy
// PolicyID flowing from SrcSubnet to DstSubnet — enough to reconstruct
// every T quantity of §III-C (T_p, T_{s,p}, T_{d,p}, T_{s,d,p}).
type MeasKey struct {
	PolicyID             int
	SrcSubnet, DstSubnet int
}

// Node is one software-defined device: a policy proxy or a middlebox.
//
// Concurrency contract: configuration mutators (Install, SetWeights,
// SetCandidates, SetStrategy, SetMetrics, SetTracer, ResetMeasurements)
// must be serialized with packet handling — the live runtime quiesces its
// worker pool around them, the simulator is single-threaded. Packet
// handlers (HandleOutbound/HandleArrival/HandleControl) may run
// concurrently from multiple workers PROVIDED all packets and control
// frames of one flow stay on one worker (flow-affinity dispatch): the
// soft-state tables are internally lock-striped and cross-flow mutation
// goes through shard-locked table methods, but per-entry field access
// relies on per-flow serialization. Counters are updated atomically;
// read them via CountersSnapshot when workers may be running.
type Node struct {
	ID      topo.NodeID
	Addr    netaddr.Addr
	IsProxy bool
	// SubnetIdx is the proxy's 1-based subnet index (0 for middleboxes).
	SubnetIdx int
	// Funcs maps each implemented function type to its instance.
	Funcs map[policy.FuncType]nf.Function

	cfg        Config
	dep        *Deployment
	classifier policy.Classifier
	flows      *flowtable.Table
	labels     *flowtable.LabelTable

	// meas is guarded by measMu: proxies tally measurements on the packet
	// path, where multiple workers may race on flows of different
	// subnets/policies. The critical section is one map increment.
	measMu sync.Mutex
	meas   map[MeasKey]int64

	// live is the node's provider-liveness view (liveness.go); unlike the
	// rest of the node it is internally synchronized, because the live
	// runtime's health monitor feeds it from its own goroutine.
	live liveView

	// nm / tracer are the optional observability attachments (observe.go);
	// both are nil unless SetMetrics / SetTracer were called.
	nm     *nodeMetrics
	tracer *RuntimeTracer

	// flowShardPref / labelShardPref are the node-local striping defaults
	// set by SetShardTuning; Install falls back to them when the incoming
	// Config carries no shard counts (wire configs never do — striping is
	// local capacity tuning, not policy).
	flowShardPref, labelShardPref int

	// Counters is exported for inspection; treat as read-only outside
	// the node's owner, and use CountersSnapshot instead while dataplane
	// workers may be running (fields are updated with atomics).
	Counters Counters
}

// CountersSnapshot returns an atomically-read copy of the node's counters,
// safe to call while packet workers are running.
func (n *Node) CountersSnapshot() Counters {
	c := &n.Counters
	return Counters{
		PacketsIn:   atomic.LoadInt64(&c.PacketsIn),
		Load:        atomic.LoadInt64(&c.Load),
		Classified:  atomic.LoadInt64(&c.Classified),
		TunnelTx:    atomic.LoadInt64(&c.TunnelTx),
		LabelTx:     atomic.LoadInt64(&c.LabelTx),
		PlainTx:     atomic.LoadInt64(&c.PlainTx),
		ControlTx:   atomic.LoadInt64(&c.ControlTx),
		ControlRx:   atomic.LoadInt64(&c.ControlRx),
		Dropped:     atomic.LoadInt64(&c.Dropped),
		Served:      atomic.LoadInt64(&c.Served),
		NoProvider:  atomic.LoadInt64(&c.NoProvider),
		LabelMiss:   atomic.LoadInt64(&c.LabelMiss),
		Misdirected: atomic.LoadInt64(&c.Misdirected),
		Failovers:   atomic.LoadInt64(&c.Failovers),
		Invalidated: atomic.LoadInt64(&c.Invalidated),
	}
}

// NewProxy creates a policy proxy node for the given deployment proxy
// node ID.
func NewProxy(dep *Deployment, id topo.NodeID) *Node {
	n := dep.Graph.Node(id)
	if n.Kind != topo.KindProxy {
		panic(fmt.Sprintf("enforce: node %v is not a proxy", id))
	}
	return &Node{
		ID: id, Addr: n.Addr, IsProxy: true,
		SubnetIdx: topo.SubnetIndexOf(n.Addr),
		dep:       dep,
		meas:      make(map[MeasKey]int64),
	}
}

// FunctionFactory constructs a function instance for a middlebox;
// nf.New is the default. Custom deployments supply their own to add
// function types beyond the built-in four (register the type with
// policy.RegisterFunc first).
type FunctionFactory func(policy.FuncType) (nf.Function, error)

// NewMiddlebox creates a middlebox node, materializing default function
// instances for every function the deployment assigns it.
func NewMiddlebox(dep *Deployment, id topo.NodeID) (*Node, error) {
	return NewMiddleboxWith(dep, id, nf.New)
}

// NewMiddleboxWith is NewMiddlebox with a custom function factory.
func NewMiddleboxWith(dep *Deployment, id topo.NodeID, factory FunctionFactory) (*Node, error) {
	gn := dep.Graph.Node(id)
	if gn.Kind != topo.KindMiddlebox {
		return nil, fmt.Errorf("enforce: node %v is not a middlebox", id)
	}
	if factory == nil {
		factory = nf.New
	}
	funcs := make(map[policy.FuncType]nf.Function)
	for _, ft := range dep.FuncsOf(id) {
		f, err := factory(ft)
		if err != nil {
			return nil, err
		}
		funcs[ft] = f
	}
	return &Node{
		ID: id, Addr: gn.Addr,
		Funcs: funcs,
		dep:   dep,
	}, nil
}

// Install applies a controller-computed configuration, (re)building the
// classifier and soft-state tables. Action lists with repeated function
// types are rejected: the dataplane infers a packet's chain position from
// which of its functions appears in the list, which requires uniqueness.
func (n *Node) Install(cfg Config) error {
	for _, p := range cfg.Policies {
		seen := map[policy.FuncType]bool{}
		for _, f := range p.Actions {
			if seen[f] {
				return fmt.Errorf("enforce: %v repeats function %v; unsupported", p, f)
			}
			seen[f] = true
		}
	}
	n.cfg = cfg
	tbl := policy.NewTable()
	for _, p := range cfg.Policies {
		tbl.AddPolicy(p)
	}
	if cfg.UseTrie {
		n.classifier = policy.NewTrieClassifier(cfg.Policies)
	} else {
		n.classifier = tbl
	}
	fs, ls := cfg.FlowShards, cfg.LabelShards
	if fs == 0 {
		fs = n.flowShardPref
	}
	if ls == 0 {
		ls = n.labelShardPref
	}
	n.flows = flowtable.NewTableSharded(cfg.FlowTTL, fs)
	if !n.IsProxy {
		n.labels = flowtable.NewLabelTableSharded(cfg.LabelTTL, ls)
	}
	return nil
}

// SetShardTuning records the node's local table-striping preference. It
// applies on the next Install (including configs arriving over the
// management channel, which never carry shard counts) — call it before
// installing, alongside SetMetrics/SetTracer. Zero keeps single-shard
// tables. This is a configuration mutator under the Node concurrency
// contract.
func (n *Node) SetShardTuning(flowShards, labelShards int) {
	n.flowShardPref, n.labelShardPref = flowShards, labelShards
}

// Config returns the installed configuration.
func (n *Node) Config() Config { return n.cfg }

// SetWeights replaces the node's LB weight vectors in place, preserving
// flow/label soft state — this is the controller's periodic
// reconfiguration path (§III-C: weights are recomputed as measurements
// arrive).
func (n *Node) SetWeights(w map[WeightKey][]float64) { n.cfg.Weights = w }

// SetCandidates replaces the node's candidate sets in place (the
// controller's repair path after a middlebox failure). Stale LB weights
// are dropped at the same time: their vectors are parallel to the old
// candidate lists and would misroute against the new ones.
func (n *Node) SetCandidates(c map[policy.FuncType][]topo.NodeID) {
	n.cfg.Candidates = c
	n.cfg.Weights = nil
}

// SetStrategy switches the selection strategy in place (used by
// experiments comparing HP/Rand/LB on identical state).
func (n *Node) SetStrategy(s Strategy) { n.cfg.Strategy = s }

// FlowTable exposes the node's flow hash table (for tests and stats).
func (n *Node) FlowTable() *flowtable.Table { return n.flows }

// LabelTable exposes the node's label table (nil on proxies).
func (n *Node) LabelTable() *flowtable.LabelTable { return n.labels }

// Measurements returns a copy of the proxy's per-policy traffic counts.
func (n *Node) Measurements() map[MeasKey]int64 {
	n.measMu.Lock()
	defer n.measMu.Unlock()
	out := make(map[MeasKey]int64, len(n.meas))
	for k, v := range n.meas {
		out[k] = v
	}
	return out
}

// ResetMeasurements clears the measurement counters (the controller
// collects periodically; §III-C).
func (n *Node) ResetMeasurements() {
	n.measMu.Lock()
	defer n.measMu.Unlock()
	n.meas = make(map[MeasKey]int64)
}

// SelectNext picks the middlebox that should perform function e on the
// given flow, following the node's strategy. The flow tuple must be the
// ORIGINAL flow 5-tuple (not a label-rewritten header), so the choice is
// identical for every packet of the flow.
//
// When the strategy's pick is marked dead in the node's liveness view,
// the selection deterministically fails over to the next live candidate
// in the ranked (closest-first) list — the pre-installed backup set — so
// flows resume without any controller round-trip. ErrNoLiveProvider
// (via NoLiveCandidateError) surfaces when no live candidate remains.
func (n *Node) SelectNext(policyID int, e policy.FuncType, flow netaddr.FiveTuple) (topo.NodeID, error) {
	cands := n.cfg.Candidates[e]
	if len(cands) == 0 {
		atomic.AddInt64(&n.Counters.NoProvider, 1)
		return topo.InvalidNode, &NoLiveCandidateError{Node: n.ID, Func: e}
	}
	var pick int
	switch n.cfg.Strategy {
	case HotPotato:
		pick = 0
	case Random:
		h := flow.Hash(n.hashSeed() ^ 0xa5a5a5a5a5a5a5a5)
		pick = int(h % uint64(len(cands)))
	case LoadBalanced:
		w := n.lookupWeights(policyID, e, flow)
		pick = pickWeightedIdx(cands, w, flow.Hash(n.hashSeed()))
	default:
		return topo.InvalidNode, fmt.Errorf("enforce: node %v has no strategy installed", n.ID)
	}
	if !n.live.down(cands[pick]) {
		return cands[pick], nil
	}
	// Local fast failover: scan the ranked list from the preferred pick.
	for off := 1; off < len(cands); off++ {
		alt := cands[(pick+off)%len(cands)]
		if !n.live.down(alt) {
			atomic.AddInt64(&n.Counters.Failovers, 1)
			if n.nm != nil {
				n.nm.failovers.Inc()
			}
			return alt, nil
		}
	}
	atomic.AddInt64(&n.Counters.NoProvider, 1)
	return topo.InvalidNode, &NoLiveCandidateError{Node: n.ID, Func: e}
}

// hashSeed salts the configured seed with this node's identity. The salt
// matters: if every hop hashed the flow with the same seed, the flows
// reaching a middlebox would be exactly those whose hash fell inside the
// upstream selection interval, so the downstream hash — the same value —
// would be conditioned on that interval and the realized split would be
// systematically skewed away from the configured weights. Per-node salts
// make consecutive choices independent while staying deterministic per
// flow, which is all §III-C requires.
func (n *Node) hashSeed() uint64 {
	// SplitMix64 finalizer over the node ID.
	z := uint64(n.ID) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return n.cfg.HashSeed ^ z
}

// lookupWeights resolves the weight vector for (policy, function),
// preferring the fine-grained (src, dst) key of Eq. (1) and falling back
// to the aggregated Eq. (2) key, then to nil (uniform).
func (n *Node) lookupWeights(policyID int, e policy.FuncType, flow netaddr.FiveTuple) []float64 {
	if n.cfg.Weights == nil {
		return nil
	}
	src := n.dep.SubnetIndexOf(flow.Src)
	dst := n.dep.SubnetIndexOf(flow.Dst)
	if w, ok := n.cfg.Weights[WeightKey{PolicyID: policyID, Func: e, SrcSubnet: src, DstSubnet: dst}]; ok {
		return w
	}
	if w, ok := n.cfg.Weights[WeightKey{PolicyID: policyID, Func: e}]; ok {
		return w
	}
	return nil
}

// pickWeighted implements the paper's hash-proportional selection: with
// hash value r in [0, N), candidate y_i is chosen when r/N falls in the
// cumulative weight interval of y_i. Nil/zero weights degrade to uniform.
func pickWeighted(cands []topo.NodeID, weights []float64, hash uint64) topo.NodeID {
	return cands[pickWeightedIdx(cands, weights, hash)]
}

// pickWeightedIdx is pickWeighted returning the candidate's index, so the
// failover scan can start from the strategy's preferred rank.
func pickWeightedIdx(cands []topo.NodeID, weights []float64, hash uint64) int {
	if len(cands) == 1 {
		return 0
	}
	var total float64
	if len(weights) == len(cands) {
		for _, w := range weights {
			total += w
		}
	}
	if total <= 0 {
		return int(hash % uint64(len(cands)))
	}
	// Map hash to [0, 1) with 53-bit precision.
	r := float64(hash>>11) / float64(1<<53) * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(cands) - 1
}

// classify resolves a flow against the node's relevant policy set P_x via
// the flow hash table (§III-D): table hit answers immediately, miss runs
// the multi-field classifier and installs a (possibly null) entry.
func (n *Node) classify(ft netaddr.FiveTuple, now int64) *flowtable.Entry {
	if e, ok := n.flows.Lookup(ft, now); ok {
		return e
	}
	atomic.AddInt64(&n.Counters.Classified, 1)
	p := n.classifier.Match(ft)
	if p == nil {
		return n.flows.InsertNull(ft, now)
	}
	return n.flows.Insert(ft, p.ID, p.Actions, now)
}

// myFunc returns which function of the action list this node performs:
// the earliest implemented one. ok is false if the node implements none
// of them (a misdirected packet).
func (n *Node) myFunc(a policy.ActionList) (policy.FuncType, bool) {
	for _, f := range a {
		if _, ok := n.Funcs[f]; ok {
			return f, true
		}
	}
	return 0, false
}
