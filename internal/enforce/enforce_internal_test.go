package enforce

import (
	"math/rand"
	"testing"

	"sdme/internal/netaddr"
	"sdme/internal/topo"
)

func TestPickWeighted(t *testing.T) {
	cands := []topo.NodeID{10, 20, 30}

	// Single candidate short-circuits.
	if got := pickWeighted(cands[:1], nil, 12345); got != 10 {
		t.Errorf("single candidate pick = %v", got)
	}
	// Nil weights fall back to uniform by hash.
	if got := pickWeighted(cands, nil, 4); got != cands[4%3] {
		t.Errorf("uniform pick = %v", got)
	}
	// All-zero weights likewise.
	if got := pickWeighted(cands, []float64{0, 0, 0}, 5); got != cands[5%3] {
		t.Errorf("zero-weight pick = %v", got)
	}
	// Mismatched weight length falls back to uniform.
	if got := pickWeighted(cands, []float64{1}, 7); got != cands[7%3] {
		t.Errorf("mismatched-weight pick = %v", got)
	}
	// A weight vector concentrated on one candidate always picks it.
	for h := uint64(0); h < 100; h++ {
		if got := pickWeighted(cands, []float64{0, 1, 0}, h*2654435761); got != 20 {
			t.Fatalf("concentrated pick = %v for hash %d", got, h)
		}
	}
}

func TestPickWeightedProportions(t *testing.T) {
	// Over many random flows, picks approximate the weight proportions —
	// the paper's hash-proportional selection (§III-C).
	cands := []topo.NodeID{1, 2, 3}
	weights := []float64{1, 2, 1}
	rng := rand.New(rand.NewSource(17))
	counts := map[topo.NodeID]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		ft := netaddr.FiveTuple{
			Src: netaddr.Addr(rng.Uint32()), Dst: netaddr.Addr(rng.Uint32()),
			SrcPort: uint16(rng.Intn(65536)), DstPort: 80, Proto: 6,
		}
		counts[pickWeighted(cands, weights, ft.Hash(42))]++
	}
	if got := counts[2]; got < n/2-n/25 || got > n/2+n/25 {
		t.Errorf("middle candidate got %d of %d, want ≈ %d", got, n, n/2)
	}
	if got := counts[1]; got < n/4-n/25 || got > n/4+n/25 {
		t.Errorf("first candidate got %d of %d, want ≈ %d", got, n, n/4)
	}
}

func TestPickWeightedDeterministicPerFlow(t *testing.T) {
	cands := []topo.NodeID{1, 2, 3, 4}
	weights := []float64{0.3, 0.3, 0.2, 0.2}
	ft := netaddr.FiveTuple{Src: 9, Dst: 8, SrcPort: 7, DstPort: 80, Proto: 6}
	first := pickWeighted(cands, weights, ft.Hash(7))
	for i := 0; i < 50; i++ {
		if got := pickWeighted(cands, weights, ft.Hash(7)); got != first {
			t.Fatal("same flow must always pick the same candidate")
		}
	}
}

func TestStrategyString(t *testing.T) {
	if HotPotato.String() != "HP" || Random.String() != "Rand" || LoadBalanced.String() != "LB" {
		t.Error("strategy strings wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should render")
	}
}
