package enforce

import (
	"fmt"
	"sort"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

// FlowDemand is the evaluator's input: one flow and its packet count.
type FlowDemand struct {
	Tuple   netaddr.FiveTuple
	Packets int64
}

// LoadReport aggregates the outcome of routing a flow set through the
// enforcement layer: per-middlebox loads in packets (the metric of
// Figures 4/5 and Table III) plus path-cost totals for latency analysis.
type LoadReport struct {
	// Loads maps each middlebox to the packets it processed.
	Loads map[topo.NodeID]int64
	// TotalPackets counts packets of all enforced flows.
	TotalPackets int64
	// PathCost accumulates Σ (packets × routing cost of the packet's
	// full path source→chain→destination); divide by TotalPackets for
	// the average policy-enforced path length.
	PathCost float64
	// Unenforced counts flows that matched no policy (forwarded plain).
	Unenforced int64
	// Dropped counts flows denied enforcement because a required
	// function had no provider.
	Dropped int64
}

// EvaluateFlows routes every flow through the enforcement decision logic
// — the same classification and SelectNext used by the packet dataplane —
// and accumulates loads analytically. This is valid precisely because the
// paper's per-flow hashing (§III-C) sends all packets of a flow along one
// middlebox chain, so per-packet simulation and per-flow accounting give
// identical loads. The packet-level simulator cross-checks this in tests.
func EvaluateFlows(nodes map[topo.NodeID]*Node, dep *Deployment, ap *route.AllPairs, flows []FlowDemand) (*LoadReport, error) {
	report := &LoadReport{Loads: make(map[topo.NodeID]int64)}
	for i := range flows {
		f := &flows[i]
		srcSub := dep.SubnetIndexOf(f.Tuple.Src)
		proxyID, ok := dep.ProxyFor(srcSub)
		if !ok {
			return nil, fmt.Errorf("enforce: flow %v: no proxy for subnet %d", f.Tuple, srcSub)
		}
		proxy, ok := nodes[proxyID]
		if !ok {
			return nil, fmt.Errorf("enforce: proxy node %v not materialized", proxyID)
		}
		report.TotalPackets += f.Packets

		p := proxy.classifier.Match(f.Tuple)
		dstEdge := dep.Graph.SubnetOwner(f.Tuple.Dst)
		if p == nil || p.Actions.IsPermit() {
			report.Unenforced++
			if dstEdge != topo.InvalidNode {
				report.PathCost += float64(f.Packets) * ap.Dist(proxyID, dstEdge)
			}
			continue
		}

		cur := proxy
		curID := proxyID
		enforced := true
		for _, e := range p.Actions {
			next, err := cur.SelectNext(p.ID, e, f.Tuple)
			if err != nil {
				report.Dropped++
				enforced = false
				break
			}
			report.Loads[next] += f.Packets
			report.PathCost += float64(f.Packets) * ap.Dist(curID, next)
			var okNode bool
			cur, okNode = nodes[next]
			if !okNode {
				return nil, fmt.Errorf("enforce: middlebox node %v not materialized", next)
			}
			curID = next
		}
		if enforced && dstEdge != topo.InvalidNode {
			report.PathCost += float64(f.Packets) * ap.Dist(curID, dstEdge)
		}
	}
	return report, nil
}

// LoadsOf returns the loads of every provider of function f, ordered by
// provider node ID (zero for providers that saw no traffic).
func (r *LoadReport) LoadsOf(dep *Deployment, f policy.FuncType) []int64 {
	providers := topo.SortedIDs(dep.Providers(f))
	out := make([]int64, len(providers))
	for i, id := range providers {
		out[i] = r.Loads[id]
	}
	return out
}

// MaxLoad returns the largest per-middlebox load among providers of f.
func (r *LoadReport) MaxLoad(dep *Deployment, f policy.FuncType) int64 {
	var max int64
	for _, l := range r.LoadsOf(dep, f) {
		if l > max {
			max = l
		}
	}
	return max
}

// MinLoad returns the smallest per-middlebox load among providers of f.
func (r *LoadReport) MinLoad(dep *Deployment, f policy.FuncType) int64 {
	loads := r.LoadsOf(dep, f)
	if len(loads) == 0 {
		return 0
	}
	min := loads[0]
	for _, l := range loads[1:] {
		if l < min {
			min = l
		}
	}
	return min
}

// AvgPathCost returns the mean per-packet path cost.
func (r *LoadReport) AvgPathCost() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return r.PathCost / float64(r.TotalPackets)
}

// SortedLoads returns all (middlebox, load) pairs sorted by descending
// load for display.
func (r *LoadReport) SortedLoads() []NodeLoad {
	out := make([]NodeLoad, 0, len(r.Loads))
	for id, l := range r.Loads {
		out = append(out, NodeLoad{Node: id, Load: l})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load > out[j].Load
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// NodeLoad pairs a middlebox with its load.
type NodeLoad struct {
	Node topo.NodeID
	Load int64
}
