package enforce

import (
	"strconv"
	"sync"

	"sdme/internal/metrics"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Metric family names the dataplane emits. Sim and live runs share this
// code, so both substrates expose identical names — the conformance
// suite asserts that.
const (
	MetricPacketsIn  = "sdme_node_packets_in_total"
	MetricFuncPkts   = "sdme_func_packets_total"
	MetricFuncBytes  = "sdme_func_bytes_total"
	MetricFuncDrops  = "sdme_func_drops_total"
	MetricFuncServes = "sdme_func_serves_total"
	MetricFailovers  = "sdme_node_failovers_total"
	// MetricFlowShardEntries / MetricLabelShardEntries are per-shard
	// occupancy gauges of the lock-striped soft-state tables, refreshed by
	// SyncShardGauges (the live runtime calls it periodically; it is a
	// sampled view, not an event stream).
	MetricFlowShardEntries  = "sdme_flowtable_shard_entries"
	MetricLabelShardEntries = "sdme_labeltable_shard_entries"
)

// funcMetrics caches one (node, func) series triple so the hot path
// avoids registry lookups.
type funcMetrics struct {
	packets, bytes, drops, serves *metrics.Counter
}

// nodeMetrics is a node's cached view into the registry.
type nodeMetrics struct {
	reg       *metrics.Registry
	nodeLabel string
	packetsIn *metrics.Counter
	failovers *metrics.Counter
	perFunc   map[policy.FuncType]*funcMetrics
}

// SetMetrics attaches a metrics registry to the node: the dataplane then
// records per-node packets-in and per-(node, function) packets, bytes,
// drops and cache serves. nil detaches. Call before the node's owner
// (simulator event loop or live device goroutine) starts driving it.
func (n *Node) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		n.nm = nil
		return
	}
	node := strconv.Itoa(int(n.ID))
	nm := &nodeMetrics{
		reg:       reg,
		nodeLabel: node,
		packetsIn: reg.Counter(MetricPacketsIn, "node", node),
		failovers: reg.Counter(MetricFailovers, "node", node),
		perFunc:   make(map[policy.FuncType]*funcMetrics, len(n.Funcs)),
	}
	for f := range n.Funcs {
		nm.perFunc[f] = &funcMetrics{
			packets: reg.Counter(MetricFuncPkts, "node", node, "func", f.String()),
			bytes:   reg.Counter(MetricFuncBytes, "node", node, "func", f.String()),
			drops:   reg.Counter(MetricFuncDrops, "node", node, "func", f.String()),
			serves:  reg.Counter(MetricFuncServes, "node", node, "func", f.String()),
		}
	}
	n.nm = nm
}

// SyncShardGauges refreshes the per-shard occupancy gauges of the node's
// soft-state tables into the attached registry. No-op without metrics.
// Safe to call from any goroutine (table lengths are read shard-locked).
func (n *Node) SyncShardGauges() {
	nm := n.nm
	if nm == nil {
		return
	}
	if t := n.flows; t != nil {
		for i := 0; i < t.Shards(); i++ {
			nm.reg.Gauge(MetricFlowShardEntries, "node", nm.nodeLabel, "shard", strconv.Itoa(i)).
				Set(float64(t.ShardLen(i)))
		}
	}
	if t := n.labels; t != nil {
		for i := 0; i < t.Shards(); i++ {
			nm.reg.Gauge(MetricLabelShardEntries, "node", nm.nodeLabel, "shard", strconv.Itoa(i)).
				Set(float64(t.ShardLen(i)))
		}
	}
}

// HopEventKind classifies one runtime hop record.
type HopEventKind uint8

// Hop event kinds recorded by the dataplane and its drivers.
const (
	// HopIngress: a sampled flow's packet entered at its policy proxy.
	HopIngress HopEventKind = iota + 1
	// HopProcess: a middlebox ran one of the flow's chain functions —
	// the event the differential conformance test compares against the
	// static plan.
	HopProcess
	// HopEncap / HopDecap: IP-over-IP tunnel encapsulation events.
	HopEncap
	HopDecap
	// HopQueue: the packet waited WaitUS for a busy middlebox.
	HopQueue
	// HopForward: the node forwarded the packet plain (chain complete or
	// permit traffic).
	HopForward
)

// String renders the event kind.
func (k HopEventKind) String() string {
	switch k {
	case HopIngress:
		return "ingress"
	case HopProcess:
		return "process"
	case HopEncap:
		return "encap"
	case HopDecap:
		return "decap"
	case HopQueue:
		return "queue"
	case HopForward:
		return "forward"
	default:
		return "hop(?)"
	}
}

// HopRecord is one step of a sampled flow's actual journey — the runtime
// counterpart of TraceHop.
type HopRecord struct {
	// Seq is the record's global sequence number (assigned at Record).
	Seq uint64
	// Flow is the flow's ORIGINAL 5-tuple (label-switched hops resolve
	// it from the label table, so rewritten headers never leak in).
	Flow netaddr.FiveTuple
	Node topo.NodeID
	// Func is the function executed (HopProcess only).
	Func  policy.FuncType
	Event HopEventKind
	// AtUS is the dataplane clock when the event happened (virtual time
	// in the simulator, microseconds since start in the live runtime).
	AtUS int64
	// WaitUS is the queueing delay (HopQueue only).
	WaitUS int64
}

// RuntimeTracer is a sampling ring buffer of per-packet hop records. The
// sampling decision is a pure function of the flow tuple, so every node
// — across goroutines, across substrates — agrees on which flows are
// traced without any coordination or packet marking. A full ring
// overwrites the oldest records (tracing is observability, not
// accounting).
type RuntimeTracer struct {
	oneIn uint64
	seed  uint64

	mu   sync.Mutex
	ring []HopRecord
	next uint64 // total records ever written
}

// NewRuntimeTracer creates a tracer holding up to capacity records
// (default 8192), sampling one in oneIn flows (1 traces every flow, 0
// disables tracing). seed perturbs which flows fall in the sample.
func NewRuntimeTracer(capacity int, oneIn uint64, seed uint64) *RuntimeTracer {
	if capacity <= 0 {
		capacity = 8192
	}
	return &RuntimeTracer{
		oneIn: oneIn,
		seed:  seed,
		ring:  make([]HopRecord, 0, capacity),
	}
}

// Sampled reports whether the flow is in the trace sample.
func (t *RuntimeTracer) Sampled(ft netaddr.FiveTuple) bool {
	if t == nil || t.oneIn == 0 {
		return false
	}
	if t.oneIn == 1 {
		return true
	}
	return ft.Hash(t.seed^0x7261636b6f627365)%t.oneIn == 0
}

// Record appends one hop record, assigning its sequence number.
func (t *RuntimeTracer) Record(rec HopRecord) {
	t.mu.Lock()
	rec.Seq = t.next
	t.next++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[rec.Seq%uint64(cap(t.ring))] = rec
	}
	t.mu.Unlock()
}

// Total returns how many records were ever written (≥ len(Records())).
func (t *RuntimeTracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Records returns the retained records in sequence order.
func (t *RuntimeTracer) Records() []HopRecord {
	t.mu.Lock()
	out := append([]HopRecord(nil), t.ring...)
	t.mu.Unlock()
	// The ring wraps at cap: rotate so the oldest retained record leads.
	if len(out) == cap(out) && len(out) > 0 {
		start := int(t.next % uint64(cap(out)))
		out = append(out[start:], out[:start]...)
	}
	return out
}

// FlowRecords returns the retained records of one flow, in order.
func (t *RuntimeTracer) FlowRecords(ft netaddr.FiveTuple) []HopRecord {
	var out []HopRecord
	for _, r := range t.Records() {
		if r.Flow == ft {
			out = append(out, r)
		}
	}
	return out
}

// RuntimeTrace condenses a flow's HopProcess records into the same shape
// as the static plan (TraceFlow): the sequence of (middlebox, function)
// hops its packets actually traversed. With one packet per flow — how
// the conformance suite drives it — the sequence is exactly the chain;
// with pipelined multi-packet flows, hops of different packets
// interleave in record order.
func (t *RuntimeTracer) RuntimeTrace(ft netaddr.FiveTuple) *Trace {
	tr := &Trace{Flow: ft}
	for _, r := range t.FlowRecords(ft) {
		if r.Event != HopProcess {
			continue
		}
		tr.Hops = append(tr.Hops, TraceHop{Node: r.Node, Func: r.Func})
	}
	return tr
}

// SamePath reports whether two traces visit the same middleboxes running
// the same functions in the same order — the plan/runtime conformance
// predicate (costs and candidate sets are plan-side detail and are not
// compared).
func (tr *Trace) SamePath(other *Trace) bool {
	if len(tr.Hops) != len(other.Hops) {
		return false
	}
	for i, h := range tr.Hops {
		if h.Node != other.Hops[i].Node || h.Func != other.Hops[i].Func {
			return false
		}
	}
	return true
}

// SetTracer attaches a runtime tracer (nil detaches). Like SetMetrics,
// attach before the node's owner starts driving it.
func (n *Node) SetTracer(t *RuntimeTracer) { n.tracer = t }

// Tracer returns the node's attached tracer (nil if none).
func (n *Node) Tracer() *RuntimeTracer { return n.tracer }

// trace records one hop event if the node has a tracer and the flow is
// sampled.
func (n *Node) trace(ft netaddr.FiveTuple, ev HopEventKind, f policy.FuncType, now int64) {
	t := n.tracer
	if t == nil || !t.Sampled(ft) {
		return
	}
	t.Record(HopRecord{Flow: ft, Node: n.ID, Func: f, Event: ev, AtUS: now})
}
