// Package netaddr provides the addressing primitives used throughout the
// sdme library: IPv4 addresses, CIDR prefixes, port ranges, and transport
// five-tuples. It is the lowest substrate layer; every other package builds
// on these types.
//
// The types are deliberately small value types (an Addr is a uint32) so
// that they can be used as map keys and copied freely on the hot path of
// the simulator and the live dataplane.
package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 builds an Addr from four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address such as "10.1.0.7".
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: parse %q: want 4 octets, got %d", s, len(parts))
	}
	var out uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netaddr: parse %q: bad octet %q: %w", s, p, err)
		}
		out = out<<8 | uint32(v)
	}
	return Addr(out), nil
}

// MustParseAddr is ParseAddr that panics on error. It is intended for
// tests and compile-time-constant-like initialization.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets of the address.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	o := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o[0], o[1], o[2], o[3])
}

// IsZero reports whether the address is the zero address 0.0.0.0.
func (a Addr) IsZero() bool { return a == 0 }

// Prefix is a CIDR address prefix such as 10.4.0.0/16.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom returns a prefix with the given address and length. The
// address is masked to the prefix length, so PrefixFrom(10.1.2.3, 16)
// equals PrefixFrom(10.1.0.0, 16). Lengths above 32 are clamped to 32.
func PrefixFrom(a Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	return Prefix{addr: a & maskFor(bits), bits: uint8(bits)}
}

// ParsePrefix parses CIDR notation such as "10.4.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: parse prefix %q: missing '/'", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: parse prefix %q: bad length", s)
	}
	return PrefixFrom(a, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// AnyPrefix matches every address (0.0.0.0/0); it is the wildcard used in
// policy traffic descriptors.
func AnyPrefix() Prefix { return Prefix{} }

func maskFor(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// Addr returns the masked base address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length in bits.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether the prefix covers address a.
func (p Prefix) Contains(a Addr) bool {
	return a&maskFor(int(p.bits)) == p.addr
}

// Overlaps reports whether the two prefixes share any address; one must be
// a sub-prefix of the other for that to hold.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// IsAny reports whether the prefix is the full wildcard 0.0.0.0/0.
func (p Prefix) IsAny() bool { return p.bits == 0 }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.addr, p.bits)
}

// Protocol numbers used by the library; values follow IANA.
const (
	ProtoAny  uint8 = 0 // wildcard in descriptors
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// ProtoString renders a protocol number for humans.
func ProtoString(p uint8) string {
	switch p {
	case ProtoAny:
		return "any"
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return strconv.Itoa(int(p))
	}
}

// PortRange is an inclusive range of transport ports. The zero value
// (Lo=0, Hi=0) is NOT the wildcard; use AnyPort for that.
type PortRange struct {
	Lo, Hi uint16
}

// AnyPort matches every port.
func AnyPort() PortRange { return PortRange{Lo: 0, Hi: 65535} }

// SinglePort matches exactly one port.
func SinglePort(p uint16) PortRange { return PortRange{Lo: p, Hi: p} }

// Contains reports whether port p falls in the range.
func (r PortRange) Contains(p uint16) bool { return p >= r.Lo && p <= r.Hi }

// IsAny reports whether the range covers all 65536 ports.
func (r PortRange) IsAny() bool { return r.Lo == 0 && r.Hi == 65535 }

// IsSingle reports whether the range covers exactly one port.
func (r PortRange) IsSingle() bool { return r.Lo == r.Hi }

// String renders the range; "*" for the wildcard, "80" for a single port,
// "1000-2000" otherwise.
func (r PortRange) String() string {
	switch {
	case r.IsAny():
		return "*"
	case r.IsSingle():
		return strconv.Itoa(int(r.Lo))
	default:
		return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
	}
}

// FiveTuple identifies a transport flow: addresses, ports and protocol.
// It is the flow identifier hashed by the enforcement dataplane (§III-C of
// the paper) and the key of the flow hash table (§III-D).
type FiveTuple struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the tuple of the reverse direction of the flow.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		Src: f.Dst, Dst: f.Src,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
		Proto: f.Proto,
	}
}

// String renders the tuple as "tcp 10.0.0.1:80 -> 10.1.0.2:5555".
func (f FiveTuple) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d",
		ProtoString(f.Proto), f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Hash returns a 64-bit hash of the tuple using the FNV-1a construction
// with an explicit seed. The same (seed, tuple) pair always yields the
// same value on every node, which is what makes the paper's probabilistic
// middlebox selection consistent for all packets of one flow.
func (f FiveTuple) Hash(seed uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ seed
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 24; i >= 0; i -= 8 {
		mix(byte(uint32(f.Src) >> uint(i)))
	}
	for i := 24; i >= 0; i -= 8 {
		mix(byte(uint32(f.Dst) >> uint(i)))
	}
	mix(byte(f.SrcPort >> 8))
	mix(byte(f.SrcPort))
	mix(byte(f.DstPort >> 8))
	mix(byte(f.DstPort))
	mix(f.Proto)
	return h
}

// Mix64 is a finalizing avalanche step (the 64-bit murmur3 finalizer) for
// reducing a hash to a small modulus. Raw FNV-1a over low-entropy inputs —
// real tuples differ in a handful of trailing port/address bits — leaves
// its low bits badly skewed, so anything that buckets flows by `hash %
// smallN` (worker-pool dispatch, table shard selection) must avalanche
// first or a fleet of structured flows collapses onto a couple of buckets.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
