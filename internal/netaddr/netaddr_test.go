package netaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{in: "0.0.0.0", want: 0},
		{in: "10.1.2.3", want: AddrFrom4(10, 1, 2, 3)},
		{in: "255.255.255.255", want: Addr(0xffffffff)},
		{in: "128.40.0.1", want: AddrFrom4(128, 40, 0, 1)},
		{in: "1.2.3", wantErr: true},
		{in: "1.2.3.4.5", wantErr: true},
		{in: "256.0.0.1", wantErr: true},
		{in: "a.b.c.d", wantErr: true},
		{in: "", wantErr: true},
		{in: "-1.0.0.0", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseAddr(%q): want error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAddr(%q): unexpected error %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrOctets(t *testing.T) {
	a := AddrFrom4(192, 168, 7, 42)
	want := [4]byte{192, 168, 7, 42}
	if got := a.Octets(); got != want {
		t.Errorf("Octets() = %v, want %v", got, want)
	}
	if a.String() != "192.168.7.42" {
		t.Errorf("String() = %q", a.String())
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr on bad input did not panic")
		}
	}()
	MustParseAddr("not-an-address")
}

func TestPrefixMasking(t *testing.T) {
	p := PrefixFrom(MustParseAddr("10.1.2.3"), 16)
	if got, want := p.Addr(), MustParseAddr("10.1.0.0"); got != want {
		t.Errorf("masked addr = %v, want %v", got, want)
	}
	if p.Bits() != 16 {
		t.Errorf("Bits() = %d, want 16", p.Bits())
	}
}

func TestPrefixClamping(t *testing.T) {
	if got := PrefixFrom(0, -5).Bits(); got != 0 {
		t.Errorf("negative bits clamp: got %d, want 0", got)
	}
	if got := PrefixFrom(0, 99).Bits(); got != 32 {
		t.Errorf("oversize bits clamp: got %d, want 32", got)
	}
}

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "10.4.0.0/16", want: "10.4.0.0/16"},
		{in: "10.4.9.1/16", want: "10.4.0.0/16"}, // masked
		{in: "0.0.0.0/0", want: "0.0.0.0/0"},
		{in: "1.2.3.4/32", want: "1.2.3.4/32"},
		{in: "10.0.0.0", wantErr: true},
		{in: "10.0.0.0/33", wantErr: true},
		{in: "10.0.0.0/-1", wantErr: true},
		{in: "x/8", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParsePrefix(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParsePrefix(%q): want error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePrefix(%q): unexpected error %v", tt.in, err)
			continue
		}
		if got.String() != tt.want {
			t.Errorf("ParsePrefix(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("128.40.0.0/16")
	if !p.Contains(MustParseAddr("128.40.12.7")) {
		t.Error("prefix should contain in-subnet address")
	}
	if p.Contains(MustParseAddr("128.41.0.1")) {
		t.Error("prefix should not contain out-of-subnet address")
	}
	if !AnyPrefix().Contains(MustParseAddr("200.1.2.3")) {
		t.Error("wildcard prefix should contain everything")
	}
	if !AnyPrefix().IsAny() {
		t.Error("AnyPrefix should report IsAny")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{a: "10.0.0.0/8", b: "10.4.0.0/16", want: true},
		{a: "10.4.0.0/16", b: "10.0.0.0/8", want: true},
		{a: "10.4.0.0/16", b: "10.5.0.0/16", want: false},
		{a: "0.0.0.0/0", b: "1.2.3.4/32", want: true},
		{a: "10.4.0.0/16", b: "10.4.0.0/16", want: true},
	}
	for _, tt := range tests {
		a, b := MustParsePrefix(tt.a), MustParsePrefix(tt.b)
		if got := a.Overlaps(b); got != tt.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := b.Overlaps(a); got != tt.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestPrefixContainsConsistentWithOverlap(t *testing.T) {
	// Property: if p contains an address a, then p overlaps the /32 of a.
	f := func(base uint32, bits uint8, probe uint32) bool {
		p := PrefixFrom(Addr(base), int(bits%33))
		q := PrefixFrom(Addr(probe), 32)
		return p.Contains(Addr(probe)) == p.Overlaps(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortRange(t *testing.T) {
	if !AnyPort().IsAny() {
		t.Error("AnyPort should be the wildcard")
	}
	if AnyPort().String() != "*" {
		t.Errorf("AnyPort string = %q", AnyPort().String())
	}
	r := SinglePort(80)
	if !r.IsSingle() || !r.Contains(80) || r.Contains(81) {
		t.Errorf("SinglePort(80) misbehaves: %+v", r)
	}
	if r.String() != "80" {
		t.Errorf("SinglePort string = %q", r.String())
	}
	wide := PortRange{Lo: 1000, Hi: 2000}
	if wide.String() != "1000-2000" {
		t.Errorf("range string = %q", wide.String())
	}
	if !wide.Contains(1000) || !wide.Contains(2000) || wide.Contains(999) || wide.Contains(2001) {
		t.Error("range boundaries wrong")
	}
}

func TestFiveTupleReverse(t *testing.T) {
	f := FiveTuple{
		Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("10.1.0.2"),
		SrcPort: 5555, DstPort: 80, Proto: ProtoTCP,
	}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src || r.SrcPort != f.DstPort || r.DstPort != f.SrcPort {
		t.Errorf("Reverse() = %+v", r)
	}
	if r.Reverse() != f {
		t.Error("double Reverse should be identity")
	}
}

func TestFiveTupleHashDeterministic(t *testing.T) {
	f := FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if f.Hash(42) != f.Hash(42) {
		t.Error("hash must be deterministic")
	}
	if f.Hash(42) == f.Hash(43) {
		t.Error("different seeds should almost surely differ")
	}
}

func TestFiveTupleHashSpread(t *testing.T) {
	// The hash drives probabilistic middlebox selection; verify that over
	// many random tuples the top bits are roughly uniform across 8 buckets.
	rng := rand.New(rand.NewSource(1))
	const n = 8192
	var buckets [8]int
	for i := 0; i < n; i++ {
		f := FiveTuple{
			Src:     Addr(rng.Uint32()),
			Dst:     Addr(rng.Uint32()),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   ProtoTCP,
		}
		buckets[f.Hash(7)%8]++
	}
	for i, c := range buckets {
		if c < n/8-n/16 || c > n/8+n/16 {
			t.Errorf("bucket %d has %d of %d items; distribution too skewed", i, c, n)
		}
	}
}

func TestProtoString(t *testing.T) {
	tests := []struct {
		in   uint8
		want string
	}{
		{ProtoAny, "any"}, {ProtoICMP, "icmp"}, {ProtoTCP, "tcp"}, {ProtoUDP, "udp"}, {89, "89"},
	}
	for _, tt := range tests {
		if got := ProtoString(tt.in); got != tt.want {
			t.Errorf("ProtoString(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFiveTupleString(t *testing.T) {
	f := FiveTuple{
		Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("10.1.0.2"),
		SrcPort: 5555, DstPort: 80, Proto: ProtoTCP,
	}
	want := "tcp 10.0.0.1:5555 -> 10.1.0.2:80"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
