package netaddr

import "testing"

// FuzzParseAddr: arbitrary strings must never panic; accepted inputs
// must round-trip through String.
func FuzzParseAddr(f *testing.F) {
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "10.1.2.3", "1.2.3", "a.b.c.d", "", "1..2.3"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip of %q failed: %v %v", s, back, err)
		}
	})
}

// FuzzParsePrefix: accepted prefixes must be canonical (already masked)
// and contain their own base address.
func FuzzParsePrefix(f *testing.F) {
	for _, s := range []string{"10.0.0.0/8", "0.0.0.0/0", "1.2.3.4/32", "10.4.9.1/16", "x/8", "1.2.3.4/-1", "1.2.3.4/99"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if !p.Contains(p.Addr()) {
			t.Fatalf("prefix %v does not contain its base", p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip of %q -> %v failed: %v %v", s, p, back, err)
		}
	})
}
