// Package policy implements the paper's network-wide policies (§II): a
// policy pairs a traffic descriptor — packet-header fields with wildcards
// — with an ordered list of network-function actions. Matching follows
// first-match semantics over an ordered policy list.
//
// Two classifier implementations are provided: a linear scan (the obvious
// baseline, always correct) and a hierarchical source/destination trie
// (the software lookup structure §III-D alludes to). The flow hash table
// that makes per-packet classification rare lives in internal/flowtable.
package policy

import (
	"fmt"
	"hash/fnv"
	"strings"

	"sdme/internal/netaddr"
)

// FuncType identifies a network function that middleboxes implement. The
// four built-ins are the ones in the paper's evaluation; RegisterFunc adds
// more.
type FuncType int

// Built-in network functions (§IV-A).
const (
	FuncFW  FuncType = iota + 1 // firewalling
	FuncIDS                     // intrusion detection
	FuncWP                      // web proxying
	FuncTM                      // traffic measurement
)

// builtinFuncNames indexes FuncType-1.
var builtinFuncNames = []string{"FW", "IDS", "WP", "TM"}

var extraFuncNames = map[FuncType]string{}
var nextFunc = FuncType(len(builtinFuncNames) + 1)

// RegisterFunc defines a new function type with the given display name
// and returns its FuncType. It is intended for package initialization in
// callers that extend the built-in set; it is not safe for concurrent use.
func RegisterFunc(name string) FuncType {
	f := nextFunc
	nextFunc++
	extraFuncNames[f] = name
	return f
}

// String renders the function name.
func (f FuncType) String() string {
	if i := int(f) - 1; i >= 0 && i < len(builtinFuncNames) {
		return builtinFuncNames[i]
	}
	if n, ok := extraFuncNames[f]; ok {
		return n
	}
	return fmt.Sprintf("func(%d)", int(f))
}

// ParseFunc resolves a function name ("FW", "IDS", ...), case-insensitive.
func ParseFunc(s string) (FuncType, error) {
	for i, n := range builtinFuncNames {
		if strings.EqualFold(n, s) {
			return FuncType(i + 1), nil
		}
	}
	for f, n := range extraFuncNames {
		if strings.EqualFold(n, s) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown function %q", s)
}

// ActionList is the ordered sequence of functions a policy applies. An
// empty list means "permit": forward with no middlebox processing.
type ActionList []FuncType

// ParseActions parses "FW,IDS,WP" (or "permit" / "" for the empty list).
func ParseActions(s string) (ActionList, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "permit") {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make(ActionList, 0, len(parts))
	for _, p := range parts {
		f, err := ParseFunc(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// IsPermit reports whether the list is empty (no processing required).
func (a ActionList) IsPermit() bool { return len(a) == 0 }

// First returns the first function; ok is false for a permit list.
func (a ActionList) First() (FuncType, bool) {
	if len(a) == 0 {
		return 0, false
	}
	return a[0], true
}

// Last returns the last function; ok is false for a permit list.
func (a ActionList) Last() (FuncType, bool) {
	if len(a) == 0 {
		return 0, false
	}
	return a[len(a)-1], true
}

// Next returns the function following the first occurrence of e; ok is
// false when e is last or absent.
func (a ActionList) Next(e FuncType) (FuncType, bool) {
	for i, f := range a {
		if f == e {
			if i+1 < len(a) {
				return a[i+1], true
			}
			return 0, false
		}
	}
	return 0, false
}

// Index returns the position of e in the list, or -1.
func (a ActionList) Index(e FuncType) int {
	for i, f := range a {
		if f == e {
			return i
		}
	}
	return -1
}

// Contains reports whether e appears in the list.
func (a ActionList) Contains(e FuncType) bool { return a.Index(e) >= 0 }

// ContainsAny reports whether any of the given functions appears.
func (a ActionList) ContainsAny(fs []FuncType) bool {
	for _, f := range fs {
		if a.Contains(f) {
			return true
		}
	}
	return false
}

// Equal reports element-wise equality.
func (a ActionList) Equal(b ActionList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AdjacentPairs returns the (e, e') pairs of consecutive functions; this
// is the I_p(e, e') indicator domain of the paper's LP formulations.
func (a ActionList) AdjacentPairs() [][2]FuncType {
	if len(a) < 2 {
		return nil
	}
	out := make([][2]FuncType, 0, len(a)-1)
	for i := 0; i+1 < len(a); i++ {
		out = append(out, [2]FuncType{a[i], a[i+1]})
	}
	return out
}

// String renders "FW -> IDS -> WP" or "permit".
func (a ActionList) String() string {
	if a.IsPermit() {
		return "permit"
	}
	names := make([]string, len(a))
	for i, f := range a {
		names[i] = f.String()
	}
	return strings.Join(names, " -> ")
}

// Descriptor is a policy's traffic descriptor: header fields with
// wildcards (§II, Table I of the paper).
type Descriptor struct {
	Src, Dst         netaddr.Prefix
	SrcPort, DstPort netaddr.PortRange
	Proto            uint8 // netaddr.ProtoAny matches everything
}

// NewDescriptor returns a fully wildcarded descriptor; adjust fields from
// there.
func NewDescriptor() Descriptor {
	return Descriptor{
		Src: netaddr.AnyPrefix(), Dst: netaddr.AnyPrefix(),
		SrcPort: netaddr.AnyPort(), DstPort: netaddr.AnyPort(),
		Proto: netaddr.ProtoAny,
	}
}

// Matches reports whether the 5-tuple falls inside the descriptor.
func (d Descriptor) Matches(ft netaddr.FiveTuple) bool {
	return d.Src.Contains(ft.Src) &&
		d.Dst.Contains(ft.Dst) &&
		d.SrcPort.Contains(ft.SrcPort) &&
		d.DstPort.Contains(ft.DstPort) &&
		(d.Proto == netaddr.ProtoAny || d.Proto == ft.Proto)
}

// SrcOverlaps reports whether any source address in subnet could match
// the descriptor — the test the controller uses to compute a proxy's
// relevant policy set P_x (§III-B).
func (d Descriptor) SrcOverlaps(subnet netaddr.Prefix) bool {
	return d.Src.Overlaps(subnet)
}

// DstOverlaps is the destination-side counterpart of SrcOverlaps.
func (d Descriptor) DstOverlaps(subnet netaddr.Prefix) bool {
	return d.Dst.Overlaps(subnet)
}

// String renders the descriptor compactly.
func (d Descriptor) String() string {
	src, dst := d.Src.String(), d.Dst.String()
	if d.Src.IsAny() {
		src = "*"
	}
	if d.Dst.IsAny() {
		dst = "*"
	}
	return fmt.Sprintf("%s:%s -> %s:%s proto=%s",
		src, d.SrcPort, dst, d.DstPort, netaddr.ProtoString(d.Proto))
}

// Policy is one network-wide policy: descriptor plus ordered action list.
// ID is unique across the network; Prio is the position in the global
// ordered list (lower matches first).
type Policy struct {
	ID      int
	Prio    int
	Desc    Descriptor
	Actions ActionList
}

// String renders the policy for logs and tools.
func (p *Policy) String() string {
	return fmt.Sprintf("policy#%d[%s: %s]", p.ID, p.Desc, p.Actions)
}

// Hash is the rule's identity hash: FNV-1a over ID, priority, descriptor
// and action list. Two Policy values hash equal iff they would install
// identically, so plan compilation can detect edits without field-by-field
// comparison and without trusting pointer identity across table edits.
func (p *Policy) Hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d/%d|%d/%d|%d-%d|%d-%d|%d|",
		p.ID, p.Prio,
		uint32(p.Desc.Src.Addr()), p.Desc.Src.Bits(),
		uint32(p.Desc.Dst.Addr()), p.Desc.Dst.Bits(),
		p.Desc.SrcPort.Lo, p.Desc.SrcPort.Hi,
		p.Desc.DstPort.Lo, p.Desc.DstPort.Hi, p.Desc.Proto)
	for _, f := range p.Actions {
		fmt.Fprintf(h, "%d,", int(f))
	}
	return h.Sum64()
}

// Classifier finds the first matching policy for a flow.
type Classifier interface {
	// Match returns the first (lowest Prio) policy matching ft, or nil.
	Match(ft netaddr.FiveTuple) *Policy
	// Len returns the number of policies installed.
	Len() int
}

// Table is the ordered network-wide policy list with linear first-match
// lookup. It preserves insertion order as priority and is the reference
// implementation other classifiers are tested against.
type Table struct {
	policies []*Policy
	nextID   int
	// nextPrio is a monotonic priority counter: priorities of removed
	// policies are never reused, so a policy added after a removal cannot
	// collide with a survivor and (Prio, ID) stays a total order across
	// any edit history.
	nextPrio int
}

var _ Classifier = (*Table)(nil)

// NewTable returns an empty policy table.
func NewTable() *Table { return &Table{} }

// Add appends a policy, assigning ID and priority, and returns it.
func (t *Table) Add(d Descriptor, a ActionList) *Policy {
	p := &Policy{ID: t.nextID, Prio: t.nextPrio, Desc: d, Actions: a}
	t.nextID++
	t.nextPrio++
	t.policies = append(t.policies, p)
	return p
}

// AddPolicy appends an existing policy object (keeping its ID, e.g. when a
// node installs the subset P_x distributed by the controller) and assigns
// only its local priority.
func (t *Table) AddPolicy(p *Policy) {
	t.policies = append(t.policies, p)
	if p.ID >= t.nextID {
		t.nextID = p.ID + 1
	}
	if p.Prio >= t.nextPrio {
		t.nextPrio = p.Prio + 1
	}
}

// Get returns the policy with the given ID, or nil.
func (t *Table) Get(id int) *Policy {
	for _, p := range t.policies {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// Remove deletes the policy with the given ID, preserving the relative
// order (and priorities) of the survivors. It reports whether a policy
// was removed.
func (t *Table) Remove(id int) bool {
	for i, p := range t.policies {
		if p.ID == id {
			t.policies = append(t.policies[:i], t.policies[i+1:]...)
			return true
		}
	}
	return false
}

// Update replaces the descriptor and actions of the policy with the given
// ID, keeping its ID and priority slot. The edit allocates a fresh Policy
// value so configurations holding the old pointer are not mutated under
// them; the new value is returned (nil if the ID is unknown).
func (t *Table) Update(id int, d Descriptor, a ActionList) *Policy {
	for i, p := range t.policies {
		if p.ID == id {
			np := &Policy{ID: p.ID, Prio: p.Prio, Desc: d, Actions: a}
			t.policies[i] = np
			return np
		}
	}
	return nil
}

// Match implements Classifier by linear first-match scan.
func (t *Table) Match(ft netaddr.FiveTuple) *Policy {
	for _, p := range t.policies {
		if p.Desc.Matches(ft) {
			return p
		}
	}
	return nil
}

// Len implements Classifier.
func (t *Table) Len() int { return len(t.policies) }

// All returns the policies in priority order. The slice is owned by the
// table; callers must not mutate it.
func (t *Table) All() []*Policy { return t.policies }

// SrcRelevant returns the policies whose descriptors can match a source
// address in subnet — the proxy-side P_x of §III-B.
func (t *Table) SrcRelevant(subnet netaddr.Prefix) []*Policy {
	var out []*Policy
	for _, p := range t.policies {
		if p.Desc.SrcOverlaps(subnet) {
			out = append(out, p)
		}
	}
	return out
}

// FuncRelevant returns the policies whose action lists contain any of the
// given functions — the middlebox-side P_x of §III-B.
func (t *Table) FuncRelevant(funcs []FuncType) []*Policy {
	var out []*Policy
	for _, p := range t.policies {
		if p.Actions.ContainsAny(funcs) {
			out = append(out, p)
		}
	}
	return out
}
