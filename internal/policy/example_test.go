package policy_test

import (
	"fmt"
	"strings"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
)

// Example_parseAndMatch loads a Table I-style rule file and classifies a
// flow with first-match semantics.
func Example_parseAndMatch() {
	rules := `
# subnet a = 128.40.0.0/16
128.40.0.0/16  128.40.0.0/16  *  80  permit      # internal web
128.40.0.0/16  *              *  80  FW,IDS,WP   # outbound web
`
	tbl := policy.NewTable()
	if err := policy.ParseRules(strings.NewReader(rules), tbl); err != nil {
		panic(err)
	}
	outbound := netaddr.FiveTuple{
		Src: netaddr.MustParseAddr("128.40.1.10"), Dst: netaddr.MustParseAddr("8.8.8.8"),
		SrcPort: 51000, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
	p := tbl.Match(outbound)
	fmt.Println(p.Actions)
	// Output:
	// FW -> IDS -> WP
}

// Example_lint shows the first-match analyzer flagging a dead rule.
func Example_lint() {
	tbl := policy.NewTable()
	wide := policy.NewDescriptor()
	tbl.Add(wide, policy.ActionList{policy.FuncFW})
	narrow := policy.NewDescriptor()
	narrow.DstPort = netaddr.SinglePort(22)
	tbl.Add(narrow, policy.ActionList{policy.FuncIDS})

	for _, f := range tbl.Lint() {
		fmt.Println(f.Kind)
	}
	// Output:
	// shadowed
}
