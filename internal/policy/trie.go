package policy

import (
	"sdme/internal/netaddr"
)

// TrieClassifier is a hierarchical source/destination trie: a binary trie
// over source-prefix bits whose nodes each hold a binary trie over
// destination-prefix bits, whose nodes hold the policies with exactly that
// (src, dst) prefix pair, sorted by priority. A lookup walks at most 33
// source nodes and, for each that carries a destination trie, at most 33
// destination nodes, then linearly checks ports/protocol on the small
// per-node lists — the classic software multi-field structure the paper
// points to for policy tables (§III-D, [11]).
//
// It returns exactly what Table.Match returns; the equivalence is enforced
// by property tests.
type TrieClassifier struct {
	root *srcNode
	n    int
}

var _ Classifier = (*TrieClassifier)(nil)

type srcNode struct {
	child [2]*srcNode
	dst   *dstNode
}

type dstNode struct {
	child    [2]*dstNode
	policies []*Policy // sorted by Prio
}

// NewTrieClassifier builds a trie over the given policies (normally
// Table.All()).
func NewTrieClassifier(policies []*Policy) *TrieClassifier {
	t := &TrieClassifier{root: &srcNode{}}
	for _, p := range policies {
		t.insert(p)
	}
	return t
}

func bitOf(a netaddr.Addr, i int) int {
	return int(uint32(a)>>(31-uint(i))) & 1
}

func (t *TrieClassifier) insert(p *Policy) {
	t.n++
	sn := t.root
	for i := 0; i < p.Desc.Src.Bits(); i++ {
		b := bitOf(p.Desc.Src.Addr(), i)
		if sn.child[b] == nil {
			sn.child[b] = &srcNode{}
		}
		sn = sn.child[b]
	}
	if sn.dst == nil {
		sn.dst = &dstNode{}
	}
	dn := sn.dst
	for i := 0; i < p.Desc.Dst.Bits(); i++ {
		b := bitOf(p.Desc.Dst.Addr(), i)
		if dn.child[b] == nil {
			dn.child[b] = &dstNode{}
		}
		dn = dn.child[b]
	}
	// Insert keeping the list sorted by priority.
	lst := dn.policies
	pos := len(lst)
	for i, q := range lst {
		if p.Prio < q.Prio {
			pos = i
			break
		}
	}
	lst = append(lst, nil)
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = p
	dn.policies = lst
}

// Match implements Classifier with first-match (lowest priority value)
// semantics.
func (t *TrieClassifier) Match(ft netaddr.FiveTuple) *Policy {
	var best *Policy
	consider := func(p *Policy) {
		if best != nil && best.Prio <= p.Prio {
			return
		}
		if p.Desc.SrcPort.Contains(ft.SrcPort) &&
			p.Desc.DstPort.Contains(ft.DstPort) &&
			(p.Desc.Proto == netaddr.ProtoAny || p.Desc.Proto == ft.Proto) {
			best = p
		}
	}
	searchDst := func(root *dstNode) {
		dn := root
		for i := 0; dn != nil; i++ {
			for _, p := range dn.policies {
				consider(p)
			}
			if i == 32 {
				break
			}
			dn = dn.child[bitOf(ft.Dst, i)]
		}
	}
	sn := t.root
	for i := 0; sn != nil; i++ {
		if sn.dst != nil {
			searchDst(sn.dst)
		}
		if i == 32 {
			break
		}
		sn = sn.child[bitOf(ft.Src, i)]
	}
	return best
}

// Len implements Classifier.
func (t *TrieClassifier) Len() int { return t.n }
