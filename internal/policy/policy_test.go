package policy

import (
	"math/rand"
	"testing"

	"sdme/internal/netaddr"
)

func tuple(src, dst string, sp, dp uint16) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: netaddr.MustParseAddr(src), Dst: netaddr.MustParseAddr(dst),
		SrcPort: sp, DstPort: dp, Proto: netaddr.ProtoTCP,
	}
}

// paperTable builds the six example policies of the paper's Table I, with
// "subnet a" = 128.40.0.0/16.
func paperTable(t *testing.T) *Table {
	t.Helper()
	sub := netaddr.MustParsePrefix("128.40.0.0/16")
	tbl := NewTable()
	mk := func(src, dst netaddr.Prefix, sp, dp netaddr.PortRange, actions string) {
		d := NewDescriptor()
		d.Src, d.Dst, d.SrcPort, d.DstPort = src, dst, sp, dp
		a, err := ParseActions(actions)
		if err != nil {
			t.Fatal(err)
		}
		tbl.Add(d, a)
	}
	anyP, p80 := netaddr.AnyPort(), netaddr.SinglePort(80)
	star := netaddr.AnyPrefix()
	mk(sub, sub, anyP, p80, "permit")
	mk(sub, sub, p80, anyP, "permit")
	mk(star, sub, anyP, p80, "FW,IDS")
	mk(sub, star, p80, anyP, "IDS,FW")
	mk(sub, star, anyP, p80, "FW,IDS,WP")
	mk(star, sub, p80, anyP, "WP,IDS,FW")
	return tbl
}

func TestPaperTableI(t *testing.T) {
	tbl := paperTable(t)
	tests := []struct {
		name string
		ft   netaddr.FiveTuple
		want string // expected action list string, "" for no match
	}{
		{name: "internal web access permitted", ft: tuple("128.40.1.1", "128.40.2.2", 5000, 80), want: "permit"},
		{name: "internal web return permitted", ft: tuple("128.40.2.2", "128.40.1.1", 80, 5000), want: "permit"},
		{name: "external to internal server", ft: tuple("9.9.9.9", "128.40.2.2", 4000, 80), want: "FW -> IDS"},
		{name: "internal server reply outbound", ft: tuple("128.40.2.2", "9.9.9.9", 80, 4000), want: "IDS -> FW"},
		{name: "internal client to external web", ft: tuple("128.40.1.1", "8.8.8.8", 4000, 80), want: "FW -> IDS -> WP"},
		{name: "external web reply inbound", ft: tuple("8.8.8.8", "128.40.1.1", 80, 4000), want: "WP -> IDS -> FW"},
		{name: "unmatched traffic", ft: tuple("9.9.9.9", "8.8.8.8", 1, 2), want: ""},
	}
	for _, tt := range tests {
		p := tbl.Match(tt.ft)
		switch {
		case tt.want == "" && p != nil:
			t.Errorf("%s: matched %v, want none", tt.name, p)
		case tt.want != "" && p == nil:
			t.Errorf("%s: no match, want %q", tt.name, tt.want)
		case p != nil && p.Actions.String() != tt.want:
			t.Errorf("%s: actions = %q, want %q", tt.name, p.Actions, tt.want)
		}
	}
}

func TestFirstMatchWins(t *testing.T) {
	// The first two paper policies permit internal web traffic even
	// though later wildcard policies would also match it.
	tbl := paperTable(t)
	p := tbl.Match(tuple("128.40.1.1", "128.40.2.2", 1234, 80))
	if p == nil || !p.Actions.IsPermit() {
		t.Fatalf("internal web should hit the permit rule first, got %v", p)
	}
	if p.Prio != 0 {
		t.Errorf("Prio = %d, want 0", p.Prio)
	}
}

func TestActionListOps(t *testing.T) {
	a, err := ParseActions("FW, IDS, WP")
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := a.First(); !ok || f != FuncFW {
		t.Errorf("First = %v/%v", f, ok)
	}
	if l, ok := a.Last(); !ok || l != FuncWP {
		t.Errorf("Last = %v/%v", l, ok)
	}
	if n, ok := a.Next(FuncFW); !ok || n != FuncIDS {
		t.Errorf("Next(FW) = %v/%v", n, ok)
	}
	if n, ok := a.Next(FuncIDS); !ok || n != FuncWP {
		t.Errorf("Next(IDS) = %v/%v", n, ok)
	}
	if _, ok := a.Next(FuncWP); ok {
		t.Error("Next(last) should be not-ok")
	}
	if _, ok := a.Next(FuncTM); ok {
		t.Error("Next(absent) should be not-ok")
	}
	if !a.Contains(FuncIDS) || a.Contains(FuncTM) {
		t.Error("Contains wrong")
	}
	if a.Index(FuncWP) != 2 || a.Index(FuncTM) != -1 {
		t.Error("Index wrong")
	}
	if !a.ContainsAny([]FuncType{FuncTM, FuncWP}) || a.ContainsAny([]FuncType{FuncTM}) {
		t.Error("ContainsAny wrong")
	}
	pairs := a.AdjacentPairs()
	if len(pairs) != 2 || pairs[0] != [2]FuncType{FuncFW, FuncIDS} || pairs[1] != [2]FuncType{FuncIDS, FuncWP} {
		t.Errorf("AdjacentPairs = %v", pairs)
	}
	if !a.Equal(ActionList{FuncFW, FuncIDS, FuncWP}) || a.Equal(ActionList{FuncFW}) {
		t.Error("Equal wrong")
	}
}

func TestPermitList(t *testing.T) {
	for _, s := range []string{"", "permit", "PERMIT", "  "} {
		a, err := ParseActions(s)
		if err != nil {
			t.Errorf("ParseActions(%q): %v", s, err)
			continue
		}
		if !a.IsPermit() {
			t.Errorf("ParseActions(%q) should be permit", s)
		}
		if _, ok := a.First(); ok {
			t.Error("permit list First should be not-ok")
		}
		if _, ok := a.Last(); ok {
			t.Error("permit list Last should be not-ok")
		}
		if a.String() != "permit" {
			t.Errorf("String = %q", a.String())
		}
		if a.AdjacentPairs() != nil {
			t.Error("permit list has no adjacent pairs")
		}
	}
	if _, err := ParseActions("FW,NOPE"); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestParseFunc(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want FuncType
	}{{"FW", FuncFW}, {"fw", FuncFW}, {"Ids", FuncIDS}, {"WP", FuncWP}, {"tm", FuncTM}} {
		got, err := ParseFunc(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseFunc(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := ParseFunc("bogus"); err == nil {
		t.Error("bogus function should fail")
	}
}

func TestRegisterFunc(t *testing.T) {
	f := RegisterFunc("NAT")
	if f.String() != "NAT" {
		t.Errorf("registered name = %q", f)
	}
	got, err := ParseFunc("nat")
	if err != nil || got != f {
		t.Errorf("ParseFunc(nat) = %v, %v", got, err)
	}
	if FuncType(999).String() == "" {
		t.Error("unknown func should still render")
	}
}

func TestDescriptorProtoMatch(t *testing.T) {
	d := NewDescriptor()
	d.Proto = netaddr.ProtoUDP
	ft := tuple("1.1.1.1", "2.2.2.2", 1, 2) // TCP
	if d.Matches(ft) {
		t.Error("UDP descriptor must not match TCP flow")
	}
	ft.Proto = netaddr.ProtoUDP
	if !d.Matches(ft) {
		t.Error("UDP descriptor must match UDP flow")
	}
}

func TestRelevantSubsets(t *testing.T) {
	tbl := paperTable(t)
	sub := netaddr.MustParsePrefix("128.40.0.0/16")
	other := netaddr.MustParsePrefix("10.9.0.0/16")

	// Proxy for subnet a: every policy's src side either is subnet a or a
	// wildcard, so all 6 are relevant.
	if got := tbl.SrcRelevant(sub); len(got) != 6 {
		t.Errorf("SrcRelevant(subnet a) = %d policies, want 6", len(got))
	}
	// Proxy for an unrelated subnet: only wildcard-src policies (2).
	if got := tbl.SrcRelevant(other); len(got) != 2 {
		t.Errorf("SrcRelevant(other) = %d policies, want 2", len(got))
	}
	// Middlebox-side P_x: WP appears in 2 policies, FW in 4.
	if got := tbl.FuncRelevant([]FuncType{FuncWP}); len(got) != 2 {
		t.Errorf("FuncRelevant(WP) = %d, want 2", len(got))
	}
	if got := tbl.FuncRelevant([]FuncType{FuncFW}); len(got) != 4 {
		t.Errorf("FuncRelevant(FW) = %d, want 4", len(got))
	}
	if got := tbl.FuncRelevant([]FuncType{FuncTM}); len(got) != 0 {
		t.Errorf("FuncRelevant(TM) = %d, want 0", len(got))
	}
}

func TestAddPolicyKeepsID(t *testing.T) {
	global := NewTable()
	p := global.Add(NewDescriptor(), ActionList{FuncFW})
	local := NewTable()
	local.AddPolicy(p)
	if got := local.Match(tuple("1.1.1.1", "2.2.2.2", 1, 2)); got == nil || got.ID != p.ID {
		t.Errorf("local table lost identity: %v", got)
	}
}

func randomDescriptor(rng *rand.Rand) Descriptor {
	d := NewDescriptor()
	if rng.Intn(2) == 0 {
		d.Src = netaddr.PrefixFrom(netaddr.Addr(rng.Uint32()), rng.Intn(33))
	}
	if rng.Intn(2) == 0 {
		d.Dst = netaddr.PrefixFrom(netaddr.Addr(rng.Uint32()), rng.Intn(33))
	}
	if rng.Intn(3) == 0 {
		p := uint16(rng.Intn(65536))
		d.SrcPort = netaddr.SinglePort(p)
	}
	if rng.Intn(3) == 0 {
		p := uint16(rng.Intn(65536))
		d.DstPort = netaddr.SinglePort(p)
	}
	if rng.Intn(4) == 0 {
		d.Proto = netaddr.ProtoUDP
	}
	return d
}

func TestTrieMatchesLinearTable(t *testing.T) {
	// Property: on random policy sets and random probes (biased to share
	// prefixes with the policies so matches actually occur), the trie
	// classifier returns exactly the linear table's answer.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		tbl := NewTable()
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			tbl.Add(randomDescriptor(rng), ActionList{FuncFW})
		}
		trie := NewTrieClassifier(tbl.All())
		if trie.Len() != tbl.Len() {
			t.Fatalf("trial %d: Len %d != %d", trial, trie.Len(), tbl.Len())
		}
		for probe := 0; probe < 300; probe++ {
			var ft netaddr.FiveTuple
			if probe%2 == 0 && tbl.Len() > 0 {
				// Derive the probe from a random policy so it likely matches.
				p := tbl.All()[rng.Intn(tbl.Len())]
				ft = netaddr.FiveTuple{
					Src:     p.Desc.Src.Addr() + netaddr.Addr(rng.Intn(4)),
					Dst:     p.Desc.Dst.Addr() + netaddr.Addr(rng.Intn(4)),
					SrcPort: p.Desc.SrcPort.Lo,
					DstPort: p.Desc.DstPort.Lo,
					Proto:   netaddr.ProtoTCP,
				}
			} else {
				ft = netaddr.FiveTuple{
					Src: netaddr.Addr(rng.Uint32()), Dst: netaddr.Addr(rng.Uint32()),
					SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
					Proto: netaddr.ProtoTCP,
				}
			}
			want, got := tbl.Match(ft), trie.Match(ft)
			if want != got {
				t.Fatalf("trial %d probe %v: trie=%v linear=%v", trial, ft, got, want)
			}
		}
	}
}

func TestTrieOnPaperTable(t *testing.T) {
	tbl := paperTable(t)
	trie := NewTrieClassifier(tbl.All())
	probes := []netaddr.FiveTuple{
		tuple("128.40.1.1", "128.40.2.2", 5000, 80),
		tuple("9.9.9.9", "128.40.2.2", 4000, 80),
		tuple("128.40.1.1", "8.8.8.8", 4000, 80),
		tuple("8.8.8.8", "128.40.1.1", 80, 4000),
		tuple("9.9.9.9", "8.8.8.8", 1, 2),
	}
	for _, ft := range probes {
		if trie.Match(ft) != tbl.Match(ft) {
			t.Errorf("trie and table disagree on %v", ft)
		}
	}
}

func TestPolicyString(t *testing.T) {
	tbl := paperTable(t)
	for _, p := range tbl.All() {
		if p.String() == "" {
			t.Error("empty policy string")
		}
	}
	d := NewDescriptor()
	if d.String() == "" {
		t.Error("empty descriptor string")
	}
}

func BenchmarkLinearMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := NewTable()
	for i := 0; i < 500; i++ {
		tbl.Add(randomDescriptor(rng), ActionList{FuncFW})
	}
	ft := tuple("10.1.2.3", "10.4.5.6", 1234, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Match(ft)
	}
}

func BenchmarkTrieMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := NewTable()
	for i := 0; i < 500; i++ {
		tbl.Add(randomDescriptor(rng), ActionList{FuncFW})
	}
	trie := NewTrieClassifier(tbl.All())
	ft := tuple("10.1.2.3", "10.4.5.6", 1234, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie.Match(ft)
	}
}
