package policy

import (
	"math/rand"
	"testing"

	"sdme/internal/netaddr"
)

func descFor(src, dst string, dp netaddr.PortRange) Descriptor {
	d := NewDescriptor()
	if src != "*" {
		d.Src = netaddr.MustParsePrefix(src)
	}
	if dst != "*" {
		d.Dst = netaddr.MustParsePrefix(dst)
	}
	d.DstPort = dp
	return d
}

func TestSubsumes(t *testing.T) {
	any := netaddr.AnyPort()
	p80 := netaddr.SinglePort(80)
	tests := []struct {
		name string
		a, b Descriptor
		want bool
	}{
		{"wildcard subsumes everything", NewDescriptor(), descFor("10.0.0.0/8", "10.4.0.0/16", p80), true},
		{"narrow does not subsume wide", descFor("10.0.0.0/8", "*", any), NewDescriptor(), false},
		{"prefix containment", descFor("10.0.0.0/8", "*", any), descFor("10.4.0.0/16", "*", any), true},
		{"disjoint prefixes", descFor("10.0.0.0/8", "*", any), descFor("11.0.0.0/8", "*", any), false},
		{"port superset", descFor("*", "*", netaddr.PortRange{Lo: 0, Hi: 1000}), descFor("*", "*", p80), true},
		{"port subset", descFor("*", "*", p80), descFor("*", "*", netaddr.PortRange{Lo: 0, Hi: 1000}), false},
		{"self-subsumption", descFor("10.0.0.0/8", "*", p80), descFor("10.0.0.0/8", "*", p80), true},
	}
	for _, tt := range tests {
		if got := tt.a.Subsumes(tt.b); got != tt.want {
			t.Errorf("%s: Subsumes = %v, want %v", tt.name, got, tt.want)
		}
	}
	// Proto wildcard rules.
	a, b := NewDescriptor(), NewDescriptor()
	b.Proto = netaddr.ProtoTCP
	if !a.Subsumes(b) || b.Subsumes(a) {
		t.Error("proto subsumption wrong")
	}
}

func TestSubsumesImpliesMatchSubset(t *testing.T) {
	// Property: if a.Subsumes(b), then every random tuple matching b
	// also matches a.
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		a, b := randomDescriptor(rng), randomDescriptor(rng)
		if !a.Subsumes(b) {
			continue
		}
		for probe := 0; probe < 50; probe++ {
			ft := netaddr.FiveTuple{
				Src:     b.Src.Addr() + netaddr.Addr(rng.Intn(8)),
				Dst:     b.Dst.Addr() + netaddr.Addr(rng.Intn(8)),
				SrcPort: b.SrcPort.Lo,
				DstPort: b.DstPort.Lo,
				Proto:   netaddr.ProtoTCP,
			}
			if b.Proto != netaddr.ProtoAny {
				ft.Proto = b.Proto
			}
			if b.Matches(ft) && !a.Matches(ft) {
				t.Fatalf("a=%v subsumes b=%v but misses %v", a, b, ft)
			}
		}
	}
}

func TestDescriptorOverlapsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 300; trial++ {
		a, b := randomDescriptor(rng), randomDescriptor(rng)
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("Overlaps asymmetric for %v / %v", a, b)
		}
		// Subsumption implies overlap (descriptors are never empty).
		if a.Subsumes(b) && !a.Overlaps(b) {
			t.Fatalf("subsumes without overlap: %v / %v", a, b)
		}
	}
}

func TestLintShadowed(t *testing.T) {
	tbl := NewTable()
	tbl.Add(descFor("*", "128.40.0.0/16", netaddr.SinglePort(80)), ActionList{FuncFW, FuncIDS})
	// Fully inside the first policy, different actions: shadowed.
	tbl.Add(descFor("10.0.0.0/8", "128.40.7.0/24", netaddr.SinglePort(80)), ActionList{FuncIDS})
	findings := tbl.Lint()
	if len(findings) != 1 || findings[0].Kind != Shadowed {
		t.Fatalf("findings = %v", findings)
	}
	if findings[0].Later.ID != 1 || findings[0].Earlier.ID != 0 {
		t.Errorf("finding direction wrong: %v", findings[0])
	}
	if findings[0].String() == "" {
		t.Error("empty finding string")
	}
}

func TestLintRedundant(t *testing.T) {
	tbl := NewTable()
	tbl.Add(descFor("10.0.0.0/8", "*", netaddr.AnyPort()), ActionList{FuncFW})
	tbl.Add(descFor("10.4.0.0/16", "*", netaddr.SinglePort(80)), ActionList{FuncFW})
	findings := tbl.Lint()
	if len(findings) != 1 || findings[0].Kind != Redundant {
		t.Fatalf("findings = %v", findings)
	}
}

func TestLintConflicting(t *testing.T) {
	tbl := NewTable()
	// Overlap without subsumption: src narrows one way, dst the other.
	tbl.Add(descFor("10.0.0.0/8", "*", netaddr.SinglePort(80)), ActionList{FuncFW})
	tbl.Add(descFor("*", "128.40.0.0/16", netaddr.SinglePort(80)), ActionList{FuncIDS})
	findings := tbl.Lint()
	if len(findings) != 1 || findings[0].Kind != Conflicting {
		t.Fatalf("findings = %v", findings)
	}
}

func TestLintCleanTable(t *testing.T) {
	tbl := NewTable()
	tbl.Add(descFor("10.1.0.0/16", "*", netaddr.SinglePort(80)), ActionList{FuncFW})
	tbl.Add(descFor("10.2.0.0/16", "*", netaddr.SinglePort(80)), ActionList{FuncIDS})
	tbl.Add(descFor("10.3.0.0/16", "*", netaddr.SinglePort(443)), ActionList{FuncWP})
	if findings := tbl.Lint(); len(findings) != 0 {
		t.Errorf("clean table produced findings: %v", findings)
	}
}

func TestLintPaperTableIsClean(t *testing.T) {
	// The paper's Table I relies on first-match ordering: the permit
	// rules intentionally precede overlapping FW/IDS rules. Lint flags
	// those as conflicts (order-dependent behaviour), which is exactly
	// what an operator should review — but nothing is shadowed.
	tbl := paperTable(t)
	for _, f := range tbl.Lint() {
		if f.Kind == Shadowed || f.Kind == Redundant {
			t.Errorf("paper table has dead policy: %v", f)
		}
	}
}

func TestLintKindString(t *testing.T) {
	if Shadowed.String() != "shadowed" || Redundant.String() != "redundant" || Conflicting.String() != "conflicting" {
		t.Error("kind strings wrong")
	}
	if FindingKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func BenchmarkLint(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := NewTable()
	for i := 0; i < 200; i++ {
		tbl.Add(randomDescriptor(rng), ActionList{FuncFW})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lint()
	}
}
