package policy

import (
	"bytes"
	"strings"
	"testing"

	"sdme/internal/netaddr"
)

const paperRules = `
# Table I of the paper, subnet a = 128.40.0.0/16
128.40.0.0/16  128.40.0.0/16  *   80  permit
128.40.0.0/16  128.40.0.0/16  80  *   permit
*              128.40.0.0/16  *   80  FW,IDS
128.40.0.0/16  *              80  *   IDS,FW
128.40.0.0/16  *              *   80  FW,IDS,WP   # outbound web
*              128.40.0.0/16  80  *   WP,IDS,FW
`

func TestParseRulesPaperTable(t *testing.T) {
	tbl := NewTable()
	if err := ParseRules(strings.NewReader(paperRules), tbl); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 6 {
		t.Fatalf("parsed %d policies, want 6", tbl.Len())
	}
	// Same probes as TestPaperTableI.
	p := tbl.Match(tuple("128.40.1.1", "128.40.2.2", 5000, 80))
	if p == nil || !p.Actions.IsPermit() {
		t.Errorf("internal web: %v", p)
	}
	p = tbl.Match(tuple("128.40.1.1", "8.8.8.8", 4000, 80))
	if p == nil || p.Actions.String() != "FW -> IDS -> WP" {
		t.Errorf("outbound web: %v", p)
	}
}

func TestParseRulesFeatures(t *testing.T) {
	in := `
10.1.0.5 * 1000-2000 * FW proto=udp
* * * 53 IDS proto=17
`
	tbl := NewTable()
	if err := ParseRules(strings.NewReader(in), tbl); err != nil {
		t.Fatal(err)
	}
	// Bare address = /32.
	p0 := tbl.All()[0]
	if p0.Desc.Src.Bits() != 32 || p0.Desc.Src.Addr() != netaddr.MustParseAddr("10.1.0.5") {
		t.Errorf("host prefix: %v", p0.Desc.Src)
	}
	if p0.Desc.SrcPort != (netaddr.PortRange{Lo: 1000, Hi: 2000}) {
		t.Errorf("port range: %v", p0.Desc.SrcPort)
	}
	if p0.Desc.Proto != netaddr.ProtoUDP {
		t.Errorf("proto: %d", p0.Desc.Proto)
	}
	if tbl.All()[1].Desc.Proto != netaddr.ProtoUDP {
		t.Errorf("numeric proto: %d", tbl.All()[1].Desc.Proto)
	}
	ft := netaddr.FiveTuple{
		Src: netaddr.MustParseAddr("10.1.0.5"), Dst: netaddr.MustParseAddr("9.9.9.9"),
		SrcPort: 1500, DstPort: 99, Proto: netaddr.ProtoUDP,
	}
	if got := tbl.Match(ft); got == nil || got.ID != p0.ID {
		t.Errorf("match = %v", got)
	}
	ft.Proto = netaddr.ProtoTCP
	if tbl.Match(ft) != nil {
		t.Error("TCP flow matched a UDP-only rule")
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"too few fields", "* * *\n", "line 1"},
		{"bad src", "10.0.0.0/99 * * * FW\n", "src"},
		{"bad dst", "* banana * * FW\n", "dst"},
		{"bad port", "* * x * FW\n", "srcPort"},
		{"inverted range", "* * * 9-1 FW\n", "dstPort"},
		{"bad action", "* * * * NOPE\n", "unknown function"},
		{"bad proto", "* * * * FW proto=zzz\n", "protocol"},
		{"bad sixth field", "* * * * FW zzz\n", "proto="},
		{"error line number", "* * * 80 FW\n* * * * NOPE\n", "line 2"},
	}
	for _, tc := range cases {
		err := ParseRules(strings.NewReader(tc.in), NewTable())
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestFormatRulesRoundTrip(t *testing.T) {
	tbl := NewTable()
	if err := ParseRules(strings.NewReader(paperRules), tbl); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FormatRules(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	back := NewTable()
	if err := ParseRules(bytes.NewReader(buf.Bytes()), back); err != nil {
		t.Fatalf("re-parse of formatted rules: %v\n%s", err, buf.String())
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("round trip: %d vs %d policies", back.Len(), tbl.Len())
	}
	for i, p := range tbl.All() {
		q := back.All()[i]
		if p.Desc != q.Desc || !p.Actions.Equal(q.Actions) {
			t.Errorf("policy %d changed: %v vs %v", i, p, q)
		}
	}
}
