package policy

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sdme/internal/netaddr"
)

// Text format for policy lists, modeled on the paper's Table I. One
// policy per line, five whitespace-separated fields:
//
//	<src> <dst> <srcPort> <dstPort> <actions>
//
//	# web within the enterprise is permitted
//	128.40.0.0/16  128.40.0.0/16  *   80  permit
//	*              128.40.0.0/16  *   80  FW,IDS
//	128.40.0.0/16  *              *   80  FW,IDS,WP
//
// Prefixes are CIDR or "*"; ports are "*", a single port, or "lo-hi";
// actions are a comma-separated function list or "permit". An optional
// sixth field "proto=tcp|udp|icmp|<n>" restricts the protocol. Comments
// (#) and blank lines are ignored. Order in the file is match priority.

// ParseRules reads the text format into an existing table, appending in
// order. Errors carry 1-based line numbers.
func ParseRules(r io.Reader, tbl *Table) error {
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 5 || len(fields) > 6 {
			return fmt.Errorf("policy: line %d: want 5 or 6 fields, got %d", lineNo, len(fields))
		}
		d := NewDescriptor()
		var err error
		if d.Src, err = parsePrefixField(fields[0]); err != nil {
			return fmt.Errorf("policy: line %d: src: %w", lineNo, err)
		}
		if d.Dst, err = parsePrefixField(fields[1]); err != nil {
			return fmt.Errorf("policy: line %d: dst: %w", lineNo, err)
		}
		if d.SrcPort, err = parsePortField(fields[2]); err != nil {
			return fmt.Errorf("policy: line %d: srcPort: %w", lineNo, err)
		}
		if d.DstPort, err = parsePortField(fields[3]); err != nil {
			return fmt.Errorf("policy: line %d: dstPort: %w", lineNo, err)
		}
		actions, err := ParseActions(fields[4])
		if err != nil {
			return fmt.Errorf("policy: line %d: %w", lineNo, err)
		}
		if len(fields) == 6 {
			if d.Proto, err = parseProtoField(fields[5]); err != nil {
				return fmt.Errorf("policy: line %d: %w", lineNo, err)
			}
		}
		tbl.Add(d, actions)
	}
	return scanner.Err()
}

func parsePrefixField(s string) (netaddr.Prefix, error) {
	if s == "*" {
		return netaddr.AnyPrefix(), nil
	}
	if !strings.ContainsRune(s, '/') {
		// A bare address means a /32 host match.
		a, err := netaddr.ParseAddr(s)
		if err != nil {
			return netaddr.Prefix{}, err
		}
		return netaddr.PrefixFrom(a, 32), nil
	}
	return netaddr.ParsePrefix(s)
}

func parsePortField(s string) (netaddr.PortRange, error) {
	if s == "*" {
		return netaddr.AnyPort(), nil
	}
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		l, err1 := strconv.ParseUint(lo, 10, 16)
		h, err2 := strconv.ParseUint(hi, 10, 16)
		if err1 != nil || err2 != nil || l > h {
			return netaddr.PortRange{}, fmt.Errorf("bad port range %q", s)
		}
		return netaddr.PortRange{Lo: uint16(l), Hi: uint16(h)}, nil
	}
	p, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return netaddr.PortRange{}, fmt.Errorf("bad port %q", s)
	}
	return netaddr.SinglePort(uint16(p)), nil
}

func parseProtoField(s string) (uint8, error) {
	v, ok := strings.CutPrefix(s, "proto=")
	if !ok {
		return 0, fmt.Errorf("bad field %q (want proto=...)", s)
	}
	switch strings.ToLower(v) {
	case "any", "*":
		return netaddr.ProtoAny, nil
	case "tcp":
		return netaddr.ProtoTCP, nil
	case "udp":
		return netaddr.ProtoUDP, nil
	case "icmp":
		return netaddr.ProtoICMP, nil
	}
	n, err := strconv.ParseUint(v, 10, 8)
	if err != nil {
		return 0, fmt.Errorf("bad protocol %q", v)
	}
	return uint8(n), nil
}

// FormatRules renders the table back into the text format, one policy
// per line, preserving order. ParseRules(FormatRules(t)) reproduces t.
func FormatRules(w io.Writer, tbl *Table) error {
	for _, p := range tbl.All() {
		src, dst := p.Desc.Src.String(), p.Desc.Dst.String()
		if p.Desc.Src.IsAny() {
			src = "*"
		}
		if p.Desc.Dst.IsAny() {
			dst = "*"
		}
		actions := strings.ReplaceAll(p.Actions.String(), " -> ", ",")
		line := fmt.Sprintf("%s %s %s %s %s", src, dst, p.Desc.SrcPort, p.Desc.DstPort, actions)
		if p.Desc.Proto != netaddr.ProtoAny {
			line += " proto=" + netaddr.ProtoString(p.Desc.Proto)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
