package policy

import (
	"fmt"

	"sdme/internal/netaddr"
)

// Lint findings for ordered first-match policy lists. Because matching is
// first-match (§II), an earlier policy whose descriptor subsumes a later
// one makes the later policy dead — a classic operator error this
// analyzer surfaces before the controller distributes P_x.

// Subsumes reports whether every packet matching the other descriptor
// also matches d (d is a superset).
func (d Descriptor) Subsumes(other Descriptor) bool {
	return prefixSubsumes(d.Src, other.Src) &&
		prefixSubsumes(d.Dst, other.Dst) &&
		portSubsumes(d.SrcPort, other.SrcPort) &&
		portSubsumes(d.DstPort, other.DstPort) &&
		(d.Proto == netaddr.ProtoAny || d.Proto == other.Proto)
}

func prefixSubsumes(a, b netaddr.Prefix) bool {
	return a.Bits() <= b.Bits() && a.Contains(b.Addr())
}

func portSubsumes(a, b netaddr.PortRange) bool {
	return a.Lo <= b.Lo && b.Hi <= a.Hi
}

// Overlaps reports whether some packet can match both descriptors.
func (d Descriptor) Overlaps(other Descriptor) bool {
	return d.Src.Overlaps(other.Src) &&
		d.Dst.Overlaps(other.Dst) &&
		rangesOverlap(d.SrcPort, other.SrcPort) &&
		rangesOverlap(d.DstPort, other.DstPort) &&
		(d.Proto == netaddr.ProtoAny || other.Proto == netaddr.ProtoAny || d.Proto == other.Proto)
}

func rangesOverlap(a, b netaddr.PortRange) bool {
	return a.Lo <= b.Hi && b.Lo <= a.Hi
}

// FindingKind classifies a lint finding.
type FindingKind int

// Lint finding kinds.
const (
	// Shadowed: the later policy can never match — an earlier policy
	// subsumes its descriptor, so first-match always stops earlier.
	Shadowed FindingKind = iota + 1
	// Redundant: the later policy is shadowed AND prescribes the same
	// action list, so removing it changes nothing at all.
	Redundant
	// Conflicting: two overlapping (but not subsuming) policies
	// prescribe different action lists; which one applies depends on
	// order, which deserves a human look.
	Conflicting
)

// String renders the kind.
func (k FindingKind) String() string {
	switch k {
	case Shadowed:
		return "shadowed"
	case Redundant:
		return "redundant"
	case Conflicting:
		return "conflicting"
	default:
		return fmt.Sprintf("finding(%d)", int(k))
	}
}

// Finding is one lint result: Later is affected by Earlier.
type Finding struct {
	Kind           FindingKind
	Earlier, Later *Policy
}

// String renders the finding for operator output.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %v %s by %v", f.Kind, f.Later, f.Kind, f.Earlier)
}

// Lint analyzes the table's ordered policies and returns all findings,
// ordered by the later policy's priority. Shadowed/redundant findings
// report only the FIRST earlier policy responsible (one is enough to
// prove deadness); conflict findings are reported pairwise.
func (t *Table) Lint() []Finding {
	var out []Finding
	ps := t.policies
	for j := 1; j < len(ps); j++ {
		dead := false
		for i := 0; i < j; i++ {
			if ps[i].Desc.Subsumes(ps[j].Desc) {
				kind := Shadowed
				if ps[i].Actions.Equal(ps[j].Actions) {
					kind = Redundant
				}
				out = append(out, Finding{Kind: kind, Earlier: ps[i], Later: ps[j]})
				dead = true
				break
			}
		}
		if dead {
			continue
		}
		for i := 0; i < j; i++ {
			if ps[i].Desc.Overlaps(ps[j].Desc) &&
				!ps[i].Desc.Subsumes(ps[j].Desc) &&
				!ps[i].Actions.Equal(ps[j].Actions) {
				out = append(out, Finding{Kind: Conflicting, Earlier: ps[i], Later: ps[j]})
			}
		}
	}
	return out
}
