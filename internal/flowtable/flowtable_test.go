package flowtable

import (
	"testing"
	"testing/quick"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
)

func ft(n uint32) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: netaddr.Addr(n), Dst: netaddr.Addr(n + 1),
		SrcPort: uint16(n), DstPort: 80, Proto: netaddr.ProtoTCP,
	}
}

var actFWIDS = policy.ActionList{policy.FuncFW, policy.FuncIDS}

func TestInsertLookup(t *testing.T) {
	tbl := NewTable(100)
	if _, ok := tbl.Lookup(ft(1), 0); ok {
		t.Fatal("lookup on empty table should miss")
	}
	tbl.Insert(ft(1), 7, actFWIDS, 0)
	e, ok := tbl.Lookup(ft(1), 10)
	if !ok || e.PolicyID != 7 || !e.Actions.Equal(actFWIDS) || e.Null {
		t.Fatalf("entry = %+v, ok=%v", e, ok)
	}
	s := tbl.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserted != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNullEntry(t *testing.T) {
	tbl := NewTable(100)
	tbl.InsertNull(ft(2), 0)
	e, ok := tbl.Lookup(ft(2), 5)
	if !ok || !e.Null {
		t.Fatalf("null entry = %+v, ok=%v", e, ok)
	}
	if tbl.Stats().NullHits != 1 || tbl.Stats().Hits != 0 {
		t.Errorf("stats = %+v", tbl.Stats())
	}
}

func TestTTLExpiry(t *testing.T) {
	tbl := NewTable(100)
	tbl.Insert(ft(1), 1, actFWIDS, 0)
	if _, ok := tbl.Lookup(ft(1), 100); !ok {
		t.Fatal("entry at exactly TTL should live")
	}
	// Lookup refreshed lastHit to 100, so the entry lives until 200.
	if _, ok := tbl.Lookup(ft(1), 201); ok {
		t.Fatal("entry should expire 100 ticks after last hit")
	}
	if tbl.Len() != 0 {
		t.Error("expired entry should be deleted on lookup")
	}
	if tbl.Stats().Expired != 1 {
		t.Errorf("stats = %+v", tbl.Stats())
	}
}

func TestTTLDisabled(t *testing.T) {
	tbl := NewTable(0)
	tbl.Insert(ft(1), 1, actFWIDS, 0)
	if _, ok := tbl.Lookup(ft(1), 1<<60); !ok {
		t.Error("ttl<=0 must disable expiry")
	}
}

func TestSweep(t *testing.T) {
	tbl := NewTable(10)
	for i := uint32(0); i < 5; i++ {
		tbl.Insert(ft(i), int(i), actFWIDS, int64(i))
	}
	// At now=12, entries with lastHit 0 and 1 are expired (>10 old).
	if n := tbl.Sweep(12); n != 2 {
		t.Errorf("Sweep evicted %d, want 2", n)
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d, want 3", tbl.Len())
	}
}

func TestAllocLabelUnique(t *testing.T) {
	tbl := NewTable(0)
	seen := map[uint16]bool{}
	for i := uint32(0); i < 1000; i++ {
		e := tbl.Insert(ft(i), 0, actFWIDS, 0)
		l := tbl.AllocLabel(e)
		if l == 0 {
			t.Fatal("label allocation failed")
		}
		if seen[l] {
			t.Fatalf("duplicate label %d", l)
		}
		seen[l] = true
	}
}

func TestAllocLabelIdempotent(t *testing.T) {
	tbl := NewTable(0)
	e := tbl.Insert(ft(1), 0, actFWIDS, 0)
	l1 := tbl.AllocLabel(e)
	l2 := tbl.AllocLabel(e)
	if l1 != l2 {
		t.Errorf("AllocLabel not idempotent: %d then %d", l1, l2)
	}
}

func TestAllocLabelReusesAfterExpiry(t *testing.T) {
	tbl := NewTable(10)
	e := tbl.Insert(ft(1), 0, actFWIDS, 0)
	l := tbl.AllocLabel(e)
	tbl.Sweep(100) // expire the flow
	e2 := tbl.Insert(ft(2), 0, actFWIDS, 100)
	// The freed label must eventually be allocatable again; allocate
	// until wrap-around would hit it.
	for i := 0; i < 0x10000; i++ {
		got := tbl.AllocLabel(e2)
		if got == l {
			return
		}
		e2.Label = 0 // force a fresh allocation on the same entry
	}
	t.Errorf("label %d never reused after expiry", l)
}

func TestFlagLabelSwitched(t *testing.T) {
	tbl := NewTable(100)
	e := tbl.Insert(ft(1), 0, actFWIDS, 0)
	if e.LabelSwitched {
		t.Fatal("fresh entry should not be label-switched")
	}
	if !tbl.FlagLabelSwitched(ft(1), 5) {
		t.Fatal("flagging existing flow should succeed")
	}
	if !e.LabelSwitched {
		t.Error("entry not flagged")
	}
	if tbl.FlagLabelSwitched(ft(99), 5) {
		t.Error("flagging unknown flow should fail")
	}
	// Flagging an expired flow fails too.
	tbl.Insert(ft(2), 0, actFWIDS, 0)
	if tbl.FlagLabelSwitched(ft(2), 500) {
		t.Error("flagging expired flow should fail")
	}
}

func TestLabelTableBasics(t *testing.T) {
	lt := NewLabelTable(100)
	k := LabelKey{Src: netaddr.MustParseAddr("10.1.0.5"), Label: 42}
	if _, ok := lt.Lookup(k, 0); ok {
		t.Fatal("empty table should miss")
	}
	lt.Insert(k, 3, actFWIDS, ft(1), 0)
	e, ok := lt.Lookup(k, 10)
	if !ok || e.PolicyID != 3 || e.HasDst {
		t.Fatalf("entry = %+v, ok=%v", e, ok)
	}

	// Tail entry carries the destination.
	k2 := LabelKey{Src: k.Src, Label: 43}
	dst := netaddr.MustParseAddr("8.8.8.8")
	lt.InsertTail(k2, 3, actFWIDS, netaddr.FiveTuple{Src: k.Src, Dst: dst}, 0)
	e2, ok := lt.Lookup(k2, 10)
	if !ok || !e2.HasDst || e2.Dst != dst {
		t.Fatalf("tail entry = %+v, ok=%v", e2, ok)
	}
	if lt.Len() != 2 {
		t.Errorf("Len = %d", lt.Len())
	}
}

func TestLabelTableKeyIsolation(t *testing.T) {
	// Same label from two different source proxies must not collide —
	// that is why the key is ⟨src | l⟩.
	lt := NewLabelTable(0)
	a := LabelKey{Src: netaddr.MustParseAddr("10.1.0.2"), Label: 7}
	b := LabelKey{Src: netaddr.MustParseAddr("10.2.0.2"), Label: 7}
	lt.Insert(a, 1, actFWIDS, ft(1), 0)
	lt.Insert(b, 2, policy.ActionList{policy.FuncIDS}, ft(2), 0)
	ea, _ := lt.Lookup(a, 0)
	eb, _ := lt.Lookup(b, 0)
	if ea.PolicyID == eb.PolicyID {
		t.Error("entries for different sources collided")
	}
}

func TestLabelTableExpiry(t *testing.T) {
	lt := NewLabelTable(50)
	k := LabelKey{Src: 1, Label: 1}
	lt.Insert(k, 0, actFWIDS, ft(1), 0)
	if _, ok := lt.Lookup(k, 100); ok {
		t.Error("expired label entry returned")
	}
	lt.Insert(k, 0, actFWIDS, ft(1), 100)
	if n := lt.Sweep(200); n != 1 {
		t.Errorf("Sweep = %d, want 1", n)
	}
	if lt.Stats().Expired != 2 {
		t.Errorf("stats = %+v", lt.Stats())
	}
}

func TestLookupRefreshProperty(t *testing.T) {
	// Property: a flow looked up at least every ttl ticks never expires.
	f := func(steps []uint8) bool {
		const ttl = 50
		tbl := NewTable(ttl)
		tbl.Insert(ft(1), 0, actFWIDS, 0)
		now := int64(0)
		for _, s := range steps {
			now += int64(s % ttl) // every gap < ttl
			if _, ok := tbl.Lookup(ft(1), now); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFlowTableLookup(b *testing.B) {
	tbl := NewTable(1 << 40)
	for i := uint32(0); i < 10000; i++ {
		tbl.Insert(ft(i), int(i), actFWIDS, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(ft(uint32(i)%10000), int64(i)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkLabelTableLookup(b *testing.B) {
	lt := NewLabelTable(1 << 40)
	for i := 0; i < 10000; i++ {
		lt.Insert(LabelKey{Src: netaddr.Addr(i), Label: uint16(i)}, i, actFWIDS, ft(uint32(i)), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := LabelKey{Src: netaddr.Addr(i % 10000), Label: uint16(i % 10000)}
		if _, ok := lt.Lookup(k, int64(i)); !ok {
			b.Fatal("miss")
		}
	}
}

func TestInvalidateProviderPurgesOnlyPinnedMatches(t *testing.T) {
	tbl := NewTable(0)
	tbl.Insert(ft(1), 1, actFWIDS, 0).Pin(5)
	tbl.Insert(ft(2), 1, actFWIDS, 0).Pin(5)
	tbl.Insert(ft(3), 1, actFWIDS, 0).Pin(6)
	tbl.Insert(ft(4), 1, actFWIDS, 0) // never forwarded: unpinned
	tbl.InsertNull(ft(5), 0)

	if n := tbl.InvalidateProvider(5); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if tbl.Len() != 3 {
		t.Errorf("len = %d, want 3", tbl.Len())
	}
	for _, gone := range []uint32{1, 2} {
		if _, ok := tbl.Lookup(ft(gone), 0); ok {
			t.Errorf("entry %d survived its provider's death", gone)
		}
	}
	for _, kept := range []uint32{3, 4, 5} {
		if _, ok := tbl.Lookup(ft(kept), 0); !ok {
			t.Errorf("unrelated entry %d was purged", kept)
		}
	}
	if tbl.Stats().Invalidated != 2 {
		t.Errorf("stats = %+v", tbl.Stats())
	}
	// Repeat purge is a no-op.
	if n := tbl.InvalidateProvider(5); n != 0 {
		t.Errorf("second purge removed %d", n)
	}
}

func TestInvalidateIfCustomPredicate(t *testing.T) {
	tbl := NewTable(0)
	a := tbl.Insert(ft(1), 1, actFWIDS, 0)
	a.LabelSwitched = true
	tbl.Insert(ft(2), 2, actFWIDS, 0)
	if n := tbl.InvalidateIf(func(e *Entry) bool { return e.LabelSwitched }); n != 1 {
		t.Fatalf("invalidated %d, want 1", n)
	}
	if _, ok := tbl.Lookup(ft(1), 0); ok {
		t.Error("label-switched entry survived predicate purge")
	}
	if _, ok := tbl.Lookup(ft(2), 0); !ok {
		t.Error("non-matching entry purged")
	}
}

func TestLabelTableInvalidateProvider(t *testing.T) {
	tbl := NewLabelTable(0)
	k1 := LabelKey{Src: 10, Label: 1}
	k2 := LabelKey{Src: 10, Label: 2}
	k3 := LabelKey{Src: 11, Label: 1}
	tbl.Insert(k1, 1, actFWIDS, ft(1), 0).Pin(7)
	tbl.Insert(k2, 1, actFWIDS, ft(2), 0).Pin(8)
	tbl.InsertTail(k3, 1, actFWIDS, ft(3), 0) // tail: unpinned

	if n := tbl.InvalidateProvider(7); n != 1 {
		t.Fatalf("invalidated %d, want 1", n)
	}
	if _, ok := tbl.Lookup(k1, 0); ok {
		t.Error("entry chained through dead provider survived")
	}
	if _, ok := tbl.Lookup(k2, 0); !ok {
		t.Error("entry chained through live provider purged")
	}
	if _, ok := tbl.Lookup(k3, 0); !ok {
		t.Error("tail entry purged")
	}
	if tbl.Stats().Invalidated != 1 {
		t.Errorf("stats = %+v", tbl.Stats())
	}
}
