package flowtable

// Property test: randomized operation sequences run against the sharded
// table and an independent single-map reference model must produce
// identical observable state — return values, lengths, stats — at every
// step, across shard counts 1, 2 and 64. Labels are compared by presence
// and table-wide uniqueness, not value: the sharded allocator partitions
// the label space by stride, so the values legitimately differ from any
// sequential reference.

import (
	"math/rand"
	"testing"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// refEntry mirrors Entry's observable fields.
type refEntry struct {
	policyID      int
	actions       policy.ActionList
	null          bool
	hasLabel      bool
	labelSwitched bool
	nextHop       topo.NodeID
	pinned        bool
	lastHit       int64
}

// refTable is the single-map reference model of Table.
type refTable struct {
	ttl     int64
	entries map[netaddr.FiveTuple]*refEntry
	stats   Stats
}

func newRefTable(ttl int64) *refTable {
	return &refTable{ttl: ttl, entries: make(map[netaddr.FiveTuple]*refEntry)}
}

func (r *refTable) expired(e *refEntry, now int64) bool {
	return r.ttl > 0 && now-e.lastHit > r.ttl
}

func (r *refTable) lookup(ft netaddr.FiveTuple, now int64) (*refEntry, bool) {
	e, ok := r.entries[ft]
	if !ok {
		r.stats.Misses++
		return nil, false
	}
	if r.expired(e, now) {
		delete(r.entries, ft)
		e.hasLabel = false
		r.stats.Expired++
		r.stats.Misses++
		return nil, false
	}
	e.lastHit = now
	if e.null {
		r.stats.NullHits++
	} else {
		r.stats.Hits++
	}
	return e, true
}

func (r *refTable) insert(ft netaddr.FiveTuple, policyID int, actions policy.ActionList, null bool, now int64) *refEntry {
	e := &refEntry{policyID: policyID, actions: actions, null: null, lastHit: now}
	r.entries[ft] = e
	r.stats.Inserted++
	return e
}

func (r *refTable) allocLabel(e *refEntry) {
	// The reference never exhausts: sequences are far smaller than any
	// shard's label slice, so the real table must agree.
	e.hasLabel = true
}

func (r *refTable) flagLabelSwitched(ft netaddr.FiveTuple, now int64) bool {
	e, ok := r.entries[ft]
	if !ok || r.expired(e, now) {
		return false
	}
	e.labelSwitched = true
	e.lastHit = now
	return true
}

func (r *refTable) invalidateIf(pred func(*refEntry) bool) int {
	n := 0
	for ft, e := range r.entries {
		if pred(e) {
			delete(r.entries, ft)
			e.hasLabel = false
			n++
			r.stats.Invalidated++
		}
	}
	return n
}

func (r *refTable) sweep(now int64) int {
	n := 0
	for ft, e := range r.entries {
		if r.expired(e, now) {
			delete(r.entries, ft)
			e.hasLabel = false
			n++
			r.stats.Expired++
		}
	}
	return n
}

func propFlow(i int) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: netaddr.Addr(0x0a010000 + i), Dst: netaddr.Addr(0x0a020000 + i%7),
		SrcPort: uint16(10000 + i), DstPort: 80, Proto: netaddr.ProtoTCP,
	}
}

func comparePropState(t *testing.T, seed int64, step int, tbl *Table, ref *refTable) {
	t.Helper()
	if tbl.Len() != len(ref.entries) {
		t.Fatalf("seed %d step %d: Len = %d, ref = %d", seed, step, tbl.Len(), len(ref.entries))
	}
	if got, want := tbl.Stats(), ref.stats; got != want {
		t.Fatalf("seed %d step %d: stats = %+v, ref = %+v", seed, step, got, want)
	}
}

func TestShardedTableMatchesReferenceModel(t *testing.T) {
	const (
		sequences = 1000
		steps     = 60
		universe  = 24
		ttl       = 50
	)
	actions := policy.ActionList{policy.FuncFW, policy.FuncIDS}
	for _, shards := range []int{1, 2, 64} {
		for seq := 0; seq < sequences; seq++ {
			seed := int64(shards)*1_000_000 + int64(seq)
			rng := rand.New(rand.NewSource(seed))
			tbl := NewTableSharded(ttl, shards)
			ref := newRefTable(ttl)
			now := int64(0)

			for step := 0; step < steps; step++ {
				ft := propFlow(rng.Intn(universe))
				switch op := rng.Intn(100); {
				case op < 30: // Lookup
					e, ok := tbl.Lookup(ft, now)
					re, rok := ref.lookup(ft, now)
					if ok != rok {
						t.Fatalf("seed %d step %d: Lookup found=%v, ref=%v", seed, step, ok, rok)
					}
					if ok {
						if e.PolicyID != re.policyID || e.Null != re.null ||
							e.LabelSwitched != re.labelSwitched || e.Pinned != re.pinned ||
							(e.Label != 0) != re.hasLabel {
							t.Fatalf("seed %d step %d: entry mismatch: %+v vs ref %+v", seed, step, e, re)
						}
						if e.Pinned && e.NextHop != re.nextHop {
							t.Fatalf("seed %d step %d: NextHop %v vs ref %v", seed, step, e.NextHop, re.nextHop)
						}
					}
				case op < 45: // Insert
					pid := rng.Intn(5)
					tbl.Insert(ft, pid, actions, now)
					ref.insert(ft, pid, actions, false, now)
				case op < 55: // InsertNull
					tbl.InsertNull(ft, now)
					ref.insert(ft, 0, nil, true, now)
				case op < 70: // Lookup-then-AllocLabel (the dataplane's pattern)
					e, ok := tbl.Lookup(ft, now)
					re, rok := ref.lookup(ft, now)
					if ok != rok {
						t.Fatalf("seed %d step %d: pre-alloc Lookup diverged", seed, step)
					}
					if ok {
						if l := tbl.AllocLabel(e); l == 0 {
							t.Fatalf("seed %d step %d: AllocLabel exhausted unexpectedly", seed, step)
						}
						ref.allocLabel(re)
					}
				case op < 78: // FlagLabelSwitched
					if got, want := tbl.FlagLabelSwitched(ft, now), ref.flagLabelSwitched(ft, now); got != want {
						t.Fatalf("seed %d step %d: FlagLabelSwitched = %v, ref = %v", seed, step, got, want)
					}
				case op < 86: // Lookup-then-Pin
					e, ok := tbl.Lookup(ft, now)
					re, rok := ref.lookup(ft, now)
					if ok != rok {
						t.Fatalf("seed %d step %d: pre-pin Lookup diverged", seed, step)
					}
					if ok {
						mb := topo.NodeID(rng.Intn(4) + 1)
						tbl.PinEntry(e, mb)
						re.nextHop, re.pinned = mb, true
					}
				case op < 92: // InvalidateIf (pinned-to-mb, the failover purge)
					mb := topo.NodeID(rng.Intn(4) + 1)
					got := tbl.InvalidateIf(func(e *Entry) bool { return e.Pinned && e.NextHop == mb })
					want := ref.invalidateIf(func(e *refEntry) bool { return e.pinned && e.nextHop == mb })
					if got != want {
						t.Fatalf("seed %d step %d: InvalidateIf = %d, ref = %d", seed, step, got, want)
					}
				default: // Sweep after a time jump
					now += int64(rng.Intn(ttl * 2))
					if got, want := tbl.Sweep(now), ref.sweep(now); got != want {
						t.Fatalf("seed %d step %d: Sweep = %d, ref = %d", seed, step, got, want)
					}
				}
				now += int64(rng.Intn(5))
				comparePropState(t, seed, step, tbl, ref)
			}

			// Final: live labels must be pairwise distinct and agree with
			// the reference on presence (checked after the step loop so
			// the verification Lookups don't desynchronize stats).
			seen := make(map[uint16]netaddr.FiveTuple)
			for i := 0; i < universe; i++ {
				ft := propFlow(i)
				e, ok := tbl.Lookup(ft, now)
				re, rok := ref.lookup(ft, now)
				if ok != rok {
					t.Fatalf("seed %d: final Lookup diverged for %v", seed, ft)
				}
				if !ok {
					continue
				}
				if (e.Label != 0) != re.hasLabel {
					t.Fatalf("seed %d: label presence mismatch for %v", seed, ft)
				}
				if e.Label != 0 {
					if prev, dup := seen[e.Label]; dup {
						t.Fatalf("seed %d: duplicate label %d on %v and %v", seed, e.Label, prev, ft)
					}
					seen[e.Label] = ft
				}
			}
		}
	}
}

// refLabelTable is the single-map reference model of LabelTable.
type refLabelTable struct {
	ttl     int64
	entries map[LabelKey]*refLabelEntry
	stats   Stats
}

type refLabelEntry struct {
	policyID int
	flow     netaddr.FiveTuple
	dst      netaddr.Addr
	hasDst   bool
	nextHop  topo.NodeID
	pinned   bool
	lastHit  int64
}

func newRefLabelTable(ttl int64) *refLabelTable {
	return &refLabelTable{ttl: ttl, entries: make(map[LabelKey]*refLabelEntry)}
}

func (r *refLabelTable) lookup(k LabelKey, now int64) (*refLabelEntry, bool) {
	e, ok := r.entries[k]
	if !ok {
		r.stats.Misses++
		return nil, false
	}
	if r.ttl > 0 && now-e.lastHit > r.ttl {
		delete(r.entries, k)
		r.stats.Expired++
		r.stats.Misses++
		return nil, false
	}
	e.lastHit = now
	r.stats.Hits++
	return e, true
}

func (r *refLabelTable) insert(k LabelKey, pid int, flow netaddr.FiveTuple, tail bool, now int64) *refLabelEntry {
	e := &refLabelEntry{policyID: pid, flow: flow, lastHit: now}
	if tail {
		e.dst, e.hasDst = flow.Dst, true
	}
	r.entries[k] = e
	r.stats.Inserted++
	return e
}

func (r *refLabelTable) invalidateIf(pred func(*refLabelEntry) bool) int {
	n := 0
	for k, e := range r.entries {
		if pred(e) {
			delete(r.entries, k)
			n++
			r.stats.Invalidated++
		}
	}
	return n
}

func (r *refLabelTable) sweep(now int64) int {
	n := 0
	for k, e := range r.entries {
		if r.ttl > 0 && now-e.lastHit > r.ttl {
			delete(r.entries, k)
			n++
			r.stats.Expired++
		}
	}
	return n
}

func TestShardedLabelTableMatchesReferenceModel(t *testing.T) {
	const (
		sequences = 1000
		steps     = 50
		universe  = 20
		ttl       = 40
	)
	actions := policy.ActionList{policy.FuncIDS, policy.FuncWP}
	key := func(i int) LabelKey {
		return LabelKey{Src: netaddr.Addr(0x0a010000 + i%5), Label: uint16(100 + i)}
	}
	for _, shards := range []int{1, 2, 64} {
		for seq := 0; seq < sequences; seq++ {
			seed := int64(shards)*2_000_000 + int64(seq)
			rng := rand.New(rand.NewSource(seed))
			tbl := NewLabelTableSharded(ttl, shards)
			ref := newRefLabelTable(ttl)
			now := int64(0)

			for step := 0; step < steps; step++ {
				i := rng.Intn(universe)
				k := key(i)
				flow := propFlow(i)
				switch op := rng.Intn(100); {
				case op < 35: // Lookup
					e, ok := tbl.Lookup(k, now)
					re, rok := ref.lookup(k, now)
					if ok != rok {
						t.Fatalf("seed %d step %d: Lookup found=%v ref=%v", seed, step, ok, rok)
					}
					if ok && (e.PolicyID != re.policyID || e.Flow != re.flow ||
						e.HasDst != re.hasDst || e.Pinned != re.pinned) {
						t.Fatalf("seed %d step %d: entry mismatch %+v vs %+v", seed, step, e, re)
					}
				case op < 55: // Insert (mid-chain)
					pid := rng.Intn(4)
					tbl.Insert(k, pid, actions, flow, now)
					ref.insert(k, pid, flow, false, now)
				case op < 70: // InsertTail
					pid := rng.Intn(4)
					tbl.InsertTail(k, pid, actions, flow, now)
					ref.insert(k, pid, flow, true, now)
				case op < 80: // Lookup-then-Pin
					e, ok := tbl.Lookup(k, now)
					re, rok := ref.lookup(k, now)
					if ok != rok {
						t.Fatalf("seed %d step %d: pre-pin Lookup diverged", seed, step)
					}
					if ok {
						mb := topo.NodeID(rng.Intn(3) + 1)
						tbl.PinEntry(e, mb)
						re.nextHop, re.pinned = mb, true
					}
				case op < 90: // InvalidateIf
					mb := topo.NodeID(rng.Intn(3) + 1)
					got := tbl.InvalidateIf(func(e *LabelEntry) bool { return e.Pinned && e.NextHop == mb })
					want := ref.invalidateIf(func(e *refLabelEntry) bool { return e.pinned && e.nextHop == mb })
					if got != want {
						t.Fatalf("seed %d step %d: InvalidateIf = %d, ref = %d", seed, step, got, want)
					}
				default: // Sweep after a time jump
					now += int64(rng.Intn(ttl * 2))
					if got, want := tbl.Sweep(now), ref.sweep(now); got != want {
						t.Fatalf("seed %d step %d: Sweep = %d, ref = %d", seed, step, got, want)
					}
				}
				now += int64(rng.Intn(4))
				if tbl.Len() != len(ref.entries) {
					t.Fatalf("seed %d step %d: Len = %d, ref = %d", seed, step, tbl.Len(), len(ref.entries))
				}
				if got, want := tbl.Stats(), ref.stats; got != want {
					t.Fatalf("seed %d step %d: stats = %+v, ref = %+v", seed, step, got, want)
				}
			}
		}
	}
}
