// Package flowtable implements the two per-node soft-state tables the
// paper adds to proxies and middleboxes:
//
//   - the flow hash table of §III-D, mapping a 5-tuple to its resolved
//     action list so the multi-field policy lookup runs at most once per
//     flow — including negative ("null") entries for flows that match no
//     policy;
//   - the label table of §III-E, mapping ⟨source address | label⟩ to the
//     action list (plus, at the chain's last middlebox, the flow's real
//     destination) so subsequent packets can be label-switched without an
//     outer IP header.
//
// Both tables are soft state: entries expire after a TTL without hits.
// Time is an explicit int64 tick supplied by the caller, so the same code
// runs under the discrete-event simulator's virtual clock and the live
// runtime's wall clock.
//
// Both tables are lock-striped into a power-of-two number of shards keyed
// by an FNV-1a hash of the FiveTuple / LabelKey, so concurrent dataplane
// workers contend only when their flows collide on a shard. Every method
// holds at most one shard lock at a time — including InvalidateIf and
// Sweep, which visit shards one by one — so a table-wide purge never
// stalls the whole hot path at once. The single-shard form (NewTable /
// NewLabelTable) preserves the original single-map behaviour for the
// discrete-event simulator's single-owner nodes.
package flowtable

import (
	"sync"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// MaxShards bounds the shard count; requests are rounded up to the next
// power of two and clamped to [1, MaxShards].
const MaxShards = 256

// shardSeed salts the shard-selection hash so it is independent of the
// dataplane's selection hashes (which also FNV the tuple).
const shardSeed = 0x736861726431 // "shard1"

// normShards rounds n up to a power of two in [1, MaxShards].
func normShards(n int) int {
	if n <= 1 {
		return 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Entry is one flow-table record. Null entries cache "no policy matched".
//
// Concurrency: the fields are plain (not atomic) because every mutation
// after insert happens either under the owning shard's lock (lastHit via
// Lookup, Label via AllocLabel, LabelSwitched via FlagLabelSwitched,
// NextHop/Pinned via Table.PinEntry) or from the single goroutine that
// owns the flow (the live runtime dispatches all packets of a flow to one
// worker). Direct field writes remain fine for single-owner tables.
type Entry struct {
	Flow     netaddr.FiveTuple
	PolicyID int
	Actions  policy.ActionList
	Null     bool
	// Label is the locally unique label the proxy assigned to the flow
	// (0 = none allocated).
	Label uint16
	// LabelSwitched is flipped when the tail middlebox's control packet
	// arrives; from then on packets are label-switched, not tunneled.
	LabelSwitched bool
	// NextHop pins the middlebox this flow was last forwarded to (the
	// chain's first hop at a proxy); Pinned reports whether it is set.
	// Local fast failover uses the pin to purge flows riding a provider
	// that has since died, instead of waiting for the TTL.
	NextHop topo.NodeID
	Pinned  bool
	lastHit int64
}

// Pin records the provider the flow was steered to. Callers sharing the
// table across goroutines must use Table.PinEntry instead, which takes
// the shard lock so InvalidateIf predicates never observe a torn pin.
func (e *Entry) Pin(mb topo.NodeID) {
	e.NextHop = mb
	e.Pinned = true
}

// Stats counts table activity; the §III-D ablation benchmark reads these.
type Stats struct {
	Hits, Misses, NullHits int
	Inserted, Expired      int
	// Invalidated counts entries purged by InvalidateProvider /
	// InvalidateIf (failover purges, not TTL expiry).
	Invalidated int
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.NullHits += o.NullHits
	s.Inserted += o.Inserted
	s.Expired += o.Expired
	s.Invalidated += o.Invalidated
}

// labelAlloc hands out the labels a shard owns: the arithmetic
// progression first, first+stride, … ≤ MaxLabel, plus a free-list of
// labels returned when their entries were deleted. The free-list replaces
// the original implementation's per-call scan of every live entry, so
// allocation is O(1) and — past the free-list's initial growth —
// allocation-free, and Sweep stays allocation-free while reclaiming
// labels (the fix for the old Sweep-sized inUse map).
type labelAlloc struct {
	next   uint32 // next never-issued label; > MaxLabel when exhausted
	stride uint32
	free   []uint16
}

const maxLabel = 0xffff

func (a *labelAlloc) init(first, stride int) {
	a.next = uint32(first)
	a.stride = uint32(stride)
	a.free = make([]uint16, 0, 16)
}

func (a *labelAlloc) get() uint16 {
	if n := len(a.free) - 1; n >= 0 {
		l := a.free[n]
		a.free = a.free[:n]
		return l
	}
	if a.next > maxLabel {
		return 0
	}
	l := uint16(a.next)
	a.next += a.stride
	return l
}

func (a *labelAlloc) put(l uint16) {
	if l != 0 {
		a.free = append(a.free, l)
	}
}

// tableShard is one lock stripe of a Table.
type tableShard struct {
	mu      sync.Mutex
	entries map[netaddr.FiveTuple]*Entry
	alloc   labelAlloc
	stats   Stats
}

// Table is the flow hash table. All methods are safe for concurrent use;
// entries returned by Lookup/Insert may be mutated only by the flow's
// owner (see Entry) or through the shard-locked mutators.
type Table struct {
	ttl    int64
	mask   uint64
	shards []tableShard
}

// NewTable creates a single-shard table whose entries expire ttl ticks
// after their last hit. ttl <= 0 disables expiry.
func NewTable(ttl int64) *Table { return NewTableSharded(ttl, 1) }

// NewTableSharded creates a table striped over the given number of shards
// (rounded up to a power of two, clamped to [1, MaxShards]; <= 0 means 1).
// The 16-bit label space is partitioned across shards — shard i allocates
// labels ≡ i+1 (mod shards) — so allocation never coordinates across
// shards while labels stay unique table-wide.
func NewTableSharded(ttl int64, shards int) *Table {
	n := normShards(shards)
	t := &Table{ttl: ttl, mask: uint64(n - 1), shards: make([]tableShard, n)}
	for i := range t.shards {
		t.shards[i].entries = make(map[netaddr.FiveTuple]*Entry)
		t.shards[i].alloc.init(i+1, n)
	}
	return t
}

// Shards returns the shard count.
func (t *Table) Shards() int { return len(t.shards) }

// ShardLen returns the entry count of shard i (occupancy gauges read it).
func (t *Table) ShardLen(i int) int {
	s := &t.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (t *Table) shardOf(ft netaddr.FiveTuple) *tableShard {
	// Mix64 spreads structured tuples across the low bits the mask keeps.
	return &t.shards[netaddr.Mix64(ft.Hash(shardSeed))&t.mask]
}

// Lookup returns the live entry for ft, refreshing its TTL. Expired
// entries are removed and reported as misses.
func (t *Table) Lookup(ft netaddr.FiveTuple, now int64) (*Entry, bool) {
	s := t.shardOf(ft)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[ft]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	if t.expired(e, now) {
		delete(s.entries, ft)
		s.alloc.put(e.Label)
		s.stats.Expired++
		s.stats.Misses++
		return nil, false
	}
	e.lastHit = now
	if e.Null {
		s.stats.NullHits++
	} else {
		s.stats.Hits++
	}
	return e, true
}

func (t *Table) expired(e *Entry, now int64) bool {
	return t.ttl > 0 && now-e.lastHit > t.ttl
}

// Insert records the resolved policy for a flow and returns the entry.
func (t *Table) Insert(ft netaddr.FiveTuple, policyID int, actions policy.ActionList, now int64) *Entry {
	return t.insert(&Entry{Flow: ft, PolicyID: policyID, Actions: actions, lastHit: now})
}

// InsertNull records that no policy matches the flow, so subsequent
// packets skip classification entirely (§III-D's ⟨f, null⟩ entries).
func (t *Table) InsertNull(ft netaddr.FiveTuple, now int64) *Entry {
	return t.insert(&Entry{Flow: ft, Null: true, lastHit: now})
}

func (t *Table) insert(e *Entry) *Entry {
	s := t.shardOf(e.Flow)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[e.Flow]; ok {
		s.alloc.put(old.Label) // overwritten entry's label is reallocatable
	}
	s.entries[e.Flow] = e
	s.stats.Inserted++
	return e
}

// AllocLabel assigns the entry a label that is unique among live entries
// of this table, per §III-E ("locally unique"). It returns 0 only when
// the entry's shard has exhausted its slice of the 65535-label space —
// with one shard, exactly when all 65535 labels are in use.
func (t *Table) AllocLabel(e *Entry) uint16 {
	s := t.shardOf(e.Flow)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Label != 0 {
		return e.Label
	}
	e.Label = s.alloc.get()
	return e.Label
}

// PinEntry records the provider the flow was steered to, under the
// entry's shard lock — the concurrent-safe form of Entry.Pin, so a
// simultaneous InvalidateIf scan observes either the full pin or none.
func (t *Table) PinEntry(e *Entry, mb topo.NodeID) {
	s := t.shardOf(e.Flow)
	s.mu.Lock()
	e.NextHop = mb
	e.Pinned = true
	s.mu.Unlock()
}

// FlagLabelSwitched marks the flow's entry for label switching (called
// when the proxy receives the tail middlebox's control packet). It
// reports whether the flow was found.
func (t *Table) FlagLabelSwitched(ft netaddr.FiveTuple, now int64) bool {
	s := t.shardOf(ft)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[ft]
	if !ok || t.expired(e, now) {
		return false
	}
	e.LabelSwitched = true
	e.lastHit = now
	return true
}

// InvalidateProvider purges every entry pinned to the given middlebox.
// Called when a provider is detected dead so its flows re-establish via a
// backup immediately instead of waiting for TTL expiry.
func (t *Table) InvalidateProvider(mb topo.NodeID) int {
	return t.InvalidateIf(func(e *Entry) bool { return e.Pinned && e.NextHop == mb })
}

// InvalidateIf purges every entry matching the predicate and returns the
// eviction count. Shards are visited one at a time — the table is never
// globally locked — so entries inserted into already-visited shards
// during the scan may survive; callers needing a fixed point re-run the
// purge. The predicate runs under a shard lock and must not call back
// into the table.
func (t *Table) InvalidateIf(pred func(*Entry) bool) int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for ft, e := range s.entries {
			if pred(e) {
				delete(s.entries, ft)
				s.alloc.put(e.Label)
				n++
				s.stats.Invalidated++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Sweep removes all expired entries and returns how many it evicted;
// nodes run it periodically so idle flows do not accumulate. The scan
// holds one shard lock at a time and performs no allocation (freed labels
// return to each shard's free-list in place).
func (t *Table) Sweep(now int64) int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for ft, e := range s.entries {
			if t.expired(e, now) {
				delete(s.entries, ft)
				s.alloc.put(e.Label)
				n++
				s.stats.Expired++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Len returns the number of stored entries, including expired ones not
// yet swept.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the activity counters summed over all shards.
func (t *Table) Stats() Stats {
	var out Stats
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out.add(s.stats)
		s.mu.Unlock()
	}
	return out
}

// LabelKey identifies a label-table entry: the paper's ⟨src | l⟩
// concatenation (§III-E). Src is the ORIGINAL flow's source address (kept
// as the outer tunnel source along the whole chain), which is what makes
// labels from different proxies collision-free at a shared middlebox.
type LabelKey struct {
	Src   netaddr.Addr
	Label uint16
}

// hash mixes the key for shard selection (FNV-1a over src then label).
func (k LabelKey) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ shardSeed
	h ^= uint64(k.Src)
	h *= prime64
	h ^= uint64(k.Label)
	h *= prime64
	return h
}

// LabelEntry is one label-table record at a middlebox. The concurrency
// rules of Entry apply: post-insert mutation happens under the shard lock
// (lastHit, PinEntry) or from the flow's owning worker.
type LabelEntry struct {
	Key      LabelKey
	PolicyID int
	Actions  policy.ActionList
	// Flow is the flow's ORIGINAL 5-tuple, recorded when the first
	// (tunneled) packet installed the entry. Label-switched packets have
	// their destination address rewritten hop by hop, so the original
	// tuple must come from here for hash-based next-hop selection to
	// stay consistent with the first packet's choices.
	Flow netaddr.FiveTuple
	// Dst is the flow's real destination, recorded only at the last
	// middlebox of the chain (HasDst true) so it can restore the
	// destination address before final forwarding.
	Dst    netaddr.Addr
	HasDst bool
	// NextHop pins the downstream middlebox the chain continues at
	// (unset at the tail); Pinned reports whether it is set. See
	// Entry.NextHop.
	NextHop topo.NodeID
	Pinned  bool
	lastHit int64
}

// Pin records the downstream provider the chain continues at. Concurrent
// tables must use LabelTable.PinEntry.
func (e *LabelEntry) Pin(mb topo.NodeID) {
	e.NextHop = mb
	e.Pinned = true
}

// labelShard is one lock stripe of a LabelTable.
type labelShard struct {
	mu      sync.Mutex
	entries map[LabelKey]*LabelEntry
	stats   Stats
}

// LabelTable is the per-middlebox label-switching table, lock-striped
// like Table (labels here are assigned upstream, so shards carry no
// allocator).
type LabelTable struct {
	ttl    int64
	mask   uint64
	shards []labelShard
}

// NewLabelTable creates a single-shard label table with the given TTL
// (<= 0 disables expiry).
func NewLabelTable(ttl int64) *LabelTable { return NewLabelTableSharded(ttl, 1) }

// NewLabelTableSharded creates a label table striped over the given
// number of shards (rounded up to a power of two, clamped to
// [1, MaxShards]; <= 0 means 1).
func NewLabelTableSharded(ttl int64, shards int) *LabelTable {
	n := normShards(shards)
	t := &LabelTable{ttl: ttl, mask: uint64(n - 1), shards: make([]labelShard, n)}
	for i := range t.shards {
		t.shards[i].entries = make(map[LabelKey]*LabelEntry)
	}
	return t
}

// Shards returns the shard count.
func (t *LabelTable) Shards() int { return len(t.shards) }

// ShardLen returns the entry count of shard i.
func (t *LabelTable) ShardLen(i int) int {
	s := &t.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (t *LabelTable) shardOf(k LabelKey) *labelShard {
	return &t.shards[netaddr.Mix64(k.hash())&t.mask]
}

// Lookup returns the live entry for the key, refreshing its TTL.
func (t *LabelTable) Lookup(k LabelKey, now int64) (*LabelEntry, bool) {
	s := t.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	if t.ttl > 0 && now-e.lastHit > t.ttl {
		delete(s.entries, k)
		s.stats.Expired++
		s.stats.Misses++
		return nil, false
	}
	e.lastHit = now
	s.stats.Hits++
	return e, true
}

// Insert records ⟨src|l, actions⟩, the per-hop state installed while the
// first packet of a flow traverses the chain. flow is the original
// 5-tuple of the flow (see LabelEntry.Flow).
func (t *LabelTable) Insert(k LabelKey, policyID int, actions policy.ActionList, flow netaddr.FiveTuple, now int64) *LabelEntry {
	e := &LabelEntry{Key: k, PolicyID: policyID, Actions: actions, Flow: flow, lastHit: now}
	s := t.shardOf(k)
	s.mu.Lock()
	s.entries[k] = e
	s.stats.Inserted++
	s.mu.Unlock()
	return e
}

// InsertTail records ⟨src|l, actions, dst⟩ at the chain's last middlebox.
func (t *LabelTable) InsertTail(k LabelKey, policyID int, actions policy.ActionList, flow netaddr.FiveTuple, now int64) *LabelEntry {
	e := &LabelEntry{Key: k, PolicyID: policyID, Actions: actions, Flow: flow, lastHit: now}
	e.Dst = flow.Dst
	e.HasDst = true
	s := t.shardOf(k)
	s.mu.Lock()
	s.entries[k] = e
	s.stats.Inserted++
	s.mu.Unlock()
	return e
}

// PinEntry records the downstream provider under the entry's shard lock —
// the concurrent-safe form of LabelEntry.Pin.
func (t *LabelTable) PinEntry(e *LabelEntry, mb topo.NodeID) {
	s := t.shardOf(e.Key)
	s.mu.Lock()
	e.NextHop = mb
	e.Pinned = true
	s.mu.Unlock()
}

// InvalidateProvider purges every label entry whose chain continues at
// the given (dead) middlebox. Labeled packets forwarded toward a backup
// would miss there anyway; purging lets the upstream state expire cleanly
// while the proxy re-tunnels the flow.
func (t *LabelTable) InvalidateProvider(mb topo.NodeID) int {
	return t.InvalidateIf(func(e *LabelEntry) bool { return e.Pinned && e.NextHop == mb })
}

// InvalidateIf purges every label entry matching the predicate and
// returns the eviction count. One shard is locked at a time; see
// Table.InvalidateIf for the visibility contract.
func (t *LabelTable) InvalidateIf(pred func(*LabelEntry) bool) int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if pred(e) {
				delete(s.entries, k)
				n++
				s.stats.Invalidated++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Sweep removes expired entries and returns the eviction count; like
// Table.Sweep it is allocation-free and locks one shard at a time.
func (t *LabelTable) Sweep(now int64) int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if t.ttl > 0 && now-e.lastHit > t.ttl {
				delete(s.entries, k)
				n++
				s.stats.Expired++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Len returns the number of stored entries.
func (t *LabelTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the activity counters summed over all shards.
func (t *LabelTable) Stats() Stats {
	var out Stats
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out.add(s.stats)
		s.mu.Unlock()
	}
	return out
}
