// Package flowtable implements the two per-node soft-state tables the
// paper adds to proxies and middleboxes:
//
//   - the flow hash table of §III-D, mapping a 5-tuple to its resolved
//     action list so the multi-field policy lookup runs at most once per
//     flow — including negative ("null") entries for flows that match no
//     policy;
//   - the label table of §III-E, mapping ⟨source address | label⟩ to the
//     action list (plus, at the chain's last middlebox, the flow's real
//     destination) so subsequent packets can be label-switched without an
//     outer IP header.
//
// Both tables are soft state: entries expire after a TTL without hits.
// Time is an explicit int64 tick supplied by the caller, so the same code
// runs under the discrete-event simulator's virtual clock and the live
// runtime's wall clock.
package flowtable

import (
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Entry is one flow-table record. Null entries cache "no policy matched".
type Entry struct {
	Flow     netaddr.FiveTuple
	PolicyID int
	Actions  policy.ActionList
	Null     bool
	// Label is the locally unique label the proxy assigned to the flow
	// (0 = none allocated).
	Label uint16
	// LabelSwitched is flipped when the tail middlebox's control packet
	// arrives; from then on packets are label-switched, not tunneled.
	LabelSwitched bool
	// NextHop pins the middlebox this flow was last forwarded to (the
	// chain's first hop at a proxy); Pinned reports whether it is set.
	// Local fast failover uses the pin to purge flows riding a provider
	// that has since died, instead of waiting for the TTL.
	NextHop topo.NodeID
	Pinned  bool
	lastHit int64
}

// Pin records the provider the flow was steered to.
func (e *Entry) Pin(mb topo.NodeID) {
	e.NextHop = mb
	e.Pinned = true
}

// Stats counts table activity; the §III-D ablation benchmark reads these.
type Stats struct {
	Hits, Misses, NullHits int
	Inserted, Expired      int
	// Invalidated counts entries purged by InvalidateProvider /
	// InvalidateIf (failover purges, not TTL expiry).
	Invalidated int
}

// Table is the flow hash table. Not safe for concurrent use; each node
// owns one and drives it from its own event loop.
type Table struct {
	ttl       int64
	entries   map[netaddr.FiveTuple]*Entry
	nextLabel uint16
	stats     Stats
}

// NewTable creates a table whose entries expire ttl ticks after their
// last hit. ttl <= 0 disables expiry.
func NewTable(ttl int64) *Table {
	return &Table{ttl: ttl, entries: make(map[netaddr.FiveTuple]*Entry)}
}

// Lookup returns the live entry for ft, refreshing its TTL. Expired
// entries are removed and reported as misses.
func (t *Table) Lookup(ft netaddr.FiveTuple, now int64) (*Entry, bool) {
	e, ok := t.entries[ft]
	if !ok {
		t.stats.Misses++
		return nil, false
	}
	if t.expired(e, now) {
		delete(t.entries, ft)
		t.stats.Expired++
		t.stats.Misses++
		return nil, false
	}
	e.lastHit = now
	if e.Null {
		t.stats.NullHits++
	} else {
		t.stats.Hits++
	}
	return e, true
}

func (t *Table) expired(e *Entry, now int64) bool {
	return t.ttl > 0 && now-e.lastHit > t.ttl
}

// Insert records the resolved policy for a flow and returns the entry.
func (t *Table) Insert(ft netaddr.FiveTuple, policyID int, actions policy.ActionList, now int64) *Entry {
	e := &Entry{Flow: ft, PolicyID: policyID, Actions: actions, lastHit: now}
	t.entries[ft] = e
	t.stats.Inserted++
	return e
}

// InsertNull records that no policy matches the flow, so subsequent
// packets skip classification entirely (§III-D's ⟨f, null⟩ entries).
func (t *Table) InsertNull(ft netaddr.FiveTuple, now int64) *Entry {
	e := &Entry{Flow: ft, Null: true, lastHit: now}
	t.entries[ft] = e
	t.stats.Inserted++
	return e
}

// AllocLabel assigns the entry a label that is unique among live entries
// of this table, per §III-E ("locally unique"). It returns 0 only when
// all 65535 labels are in use.
func (t *Table) AllocLabel(e *Entry) uint16 {
	if e.Label != 0 {
		return e.Label
	}
	inUse := make(map[uint16]bool, len(t.entries))
	for _, other := range t.entries {
		if other.Label != 0 {
			inUse[other.Label] = true
		}
	}
	for i := 0; i < 0xffff; i++ {
		t.nextLabel++
		if t.nextLabel == 0 {
			t.nextLabel = 1
		}
		if !inUse[t.nextLabel] {
			e.Label = t.nextLabel
			return e.Label
		}
	}
	return 0
}

// FlagLabelSwitched marks the flow's entry for label switching (called
// when the proxy receives the tail middlebox's control packet). It
// reports whether the flow was found.
func (t *Table) FlagLabelSwitched(ft netaddr.FiveTuple, now int64) bool {
	e, ok := t.entries[ft]
	if !ok || t.expired(e, now) {
		return false
	}
	e.LabelSwitched = true
	e.lastHit = now
	return true
}

// InvalidateProvider purges every entry pinned to the given middlebox.
// Called when a provider is detected dead so its flows re-establish via a
// backup immediately instead of blackholing until TTL expiry.
func (t *Table) InvalidateProvider(mb topo.NodeID) int {
	return t.InvalidateIf(func(e *Entry) bool { return e.Pinned && e.NextHop == mb })
}

// InvalidateIf purges every entry matching the predicate and returns the
// eviction count.
func (t *Table) InvalidateIf(pred func(*Entry) bool) int {
	n := 0
	for ft, e := range t.entries {
		if pred(e) {
			delete(t.entries, ft)
			n++
		}
	}
	t.stats.Invalidated += n
	return n
}

// Sweep removes all expired entries and returns how many it evicted;
// nodes run it periodically so idle flows do not accumulate.
func (t *Table) Sweep(now int64) int {
	n := 0
	for ft, e := range t.entries {
		if t.expired(e, now) {
			delete(t.entries, ft)
			n++
		}
	}
	t.stats.Expired += n
	return n
}

// Len returns the number of stored entries, including expired ones not
// yet swept.
func (t *Table) Len() int { return len(t.entries) }

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats { return t.stats }

// LabelKey identifies a label-table entry: the paper's ⟨src | l⟩
// concatenation (§III-E). Src is the ORIGINAL flow's source address (kept
// as the outer tunnel source along the whole chain), which is what makes
// labels from different proxies collision-free at a shared middlebox.
type LabelKey struct {
	Src   netaddr.Addr
	Label uint16
}

// LabelEntry is one label-table record at a middlebox.
type LabelEntry struct {
	Key      LabelKey
	PolicyID int
	Actions  policy.ActionList
	// Flow is the flow's ORIGINAL 5-tuple, recorded when the first
	// (tunneled) packet installed the entry. Label-switched packets have
	// their destination address rewritten hop by hop, so the original
	// tuple must come from here for hash-based next-hop selection to
	// stay consistent with the first packet's choices.
	Flow netaddr.FiveTuple
	// Dst is the flow's real destination, recorded only at the last
	// middlebox of the chain (HasDst true) so it can restore the
	// destination address before final forwarding.
	Dst    netaddr.Addr
	HasDst bool
	// NextHop pins the downstream middlebox the chain continues at
	// (unset at the tail); Pinned reports whether it is set. See
	// Entry.NextHop.
	NextHop topo.NodeID
	Pinned  bool
	lastHit int64
}

// Pin records the downstream provider the chain continues at.
func (e *LabelEntry) Pin(mb topo.NodeID) {
	e.NextHop = mb
	e.Pinned = true
}

// LabelTable is the per-middlebox label-switching table.
type LabelTable struct {
	ttl     int64
	entries map[LabelKey]*LabelEntry
	stats   Stats
}

// NewLabelTable creates a label table with the given TTL (<= 0 disables
// expiry).
func NewLabelTable(ttl int64) *LabelTable {
	return &LabelTable{ttl: ttl, entries: make(map[LabelKey]*LabelEntry)}
}

// Lookup returns the live entry for the key, refreshing its TTL.
func (t *LabelTable) Lookup(k LabelKey, now int64) (*LabelEntry, bool) {
	e, ok := t.entries[k]
	if !ok {
		t.stats.Misses++
		return nil, false
	}
	if t.ttl > 0 && now-e.lastHit > t.ttl {
		delete(t.entries, k)
		t.stats.Expired++
		t.stats.Misses++
		return nil, false
	}
	e.lastHit = now
	t.stats.Hits++
	return e, true
}

// Insert records ⟨src|l, actions⟩, the per-hop state installed while the
// first packet of a flow traverses the chain. flow is the original
// 5-tuple of the flow (see LabelEntry.Flow).
func (t *LabelTable) Insert(k LabelKey, policyID int, actions policy.ActionList, flow netaddr.FiveTuple, now int64) *LabelEntry {
	e := &LabelEntry{Key: k, PolicyID: policyID, Actions: actions, Flow: flow, lastHit: now}
	t.entries[k] = e
	t.stats.Inserted++
	return e
}

// InsertTail records ⟨src|l, actions, dst⟩ at the chain's last middlebox.
func (t *LabelTable) InsertTail(k LabelKey, policyID int, actions policy.ActionList, flow netaddr.FiveTuple, now int64) *LabelEntry {
	e := t.Insert(k, policyID, actions, flow, now)
	e.Dst = flow.Dst
	e.HasDst = true
	return e
}

// InvalidateProvider purges every label entry whose chain continues at
// the given (dead) middlebox. Labeled packets forwarded toward a backup
// would miss there anyway; purging lets the upstream state expire cleanly
// while the proxy re-tunnels the flow.
func (t *LabelTable) InvalidateProvider(mb topo.NodeID) int {
	return t.InvalidateIf(func(e *LabelEntry) bool { return e.Pinned && e.NextHop == mb })
}

// InvalidateIf purges every label entry matching the predicate and
// returns the eviction count.
func (t *LabelTable) InvalidateIf(pred func(*LabelEntry) bool) int {
	n := 0
	for k, e := range t.entries {
		if pred(e) {
			delete(t.entries, k)
			n++
		}
	}
	t.stats.Invalidated += n
	return n
}

// Sweep removes expired entries and returns the eviction count.
func (t *LabelTable) Sweep(now int64) int {
	n := 0
	for k, e := range t.entries {
		if t.ttl > 0 && now-e.lastHit > t.ttl {
			delete(t.entries, k)
			n++
		}
	}
	t.stats.Expired += n
	return n
}

// Len returns the number of stored entries.
func (t *LabelTable) Len() int { return len(t.entries) }

// Stats returns a copy of the activity counters.
func (t *LabelTable) Stats() Stats { return t.stats }
