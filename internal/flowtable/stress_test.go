package flowtable

// Race stress for the sharded tables (run under -race via `make
// race-stress`): 8 goroutines hammer one table while a sweeper expires and
// invalidates concurrently. The invariants checked at every quiesce point
// are the two the dataplane depends on: live tunnel IDs are never issued
// twice, and an invalidated entry never resurrects. TestSweepAllocFree
// guards the per-shard free-list fix: steady-state Sweep performs zero
// heap allocations.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

func stressFlow(i int) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: netaddr.Addr(0x0ac80000 + i), Dst: netaddr.Addr(0x0ac90000 + i%9),
		SrcPort: uint16(30000 + i), DstPort: 443, Proto: netaddr.ProtoTCP,
	}
}

// ghostFlow is a flow no goroutine ever inserts: FlagLabelSwitched on it
// must always report false and must never create an entry.
func ghostFlow(i int) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: netaddr.Addr(0x0bff0000 + i), Dst: netaddr.Addr(0x0bfe0000),
		SrcPort: uint16(40000 + i), DstPort: 443, Proto: netaddr.ProtoUDP,
	}
}

func TestStressShardedTableRace(t *testing.T) {
	const (
		goroutines  = 8
		rounds      = 3
		opsPerGoro  = 2000
		universe    = 64
		ghosts      = 8
		sweeperIter = 200
	)
	actions := policy.ActionList{policy.FuncFW}
	tbl := NewTableSharded(1<<20, 64)
	var now int64 // advanced atomically by every participant

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*100 + g)))
				for i := 0; i < opsPerGoro; i++ {
					ts := atomic.AddInt64(&now, 1)
					ft := stressFlow(rng.Intn(universe))
					e, ok := tbl.Lookup(ft, ts)
					if !ok {
						e = tbl.Insert(ft, rng.Intn(8), actions, ts)
					}
					tbl.AllocLabel(e)
					if rng.Intn(4) == 0 {
						tbl.PinEntry(e, topo.NodeID(rng.Intn(3)+1))
					}
					if rng.Intn(8) == 0 {
						tbl.FlagLabelSwitched(ft, ts)
					}
					if tbl.FlagLabelSwitched(ghostFlow(rng.Intn(ghosts)), ts) {
						t.Error("FlagLabelSwitched created or revived a never-inserted flow")
						return
					}
				}
			}(g)
		}
		// Sweeper: expiry storms plus targeted invalidation, racing the
		// workers above.
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9000 + round)))
			for i := 0; i < sweeperIter; i++ {
				switch rng.Intn(3) {
				case 0: // expire everything inserted so far
					tbl.Sweep(atomic.LoadInt64(&now) + 1<<21)
				case 1:
					pid := rng.Intn(8)
					tbl.InvalidateIf(func(e *Entry) bool { return e.PolicyID == pid })
				default:
					mb := topo.NodeID(rng.Intn(3) + 1)
					tbl.InvalidateProvider(mb)
				}
			}
		}()
		wg.Wait()

		// Quiesce-point invariants: every live label is unique, and no
		// ghost flow materialized.
		ts := atomic.AddInt64(&now, 1)
		seen := make(map[uint16]netaddr.FiveTuple)
		for i := 0; i < universe; i++ {
			ft := stressFlow(i)
			e, ok := tbl.Lookup(ft, ts)
			if !ok || e.Label == 0 {
				continue
			}
			if prev, dup := seen[e.Label]; dup {
				t.Fatalf("round %d: duplicate tunnel ID %d on %v and %v", round, e.Label, prev, ft)
			}
			seen[e.Label] = ft
		}
		for i := 0; i < ghosts; i++ {
			if _, ok := tbl.Lookup(ghostFlow(i), ts); ok {
				t.Fatalf("round %d: ghost flow %d resurrected", round, i)
			}
		}
	}

	// Invalidate-all must leave nothing behind, and nothing may come back.
	tbl.InvalidateIf(func(*Entry) bool { return true })
	if n := tbl.Len(); n != 0 {
		t.Fatalf("Len = %d after invalidate-all", n)
	}
	ts := atomic.AddInt64(&now, 1)
	for i := 0; i < universe; i++ {
		if _, ok := tbl.Lookup(stressFlow(i), ts); ok {
			t.Fatalf("flow %d resurrected after invalidate-all", i)
		}
	}
	// Free-list integrity after the storm: a full universe of fresh
	// allocations still yields pairwise-distinct non-zero labels.
	labels := make(map[uint16]bool)
	for i := 0; i < universe; i++ {
		e := tbl.Insert(stressFlow(i), 1, actions, ts)
		l := tbl.AllocLabel(e)
		if l == 0 {
			t.Fatalf("allocator exhausted after stress (flow %d)", i)
		}
		if labels[l] {
			t.Fatalf("duplicate tunnel ID %d issued after stress", l)
		}
		labels[l] = true
	}
}

func TestStressShardedLabelTableRace(t *testing.T) {
	const (
		goroutines  = 8
		opsPerGoro  = 2000
		universe    = 64
		sweeperIter = 200
	)
	actions := policy.ActionList{policy.FuncIDS}
	tbl := NewLabelTableSharded(1<<20, 64)
	var now int64
	key := func(i int) LabelKey {
		return LabelKey{Src: netaddr.Addr(0x0a330000 + i%7), Label: uint16(500 + i)}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerGoro; i++ {
				ts := atomic.AddInt64(&now, 1)
				k := key(rng.Intn(universe))
				e, ok := tbl.Lookup(k, ts)
				if !ok {
					if rng.Intn(2) == 0 {
						e = tbl.Insert(k, rng.Intn(8), actions, stressFlow(i%universe), ts)
					} else {
						e = tbl.InsertTail(k, rng.Intn(8), actions, stressFlow(i%universe), ts)
					}
				}
				if rng.Intn(4) == 0 {
					tbl.PinEntry(e, topo.NodeID(rng.Intn(3)+1))
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < sweeperIter; i++ {
			if rng.Intn(2) == 0 {
				tbl.Sweep(atomic.LoadInt64(&now) + 1<<21)
			} else {
				mb := topo.NodeID(rng.Intn(3) + 1)
				tbl.InvalidateProvider(mb)
			}
		}
	}()
	wg.Wait()

	tbl.InvalidateIf(func(*LabelEntry) bool { return true })
	if n := tbl.Len(); n != 0 {
		t.Fatalf("LabelTable Len = %d after invalidate-all", n)
	}
	ts := atomic.AddInt64(&now, 1)
	for i := 0; i < universe; i++ {
		if _, ok := tbl.Lookup(key(i), ts); ok {
			t.Fatalf("label entry %d resurrected after invalidate-all", i)
		}
	}
}

// TestSweepAllocFree pins the Sweep allocation fix: once the per-shard
// free lists have grown to working-set capacity, sweeping expired entries
// performs zero heap allocations (no whole-table inUse map, no free-list
// growth). Entries are inserted in staggered generations so the warm-up
// call AllocsPerRun makes plus each measured run all expire a non-empty
// generation.
func TestSweepAllocFree(t *testing.T) {
	const (
		runs    = 3
		gens    = runs + 1 // AllocsPerRun calls f once extra to warm up
		perGen  = 256
		ttl     = 500
		genStep = 1000
	)
	actions := policy.ActionList{policy.FuncFW}
	tbl := NewTableSharded(ttl, 16)
	flowAt := func(gen, i int) netaddr.FiveTuple { return stressFlow(gen*perGen + i) }

	// Pass 1: grow every shard's map and label free list to full working-set
	// capacity, then release everything. Growth allocations land here.
	for gen := 0; gen < gens; gen++ {
		for i := 0; i < perGen; i++ {
			e := tbl.Insert(flowAt(gen, i), 1, actions, 0)
			tbl.AllocLabel(e)
		}
	}
	if n := tbl.Sweep(1 << 30); n != gens*perGen {
		t.Fatalf("warm-up sweep expired %d, want %d", n, gens*perGen)
	}

	// Pass 2: repopulate in staggered generations; labels now come from the
	// warmed free lists.
	for gen := 0; gen < gens; gen++ {
		for i := 0; i < perGen; i++ {
			e := tbl.Insert(flowAt(gen, i), 1, actions, int64(gen*genStep))
			if tbl.AllocLabel(e) == 0 {
				t.Fatal("allocator exhausted during setup")
			}
		}
	}

	gen := 0
	swept := 0
	avg := testing.AllocsPerRun(runs, func() {
		// Expire exactly generation gen: its lastHit is gen*genStep, and
		// later generations are still inside their TTL at this timestamp.
		swept = tbl.Sweep(int64(gen*genStep + ttl + 1))
		gen++
	})
	if swept != perGen {
		t.Fatalf("final measured sweep expired %d, want %d", swept, perGen)
	}
	if avg != 0 {
		t.Fatalf("Sweep allocates %.1f objects per run in steady state, want 0", avg)
	}
}

func BenchmarkSweep(b *testing.B) {
	const live = 4096
	actions := policy.ActionList{policy.FuncFW}
	tbl := NewTableSharded(1<<20, 64)
	for i := 0; i < live; i++ {
		e := tbl.Insert(stressFlow(i), 1, actions, 0)
		tbl.AllocLabel(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Sweep(1) // nothing expires: pure scan cost over 4096 entries
	}
}

func BenchmarkAllocLabel(b *testing.B) {
	actions := policy.ActionList{policy.FuncFW}
	tbl := NewTableSharded(1<<20, 64)
	e := tbl.Insert(stressFlow(0), 1, actions, 0)
	s := tbl.shardOf(e.Flow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := tbl.AllocLabel(e)
		if l == 0 {
			b.Fatal("exhausted")
		}
		// Recycle through the shard free list so the cycle is sustainable
		// at any b.N — this measures the full alloc/release round trip.
		s.mu.Lock()
		s.alloc.put(l)
		s.mu.Unlock()
		e.Label = 0
	}
}
