// Package ospf implements the traditional routing substrate the paper
// builds on (§II): a link-state interior gateway protocol in the style of
// OSPF. Every routing-capable node originates a link-state advertisement
// (LSA) describing its links and the address prefixes it can deliver
// locally (its stub subnet, its own address, and the addresses of attached
// middleboxes/proxies/hosts). LSAs are flooded hop by hop with sequence
// numbers; each router keeps a link-state database (LSDB) and, once
// flooding quiesces, runs its own shortest-path-first computation over the
// LSDB — not over the global topology object — to build a routing table.
//
// The point of doing this "properly" instead of handing every router a
// god's-eye Dijkstra is fidelity to the paper's premise: routers are
// policy-oblivious devices that converge on shortest paths by distributed
// protocol, and the enforcement layer must work with whatever paths that
// yields, including after link failures and reconvergence.
package ospf

import (
	"fmt"
	"sort"

	"sdme/internal/netaddr"
	"sdme/internal/topo"
)

// LSALink is one adjacency reported in an LSA.
type LSALink struct {
	Neighbor topo.NodeID
	Cost     float64
}

// LSA is a router's link-state advertisement. Seq orders re-originations;
// higher wins, exactly as in OSPF.
type LSA struct {
	Origin   topo.NodeID
	Seq      uint32
	Links    []LSALink
	Prefixes []netaddr.Prefix
}

func (l LSA) clone() LSA {
	out := l
	out.Links = append([]LSALink(nil), l.Links...)
	out.Prefixes = append([]netaddr.Prefix(nil), l.Prefixes...)
	return out
}

// Router is one protocol participant. It owns an LSDB and a routing table
// derived from it. Routers are driven by the Domain; they are not safe
// for concurrent use.
type Router struct {
	ID   topo.NodeID
	lsdb map[topo.NodeID]LSA
	// pending holds LSAs accepted since the last flood round, to be
	// forwarded to neighbors.
	pending []LSA
	table   *Table
	seq     uint32
}

// LSDBSize returns the number of LSAs this router currently stores.
func (r *Router) LSDBSize() int { return len(r.lsdb) }

// install accepts an LSA if it is newer than what the LSDB holds and
// queues it for forwarding. It reports whether the LSA was accepted.
func (r *Router) install(l LSA) bool {
	if cur, ok := r.lsdb[l.Origin]; ok && cur.Seq >= l.Seq {
		return false
	}
	r.lsdb[l.Origin] = l
	r.pending = append(r.pending, l)
	return true
}

// Table is a longest-prefix-match routing table. Entries map a prefix to
// the next-hop node (a directly connected neighbor) or to local delivery.
type Table struct {
	// byBits[b] maps masked prefixes of length b to next hops.
	byBits [33]map[netaddr.Prefix]Route
	size   int
}

// Route is a routing-table entry target.
type Route struct {
	// NextHop is the neighbor to forward to. When Local is true, NextHop
	// is the attached node to deliver to (or the router itself).
	NextHop topo.NodeID
	Local   bool
	Cost    float64
}

// NewTable returns an empty routing table.
func NewTable() *Table { return &Table{} }

// Insert adds or replaces the route for a prefix.
func (t *Table) Insert(p netaddr.Prefix, r Route) {
	b := p.Bits()
	if t.byBits[b] == nil {
		t.byBits[b] = make(map[netaddr.Prefix]Route)
	}
	if _, exists := t.byBits[b][p]; !exists {
		t.size++
	}
	t.byBits[b][p] = r
}

// Lookup finds the longest matching prefix for addr.
func (t *Table) Lookup(addr netaddr.Addr) (Route, bool) {
	for b := 32; b >= 0; b-- {
		m := t.byBits[b]
		if len(m) == 0 {
			continue
		}
		if r, ok := m[netaddr.PrefixFrom(addr, b)]; ok {
			return r, true
		}
	}
	return Route{}, false
}

// Size returns the number of installed prefixes.
func (t *Table) Size() int { return t.size }

// Entries returns all (prefix, route) pairs sorted by prefix for
// deterministic display in tools and tests.
func (t *Table) Entries() []TableEntry {
	var out []TableEntry
	for b := 0; b <= 32; b++ {
		for p, r := range t.byBits[b] {
			out = append(out, TableEntry{Prefix: p, Route: r})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Bits() != out[j].Prefix.Bits() {
			return out[i].Prefix.Bits() < out[j].Prefix.Bits()
		}
		return out[i].Prefix.Addr() < out[j].Prefix.Addr()
	})
	return out
}

// TableEntry is one displayed routing-table row.
type TableEntry struct {
	Prefix netaddr.Prefix
	Route  Route
}

// FloodStats reports the cost of a convergence run.
type FloodStats struct {
	Rounds   int
	Messages int // LSA copies sent router-to-router
}

// Domain is an OSPF routing domain over one topology. It owns a Router
// per routing-capable node and simulates flooding synchronously in
// rounds: deterministic, and sufficient to study converged behaviour and
// reconvergence after failures.
type Domain struct {
	g       *topo.Graph
	routers map[topo.NodeID]*Router
	// downLinks marks failed link indexes.
	downLinks map[int]bool
}

// NewDomain builds a domain over g, originates every router's initial LSA,
// and returns it unconverged; call Converge before routing.
func NewDomain(g *topo.Graph) *Domain {
	d := &Domain{
		g:         g,
		routers:   make(map[topo.NodeID]*Router),
		downLinks: make(map[int]bool),
	}
	for _, id := range g.Routers() {
		d.routers[id] = &Router{ID: id, lsdb: make(map[topo.NodeID]LSA)}
	}
	for _, r := range d.routers {
		d.originate(r)
	}
	return d
}

// originate rebuilds a router's own LSA from current link state and
// installs it locally (which also queues it for flooding).
func (d *Domain) originate(r *Router) {
	r.seq++
	l := LSA{Origin: r.ID, Seq: r.seq}
	node := d.g.Node(r.ID)

	for _, adj := range d.g.Neighbors(r.ID) {
		if d.downLinks[adj.LinkIdx] {
			continue
		}
		n := d.g.Node(adj.Neighbor)
		if n.Kind.IsRouter() {
			l.Links = append(l.Links, LSALink{Neighbor: n.ID, Cost: d.g.Link(adj.LinkIdx).Cost})
		} else {
			// Attached devices are stub prefixes, not transit links.
			if !n.Addr.IsZero() {
				l.Prefixes = append(l.Prefixes, netaddr.PrefixFrom(n.Addr, 32))
			}
		}
	}
	if !node.Addr.IsZero() {
		l.Prefixes = append(l.Prefixes, netaddr.PrefixFrom(node.Addr, 32))
	}
	if node.Subnet.Bits() > 0 || !node.Subnet.Addr().IsZero() {
		l.Prefixes = append(l.Prefixes, node.Subnet)
	}
	sort.Slice(l.Links, func(i, j int) bool { return l.Links[i].Neighbor < l.Links[j].Neighbor })
	r.install(l)
}

// Converge floods pending LSAs in synchronous rounds until no router has
// anything new, then recomputes every routing table. It returns flooding
// statistics.
func (d *Domain) Converge() FloodStats {
	var stats FloodStats
	ids := topo.SortedIDs(d.g.Routers())
	for {
		type delivery struct {
			to  topo.NodeID
			lsa LSA
		}
		var deliveries []delivery
		for _, id := range ids {
			r := d.routers[id]
			if len(r.pending) == 0 {
				continue
			}
			for _, adj := range d.g.Neighbors(id) {
				if d.downLinks[adj.LinkIdx] {
					continue
				}
				nb := d.g.Node(adj.Neighbor)
				if !nb.Kind.IsRouter() {
					continue
				}
				for _, l := range r.pending {
					deliveries = append(deliveries, delivery{to: nb.ID, lsa: l.clone()})
				}
			}
			r.pending = r.pending[:0]
		}
		if len(deliveries) == 0 {
			break
		}
		stats.Rounds++
		stats.Messages += len(deliveries)
		for _, dv := range deliveries {
			d.routers[dv.to].install(dv.lsa)
		}
	}
	for _, id := range ids {
		d.computeTable(d.routers[id])
	}
	return stats
}

// computeTable runs SPF over the router's LSDB and installs routes for
// every advertised prefix.
func (d *Domain) computeTable(r *Router) {
	// Build the LSDB view: an adjacency is usable only if both endpoints
	// advertise it (OSPF's bidirectional check).
	type edge struct {
		to   topo.NodeID
		cost float64
	}
	adj := make(map[topo.NodeID][]edge, len(r.lsdb))
	advertises := func(from, to topo.NodeID) (float64, bool) {
		l, ok := r.lsdb[from]
		if !ok {
			return 0, false
		}
		for _, lk := range l.Links {
			if lk.Neighbor == to {
				return lk.Cost, true
			}
		}
		return 0, false
	}
	for origin, l := range r.lsdb {
		for _, lk := range l.Links {
			if _, ok := advertises(lk.Neighbor, origin); !ok {
				continue
			}
			adj[origin] = append(adj[origin], edge{to: lk.Neighbor, cost: lk.Cost})
		}
	}
	for o := range adj {
		es := adj[o]
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}

	// Dijkstra over the LSDB graph with deterministic tie-breaks.
	dist := map[topo.NodeID]float64{r.ID: 0}
	firstHop := map[topo.NodeID]topo.NodeID{}
	visited := map[topo.NodeID]bool{}
	for {
		var u topo.NodeID = topo.InvalidNode
		best := -1.0
		for id, dd := range dist {
			if visited[id] {
				continue
			}
			if u == topo.InvalidNode || dd < best || (dd == best && id < u) {
				u, best = id, dd
			}
		}
		if u == topo.InvalidNode {
			break
		}
		visited[u] = true
		for _, e := range adj[u] {
			nd := dist[u] + e.cost
			cur, seen := dist[e.to]
			fh := firstHop[u]
			if u == r.ID {
				fh = e.to
			}
			if !seen || nd < cur || (nd == cur && fh < firstHop[e.to]) {
				dist[e.to] = nd
				firstHop[e.to] = fh
			}
		}
	}

	t := NewTable()
	for origin, l := range r.lsdb {
		var rt Route
		if origin == r.ID {
			rt = Route{NextHop: r.ID, Local: true, Cost: 0}
		} else {
			dd, ok := dist[origin]
			if !ok {
				continue // unreachable after failures
			}
			rt = Route{NextHop: firstHop[origin], Cost: dd}
		}
		for _, p := range l.Prefixes {
			// On the originating router, attached-device /32 prefixes are
			// local deliveries to the device node itself.
			entry := rt
			if origin == r.ID && p.Bits() == 32 {
				if dev := d.g.NodeByAddr(p.Addr()); dev != topo.InvalidNode && dev != r.ID {
					entry = Route{NextHop: dev, Local: true}
				}
			}
			t.Insert(p, entry)
		}
	}
	r.table = t
}

// Router returns the protocol instance for a node, or nil for non-routers.
func (d *Domain) Router(id topo.NodeID) *Router {
	return d.routers[id]
}

// Table returns the converged routing table of a router. It panics if the
// node is not a router or Converge has not run — both caller bugs.
func (d *Domain) Table(id topo.NodeID) *Table {
	r := d.routers[id]
	if r == nil {
		panic(fmt.Sprintf("ospf: node %d is not a router", id))
	}
	if r.table == nil {
		panic(fmt.Sprintf("ospf: router %d queried before Converge", id))
	}
	return r.table
}

// FailLink marks a link down and re-originates the LSAs of its endpoints.
// Call Converge afterwards to reflood and recompute.
func (d *Domain) FailLink(linkIdx int) {
	if d.downLinks[linkIdx] {
		return
	}
	d.downLinks[linkIdx] = true
	d.reoriginateEndpoints(linkIdx)
}

// RestoreLink brings a failed link back.
func (d *Domain) RestoreLink(linkIdx int) {
	if !d.downLinks[linkIdx] {
		return
	}
	delete(d.downLinks, linkIdx)
	d.reoriginateEndpoints(linkIdx)
}

func (d *Domain) reoriginateEndpoints(linkIdx int) {
	l := d.g.Link(linkIdx)
	for _, end := range []topo.NodeID{l.A, l.B} {
		if r, ok := d.routers[end]; ok {
			d.originate(r)
		}
	}
}

// LinkIsDown reports whether the link index is currently failed.
func (d *Domain) LinkIsDown(linkIdx int) bool { return d.downLinks[linkIdx] }

// NextHop resolves the forwarding decision of router id for a destination
// address: the neighbor to forward to, or local delivery. ok is false
// when the router has no route.
func (d *Domain) NextHop(id topo.NodeID, dst netaddr.Addr) (Route, bool) {
	return d.Table(id).Lookup(dst)
}

// ForwardPath traces the hop-by-hop path a packet to dst takes starting at
// router start, using only the routers' own tables — the ground truth the
// enforcement layer rides on. It returns the node sequence ending at the
// delivering router (and the attached device, if the destination is one),
// or an error on routing loops or blackholes.
func (d *Domain) ForwardPath(start topo.NodeID, dst netaddr.Addr) ([]topo.NodeID, error) {
	path := []topo.NodeID{start}
	cur := start
	for steps := 0; steps <= d.g.NumNodes()+1; steps++ {
		rt, ok := d.Table(cur).Lookup(dst)
		if !ok {
			return path, fmt.Errorf("ospf: router %d has no route to %v", cur, dst)
		}
		if rt.Local {
			if rt.NextHop != cur {
				path = append(path, rt.NextHop)
			}
			return path, nil
		}
		cur = rt.NextHop
		path = append(path, cur)
	}
	return path, fmt.Errorf("ospf: routing loop toward %v: %v", dst, path)
}
