package ospf

import (
	"math"
	"math/rand"
	"testing"

	"sdme/internal/netaddr"
	"sdme/internal/route"
	"sdme/internal/topo"
)

func converged(t *testing.T, g *topo.Graph) *Domain {
	t.Helper()
	d := NewDomain(g)
	stats := d.Converge()
	if stats.Rounds == 0 && len(g.Routers()) > 1 {
		t.Fatal("convergence with multiple routers should take at least one round")
	}
	return d
}

func TestTableLPM(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(netaddr.MustParsePrefix("10.0.0.0/8"), Route{NextHop: 1})
	tbl.Insert(netaddr.MustParsePrefix("10.4.0.0/16"), Route{NextHop: 2})
	tbl.Insert(netaddr.MustParsePrefix("10.4.0.7/32"), Route{NextHop: 3, Local: true})

	tests := []struct {
		addr string
		want topo.NodeID
	}{
		{addr: "10.4.0.7", want: 3},
		{addr: "10.4.9.9", want: 2},
		{addr: "10.5.0.1", want: 1},
	}
	for _, tt := range tests {
		r, ok := tbl.Lookup(netaddr.MustParseAddr(tt.addr))
		if !ok || r.NextHop != tt.want {
			t.Errorf("Lookup(%s) = (%+v, %v), want next hop %v", tt.addr, r, ok, tt.want)
		}
	}
	if _, ok := tbl.Lookup(netaddr.MustParseAddr("99.0.0.1")); ok {
		t.Error("lookup of unrouted address should miss")
	}
	if tbl.Size() != 3 {
		t.Errorf("Size = %d, want 3", tbl.Size())
	}
	// Replacement does not grow the table.
	tbl.Insert(netaddr.MustParsePrefix("10.0.0.0/8"), Route{NextHop: 9})
	if tbl.Size() != 3 {
		t.Errorf("Size after replace = %d, want 3", tbl.Size())
	}
	if es := tbl.Entries(); len(es) != 3 || es[0].Prefix.Bits() != 8 {
		t.Errorf("Entries = %+v", es)
	}
}

func TestConvergenceMatchesCentralizedDijkstra(t *testing.T) {
	// The distributed protocol must land on the same distances as a
	// centralized shortest-path run over the true topology.
	rng := rand.New(rand.NewSource(4))
	g := topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	d := converged(t, g)
	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))

	routers := g.Routers()
	for _, src := range routers {
		for _, dst := range routers {
			if src == dst {
				continue
			}
			rt, ok := d.Table(src).Lookup(g.Node(dst).Addr)
			want := ap.Dist(src, dst)
			if !ok {
				if !math.IsInf(want, 1) {
					t.Fatalf("router %v: no route to %v but centralized dist %v", src, dst, want)
				}
				continue
			}
			if rt.Cost != want {
				t.Errorf("router %v -> %v: protocol cost %v, centralized %v", src, dst, rt.Cost, want)
			}
		}
	}
}

func TestEveryRouterLearnsEverySubnet(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	d := converged(t, g)
	edges := g.NodesOfKind(topo.KindEdgeRouter)
	for _, r := range g.Routers() {
		for i := range edges {
			host := topo.HostAddr(i+1, 3)
			if _, ok := d.Table(r).Lookup(host); !ok {
				t.Errorf("router %v has no route to host %v in subnet %d", r, host, i+1)
			}
		}
	}
}

func TestForwardPathDeliversToDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	core := g.NodesOfKind(topo.KindCoreRouter)[3]
	mb := topo.AttachMiddlebox(g, core, 1, "ids1")
	d := converged(t, g)

	start := g.NodesOfKind(topo.KindEdgeRouter)[0]
	path, err := d.ForwardPath(start, g.Node(mb).Addr)
	if err != nil {
		t.Fatalf("ForwardPath: %v", err)
	}
	if path[len(path)-1] != mb {
		t.Fatalf("path %v should end at middlebox %v", path, mb)
	}
	if path[len(path)-2] != core {
		t.Fatalf("path %v should deliver via attachment router %v", path, core)
	}
	// Interior nodes are routers only.
	for _, n := range path[:len(path)-1] {
		if !g.Node(n).Kind.IsRouter() {
			t.Errorf("non-router %v on forwarding path %v", n, path)
		}
	}
}

func TestForwardPathNoRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := topo.Campus(topo.CampusConfig{}, rng)
	d := converged(t, g)
	start := g.Routers()[0]
	if _, err := d.ForwardPath(start, netaddr.MustParseAddr("203.0.113.9")); err == nil {
		t.Error("expected error for unrouted destination")
	}
}

func TestReconvergenceAfterLinkFailure(t *testing.T) {
	// Line a-b-c plus backup a-d-e-c: failing a-b must reroute a->c via d.
	g := topo.NewGraph()
	mk := func(name string) topo.NodeID {
		return g.AddNode(topo.Node{
			Name: name, Kind: topo.KindCoreRouter, Attach: topo.InvalidNode,
			Addr: netaddr.MustParseAddr("172.16.1." + string(rune('0'+g.NumNodes()+1))),
		})
	}
	a, b, c, dd, e := mk("a"), mk("b"), mk("c"), mk("d"), mk("e")
	lAB := g.AddLink(topo.Link{A: a, B: b})
	g.AddLink(topo.Link{A: b, B: c})
	g.AddLink(topo.Link{A: a, B: dd})
	g.AddLink(topo.Link{A: dd, B: e})
	g.AddLink(topo.Link{A: e, B: c})

	d := converged(t, g)
	cAddr := g.Node(c).Addr
	rt, ok := d.Table(a).Lookup(cAddr)
	if !ok || rt.NextHop != b || rt.Cost != 2 {
		t.Fatalf("before failure: route = %+v, ok=%v; want via %v cost 2", rt, ok, b)
	}

	d.FailLink(lAB)
	if !d.LinkIsDown(lAB) {
		t.Fatal("link should be down")
	}
	d.Converge()
	rt, ok = d.Table(a).Lookup(cAddr)
	if !ok || rt.NextHop != dd || rt.Cost != 3 {
		t.Fatalf("after failure: route = %+v, ok=%v; want via %v cost 3", rt, ok, dd)
	}

	d.RestoreLink(lAB)
	d.Converge()
	rt, ok = d.Table(a).Lookup(cAddr)
	if !ok || rt.NextHop != b || rt.Cost != 2 {
		t.Fatalf("after restore: route = %+v, ok=%v; want via %v cost 2", rt, ok, b)
	}
}

func TestPartitionYieldsNoRoute(t *testing.T) {
	g := topo.NewGraph()
	a := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode, Addr: netaddr.MustParseAddr("172.16.1.1")})
	b := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode, Addr: netaddr.MustParseAddr("172.16.1.2")})
	l := g.AddLink(topo.Link{A: a, B: b})
	d := converged(t, g)
	if _, ok := d.Table(a).Lookup(g.Node(b).Addr); !ok {
		t.Fatal("route should exist before partition")
	}
	d.FailLink(l)
	d.Converge()
	if _, ok := d.Table(a).Lookup(g.Node(b).Addr); ok {
		t.Error("route should vanish after partition")
	}
}

func TestIdempotentConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := topo.Campus(topo.CampusConfig{}, rng)
	d := converged(t, g)
	stats := d.Converge() // nothing new to flood
	if stats.Rounds != 0 || stats.Messages != 0 {
		t.Errorf("second Converge should be a no-op, got %+v", stats)
	}
}

func TestLSDBComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := topo.Campus(topo.CampusConfig{}, rng)
	d := converged(t, g)
	want := len(g.Routers())
	for _, id := range g.Routers() {
		if got := d.Router(id).LSDBSize(); got != want {
			t.Errorf("router %v LSDB has %d LSAs, want %d", id, got, want)
		}
	}
}

func TestNoForwardingLoopsOnWaxman(t *testing.T) {
	// Property over a random topology: hop-by-hop forwarding from every
	// router to every subnet terminates (ForwardPath errors on loops).
	rng := rand.New(rand.NewSource(10))
	g := topo.Waxman(topo.WaxmanConfig{EdgeRouters: 40, CoreRouters: 10}, rng)
	d := converged(t, g)
	edges := g.NodesOfKind(topo.KindEdgeRouter)
	for _, r := range g.Routers() {
		for i := range edges {
			dst := topo.HostAddr(i+1, 1)
			if _, err := d.ForwardPath(r, dst); err != nil {
				t.Fatalf("router %v to subnet %d: %v", r, i+1, err)
			}
		}
	}
}

func TestQueriesBeforeConvergePanic(t *testing.T) {
	g := topo.NewGraph()
	a := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	d := NewDomain(g)
	defer func() {
		if recover() == nil {
			t.Error("Table before Converge should panic")
		}
	}()
	d.Table(a)
}

func TestNonRouterTablePanics(t *testing.T) {
	g := topo.NewGraph()
	a := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	m := g.AddNode(topo.Node{Kind: topo.KindMiddlebox, Attach: a})
	g.AddLink(topo.Link{A: a, B: m})
	d := NewDomain(g)
	d.Converge()
	defer func() {
		if recover() == nil {
			t.Error("Table of a middlebox should panic")
		}
	}()
	d.Table(m)
}

func BenchmarkConvergeCampus(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDomain(g)
		d.Converge()
	}
}

func BenchmarkConvergeWaxman(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := topo.Waxman(topo.WaxmanConfig{}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDomain(g)
		d.Converge()
	}
}

func BenchmarkTableLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	d := NewDomain(g)
	d.Converge()
	tbl := d.Table(g.Routers()[0])
	dst := topo.HostAddr(3, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(dst); !ok {
			b.Fatal("lookup miss")
		}
	}
}

func TestReconvergenceMatchesCentralizedAfterRandomFailures(t *testing.T) {
	// Property: after any sequence of random link failures that keeps
	// the routers connected, the reconverged distributed tables agree
	// with a centralized Dijkstra over the surviving topology.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 8; trial++ {
		g := topo.Waxman(topo.WaxmanConfig{EdgeRouters: 24, CoreRouters: 8}, rng)
		d := NewDomain(g)
		d.Converge()

		// Fail up to 3 random router-router links, skipping cuts.
		failed := map[int]bool{}
		for tries := 0; tries < 10 && len(failed) < 3; tries++ {
			idx := rng.Intn(g.NumLinks())
			l := g.Link(idx)
			if failed[idx] || !g.Node(l.A).Kind.IsRouter() || !g.Node(l.B).Kind.IsRouter() {
				continue
			}
			d.FailLink(idx)
			d.Converge()
			// Reject the failure if it partitioned the routers (some
			// router loses a route to another's address).
			partitioned := false
			routers := g.Routers()
			for _, r := range routers {
				if _, ok := d.Table(routers[0]).Lookup(g.Node(r).Addr); !ok {
					partitioned = true
					break
				}
			}
			if partitioned {
				d.RestoreLink(idx)
				d.Converge()
				continue
			}
			failed[idx] = true
		}

		// Centralized reference over the surviving graph: rebuild a graph
		// without the failed links.
		ref := topo.NewGraph()
		for i := 0; i < g.NumNodes(); i++ {
			ref.AddNode(g.Node(topo.NodeID(i)))
		}
		for i := 0; i < g.NumLinks(); i++ {
			if !failed[i] {
				ref.AddLink(g.Link(i))
			}
		}
		ap := route.NewAllPairs(ref, route.RouterTransitOnly(ref))
		for _, src := range g.Routers() {
			for _, dst := range g.Routers() {
				if src == dst {
					continue
				}
				rt, ok := d.Table(src).Lookup(g.Node(dst).Addr)
				want := ap.Dist(src, dst)
				if !ok {
					if !math.IsInf(want, 1) {
						t.Fatalf("trial %d: no route %v->%v but centralized dist %v (failed %v)",
							trial, src, dst, want, failed)
					}
					continue
				}
				if rt.Cost != want {
					t.Fatalf("trial %d: %v->%v cost %v, centralized %v (failed %v)",
						trial, src, dst, rt.Cost, want, failed)
				}
			}
		}
	}
}
