// Package route computes shortest paths over a topo.Graph. It serves two
// masters:
//
//   - the controller, which needs all-pairs distances to find the closest
//     middleboxes m_x^e and the candidate sets M_x^e of the paper (§III-B,
//     §III-C);
//   - the OSPF substrate, whose per-router SPF calculation is exactly a
//     single-source run of the same algorithm over the link-state database.
//
// Ties are broken deterministically by preferring the lower neighbor
// NodeID, so routing tables and controller assignments are reproducible.
package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"sdme/internal/topo"
)

// Infinity marks unreachable nodes in distance results.
var Infinity = math.Inf(1)

// Tree is the result of a single-source shortest-path computation.
type Tree struct {
	Source topo.NodeID
	// Dist[v] is the metric distance from Source to v, Infinity if
	// unreachable.
	Dist []float64
	// Parent[v] is the predecessor of v on its shortest path, or
	// topo.InvalidNode for the source and unreachable nodes.
	Parent []topo.NodeID
	// FirstHop[v] is the first node after Source on the path to v (used
	// directly as the routing-table next hop), or topo.InvalidNode.
	FirstHop []topo.NodeID
}

// Option configures a shortest-path run.
type Option func(*options)

type options struct {
	transitOK func(topo.NodeID) bool
}

// WithTransitFilter restricts which nodes may carry transit traffic
// (appear as interior nodes of a path). Sources and destinations are
// always allowed. The OSPF layer uses this to keep hosts, proxies and
// middleboxes from becoming transit: only routers forward other nodes'
// packets.
func WithTransitFilter(ok func(topo.NodeID) bool) Option {
	return func(o *options) { o.transitOK = ok }
}

// RouterTransitOnly is the standard transit filter: only routing-capable
// nodes (core, edge, gateway) carry transit traffic.
func RouterTransitOnly(g *topo.Graph) Option {
	return WithTransitFilter(func(id topo.NodeID) bool {
		return g.Node(id).Kind.IsRouter()
	})
}

type pqItem struct {
	node topo.NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node // deterministic tie-break
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPaths runs Dijkstra from src over g.
func ShortestPaths(g *topo.Graph, src topo.NodeID, opts ...Option) *Tree {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	n := g.NumNodes()
	t := &Tree{
		Source:   src,
		Dist:     make([]float64, n),
		Parent:   make([]topo.NodeID, n),
		FirstHop: make([]topo.NodeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = Infinity
		t.Parent[i] = topo.InvalidNode
		t.FirstHop[i] = topo.InvalidNode
	}
	t.Dist[src] = 0

	done := make([]bool, n)
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		// Nodes that cannot carry transit traffic are dead ends: we may
		// reach them, but never relax edges out of them (except from the
		// source itself).
		if u != src && o.transitOK != nil && !o.transitOK(u) {
			continue
		}
		for _, adj := range g.Neighbors(u) {
			v := adj.Neighbor
			if done[v] {
				continue
			}
			nd := t.Dist[u] + g.Link(adj.LinkIdx).Cost
			better := nd < t.Dist[v]
			// Equal-cost tie: prefer the path whose predecessor has the
			// lower ID so results are deterministic regardless of heap
			// ordering quirks.
			if nd == t.Dist[v] && t.Parent[v] != topo.InvalidNode && u < t.Parent[v] {
				better = true
			}
			if !better {
				continue
			}
			t.Dist[v] = nd
			t.Parent[v] = u
			if u == src {
				t.FirstHop[v] = v
			} else {
				t.FirstHop[v] = t.FirstHop[u]
			}
			heap.Push(q, pqItem{node: v, dist: nd})
		}
	}
	return t
}

// PathTo reconstructs the node sequence from the tree's source to dst,
// inclusive of both endpoints. It returns nil if dst is unreachable.
func (t *Tree) PathTo(dst topo.NodeID) []topo.NodeID {
	if int(dst) >= len(t.Dist) || math.IsInf(t.Dist[dst], 1) {
		return nil
	}
	var rev []topo.NodeID
	for v := dst; v != topo.InvalidNode; v = t.Parent[v] {
		rev = append(rev, v)
		if v == t.Source {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if rev[0] != t.Source {
		return nil
	}
	return rev
}

// Reachable reports whether dst is reachable from the tree's source.
func (t *Tree) Reachable(dst topo.NodeID) bool {
	return int(dst) < len(t.Dist) && !math.IsInf(t.Dist[dst], 1)
}

// AllPairs holds a shortest-path tree per source of interest. Trees are
// computed lazily and cached; the cache is NOT safe for concurrent use.
type AllPairs struct {
	g     *topo.Graph
	opts  []Option
	trees map[topo.NodeID]*Tree
}

// NewAllPairs creates a lazy all-pairs calculator over g.
func NewAllPairs(g *topo.Graph, opts ...Option) *AllPairs {
	return &AllPairs{g: g, opts: opts, trees: make(map[topo.NodeID]*Tree)}
}

// Tree returns (computing if needed) the shortest-path tree rooted at src.
func (ap *AllPairs) Tree(src topo.NodeID) *Tree {
	if t, ok := ap.trees[src]; ok {
		return t
	}
	t := ShortestPaths(ap.g, src, ap.opts...)
	ap.trees[src] = t
	return t
}

// Dist returns the metric distance between two nodes.
func (ap *AllPairs) Dist(a, b topo.NodeID) float64 { return ap.Tree(a).Dist[b] }

// Closest returns, among candidates, the one nearest to x (ties broken by
// lower NodeID). It returns topo.InvalidNode if none is reachable. This is
// the paper's m_x^e computation.
func (ap *AllPairs) Closest(x topo.NodeID, candidates []topo.NodeID) topo.NodeID {
	ranked := ap.KClosest(x, candidates, 1)
	if len(ranked) == 0 {
		return topo.InvalidNode
	}
	return ranked[0]
}

// KClosest returns up to k candidates ordered by increasing distance from
// x (ties by lower NodeID), skipping unreachable ones. This is the
// paper's M_x^e computation: the k closest middleboxes offering a
// function. x itself is excluded if it appears among the candidates.
func (ap *AllPairs) KClosest(x topo.NodeID, candidates []topo.NodeID, k int) []topo.NodeID {
	t := ap.Tree(x)
	type cand struct {
		id topo.NodeID
		d  float64
	}
	ranked := make([]cand, 0, len(candidates))
	for _, c := range candidates {
		if c == x || !t.Reachable(c) {
			continue
		}
		ranked = append(ranked, cand{id: c, d: t.Dist[c]})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].d != ranked[j].d {
			return ranked[i].d < ranked[j].d
		}
		return ranked[i].id < ranked[j].id
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]topo.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].id
	}
	return out
}

// HopCount returns the number of links on the shortest path between two
// nodes, or -1 if unreachable. With unit link costs this equals Dist, but
// it stays correct under weighted links.
func (ap *AllPairs) HopCount(a, b topo.NodeID) int {
	p := ap.Tree(a).PathTo(b)
	if p == nil {
		return -1
	}
	return len(p) - 1
}

// Validate checks a tree for internal consistency; tests use it as a
// cheap structural invariant on random graphs.
func (t *Tree) Validate(g *topo.Graph) error {
	for v := range t.Dist {
		id := topo.NodeID(v)
		if id == t.Source {
			if t.Dist[v] != 0 {
				return fmt.Errorf("route: source distance = %v", t.Dist[v])
			}
			continue
		}
		if math.IsInf(t.Dist[v], 1) {
			if t.Parent[v] != topo.InvalidNode {
				return fmt.Errorf("route: unreachable node %d has parent", v)
			}
			continue
		}
		p := t.Parent[v]
		if p == topo.InvalidNode {
			return fmt.Errorf("route: reachable node %d has no parent", v)
		}
		if !g.HasLink(p, id) {
			return fmt.Errorf("route: parent edge %d-%d not in graph", p, v)
		}
		found := false
		for _, adj := range g.Neighbors(p) {
			if adj.Neighbor == id && t.Dist[p]+g.Link(adj.LinkIdx).Cost == t.Dist[v] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("route: node %d distance %v inconsistent with parent %d (%v)",
				v, t.Dist[v], p, t.Dist[p])
		}
	}
	return nil
}
