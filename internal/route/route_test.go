package route

import (
	"math"
	"math/rand"
	"testing"

	"sdme/internal/topo"
)

// lineGraph builds a -- b -- c -- d with the given costs.
func lineGraph(costs ...float64) (*topo.Graph, []topo.NodeID) {
	g := topo.NewGraph()
	ids := make([]topo.NodeID, len(costs)+1)
	for i := range ids {
		ids[i] = g.AddNode(topo.Node{Name: string(rune('a' + i)), Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	}
	for i, c := range costs {
		g.AddLink(topo.Link{A: ids[i], B: ids[i+1], Cost: c})
	}
	return g, ids
}

func TestShortestPathsLine(t *testing.T) {
	g, ids := lineGraph(1, 2, 3)
	tr := ShortestPaths(g, ids[0])
	wantDist := []float64{0, 1, 3, 6}
	for i, w := range wantDist {
		if tr.Dist[ids[i]] != w {
			t.Errorf("dist[%d] = %v, want %v", i, tr.Dist[ids[i]], w)
		}
	}
	path := tr.PathTo(ids[3])
	if len(path) != 4 || path[0] != ids[0] || path[3] != ids[3] {
		t.Errorf("path = %v", path)
	}
	if tr.FirstHop[ids[3]] != ids[1] {
		t.Errorf("first hop = %v, want %v", tr.FirstHop[ids[3]], ids[1])
	}
	if err := tr.Validate(g); err != nil {
		t.Error(err)
	}
}

func TestShortestPathsPrefersCheaperRoute(t *testing.T) {
	// Square with a costly direct edge: a-d cost 10, a-b-c-d cost 3.
	g := topo.NewGraph()
	var ids [4]topo.NodeID
	for i := range ids {
		ids[i] = g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	}
	g.AddLink(topo.Link{A: ids[0], B: ids[3], Cost: 10})
	g.AddLink(topo.Link{A: ids[0], B: ids[1], Cost: 1})
	g.AddLink(topo.Link{A: ids[1], B: ids[2], Cost: 1})
	g.AddLink(topo.Link{A: ids[2], B: ids[3], Cost: 1})

	tr := ShortestPaths(g, ids[0])
	if tr.Dist[ids[3]] != 3 {
		t.Errorf("dist = %v, want 3", tr.Dist[ids[3]])
	}
	want := []topo.NodeID{ids[0], ids[1], ids[2], ids[3]}
	got := tr.PathTo(ids[3])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path = %v, want %v", got, want)
		}
	}
}

func TestUnreachable(t *testing.T) {
	g := topo.NewGraph()
	a := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	b := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	tr := ShortestPaths(g, a)
	if tr.Reachable(b) {
		t.Error("b should be unreachable")
	}
	if tr.PathTo(b) != nil {
		t.Error("PathTo unreachable should be nil")
	}
	if !math.IsInf(tr.Dist[b], 1) {
		t.Errorf("dist = %v, want +Inf", tr.Dist[b])
	}
}

func TestTransitFilter(t *testing.T) {
	// a -- m -- b where m is a middlebox: with the router-only transit
	// filter, b must be unreachable from a (m cannot forward transit),
	// but m itself must remain reachable.
	g := topo.NewGraph()
	a := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	m := g.AddNode(topo.Node{Kind: topo.KindMiddlebox, Attach: a})
	b := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	g.AddLink(topo.Link{A: a, B: m})
	g.AddLink(topo.Link{A: m, B: b})

	tr := ShortestPaths(g, a, RouterTransitOnly(g))
	if !tr.Reachable(m) {
		t.Error("middlebox itself must be reachable")
	}
	if tr.Reachable(b) {
		t.Error("traffic must not transit a middlebox")
	}

	// The source itself may be a non-router (a proxy originates traffic).
	tr2 := ShortestPaths(g, m, RouterTransitOnly(g))
	if !tr2.Reachable(a) || !tr2.Reachable(b) {
		t.Error("non-router source must still reach the network")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Diamond: a->b->d and a->c->d, equal cost. The path must prefer the
	// lower-ID intermediate node, every time.
	g := topo.NewGraph()
	a := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	b := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	c := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	d := g.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	g.AddLink(topo.Link{A: a, B: c}) // insert links in an order that would
	g.AddLink(topo.Link{A: c, B: d}) // favor c if ties were insertion-order
	g.AddLink(topo.Link{A: a, B: b})
	g.AddLink(topo.Link{A: b, B: d})

	for i := 0; i < 5; i++ {
		tr := ShortestPaths(g, a)
		path := tr.PathTo(d)
		if len(path) != 3 || path[1] != b {
			t.Fatalf("iteration %d: path = %v, want middle node %v", i, path, b)
		}
	}
}

func TestKClosest(t *testing.T) {
	g, ids := lineGraph(1, 1, 1, 1) // a-b-c-d-e
	ap := NewAllPairs(g)
	// Candidates c, e, b relative to a: distances 2, 4, 1.
	got := ap.KClosest(ids[0], []topo.NodeID{ids[2], ids[4], ids[1]}, 2)
	if len(got) != 2 || got[0] != ids[1] || got[1] != ids[2] {
		t.Errorf("KClosest = %v, want [%v %v]", got, ids[1], ids[2])
	}
	// k larger than candidate count returns all, ranked.
	got = ap.KClosest(ids[0], []topo.NodeID{ids[2], ids[4]}, 10)
	if len(got) != 2 || got[0] != ids[2] {
		t.Errorf("KClosest overflow = %v", got)
	}
	// Self is excluded.
	got = ap.KClosest(ids[0], []topo.NodeID{ids[0], ids[1]}, 5)
	if len(got) != 1 || got[0] != ids[1] {
		t.Errorf("KClosest self-exclusion = %v", got)
	}
	if ap.Closest(ids[0], []topo.NodeID{ids[3], ids[2]}) != ids[2] {
		t.Error("Closest wrong")
	}
	if ap.Closest(ids[0], nil) != topo.InvalidNode {
		t.Error("Closest of nothing should be InvalidNode")
	}
}

func TestHopCount(t *testing.T) {
	g, ids := lineGraph(5, 5, 5) // weighted links, 3 hops end to end
	ap := NewAllPairs(g)
	if hc := ap.HopCount(ids[0], ids[3]); hc != 3 {
		t.Errorf("HopCount = %d, want 3", hc)
	}
	if hc := ap.HopCount(ids[0], ids[0]); hc != 0 {
		t.Errorf("HopCount self = %d, want 0", hc)
	}
	g2 := topo.NewGraph()
	x := g2.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	y := g2.AddNode(topo.Node{Kind: topo.KindCoreRouter, Attach: topo.InvalidNode})
	if hc := NewAllPairs(g2).HopCount(x, y); hc != -1 {
		t.Errorf("HopCount unreachable = %d, want -1", hc)
	}
}

func TestAllPairsCaches(t *testing.T) {
	g, ids := lineGraph(1, 1)
	ap := NewAllPairs(g)
	t1 := ap.Tree(ids[0])
	t2 := ap.Tree(ids[0])
	if t1 != t2 {
		t.Error("Tree should be cached per source")
	}
}

func TestValidateOnRandomGraphs(t *testing.T) {
	// Structural invariant: every Dijkstra tree on random connected
	// graphs validates, and distances obey the triangle property along
	// parent edges (checked inside Validate).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := topo.Waxman(topo.WaxmanConfig{EdgeRouters: 20, CoreRouters: 8}, rng)
		for _, src := range g.Routers() {
			tr := ShortestPaths(g, src)
			if err := tr.Validate(g); err != nil {
				t.Fatalf("trial %d src %v: %v", trial, src, err)
			}
		}
	}
}

func TestSymmetricDistances(t *testing.T) {
	// On an undirected graph, dist(a,b) == dist(b,a) for all router pairs.
	rng := rand.New(rand.NewSource(7))
	g := topo.Campus(topo.CampusConfig{}, rng)
	ap := NewAllPairs(g)
	routers := g.Routers()
	for _, a := range routers {
		for _, b := range routers {
			if da, db := ap.Dist(a, b), ap.Dist(b, a); da != db {
				t.Fatalf("asymmetric dist %v<->%v: %v vs %v", a, b, da, db)
			}
		}
	}
}

func BenchmarkShortestPathsCampus(b *testing.B) {
	g := topo.Campus(topo.CampusConfig{WithProxies: true}, rand.New(rand.NewSource(1)))
	src := g.Routers()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestPaths(g, src, RouterTransitOnly(g))
	}
}

func BenchmarkShortestPathsWaxman(b *testing.B) {
	g := topo.Waxman(topo.WaxmanConfig{}, rand.New(rand.NewSource(1)))
	src := g.Routers()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestPaths(g, src, RouterTransitOnly(g))
	}
}
