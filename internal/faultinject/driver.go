package faultinject

import (
	"sync"
	"time"
)

// Scheduler is the slice of the discrete-event engine the simulator
// driver needs (sim.Engine satisfies it). Keeping it an interface keeps
// this package dependency-free of the simulator.
type Scheduler interface {
	// After runs fn delayUS microseconds of virtual time from now.
	After(delayUS int64, fn func())
}

// DriveSim schedules every resolved event of the schedule onto a
// discrete-event engine, calling apply at each event's virtual firing
// time. Events at the same resolved instant apply in script order (the
// engine's FIFO tie-break preserves the order DriveSim submits them in).
func DriveSim(s *Schedule, eng Scheduler, apply func(Event)) {
	for _, e := range s.Resolve() {
		e := e
		eng.After(e.AtUS, func() { apply(e) })
	}
}

// LiveDriver replays a schedule against the live runtime on wall-clock
// timers. Events fire from a single goroutine in resolved order, so an
// apply function touching shared state needs no ordering logic of its
// own (it still needs the usual locking against other goroutines).
type LiveDriver struct {
	events []Event
	apply  func(Event)

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu      sync.Mutex
	applied int
}

// NewLiveDriver prepares a live replay; call Start to begin firing.
func NewLiveDriver(s *Schedule, apply func(Event)) *LiveDriver {
	return &LiveDriver{
		events: s.Resolve(),
		apply:  apply,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start begins the replay. Offsets are measured from this call.
func (d *LiveDriver) Start() {
	go d.run()
}

// Stop cancels any unfired events and waits for the replay goroutine.
// Safe to call multiple times and after natural completion.
func (d *LiveDriver) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// Wait blocks until every event has fired (or Stop cancels the rest).
func (d *LiveDriver) Wait() { <-d.done }

// Applied reports how many events have fired so far.
func (d *LiveDriver) Applied() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied
}

func (d *LiveDriver) run() {
	defer close(d.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var elapsed time.Duration
	for _, e := range d.events {
		at := time.Duration(e.AtUS) * time.Microsecond
		if wait := at - elapsed; wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-d.stop:
				return
			}
			elapsed = at
		}
		select {
		case <-d.stop:
			return
		default:
		}
		d.apply(e)
		d.mu.Lock()
		d.applied++
		d.mu.Unlock()
	}
}
