// Package faultinject is the repository's deterministic fault-schedule
// engine — the machinery behind the paper's dependability claim (§III,
// failure handling). A Schedule is a seedable, reproducible script of
// faults (middlebox crash/recover, device wedge, management-connection
// drop/delay/ack-loss) that one format drives into both execution
// substrates: the discrete-event simulator (events land on the virtual
// clock via a Scheduler) and the live UDP runtime (events land on wall
// timers via a Driver). The same schedule therefore produces the same
// failure story in simulation and over real sockets, which is what makes
// the recovery-convergence experiments comparable across the two.
//
// Determinism contract: given the same Seed, Resolve always yields the
// same jittered event times in the same order. All randomness comes from
// a private seeded source; the package never touches the global
// math/rand state or the wall clock for decisions (wall timers only fire
// the pre-resolved times).
package faultinject

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"sdme/internal/topo"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindCrash permanently stops a middlebox/device (live: Device.Stop;
	// sim: Network.SetNodeDown true).
	KindCrash Kind = iota + 1
	// KindRecover brings a crashed/down node back (sim: SetNodeDown
	// false; live runtimes that cannot resurrect a socket may map it to
	// un-marking the failure).
	KindRecover
	// KindWedge blocks a device's loop — alive at the socket, dead at the
	// dataplane — until a matching KindUnwedge.
	KindWedge
	// KindUnwedge releases a wedged device.
	KindUnwedge
	// KindConnDrop kills a node's management connection mid-stream (the
	// agent is expected to heal itself by reconnecting).
	KindConnDrop
	// KindConnDelay imposes Param microseconds of delay on each frame the
	// node's fault-wrapped management connection writes.
	KindConnDelay
	// KindAckLoss discards the next Param frames written on the node's
	// fault-wrapped management connection (acks and measurement reports).
	KindAckLoss
	// KindPartition severs both directions between a node pair: Target and
	// the peer named by Param each lose their connection to the other
	// (live: both management conns dropped; sim: both nodes see the other
	// as down). Schedule a second partition event with the same pair after
	// the outage window to model healing, or rely on agent reconnects.
	KindPartition
	// KindLeaderKill crashes whichever controller replica currently
	// leads (Target is ignored — the leader is resolved at fire time).
	// Drivers hosting a replicated controller group (experiments/ha.go)
	// handle it; single-controller drivers treat it as a no-op.
	KindLeaderKill
)

var kindNames = map[Kind]string{
	KindCrash:      "crash",
	KindRecover:    "recover",
	KindWedge:      "wedge",
	KindUnwedge:    "unwedge",
	KindConnDrop:   "conn-drop",
	KindConnDelay:  "conn-delay",
	KindAckLoss:    "ack-loss",
	KindPartition:  "partition",
	KindLeaderKill: "leaderkill",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// AtUS is the nominal offset from schedule start, in microseconds
	// (virtual microseconds under the simulator, wall microseconds live).
	AtUS int64
	// JitterUS widens the firing window: the resolved offset is drawn
	// uniformly from [AtUS, AtUS+JitterUS] by the schedule's seeded RNG.
	JitterUS int64
	Kind     Kind
	Target   topo.NodeID
	// Param carries the kind-specific argument: delay µs for
	// KindConnDelay, frame count for KindAckLoss, the peer node ID for
	// KindPartition.
	Param int64
}

func (e Event) String() string {
	s := fmt.Sprintf("%s %s %d", durationUS(e.AtUS), e.Kind, int(e.Target))
	if e.Param != 0 {
		s += fmt.Sprintf(" param=%d", e.Param)
	}
	if e.JitterUS != 0 {
		s += fmt.Sprintf(" jitter=%s", durationUS(e.JitterUS))
	}
	return s
}

func durationUS(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}

// Schedule is a reproducible fault script.
type Schedule struct {
	// Seed drives every jitter draw; the zero schedule (seed 0, no
	// jitter) is fully fixed.
	Seed   int64
	Events []Event
}

// Validate rejects malformed schedules before they reach a driver.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if e.AtUS < 0 || e.JitterUS < 0 {
			return fmt.Errorf("faultinject: event %d: negative time (at=%d jitter=%d)", i, e.AtUS, e.JitterUS)
		}
		if _, ok := kindNames[e.Kind]; !ok {
			return fmt.Errorf("faultinject: event %d: unknown kind %d", i, int(e.Kind))
		}
		switch e.Kind {
		case KindConnDelay:
			if e.Param < 0 {
				return fmt.Errorf("faultinject: event %d: conn-delay needs param >= 0", i)
			}
		case KindAckLoss:
			if e.Param <= 0 {
				return fmt.Errorf("faultinject: event %d: ack-loss needs param > 0 (frames to drop)", i)
			}
		case KindPartition:
			if e.Param < 0 {
				return fmt.Errorf("faultinject: event %d: partition needs param = peer node id", i)
			}
			if e.Param == int64(e.Target) {
				return fmt.Errorf("faultinject: event %d: partition peer equals target %d", i, int(e.Target))
			}
		}
	}
	return nil
}

// Resolve applies the seeded jitter and returns the events sorted by
// firing time (stable for ties, so same-instant events keep script
// order). The receiver is not modified; Resolve is deterministic for a
// given (Seed, Events) pair.
func (s *Schedule) Resolve() []Event {
	rng := rand.New(rand.NewSource(s.Seed))
	out := make([]Event, len(s.Events))
	for i, e := range s.Events {
		if e.JitterUS > 0 {
			e.AtUS += rng.Int63n(e.JitterUS + 1)
		}
		e.JitterUS = 0
		out[i] = e
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtUS < out[j].AtUS })
	return out
}

// String renders the schedule in the textual format Parse reads.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads the textual schedule format, one directive per line:
//
//	# comment
//	seed 42
//	5ms   crash     12
//	20ms  conn-drop 3
//	30ms  wedge     7  jitter=2ms
//	45ms  conn-delay 3 param=1500
//	60ms  unwedge   7
//
// The first column is a Go duration (the offset from schedule start),
// the second a fault kind, the third the target node ID. Optional
// key=value fields set jitter (duration) and param (integer).
func Parse(r io.Reader) (*Schedule, error) {
	s := &Schedule{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "seed" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("faultinject: line %d: seed wants one value", lineNo)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: line %d: bad seed %q", lineNo, fields[1])
			}
			s.Seed = v
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("faultinject: line %d: want <at> <kind> <node>", lineNo)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("faultinject: line %d: bad offset %q: %v", lineNo, fields[0], err)
		}
		kind, ok := kindByName[fields[1]]
		if !ok {
			return nil, fmt.Errorf("faultinject: line %d: unknown kind %q", lineNo, fields[1])
		}
		node, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("faultinject: line %d: bad node %q", lineNo, fields[2])
		}
		ev := Event{AtUS: at.Microseconds(), Kind: kind, Target: topo.NodeID(node)}
		for _, f := range fields[3:] {
			k, v, found := strings.Cut(f, "=")
			if !found {
				return nil, fmt.Errorf("faultinject: line %d: bad field %q", lineNo, f)
			}
			switch k {
			case "jitter":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("faultinject: line %d: bad jitter %q: %v", lineNo, v, err)
				}
				ev.JitterUS = d.Microseconds()
			case "param":
				p, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: line %d: bad param %q", lineNo, v)
				}
				ev.Param = p
			default:
				return nil, fmt.Errorf("faultinject: line %d: unknown field %q", lineNo, k)
			}
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse parses a schedule literal; it panics on error (tests and
// example scripts).
func MustParse(text string) *Schedule {
	s, err := Parse(strings.NewReader(text))
	if err != nil {
		panic(err)
	}
	return s
}
