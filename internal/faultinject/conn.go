package faultinject

import (
	"encoding/binary"
	"net"
	"sync"
	"time"
)

// Conn wraps a management-channel connection and injects faults at frame
// granularity. The mgmt wire protocol is length-prefixed (4-byte
// big-endian size, then the payload), and writers may split one message
// across several Write calls; Conn reassembles complete frames before
// deciding their fate, so a dropped message never leaves a torn prefix
// in the stream — the peer only ever sees whole frames or silence.
//
// Faults available: DropNow (kill the connection mid-stream), a per-frame
// write delay (slow channel), and counted frame loss (lost acks or
// measurement reports).
type Conn struct {
	inner net.Conn

	mu         sync.Mutex
	buf        []byte
	delay      time.Duration
	dropFrames int64
	// DroppedFrames / DelayedFrames count injected faults for assertions.
	droppedFrames int64
	delayedFrames int64
}

var _ net.Conn = (*Conn)(nil)

// WrapConn wraps an established connection.
func WrapConn(inner net.Conn) *Conn { return &Conn{inner: inner} }

// SetWriteDelay imposes d of delay on every subsequently written frame
// (0 removes it).
func (c *Conn) SetWriteDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	c.delay = d
}

// DropFrames discards the next n complete frames written through the
// connection.
func (c *Conn) DropFrames(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.dropFrames = n
}

// DropNow severs the connection mid-stream: both directions fail from
// here on, as if the peer's kernel reset the socket.
func (c *Conn) DropNow() { _ = c.inner.Close() }

// Stats reports how many frames faults have consumed or delayed.
func (c *Conn) Stats() (dropped, delayed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.droppedFrames, c.delayedFrames
}

// Write buffers bytes until complete frames are available, then forwards
// or drops each whole frame per the current directives. It reports the
// full input length as written even for dropped frames — from the
// writer's perspective the fault is invisible, exactly like real loss.
func (c *Conn) Write(p []byte) (int, error) {
	// Decide each complete frame's fate under the lock, but sleep and hit
	// the socket outside it — otherwise an injected delay stalls every
	// directive call (DropFrames, Stats) behind it. Callers already
	// serialize writes per connection (the wire protocol's framing
	// demands it), so releasing the lock between extraction and the
	// socket write cannot reorder frames.
	var forward [][]byte
	var delay time.Duration
	c.mu.Lock()
	c.buf = append(c.buf, p...)
	for {
		if len(c.buf) < 4 {
			break
		}
		frameLen := int(binary.BigEndian.Uint32(c.buf[:4]))
		total := 4 + frameLen
		if len(c.buf) < total {
			break
		}
		frame := c.buf[:total:total]
		c.buf = c.buf[total:]
		if c.dropFrames > 0 {
			c.dropFrames--
			c.droppedFrames++
			continue
		}
		if c.delay > 0 {
			c.delayedFrames++
			delay = c.delay
		}
		forward = append(forward, frame)
	}
	c.mu.Unlock()
	for _, frame := range forward {
		if delay > 0 {
			time.Sleep(delay)
		}
		if _, err := c.inner.Write(frame); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (c *Conn) Read(p []byte) (int, error)         { return c.inner.Read(p) }
func (c *Conn) Close() error                       { return c.inner.Close() }
func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// ConnTap wraps every connection a self-healing agent dials, so fault
// directives survive reconnects: a delay or frame-loss directive applies
// to whichever connection is currently live, and DropConn kills the
// current one (the agent is expected to dial a fresh connection, which
// the tap wraps in turn).
type ConnTap struct {
	mu         sync.Mutex
	cur        *Conn
	delay      time.Duration
	dropFrames int64
	dials      int
}

// Dial decorates a dial function so every connection it produces is
// fault-wrapped and registered as the tap's current connection.
func (t *ConnTap) Dial(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		inner, err := dial()
		if err != nil {
			return nil, err
		}
		c := WrapConn(inner)
		t.mu.Lock()
		c.SetWriteDelay(t.delay)
		if t.dropFrames > 0 {
			c.DropFrames(t.dropFrames)
			t.dropFrames = 0
		}
		t.cur = c
		t.dials++
		t.mu.Unlock()
		return c, nil
	}
}

// SetWriteDelay applies to the current and all future connections.
func (t *ConnTap) SetWriteDelay(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.delay = d
	if t.cur != nil {
		t.cur.SetWriteDelay(d)
	}
}

// DropFrames discards the next n frames on the current connection (or
// the next one dialed, if none is live).
func (t *ConnTap) DropFrames(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur != nil {
		t.cur.DropFrames(n)
		return
	}
	t.dropFrames += n
}

// DropConn severs the current connection; it reports whether one existed.
func (t *ConnTap) DropConn() bool {
	t.mu.Lock()
	cur := t.cur
	t.mu.Unlock()
	if cur == nil {
		return false
	}
	cur.DropNow()
	return true
}

// Dials reports how many connections the tap has wrapped — 1 for the
// initial dial, +1 per reconnect.
func (t *ConnTap) Dials() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dials
}

// CurrentStats reports the current connection's fault counters (zeros if
// no connection is live).
func (t *ConnTap) CurrentStats() (dropped, delayed int64) {
	t.mu.Lock()
	cur := t.cur
	t.mu.Unlock()
	if cur == nil {
		return 0, 0
	}
	return cur.Stats()
}
