package faultinject_test

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"sdme/internal/faultinject"
	"sdme/internal/topo"
)

const sampleSchedule = `
# acceptance schedule: two middlebox crashes, one mgmt conn drop, one wedge
seed 42
5ms   crash     12
8ms   crash     13  jitter=3ms
20ms  conn-drop 3
30ms  wedge     7
45ms  conn-delay 3 param=1500
60ms  unwedge   7
`

func TestParseRoundTrip(t *testing.T) {
	s, err := faultinject.Parse(strings.NewReader(sampleSchedule))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || len(s.Events) != 6 {
		t.Fatalf("seed=%d events=%d", s.Seed, len(s.Events))
	}
	e := s.Events[1]
	if e.Kind != faultinject.KindCrash || e.Target != topo.NodeID(13) ||
		e.AtUS != 8000 || e.JitterUS != 3000 {
		t.Errorf("event 1 = %+v", e)
	}
	if s.Events[4].Param != 1500 {
		t.Errorf("conn-delay param = %d", s.Events[4].Param)
	}
	// String() re-parses to the same schedule.
	back, err := faultinject.Parse(strings.NewReader(s.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s.String())
	}
	if back.Seed != s.Seed || !reflect.DeepEqual(back.Events, s.Events) {
		t.Errorf("round trip changed schedule:\n%+v\n%+v", s.Events, back.Events)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"5ms explode 3",        // unknown kind
		"xx crash 3",           // bad duration
		"5ms crash notanode",   // bad node
		"5ms crash 3 what=1",   // unknown field
		"5ms ack-loss 3",       // ack-loss without frame count
		"5ms crash 3 jitter=z", // bad jitter
		"seed one\n5ms crash 3",
		"5ms partition 3 param=3", // partition with itself
	} {
		if _, err := faultinject.Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("parse accepted %q", bad)
		}
	}
}

func TestParsePartition(t *testing.T) {
	s, err := faultinject.Parse(strings.NewReader(`
seed 7
10ms partition 3 param=12
40ms partition 3 param=12 jitter=5ms
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 2 {
		t.Fatalf("events = %d", len(s.Events))
	}
	e := s.Events[0]
	if e.Kind != faultinject.KindPartition || e.Target != topo.NodeID(3) || e.Param != 12 {
		t.Errorf("partition event = %+v", e)
	}
	// Round-trips through the same text format as every other kind.
	back, err := faultinject.Parse(strings.NewReader(s.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s.String())
	}
	if !reflect.DeepEqual(back.Events, s.Events) {
		t.Errorf("round trip changed schedule:\n%+v\n%+v", s.Events, back.Events)
	}
}

func TestResolveDeterministicAndSorted(t *testing.T) {
	s := faultinject.MustParse(sampleSchedule)
	a := s.Resolve()
	b := s.Resolve()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed resolved differently:\n%v\n%v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i].AtUS < a[i-1].AtUS {
			t.Fatalf("resolved events unsorted: %v", a)
		}
	}
	// Jitter stays within the declared window.
	for i, e := range a {
		if e.JitterUS != 0 {
			t.Errorf("resolved event %d still carries jitter", i)
		}
	}
	s2 := *s
	s2.Seed = 43
	if reflect.DeepEqual(s2.Resolve(), a) {
		// With a 3ms jitter window, two seeds agreeing exactly is ~0.03%;
		// treat it as a wiring bug (seed ignored).
		t.Error("different seeds produced identical jitter")
	}
}

// fakeEngine records scheduled delays in FIFO order, standing in for
// sim.Engine.
type fakeEngine struct {
	delays []int64
	fns    []func()
}

func (f *fakeEngine) After(delay int64, fn func()) {
	f.delays = append(f.delays, delay)
	f.fns = append(f.fns, fn)
}

func TestDriveSimSchedulesResolvedTimes(t *testing.T) {
	s := faultinject.MustParse("seed 7\n1ms crash 1\n2ms crash 2 jitter=1ms\n")
	eng := &fakeEngine{}
	var applied []faultinject.Event
	faultinject.DriveSim(s, eng, func(e faultinject.Event) { applied = append(applied, e) })
	want := s.Resolve()
	if len(eng.delays) != len(want) {
		t.Fatalf("scheduled %d events, want %d", len(eng.delays), len(want))
	}
	for i := range want {
		if eng.delays[i] != want[i].AtUS {
			t.Errorf("event %d scheduled at %d, want %d", i, eng.delays[i], want[i].AtUS)
		}
		eng.fns[i]()
	}
	if !reflect.DeepEqual(applied, want) {
		t.Errorf("applied %v, want %v", applied, want)
	}
}

func TestLiveDriverFiresInOrderAndStops(t *testing.T) {
	s := faultinject.MustParse("1ms crash 1\n2ms crash 2\n3ms wedge 3\n")
	var got []topo.NodeID
	done := make(chan struct{})
	d := faultinject.NewLiveDriver(s, func(e faultinject.Event) {
		got = append(got, e.Target) // single goroutine: no lock needed
		if len(got) == 3 {
			close(done)
		}
	})
	d.Start()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("live driver never finished")
	}
	d.Wait()
	want := []topo.NodeID{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	if d.Applied() != 3 {
		t.Errorf("Applied = %d", d.Applied())
	}
	d.Stop() // after completion: must not hang
}

func TestLiveDriverStopCancelsRest(t *testing.T) {
	s := faultinject.MustParse("1ms crash 1\n10s crash 2\n")
	fired := make(chan topo.NodeID, 2)
	d := faultinject.NewLiveDriver(s, func(e faultinject.Event) { fired <- e.Target })
	d.Start()
	select {
	case id := <-fired:
		if id != 1 {
			t.Fatalf("first event = %v", id)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("first event never fired")
	}
	d.Stop()
	if d.Applied() != 1 {
		t.Errorf("Applied after stop = %d", d.Applied())
	}
}

// pipeFrames writes framed messages through a fault Conn and returns what
// the reader side actually received, as frame payload strings.
func pipeFrames(t *testing.T, setup func(*faultinject.Conn), payloads []string) []string {
	t.Helper()
	client, server := net.Pipe()
	fc := faultinject.WrapConn(client)
	setup(fc)

	recvDone := make(chan []string, 1)
	go func() {
		var got []string
		buf := make([]byte, 4)
		for {
			if _, err := readFull(server, buf); err != nil {
				recvDone <- got
				return
			}
			n := int(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]))
			body := make([]byte, n)
			if _, err := readFull(server, body); err != nil {
				recvDone <- got
				return
			}
			got = append(got, string(body))
		}
	}()

	for _, p := range payloads {
		hdr := []byte{0, 0, 0, byte(len(p))}
		// Split the frame across two writes, like mgmt's writeMsg does.
		if _, err := fc.Write(hdr); err != nil {
			t.Fatal(err)
		}
		if _, err := fc.Write([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	_ = fc.Close()
	select {
	case got := <-recvDone:
		return got
	case <-time.After(3 * time.Second):
		t.Fatal("reader never finished")
		return nil
	}
}

func readFull(c net.Conn, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := c.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestConnDropsWholeFramesOnly(t *testing.T) {
	got := pipeFrames(t, func(c *faultinject.Conn) { c.DropFrames(2) },
		[]string{"aa", "bb", "cc", "dd"})
	want := []string{"cc", "dd"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("received %v, want %v (frame loss must not tear the stream)", got, want)
	}
}

func TestConnPassThrough(t *testing.T) {
	got := pipeFrames(t, func(*faultinject.Conn) {}, []string{"xy", "z"})
	if !reflect.DeepEqual(got, []string{"xy", "z"}) {
		t.Fatalf("received %v", got)
	}
}

func TestConnDropNowSeversBothDirections(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := faultinject.WrapConn(client)
	fc.DropNow()
	if _, err := fc.Write([]byte{0, 0, 0, 1, 'x'}); err == nil {
		t.Error("write succeeded on a dropped conn")
	}
	buf := make([]byte, 1)
	if _, err := fc.Read(buf); err == nil {
		t.Error("read succeeded on a dropped conn")
	}
}

func TestConnTapCarriesDirectivesAcrossDials(t *testing.T) {
	tap := &faultinject.ConnTap{}
	tap.DropFrames(1) // directive set before any connection exists
	var serverEnds []net.Conn
	dial := tap.Dial(func() (net.Conn, error) {
		c, s := net.Pipe()
		serverEnds = append(serverEnds, s)
		return c, nil
	})
	c1, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	// The pre-dial drop directive landed on the first connection: its
	// first frame vanishes, the second arrives.
	go func() {
		_, _ = c1.Write([]byte{0, 0, 0, 1, 'a'})
		_, _ = c1.Write([]byte{0, 0, 0, 1, 'b'})
	}()
	buf := make([]byte, 5)
	if err := serverEnds[0].SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := readFull(serverEnds[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[4] != 'b' {
		t.Errorf("first delivered frame = %q, want b", buf[4])
	}
	if !tap.DropConn() {
		t.Error("DropConn found no current conn")
	}
	if _, err := dial(); err != nil {
		t.Fatal(err)
	}
	if tap.Dials() != 2 {
		t.Errorf("Dials = %d", tap.Dials())
	}
}
