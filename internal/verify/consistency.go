package verify

import (
	"fmt"
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/topo"
)

// Cross-node plan consistency. The plan invariants in checks.go judge one
// plan against the topology; this check judges the FLEET against itself:
// after an epoch-fenced rollout, every node must be running the same plan
// generation. A node on epoch N−1 while its peers run N mixes two plans
// in one network — a flow can be classified under the old policy table at
// its proxy and load-balanced under the new weights at a middlebox, which
// is exactly the window the two-phase prepare/commit protocol exists to
// close. The conformance tests snapshot each node's running config plus
// its agent's last-applied epoch and feed them here.

// InvConsistency is the cross-node same-generation invariant.
const InvConsistency Invariant = "plan-consistency"

// NodePlanView is one node's running plan as observed from the node
// itself: the epoch its management agent last applied and the
// generation-defining scalars of its installed configuration. Candidate
// sets and weights legitimately differ per node (M_x^e depends on x), so
// they are judged by the per-plan invariants, not here.
type NodePlanView struct {
	// Epoch is the node's last applied configuration epoch.
	Epoch uint64
	// Term is the leadership term of the controller replica that pushed
	// the node's plan (0 in single-controller deployments, where term
	// fencing is not in play). A fleet split across terms ran plans from
	// two different leaders — the split-brain residue term fencing
	// exists to prevent.
	Term uint64
	// Strategy, HashSeed, LabelSwitching mirror enforce.Config.
	Strategy       enforce.Strategy
	HashSeed       uint64
	LabelSwitching bool
	// PolicyDigest summarizes the node's policy table; two nodes with
	// different digests classify the same packet differently.
	PolicyDigest string
}

// ViewOf builds a NodePlanView from an agent epoch and a node's Config().
func ViewOf(epoch uint64, cfg enforce.Config) NodePlanView {
	return NodePlanView{
		Epoch:          epoch,
		Strategy:       cfg.Strategy,
		HashSeed:       cfg.HashSeed,
		LabelSwitching: cfg.LabelSwitching,
		PolicyDigest:   policyDigest(cfg),
	}
}

// ViewOfTerm is ViewOf carrying the leadership term the node's agent
// last saw (mgmt.Agent.LastTerm) — replicated-controller deployments.
func ViewOfTerm(epoch, term uint64, cfg enforce.Config) NodePlanView {
	v := ViewOf(epoch, cfg)
	v.Term = term
	return v
}

// policyDigest renders the policy table deterministically: sorted by ID,
// each policy's identity, priority, descriptor, and chain.
func policyDigest(cfg enforce.Config) string {
	ps := make([]int, 0, len(cfg.Policies))
	byID := make(map[int]string, len(cfg.Policies))
	for _, p := range cfg.Policies {
		ps = append(ps, p.ID)
		byID[p.ID] = fmt.Sprintf("%d|%d|%v|%v;", p.ID, p.Prio, p.Desc, p.Actions)
	}
	sort.Ints(ps)
	out := ""
	for _, id := range ps {
		out += byID[id]
	}
	return out
}

// CheckConsistency verifies that every node runs the same plan
// generation. The reference is the view with the HIGHEST epoch (the
// newest committed generation — during a partial rollout the laggards are
// the anomaly, not the leaders); every disagreement with it on epoch,
// strategy, hash seed, label-switching mode, or policy table is an error
// attributed to the disagreeing node. An empty or single-node fleet is
// trivially consistent.
func CheckConsistency(views map[topo.NodeID]NodePlanView) []Violation {
	if len(views) < 2 {
		return nil
	}
	ids := make([]topo.NodeID, 0, len(views))
	for id := range views {
		ids = append(ids, id)
	}
	ids = topo.SortedIDs(ids)

	// The reference is the highest (Term, Epoch) view: a newer leadership
	// term outranks any epoch count from a deposed leader (the new leader
	// resumes epochs past the old high-water, but a stale replica's view
	// must never be the reference even if its epoch number races ahead).
	refID := ids[0]
	for _, id := range ids[1:] {
		v, r := views[id], views[refID]
		if v.Term > r.Term || (v.Term == r.Term && v.Epoch > r.Epoch) {
			refID = id
		}
	}
	ref := views[refID]

	var out []Violation
	for _, id := range ids {
		if id == refID {
			continue
		}
		v := views[id]
		if v.Term != ref.Term {
			out = append(out, Violation{
				Invariant: InvConsistency,
				Severity:  SevError,
				Node:      id,
				PolicyID:  -1,
				Detail: fmt.Sprintf("runs a plan from leadership term %d while node %d runs term %d's; the fleet spans two leaders",
					v.Term, int(refID), ref.Term),
			})
			// Epoch and scalar comparisons across terms are meaningless:
			// each leader numbers and plans independently.
			continue
		}
		if v.Epoch != ref.Epoch {
			out = append(out, Violation{
				Invariant: InvConsistency,
				Severity:  SevError,
				Node:      id,
				PolicyID:  -1,
				Detail: fmt.Sprintf("runs plan epoch %d while node %d runs %d; two generations are mixed",
					v.Epoch, int(refID), ref.Epoch),
			})
			// Scalar mismatches below would be redundant noise: a node one
			// epoch behind differs in content by construction.
			continue
		}
		if v.Strategy != ref.Strategy {
			out = append(out, Violation{
				Invariant: InvConsistency, Severity: SevError, Node: id, PolicyID: -1,
				Detail: fmt.Sprintf("strategy %v disagrees with node %d's %v at the same epoch %d",
					v.Strategy, int(refID), ref.Strategy, ref.Epoch),
			})
		}
		if v.HashSeed != ref.HashSeed {
			out = append(out, Violation{
				Invariant: InvConsistency, Severity: SevError, Node: id, PolicyID: -1,
				Detail: fmt.Sprintf("hash seed %d disagrees with node %d's %d at the same epoch %d",
					v.HashSeed, int(refID), ref.HashSeed, ref.Epoch),
			})
		}
		if v.LabelSwitching != ref.LabelSwitching {
			out = append(out, Violation{
				Invariant: InvConsistency, Severity: SevError, Node: id, PolicyID: -1,
				Detail: fmt.Sprintf("label switching %v disagrees with node %d's %v at the same epoch %d",
					v.LabelSwitching, int(refID), ref.LabelSwitching, ref.Epoch),
			})
		}
		if v.PolicyDigest != ref.PolicyDigest {
			out = append(out, Violation{
				Invariant: InvConsistency, Severity: SevError, Node: id, PolicyID: -1,
				Detail: fmt.Sprintf("policy table differs from node %d's at the same epoch %d",
					int(refID), ref.Epoch),
			})
		}
	}
	return out
}
