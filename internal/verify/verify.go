// Package verify statically checks a controller-computed enforcement
// plan before it is installed on any node. The controller's outputs —
// Dijkstra hot-potato assignments, candidate sets M_x^e, LP
// load-balancing weights, failure reassignments — are exactly the
// artifacts whose corruption silently breaks policy enforcement for an
// entire stub network, so they are verified as data rather than trusted
// as code.
//
// Five invariants are checked (see DESIGN.md, "Plan verification"):
//
//   - coverage: every function appearing in a policy chain has at least
//     one live candidate at every proxy and middlebox that does not
//     implement the function itself;
//   - loop: the tunnel overlay induced by each chain (x → m_x^e → …) is
//     free of cycles, and no chosen provider implements an *earlier*
//     function of the same chain (the dataplane infers chain position
//     from the earliest implemented function, so such a provider would
//     re-run a completed stage — a forwarding loop);
//   - hp-optimality: each candidate list is exactly the distance-sorted
//     prefix of the live providers (closest first, deterministic
//     tie-break), no longer than the configured k;
//   - lb-weights: every weight vector is finite, non-negative, parallel
//     to its candidate list, and (optionally) normalized;
//   - failed-candidate: no failed middlebox appears in any candidate set.
//
// All checks are pure reads: nothing in this package mutates the
// deployment, the routing state or the candidate sets, and no check
// needs a constructed enforce.Node — plans are verifiable before
// BuildNodes runs.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

// Severity grades a violation.
type Severity int

// Severity levels. Errors make a plan unsafe to install; warnings mark
// degraded-but-functional configurations (e.g. an all-zero weight vector
// that silently falls back to uniform selection).
const (
	SevWarning Severity = iota + 1
	SevError
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Invariant names one of the checked plan invariants.
type Invariant string

// The checked invariants.
const (
	InvCoverage  Invariant = "coverage"
	InvLoop      Invariant = "loop"
	InvHotPotato Invariant = "hp-optimality"
	InvWeights   Invariant = "lb-weights"
	InvFailed    Invariant = "failed-candidate"
)

// Violation is one invariant failure, attributed to a node and (when the
// failure is policy-specific) a policy.
type Violation struct {
	Invariant Invariant
	Severity  Severity
	// Node is the node owning the offending candidate set or weight
	// vector; topo.InvalidNode for plan-global findings.
	Node topo.NodeID
	// PolicyID is the affected policy, or -1 when the finding is not
	// tied to one policy.
	PolicyID int
	// Func is the chain function involved (zero when not applicable).
	Func policy.FuncType
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the violation on one line.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", v.Severity, v.Invariant)
	if v.Node != topo.InvalidNode {
		fmt.Fprintf(&b, " node %d", int(v.Node))
	}
	if v.PolicyID >= 0 {
		fmt.Fprintf(&b, " policy %d", v.PolicyID)
	}
	if v.Func != 0 {
		fmt.Fprintf(&b, " func %v", v.Func)
	}
	b.WriteString(": ")
	b.WriteString(v.Detail)
	return b.String()
}

// Plan bundles everything needed to verify a controller plan. Dep, AP,
// Policies and Candidates are required; the rest is optional.
type Plan struct {
	// Dep is the deployment the plan targets.
	Dep *enforce.Deployment
	// AP is the all-pairs shortest-path state the controller used. It
	// must be built over the same graph with the same transit filter, or
	// hp-optimality checks will disagree with the controller for
	// spurious reasons.
	AP *route.AllPairs
	// Policies is the global policy table.
	Policies *policy.Table
	// Candidates is the plan under test: M_x^e per node.
	Candidates map[topo.NodeID]map[policy.FuncType][]topo.NodeID
	// Weights optionally carries an LB solution's per-node weight
	// vectors (controller.LBSolution.Weights has this exact type).
	Weights map[topo.NodeID]map[enforce.WeightKey][]float64
	// Failed lists middleboxes currently considered down.
	Failed []topo.NodeID
	// K returns the configured candidate-set cap per function; nil
	// skips the prefix-size check.
	K func(policy.FuncType) int
	// RequireNormalized makes CheckWeights require each weight vector to
	// sum to 1±Tol. The controller's LP emits volume-valued vectors
	// (normalized at selection time), so it leaves this false; externally
	// supplied probability vectors should set it.
	RequireNormalized bool
	// Tol is the numeric tolerance (default 1e-6).
	Tol float64
}

func (p *Plan) tol() float64 {
	if p.Tol > 0 {
		return p.Tol
	}
	return 1e-6
}

// failedSet returns Failed as a set.
func (p *Plan) failedSet() map[topo.NodeID]bool {
	if len(p.Failed) == 0 {
		return nil
	}
	out := make(map[topo.NodeID]bool, len(p.Failed))
	for _, id := range p.Failed {
		out[id] = true
	}
	return out
}

// liveProviders returns the providers of e minus the failed set, the
// same population the controller assigns from.
func (p *Plan) liveProviders(e policy.FuncType) []topo.NodeID {
	all := p.Dep.Providers(e)
	failed := p.failedSet()
	if len(failed) == 0 {
		return all
	}
	out := make([]topo.NodeID, 0, len(all))
	for _, id := range all {
		if !failed[id] {
			out = append(out, id)
		}
	}
	return out
}

// implements reports whether node id implements function e.
func (p *Plan) implements(id topo.NodeID, e policy.FuncType) bool {
	for _, f := range p.Dep.FuncsOf(id) {
		if f == e {
			return true
		}
	}
	return false
}

// chainFuncs returns the functions referenced by any non-permit policy,
// sorted, each paired with the lowest policy ID referencing it.
func (p *Plan) chainFuncs() ([]policy.FuncType, map[policy.FuncType]int) {
	byFunc := make(map[policy.FuncType]int)
	for _, pol := range p.Policies.All() {
		for _, e := range pol.Actions {
			if id, ok := byFunc[e]; !ok || pol.ID < id {
				byFunc[e] = pol.ID
			}
		}
	}
	funcs := make([]policy.FuncType, 0, len(byFunc))
	for e := range byFunc {
		funcs = append(funcs, e)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i] < funcs[j] })
	return funcs, byFunc
}

// planNodes returns every proxy and middlebox, proxies first, each group
// in deployment order.
func (p *Plan) planNodes() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(p.Dep.ProxyNodes)+len(p.Dep.MBNodes))
	out = append(out, p.Dep.ProxyNodes...)
	out = append(out, p.Dep.MBNodes...)
	return out
}

// Check runs every invariant and returns all violations, deterministic
// in content and order. An empty result means the plan is safe to
// install (warnings included: none were found).
func Check(p Plan) []Violation {
	var out []Violation
	out = append(out, CheckCoverage(p)...)
	out = append(out, CheckLoops(p)...)
	out = append(out, CheckHotPotato(p)...)
	out = append(out, CheckFailed(p)...)
	if p.Weights != nil {
		out = append(out, CheckWeights(p)...)
	}
	return out
}

// Error wraps violations as an error; controller entry points return it
// when Options.Verify is set and a plan fails verification.
type Error struct {
	Violations []Violation
}

// Error renders a summary with every violation on its own line.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: plan has %d violation(s):", len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// AsError converts violations to an *Error carrying the SevError subset,
// or nil when none of them is an error (warnings alone do not make a
// plan uninstallable).
func AsError(vs []Violation) error {
	var hard []Violation
	for _, v := range vs {
		if v.Severity >= SevError {
			hard = append(hard, v)
		}
	}
	if len(hard) == 0 {
		return nil
	}
	return &Error{Violations: hard}
}
