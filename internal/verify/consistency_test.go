package verify_test

import (
	"strings"
	"testing"

	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
	"sdme/internal/verify"
)

func mkConfig(seed uint64) enforce.Config {
	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW})
	return enforce.Config{
		Policies: tbl.All(),
		Strategy: enforce.HotPotato,
		HashSeed: seed,
	}
}

func TestConsistencyCleanFleet(t *testing.T) {
	cfg := mkConfig(7)
	views := map[topo.NodeID]verify.NodePlanView{
		1: verify.ViewOf(3, cfg),
		2: verify.ViewOf(3, cfg),
		3: verify.ViewOf(3, cfg),
	}
	if vs := verify.CheckConsistency(views); len(vs) != 0 {
		t.Fatalf("clean fleet flagged: %v", vs)
	}
}

func TestConsistencyMixedEpochs(t *testing.T) {
	cfg := mkConfig(7)
	views := map[topo.NodeID]verify.NodePlanView{
		1: verify.ViewOf(3, cfg),
		2: verify.ViewOf(2, cfg), // laggard
		3: verify.ViewOf(3, cfg),
	}
	vs := verify.CheckConsistency(views)
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
	if vs[0].Node != 2 || vs[0].Invariant != verify.InvConsistency {
		t.Errorf("violation misattributed: %+v", vs[0])
	}
	if !strings.Contains(vs[0].Detail, "epoch 2") {
		t.Errorf("detail does not name the stale epoch: %s", vs[0].Detail)
	}
}

func TestConsistencyContentDivergenceAtSameEpoch(t *testing.T) {
	// Same epoch, different hash seed and policy table: both flagged.
	a := mkConfig(7)
	b := mkConfig(8)
	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(443)
	tbl.Add(d, policy.ActionList{policy.FuncIDS})
	b.Policies = tbl.All()

	views := map[topo.NodeID]verify.NodePlanView{
		1: verify.ViewOf(5, a),
		2: verify.ViewOf(5, b),
	}
	vs := verify.CheckConsistency(views)
	if len(vs) != 2 {
		t.Fatalf("want seed + policy violations, got %v", vs)
	}
	for _, v := range vs {
		if v.Severity != verify.SevError {
			t.Errorf("content divergence must be an error: %+v", v)
		}
	}
}

func TestConsistencySingleNodeTrivial(t *testing.T) {
	views := map[topo.NodeID]verify.NodePlanView{1: verify.ViewOf(1, mkConfig(1))}
	if vs := verify.CheckConsistency(views); vs != nil {
		t.Fatalf("single node flagged: %v", vs)
	}
}
