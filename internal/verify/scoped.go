package verify

import (
	"fmt"
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Scoped re-verification: the incremental pipeline only re-solves the
// chain instances its dependency index marked dirty, so it only needs the
// invariants re-checked for those instances' policies — everything else
// was verified when it was last solved and has not changed. CheckScoped
// restricts every invariant to a policy-ID scope; CheckDeltaEquivalence
// is the delta≡full check that a delta-applied configuration matches the
// from-scratch rebuild it is supposed to equal.

// InvEquivalence is the delta≡full invariant: applying per-node
// ConfigDeltas on top of the previous configuration must yield exactly
// the configuration a from-scratch build of the new plan produces.
const InvEquivalence Invariant = "delta-equivalence"

// CheckScoped runs the plan invariants restricted to the given policy
// IDs: coverage and loop checks consider only the scoped policies (and
// therefore only the functions their chains reference), hp-optimality and
// failed-candidate checks consider only the candidate lists those
// functions exercise, and the weight check considers only the scoped
// policies' vectors. An empty scope verifies nothing.
func CheckScoped(p Plan, policyIDs map[int]bool) []Violation {
	if len(policyIDs) == 0 {
		return nil
	}
	scoped := p

	tbl := policy.NewTable()
	funcs := make(map[policy.FuncType]bool)
	for _, pol := range p.Policies.All() {
		if !policyIDs[pol.ID] {
			continue
		}
		tbl.AddPolicy(pol)
		for _, e := range pol.Actions {
			funcs[e] = true
		}
	}
	scoped.Policies = tbl

	cands := make(map[topo.NodeID]map[policy.FuncType][]topo.NodeID, len(p.Candidates))
	for x, byFunc := range p.Candidates {
		m := make(map[policy.FuncType][]topo.NodeID, len(byFunc))
		for e, list := range byFunc {
			if funcs[e] {
				m[e] = list
			}
		}
		cands[x] = m
	}
	scoped.Candidates = cands

	if p.Weights != nil {
		w := make(map[topo.NodeID]map[enforce.WeightKey][]float64, len(p.Weights))
		for x, byKey := range p.Weights {
			m := make(map[enforce.WeightKey][]float64)
			for k, vec := range byKey {
				if policyIDs[k.PolicyID] {
					m[k] = vec
				}
			}
			if len(m) > 0 {
				w[x] = m
			}
		}
		scoped.Weights = w
	}
	return Check(scoped)
}

// CheckDeltaEquivalence compares a delta-applied configuration set
// against a from-scratch build of the same plan and reports every
// divergence: differing node sets, policy subsets, candidate lists,
// weight vectors, or strategy/feature flags. An empty result is the
// delta≡full guarantee the incremental pipeline relies on.
func CheckDeltaEquivalence(applied, full map[topo.NodeID]enforce.Config) []Violation {
	var out []Violation
	report := func(node topo.NodeID, policyID int, f policy.FuncType, format string, args ...interface{}) {
		out = append(out, Violation{
			Invariant: InvEquivalence,
			Severity:  SevError,
			Node:      node,
			PolicyID:  policyID,
			Func:      f,
			Detail:    fmt.Sprintf(format, args...),
		})
	}

	ids := make([]topo.NodeID, 0, len(applied)+len(full))
	seen := make(map[topo.NodeID]bool, len(applied)+len(full))
	for id := range applied {
		ids = append(ids, id)
		seen[id] = true
	}
	for id := range full {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		a, aok := applied[id]
		b, bok := full[id]
		if !aok || !bok {
			report(id, -1, 0, "node present in applied=%v full=%v", aok, bok)
			continue
		}
		if a.Strategy != b.Strategy || a.HashSeed != b.HashSeed ||
			a.LabelSwitching != b.LabelSwitching || a.UseTrie != b.UseTrie ||
			a.FlowTTL != b.FlowTTL || a.LabelTTL != b.LabelTTL {
			report(id, -1, 0, "strategy/flags differ: applied=%+v full=%+v",
				configFlags(a), configFlags(b))
		}
		comparePolicies(id, a.Policies, b.Policies, report)
		compareCandidates(id, a.Candidates, b.Candidates, report)
		compareWeights(id, a.Weights, b.Weights, report)
	}
	return out
}

type flagTuple struct {
	Strategy       enforce.Strategy
	HashSeed       uint64
	LabelSwitching bool
	UseTrie        bool
	FlowTTL        int64
	LabelTTL       int64
}

func configFlags(c enforce.Config) flagTuple {
	return flagTuple{c.Strategy, c.HashSeed, c.LabelSwitching, c.UseTrie, c.FlowTTL, c.LabelTTL}
}

type reportFunc func(node topo.NodeID, policyID int, f policy.FuncType, format string, args ...interface{})

func comparePolicies(id topo.NodeID, a, b []*policy.Policy, report reportFunc) {
	if len(a) != len(b) {
		report(id, -1, 0, "policy count differs: applied=%d full=%d", len(a), len(b))
		return
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Hash() != b[i].Hash() {
			report(id, b[i].ID, 0, "policy slot %d differs: applied=%v full=%v", i, a[i], b[i])
		}
	}
}

func compareCandidates(id topo.NodeID, a, b map[policy.FuncType][]topo.NodeID, report reportFunc) {
	for e, bl := range b {
		al, ok := a[e]
		if !ok {
			report(id, -1, e, "candidate list missing from applied config")
			continue
		}
		if !sameNodeList(al, bl) {
			report(id, -1, e, "candidate list differs: applied=%v full=%v", al, bl)
		}
	}
	for e := range a {
		if _, ok := b[e]; !ok {
			report(id, -1, e, "candidate list extra in applied config")
		}
	}
}

func compareWeights(id topo.NodeID, a, b map[enforce.WeightKey][]float64, report reportFunc) {
	for k, bv := range b {
		av, ok := a[k]
		if !ok {
			report(id, k.PolicyID, k.Func, "weight vector missing from applied config (key %+v)", k)
			continue
		}
		if !sameFloatList(av, bv) {
			report(id, k.PolicyID, k.Func, "weight vector differs (key %+v): applied=%v full=%v", k, av, bv)
		}
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			report(id, k.PolicyID, k.Func, "weight vector extra in applied config (key %+v)", k)
		}
	}
}

func sameNodeList(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameFloatList(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
