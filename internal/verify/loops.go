package verify

import (
	"fmt"
	"sort"
	"strings"

	"sdme/internal/policy"
	"sdme/internal/topo"
)

// CheckLoops verifies loop-freedom of the tunnel overlay each policy
// chain induces. Two distinct hazards are checked per chain:
//
//  1. Stage regression: the dataplane infers a packet's chain position
//     from the earliest function of the action list the receiving node
//     implements (enforce.Node.myFunc). If the provider chosen for stage
//     i also implements an earlier chain function, the packet's position
//     is re-inferred as that earlier stage and the completed prefix of
//     the chain re-runs — a forwarding loop even though every individual
//     candidate list looks sane.
//
//  2. Graph cycles: the union of per-stage fan-out edges (x → every
//     member of M_x^e) must be acyclic. With healthy assignments the
//     overlay is layered by chain stage and trivially acyclic; corrupted
//     candidate sets (a node listed as its own candidate, mutual
//     candidacy between multi-function boxes) introduce real cycles that
//     a per-list check cannot see.
//
// Chains are deduplicated by action signature so a table with hundreds
// of policies over the paper's four chain classes is verified in four
// passes.
func CheckLoops(p Plan) []Violation {
	var out []Violation
	seen := make(map[string]bool)
	for _, pol := range p.Policies.All() {
		if pol.Actions.IsPermit() {
			continue
		}
		sig := chainSignature(pol.Actions)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, checkChainLoops(p, pol.ID, pol.Actions)...)
	}
	return out
}

// chainSignature keys a chain by its exact function sequence.
func chainSignature(chain policy.ActionList) string {
	var b strings.Builder
	for _, e := range chain {
		fmt.Fprintf(&b, "%d,", int(e))
	}
	return b.String()
}

// checkChainLoops runs both hazard checks for one chain, attributing
// violations to the representative policy polID.
func checkChainLoops(p Plan, polID int, chain policy.ActionList) []Violation {
	var out []Violation

	// earliestStage[n] = first chain index whose function n implements,
	// or -1. This is the dataplane's position-inference function.
	earliest := func(n topo.NodeID) int {
		for i, e := range chain {
			if p.implements(n, e) {
				return i
			}
		}
		return -1
	}

	// Walk the overlay stage by stage, collecting node-level edges.
	// frontier holds the nodes that forward toward stage i's function:
	// the proxies for stage 0, then stage i-1's providers.
	edges := make(map[topo.NodeID][]topo.NodeID)
	frontier := append([]topo.NodeID(nil), p.Dep.ProxyNodes...)
	for i, e := range chain {
		nextSet := make(map[topo.NodeID]bool)
		for _, x := range frontier {
			if p.implements(x, e) {
				// x performs stage i itself; it forwards toward stage
				// i+1 from the next iteration's frontier.
				nextSet[x] = true
				continue
			}
			for _, y := range p.Candidates[x][e] {
				edges[x] = append(edges[x], y)
				nextSet[y] = true
				if es := earliest(y); es >= 0 && es < i {
					out = append(out, Violation{
						Invariant: InvLoop,
						Severity:  SevError,
						Node:      x,
						PolicyID:  polID,
						Func:      e,
						Detail: fmt.Sprintf("stage %d (%v) candidate node %d also implements earlier chain function %v (stage %d); the dataplane would re-run the completed prefix — forwarding loop",
							i, e, int(y), chain[es], es),
					})
				}
			}
		}
		frontier = frontier[:0]
		for n := range nextSet {
			frontier = append(frontier, n)
		}
		sort.Slice(frontier, func(a, b int) bool { return frontier[a] < frontier[b] })
	}

	if cycle := findCycle(edges); cycle != nil {
		parts := make([]string, len(cycle))
		for i, n := range cycle {
			parts[i] = fmt.Sprintf("%d", int(n))
		}
		out = append(out, Violation{
			Invariant: InvLoop,
			Severity:  SevError,
			Node:      cycle[0],
			PolicyID:  polID,
			Func:      chain[0],
			Detail:    fmt.Sprintf("tunnel overlay contains cycle %s", strings.Join(parts, " → ")),
		})
	}
	return out
}

// findCycle runs an iterative three-color DFS over the edge map and
// returns one cycle as a node sequence (first node repeated at the end),
// or nil. Roots are visited in ascending order so the reported cycle is
// deterministic.
func findCycle(edges map[topo.NodeID][]topo.NodeID) []topo.NodeID {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make(map[topo.NodeID]int)
	parent := make(map[topo.NodeID]topo.NodeID)

	roots := make([]topo.NodeID, 0, len(edges))
	for n := range edges {
		roots = append(roots, n)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	var dfs func(n topo.NodeID) []topo.NodeID
	dfs = func(n topo.NodeID) []topo.NodeID {
		color[n] = grey
		next := append([]topo.NodeID(nil), edges[n]...)
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, m := range next {
			switch color[m] {
			case white:
				parent[m] = n
				if c := dfs(m); c != nil {
					return c
				}
			case grey:
				// Back edge n → m: reconstruct m … n m.
				cycle := []topo.NodeID{m}
				for v := n; v != m; v = parent[v] {
					cycle = append(cycle, v)
				}
				// parent chain gives the path reversed; flip the tail.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return append(cycle, m)
			}
		}
		color[n] = black
		return nil
	}
	for _, r := range roots {
		if color[r] == white {
			if c := dfs(r); c != nil {
				return c
			}
		}
	}
	return nil
}
