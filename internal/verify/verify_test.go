package verify_test

import (
	"math"
	"math/rand"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
	"sdme/internal/verify"
)

// planBed is a campus deployment with a healthy controller-computed plan
// that corruption tests mutate one invariant at a time.
type planBed struct {
	g     *topo.Graph
	dep   *enforce.Deployment
	ap    *route.AllPairs
	tbl   *policy.Table
	polID int
	fw    [3]topo.NodeID
	ids   [2]topo.NodeID
	cands map[topo.NodeID]map[policy.FuncType][]topo.NodeID
}

func kTwo(policy.FuncType) int { return 2 }

func newPlanBed(t *testing.T, seed int64) *planBed {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 6, EdgeRouters: 4, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	b := &planBed{g: g, dep: dep}
	b.fw[0] = dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	b.fw[1] = dep.AddMiddlebox(cores[3], "fw2", policy.FuncFW)
	b.fw[2] = dep.AddMiddlebox(cores[5], "fw3", policy.FuncFW)
	b.ids[0] = dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)
	b.ids[1] = dep.AddMiddlebox(cores[4], "ids2", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})
	b.tbl = tbl
	b.polID = tbl.All()[0].ID
	b.ap = route.NewAllPairs(g, route.RouterTransitOnly(g))

	ctl := controller.New(dep, b.ap, tbl, controller.Options{
		K: map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
	})
	cands, err := ctl.ComputeCandidates()
	if err != nil {
		t.Fatal(err)
	}
	b.cands = cands
	return b
}

// plan returns a Plan over a deep copy of the healthy candidates, safe to
// corrupt per test case.
func (b *planBed) plan() verify.Plan {
	cp := make(map[topo.NodeID]map[policy.FuncType][]topo.NodeID, len(b.cands))
	for x, byFunc := range b.cands {
		cp[x] = make(map[policy.FuncType][]topo.NodeID, len(byFunc))
		for e, list := range byFunc {
			cp[x][e] = append([]topo.NodeID(nil), list...)
		}
	}
	return verify.Plan{Dep: b.dep, AP: b.ap, Policies: b.tbl, Candidates: cp, K: kTwo}
}

// vkey is a Violation minus its free-text detail, for exact-set compares.
type vkey struct {
	inv  verify.Invariant
	sev  verify.Severity
	node topo.NodeID
	pol  int
	fn   policy.FuncType
}

func keysOf(vs []verify.Violation) map[vkey]int {
	out := make(map[vkey]int)
	for _, v := range vs {
		out[vkey{v.Invariant, v.Severity, v.Node, v.PolicyID, v.Func}]++
	}
	return out
}

func wantExact(t *testing.T, got []verify.Violation, want []vkey) {
	t.Helper()
	gk := keysOf(got)
	wk := make(map[vkey]int)
	for _, k := range want {
		wk[k]++
	}
	for k, n := range wk {
		if gk[k] != n {
			t.Errorf("violation %+v: got %d, want %d", k, gk[k], n)
		}
	}
	for k, n := range gk {
		if wk[k] == 0 {
			t.Errorf("unexpected violation %+v (×%d)", k, n)
		}
	}
	if t.Failed() {
		for _, v := range got {
			t.Logf("got: %s", v)
		}
	}
}

// firstWith returns a node whose candidate list for e contains mb.
func (b *planBed) firstWith(t *testing.T, e policy.FuncType, mb topo.NodeID) topo.NodeID {
	t.Helper()
	for _, x := range append(append([]topo.NodeID(nil), b.dep.ProxyNodes...), b.dep.MBNodes...) {
		for _, m := range b.cands[x][e] {
			if m == mb {
				return x
			}
		}
	}
	t.Fatalf("no node has %d in its %v candidates", int(mb), e)
	return topo.InvalidNode
}

func TestHealthyPlanHasNoViolations(t *testing.T) {
	for _, seed := range []int64{7, 20, 99} {
		b := newPlanBed(t, seed)
		if vs := verify.Check(b.plan()); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("seed %d: unexpected violation: %s", seed, v)
			}
		}
	}
}

func TestCorruptedPlans(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(t *testing.T, b *planBed, p *verify.Plan)
		want    func(b *planBed, p *verify.Plan) []vkey
	}{
		{
			// Dropping the last provider's candidates blackholes flows:
			// coverage must flag the node, nothing else fires.
			name: "dropped-provider-coverage",
			corrupt: func(t *testing.T, b *planBed, p *verify.Plan) {
				delete(p.Candidates[b.dep.ProxyNodes[0]], policy.FuncFW)
			},
			want: func(b *planBed, p *verify.Plan) []vkey {
				return []vkey{{verify.InvCoverage, verify.SevError, b.dep.ProxyNodes[0], b.polID, policy.FuncFW}}
			},
		},
		{
			// A reversed candidate list is no longer the distance-sorted
			// prefix: the hot-potato target at index 0 is wrong.
			name: "reversed-candidates-hp-optimality",
			corrupt: func(t *testing.T, b *planBed, p *verify.Plan) {
				x := b.dep.ProxyNodes[0]
				list := p.Candidates[x][policy.FuncFW]
				if len(list) != 2 {
					t.Fatalf("want 2 FW candidates at proxy, got %d", len(list))
				}
				list[0], list[1] = list[1], list[0]
			},
			want: func(b *planBed, p *verify.Plan) []vkey {
				return []vkey{{verify.InvHotPotato, verify.SevError, b.dep.ProxyNodes[0], -1, policy.FuncFW}}
			},
		},
		{
			// A candidate set larger than the configured k leaks state the
			// dataplane was sized against.
			name: "oversized-candidate-set",
			corrupt: func(t *testing.T, b *planBed, p *verify.Plan) {
				x := b.dep.ProxyNodes[0]
				p.Candidates[x][policy.FuncFW] = b.ap.KClosest(x, b.dep.Providers(policy.FuncFW), 3)
			},
			want: func(b *planBed, p *verify.Plan) []vkey {
				return []vkey{{verify.InvHotPotato, verify.SevError, b.dep.ProxyNodes[0], -1, policy.FuncFW}}
			},
		},
		{
			// A proxy inserted into a middlebox's stage-1 candidates closes
			// the tunnel overlay into a cycle (proxy → fw → proxy) and is a
			// non-provider, so hp-optimality fires too.
			name: "tunnel-cycle",
			corrupt: func(t *testing.T, b *planBed, p *verify.Plan) {
				proxy := b.firstWith(t, policy.FuncFW, b.fw[0])
				p.Candidates[b.fw[0]][policy.FuncIDS] = []topo.NodeID{proxy}
			},
			want: func(b *planBed, p *verify.Plan) []vkey {
				proxy := p.Candidates[b.fw[0]][policy.FuncIDS][0]
				return []vkey{
					{verify.InvHotPotato, verify.SevError, b.fw[0], -1, policy.FuncIDS},
					// findCycle reports the cycle anchored at the first grey
					// node the DFS re-enters — the proxy, whose ID is lower.
					{verify.InvLoop, verify.SevError, minID(proxy, b.fw[0]), b.polID, policy.FuncFW},
				}
			},
		},
		{
			// A stage-1 (IDS) candidate that implements the stage-0 function
			// makes the dataplane re-infer the packet's position at stage 0
			// and re-run the chain prefix: the myFunc stage regression.
			name: "stage-regression",
			corrupt: func(t *testing.T, b *planBed, p *verify.Plan) {
				p.Candidates[b.fw[0]][policy.FuncIDS] = []topo.NodeID{b.fw[1]}
			},
			want: func(b *planBed, p *verify.Plan) []vkey {
				return []vkey{
					{verify.InvHotPotato, verify.SevError, b.fw[0], -1, policy.FuncIDS},
					{verify.InvLoop, verify.SevError, b.fw[0], b.polID, policy.FuncIDS},
				}
			},
		},
		{
			// A failed middlebox left in candidate sets is the staleness a
			// crash between MarkFailed and Reassign would install: every
			// holder gets a failed-candidate finding, and its list is no
			// longer the prefix of the *live* providers.
			name: "failed-middlebox-in-candidates",
			corrupt: func(t *testing.T, b *planBed, p *verify.Plan) {
				p.Failed = []topo.NodeID{b.fw[0]}
			},
			want: func(b *planBed, p *verify.Plan) []vkey {
				var want []vkey
				for x, byFunc := range p.Candidates {
					for _, m := range byFunc[policy.FuncFW] {
						if m == b.fw[0] {
							want = append(want,
								vkey{verify.InvFailed, verify.SevError, x, -1, policy.FuncFW},
								vkey{verify.InvHotPotato, verify.SevError, x, -1, policy.FuncFW})
						}
					}
				}
				return want
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := newPlanBed(t, 7)
			p := b.plan()
			tc.corrupt(t, b, &p)
			got := verify.Check(p)
			wantExact(t, got, tc.want(b, &p))
			if verify.AsError(got) == nil {
				t.Error("AsError = nil for a plan with hard violations")
			}
		})
	}
}

func minID(a, b topo.NodeID) topo.NodeID {
	if a < b {
		return a
	}
	return b
}

func TestWeightChecks(t *testing.T) {
	b := newPlanBed(t, 7)
	x := b.dep.ProxyNodes[0]
	key := enforce.WeightKey{PolicyID: b.polID, Func: policy.FuncFW, SrcSubnet: 1, DstSubnet: 2}
	wrap := func(vec []float64, k enforce.WeightKey) map[topo.NodeID]map[enforce.WeightKey][]float64 {
		return map[topo.NodeID]map[enforce.WeightKey][]float64{x: {k: vec}}
	}

	tests := []struct {
		name      string
		weights   map[topo.NodeID]map[enforce.WeightKey][]float64
		normalize bool
		want      []vkey
	}{
		{name: "valid-volume-weights", weights: wrap([]float64{3, 1}, key)},
		{name: "valid-normalized", weights: wrap([]float64{0.75, 0.25}, key), normalize: true},
		{
			name: "negative-entry", weights: wrap([]float64{-0.5, 1.5}, key),
			want: []vkey{{verify.InvWeights, verify.SevError, x, b.polID, policy.FuncFW}},
		},
		{
			name: "non-finite-entry", weights: wrap([]float64{math.NaN(), 1}, key),
			want: []vkey{{verify.InvWeights, verify.SevError, x, b.polID, policy.FuncFW}},
		},
		{
			name: "length-mismatch", weights: wrap([]float64{1}, key),
			want: []vkey{{verify.InvWeights, verify.SevError, x, b.polID, policy.FuncFW}},
		},
		{
			name: "denormalized-sum", weights: wrap([]float64{0.3, 0.3}, key), normalize: true,
			want: []vkey{{verify.InvWeights, verify.SevError, x, b.polID, policy.FuncFW}},
		},
		{
			name:    "no-candidate-set-for-func",
			weights: wrap([]float64{1}, enforce.WeightKey{PolicyID: b.polID, Func: policy.FuncWP, SrcSubnet: 1, DstSubnet: 2}),
			want:    []vkey{{verify.InvWeights, verify.SevError, x, b.polID, policy.FuncWP}},
		},
		{
			name: "all-zero-is-warning-only", weights: wrap([]float64{0, 0}, key),
			want: []vkey{{verify.InvWeights, verify.SevWarning, x, b.polID, policy.FuncFW}},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := b.plan()
			p.Weights = tc.weights
			p.RequireNormalized = tc.normalize
			got := verify.Check(p)
			wantExact(t, got, tc.want)
			hard := false
			for _, k := range tc.want {
				if k.sev >= verify.SevError {
					hard = true
				}
			}
			if err := verify.AsError(got); (err != nil) != hard {
				t.Errorf("AsError = %v, want hard=%v", err, hard)
			}
		})
	}
}

// TestReassignAfterFailureIsClean is the regression guard for the
// dependability loop: after MarkFailed, recomputing and reassigning must
// always produce a plan with zero violations — the failed box is gone
// from every candidate set and the survivors re-rank into valid prefixes.
func TestReassignAfterFailureIsClean(t *testing.T) {
	b := newPlanBed(t, 7)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		K:      map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
		Verify: true,
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	for _, mb := range []topo.NodeID{b.fw[0], b.ids[0]} {
		if err := ctl.MarkFailed(mb, true); err != nil {
			t.Fatal(err)
		}
		if err := ctl.Reassign(nodes); err != nil {
			t.Fatalf("reassign after failing %d: %v", int(mb), err)
		}
		if vs := ctl.VerifyPlan(nil); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("after failing %d: %s", int(mb), v)
			}
		}
	}
	// Recovery must verify clean too.
	if err := ctl.MarkFailed(b.fw[0], false); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Reassign(nodes); err != nil {
		t.Fatal(err)
	}
	if vs := ctl.VerifyPlan(nil); len(vs) != 0 {
		t.Errorf("after recovery: %d violations", len(vs))
	}
}

// TestVerifiedLBSolutionIsClean closes the loop with the LP: a solved LB
// plan must pass the weight checks in volume mode (the solver emits
// volume-valued vectors, normalized at selection time).
func TestVerifiedLBSolutionIsClean(t *testing.T) {
	b := newPlanBed(t, 7)
	ctl := controller.New(b.dep, b.ap, b.tbl, controller.Options{
		K:      map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2},
		Verify: true,
	})
	if _, err := ctl.BuildNodes(); err != nil {
		t.Fatal(err)
	}
	meas := controller.Measurements{}
	for s := 1; s <= b.dep.NumSubnets(); s++ {
		for d := 1; d <= b.dep.NumSubnets(); d++ {
			if s == d {
				continue
			}
			meas[enforce.MeasKey{PolicyID: b.polID, SrcSubnet: s, DstSubnet: d}] = 100
		}
	}
	sol, err := ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	vs := ctl.VerifyPlan(sol.Weights)
	for _, v := range vs {
		if v.Severity >= verify.SevError {
			t.Errorf("LB solution violation: %s", v)
		}
	}
}
