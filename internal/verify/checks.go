package verify

import (
	"fmt"
	"math"
	"sort"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// CheckCoverage verifies that every function referenced by a policy
// chain has at least one candidate at every proxy and middlebox that
// does not implement the function itself. A node with an empty (or
// missing) candidate list for a needed function blackholes every flow
// whose chain reaches it (§III-B: the node has no m_x^e to tunnel to).
func CheckCoverage(p Plan) []Violation {
	funcs, repPolicy := p.chainFuncs()
	var out []Violation
	for _, x := range p.planNodes() {
		cands := p.Candidates[x]
		for _, e := range funcs {
			if p.implements(x, e) {
				continue
			}
			if len(cands[e]) > 0 {
				continue
			}
			out = append(out, Violation{
				Invariant: InvCoverage,
				Severity:  SevError,
				Node:      x,
				PolicyID:  repPolicy[e],
				Func:      e,
				Detail:    fmt.Sprintf("no live candidate middlebox for %v; flows needing it are blackholed at this node", e),
			})
		}
	}
	return out
}

// CheckHotPotato verifies that every candidate list is exactly the
// distance-sorted prefix of the live providers of its function, as the
// controller's Dijkstra assignment computes it: the hot-potato target
// (index 0) is the closest live provider, subsequent entries follow in
// non-decreasing distance with the deterministic lower-ID tie-break, no
// list exceeds the configured k, and every member actually provides the
// function. Recomputing the ranking from AllPairs makes this an
// independent check of the controller's cached output, not a replay of
// its cache.
func CheckHotPotato(p Plan) []Violation {
	var out []Violation
	for _, x := range sortedOwners(p.Candidates) {
		byFunc := p.Candidates[x]
		for _, e := range sortedFuncs(byFunc) {
			got := byFunc[e]
			if len(got) == 0 {
				continue // coverage's finding, not ours
			}
			// Membership first: a non-provider in the list would make the
			// prefix comparison below fail with a confusing message.
			providers := make(map[topo.NodeID]bool)
			for _, m := range p.Dep.Providers(e) {
				providers[m] = true
			}
			bad := false
			for i, m := range got {
				if !providers[m] {
					out = append(out, Violation{
						Invariant: InvHotPotato,
						Severity:  SevError,
						Node:      x,
						PolicyID:  -1,
						Func:      e,
						Detail:    fmt.Sprintf("candidate[%d] = node %d does not implement %v", i, int(m), e),
					})
					bad = true
				}
				if m == x {
					out = append(out, Violation{
						Invariant: InvHotPotato,
						Severity:  SevError,
						Node:      x,
						PolicyID:  -1,
						Func:      e,
						Detail:    fmt.Sprintf("candidate[%d] is the node itself", i),
					})
					bad = true
				}
			}
			if bad {
				continue
			}
			if p.K != nil {
				if k := p.K(e); k > 0 && len(got) > k {
					out = append(out, Violation{
						Invariant: InvHotPotato,
						Severity:  SevError,
						Node:      x,
						PolicyID:  -1,
						Func:      e,
						Detail:    fmt.Sprintf("candidate set has %d members, configured k is %d", len(got), k),
					})
				}
			}
			want := p.AP.KClosest(x, p.liveProviders(e), len(got))
			for i := range got {
				if i >= len(want) {
					out = append(out, Violation{
						Invariant: InvHotPotato,
						Severity:  SevError,
						Node:      x,
						PolicyID:  -1,
						Func:      e,
						Detail:    fmt.Sprintf("candidate[%d] = node %d but only %d live providers are reachable", i, int(got[i]), len(want)),
					})
					break
				}
				if got[i] != want[i] {
					out = append(out, Violation{
						Invariant: InvHotPotato,
						Severity:  SevError,
						Node:      x,
						PolicyID:  -1,
						Func:      e,
						Detail: fmt.Sprintf("candidate[%d] = node %d (d=%.0f), want node %d (d=%.0f): list is not the distance-sorted prefix of live providers",
							i, int(got[i]), p.AP.Dist(x, got[i]), int(want[i]), p.AP.Dist(x, want[i])),
					})
					break
				}
			}
		}
	}
	return out
}

// CheckFailed verifies that no middlebox marked failed appears in any
// candidate set — the exact staleness a crash between MarkFailed and
// Reassign would install.
func CheckFailed(p Plan) []Violation {
	failed := p.failedSet()
	if len(failed) == 0 {
		return nil
	}
	var out []Violation
	for _, x := range sortedOwners(p.Candidates) {
		byFunc := p.Candidates[x]
		for _, e := range sortedFuncs(byFunc) {
			for i, m := range byFunc[e] {
				if failed[m] {
					out = append(out, Violation{
						Invariant: InvFailed,
						Severity:  SevError,
						Node:      x,
						PolicyID:  -1,
						Func:      e,
						Detail:    fmt.Sprintf("candidate[%d] = node %d is marked failed", i, int(m)),
					})
				}
			}
		}
	}
	return out
}

// CheckWeights verifies the LB weight vectors in Plan.Weights: each
// vector must address an existing candidate list, be parallel to it
// (same length — the dataplane indexes candidates by weight position),
// and contain only finite, non-negative entries. An all-zero vector is a
// warning: enforce.pickWeighted silently degrades it to uniform
// selection, which is safe but defeats the LP. With RequireNormalized
// the entries must additionally sum to 1±Tol.
func CheckWeights(p Plan) []Violation {
	tol := p.tol()
	var out []Violation
	owners := make([]topo.NodeID, 0, len(p.Weights))
	for id := range p.Weights {
		owners = append(owners, id)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	for _, x := range owners {
		keys := make([]enforce.WeightKey, 0, len(p.Weights[x]))
		for k := range p.Weights[x] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return lessWeightKey(keys[i], keys[j]) })
		for _, k := range keys {
			vec := p.Weights[x][k]
			cands, ok := p.Candidates[x][k.Func]
			if !ok {
				out = append(out, Violation{
					Invariant: InvWeights,
					Severity:  SevError,
					Node:      x,
					PolicyID:  k.PolicyID,
					Func:      k.Func,
					Detail:    fmt.Sprintf("weight vector for %v but the node has no candidate set for it", k.Func),
				})
				continue
			}
			if len(vec) != len(cands) {
				out = append(out, Violation{
					Invariant: InvWeights,
					Severity:  SevError,
					Node:      x,
					PolicyID:  k.PolicyID,
					Func:      k.Func,
					Detail:    fmt.Sprintf("weight vector has %d entries, candidate set has %d: positions would misalign", len(vec), len(cands)),
				})
				continue
			}
			sum, bad := 0.0, false
			for i, w := range vec {
				switch {
				case math.IsNaN(w) || math.IsInf(w, 0):
					out = append(out, Violation{
						Invariant: InvWeights,
						Severity:  SevError,
						Node:      x,
						PolicyID:  k.PolicyID,
						Func:      k.Func,
						Detail:    fmt.Sprintf("weight[%d] = %v is not finite", i, w),
					})
					bad = true
				case w < -tol:
					out = append(out, Violation{
						Invariant: InvWeights,
						Severity:  SevError,
						Node:      x,
						PolicyID:  k.PolicyID,
						Func:      k.Func,
						Detail:    fmt.Sprintf("weight[%d] = %v is negative", i, w),
					})
					bad = true
				default:
					sum += w
				}
			}
			if bad {
				continue
			}
			if p.RequireNormalized {
				if math.Abs(sum-1) > tol {
					out = append(out, Violation{
						Invariant: InvWeights,
						Severity:  SevError,
						Node:      x,
						PolicyID:  k.PolicyID,
						Func:      k.Func,
						Detail:    fmt.Sprintf("weights sum to %v, want 1±%v", sum, tol),
					})
				}
			} else if sum <= tol {
				out = append(out, Violation{
					Invariant: InvWeights,
					Severity:  SevWarning,
					Node:      x,
					PolicyID:  k.PolicyID,
					Func:      k.Func,
					Detail:    "all-zero weight vector degrades to uniform selection",
				})
			}
		}
	}
	return out
}

// sortedOwners returns the candidate-map keys in ascending order.
func sortedOwners(m map[topo.NodeID]map[policy.FuncType][]topo.NodeID) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedFuncs returns a candidate set's function keys in ascending order.
func sortedFuncs(m map[policy.FuncType][]topo.NodeID) []policy.FuncType {
	out := make([]policy.FuncType, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lessWeightKey orders weight keys deterministically.
func lessWeightKey(a, b enforce.WeightKey) bool {
	if a.PolicyID != b.PolicyID {
		return a.PolicyID < b.PolicyID
	}
	if a.Func != b.Func {
		return a.Func < b.Func
	}
	if a.SrcSubnet != b.SrcSubnet {
		return a.SrcSubnet < b.SrcSubnet
	}
	return a.DstSubnet < b.DstSubnet
}
