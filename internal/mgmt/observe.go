package mgmt

import (
	"strconv"
	"sync/atomic"

	"sdme/internal/metrics"
)

// Management-channel metric family names. The server families are
// unlabeled (one controller); the agent families carry a node label.
const (
	MetricPushes          = "sdme_mgmt_pushes_total"
	MetricPushAttempts    = "sdme_mgmt_push_attempts_total"
	MetricPushRetries     = "sdme_mgmt_push_retries_total"
	MetricPushFailures    = "sdme_mgmt_push_failures_total"
	MetricRefused         = "sdme_mgmt_push_refused_total"
	MetricAgentConnects   = "sdme_mgmt_agent_connects_total"
	MetricReconnectRepush = "sdme_mgmt_reconnect_repush_total"
	MetricMeasureReports  = "sdme_mgmt_measure_reports_total"
	MetricPrepares        = "sdme_mgmt_prepares_total"
	MetricCommits         = "sdme_mgmt_commits_total"
	MetricRollbacks       = "sdme_mgmt_rollbacks_total"
	// Delta rollout accounting: how many pushes went out as deltas, how
	// many of those degraded to a full push on a base-epoch refusal, and
	// the encoded wire bytes of full-config vs delta pushes — the pair
	// the "delta pushes ≤10% of full-push bytes" acceptance check reads.
	MetricDeltaPushes    = "sdme_mgmt_delta_pushes_total"
	MetricDeltaFallbacks = "sdme_mgmt_delta_fallbacks_total"
	MetricPushBytesFull  = "sdme_mgmt_push_bytes_full_total"
	MetricPushBytesDelta = "sdme_mgmt_push_bytes_delta_total"

	MetricAgentReconnects   = "sdme_agent_reconnects_total"
	MetricAgentApplies      = "sdme_agent_applies_total"
	MetricAgentEpochRejects = "sdme_agent_epoch_rejects_total"
	MetricAgentTermRejects  = "sdme_agent_term_rejects_total"
	MetricAgentRedirects    = "sdme_agent_redirects_total"
	MetricAgentReports      = "sdme_agent_reports_total"
	MetricAgentPrepares     = "sdme_agent_prepares_total"
	MetricAgentCommits      = "sdme_agent_commits_total"
	MetricAgentAborts       = "sdme_agent_aborts_total"
	MetricAgentDeltaApplies = "sdme_agent_delta_applies_total"
)

// serverMetrics caches the server's registry handles.
type serverMetrics struct {
	pushes, attempts, retries, failures, refused *metrics.Counter
	connects, repush, reports                    *metrics.Counter
	prepares, commits, rollbacks                 *metrics.Counter
	deltaPushes, deltaFallbacks                  *metrics.Counter
	bytesFull, bytesDelta                        *metrics.Counter
}

// SetMetrics attaches a registry to the server. Safe to call while
// connections are live (the handle swaps atomically); nil detaches.
func (s *Server) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.sm.Store(nil)
		return
	}
	s.sm.Store(&serverMetrics{
		pushes:    reg.Counter(MetricPushes),
		attempts:  reg.Counter(MetricPushAttempts),
		retries:   reg.Counter(MetricPushRetries),
		failures:  reg.Counter(MetricPushFailures),
		refused:   reg.Counter(MetricRefused),
		connects:  reg.Counter(MetricAgentConnects),
		repush:    reg.Counter(MetricReconnectRepush),
		reports:   reg.Counter(MetricMeasureReports),
		prepares:  reg.Counter(MetricPrepares),
		commits:   reg.Counter(MetricCommits),
		rollbacks: reg.Counter(MetricRollbacks),

		deltaPushes:    reg.Counter(MetricDeltaPushes),
		deltaFallbacks: reg.Counter(MetricDeltaFallbacks),
		bytesFull:      reg.Counter(MetricPushBytesFull),
		bytesDelta:     reg.Counter(MetricPushBytesDelta),
	})
}

// smInc bumps one server counter if a registry is attached; the selector
// keeps call sites one line.
func (s *Server) smInc(sel func(*serverMetrics) *metrics.Counter) {
	if m := s.sm.Load(); m != nil {
		sel(m).Inc()
	}
}

// observePushBytes records one push's encoded envelope size under the
// full or delta byte counter. The payload is encoded with its pre-seq
// value (seq is assigned per attempt and adds a handful of digits the
// full-vs-delta comparison does not care about); nothing is encoded when
// no registry is attached.
func (s *Server) observePushBytes(typ string, v interface{}, delta bool) {
	m := s.sm.Load()
	if m == nil {
		return
	}
	buf, err := EncodeEnvelope(typ, v)
	if err != nil {
		return
	}
	if delta {
		m.bytesDelta.Add(int64(len(buf)))
	} else {
		m.bytesFull.Add(int64(len(buf)))
	}
}

// agentMetrics caches an agent's per-node registry handles.
type agentMetrics struct {
	reconnects, applies, epochRejects, reports *metrics.Counter
	termRejects, redirects                     *metrics.Counter
	prepares, commits, aborts                  *metrics.Counter
	deltaApplies                               *metrics.Counter
}

func newAgentMetrics(reg *metrics.Registry, nodeID int) *agentMetrics {
	if reg == nil {
		return nil
	}
	node := strconv.Itoa(nodeID)
	return &agentMetrics{
		reconnects:   reg.Counter(MetricAgentReconnects, "node", node),
		applies:      reg.Counter(MetricAgentApplies, "node", node),
		epochRejects: reg.Counter(MetricAgentEpochRejects, "node", node),
		termRejects:  reg.Counter(MetricAgentTermRejects, "node", node),
		redirects:    reg.Counter(MetricAgentRedirects, "node", node),
		reports:      reg.Counter(MetricAgentReports, "node", node),
		prepares:     reg.Counter(MetricAgentPrepares, "node", node),
		commits:      reg.Counter(MetricAgentCommits, "node", node),
		aborts:       reg.Counter(MetricAgentAborts, "node", node),
		deltaApplies: reg.Counter(MetricAgentDeltaApplies, "node", node),
	}
}

// smPtr is a tiny alias so server.go's struct stays readable.
type smPtr = atomic.Pointer[serverMetrics]
