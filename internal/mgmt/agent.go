package mgmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/metrics"
)

// AgentOptions tunes the agent's self-healing behavior. The zero value
// gives the defaults documented per field.
type AgentOptions struct {
	// ReportEvery > 0 enables periodic measurement reports (proxies).
	ReportEvery time.Duration
	// Dial overrides how the agent (re)connects; nil dials the server
	// address over TCP. Fault-injection harnesses wrap it (see
	// faultinject.ConnTap) to interpose a fault-carrying connection.
	// When set, it wins over Addrs/DialAddr.
	Dial func() (net.Conn, error)
	// Addrs lists the controller replica addresses. The agent rotates
	// through them on reconnect and follows a NotLeader redirect to the
	// address it names, so it re-homes to whichever replica leads.
	// Empty means the single address passed to NewAgentWith.
	Addrs []string
	// DialAddr overrides how one specific address is dialed (nil = TCP).
	DialAddr func(addr string) (net.Conn, error)
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 10ms and 2s). Each failed dial doubles the base
	// delay; the actual sleep is uniformly drawn from [base/2, base].
	BackoffMin, BackoffMax time.Duration
	// HealthyPeriod is how long a connection must survive before the
	// reconnect backoff resets to BackoffMin (default BackoffMax). A
	// flapping link — connects that die immediately — keeps the grown
	// backoff, so reconnect storms stay bounded; only a genuinely
	// healthy spell earns the fast retry back.
	HealthyPeriod time.Duration
	// Seed drives the backoff jitter (default: the device's node ID, so
	// a fleet of agents created together de-synchronizes its retries
	// deterministically).
	Seed int64
	// MaxReconnectAttempts caps consecutive failed dials before the
	// agent gives up (0 = retry forever).
	MaxReconnectAttempts int
	// Metrics, when non-nil, records the agent's self-healing activity
	// (reconnects, applies, epoch rejects, reports) under a node label.
	Metrics *metrics.Registry
}

func (o *AgentOptions) fill(dev *live.Device, serverAddr string) {
	if len(o.Addrs) == 0 {
		o.Addrs = []string{serverAddr}
	}
	if o.DialAddr == nil {
		o.DialAddr = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = o.BackoffMin
	}
	if o.HealthyPeriod <= 0 {
		o.HealthyPeriod = o.BackoffMax
	}
	if o.Seed == 0 {
		o.Seed = int64(dev.Node.ID) + 1
	}
}

// AgentStats counts the agent's self-healing activity.
type AgentStats struct {
	// Reconnects counts successful re-dials after the initial connect.
	Reconnects int64
	// Applies counts configurations actually installed on the device.
	Applies int64
	// DeltaApplies counts the subset of Applies that were in-place
	// configuration deltas (soft state preserved for untouched flows).
	DeltaApplies int64
	// StaleConfigs counts configs acked idempotently because their epoch
	// was already applied (reconnect re-pushes crossing an earlier ack).
	StaleConfigs int64
	// ReportsSent counts measurement reports shipped to the controller.
	ReportsSent int64
	// Prepared counts plans staged by a two-phase prepare.
	Prepared int64
	// Committed counts staged plans atomically applied on commit.
	Committed int64
	// Aborted counts staged plans discarded by an abort.
	Aborted int64
	// StaleTerms counts plans refused because their leadership term was
	// older than one already seen — pushes from a deposed controller.
	StaleTerms int64
	// Redirects counts NotLeader bounces followed to another replica.
	Redirects int64
}

// Agent is the device-side endpoint: it connects a live runtime device to
// the controller's management server, applies pushed configurations
// inside the device's own goroutine, and (for proxies) reports traffic
// measurements periodically.
//
// The agent is self-healing: when its connection dies it redials with
// jittered exponential backoff, re-introduces itself with a HELLO
// carrying the last applied epoch, and resumes measurement reporting on
// the new connection — unsent reports are carried over, not lost.
type Agent struct {
	dev  *live.Device
	opts AgentOptions

	// writeMu guards conn (both the pointer swap on reconnect and frame
	// writes), keeping each frame whole on whichever connection is live.
	writeMu sync.Mutex
	conn    net.Conn

	epoch        atomic.Uint64 // last applied config epoch
	term         atomic.Uint64 // highest leadership term seen on any push
	reconnects   atomic.Int64
	applies      atomic.Int64
	deltaApplies atomic.Int64
	stale        atomic.Int64
	staleTerms   atomic.Int64
	redirects    atomic.Int64
	reports      atomic.Int64
	prepared     atomic.Int64
	committed    atomic.Int64
	aborted      atomic.Int64
	am           *agentMetrics // nil unless AgentOptions.Metrics was set

	// addrMu guards the replica-address rotation: which of opts.Addrs
	// the next dial targets.
	addrMu  sync.Mutex
	addrIdx int

	// stagedMu guards staged: the one prepared-but-uncommitted plan of the
	// two-phase rollout (twophase.go). It survives reconnects — the commit
	// may arrive on a different connection than the prepare did.
	stagedMu sync.Mutex
	staged   *stagedPlan

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewAgent dials the server, introduces the device, and starts the agent
// loops with default self-healing options. reportEvery > 0 enables
// periodic measurement reports (proxies).
func NewAgent(dev *live.Device, serverAddr string, reportEvery time.Duration) (*Agent, error) {
	return NewAgentWith(dev, serverAddr, AgentOptions{ReportEvery: reportEvery})
}

// NewAgentWith is NewAgent with explicit options. The initial dial is
// synchronous — a fleet with every replica down at startup is an error;
// only connections lost after a successful start heal automatically.
// With multiple Addrs, each replica is tried once (following one
// NotLeader redirect per try) before giving up.
func NewAgentWith(dev *live.Device, serverAddr string, opts AgentOptions) (*Agent, error) {
	opts.fill(dev, serverAddr)
	a := &Agent{dev: dev, opts: opts, stop: make(chan struct{})}
	a.am = newAgentMetrics(opts.Metrics, int(dev.Node.ID))
	var conn net.Conn
	var err error
	for try := 0; try < 2*len(opts.Addrs); try++ {
		conn, err = a.connect()
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("mgmt: dial %v: %w", opts.Addrs, err)
	}
	a.wg.Add(1)
	go a.run(conn)
	if opts.ReportEvery > 0 && dev.Node.IsProxy {
		a.wg.Add(1)
		go a.reportLoop(opts.ReportEvery)
	}
	return a, nil
}

// Close stops the agent.
func (a *Agent) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.writeMu.Lock()
	if a.conn != nil {
		_ = a.conn.Close()
	}
	a.writeMu.Unlock()
	a.wg.Wait()
}

// LastEpoch returns the last configuration epoch the agent applied.
func (a *Agent) LastEpoch() uint64 { return a.epoch.Load() }

// Stats snapshots the agent's self-healing counters.
func (a *Agent) Stats() AgentStats {
	return AgentStats{
		Reconnects:   a.reconnects.Load(),
		Applies:      a.applies.Load(),
		DeltaApplies: a.deltaApplies.Load(),
		StaleConfigs: a.stale.Load(),
		ReportsSent:  a.reports.Load(),
		Prepared:     a.prepared.Load(),
		Committed:    a.committed.Load(),
		Aborted:      a.aborted.Load(),
		StaleTerms:   a.staleTerms.Load(),
		Redirects:    a.redirects.Load(),
	}
}

// LastTerm returns the highest leadership term the agent has seen.
func (a *Agent) LastTerm() uint64 { return a.term.Load() }

// currentAddr returns the replica address the next dial targets.
func (a *Agent) currentAddr() string {
	a.addrMu.Lock()
	defer a.addrMu.Unlock()
	return a.opts.Addrs[a.addrIdx]
}

// rotateAddr advances the rotation after a failed dial, so consecutive
// reconnect attempts walk the replica set instead of hammering one.
func (a *Agent) rotateAddr() {
	a.addrMu.Lock()
	a.addrIdx = (a.addrIdx + 1) % len(a.opts.Addrs)
	a.addrMu.Unlock()
}

// followRedirect re-homes the rotation to the address a NotLeader
// bounce named; an empty or unknown address just rotates.
func (a *Agent) followRedirect(addr string) {
	a.addrMu.Lock()
	defer a.addrMu.Unlock()
	if addr != "" {
		for i, s := range a.opts.Addrs {
			if s == addr {
				a.addrIdx = i
				return
			}
		}
	}
	a.addrIdx = (a.addrIdx + 1) % len(a.opts.Addrs)
}

// connect dials the current replica and performs the HELLO handshake,
// installing the new connection as current. A failed dial or a
// NotLeader bounce advances the replica rotation for the next attempt.
func (a *Agent) connect() (net.Conn, error) {
	var conn net.Conn
	var err error
	if a.opts.Dial != nil {
		conn, err = a.opts.Dial()
	} else {
		conn, err = a.opts.DialAddr(a.currentAddr())
	}
	if err != nil {
		a.rotateAddr()
		return nil, err
	}
	a.writeMu.Lock()
	a.conn = conn
	// writeMu exists precisely to serialize frames on this conn; nothing
	// else contends for it during the handshake, and a stuck peer is cut
	// off by Close closing the conn, which fails the write.
	//vet:ignore lockedblocking -- writeMu serializes frames on this conn by design
	err = writeMsg(conn, TypeHello, Hello{
		NodeID: int(a.dev.Node.ID),
		Proxy:  a.dev.Node.IsProxy,
		Epoch:  a.epoch.Load(),
	})
	a.writeMu.Unlock()
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	// The handshake completes on the server's hello-ack: from then on the
	// server routes pushes to this connection, never to a dying
	// predecessor. A config can legally overtake the hello-ack (a push
	// racing the registration), so handle those inline. Close unblocks
	// this read by closing a.conn.
	for {
		env, err := readMsg(conn)
		if err != nil {
			_ = conn.Close()
			return nil, err
		}
		switch env.T {
		case TypeHelloAck:
			return conn, nil
		case TypeNotLeader:
			// A standby bounced us: re-home to the leader it names (or
			// the next replica in the rotation) and redial.
			var nl NotLeader
			if json.Unmarshal(env.Data, &nl) == nil && nl.Validate() == nil {
				a.redirects.Add(1)
				if a.am != nil {
					a.am.redirects.Inc()
				}
				a.followRedirect(nl.LeaderAddr)
			} else {
				a.rotateAddr()
			}
			_ = conn.Close()
			return nil, fmt.Errorf("mgmt: replica is not the leader (redirect %q)", nl.LeaderAddr)
		default:
			a.dispatch(env)
		}
	}
}

// dispatch routes one server-originated message to its handler.
func (a *Agent) dispatch(env *Envelope) {
	switch env.T {
	case TypeConfig:
		a.handleConfig(env.Data)
	case TypeDelta:
		a.handleDelta(env.Data)
	case TypePrepare:
		a.handlePrepare(env.Data)
	case TypePrepareDelta:
		a.handlePrepareDelta(env.Data)
	case TypeCommit:
		a.handleCommit(env.Data)
	case TypeAbort:
		a.handleAbort(env.Data)
	}
}

func (a *Agent) write(typ string, v interface{}) error {
	a.writeMu.Lock()
	defer a.writeMu.Unlock()
	if a.conn == nil {
		return errors.New("mgmt: agent not connected")
	}
	// writeMu's whole job is holding writers back while a frame goes out;
	// Close unblocks a stuck write by closing the conn under the mutex's
	// own discipline.
	//vet:ignore lockedblocking -- writeMu serializes frames on this conn by design
	return writeMsg(a.conn, typ, v)
}

// run owns the connection lifecycle: serve the current connection until
// it dies, then redial with jittered exponential backoff and re-HELLO.
//
// The backoff persists ACROSS connections: a link that flaps — dials
// that succeed but die before HealthyPeriod — keeps the grown delay, so
// a wedged replica or a dying leader never sees an unbounded reconnect
// storm. Only a connection that survives HealthyPeriod earns the reset
// to BackoffMin (nextBackoffBase, unit-tested in isolation).
func (a *Agent) run(conn net.Conn) {
	defer a.wg.Done()
	rng := rand.New(rand.NewSource(a.opts.Seed))
	backoff := a.opts.BackoffMin
	for {
		connectedAt := time.Now()
		a.readLoop(conn)
		_ = conn.Close()
		select {
		case <-a.stop:
			return
		default:
		}

		backoff = a.opts.nextBackoffBase(backoff, time.Since(connectedAt))
		attempts := 0
		for {
			// Uniform jitter in [backoff/2, backoff]: agents that lost
			// the same server don't stampede its listener in lockstep.
			sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
			timer := time.NewTimer(sleep)
			select {
			case <-timer.C:
			case <-a.stop:
				timer.Stop()
				return
			}
			c, err := a.connect()
			if err == nil {
				// Close may have raced the dial: stop is closed but the
				// fresh conn escaped its sweep. Shut it down ourselves or
				// Close's wg.Wait would hang on a readLoop nobody kills.
				select {
				case <-a.stop:
					_ = c.Close()
					return
				default:
				}
				a.reconnects.Add(1)
				if a.am != nil {
					a.am.reconnects.Inc()
				}
				conn = c
				break
			}
			attempts++
			if a.opts.MaxReconnectAttempts > 0 && attempts >= a.opts.MaxReconnectAttempts {
				return
			}
			if backoff *= 2; backoff > a.opts.BackoffMax {
				backoff = a.opts.BackoffMax
			}
		}
	}
}

// nextBackoffBase decides the reconnect backoff after a connection
// died: a connection that survived HealthyPeriod resets to BackoffMin,
// a shorter-lived one (a flap) keeps the previous grown delay.
func (o *AgentOptions) nextBackoffBase(prev, connLife time.Duration) time.Duration {
	if connLife >= o.HealthyPeriod {
		return o.BackoffMin
	}
	if prev < o.BackoffMin {
		return o.BackoffMin
	}
	if prev > o.BackoffMax {
		return o.BackoffMax
	}
	return prev
}

// readLoop serves one connection until it dies.
func (a *Agent) readLoop(conn net.Conn) {
	for {
		env, err := readMsg(conn)
		if err != nil {
			return
		}
		a.dispatch(env)
	}
}

// fenceTerm folds a pushed plan's leadership term into the agent's
// high-water mark. It returns a non-empty refusal reason when the term
// is older than one already seen: the pusher is a deposed leader, and
// its plan must be refused outright — NOT acked idempotently — so the
// stale controller learns it lost (split-brain fencing, DESIGN §11).
// Term 0 (a standalone, non-replicated controller) is never fenced.
func (a *Agent) fenceTerm(term uint64) string {
	if term == 0 {
		return ""
	}
	for {
		cur := a.term.Load()
		if term < cur {
			a.staleTerms.Add(1)
			if a.am != nil {
				a.am.termRejects.Inc()
			}
			return fmt.Sprintf("stale term %d (current %d)", term, cur)
		}
		if term == cur || a.term.CompareAndSwap(cur, term) {
			return ""
		}
	}
}

// handleConfig applies one pushed configuration and acks it.
func (a *Agent) handleConfig(data []byte) {
	var dto ConfigDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Error: "bad config: " + err.Error()})
		return
	}
	// Trust boundary: nothing from the wire reaches the device before
	// Validate passes (enforced by the wiretaint analyzer). An invalid
	// push is refused whole via an error Ack, never half-applied.
	if err := dto.Validate(); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Error: err.Error()})
		return
	}
	// Term fencing comes BEFORE epoch idempotence: a deposed leader
	// re-pushing an old epoch must be refused, not idempotently acked.
	if reason := a.fenceTerm(dto.Term); reason != "" {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Term: a.term.Load(), Error: reason})
		return
	}
	// Epoch idempotence: a plan the device already runs (a reconnect
	// re-push racing an earlier delivery) is acked without
	// re-applying — at-most-once application per epoch.
	if dto.Epoch != 0 && dto.Epoch <= a.epoch.Load() {
		a.stale.Add(1)
		if a.am != nil {
			a.am.epochRejects.Inc()
		}
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch})
		return
	}
	errStr := a.applyDTO(dto)
	_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Error: errStr})
}

// reportLoop periodically snapshots and resets the proxy's measurements
// (inside the device goroutine) and ships them to the controller — the
// paper's §III-C reporting path. The loop outlives any one connection:
// rows that fail to send (connection down, reconnect in progress) are
// carried over and shipped with the next tick's batch, so an outage
// delays measurements but does not lose them.
func (a *Agent) reportLoop(every time.Duration) {
	defer a.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	var carry []MeasureRow
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			rows := carry
			ok := a.dev.Do(func(n *enforce.Node) {
				for k, v := range n.Measurements() {
					rows = append(rows, MeasureRow{
						PolicyID: k.PolicyID, SrcSubnet: k.SrcSubnet,
						DstSubnet: k.DstSubnet, Packets: v,
					})
				}
				n.ResetMeasurements()
			})
			if !ok {
				return // device stopped for good
			}
			if len(rows) == 0 {
				carry = nil
				continue
			}
			if err := a.write(TypeMeasure, Measure{NodeID: int(a.dev.Node.ID), Rows: rows}); err != nil {
				carry = compactRows(rows)
				continue
			}
			a.reports.Add(1)
			if a.am != nil {
				a.am.reports.Inc()
			}
			carry = nil
		}
	}
}

// compactRows merges carried-over measurement rows by key so a long
// outage accumulates bounded state (one row per measurement bucket).
func compactRows(rows []MeasureRow) []MeasureRow {
	type key struct {
		policy, src, dst int
	}
	sums := make(map[key]int64, len(rows))
	order := make([]key, 0, len(rows))
	for _, r := range rows {
		k := key{r.PolicyID, r.SrcSubnet, r.DstSubnet}
		if _, seen := sums[k]; !seen {
			order = append(order, k)
		}
		sums[k] += r.Packets
	}
	out := make([]MeasureRow, len(order))
	for i, k := range order {
		out[i] = MeasureRow{PolicyID: k.policy, SrcSubnet: k.src, DstSubnet: k.dst, Packets: sums[k]}
	}
	return out
}
