package mgmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/metrics"
)

// AgentOptions tunes the agent's self-healing behavior. The zero value
// gives the defaults documented per field.
type AgentOptions struct {
	// ReportEvery > 0 enables periodic measurement reports (proxies).
	ReportEvery time.Duration
	// Dial overrides how the agent (re)connects; nil dials the server
	// address over TCP. Fault-injection harnesses wrap it (see
	// faultinject.ConnTap) to interpose a fault-carrying connection.
	Dial func() (net.Conn, error)
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 10ms and 2s). Each failed dial doubles the base
	// delay; the actual sleep is uniformly drawn from [base/2, base].
	BackoffMin, BackoffMax time.Duration
	// Seed drives the backoff jitter (default: the device's node ID, so
	// a fleet of agents created together de-synchronizes its retries
	// deterministically).
	Seed int64
	// MaxReconnectAttempts caps consecutive failed dials before the
	// agent gives up (0 = retry forever).
	MaxReconnectAttempts int
	// Metrics, when non-nil, records the agent's self-healing activity
	// (reconnects, applies, epoch rejects, reports) under a node label.
	Metrics *metrics.Registry
}

func (o *AgentOptions) fill(dev *live.Device, serverAddr string) {
	if o.Dial == nil {
		o.Dial = func() (net.Conn, error) { return net.Dial("tcp", serverAddr) }
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = o.BackoffMin
	}
	if o.Seed == 0 {
		o.Seed = int64(dev.Node.ID) + 1
	}
}

// AgentStats counts the agent's self-healing activity.
type AgentStats struct {
	// Reconnects counts successful re-dials after the initial connect.
	Reconnects int64
	// Applies counts configurations actually installed on the device.
	Applies int64
	// StaleConfigs counts configs acked idempotently because their epoch
	// was already applied (reconnect re-pushes crossing an earlier ack).
	StaleConfigs int64
	// ReportsSent counts measurement reports shipped to the controller.
	ReportsSent int64
	// Prepared counts plans staged by a two-phase prepare.
	Prepared int64
	// Committed counts staged plans atomically applied on commit.
	Committed int64
	// Aborted counts staged plans discarded by an abort.
	Aborted int64
}

// Agent is the device-side endpoint: it connects a live runtime device to
// the controller's management server, applies pushed configurations
// inside the device's own goroutine, and (for proxies) reports traffic
// measurements periodically.
//
// The agent is self-healing: when its connection dies it redials with
// jittered exponential backoff, re-introduces itself with a HELLO
// carrying the last applied epoch, and resumes measurement reporting on
// the new connection — unsent reports are carried over, not lost.
type Agent struct {
	dev  *live.Device
	opts AgentOptions

	// writeMu guards conn (both the pointer swap on reconnect and frame
	// writes), keeping each frame whole on whichever connection is live.
	writeMu sync.Mutex
	conn    net.Conn

	epoch      atomic.Uint64 // last applied config epoch
	reconnects atomic.Int64
	applies    atomic.Int64
	stale      atomic.Int64
	reports    atomic.Int64
	prepared   atomic.Int64
	committed  atomic.Int64
	aborted    atomic.Int64
	am         *agentMetrics // nil unless AgentOptions.Metrics was set

	// stagedMu guards staged: the one prepared-but-uncommitted plan of the
	// two-phase rollout (twophase.go). It survives reconnects — the commit
	// may arrive on a different connection than the prepare did.
	stagedMu sync.Mutex
	staged   *stagedPlan

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewAgent dials the server, introduces the device, and starts the agent
// loops with default self-healing options. reportEvery > 0 enables
// periodic measurement reports (proxies).
func NewAgent(dev *live.Device, serverAddr string, reportEvery time.Duration) (*Agent, error) {
	return NewAgentWith(dev, serverAddr, AgentOptions{ReportEvery: reportEvery})
}

// NewAgentWith is NewAgent with explicit options. The initial dial is
// synchronous — a server that is down at startup is an error; only
// connections lost after a successful start heal automatically.
func NewAgentWith(dev *live.Device, serverAddr string, opts AgentOptions) (*Agent, error) {
	opts.fill(dev, serverAddr)
	a := &Agent{dev: dev, opts: opts, stop: make(chan struct{})}
	a.am = newAgentMetrics(opts.Metrics, int(dev.Node.ID))
	conn, err := a.connect()
	if err != nil {
		return nil, fmt.Errorf("mgmt: dial %s: %w", serverAddr, err)
	}
	a.wg.Add(1)
	go a.run(conn)
	if opts.ReportEvery > 0 && dev.Node.IsProxy {
		a.wg.Add(1)
		go a.reportLoop(opts.ReportEvery)
	}
	return a, nil
}

// Close stops the agent.
func (a *Agent) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.writeMu.Lock()
	if a.conn != nil {
		_ = a.conn.Close()
	}
	a.writeMu.Unlock()
	a.wg.Wait()
}

// LastEpoch returns the last configuration epoch the agent applied.
func (a *Agent) LastEpoch() uint64 { return a.epoch.Load() }

// Stats snapshots the agent's self-healing counters.
func (a *Agent) Stats() AgentStats {
	return AgentStats{
		Reconnects:   a.reconnects.Load(),
		Applies:      a.applies.Load(),
		StaleConfigs: a.stale.Load(),
		ReportsSent:  a.reports.Load(),
		Prepared:     a.prepared.Load(),
		Committed:    a.committed.Load(),
		Aborted:      a.aborted.Load(),
	}
}

// connect dials and performs the HELLO handshake, installing the new
// connection as current.
func (a *Agent) connect() (net.Conn, error) {
	conn, err := a.opts.Dial()
	if err != nil {
		return nil, err
	}
	a.writeMu.Lock()
	a.conn = conn
	// writeMu exists precisely to serialize frames on this conn; nothing
	// else contends for it during the handshake, and a stuck peer is cut
	// off by Close closing the conn, which fails the write.
	//vet:ignore lockedblocking -- writeMu serializes frames on this conn by design
	err = writeMsg(conn, TypeHello, Hello{
		NodeID: int(a.dev.Node.ID),
		Proxy:  a.dev.Node.IsProxy,
		Epoch:  a.epoch.Load(),
	})
	a.writeMu.Unlock()
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	// The handshake completes on the server's hello-ack: from then on the
	// server routes pushes to this connection, never to a dying
	// predecessor. A config can legally overtake the hello-ack (a push
	// racing the registration), so handle those inline. Close unblocks
	// this read by closing a.conn.
	for {
		env, err := readMsg(conn)
		if err != nil {
			_ = conn.Close()
			return nil, err
		}
		if env.T == TypeHelloAck {
			return conn, nil
		}
		a.dispatch(env)
	}
}

// dispatch routes one server-originated message to its handler.
func (a *Agent) dispatch(env *Envelope) {
	switch env.T {
	case TypeConfig:
		a.handleConfig(env.Data)
	case TypePrepare:
		a.handlePrepare(env.Data)
	case TypeCommit:
		a.handleCommit(env.Data)
	case TypeAbort:
		a.handleAbort(env.Data)
	}
}

func (a *Agent) write(typ string, v interface{}) error {
	a.writeMu.Lock()
	defer a.writeMu.Unlock()
	if a.conn == nil {
		return errors.New("mgmt: agent not connected")
	}
	// writeMu's whole job is holding writers back while a frame goes out;
	// Close unblocks a stuck write by closing the conn under the mutex's
	// own discipline.
	//vet:ignore lockedblocking -- writeMu serializes frames on this conn by design
	return writeMsg(a.conn, typ, v)
}

// run owns the connection lifecycle: serve the current connection until
// it dies, then redial with jittered exponential backoff and re-HELLO.
func (a *Agent) run(conn net.Conn) {
	defer a.wg.Done()
	rng := rand.New(rand.NewSource(a.opts.Seed))
	for {
		a.readLoop(conn)
		_ = conn.Close()
		select {
		case <-a.stop:
			return
		default:
		}

		backoff := a.opts.BackoffMin
		attempts := 0
		for {
			// Uniform jitter in [backoff/2, backoff]: agents that lost
			// the same server don't stampede its listener in lockstep.
			sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
			timer := time.NewTimer(sleep)
			select {
			case <-timer.C:
			case <-a.stop:
				timer.Stop()
				return
			}
			c, err := a.connect()
			if err == nil {
				// Close may have raced the dial: stop is closed but the
				// fresh conn escaped its sweep. Shut it down ourselves or
				// Close's wg.Wait would hang on a readLoop nobody kills.
				select {
				case <-a.stop:
					_ = c.Close()
					return
				default:
				}
				a.reconnects.Add(1)
				if a.am != nil {
					a.am.reconnects.Inc()
				}
				conn = c
				break
			}
			attempts++
			if a.opts.MaxReconnectAttempts > 0 && attempts >= a.opts.MaxReconnectAttempts {
				return
			}
			if backoff *= 2; backoff > a.opts.BackoffMax {
				backoff = a.opts.BackoffMax
			}
		}
	}
}

// readLoop serves one connection until it dies.
func (a *Agent) readLoop(conn net.Conn) {
	for {
		env, err := readMsg(conn)
		if err != nil {
			return
		}
		a.dispatch(env)
	}
}

// handleConfig applies one pushed configuration and acks it.
func (a *Agent) handleConfig(data []byte) {
	var dto ConfigDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Error: "bad config: " + err.Error()})
		return
	}
	// Trust boundary: nothing from the wire reaches the device before
	// Validate passes (enforced by the wiretaint analyzer). An invalid
	// push is refused whole via an error Ack, never half-applied.
	if err := dto.Validate(); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Error: err.Error()})
		return
	}
	// Epoch idempotence: a plan the device already runs (a reconnect
	// re-push racing an earlier delivery) is acked without
	// re-applying — at-most-once application per epoch.
	if dto.Epoch != 0 && dto.Epoch <= a.epoch.Load() {
		a.stale.Add(1)
		if a.am != nil {
			a.am.epochRejects.Inc()
		}
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch})
		return
	}
	errStr := a.applyDTO(dto)
	_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Error: errStr})
}

// reportLoop periodically snapshots and resets the proxy's measurements
// (inside the device goroutine) and ships them to the controller — the
// paper's §III-C reporting path. The loop outlives any one connection:
// rows that fail to send (connection down, reconnect in progress) are
// carried over and shipped with the next tick's batch, so an outage
// delays measurements but does not lose them.
func (a *Agent) reportLoop(every time.Duration) {
	defer a.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	var carry []MeasureRow
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			rows := carry
			ok := a.dev.Do(func(n *enforce.Node) {
				for k, v := range n.Measurements() {
					rows = append(rows, MeasureRow{
						PolicyID: k.PolicyID, SrcSubnet: k.SrcSubnet,
						DstSubnet: k.DstSubnet, Packets: v,
					})
				}
				n.ResetMeasurements()
			})
			if !ok {
				return // device stopped for good
			}
			if len(rows) == 0 {
				carry = nil
				continue
			}
			if err := a.write(TypeMeasure, Measure{NodeID: int(a.dev.Node.ID), Rows: rows}); err != nil {
				carry = compactRows(rows)
				continue
			}
			a.reports.Add(1)
			if a.am != nil {
				a.am.reports.Inc()
			}
			carry = nil
		}
	}
}

// compactRows merges carried-over measurement rows by key so a long
// outage accumulates bounded state (one row per measurement bucket).
func compactRows(rows []MeasureRow) []MeasureRow {
	type key struct {
		policy, src, dst int
	}
	sums := make(map[key]int64, len(rows))
	order := make([]key, 0, len(rows))
	for _, r := range rows {
		k := key{r.PolicyID, r.SrcSubnet, r.DstSubnet}
		if _, seen := sums[k]; !seen {
			order = append(order, k)
		}
		sums[k] += r.Packets
	}
	out := make([]MeasureRow, len(order))
	for i, k := range order {
		out[i] = MeasureRow{PolicyID: k.policy, SrcSubnet: k.src, DstSubnet: k.dst, Packets: sums[k]}
	}
	return out
}
