package mgmt

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"sdme/internal/enforce"
	"sdme/internal/live"
)

// Agent is the device-side endpoint: it connects a live runtime device to
// the controller's management server, applies pushed configurations
// inside the device's own goroutine, and (for proxies) reports traffic
// measurements periodically.
type Agent struct {
	dev  *live.Device
	conn net.Conn

	writeMu sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewAgent dials the server, introduces the device, and starts the agent
// loops. reportEvery > 0 enables periodic measurement reports (proxies).
func NewAgent(dev *live.Device, serverAddr string, reportEvery time.Duration) (*Agent, error) {
	conn, err := net.Dial("tcp", serverAddr)
	if err != nil {
		return nil, fmt.Errorf("mgmt: dial %s: %w", serverAddr, err)
	}
	a := &Agent{dev: dev, conn: conn, stop: make(chan struct{})}
	hello := Hello{NodeID: int(dev.Node.ID), Proxy: dev.Node.IsProxy}
	if err := a.write(TypeHello, hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	a.wg.Add(1)
	go a.readLoop()
	if reportEvery > 0 && dev.Node.IsProxy {
		a.wg.Add(1)
		go a.reportLoop(reportEvery)
	}
	return a, nil
}

// Close stops the agent.
func (a *Agent) Close() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	_ = a.conn.Close()
	a.wg.Wait()
}

func (a *Agent) write(typ string, v interface{}) error {
	a.writeMu.Lock()
	defer a.writeMu.Unlock()
	return writeMsg(a.conn, typ, v)
}

func (a *Agent) readLoop() {
	defer a.wg.Done()
	for {
		env, err := readMsg(a.conn)
		if err != nil {
			return
		}
		if env.T != TypeConfig {
			continue
		}
		var dto ConfigDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			_ = a.write(TypeAck, Ack{Seq: dto.Seq, Error: "bad config: " + err.Error()})
			continue
		}
		errStr := ""
		if dto.WeightsOnly {
			w := WeightsFromDTO(dto.Weights)
			if !a.dev.Do(func(n *enforce.Node) { n.SetWeights(w) }) {
				errStr = "device stopped"
			}
		} else {
			cfg, err := ConfigFromDTO(dto)
			if err != nil {
				errStr = err.Error()
			} else {
				applied := a.dev.Do(func(n *enforce.Node) {
					if ierr := n.Install(cfg); ierr != nil {
						errStr = ierr.Error()
					}
				})
				if !applied {
					errStr = "device stopped"
				}
			}
		}
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Error: errStr})
	}
}

// reportLoop periodically snapshots and resets the proxy's measurements
// (inside the device goroutine) and ships them to the controller — the
// paper's §III-C reporting path.
func (a *Agent) reportLoop(every time.Duration) {
	defer a.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			var rows []MeasureRow
			ok := a.dev.Do(func(n *enforce.Node) {
				for k, v := range n.Measurements() {
					rows = append(rows, MeasureRow{
						PolicyID: k.PolicyID, SrcSubnet: k.SrcSubnet,
						DstSubnet: k.DstSubnet, Packets: v,
					})
				}
				n.ResetMeasurements()
			})
			if !ok {
				return
			}
			if len(rows) == 0 {
				continue
			}
			if err := a.write(TypeMeasure, Measure{NodeID: int(a.dev.Node.ID), Rows: rows}); err != nil {
				return
			}
		}
	}
}
